// Package caram is a behavioral and analytical reproduction of
// "CA-RAM: A High-Performance Memory Substrate for Search-Intensive
// Applications" (Cho, Martin, Xu, Hammoud, Melhem — ISPASS 2007).
//
// CA-RAM implements hashing in hardware: a dense RAM array whose rows
// are hash buckets, an index generator in front, and parallel match
// processors behind, searching a large database in one memory access
// at RAM-class area and power. The packages under internal/ build the
// full system — bit substrate, index generators, memory array, match
// processors, the CA-RAM slice, the multi-slice subsystem, CAM/TCAM
// and software baselines, the cost models of §3.4, and the two
// application studies (IP routing lookup and speech-recognition
// trigram lookup). See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results; cmd/caram-bench
// regenerates every table and figure.
package caram
