// Quickstart: build a CA-RAM slice, store records, and search it.
//
// A CA-RAM slice is a hash table in hardware: an index generator picks
// a row for each key, the row holds many candidate records, and the
// match processors compare all of them against the search key in one
// step. This example walks the CAM-mode operations (insert, search,
// delete), ternary matching, and the RAM-mode view.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
)

func main() {
	// A small slice: 256 buckets of four 32-bit keys with 16-bit data,
	// built on DRAM timing, hashed by multiply-shift.
	cfg := caram.Config{
		IndexBits: 8,
		RowBits:   4*(1+32+16) + 8,
		KeyBits:   32,
		DataBits:  16,
		Tech:      mem.DRAM,
		Index:     hash.NewMultShift(8),
	}
	slice, err := caram.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CA-RAM slice: %d buckets x %d slots = %d records capacity, %d-bit rows\n",
		cfg.Rows(), cfg.Slots(), cfg.Capacity(), cfg.RowBits)

	// CAM mode: insert.
	for i := 0; i < 500; i++ {
		rec := match.Record{
			Key:  bitutil.Exact(bitutil.FromUint64(uint64(i * 7))),
			Data: bitutil.FromUint64(uint64(i)),
		}
		if err := slice.Insert(rec); err != nil {
			log.Fatalf("insert %d: %v", i, err)
		}
	}
	fmt.Printf("inserted %d records, load factor %.2f\n", slice.Count(), slice.LoadFactor())

	// CAM mode: search. One memory access plus a parallel match.
	res := slice.Lookup(bitutil.Exact(bitutil.FromUint64(7 * 123)))
	fmt.Printf("lookup key %d: found=%v data=%d, %d row access(es)\n",
		7*123, res.Found, res.Record.Data.Uint64(), res.RowsRead)

	// Search-key masking: don't-care bits in the query. The paper's §4
	// caveat applies: masked bits that feed the hash would force a
	// multi-bucket search, so mask bits the index does not depend on —
	// here key 868 keeps its value (and bucket) with the low two bits
	// masked, and matches any stored key differing only there.
	masked := bitutil.NewTernary(
		bitutil.FromUint64(7*124), // 868: low two bits already zero
		bitutil.FromUint64(0b11),  // low two bits don't care
	)
	res = slice.Lookup(masked)
	fmt.Printf("masked lookup for 868|869|870|871: found=%v data=%d\n",
		res.Found, res.Record.Data.Uint64())

	// Delete and verify.
	if err := slice.Delete(bitutil.Exact(bitutil.FromUint64(7 * 123))); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delete: found=%v\n", slice.Lookup(bitutil.Exact(bitutil.FromUint64(7*123))).Found)

	// Placement and activity statistics — the quantities the paper's
	// evaluation (AMAL, overflow rates) is built from.
	p := slice.Placement()
	st := slice.Stats()
	fmt.Printf("placement: %d spilled records, %d overflowing buckets, max reach %d\n",
		p.SpilledRecords, p.OverflowingBuckets, p.MaxReach)
	fmt.Printf("activity: %d lookups, AMAL %.3f, hit rate %.2f\n",
		st.Lookups, st.AMAL(), st.HitRate())

	// RAM mode: the same array as a flat scratch-pad (§3.2).
	arr := slice.Array()
	arr.WriteWord(0, 0xdeadbeef)
	fmt.Printf("RAM mode: word 0 = %#x (array of %d words, %d bits total)\n",
		arr.ReadWord(0), arr.Words(), arr.SizeBits())
}
