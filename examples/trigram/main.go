// Trigram language-model lookup (§4.2): score a word sequence by
// looking up each consecutive trigram in a CA-RAM-resident language
// model — the inner loop of a speech recognizer's decoder.
//
// Run: go run ./examples/trigram
package main

import (
	"fmt"
	"log"
	"strings"

	"caram/internal/trigram"
	"caram/internal/workload"
)

func main() {
	// Synthesize the 13-16-character partition of a trigram database
	// (the paper's is 5,385,231 entries; this is a 1/64-scale image
	// with the same load factor under design A).
	db := trigram.Generate(trigram.GenConfig{Entries: trigram.PaperEntries / 64, Seed: 1})
	design := trigram.Design{Name: "A", R: 8, Slices: 4, Arr: trigram.Vertical}
	ev, err := trigram.Evaluate(db, design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("language model: %d trigrams in design %s, alpha=%.2f, AMAL=%.4f\n",
		ev.Entries, design.Name, ev.LoadFactor, ev.AMAL)

	// Build a "recognized utterance" whose trigrams exist in the model:
	// stitch words so that consecutive windows are real entries.
	rng := workload.NewRand(7)
	picks := make([]string, 8)
	for i := range picks {
		picks[i] = db[rng.Intn(len(db))].Text
	}

	// Score each candidate trigram: one CA-RAM access each.
	fmt.Println("\ndecoder scoring pass:")
	totalRows := 0
	for _, cand := range picks {
		score, rows, ok := trigram.Lookup(ev.Slice, cand)
		totalRows += rows
		if ok {
			fmt.Printf("  %-18q  score %5d  (%d row access)\n", cand, score, rows)
		} else {
			fmt.Printf("  %-18q  backoff (not in trigram table; %d row access)\n", cand, rows)
		}
	}
	// And a few out-of-model candidates the decoder must back off on.
	for _, cand := range []string{"not a trigram", "zzz yyy xxx", strings.Repeat("q", 14)} {
		_, rows, ok := trigram.Lookup(ev.Slice, cand)
		totalRows += rows
		fmt.Printf("  %-18q  found=%v (%d row access)\n", cand, ok, rows)
	}
	fmt.Printf("\ntotal: %d candidates, %d row accesses — contrast with a software hash\n",
		len(picks)+3, totalRows)
	fmt.Println("table that would chase chains through a 240MB N-gram memory (§4.2).")

	// Figure 7's view of this database: bucket occupancy.
	h := ev.OccupancyHistogram()
	fmt.Printf("\nbucket occupancy: mean %.1f records (bucket size %d), stddev %.1f, %.2f%% overflow\n",
		h.Mean(), trigram.KeysPerSliceRow, h.StdDev(),
		100*float64(h.CountAbove(trigram.KeysPerSliceRow))/float64(h.N()))
}
