// Dictionary search processor: the natural-language use case the
// related work's DISP chip targeted (§5), rebuilt on a CA-RAM
// subsystem. Two databases share one subsystem behind virtual ports —
// an exact-match dictionary and a ternary pattern database supporting
// wildcard queries — demonstrating slice groups, the Submit/Poll port
// interface, and ternary search-key masking.
//
// Run: go run ./examples/dictionary
package main

import (
	"fmt"
	"log"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/dict"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/subsystem"
)

// wordKey packs an ASCII word (up to 12 chars) into a 96-bit key.
func wordKey(w string) bitutil.Vec128 {
	var buf [12]byte
	copy(buf[:], w)
	return bitutil.FromBytes(buf[:])
}

var words = []string{
	"cat", "cot", "cut", "car", "cap", "can", "bat", "bet", "bit",
	"dog", "dig", "dug", "fog", "fig", "ran", "run", "sun", "son",
	"searching", "matching", "hashing", "probing", "bucket", "record",
}

func main() {
	sub := subsystem.New(64)

	// Port 1: exact dictionary (word -> id).
	lexicon := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+96+16) + 8,
		KeyBits:   96,
		DataBits:  16,
		Index:     hash.NewMultShift(6),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "dict", Main: lexicon}); err != nil {
		log.Fatal(err)
	}
	for i, w := range words {
		rec := match.Record{Key: bitutil.Exact(wordKey(w)), Data: bitutil.FromUint64(uint64(i))}
		if err := sub.Insert("dict", rec); err != nil {
			log.Fatal(err)
		}
	}

	// Exact lookups through the memory-mapped port interface: a store
	// submits the key, a load polls the result (§3.2).
	for _, w := range []string{"hashing", "cat", "missing"} {
		if _, err := sub.Submit("dict", bitutil.Exact(wordKey(w))); err != nil {
			log.Fatal(err)
		}
	}
	for {
		r, ok := sub.Poll()
		if !ok {
			break
		}
		if r.Found {
			fmt.Printf("port %s: hit, word id %d\n", r.Port, r.Record.Data.Uint64())
		} else {
			fmt.Printf("port %s: miss\n", r.Port)
		}
	}

	// Wildcard search with a masked search key: "c?t" — byte 1 is a
	// don't-care. The match processors of every candidate in the row
	// apply the mask simultaneously (Figure 4(b)).
	pattern := wordKey("c\x00t")
	mask := bitutil.FromBytes([]byte{0, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	query := bitutil.NewTernary(pattern, mask)
	fmt.Println("\nwildcard c?t:")
	matches := 0
	// The masked byte participates in hashing, so the wildcard expands
	// into one probe per candidate bucket — the multi-bucket-access
	// cost §4 attributes to don't-care bits in hash positions, paid
	// here on the query side.
	for c := byte('a'); c <= 'z'; c++ {
		probe := wordKey("c" + string(c) + "t")
		res := lexicon.Lookup(bitutil.Exact(probe))
		if res.Found && res.Record.Key.Matches(query) {
			fmt.Printf("  %s (id %d)\n", words[res.Record.Data.Uint64()], res.Record.Data.Uint64())
			matches++
		}
	}
	fmt.Printf("%d matches\n", matches)

	// Port 2: ternary pattern database — stored keys carry the don't
	// cares, so one lookup matches a whole class (no duplication since
	// the hash bits avoid the masked positions: the index generator
	// uses the first two characters only).
	firstTwoChars := make([]int, 12)
	for i := range firstTwoChars {
		firstTwoChars[i] = 96 - 16 + i // bits of the top two key bytes
	}
	patterns := caram.MustNew(caram.Config{
		IndexBits: 12,
		RowBits:   4*(1+96+96+16) + 8,
		KeyBits:   96,
		DataBits:  16,
		Ternary:   true,
		Index:     hash.NewBitSelect(firstTwoChars),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "patterns", Main: patterns}); err != nil {
		log.Fatal(err)
	}
	// Pattern "ca?": class 7.
	pkey := bitutil.NewTernary(wordKey("ca\x00"),
		bitutil.FromBytes([]byte{0, 0, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0}))
	if err := sub.Insert("patterns", match.Record{Key: pkey, Data: bitutil.FromUint64(7)}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nternary pattern ca?:")
	for _, w := range []string{"cat", "car", "cap", "cot", "dog"} {
		res := patterns.Lookup(bitutil.Exact(wordKey(w)))
		fmt.Printf("  %-4s -> class %v (found=%v)\n", w, res.Record.Data.Uint64(), res.Found)
	}

	fmt.Printf("\nsubsystem engines: %v\n", sub.Engines())

	// The same machinery, packaged: internal/dict wraps a slice with
	// word keys (length byte included), wildcard planning (anchored
	// patterns stay single-bucket; leading wildcards sweep the array
	// through the match processors), and prefix search.
	de := dict.MustNew(dict.Config{IndexBits: 6, Slots: 8})
	for i, w := range words {
		if err := de.Add(w, uint32(i)); err != nil {
			log.Fatal(err)
		}
	}
	ms, rows, err := de.MatchPattern("c?t")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndict.MatchPattern(c?t): %d matches in %d row access(es):", len(ms), rows)
	for _, m := range ms {
		fmt.Printf(" %s", m.Word)
	}
	ms, rows, err = de.MatchPrefix("ma")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndict.MatchPrefix(ma): %d matches in %d row access(es):", len(ms), rows)
	for _, m := range ms {
		fmt.Printf(" %s", m.Word)
	}
	fmt.Println()
}
