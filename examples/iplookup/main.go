// IP routing-table lookup (§4.1): the same forwarding table served by
// three engines — a CA-RAM design, a TCAM, and a software trie — with
// per-lookup cost and the area/power comparison of Figure 8.
//
// Run: go run ./examples/iplookup
package main

import (
	"fmt"
	"log"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/cost"
	"caram/internal/iproute"
	"caram/internal/match"
	"caram/internal/swsearch"
	"caram/internal/workload"
)

func main() {
	// A 1/16-scale BGP-like table (full scale: -see cmd/caram-bench).
	table := iproute.Generate(iproute.GenConfig{Prefixes: 11672, Seed: 1})
	fmt.Printf("routing table: %d prefixes\n", len(table))

	// Engine 1: CA-RAM design D, scaled to keep the paper's alpha.
	design := iproute.Design{Name: "D", R: 8, KeysPerRow: 64, Slices: 2, Arr: iproute.Horizontal}
	ev, err := iproute.Evaluate(table, design, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CA-RAM design D: alpha=%.2f, %.2f%% buckets overflow, AMALu=%.3f\n",
		ev.LoadFactor, ev.OverflowingPct, ev.AMALu)

	// Engine 2: a TCAM with LPM priority by prefix length.
	tcam := cam.MustNew(cam.Config{Entries: len(table), KeyBits: 32, Kind: cam.Ternary})
	for _, p := range table {
		rec := match.Record{Key: p.Key(), Data: bitutil.FromUint64(uint64(p.NextHop))}
		if err := tcam.Insert(rec, p.Len); err != nil {
			log.Fatal(err)
		}
	}

	// Engine 3: a software unibit trie.
	trie := swsearch.NewTrie(32)
	for _, p := range table {
		trie.Insert(uint64(p.Addr), p.Len, uint64(p.NextHop))
	}

	// Route a sample of addresses through all three and compare.
	rng := workload.NewRand(2)
	lookups, agree := 0, 0
	for i := 0; i < 20000; i++ {
		p := table[rng.Intn(len(table))]
		addr := p.Addr
		if p.Len < 32 {
			addr |= uint32(rng.Uint32()) & (1<<uint(32-p.Len) - 1)
		}
		caramHop, _, ok1 := iproute.LPMLookup(ev.Slice, addr)
		tres := tcam.Search(bitutil.Exact(bitutil.FromUint64(uint64(addr))))
		trieHop, _, ok3 := trie.Lookup(uint64(addr))
		if !ok1 || !tres.Found || !ok3 {
			log.Fatalf("engines disagree on reachability of %s", iproute.AddrString(addr))
		}
		lookups++
		if uint64(caramHop) == tres.Record.Data.Uint64() && tres.Record.Data.Uint64() == trieHop {
			agree++
		}
	}
	fmt.Printf("%d lookups; all three engines agree on %d (%.2f%%)\n",
		lookups, agree, 100*float64(agree)/float64(lookups))

	// Cost per lookup.
	fmt.Printf("memory accesses/lookup: CA-RAM %.3f, software trie %.2f, TCAM 1 (but %d cells active per search)\n",
		ev.Slice.Stats().AMAL(), trie.Counter().AMAL(), tcam.Capacity()*32)

	// Figure 8 at full-scale parameters: area and power.
	full := iproute.Table2Designs[3]
	comp := cost.Fig8(cost.Default, cost.Fig8Params{
		App:            "IP lookup",
		BaselineKind:   cost.TCAM6T,
		BaselineCells:  198795 * 32,
		BaselineRateHz: 143e6,
		CapacityBits:   full.CapacityBits(),
		LoadFactor:     float64(iproute.PaperTableSize) / float64(full.Capacity()),
		BucketBits:     float64(full.Slots()) * 64,
		Slots:          float64(full.Slots()),
		CARAMRateHz:    143e6,
		ComparePower:   true,
	})
	fmt.Printf("full-scale area: TCAM %.1f mm^2 vs CA-RAM %.1f mm^2 (%.0f%% saving)\n",
		comp.BaselineAreaMM2, comp.CARAMAreaMM2, comp.AreaSavingPct)
	fmt.Printf("full-scale power saving at equal throughput: %.0f%%\n", comp.PowerSavingPct)
}
