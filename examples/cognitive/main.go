// Cognitive-model declarative memory (§6 future work): "a large-scale
// system implementing a cognitive model such as ACT-R will benefit
// from employing CA-RAM, as it requires much search and data
// evaluation capabilities."
//
// An ACT-R-style declarative memory stores chunks — small typed tuples
// of slots — retrieved by partial match: the production asks for a
// chunk whose specified slots match, ignoring the rest. That is
// exactly search-key masking. Activation decay, applied to the whole
// memory at once, is the paper's "massive data evaluation and
// modification" capability of the decoupled match logic.
//
// Run: go run ./examples/cognitive
package main

import (
	"fmt"
	"log"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
)

// Chunk encoding: four 8-bit slots packed into a 32-bit key
// [type | slot1 | slot2 | slot3], with a 16-bit activation as data.
const (
	typeAddFact = 0x01 // addition facts: slot1 + slot2 = slot3
	typeCount   = 0x02 // counting facts: slot1 -> slot2
)

func chunkKey(ctype, s1, s2, s3 uint8) bitutil.Vec128 {
	return bitutil.FromUint64(uint64(ctype)<<24 | uint64(s1)<<16 | uint64(s2)<<8 | uint64(s3))
}

func main() {
	// Declarative memory: hash on the type and first slot so retrieval
	// requests that always specify them stay single-bucket.
	memory := caram.MustNew(caram.Config{
		IndexBits: 8,
		RowBits:   16*(1+32+16) + 8,
		KeyBits:   32,
		DataBits:  16,
		Index:     hash.NewBitSelect([]int{16, 17, 18, 19, 24, 25, 26, 27}),
	})

	// Learn the addition table and counting facts, base activation 1000.
	for a := uint8(0); a < 10; a++ {
		for b := uint8(0); b < 10; b++ {
			rec := match.Record{
				Key:  bitutil.Exact(chunkKey(typeAddFact, a, b, a+b)),
				Data: bitutil.FromUint64(1000),
			}
			if err := memory.Insert(rec); err != nil {
				log.Fatal(err)
			}
		}
	}
	for n := uint8(0); n < 20; n++ {
		rec := match.Record{
			Key:  bitutil.Exact(chunkKey(typeCount, n, n+1, 0)),
			Data: bitutil.FromUint64(1000),
		}
		if err := memory.Insert(rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("declarative memory: %d chunks, load factor %.2f\n",
		memory.Count(), memory.LoadFactor())

	// Retrieval request: (add-fact :slot1 3 :slot2 4 :slot3 ?) — the
	// unspecified slot is a masked byte; one memory access answers it.
	request := bitutil.NewTernary(
		chunkKey(typeAddFact, 3, 4, 0),
		bitutil.FromUint64(0xff), // slot3 unspecified
	)
	res := memory.Lookup(request)
	if !res.Found {
		log.Fatal("retrieval failed")
	}
	fmt.Printf("retrieve (add 3 4 ?): slot3 = %d, activation %d, %d row access\n",
		res.Record.Key.Value.Uint64()&0xff, res.Record.Data.Uint64(), res.RowsRead)

	// Counting: what follows 7?
	req2 := bitutil.NewTernary(chunkKey(typeCount, 7, 0, 0), bitutil.FromUint64(0xff00))
	res = memory.Lookup(req2)
	fmt.Printf("retrieve (count 7 ?): next = %d\n", res.Record.Key.Value.Uint64()>>8&0xff)

	// Reinforcement: bump the activation of every addition fact
	// involving a 3 in slot1 — a masked bulk update.
	bumped := memory.UpdateWhere(
		bitutil.NewTernary(chunkKey(typeAddFact, 3, 0, 0), bitutil.FromUint64(0xffff)),
		func(r match.Record) bitutil.Vec128 {
			return bitutil.FromUint64(r.Data.Uint64() + 50)
		})
	fmt.Printf("reinforced %d chunks with slot1=3\n", bumped)

	// Global activation decay: every chunk, one pass over the array —
	// the massive-data-modification capability (§1).
	decayed := memory.UpdateWhere(
		bitutil.NewTernary(bitutil.Vec128{}, bitutil.Mask(32)), // match all
		func(r match.Record) bitutil.Vec128 {
			return bitutil.FromUint64(r.Data.Uint64() * 9 / 10)
		})
	fmt.Printf("decayed all %d chunks in one array sweep\n", decayed)

	// The reinforced facts survive decay above the baseline.
	res = memory.Lookup(bitutil.Exact(chunkKey(typeAddFact, 3, 4, 7)))
	base := memory.Lookup(bitutil.Exact(chunkKey(typeAddFact, 5, 5, 10)))
	fmt.Printf("activation after decay: (add 3 4 7) = %d vs baseline (add 5 5 10) = %d\n",
		res.Record.Data.Uint64(), base.Record.Data.Uint64())

	// Forgetting: drop every chunk whose activation fell below 905.
	deleted := 0
	for _, r := range memory.SelectWhere(bitutil.NewTernary(bitutil.Vec128{}, bitutil.Mask(32))) {
		if r.Data.Uint64() < 905 {
			if err := memory.Delete(r.Key); err == nil {
				deleted++
			}
		}
	}
	fmt.Printf("forgot %d low-activation chunks; %d remain\n", deleted, memory.Count())
}
