// Packet filtering — the intro's other search-intensive network
// workload: classify 5-tuples against an ACL at line rate. The same
// rule set runs on a flat TCAM and on a CA-RAM engine (hashed on
// destination bits, wildcard rules in a small parallel overflow TCAM),
// and both are verified against a linear-scan oracle.
//
// Run: go run ./examples/packetfilter
package main

import (
	"fmt"
	"log"

	"caram/internal/iproute"
	"caram/internal/pktclass"
)

func main() {
	rules := pktclass.GenerateRules(pktclass.GenRulesConfig{Rules: 2000, Seed: 1})
	expanded := 0
	maxExp := 0
	for _, r := range rules {
		e := r.ExpansionFactor()
		expanded += e
		if e > maxExp {
			maxExp = e
		}
	}
	fmt.Printf("ACL: %d rules -> %d ternary entries after range-to-prefix expansion (worst rule: %d)\n",
		len(rules), expanded, maxExp)

	tcam, err := pktclass.NewTCAMClassifier(rules, 0)
	if err != nil {
		log.Fatal(err)
	}
	caramCls, err := pktclass.NewCARAMClassifier(rules, pktclass.CARAMConfig{
		IndexBits: 9, Slots: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	main, ovfl := caramCls.Entries()
	fmt.Printf("CA-RAM engine: %d entries in the hashed array (+%d duplicated), %d in the overflow TCAM (%.1f%%)\n",
		main, caramCls.Duplicated, ovfl, 100*float64(ovfl)/float64(main+ovfl))

	trace := pktclass.GenerateTrace(rules, 20000, 0.25, 2)
	agree, hits, rows := 0, 0, 0
	for _, p := range trace {
		want := pktclass.Oracle(rules, p)
		a := tcam.Classify(p)
		b := caramCls.Classify(p)
		if a.Matched != want.Matched || b.Matched != want.Matched {
			log.Fatalf("classifiers disagree with oracle on %+v", p)
		}
		if want.Matched && (a.Priority != want.Priority || b.Priority != want.Priority) {
			log.Fatalf("priority mismatch on %+v", p)
		}
		agree++
		if want.Matched {
			hits++
		}
		rows += b.RowsRead
	}
	fmt.Printf("%d packets classified; %d matched a rule; all three engines agree\n", agree, hits)
	fmt.Printf("CA-RAM cost: %.3f row accesses per packet (overflow TCAM searched in parallel)\n",
		float64(rows)/float64(len(trace)))

	// The denial the sample ACL would issue for a probe to a random
	// host's SSH port, as a concrete look at one decision.
	probe := pktclass.FiveTuple{
		SrcIP: 0x0A0A0A0A, DstIP: rules[0].DstPrefix.Addr | 1,
		SrcPort: 40000, DstPort: 22, Proto: 6,
	}
	res := caramCls.Classify(probe)
	fmt.Printf("probe %s -> %s:22/tcp: matched=%v rule=%d action=%d\n",
		iproute.AddrString(probe.SrcIP), iproute.AddrString(probe.DstIP),
		res.Matched, res.RuleID, res.Action)

	// Activity comparison: cells the TCAM lights up per search vs the
	// CA-RAM's single bucket.
	st := tcam.Stats()
	fmt.Printf("TCAM activity: %d cells per search; CA-RAM: one %d-key bucket row\n",
		st.CellsActivated/st.Searches, 32)
}
