module caram

go 1.22
