package server

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"caram/internal/trace"
)

// tracedServer builds the one-engine fixture with the given trace
// policy attached (threshold 0 admits any request with nonzero
// latency to the slowlog).
func tracedServer(cfg trace.Config) (*Server, *trace.Collector) {
	col := trace.NewCollector(cfg)
	return allocServer(WithTracing(col)), col
}

// TestPipelinedBurstAttribution is the regression test for per-command
// trace stamps: when a client pipelines a burst that Handle answers
// with one flush, every member must still get its own trace with its
// own begin/end stamps — not one trace (or one timestamp) for the whole
// burst.
func TestPipelinedBurstAttribution(t *testing.T) {
	s, col := tracedServer(trace.Config{Slowlog: 0, Ring: 16})
	burst := []string{
		"INSERT db dead 42",
		"SEARCH db dead",
		"SEARCH db f00d",
		"STATS db",
		"DELETE db dead",
	}
	in := strings.NewReader(strings.Join(burst, "\n") + "\n")
	var out strings.Builder
	s.Handle(in, &out)
	if got := len(strings.Split(strings.TrimSpace(out.String()), "\n")); got != len(burst) {
		t.Fatalf("%d replies for %d requests", got, len(burst))
	}

	entries := col.Slow().Snapshot(nil, 0)
	if len(entries) != len(burst) {
		t.Fatalf("slowlog retained %d traces for a %d-request burst", len(entries), len(burst))
	}
	// Snapshot is newest-first; walk oldest-first to match the burst.
	for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
		entries[i], entries[j] = entries[j], entries[i]
	}
	wantCmd := []string{"INSERT", "SEARCH", "SEARCH", "STATS", "DELETE"}
	wantKey := []string{"dead", "dead", "f00d", "", "dead"}
	for i, e := range entries {
		if e.Cmd != wantCmd[i] {
			t.Errorf("trace %d: cmd %q, want %q", i, e.Cmd, wantCmd[i])
		}
		if e.Key != wantKey[i] {
			t.Errorf("trace %d: key %q, want %q", i, e.Key, wantKey[i])
		}
		if e.Dur <= 0 {
			t.Errorf("trace %d: no wall latency recorded", i)
		}
		if i > 0 {
			// Per-command stamps: each member of the burst begins after
			// the previous one ended. A single per-burst stamp would
			// make every Begin identical.
			prev := entries[i-1]
			if !e.Begin.After(prev.Begin) {
				t.Errorf("trace %d begins at %v, not after trace %d at %v — burst members share a stamp",
					i, e.Begin, i-1, prev.Begin)
			}
			if e.Begin.Before(prev.Begin.Add(prev.Dur)) {
				t.Errorf("trace %d begins inside trace %d's window", i, i-1)
			}
		}
	}
	// The search traces carry their probe chains and results.
	hit := entries[1]
	if hit.Result != "HIT" || !hit.Found || hit.Rows < 1 {
		t.Fatalf("SEARCH hit trace: %+v", hit)
	}
	probes := 0
	hit.ProbeEvents(func(trace.Event) { probes++ })
	if probes == 0 {
		t.Fatal("SEARCH hit trace has no probe events")
	}
	if miss := entries[2]; miss.Result != "MISS" || miss.Found {
		t.Fatalf("SEARCH miss trace: %+v", miss)
	}
}

func TestSlowlogWire(t *testing.T) {
	s, _ := tracedServer(trace.Config{Slowlog: 0, Ring: 16})
	if got := s.Exec("INSERT db dead 42"); got != "OK" {
		t.Fatalf("INSERT: %q", got)
	}
	if got := s.Exec("SEARCH db dead"); got != "HIT 0:0000000000000042" {
		t.Fatalf("SEARCH: %q", got)
	}
	if got := s.Exec("SLOWLOG LEN"); got != "SLOWLOG len=2" {
		t.Fatalf("SLOWLOG LEN: %q", got)
	}
	// The LEN request itself was admitted after its reply, so the newest
	// entry now is the LEN command.
	got := s.Exec("SLOWLOG GET 1")
	if !strings.HasPrefix(got, "SLOWLOG n=1 id=3 ") || !strings.Contains(got, " cmd=SLOWLOG ") {
		t.Fatalf("SLOWLOG GET 1: %q", got)
	}
	got = s.Exec("SLOWLOG GET")
	if !strings.HasPrefix(got, "SLOWLOG n=4 ") ||
		!strings.Contains(got, " cmd=SEARCH engine=db key=dead result=HIT rows=1") ||
		!strings.Contains(got, " cmd=INSERT engine=db key=dead result=OK ") {
		t.Fatalf("SLOWLOG GET: %q", got)
	}
	if got := s.Exec("SLOWLOG GET 0"); got != "SLOWLOG n=0" {
		t.Fatalf("SLOWLOG GET 0: %q", got)
	}
	if got := s.Exec("SLOWLOG RESET"); got != "OK" {
		t.Fatalf("SLOWLOG RESET: %q", got)
	}
	// The RESET itself is admitted right after its reply is built.
	if got := s.Exec("SLOWLOG LEN"); got != "SLOWLOG len=1" {
		t.Fatalf("SLOWLOG LEN after RESET: %q", got)
	}
	const usage = "ERR usage: SLOWLOG GET [n] | SLOWLOG LEN | SLOWLOG RESET"
	for _, bad := range []string{"SLOWLOG", "SLOWLOG BOGUS", "SLOWLOG GET x", "SLOWLOG GET -1", "SLOWLOG GET 1 2", "SLOWLOG LEN extra", "SLOWLOG RESET extra"} {
		if got := s.Exec(bad); got != usage {
			t.Fatalf("%s: %q, want usage", bad, got)
		}
	}
}

func TestSlowlogRequiresTracing(t *testing.T) {
	s := allocServer() // no WithTracing
	for _, req := range []string{"SLOWLOG LEN", "SLOWLOG GET", "SLOWLOG RESET"} {
		if got := s.Exec(req); got != "ERR tracing disabled" {
			t.Fatalf("%s on untraced server: %q", req, got)
		}
	}
}

// TestExplain pins the deterministic EXPLAIN output, including the full
// probe chain of a displaced key: keys 3, 2c, 73, 76 and 80 all hash to
// bucket 1 under MultShift(6); with 4 slots per bucket the fifth key
// spills to bucket 2 (displacement 1).
func TestExplain(t *testing.T) {
	s := allocServer() // EXPLAIN works without WithTracing
	for _, ins := range []string{"3 a1", "2c a2", "73 a3", "76 a4", "80 a5"} {
		if got := s.Exec("INSERT db " + ins); got != "OK" {
			t.Fatalf("INSERT db %s: %q", ins, got)
		}
	}
	got := s.Exec("EXPLAIN SEARCH db 80")
	for _, want := range []string{
		"EXPLAIN engine=db key=80 home=1 reach=1 rows=2 ",
		" slots=5 matches=1 ",
		" expected=1.200 ", // (4 records at d=0, 1 at d=1): (4*1+2)/5
		" result=HIT ",
		" chain=[b1:d0:s4:m0 b2:d1:s1:m1:ovf:hit] ",
		" ovfl=none",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("EXPLAIN db 80 missing %q:\n%s", want, got)
		}
	}
	// An undisplaced key resolves in one probe.
	got = s.Exec("EXPLAIN SEARCH db 3")
	if !strings.Contains(got, " home=1 reach=1 rows=1 ") || !strings.Contains(got, " chain=[b1:d0:s4:m1:hit] ") {
		t.Errorf("EXPLAIN db 3: %s", got)
	}
	// A miss still shows the probed home bucket.
	got = s.Exec("EXPLAIN SEARCH db f00d")
	if !strings.Contains(got, " result=MISS ") || !strings.Contains(got, " rows=1 ") {
		t.Errorf("EXPLAIN db f00d: %s", got)
	}
	// Errors and usage.
	if got := s.Exec("EXPLAIN SEARCH nope 1"); got != `ERR subsystem: no engine "nope"` {
		t.Errorf("EXPLAIN unknown engine: %q", got)
	}
	const usage = "ERR usage: EXPLAIN SEARCH <engine> <key> [mask]"
	for _, bad := range []string{"EXPLAIN", "EXPLAIN SEARCH", "EXPLAIN SEARCH db", "EXPLAIN INSERT db 1", "EXPLAIN SEARCH db 1 2 3"} {
		if got := s.Exec(bad); got != usage {
			t.Errorf("%s: %q, want usage", bad, got)
		}
	}
	if got := s.Exec("EXPLAIN SEARCH db 12zz"); got != `ERR bad hex "12zz"` {
		t.Errorf("EXPLAIN bad hex: %q", got)
	}
	// EXPLAIN charges the lookup like a real search: stats moved.
	if got := s.Exec("STATS db"); !strings.Contains(got, "hits=") {
		t.Fatalf("STATS: %q", got)
	}
}

// TestSlowRequestLogged checks the slog hookup: a slowlog admission
// emits one Warn line carrying the request identity.
func TestSlowRequestLogged(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	col := trace.NewCollector(trace.Config{Slowlog: 0})
	s := allocServer(WithTracing(col), WithLogger(logger))
	if got := s.Exec("INSERT db dead 42"); got != "OK" {
		t.Fatalf("INSERT: %q", got)
	}
	s.Exec("SEARCH db dead")
	out := buf.String()
	for _, want := range []string{"slow request", "cmd=SEARCH", "engine=db", "key=dead", "result=HIT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-request log missing %q:\n%s", want, out)
		}
	}
	// Below-threshold servers stay silent.
	buf.Reset()
	quiet := allocServer(WithTracing(trace.NewCollector(trace.Config{Slowlog: time.Hour})), WithLogger(logger))
	quiet.Exec("SEARCH db dead")
	if buf.Len() != 0 {
		t.Fatalf("fast request logged: %s", buf.String())
	}
}

// TestTracingOnSteadyStateAllocs documents the traced path's cost: with
// a collector attached but nothing admitted (high threshold, sampling
// off), the per-request overhead is pooled-trace reuse — zero
// steady-state allocations, same as tracing off.
func TestTracingOnSteadyStateAllocs(t *testing.T) {
	col := trace.NewCollector(trace.Config{Slowlog: time.Hour})
	s := allocServer(WithTracing(col))
	if got := s.Exec("INSERT db dead 42"); got != "OK" {
		t.Fatalf("INSERT: %q", got)
	}
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		buf = s.ExecAppend(buf[:0], "SEARCH db dead")
	}); n != 0 {
		t.Fatalf("unadmitted traced SEARCH allocated %.1f times per run, want 0", n)
	}
}
