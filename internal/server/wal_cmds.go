package server

import (
	"strings"
	"time"
)

// execWALAppend answers the WAL command against the durability layer.
//
//	WAL STATUS       — commit horizon in deterministic form: appended
//	                   and durable LSNs, on-disk segment count, newest
//	                   snapshot bound, and the sync policy. Under
//	                   sync=always durable equals lsn at reply time
//	                   (the ack ordering guarantees it), so the reply
//	                   is a pure function of the session — golden tests
//	                   rely on that.
//	WAL STATUS SYNC  — adds the nondeterministic fsync counters
//	                   (count, mean latency, age of the last one) and
//	                   the pending-record lag, following the METRICS /
//	                   METRICS LATENCY split.
func (s *Server) execWALAppend(dst []byte, fs *FieldScanner) []byte {
	const usage = "ERR usage: WAL STATUS [SYNC]"
	sub, ok := fs.next()
	if !ok || !strings.EqualFold(sub, "STATUS") {
		return append(dst, usage...)
	}
	arg, hasArg := fs.next()
	if _, extra := fs.next(); extra || (hasArg && !strings.EqualFold(arg, "SYNC")) {
		return append(dst, usage...)
	}
	if s.wal == nil {
		return append(dst, "ERR wal disabled"...)
	}
	st := s.wal.Stats()
	dst = append(dst, "WAL lsn="...)
	dst = appendUint(dst, st.LSN)
	dst = append(dst, " durable="...)
	dst = appendUint(dst, st.Durable)
	dst = append(dst, " segments="...)
	dst = appendInt(dst, int64(st.Segments))
	dst = append(dst, " snapshot_lsn="...)
	dst = appendUint(dst, st.SnapshotLSN)
	dst = append(dst, " sync="...)
	dst = append(dst, st.Policy...)
	if hasArg {
		dst = append(dst, " pending="...)
		dst = appendUint(dst, st.Pending)
		dst = append(dst, " fsyncs="...)
		dst = appendUint(dst, st.Fsyncs)
		dst = append(dst, " fsync_avg_us="...)
		var avg uint64
		if st.Fsyncs > 0 {
			avg = st.FsyncNanos / st.Fsyncs / 1000
		}
		dst = appendUint(dst, avg)
		dst = append(dst, " last_fsync_age_ms="...)
		if st.LastFsync == 0 {
			dst = appendInt(dst, -1)
		} else {
			dst = appendInt(dst, (time.Now().UnixNano()-st.LastFsync)/1e6)
		}
	}
	return dst
}
