package server

import (
	"testing"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/subsystem"
	"caram/internal/wal"
)

func allocServer(opts ...Option) *Server {
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewMultShift(6),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		panic(err)
	}
	return New(sub, opts...)
}

// TestExecAppendSearchZeroAlloc guards the end-to-end request hot path:
// a SEARCH through parse → engine lock → word-parallel match → reply
// encode must not allocate when the caller reuses its reply buffer, on
// the uninstrumented and the default (instrumented) server alike. Run
// by `make alloc-guard` / `make ci`.
func TestExecAppendSearchZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    *Server
	}{
		{"uninstrumented", allocServer(WithoutMetrics())},
		{"instrumented", allocServer()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Exec("INSERT db dead 42"); got != "OK" {
				t.Fatalf("INSERT: %q", got)
			}
			buf := make([]byte, 0, 64)
			if n := testing.AllocsPerRun(200, func() {
				buf = tc.s.ExecAppend(buf[:0], "SEARCH db dead")
				buf = tc.s.ExecAppend(buf[:0], "SEARCH db f00d")
			}); n != 0 {
				t.Fatalf("SEARCH ExecAppend allocated %.1f times per run, want 0", n)
			}
			if got := string(tc.s.ExecAppend(buf[:0], "SEARCH db dead")); got != "HIT 0:0000000000000042" {
				t.Fatalf("SEARCH reply = %q", got)
			}
		})
	}
}

// TestTypedExecAppendSearchZeroAlloc re-runs the zero-alloc guard on a
// server also hosting wire-created typed engines: registering lpm /
// pktclass / trigram engines must not add allocations to the exact
// engine's SEARCH hot path (the COW engine roster keeps dispatch to
// one atomic load), and the typed reads themselves stay allocation-free
// too — LPM's ranked LookupBest and the trigram key fold included.
func TestTypedExecAppendSearchZeroAlloc(t *testing.T) {
	s := allocServer()
	for _, req := range []string{
		"CREATE ENGINE ip TYPE lpm INDEXBITS 6 SLOTS 8",
		"CREATE ENGINE acl TYPE pktclass INDEXBITS 6 SLOTS 8",
		"CREATE ENGINE tri TYPE trigram INDEXBITS 6",
		"INSERT db dead 42",
		"MINSERT ip a000000 ffffff 801",
		"MINSERT ip a010000 ffff 1002",
		"TINSERT tri 2a the quick fox",
	} {
		if got := s.Exec(req); got != "OK" {
			t.Fatalf("%s: %q", req, got)
		}
	}
	buf := make([]byte, 0, 64)
	for _, tc := range []struct{ name, req string }{
		{"exact", "SEARCH db dead"},
		{"lpm", "SEARCH ip a010101"},
		{"trigram", "TSEARCH tri the quick fox"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if n := testing.AllocsPerRun(200, func() {
				buf = s.ExecAppend(buf[:0], tc.req)
			}); n != 0 {
				t.Fatalf("%s ExecAppend allocated %.1f times per run, want 0", tc.req, n)
			}
		})
	}
}

// TestWALExecAppendSearchZeroAlloc re-runs the zero-alloc guard with
// the durability layer attached: journaling is an insert-side cost,
// and SEARCH through a WAL-enabled server must stay allocation-free —
// the read hot path sees only a nil-journal check it never takes.
// Run by `make alloc-guard` / `make ci`.
func TestWALExecAppendSearchZeroAlloc(t *testing.T) {
	w, res, err := wal.Recover(t.TempDir(), nil, wal.Options{Sync: wal.SyncPolicy{Mode: wal.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	s := allocServer(WithWAL(w, res.RosterLSN, 0))
	defer s.Close() //nolint:errcheck
	if got := s.Exec("INSERT db dead 42"); got != "OK" {
		t.Fatalf("INSERT: %q", got)
	}
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		buf = s.ExecAppend(buf[:0], "SEARCH db dead")
		buf = s.ExecAppend(buf[:0], "SEARCH db f00d")
	}); n != 0 {
		t.Fatalf("SEARCH with WAL enabled allocated %.1f times per run, want 0", n)
	}
	if got := string(s.ExecAppend(buf[:0], "SEARCH db dead")); got != "HIT 0:0000000000000042" {
		t.Fatalf("SEARCH reply = %q", got)
	}
}
