package server

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/subsystem"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewMultShift(6),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	return New(sub)
}

// drive sends request lines and returns the response lines.
func drive(t *testing.T, s *Server, reqs ...string) []string {
	t.Helper()
	in := strings.NewReader(strings.Join(reqs, "\n") + "\n")
	var out strings.Builder
	s.Handle(in, &out)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(reqs) {
		t.Fatalf("%d responses for %d requests: %q", len(lines), len(reqs), out.String())
	}
	return lines
}

func TestProtocolBasics(t *testing.T) {
	s := testServer(t)
	resp := drive(t, s,
		"ENGINES",
		"INSERT db dead 42",
		"SEARCH db dead",
		"SEARCH db beef",
		"DELETE db dead",
		"SEARCH db dead",
		"STATS db",
	)
	if resp[0] != "ENGINES db" {
		t.Errorf("ENGINES = %q", resp[0])
	}
	if resp[1] != "OK" {
		t.Errorf("INSERT = %q", resp[1])
	}
	if resp[2] != "HIT 0:0000000000000042" {
		t.Errorf("SEARCH = %q", resp[2])
	}
	if resp[3] != "MISS" {
		t.Errorf("SEARCH miss = %q", resp[3])
	}
	if resp[4] != "OK" {
		t.Errorf("DELETE = %q", resp[4])
	}
	if resp[5] != "MISS" {
		t.Errorf("post-delete SEARCH = %q", resp[5])
	}
	if !strings.HasPrefix(resp[6], "STATS n=0 ") {
		t.Errorf("STATS = %q", resp[6])
	}
}

func TestMaskedSearch(t *testing.T) {
	// Masked search keys need an index generator that ignores the
	// masked bits (the paper's §4 caveat), so this engine hashes on
	// key bits 8..13 and the query masks only the low nibble.
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewBitSelect([]int{8, 9, 10, 11, 12, 13}),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	s := New(sub)
	resp := drive(t, s,
		"INSERT db 1234 7",
		"SEARCH db 1230 f", // low nibble masked, hash bits untouched
	)
	if resp[1] != "HIT 0:0000000000000007" {
		t.Errorf("masked SEARCH = %q", resp[1])
	}
}

func TestProtocolErrors(t *testing.T) {
	s := testServer(t)
	resp := drive(t, s,
		"",
		"BOGUS",
		"INSERT db onearg",
		"INSERT nope 1 2",
		"SEARCH nope 1",
		"SEARCH db zz",
		"DELETE db 999",
		"STATS nope",
		"INSERT db 1 2 3 4",
	)
	for i, r := range resp {
		if !strings.HasPrefix(r, "ERR") {
			t.Errorf("request %d: expected ERR, got %q", i, r)
		}
	}
}

func TestWideKeys(t *testing.T) {
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 4,
		RowBits:   2*(1+128+96) + 8,
		KeyBits:   128,
		DataBits:  96,
		Index:     hash.NewMultShift(4),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "wide", Main: sl}); err != nil {
		t.Fatal(err)
	}
	s := New(sub)
	resp := drive(t, s,
		"INSERT wide deadbeef:cafef00d 1:2",
		"SEARCH wide deadbeef:cafef00d",
	)
	if resp[1] != "HIT 1:0000000000000002" {
		t.Errorf("wide SEARCH = %q", resp[1])
	}
}

// Real sockets, concurrent clients.
func TestServeOverTCP(t *testing.T) {
	s := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.Serve(l) //nolint:errcheck // returns when l closes

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			rd := bufio.NewReader(conn)
			for i := 0; i < 50; i++ {
				key := c*1000 + i
				if _, err := conn.Write([]byte(
					"INSERT db " + hex(key) + " " + hex(key*2) + "\n")); err != nil {
					t.Error(err)
					return
				}
				line, err := rd.ReadString('\n')
				if err != nil || strings.TrimSpace(line) != "OK" {
					t.Errorf("insert %d: %q %v", key, line, err)
					return
				}
				if _, err := conn.Write([]byte("SEARCH db " + hex(key) + "\n")); err != nil {
					t.Error(err)
					return
				}
				line, _ = rd.ReadString('\n')
				if !strings.HasPrefix(line, "HIT") {
					t.Errorf("search %d: %q", key, line)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func hex(v int) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{digits[v%16]}, b...)
		v /= 16
	}
	return string(b)
}
