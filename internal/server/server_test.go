package server

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/subsystem"
	"caram/internal/trace"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	return fuzzServer()
}

// fuzzServer builds the one-engine fixture without a testing.T, so
// fuzz targets can share it. Tracing is attached with a zero slowlog
// threshold (small ring) so fuzzed inputs also stress the trace
// record/admit/recycle path and the SLOWLOG command sees entries.
func fuzzServer() *Server {
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewMultShift(6),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		panic(err)
	}
	return New(sub, WithTracing(trace.NewCollector(trace.Config{SampleN: 3, Slowlog: 0, Ring: 8})))
}

// drive sends request lines and returns the response lines.
func drive(t *testing.T, s *Server, reqs ...string) []string {
	t.Helper()
	in := strings.NewReader(strings.Join(reqs, "\n") + "\n")
	var out strings.Builder
	s.Handle(in, &out)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(reqs) {
		t.Fatalf("%d responses for %d requests: %q", len(lines), len(reqs), out.String())
	}
	return lines
}

func TestProtocolBasics(t *testing.T) {
	s := testServer(t)
	resp := drive(t, s,
		"ENGINES",
		"INSERT db dead 42",
		"SEARCH db dead",
		"SEARCH db beef",
		"DELETE db dead",
		"SEARCH db dead",
		"STATS db",
	)
	if resp[0] != "ENGINES db" {
		t.Errorf("ENGINES = %q", resp[0])
	}
	if resp[1] != "OK" {
		t.Errorf("INSERT = %q", resp[1])
	}
	if resp[2] != "HIT 0:0000000000000042" {
		t.Errorf("SEARCH = %q", resp[2])
	}
	if resp[3] != "MISS" {
		t.Errorf("SEARCH miss = %q", resp[3])
	}
	if resp[4] != "OK" {
		t.Errorf("DELETE = %q", resp[4])
	}
	if resp[5] != "MISS" {
		t.Errorf("post-delete SEARCH = %q", resp[5])
	}
	if !strings.HasPrefix(resp[6], "STATS n=0 ") {
		t.Errorf("STATS = %q", resp[6])
	}
}

func TestMaskedSearch(t *testing.T) {
	// Masked search keys need an index generator that ignores the
	// masked bits (the paper's §4 caveat), so this engine hashes on
	// key bits 8..13 and the query masks only the low nibble.
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewBitSelect([]int{8, 9, 10, 11, 12, 13}),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	s := New(sub)
	resp := drive(t, s,
		"INSERT db 1234 7",
		"SEARCH db 1230 f", // low nibble masked, hash bits untouched
	)
	if resp[1] != "HIT 0:0000000000000007" {
		t.Errorf("masked SEARCH = %q", resp[1])
	}
}

func TestProtocolErrors(t *testing.T) {
	s := testServer(t)
	resp := drive(t, s,
		"",
		"BOGUS",
		"INSERT db onearg",
		"INSERT nope 1 2",
		"SEARCH nope 1",
		"SEARCH db zz",
		"DELETE db 999",
		"STATS nope",
		"INSERT db 1 2 3 4",
	)
	for i, r := range resp {
		if !strings.HasPrefix(r, "ERR") {
			t.Errorf("request %d: expected ERR, got %q", i, r)
		}
	}
}

func TestWideKeys(t *testing.T) {
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 4,
		RowBits:   2*(1+128+96) + 8,
		KeyBits:   128,
		DataBits:  96,
		Index:     hash.NewMultShift(4),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "wide", Main: sl}); err != nil {
		t.Fatal(err)
	}
	s := New(sub)
	resp := drive(t, s,
		"INSERT wide deadbeef:cafef00d 1:2",
		"SEARCH wide deadbeef:cafef00d",
	)
	if resp[1] != "HIT 1:0000000000000002" {
		t.Errorf("wide SEARCH = %q", resp[1])
	}
}

// Real sockets, concurrent clients.
func TestServeOverTCP(t *testing.T) {
	s := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.Serve(l) //nolint:errcheck // returns when l closes

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			rd := bufio.NewReader(conn)
			for i := 0; i < 50; i++ {
				key := c*1000 + i
				if _, err := conn.Write([]byte(
					"INSERT db " + hex(key) + " " + hex(key*2) + "\n")); err != nil {
					t.Error(err)
					return
				}
				line, err := rd.ReadString('\n')
				if err != nil || strings.TrimSpace(line) != "OK" {
					t.Errorf("insert %d: %q %v", key, line, err)
					return
				}
				if _, err := conn.Write([]byte("SEARCH db " + hex(key) + "\n")); err != nil {
					t.Error(err)
					return
				}
				line, _ = rd.ReadString('\n')
				if !strings.HasPrefix(line, "HIT") {
					t.Errorf("search %d: %q", key, line)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestParseVec(t *testing.T) {
	ok := []struct {
		in     string
		hi, lo uint64
	}{
		{"0", 0, 0},
		{"dead", 0, 0xdead},
		{"DEAD", 0, 0xdead},
		{"ffffffffffffffff", 0, ^uint64(0)},
		{"1:2", 1, 2},
		{"deadbeef:cafef00d", 0xdeadbeef, 0xcafef00d},
		{"ffffffffffffffff:ffffffffffffffff", ^uint64(0), ^uint64(0)},
		{"0000000000000000001", 0, 1}, // leading zeros are value, not width
	}
	for _, tc := range ok {
		v, err := parseVec(tc.in)
		if err != nil || v.Hi != tc.hi || v.Lo != tc.lo {
			t.Errorf("parseVec(%q) = %v, %v; want hi=%x lo=%x", tc.in, v, err, tc.hi, tc.lo)
		}
	}
	bad := []string{
		"",         // empty
		"zz",       // no hex at all
		"12zz",     // valid prefix + garbage (the Sscanf bug)
		"zz12",     // garbage + valid suffix
		"0x12",     // prefix syntax not part of the protocol
		"+1", "-1", // signs
		"1_2",           // underscores
		"1.5",           // decimal point
		":", "1:", ":1", // missing parts
		"1:2:3", "1::2", // extra separators
		"12zz:1", "1:12zz", // garbage in either part
		strings.Repeat("f", 17), // overflows uint64
		"1:" + strings.Repeat("f", 17),
		"١٢", // non-ASCII digits
	}
	for _, in := range bad {
		if v, err := parseVec(in); err == nil {
			t.Errorf("parseVec(%q) = %v, want error", in, v)
		}
	}
}

func TestOversizedLine(t *testing.T) {
	s := testServer(t)
	// A 65 KiB request must draw an explicit error, not a silent
	// connection drop; the following request is not reached (the
	// stream is unrecoverable once the scanner overflows).
	long := "SEARCH db " + strings.Repeat("f", 65*1024)
	in := strings.NewReader("INSERT db 1 2\n" + long + "\nSEARCH db 1\n")
	var out strings.Builder
	s.Handle(in, &out)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d responses: %q", len(lines), out.String())
	}
	if lines[0] != "OK" {
		t.Errorf("first response = %q", lines[0])
	}
	if lines[1] != "ERR line too long" {
		t.Errorf("oversized-line response = %q", lines[1])
	}
}

func TestMSearch(t *testing.T) {
	sub := subsystem.New(0)
	for _, name := range []string{"a", "b"} {
		sl := caram.MustNew(caram.Config{
			IndexBits: 6,
			RowBits:   4*(1+64+32) + 8,
			KeyBits:   64,
			DataBits:  32,
			Index:     hash.NewMultShift(6),
		})
		if err := sub.AddEngine(&subsystem.Engine{Name: name, Main: sl}); err != nil {
			t.Fatal(err)
		}
	}
	s := New(sub)
	resp := drive(t, s,
		"INSERT a 1 10",
		"INSERT b 2 20",
		"MSEARCH a 1 b 2 a 2 nope 1 b 1",
		"MSEARCH a 1",
		"MSEARCH",
		"MSEARCH a",
		"MSEARCH a 12zz",
	)
	want := "MRESULTS HIT:0:0000000000000010 HIT:0:0000000000000020 MISS ERR:no-engine MISS"
	if resp[2] != want {
		t.Errorf("MSEARCH = %q\n want %q", resp[2], want)
	}
	if resp[3] != "MRESULTS HIT:0:0000000000000010" {
		t.Errorf("single MSEARCH = %q", resp[3])
	}
	for i := 4; i <= 6; i++ {
		if !strings.HasPrefix(resp[i], "ERR") {
			t.Errorf("request %d: expected ERR, got %q", i, resp[i])
		}
	}
}

func hex(v int) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{digits[v%16]}, b...)
		v /= 16
	}
	return string(b)
}

func TestMetricsCommand(t *testing.T) {
	s := testServer(t)
	resp := drive(t, s,
		"METRICS",
		"INSERT db dead 42",
		"SEARCH db dead",
		"SEARCH db beef",
		"MSEARCH db dead db beef",
		"DELETE db dead",
		"DELETE db dead", // second delete errors: record not found
		"SEARCH nope 1",  // unknown engine
		"METRICS",
		"METRICS db",
		"METRICS db LATENCY SEARCH",
		"METRICS nope",
		"METRICS db LATENCY",
		"METRICS db LATENCY BOGUS",
		"METRICS db extra junk",
	)
	if resp[0] != "METRICS engines=1 ops=0 errors=0 unknown=0" {
		t.Errorf("initial METRICS = %q", resp[0])
	}
	// 1 insert + 2 search + 2 msearch slots + 2 delete = 7 ops, 1 error
	// (failed delete); the unknown-engine search counts separately.
	if resp[8] != "METRICS engines=1 ops=7 errors=1 unknown=1" {
		t.Errorf("summary METRICS = %q", resp[8])
	}
	want := "METRICS engine=db insert=1 insert_err=0 search=2 search_err=0" +
		" delete=2 delete_err=1 msearch=2 msearch_err=0" +
		" n=0 load=0.000 amal=1.000 hits=2 misses=2 overflow=0 spilled=0"
	if resp[9] != want {
		t.Errorf("engine METRICS = %q\n                 want %q", resp[9], want)
	}
	lat := resp[10]
	if !strings.HasPrefix(lat, "METRICS engine=db op=search n=2 err=0 mean_us=") {
		t.Errorf("latency METRICS = %q", lat)
	}
	for _, field := range []string{"p50_us=", "p90_us=", "p99_us=", "max_us="} {
		if !strings.Contains(lat, field) {
			t.Errorf("latency METRICS missing %s: %q", field, lat)
		}
	}
	if !strings.HasPrefix(resp[11], "ERR metrics: no engine") {
		t.Errorf("unknown engine METRICS = %q", resp[11])
	}
	if resp[12] != "ERR usage: METRICS [engine [LATENCY <op>]]" {
		t.Errorf("short LATENCY = %q", resp[12])
	}
	if resp[13] != "ERR metrics: unknown op BOGUS" {
		t.Errorf("bad op = %q", resp[13])
	}
	if resp[14] != "ERR usage: METRICS [engine [LATENCY <op>]]" {
		t.Errorf("extra args = %q", resp[14])
	}
}

func TestMetricsDisabled(t *testing.T) {
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewMultShift(6),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	s := New(sub, WithoutMetrics())
	if s.Metrics() != nil {
		t.Fatal("WithoutMetrics still built a registry")
	}
	resp := drive(t, s, "INSERT db 1 2", "METRICS", "METRICS db")
	if resp[0] != "OK" {
		t.Errorf("INSERT = %q", resp[0])
	}
	for i := 1; i <= 2; i++ {
		if resp[i] != "ERR metrics disabled" {
			t.Errorf("METRICS on disabled server = %q", resp[i])
		}
	}
}

// infiniteRequests feeds "ENGINES\n" forever — the stream a spinning
// read loop would consume without bound.
type infiniteRequests struct{}

func (infiniteRequests) Read(p []byte) (int, error) {
	const line = "ENGINES\n"
	n := 0
	for n+len(line) <= len(p) {
		n += copy(p[n:], line)
	}
	if n == 0 {
		n = copy(p, line)
	}
	return n, nil
}

// failWriter fails every write, like a peer that vanished.
type failWriter struct{ writes int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	return 0, errors.New("broken pipe")
}

// TestHandleStopsOnDeadWriter is the dead-connection guard: when the
// client's write side fails, Handle must stop consuming requests
// instead of spinning through an endless stream.
func TestHandleStopsOnDeadWriter(t *testing.T) {
	s := testServer(t)
	w := &failWriter{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handle(infiniteRequests{}, w)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Handle still reading from an infinite stream after its writer died")
	}
	if w.writes != 1 {
		t.Errorf("dead writer got %d writes, want exactly 1", w.writes)
	}
}

// TestServerClose covers the shutdown path: Close stops the accept
// loop (Serve returns ErrServerClosed), tears down live connections,
// drains handlers, and is idempotent; Serve after Close refuses.
func TestServerClose(t *testing.T) {
	s := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("INSERT db 1 2\n")); err != nil {
		t.Fatal(err)
	}
	if line, err := rd.ReadString('\n'); err != nil || strings.TrimSpace(line) != "OK" {
		t.Fatalf("pre-close request: %q, %v", line, err)
	}

	// A second, idle connection: Close must not hang waiting for its
	// handler (it force-closes the conn to unblock the read loop).
	idle, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain handlers")
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// The live connection was torn down: further requests fail.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	conn.Write([]byte("SEARCH db 1\n")) //nolint:errcheck // may already be reset
	if _, err := rd.ReadString('\n'); err == nil {
		t.Error("connection still answering after Close")
	}
	// Close is idempotent; Serve after Close refuses.
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(l2); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v, want ErrServerClosed", err)
	}
	if _, err := net.Dial("tcp", l2.Addr().String()); err == nil {
		t.Error("listener left open by refused Serve")
	}
}
