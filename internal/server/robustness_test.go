package server

import (
	"bufio"
	"bytes"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/subsystem"
)

// Tests for the overload-protection and fault-surface layer: connection
// caps, read deadlines, per-connection panic recovery, the SLOWLOG GET
// bound, and the HEALTH command end to end over an ECC-enabled engine.

// eccServer builds a server around one ECC-protected engine and returns
// the slice handle so tests can inject corruption directly.
func eccServer(t *testing.T, indexBits int, idx hash.IndexGenerator) (*Server, *caram.Slice) {
	t.Helper()
	if idx == nil {
		idx = hash.NewMultShift(indexBits)
	}
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: indexBits,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     idx,
		ECC:       true,
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	return New(sub), sl
}

// corruptStoredRow flips two stored bits of a row — an uncorrectable
// soft error the next checked fetch must quarantine.
func corruptStoredRow(sl *caram.Slice, idx uint32, a, b int) {
	row := sl.Array().PeekRow(idx)
	row[a>>6] ^= 1 << uint(a&63)
	row[b>>6] ^= 1 << uint(b&63)
}

// startTCP serves srv on an ephemeral loopback listener.
func startTCP(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // returns ErrServerClosed on cleanup
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// dialT dials with a test-scoped overall deadline so a hung server
// fails the test instead of the run.
func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	t.Cleanup(func() { conn.Close() })
	return conn
}

// syncWriter serializes writes from concurrent connection handlers into
// one buffer, so the panic test can grep the log race-free.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestPanicRecoveryClosesOnlyThatConnection: a handler panic must cost
// exactly the panicking connection — one Error log line, every other
// connection (existing and new) keeps being served.
func TestPanicRecoveryClosesOnlyThatConnection(t *testing.T) {
	logBuf := &syncWriter{}
	sub := subsystem.New(0)
	sl := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewMultShift(6),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	srv := New(sub, WithLogger(slog.New(slog.NewTextHandler(logBuf, nil))))
	srv.panicLine = "PANIC NOW"
	addr := startTCP(t, srv)

	healthy := dialT(t, addr)
	hr := bufio.NewReader(healthy)
	ask := func(req, want string) {
		t.Helper()
		if _, err := healthy.Write([]byte(req + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := hr.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: %v", req, err)
		}
		if got := strings.TrimSpace(line); got != want {
			t.Fatalf("%s: got %q, want %q", req, got, want)
		}
	}
	ask("INSERT db 1 2", "OK")

	victim := dialT(t, addr)
	if _, err := victim.Write([]byte("PANIC NOW\n")); err != nil {
		t.Fatal(err)
	}
	// The panic forfeits the reply; recovery closes only this conn.
	if _, err := bufio.NewReader(victim).ReadString('\n'); err == nil {
		t.Fatal("panicking connection produced a reply")
	}

	// The pre-existing connection and a fresh one still work, so the
	// accept loop survived.
	ask("SEARCH db 1", "HIT 0:0000000000000002")
	fresh := dialT(t, addr)
	if _, err := fresh.Write([]byte("ENGINES\n")); err != nil {
		t.Fatal(err)
	}
	if line, err := bufio.NewReader(fresh).ReadString('\n'); err != nil || strings.TrimSpace(line) != "ENGINES db" {
		t.Fatalf("fresh connection after panic: %q, %v", line, err)
	}

	if n := strings.Count(logBuf.String(), "connection handler panic"); n != 1 {
		t.Fatalf("want exactly 1 panic log line, got %d in:\n%s", n, logBuf.String())
	}
}

// TestConnLimitShedsWithBusy: beyond the cap a connection gets one
// "ERR BUSY" line and an immediate close; capacity freed by a closing
// connection is reusable.
func TestConnLimitShedsWithBusy(t *testing.T) {
	srv, _ := eccServer(t, 6, nil)
	srv.maxConns = 1 // as WithConnLimit(1) would set
	addr := startTCP(t, srv)

	first := dialT(t, addr)
	fr := bufio.NewReader(first)
	if _, err := first.Write([]byte("ENGINES\n")); err != nil {
		t.Fatal(err)
	}
	if line, _ := fr.ReadString('\n'); strings.TrimSpace(line) != "ENGINES db" {
		t.Fatalf("first connection not served: %q", line)
	}

	shed := dialT(t, addr)
	sr := bufio.NewReader(shed)
	line, err := sr.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ERR BUSY" {
		t.Fatalf("over-cap connection: got %q, %v; want ERR BUSY", line, err)
	}
	if _, err := sr.ReadString('\n'); err == nil {
		t.Fatal("shed connection stayed open after ERR BUSY")
	}

	// Releasing the slot readmits: close the first conn, then retry
	// until its handler has noticed and decremented the gauge.
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		conn.Write([]byte("ENGINES\n"))                   //nolint:errcheck
		line, _ := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if strings.TrimSpace(line) == "ENGINES db" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released; last reply %q", line)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdleTimeoutHangsUp: a connection that never starts a request is
// hung up on with "ERR timeout" once the idle deadline passes.
func TestIdleTimeoutHangsUp(t *testing.T) {
	srv, _ := eccServer(t, 6, nil)
	srv.readTimeout, srv.idleTimeout = 0, 100*time.Millisecond
	addr := startTCP(t, srv)

	conn := dialT(t, addr)
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ERR timeout" {
		t.Fatalf("idle connection: got %q, %v; want ERR timeout", line, err)
	}
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after idle timeout")
	}
}

// TestReadTimeoutCutsSlowLoris: once a request has started arriving,
// the per-read deadline governs — a client trickling a partial line
// draws "ERR timeout", and the partial line is never executed.
func TestReadTimeoutCutsSlowLoris(t *testing.T) {
	srv, _ := eccServer(t, 6, nil)
	srv.readTimeout, srv.idleTimeout = 80*time.Millisecond, 5*time.Second
	addr := startTCP(t, srv)

	conn := dialT(t, addr)
	// A partial request, then silence: the idle deadline admits the
	// first bytes, the read deadline must cut the stall.
	if _, err := conn.Write([]byte("SEARCH db ")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ERR timeout" {
		t.Fatalf("slow-loris connection: got %q, %v; want ERR timeout", line, err)
	}
	if strings.Contains(line, "usage") {
		t.Fatalf("partial line was executed: %q", line)
	}
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after read timeout")
	}
}

// TestSlowlogGetBounded: SLOWLOG GET n rejects absurd n with a clean
// error and accepts everything up to the bound.
func TestSlowlogGetBounded(t *testing.T) {
	srv := testServer(t)
	resp := drive(t, srv,
		"SLOWLOG GET 1048576",
		"SLOWLOG GET 1048577",
		"SLOWLOG GET 99999999999999999999", // overflows int: bad-number usage path
	)
	if !strings.HasPrefix(resp[0], "SLOWLOG n=") {
		t.Errorf("GET at bound: %q", resp[0])
	}
	if resp[1] != "ERR slowlog: n too large" {
		t.Errorf("GET beyond bound: %q", resp[1])
	}
	if !strings.HasPrefix(resp[2], "ERR usage: SLOWLOG") {
		t.Errorf("GET overflow: %q", resp[2])
	}
}

// TestHealthCommand drives the HEALTH surface end to end: healthy
// zeros, quarantine-driven degradation with MISS! on the wire, scrub
// recovery, and the malformed forms.
func TestHealthCommand(t *testing.T) {
	srv, sl := eccServer(t, 6, nil)
	resp := drive(t, srv,
		"HEALTH",
		"HEALTH db",
		"HEALTH nope",
		"HEALTH db BOGUS",
		"HEALTH db SCRUB extra",
		"INSERT db dead 42",
	)
	if resp[0] != "HEALTH db=healthy" {
		t.Errorf("HEALTH: %q", resp[0])
	}
	if resp[1] != "HEALTH engine=db state=healthy quarantined=0 corrected=0 uncorrectable=0 read_errors=0 scrubs=0 scrub_bits=0 overflow=0/0" {
		t.Errorf("HEALTH db: %q", resp[1])
	}
	if !strings.HasPrefix(resp[2], "ERR subsystem: no engine") {
		t.Errorf("HEALTH nope: %q", resp[2])
	}
	for i := 3; i <= 4; i++ {
		if resp[i] != "ERR usage: HEALTH [engine [SCRUB]]" {
			t.Errorf("malformed HEALTH %d: %q", i, resp[i])
		}
	}

	corruptStoredRow(sl, sl.Index(bitutil.FromUint64(0xdead)), 3, 97)
	resp = drive(t, srv,
		"SEARCH db dead",
		"HEALTH",
		"HEALTH db",
		"SEARCH db beef",
	)
	if resp[0] != "MISS!" {
		t.Errorf("search over quarantined row: %q", resp[0])
	}
	if resp[1] != "HEALTH db=degraded" {
		t.Errorf("HEALTH after quarantine: %q", resp[1])
	}
	if !strings.Contains(resp[2], "state=degraded quarantined=1") ||
		!strings.Contains(resp[2], "uncorrectable=1") {
		t.Errorf("HEALTH db after quarantine: %q", resp[2])
	}
	if resp[3] != "MISS" { // other rows still answer cleanly
		t.Errorf("clean miss while degraded: %q", resp[3])
	}

	resp = drive(t, srv,
		"HEALTH db SCRUB",
		"HEALTH db",
		"SEARCH db dead",
	)
	if resp[0] != "OK scrub engine=db rows=1 bits=2 released=1" {
		t.Errorf("HEALTH db SCRUB: %q", resp[0])
	}
	if !strings.Contains(resp[1], "state=healthy quarantined=0") {
		t.Errorf("HEALTH db after scrub: %q", resp[1])
	}
	if resp[2] != "HIT 0:0000000000000042" {
		t.Errorf("record not restored by scrub: %q", resp[2])
	}
}

// TestFailedEngineOnTheWire: with a 4-row engine one quarantined row
// trips the default circuit breaker (1/4 >= 0.25); every command fails
// fast, MSEARCH slots answer ERR:unavailable, and HEALTH <engine> SCRUB
// is the wire-level recovery path.
func TestFailedEngineOnTheWire(t *testing.T) {
	srv, sl := eccServer(t, 2, hash.LowBits(2))
	resp := drive(t, srv, "INSERT db 1 aa")
	if resp[0] != "OK" {
		t.Fatalf("insert: %q", resp[0])
	}
	corruptStoredRow(sl, 1, 3, 97)
	resp = drive(t, srv,
		"SEARCH db 1", // detection: quarantines row 1, health -> failed
		"SEARCH db 2",
		"INSERT db 3 bb",
		"DELETE db 2",
		"MSEARCH db 2 db 3",
		"HEALTH db",
		"HEALTH db SCRUB",
		"HEALTH db",
		"SEARCH db 1",
	)
	if resp[0] != "MISS!" {
		t.Errorf("detection search: %q", resp[0])
	}
	for i := 1; i <= 3; i++ {
		if resp[i] != "ERR subsystem: engine unavailable" {
			t.Errorf("op %d on failed engine: %q", i, resp[i])
		}
	}
	if resp[4] != "MRESULTS ERR:unavailable ERR:unavailable" {
		t.Errorf("MSEARCH on failed engine: %q", resp[4])
	}
	if !strings.Contains(resp[5], "state=failed quarantined=1") {
		t.Errorf("HEALTH on failed engine: %q", resp[5])
	}
	if resp[6] != "OK scrub engine=db rows=1 bits=2 released=1" {
		t.Errorf("scrub: %q", resp[6])
	}
	if !strings.Contains(resp[7], "state=healthy") {
		t.Errorf("HEALTH after scrub: %q", resp[7])
	}
	if resp[8] != "HIT 0:00000000000000aa" {
		t.Errorf("record after recovery: %q", resp[8])
	}
}
