package server

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"caram/internal/iproute"
	"caram/internal/subsystem"
	"caram/internal/swsearch"
)

// Differential oracle suite for the lpm engine type: every wire-path
// answer is checked result-for-result against internal/swsearch's
// unibit trie (the simulation package's software LPM baseline) over a
// routing table from internal/iproute's generator.

// lpmData packs a prefix's identity into the 32-bit payload so a HIT
// is self-describing: length in the high byte, next hop in the low.
func lpmData(p iproute.Prefix) uint64 {
	return uint64(p.Len)<<8 | uint64(p.NextHop)
}

// lpmValue is the trie-side encoding of the same identity.
func lpmValue(p iproute.Prefix) uint64 { return lpmData(p) }

// parseHit decodes "HIT <hi>:<lo>" into the payload value; ok=false
// for MISS. Any other reply fails the test.
func parseHit(t *testing.T, reply string) (uint64, bool) {
	t.Helper()
	if reply == "MISS" {
		return 0, false
	}
	var hi, lo uint64
	if _, err := fmt.Sscanf(reply, "HIT %x:%x", &hi, &lo); err != nil || hi != 0 {
		t.Fatalf("unexpected reply %q", reply)
	}
	return lo, true
}

// typedServer builds a server over an empty subsystem (every engine
// arrives over the wire via CREATE ENGINE).
func typedServer(t *testing.T) *Server {
	t.Helper()
	s := New(subsystem.New(0))
	t.Cleanup(func() { s.Close() })
	return s
}

// mustOK fails unless the request draws "OK".
func mustOK(t *testing.T, s *Server, req string) {
	t.Helper()
	if got := s.Exec(req); got != "OK" {
		t.Fatalf("%s => %q, want OK", req, got)
	}
}

// lpmFixture creates an lpm engine over the wire and loads a generated
// routing table into both the engine and the trie oracle, returning
// the prefixes actually resident (a full engine skips the prefix on
// both sides, keeping the two models identical).
func lpmFixture(t *testing.T, s *Server, eng string, nPrefixes int, seed int64) ([]iproute.Prefix, *swsearch.Trie) {
	t.Helper()
	mustOK(t, s, "CREATE ENGINE "+eng+" TYPE lpm INDEXBITS 8 SLOTS 32")
	gen := iproute.Generate(iproute.GenConfig{Prefixes: nPrefixes, Seed: seed})
	trie := swsearch.NewTrie(32)
	var kept []iproute.Prefix
	seen := make(map[[2]uint32]bool, len(gen))
	for _, p := range gen {
		p = p.Canonical()
		id := [2]uint32{p.Addr, uint32(p.Len)}
		if seen[id] {
			continue
		}
		seen[id] = true
		reply := s.Exec(minsertLPM(eng, p))
		if strings.HasPrefix(reply, "ERR subsystem: record fits") ||
			strings.HasPrefix(reply, "ERR caram: slice full") {
			continue // no slot within the probe limit: absent from both models
		}
		if reply != "OK" {
			t.Fatalf("MINSERT %v => %q", p, reply)
		}
		trie.Insert(uint64(p.Addr), p.Len, lpmValue(p))
		kept = append(kept, p)
	}
	if len(kept) < nPrefixes/2 {
		t.Fatalf("only %d/%d prefixes resident; fixture too small to be meaningful", len(kept), nPrefixes)
	}
	return kept, trie
}

// minsertLPM renders a prefix as its masked wire insert.
func minsertLPM(eng string, p iproute.Prefix) string {
	k := p.Key()
	return fmt.Sprintf("MINSERT %s %x %x %x", eng, k.Value.Uint64(), k.Mask.Uint64(), lpmData(p))
}

// lpmCheck compares one address's wire answer against the trie.
func lpmCheck(t *testing.T, s *Server, eng string, trie *swsearch.Trie, addr uint32) {
	t.Helper()
	got, hit := parseHit(t, s.Exec("SEARCH "+eng+" "+strconv.FormatUint(uint64(addr), 16)))
	want, _, ok := trie.Lookup(uint64(addr))
	if hit != ok || (hit && got != want) {
		t.Fatalf("addr %08x: wire (hit=%v val=%#x) vs trie (hit=%v val=%#x)", addr, hit, got, ok, want)
	}
}

// lpmQueryMix yields n addresses biased toward hits: half sampled
// inside resident prefixes, half uniform.
func lpmQueryMix(prefixes []iproute.Prefix, n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint32, n)
	for i := range out {
		if i%2 == 0 && len(prefixes) > 0 {
			p := prefixes[rng.Intn(len(prefixes))]
			host := uint32(0)
			if p.Len < 32 {
				host = rng.Uint32() >> uint(p.Len)
			}
			out[i] = p.Addr | host
		} else {
			out[i] = rng.Uint32()
		}
	}
	return out
}

// TestTypedLPMDifferential drives >=1k randomized lookups through the
// wire path and checks each against the trie, then deletes a slab of
// prefixes over the wire, rebuilds the oracle without them, and
// re-checks — the delete path must remove every duplicated ternary
// copy or the comparison diverges.
func TestTypedLPMDifferential(t *testing.T) {
	s := typedServer(t)
	prefixes, trie := lpmFixture(t, s, "ip", 1000, 7)

	for _, addr := range lpmQueryMix(prefixes, 1500, 11) {
		lpmCheck(t, s, "ip", trie, addr)
	}

	// Delete every 5th prefix over the wire; the oracle is rebuilt
	// from the survivors.
	rebuilt := swsearch.NewTrie(32)
	var survivors []iproute.Prefix
	for i, p := range prefixes {
		if i%5 == 0 {
			k := p.Key()
			req := fmt.Sprintf("MDELETE ip %x %x", k.Value.Uint64(), k.Mask.Uint64())
			if got := s.Exec(req); got != "OK" {
				t.Fatalf("%s => %q", req, got)
			}
			continue
		}
		rebuilt.Insert(uint64(p.Addr), p.Len, lpmValue(p))
		survivors = append(survivors, p)
	}
	for _, addr := range lpmQueryMix(survivors, 800, 13) {
		lpmCheck(t, s, "ip", rebuilt, addr)
	}
}

// TestTypedLPMQuick is the testing/quick form of the same agreement:
// for arbitrary addresses, the wire answer equals the trie answer.
func TestTypedLPMQuick(t *testing.T) {
	s := typedServer(t)
	_, trie := lpmFixture(t, s, "ipq", 600, 21)
	prop := func(addr uint32) bool {
		got, hit := parseHit(t, s.Exec("SEARCH ipq "+strconv.FormatUint(uint64(addr), 16)))
		want, _, ok := trie.Lookup(uint64(addr))
		return hit == ok && (!hit || got == want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestTypedLPMChurn exercises the seqlock read path on masked rows: 16
// goroutines of mixed wire ops — searchers validating every reply
// against the full prefix universe, and writers churning disjoint
// prefix sets through MDELETE/MINSERT. A stable core is never deleted,
// so a search under a stable prefix must always answer with at least
// that prefix's specificity. Run under -race by the typed-guard tier.
func TestTypedLPMChurn(t *testing.T) {
	const (
		nSearchers = 12
		nWriters   = 4
		perWriter  = 8
		iters      = 300
	)
	s := typedServer(t)
	mustOK(t, s, "CREATE ENGINE ip TYPE lpm INDEXBITS 8 SLOTS 32")

	// Stable core: disjoint /16s under 10.0.0.0, one per value of the
	// second octet. Churn sets: per-writer disjoint /24s inside
	// 172.16.0.0, never overlapping the stable space.
	universe := make(map[uint64]iproute.Prefix) // lpmData -> prefix
	var stable []iproute.Prefix
	for i := 0; i < 16; i++ {
		p := iproute.Prefix{Addr: 0x0A000000 | uint32(i)<<16, Len: 16, NextHop: uint8(i + 1)}
		mustOK(t, s, minsertLPM("ip", p))
		stable = append(stable, p)
		universe[lpmData(p)] = p
	}
	churn := make([][]iproute.Prefix, nWriters)
	for w := range churn {
		for j := 0; j < perWriter; j++ {
			p := iproute.Prefix{
				Addr:    0xAC100000 | uint32(w)<<16 | uint32(j)<<8,
				Len:     24,
				NextHop: uint8(0x80 | w<<4 | j),
			}
			mustOK(t, s, minsertLPM("ip", p))
			churn[w] = append(churn[w], p)
			universe[lpmData(p)] = p
		}
	}

	var wg sync.WaitGroup
	var fail atomic.Value
	record := func(format string, args ...any) {
		fail.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := churn[w][i%perWriter]
				k := p.Key()
				del := fmt.Sprintf("MDELETE ip %x %x", k.Value.Uint64(), k.Mask.Uint64())
				if got := s.Exec(del); got != "OK" {
					record("%s => %q", del, got)
					return
				}
				if got := s.Exec(minsertLPM("ip", p)); got != "OK" {
					record("churn reinsert %v => %q", p, got)
					return
				}
			}
		}(w)
	}
	for g := 0; g < nSearchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < iters; i++ {
				var addr uint32
				wantStable := -1
				if i%2 == 0 {
					p := stable[rng.Intn(len(stable))]
					addr = p.Addr | rng.Uint32()>>16
					wantStable = p.Len
				} else {
					w := rng.Intn(nWriters)
					p := churn[w][rng.Intn(perWriter)]
					addr = p.Addr | rng.Uint32()>>24
				}
				reply := s.Exec("SEARCH ip " + strconv.FormatUint(uint64(addr), 16))
				if reply == "MISS" {
					if wantStable >= 0 {
						record("addr %08x under stable prefix answered MISS", addr)
						return
					}
					continue
				}
				var hi, lo uint64
				if _, err := fmt.Sscanf(reply, "HIT %x:%x", &hi, &lo); err != nil {
					record("addr %08x: unexpected reply %q", addr, reply)
					return
				}
				p, ok := universe[lo]
				if !ok || !p.Matches(addr) {
					record("addr %08x: payload %#x names no matching prefix (torn read?)", addr, lo)
					return
				}
				if wantStable >= 0 && p.Len < wantStable {
					record("addr %08x: got /%d, stable /%d resident", addr, p.Len, wantStable)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
}
