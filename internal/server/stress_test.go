package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/subsystem"
)

// stressServer builds a server over n engines named e0..e(n-1), each a
// 256-bucket x 8-slot slice with 64-bit keys (room for the stress
// key-space without spill pressure).
func stressServer(t testing.TB, n int) (*Server, []string) {
	t.Helper()
	sub := subsystem.New(0)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("e%d", i)
		sl := caram.MustNew(caram.Config{
			IndexBits: 8,
			RowBits:   8*(1+64+32) + 8,
			KeyBits:   64,
			DataBits:  32,
			Index:     hash.NewMultShift(8),
		})
		if err := sub.AddEngine(&subsystem.Engine{Name: names[i], Main: sl}); err != nil {
			t.Fatal(err)
		}
	}
	return New(sub), names
}

// TestStressServerMixedOps drives Exec from 32 goroutines with mixed
// INSERT/SEARCH/MSEARCH/DELETE/STATS traffic (~22k requests total).
// Workers own disjoint key ranges, so every response is individually
// predictable even though the engines are shared. Under -race this is
// the protocol layer's core safety check.
func TestStressServerMixedOps(t *testing.T) {
	const (
		workers = 32
		iters   = 100
		engines = 4
	)
	s, names := stressServer(t, engines)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := names[g%engines]
			for i := 0; i < iters; i++ {
				k := uint64(g)<<32 | uint64(i)
				key := fmt.Sprintf("%x", k)
				data := fmt.Sprintf("%x", uint64(g)<<8|uint64(i&0xff)) // fits DataBits: 32
				if resp := s.Exec("INSERT " + eng + " " + key + " " + data); resp != "OK" {
					t.Errorf("worker %d INSERT: %q", g, resp)
					return
				}
				wantHit := fmt.Sprintf("HIT 0:%016x", uint64(g)<<8|uint64(i&0xff))
				if resp := s.Exec("SEARCH " + eng + " " + key); resp != wantHit {
					t.Errorf("worker %d SEARCH: %q, want %q", g, resp, wantHit)
					return
				}
				// Fan the key across all engines: exactly our engine's
				// slot hits, the others miss.
				var req strings.Builder
				req.WriteString("MSEARCH")
				for _, n := range names {
					req.WriteString(" " + n + " " + key)
				}
				slots := strings.Fields(s.Exec(req.String()))
				if len(slots) != engines+1 || slots[0] != "MRESULTS" {
					t.Errorf("worker %d MSEARCH: %q", g, slots)
					return
				}
				for e, slot := range slots[1:] {
					want := "MISS"
					if names[e] == eng {
						want = strings.Replace(wantHit, "HIT ", "HIT:", 1)
					}
					if slot != want {
						t.Errorf("worker %d MSEARCH slot %d: %q, want %q", g, e, slot, want)
						return
					}
				}
				if i%10 == 0 {
					if resp := s.Exec("STATS " + eng); !strings.HasPrefix(resp, "STATS n=") {
						t.Errorf("worker %d STATS: %q", g, resp)
						return
					}
				}
				if resp := s.Exec("DELETE " + eng + " " + key); resp != "OK" {
					t.Errorf("worker %d DELETE: %q", g, resp)
					return
				}
				if resp := s.Exec("SEARCH " + eng + " " + key); resp != "MISS" {
					t.Errorf("worker %d post-delete SEARCH: %q", g, resp)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, n := range names {
		resp := s.Exec("STATS " + n)
		if !strings.HasPrefix(resp, "STATS n=0 ") {
			t.Errorf("engine %s not empty after stress: %q", n, resp)
		}
	}
}

// TestStressServerOverTCP repeats a slice of the mixed workload over
// real sockets — one connection per engine plus crosstalk connections
// that only read — so the bufio/Handle layer is exercised under
// concurrency too.
func TestStressServerOverTCP(t *testing.T) {
	const conns = 8
	s, names := stressServer(t, 4)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.Serve(l) //nolint:errcheck // returns when l closes

	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			rd := bufio.NewReader(conn)
			eng := names[c%len(names)]
			ask := func(req string) string {
				t.Helper()
				if _, err := fmt.Fprintln(conn, req); err != nil {
					t.Error(err)
					return ""
				}
				line, err := rd.ReadString('\n')
				if err != nil {
					t.Error(err)
					return ""
				}
				return strings.TrimSpace(line)
			}
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("%x", uint64(c)<<32|uint64(i))
				if resp := ask("INSERT " + eng + " " + key + " " + key); resp != "OK" {
					t.Errorf("conn %d INSERT: %q", c, resp)
					return
				}
				if resp := ask("SEARCH " + eng + " " + key); !strings.HasPrefix(resp, "HIT") {
					t.Errorf("conn %d SEARCH: %q", c, resp)
					return
				}
				if resp := ask("MSEARCH " + eng + " " + key + " " + names[(c+1)%len(names)] + " " + key); !strings.HasPrefix(resp, "MRESULTS HIT:") {
					t.Errorf("conn %d MSEARCH: %q", c, resp)
					return
				}
				if resp := ask("DELETE " + eng + " " + key); resp != "OK" {
					t.Errorf("conn %d DELETE: %q", c, resp)
					return
				}
			}
		}()
	}
	wg.Wait()
}
