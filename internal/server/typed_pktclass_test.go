package server

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"caram/internal/bitutil"
	"caram/internal/iproute"
	"caram/internal/pktclass"
)

// Differential oracle suite for the pktclass engine type: the wire
// path (range-to-prefix expanded rules inserted with MINSERT, packets
// classified with SEARCH) is checked packet-for-packet against a
// linear highest-priority scan over the very same rule structs — the
// oracle internal/pktclass itself verifies its classifiers against.

// vecWire renders a 128-bit vector in the wire's hi:lo hex form.
func vecWire(v bitutil.Vec128) string {
	return fmt.Sprintf("%x:%x", v.Hi, v.Lo)
}

// pktFixture creates a pktclass engine over the wire and loads a
// synthetic ACL in priority order, expanding each rule to its ternary
// keys. A key already claimed by a higher-priority rule is skipped on
// the wire (the engine stores one row per distinct (value,mask) image
// and the higher priority owns it); the oracle needs no such carve-out
// because any packet matching the claimed key matches the owning rule
// too, and the linear scan takes the higher priority. If the engine
// runs out of slots mid-rule, the rule's rows are rolled back with
// MDELETE and the whole rule is dropped from the oracle, keeping the
// two models aligned.
func pktFixture(t *testing.T, s *Server, eng string, nRules int, seed int64) []pktclass.Rule {
	t.Helper()
	mustOK(t, s, "CREATE ENGINE "+eng+" TYPE pktclass INDEXBITS 8 SLOTS 64")
	rules := pktclass.GenerateRules(pktclass.GenRulesConfig{Rules: nRules, Seed: seed})
	claimed := make(map[string]bool)
	var kept []pktclass.Rule
insert:
	for _, r := range rules { // descending priority by construction
		keys := r.TernaryKeys()
		data := vecWire(pktclass.EncodeData(r))
		var mine []bitutil.Ternary
		for _, k := range keys {
			id := vecWire(k.Value) + "/" + vecWire(k.Mask)
			if claimed[id] {
				continue
			}
			req := "MINSERT " + eng + " " + vecWire(k.Value) + " " + vecWire(k.Mask) + " " + data
			reply := s.Exec(req)
			if strings.HasPrefix(reply, "ERR subsystem: record fits") ||
				strings.HasPrefix(reply, "ERR caram: slice full") {
				for _, m := range mine {
					mustOK(t, s, "MDELETE "+eng+" "+vecWire(m.Value)+" "+vecWire(m.Mask))
				}
				continue insert // rule dropped whole; oracle never sees it
			}
			if reply != "OK" {
				t.Fatalf("%s => %q", req, reply)
			}
			mine = append(mine, k)
		}
		for _, m := range mine {
			claimed[vecWire(m.Value)+"/"+vecWire(m.Mask)] = true
		}
		kept = append(kept, r)
	}
	if len(kept) < nRules/2 {
		t.Fatalf("only %d/%d rules resident; fixture too small to be meaningful", len(kept), nRules)
	}
	return kept
}

// classifyOracle is the linear highest-priority scan.
func classifyOracle(rules []pktclass.Rule, p pktclass.FiveTuple) (pktclass.Rule, bool) {
	var best pktclass.Rule
	found := false
	for _, r := range rules {
		if (!found || r.Priority > best.Priority) && r.Matches(p) {
			best, found = r, true
		}
	}
	return best, found
}

// pktCheck classifies one packet over the wire and compares the full
// decoded (id, action, priority) against the oracle's winner.
// Priorities are unique by construction, so a hit has exactly one
// correct answer.
func pktCheck(t *testing.T, s *Server, eng string, rules []pktclass.Rule, p pktclass.FiveTuple) {
	t.Helper()
	reply := s.Exec("SEARCH " + eng + " " + vecWire(p.Key()))
	want, ok := classifyOracle(rules, p)
	if reply == "MISS" {
		if ok {
			t.Fatalf("packet %+v: wire MISS, oracle rule id=%d prio=%d", p, want.ID, want.Priority)
		}
		return
	}
	var hi, lo uint64
	if _, err := fmt.Sscanf(reply, "HIT %x:%x", &hi, &lo); err != nil {
		t.Fatalf("packet %+v: unexpected reply %q", p, reply)
	}
	id, action, prio := pktclass.DecodeData(bitutil.FromParts(lo, hi))
	if !ok {
		t.Fatalf("packet %+v: wire HIT id=%d, oracle MISS", p, id)
	}
	if id != want.ID || action != want.Action || prio != int(uint16(want.Priority)) {
		t.Fatalf("packet %+v: wire (id=%d act=%d prio=%d) vs oracle (id=%d act=%d prio=%d)",
			p, id, action, prio, want.ID, want.Action, want.Priority)
	}
}

// TestTypedPktClassDifferential loads a ~250-rule ACL and classifies a
// ClassBench-style trace (70% rule-directed, 30% random) of >=1200
// packets, each checked against the linear oracle.
func TestTypedPktClassDifferential(t *testing.T) {
	s := typedServer(t)
	rules := pktFixture(t, s, "acl", 250, 3)
	for _, p := range pktclass.GenerateTrace(rules, 1200, 0.3, 17) {
		pktCheck(t, s, "acl", rules, p)
	}
}

// TestTypedPktClassQuick is the testing/quick form: uniformly random
// five-tuples (mostly misses, plus whatever lands in broad wildcard
// rules) must agree with the oracle.
func TestTypedPktClassQuick(t *testing.T) {
	s := typedServer(t)
	rules := pktFixture(t, s, "aclq", 150, 5)
	prop := func(srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) bool {
		p := pktclass.FiveTuple{SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort, Proto: proto}
		reply := s.Exec("SEARCH aclq " + vecWire(p.Key()))
		want, ok := classifyOracle(rules, p)
		if reply == "MISS" {
			return !ok
		}
		var hi, lo uint64
		if _, err := fmt.Sscanf(reply, "HIT %x:%x", &hi, &lo); err != nil {
			return false
		}
		id, _, _ := pktclass.DecodeData(bitutil.FromParts(lo, hi))
		return ok && id == want.ID
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestTypedPktClassChurn runs 16 goroutines of mixed wire ops against
// one pktclass engine: searchers classify packets aimed at a stable
// rule core that is never deleted, writers churn disjoint
// single-key rules through MDELETE/MINSERT. Every HIT must decode to a
// universe rule that actually matches the packet, and a packet built
// for a stable rule must never answer below that rule's priority.
func TestTypedPktClassChurn(t *testing.T) {
	const (
		nSearchers = 12
		nWriters   = 4
		perWriter  = 6
		iters      = 250
	)
	s := typedServer(t)
	mustOK(t, s, "CREATE ENGINE acl TYPE pktclass INDEXBITS 8 SLOTS 64")

	// Stable core: exact-port TCP rules pinned to distinct /24s —
	// single ternary key each, priorities 1000+i. Churn rules live in
	// a disjoint address block with lower priorities, so deleting them
	// never changes a stable packet's answer.
	universe := make(map[int]pktclass.Rule)
	var stable []pktclass.Rule
	insertRule := func(r pktclass.Rule) {
		data := vecWire(pktclass.EncodeData(r))
		for _, k := range r.TernaryKeys() {
			mustOK(t, s, "MINSERT acl "+vecWire(k.Value)+" "+vecWire(k.Mask)+" "+data)
		}
	}
	for i := 0; i < 12; i++ {
		r := pktclass.Rule{
			ID:        i + 1,
			DstPrefix: iproute.Prefix{Addr: 0x0A000000 | uint32(i)<<8, Len: 24},
			SrcPorts:  pktclass.AnyPort(),
			DstPorts:  pktclass.ExactPort(443),
			Proto:     6,
			Priority:  1000 + i,
			Action:    1,
		}
		insertRule(r)
		stable = append(stable, r)
		universe[r.ID] = r
	}
	churn := make([][]pktclass.Rule, nWriters)
	for w := range churn {
		for j := 0; j < perWriter; j++ {
			r := pktclass.Rule{
				ID:        100 + w*perWriter + j,
				DstPrefix: iproute.Prefix{Addr: 0xC0A80000 | uint32(w*perWriter+j)<<8, Len: 24},
				SrcPorts:  pktclass.AnyPort(),
				DstPorts:  pktclass.ExactPort(80),
				Proto:     6,
				Priority:  100 + w*perWriter + j,
				Action:    2,
			}
			insertRule(r)
			churn[w] = append(churn[w], r)
			universe[r.ID] = r
		}
	}

	var wg sync.WaitGroup
	var fail atomic.Value
	record := func(format string, args ...any) {
		fail.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r := churn[w][i%perWriter]
				for _, k := range r.TernaryKeys() {
					del := "MDELETE acl " + vecWire(k.Value) + " " + vecWire(k.Mask)
					if got := s.Exec(del); got != "OK" {
						record("%s => %q", del, got)
						return
					}
				}
				data := vecWire(pktclass.EncodeData(r))
				for _, k := range r.TernaryKeys() {
					req := "MINSERT acl " + vecWire(k.Value) + " " + vecWire(k.Mask) + " " + data
					if got := s.Exec(req); got != "OK" {
						record("%s => %q", req, got)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < nSearchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + g)))
			for i := 0; i < iters; i++ {
				var p pktclass.FiveTuple
				wantPrio := -1
				if i%2 == 0 {
					r := stable[rng.Intn(len(stable))]
					p = pktclass.FiveTuple{
						SrcIP: rng.Uint32(), DstIP: r.DstPrefix.Addr | uint32(rng.Intn(256)),
						SrcPort: uint16(rng.Intn(1 << 16)), DstPort: 443, Proto: 6,
					}
					wantPrio = r.Priority
				} else {
					w := rng.Intn(nWriters)
					r := churn[w][rng.Intn(perWriter)]
					p = pktclass.FiveTuple{
						SrcIP: rng.Uint32(), DstIP: r.DstPrefix.Addr | uint32(rng.Intn(256)),
						SrcPort: uint16(rng.Intn(1 << 16)), DstPort: 80, Proto: 6,
					}
				}
				reply := s.Exec("SEARCH acl " + vecWire(p.Key()))
				if reply == "MISS" {
					if wantPrio >= 0 {
						record("stable packet %+v answered MISS", p)
						return
					}
					continue
				}
				var hi, lo uint64
				if _, err := fmt.Sscanf(reply, "HIT %x:%x", &hi, &lo); err != nil {
					record("packet %+v: unexpected reply %q", p, reply)
					return
				}
				id, _, prio := pktclass.DecodeData(bitutil.FromParts(lo, hi))
				r, ok := universe[id]
				if !ok || !r.Matches(p) || prio != int(uint16(r.Priority)) {
					record("packet %+v: payload id=%d prio=%d names no matching rule (torn read?)", p, id, prio)
					return
				}
				if wantPrio >= 0 && r.Priority < wantPrio {
					record("packet %+v: got prio %d, stable prio %d resident", p, r.Priority, wantPrio)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
}
