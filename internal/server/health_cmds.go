package server

import "strings"

// Wire access to the fault-tolerance layer: the HEALTH command.
//
// Like EXPLAIN, HEALTH is built for determinism: it prints only state
// and counters — never timings — so a scripted session produces the
// same bytes every run and the golden test can hold the format. On an
// engine without error coding every counter reads zero and the state
// is healthy, which keeps the command meaningful (and golden-testable)
// on ECC-less servers.

// execHealthAppend answers the HEALTH command.
//
//	HEALTH                  one "name=state" pair per engine
//	HEALTH <engine>         state plus the error-coding counters
//	HEALTH <engine> SCRUB   run the scrub pass, report repairs
func (s *Server) execHealthAppend(dst []byte, fs *FieldScanner) []byte {
	const usage = "ERR usage: HEALTH [engine [SCRUB]]"
	eng, hasEng := fs.next()
	if !hasEng {
		dst = append(dst, "HEALTH"...)
		for _, name := range s.con.Engines() {
			h, _ := s.con.Health(name)
			dst = append(dst, ' ')
			dst = append(dst, name...)
			dst = append(dst, '=')
			dst = append(dst, h.String()...)
		}
		return dst
	}
	sub, hasSub := fs.next()
	if _, extra := fs.next(); extra {
		return append(dst, usage...)
	}
	if hasSub {
		if !strings.EqualFold(sub, "SCRUB") {
			return append(dst, usage...)
		}
		rep, err := s.con.Scrub(eng)
		if err != nil {
			return appendErr(dst, err)
		}
		dst = append(dst, "OK scrub engine="...)
		dst = append(dst, eng...)
		dst = append(dst, " rows="...)
		dst = appendInt(dst, int64(rep.RepairedRows))
		dst = append(dst, " bits="...)
		dst = appendInt(dst, int64(rep.RepairedBits))
		dst = append(dst, " released="...)
		return appendInt(dst, int64(rep.Released))
	}
	hi, err := s.con.HealthInfo(eng)
	if err != nil {
		return appendErr(dst, err)
	}
	dst = append(dst, "HEALTH engine="...)
	dst = append(dst, eng...)
	dst = append(dst, " state="...)
	dst = append(dst, hi.State.String()...)
	dst = append(dst, " quarantined="...)
	dst = appendInt(dst, int64(hi.Quarantined))
	dst = append(dst, " corrected="...)
	dst = appendUint(dst, hi.Ecc.CorrectedBits)
	dst = append(dst, " uncorrectable="...)
	dst = appendUint(dst, hi.Ecc.Uncorrectable)
	dst = append(dst, " read_errors="...)
	dst = appendUint(dst, hi.Ecc.ReadErrors)
	dst = append(dst, " scrubs="...)
	dst = appendUint(dst, hi.Ecc.ScrubRuns)
	dst = append(dst, " scrub_bits="...)
	dst = appendUint(dst, hi.Ecc.ScrubRepairedBits)
	dst = append(dst, " overflow="...)
	dst = appendInt(dst, int64(hi.OverflowLen))
	dst = append(dst, '/')
	return appendInt(dst, int64(hi.OverflowCap))
}
