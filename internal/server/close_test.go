package server

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"caram/internal/subsystem"
	"caram/internal/wal"
)

// walServer builds a server over a recovered WAL in dir with one
// bootstrap exact engine "db".
func walServer(t *testing.T, dir string, opts wal.Options) (*Server, *wal.Log) {
	t.Helper()
	boot, err := subsystem.NewTypedEngine("db", subsystem.ExactEngine,
		subsystem.TypedConfig{IndexBits: 6, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, res, err := wal.Recover(dir, []*subsystem.Engine{boot}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sub := subsystem.New(0)
	for _, e := range res.Engines {
		if err := sub.AddEngine(e); err != nil {
			t.Fatal(err)
		}
	}
	return New(sub, WithWAL(w, res.RosterLSN, 0)), w
}

// TestCloseDrainsInflightHandlers is the graceful-shutdown drain
// regression: Close fired while a handler is mid-commit (the WAL's
// slow-sync hook holds the fsync open) must still deliver every reply
// for requests the handler had read, and the sealed log must be a
// clean recovery point needing zero replay — the final snapshot runs
// only after the drain, so it captures those very mutations.
//
// Before the fix, Close hard-closed every connection before
// handlers.Wait, so replies to already-executed requests were lost
// with the socket.
func TestCloseDrainsInflightHandlers(t *testing.T) {
	dir := t.TempDir()
	srv, _ := walServer(t, dir, wal.Options{
		Sync:     wal.SyncPolicy{Mode: wal.SyncAlways},
		SlowSync: 150 * time.Millisecond,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	// A pipelined burst: both inserts are read into the handler's
	// buffer at once; each blocks in the slow group commit.
	if _, err := conn.Write([]byte("INSERT db 1 aa\nINSERT db 2 bb\n")); err != nil {
		t.Fatal(err)
	}
	// Let the handler pick the burst up and enter the first commit,
	// then shut down while it is still in flight.
	time.Sleep(40 * time.Millisecond)
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.Close() }()

	br := bufio.NewReader(conn)
	for i := 0; i < 2; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d lost in shutdown: %v", i+1, err)
		}
		if line != "OK\n" {
			t.Fatalf("reply %d = %q, want OK", i+1, line)
		}
	}
	if err := <-closeErr; err != nil {
		t.Fatalf("close: %v", err)
	}

	// The graceful shutdown must have left a sealed log whose final
	// snapshot already covers both acked inserts: zero replay.
	boot, err := subsystem.NewTypedEngine("db", subsystem.ExactEngine,
		subsystem.TypedConfig{IndexBits: 6, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	w2, res, err := wal.Recover(dir, []*subsystem.Engine{boot}, wal.Options{Sync: wal.SyncPolicy{Mode: wal.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Seal() //nolint:errcheck
	if !res.CleanShutdown {
		t.Fatal("graceful Close did not seal the log")
	}
	if res.Replayed != 0 {
		t.Fatalf("graceful Close left %d records to replay, want 0", res.Replayed)
	}
	sub := subsystem.New(0)
	for _, e := range res.Engines {
		if err := sub.AddEngine(e); err != nil {
			t.Fatal(err)
		}
	}
	srv2 := New(sub)
	for req, want := range map[string]string{
		"SEARCH db 1": "HIT 0:00000000000000aa",
		"SEARCH db 2": "HIT 0:00000000000000bb",
	} {
		if got := srv2.Exec(req); got != want {
			t.Fatalf("%s after recovery = %q, want %q", req, got, want)
		}
	}
}

// TestCloseIdempotent: double Close stays safe with a WAL attached
// (the second call must not re-seal or re-snapshot).
func TestCloseIdempotent(t *testing.T) {
	srv, _ := walServer(t, t.TempDir(), wal.Options{Sync: wal.SyncPolicy{Mode: wal.SyncAlways}})
	if err := srv.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestWALStatusCommand covers the wire command against a live WAL:
// the deterministic base form tracks the commit horizon, the SYNC form
// adds fsync telemetry, and arguments are validated.
func TestWALStatusCommand(t *testing.T) {
	srv, _ := walServer(t, t.TempDir(), wal.Options{Sync: wal.SyncPolicy{Mode: wal.SyncAlways}})
	defer srv.Close() //nolint:errcheck
	if got := srv.Exec("WAL STATUS"); got != "WAL lsn=0 durable=0 segments=1 snapshot_lsn=0 sync=always" {
		t.Fatalf("fresh WAL STATUS = %q", got)
	}
	for _, req := range []string{"INSERT db 1 aa", "INSERT db 2 bb", "DELETE db 1"} {
		if got := srv.Exec(req); got != "OK" {
			t.Fatalf("%s: %q", req, got)
		}
	}
	if got := srv.Exec("WAL STATUS"); got != "WAL lsn=3 durable=3 segments=1 snapshot_lsn=0 sync=always" {
		t.Fatalf("WAL STATUS after 3 mutations = %q", got)
	}
	sync := srv.Exec("WAL STATUS SYNC")
	for _, want := range []string{"WAL lsn=3 durable=3", " pending=0 ", " fsyncs=", " fsync_avg_us=", " last_fsync_age_ms="} {
		if !strings.Contains(sync, want) {
			t.Fatalf("WAL STATUS SYNC = %q, missing %q", sync, want)
		}
	}
	for _, bad := range []string{"WAL", "WAL FLUSH", "WAL STATUS EXTRA", "WAL STATUS SYNC MORE"} {
		if got := srv.Exec(bad); got != "ERR usage: WAL STATUS [SYNC]" {
			t.Fatalf("%s = %q, want usage error", bad, got)
		}
	}
}

// TestWALStatusDisabled: a server without a WAL answers ERR.
func TestWALStatusDisabled(t *testing.T) {
	srv := allocServer()
	if got := srv.Exec("WAL STATUS"); got != "ERR wal disabled" {
		t.Fatalf("WAL STATUS without wal = %q", got)
	}
}
