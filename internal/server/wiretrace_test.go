package server

import (
	"strings"
	"testing"

	"caram/internal/trace"
)

// The *TID wire annotation and the TRACE GET command: the server half
// of cross-node trace stitching.

func TestWireAnnotationJoinsTrace(t *testing.T) {
	// Sampling off, slowlog off: only the annotation can retain a trace.
	s, col := tracedServer(trace.Config{Slowlog: -1, Ring: 8})
	got := drive(t, s,
		"INSERT db dead 42",
		"*TID deadbeef/3 SEARCH db dead",
	)
	if got[0] != "OK" || !strings.HasPrefix(got[1], "HIT") {
		t.Fatalf("replies: %q", got)
	}
	if n := col.Tagged().Len(); n != 1 {
		t.Fatalf("tagged ring retained %d traces, want 1 (the annotated SEARCH)", n)
	}
	tr := col.Find(0xdeadbeef, 3)
	if tr == nil {
		t.Fatal("Find(deadbeef, 3) missed the annotated trace")
	}
	if tr.Cmd != "SEARCH" || tr.Key != "dead" || tr.SpanID != 3 {
		t.Errorf("annotated trace: cmd=%q key=%q span=%d", tr.Cmd, tr.Key, tr.SpanID)
	}
	// Span 0 matches any span of the id.
	if col.Find(0xdeadbeef, 0) == nil {
		t.Error("Find(deadbeef, 0) should match any span")
	}
	if col.Find(0xdeadbeef, 4) != nil {
		t.Error("Find(deadbeef, 4) matched a trace with span 3")
	}
}

// TestWireAnnotationTransparent: the annotation is stripped and the
// reply is byte-identical to the bare command — tracing attached or
// not.
func TestWireAnnotationTransparent(t *testing.T) {
	traced, _ := tracedServer(trace.Config{Slowlog: 0, Ring: 8})
	plain := allocServer() // no collector at all
	for _, s := range []*Server{traced, plain} {
		if got := s.Exec("INSERT db dead 42"); got != "OK" {
			t.Fatalf("INSERT: %q", got)
		}
		for _, req := range []string{
			"SEARCH db dead",
			"SEARCH db beef",
			"STATS db",
			"SEARCH db", // usage error: annotation must not eat the blame
		} {
			bare := s.Exec(req)
			annotated := s.Exec("*TID c0ffee/1 " + req)
			if bare != annotated {
				t.Errorf("annotation changed the reply for %q:\n  bare:      %q\n  annotated: %q",
					req, bare, annotated)
			}
		}
	}
}

func TestWireAnnotationErrors(t *testing.T) {
	s, _ := tracedServer(trace.Config{Slowlog: 0, Ring: 8})
	const usage = "ERR usage: *TID <hex-id>/<span-id> <command ...>"
	for req, want := range map[string]string{
		"*TID":                      usage,
		"*TID zzz SEARCH db 5":      usage,
		"*TID deadbeef/x SEARCH db": usage,
		"*TID deadbeef":             "ERR empty request",
		"*FOO SEARCH db 5":          "ERR unknown annotation *FOO",
	} {
		if got := s.Exec(req); got != want {
			t.Errorf("%q = %q, want %q", req, got, want)
		}
	}
}

// TestTraceGetLifecycle walks a wire id through retained -> evicted:
// TRACE GET answers while the ring holds the trace and reports
// notfound after wraparound evicts it.
func TestTraceGetLifecycle(t *testing.T) {
	s, col := tracedServer(trace.Config{Slowlog: -1, Ring: 4})
	if got := s.Exec("TRACE GET deadbeef"); got != "ERR trace: notfound" {
		t.Fatalf("miss before admission: %q", got)
	}
	s.Exec("*TID deadbeef/1 SEARCH db 5")
	got := s.Exec("TRACE GET deadbeef/1")
	if !strings.HasPrefix(got, "TRACE {") ||
		!strings.Contains(got, `"tid":"deadbeef"`) || !strings.Contains(got, `"span":1`) {
		t.Fatalf("retained hit: %q", got)
	}
	// Fill the ring past capacity with other ids; deadbeef falls out.
	for i := 0; i < col.Tagged().Cap(); i++ {
		s.Exec("*TID " + string(rune('a'+i)) + "1 SEARCH db 5")
	}
	if got := s.Exec("TRACE GET deadbeef/1"); got != "ERR trace: notfound" {
		t.Fatalf("after eviction: %q", got)
	}

	const usage = "ERR usage: TRACE GET <hex-id>[/<span-id>]"
	for _, req := range []string{"TRACE", "TRACE GET", "TRACE PUT a1", "TRACE GET zzz", "TRACE GET a1 extra"} {
		if got := s.Exec(req); got != usage {
			t.Errorf("%q = %q, want usage", req, got)
		}
	}
	if got := allocServer().Exec("TRACE GET a1"); got != "ERR tracing disabled" {
		t.Errorf("untraced server: %q", got)
	}
}

// TestTraceGetVsResetRace hammers TRACE GET lookups against concurrent
// ring resets; run under -race by make trace-guard. The property is
// freedom from data races, not any particular hit/miss outcome.
func TestTraceGetVsResetRace(t *testing.T) {
	s, col := tracedServer(trace.Config{Slowlog: 0, Ring: 8})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			col.Slow().Reset()
			col.Tagged().Reset()
		}
	}()
	for i := 0; i < 400; i++ {
		s.Exec("*TID deadbeef/1 SEARCH db 5")
		if got := s.Exec("TRACE GET deadbeef/1"); got != "ERR trace: notfound" &&
			!strings.HasPrefix(got, "TRACE {") {
			t.Fatalf("TRACE GET under reset: %q", got)
		}
	}
	<-done
}
