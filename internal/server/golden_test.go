package server

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/subsystem"
	"caram/internal/trace"
	"caram/internal/wal"
)

var updateGolden = flag.Bool("update", false, "rewrite golden protocol files")

// goldenServer must be deterministic: fixed engines, fixed geometry,
// no randomized hashing. Tracing is attached with an unreachable
// slowlog threshold so the SLOWLOG exchanges in the session stay
// deterministic (nothing is ever admitted) while the commands
// themselves are exercised; EXPLAIN forces its own trace and prints
// only positional (timing-free) facts, so its full output is golden.
// A fresh sync=always WAL is attached per replay: WAL STATUS is then a
// pure function of the scripted mutations (durable==lsn at every
// reply), so its exchanges golden too.
func goldenServer(t *testing.T) *Server {
	t.Helper()
	sub := subsystem.New(0)
	for _, name := range []string{"db", "aux"} {
		sl := caram.MustNew(caram.Config{
			IndexBits: 6,
			RowBits:   4*(1+64+32) + 8,
			KeyBits:   64,
			DataBits:  32,
			Index:     hash.NewMultShift(6),
		})
		if err := sub.AddEngine(&subsystem.Engine{Name: name, Main: sl}); err != nil {
			t.Fatal(err)
		}
	}
	w, res, err := wal.Recover(t.TempDir(), nil, wal.Options{Sync: wal.SyncPolicy{Mode: wal.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	s := New(sub,
		WithTracing(trace.NewCollector(trace.Config{Slowlog: time.Hour})),
		WithWAL(w, res.RosterLSN, 0))
	t.Cleanup(func() { s.Close() }) //nolint:errcheck
	return s
}

// TestGoldenSession replays the scripted session in testdata and
// requires byte-exact responses — the protocol's compatibility
// contract. Regenerate with `go test ./internal/server -run Golden
// -update` after a deliberate protocol change, and review the diff.
func TestGoldenSession(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "session.script"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	goldenServer(t).Handle(bytes.NewReader(script), &out)

	goldenPath := filepath.Join("testdata", "session.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if bytes.Equal(out.Bytes(), want) {
		return
	}
	// Line-by-line diff, annotated with the request that produced each
	// response, so a failure reads like a protocol trace.
	reqs := strings.Split(strings.TrimRight(string(script), "\n"), "\n")
	got := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(got) || i < len(wantLines); i++ {
		g, w, r := "<missing>", "<missing>", "<eof>"
		if i < len(got) {
			g = got[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(reqs) {
			r = reqs[i]
		}
		if g != w {
			t.Errorf("line %d: request %q\n  got  %s\n  want %s", i+1, r, g, w)
		}
	}
	if !t.Failed() {
		t.Fatalf("outputs differ only in trailing bytes: got %q, want %q",
			out.String(), string(want))
	}
}

// TestGoldenDeterministic guards the premise of the golden file: two
// identical replays must produce identical bytes (no map-order or
// scheduling nondeterminism leaks into responses).
func TestGoldenDeterministic(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "session.script"))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	goldenServer(t).Handle(bytes.NewReader(script), &a)
	goldenServer(t).Handle(bytes.NewReader(script), &b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two replays of the same session differ")
	}
	if a.Len() == 0 || !strings.HasSuffix(a.String(), "\n") {
		t.Fatalf("malformed session output %q", a.String())
	}
}
