package server

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"caram/internal/trigram"
)

// Differential oracle suite for the trigram engine type: the wire path
// (TINSERT / TSEARCH, text-keyed) is checked query-for-query against
// two independent oracles — a plain map[string]uint16, and the
// simulation package's own CA-RAM slice built by trigram.Evaluate over
// the identical database and read through trigram.Lookup. The second
// oracle pins the wire path to the exact key folding (§6's 128-bit
// trigram keys) the paper-replication code uses.

// trigramFixture creates a trigram engine over the wire and loads a
// generated trigram database, returning the entries resident in the
// engine (full rows drop the entry from every model alike).
func trigramFixture(t *testing.T, s *Server, eng string, nEntries int, seed int64) ([]trigram.Entry, map[string]uint16) {
	t.Helper()
	mustOK(t, s, "CREATE ENGINE "+eng+" TYPE trigram INDEXBITS 8 SLOTS 16")
	db := trigram.Generate(trigram.GenConfig{Entries: nEntries, Seed: seed})
	scores := make(map[string]uint16, len(db))
	var kept []trigram.Entry
	for _, e := range db {
		req := fmt.Sprintf("TINSERT %s %x %s", eng, e.Score, e.Text)
		reply := s.Exec(req)
		if strings.HasPrefix(reply, "ERR subsystem: record fits") ||
			strings.HasPrefix(reply, "ERR caram: slice full") {
			continue
		}
		if reply != "OK" {
			t.Fatalf("%s => %q", req, reply)
		}
		scores[e.Text] = e.Score
		kept = append(kept, e)
	}
	if len(kept) < nEntries/2 {
		t.Fatalf("only %d/%d entries resident; fixture too small to be meaningful", len(kept), nEntries)
	}
	return kept, scores
}

// trigramCheck compares one text's wire answer against the map oracle.
func trigramCheck(t *testing.T, s *Server, eng, text string, scores map[string]uint16) {
	t.Helper()
	got, hit := parseHit(t, s.Exec("TSEARCH "+eng+" "+text))
	want, ok := scores[text]
	if hit != ok || (hit && got != uint64(want)) {
		t.Fatalf("text %q: wire (hit=%v score=%#x) vs oracle (hit=%v score=%#x)", text, hit, got, ok, want)
	}
}

// TestTypedTrigramDifferential inserts ~1200 trigrams and checks every
// resident text plus misses against the map oracle, then replays the
// same queries against the simulation package's slice (built from the
// identical kept database) so the wire scores and the paper-model
// scores are pinned to each other.
func TestTypedTrigramDifferential(t *testing.T) {
	s := typedServer(t)
	kept, scores := trigramFixture(t, s, "tri", 1200, 9)

	for _, e := range kept {
		trigramCheck(t, s, "tri", e.Text, scores)
	}
	// Misses: perturbed texts that cannot be in the vocabulary-built
	// database (the generator never emits '#').
	for i, e := range kept {
		if i%3 == 0 {
			trigramCheck(t, s, "tri", e.Text+"#", scores)
		}
	}

	// Second oracle: the simulation slice over the same database.
	ev, err := trigram.Evaluate(kept, trigram.Design{Name: "oracle", R: 10, Slices: 1, Arr: trigram.Vertical})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Unplaced != 0 {
		t.Fatalf("oracle slice left %d entries unplaced", ev.Unplaced)
	}
	for _, e := range kept {
		got, hit := parseHit(t, s.Exec("TSEARCH tri "+e.Text))
		score, _, ok := trigram.Lookup(ev.Slice, e.Text)
		if !hit || !ok || got != uint64(score) {
			t.Fatalf("text %q: wire (hit=%v %#x) vs simulation slice (hit=%v %#x)", e.Text, hit, got, ok, score)
		}
	}
}

// TestTypedTrigramQuick is the testing/quick form: an arbitrary index
// and mutation flag pick either a resident text (must HIT with its
// score) or a perturbed absent one (must MISS).
func TestTypedTrigramQuick(t *testing.T) {
	s := typedServer(t)
	kept, scores := trigramFixture(t, s, "triq", 600, 15)
	prop := func(i uint32, miss bool) bool {
		text := kept[int(i)%len(kept)].Text
		if miss {
			text += "#"
		}
		got, hit := parseHit(t, s.Exec("TSEARCH triq "+text))
		want, ok := scores[text]
		return hit == ok && (!hit || got == uint64(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestTypedTrigramChurn runs 16 goroutines of mixed wire ops on one
// trigram engine: searchers read a stable core (always HIT, exact
// score) and churned texts (HIT must carry the universe score — a
// wrong score is a torn read), writers cycle disjoint text sets
// through DELETE (by the folded 128-bit key) and TINSERT.
func TestTypedTrigramChurn(t *testing.T) {
	const (
		nSearchers = 12
		nWriters   = 4
		perWriter  = 8
		iters      = 300
	)
	s := typedServer(t)
	mustOK(t, s, "CREATE ENGINE tri TYPE trigram INDEXBITS 8 SLOTS 16")

	db := trigram.Generate(trigram.GenConfig{Entries: 64, Seed: 31})
	if len(db) < 16+nWriters*perWriter {
		t.Fatalf("generator yielded only %d entries", len(db))
	}
	scores := make(map[string]uint16, len(db))
	tinsert := func(e trigram.Entry) string {
		return fmt.Sprintf("TINSERT tri %x %s", e.Score, e.Text)
	}
	stable := db[:16]
	for _, e := range stable {
		mustOK(t, s, tinsert(e))
		scores[e.Text] = e.Score
	}
	churn := make([][]trigram.Entry, nWriters)
	for w := range churn {
		churn[w] = db[16+w*perWriter : 16+(w+1)*perWriter]
		for _, e := range churn[w] {
			mustOK(t, s, tinsert(e))
			scores[e.Text] = e.Score
		}
	}

	var wg sync.WaitGroup
	var fail atomic.Value
	record := func(format string, args ...any) {
		fail.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e := churn[w][i%perWriter]
				k := e.Key()
				del := fmt.Sprintf("DELETE tri %x:%x", k.Hi, k.Lo)
				if got := s.Exec(del); got != "OK" {
					record("%s => %q", del, got)
					return
				}
				if got := s.Exec(tinsert(e)); got != "OK" {
					record("churn reinsert %q => %q", e.Text, got)
					return
				}
			}
		}(w)
	}
	for g := 0; g < nSearchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + g)))
			for i := 0; i < iters; i++ {
				var text string
				stableRead := i%2 == 0
				if stableRead {
					text = stable[rng.Intn(len(stable))].Text
				} else {
					w := rng.Intn(nWriters)
					text = churn[w][rng.Intn(perWriter)].Text
				}
				reply := s.Exec("TSEARCH tri " + text)
				if reply == "MISS" {
					if stableRead {
						record("stable text %q answered MISS", text)
						return
					}
					continue
				}
				var hi, lo uint64
				if _, err := fmt.Sscanf(reply, "HIT %x:%x", &hi, &lo); err != nil || hi != 0 {
					record("text %q: unexpected reply %q", text, reply)
					return
				}
				if lo != uint64(scores[text]) {
					record("text %q: score %#x, want %#x (torn read?)", text, lo, scores[text])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
}
