package server

import (
	"fmt"
	"strings"
	"testing"

	"caram/internal/bitutil"
)

// responsePrefixes classifies every legal single-line response.
var responsePrefixes = []string{"OK", "HIT ", "MISS", "ERR ", "ENGINES", "STATS ", "MRESULTS", "METRICS", "SLOWLOG ", "EXPLAIN ", "HEALTH"}

// FuzzExec throws arbitrary request lines at the protocol engine: no
// input may panic it, and every response must be one well-formed line
// of a known shape. The seed corpus covers each command, the
// malformed-hex cases parseVec must reject, and an oversized line.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"",
		"ENGINES",
		"INSERT db dead 42",
		"SEARCH db dead",
		"SEARCH db dead ff",
		"SEARCH db 12zz", // hex prefix + garbage: the Sscanf bug class
		"SEARCH db 1:2:3",
		"SEARCH db 0xdead",
		"SEARCH db -1",
		"SEARCH db +1",
		"SEARCH db " + strings.Repeat("f", 17), // overflows uint64
		"MSEARCH db dead db beef",
		"MSEARCH db",     // odd arg count
		"MSEARCH nope 1", // unknown engine
		"DELETE db dead",
		"STATS db",
		"STATS nope",
		"METRICS",
		"METRICS db",
		"METRICS nope",
		"METRICS db LATENCY",
		"METRICS db LATENCY SEARCH",
		"METRICS db latency msearch",
		"METRICS db LATENCY BOGUS",
		"METRICS db extra junk",
		"SLOWLOG",
		"SLOWLOG LEN",
		"SLOWLOG GET",
		"SLOWLOG GET 2",
		"SLOWLOG GET 0",
		"SLOWLOG GET -1",
		"SLOWLOG GET 1 extra",
		"SLOWLOG GET 99999999", // beyond the GET bound
		"SLOWLOG GET 99999999999999999999",
		"SLOWLOG RESET",
		"SLOWLOG BOGUS",
		"slowlog get",
		"EXPLAIN",
		"EXPLAIN SEARCH",
		"EXPLAIN SEARCH db dead",
		"EXPLAIN SEARCH db dead ff",
		"EXPLAIN SEARCH db 12zz",
		"EXPLAIN SEARCH nope 1",
		"EXPLAIN INSERT db 1",
		"explain search db dead",
		"HEALTH",
		"HEALTH db",
		"HEALTH nope",
		"HEALTH db SCRUB",
		"HEALTH db scrub",
		"HEALTH db BOGUS",
		"HEALTH db SCRUB extra",
		"health db",
		"CREATE ENGINE z TYPE lpm INDEXBITS 4",
		"CREATE ENGINE z TYPE trigram",
		"CREATE ENGINE z TYPE pktclass SLOTS 4 ECC",
		"CREATE ENGINE z TYPE wat",
		"CREATE ENGINE z TYPE lpm INDEXBITS 99",
		"CREATE ENGINE db TYPE exact", // duplicate of the fixture engine
		"CREATE ENGINE",
		"create engine y type lpm indexbits 4 slots 2",
		"DROP ENGINE z",
		"DROP ENGINE nope",
		"DROP",
		"MINSERT z 12 ff 1",
		"MINSERT db 12 ff 1", // exact engine: type gate
		"MINSERT z 12zz ff 1",
		"MINSERT z 12 ff",
		"MDELETE z 12 ff",
		"MDELETE db 12 ff",
		"TINSERT z 1 hello world",
		"TINSERT db 1 hello",
		"TINSERT z zz hello",
		"TINSERT z 1",
		"TSEARCH z hello world",
		"TSEARCH db hello",
		"TSEARCH z",
		"BOGUS x y",
		"insert db 1 2", // lowercase command
		"INSERT db 1 2 3 4",
		"  SEARCH \t db \t dead  ",
		strings.Repeat("A", 70000), // oversized line (Handle rejects; Exec must survive)
		"SEARCH db \x00\xff",
		"INSERT db ÿ 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := fuzzServer()
	f.Fuzz(func(t *testing.T, line string) {
		resp := srv.Exec(line)
		if resp == "" {
			t.Fatalf("empty response for %q", line)
		}
		if strings.ContainsAny(resp, "\n\r") {
			t.Fatalf("multi-line response %q for %q", resp, line)
		}
		known := false
		for _, p := range responsePrefixes {
			if resp == strings.TrimSpace(p) || strings.HasPrefix(resp, p) {
				known = true
				break
			}
		}
		if !known {
			t.Fatalf("unclassifiable response %q for %q", resp, line)
		}
	})
}

// FuzzParseVec checks that parseVec never panics, returns the zero
// vector on every error, and round-trips every value it accepts.
func FuzzParseVec(f *testing.F) {
	seeds := []string{
		"", "0", "dead", "DEAD", "dEaD",
		"12zz", "zz12", "0x12", "+12", "-1", "١٢", // non-ASCII digits
		"deadbeef:cafef00d", ":", "1:", ":1", "1:2:3", "1::2",
		strings.Repeat("f", 16), strings.Repeat("f", 17),
		strings.Repeat("0", 100) + "1", "ffffffffffffffff:ffffffffffffffff",
		"1 2", "1\t2", "1.5", "e", "E", "_1", "1_2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := parseVec(s)
		if err != nil {
			if v != (bitutil.Vec128{}) {
				t.Fatalf("parseVec(%q) error %v but non-zero value %v", s, err, v)
			}
			return
		}
		// Whatever parsed must survive a format/reparse round trip.
		rt, err := parseVec(fmt.Sprintf("%x:%x", v.Hi, v.Lo))
		if err != nil {
			t.Fatalf("round-trip of %q failed: %v", s, err)
		}
		if rt != v {
			t.Fatalf("parseVec(%q) = %v, round-trips to %v", s, v, rt)
		}
	})
}
