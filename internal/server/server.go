// Package server exposes a CA-RAM subsystem over a TCP line protocol —
// the shape a CA-RAM accelerator takes behind a lookup service (the
// paper's request/result ports, §3.2, stretched over a socket).
//
// Protocol (one request per line, space-separated, keys in hex, either
// plain "<lo>" or wide "<hi>:<lo>"):
//
//	ENGINES
//	CREATE  ENGINE <name> TYPE <type> [INDEXBITS <n>] [SLOTS <n>] [ECC]
//	DROP    ENGINE <name>
//	INSERT  <engine> <key> <data>
//	MINSERT <engine> <key> <mask> <data>
//	SEARCH  <engine> <key> [mask]
//	MSEARCH <engine> <key> [<engine> <key> ...]
//	DELETE  <engine> <key>
//	MDELETE <engine> <key> <mask>
//	TINSERT <engine> <score> <text...>
//	TSEARCH <engine> <text...>
//	STATS   <engine>
//	METRICS [engine [LATENCY <op>]]
//	SLOWLOG GET [n] | LEN | RESET
//	EXPLAIN SEARCH <engine> <key> [mask]
//	HEALTH  [engine [SCRUB]]
//	WAL     STATUS [SYNC]
//
// CREATE ENGINE adds a typed engine to the live server (type one of
// exact, lpm, pktclass, trigram); DROP ENGINE removes one. SEARCH on
// an lpm engine answers the longest matching prefix, on a pktclass
// engine the highest-priority matching rule — the type carries the
// ranking, the request line stays the same. MINSERT/MDELETE are the
// masked (ternary) writes of the lpm/pktclass engines: mask bits are
// don't-cares, and the store duplicates each rule across its wildcard
// hash buckets (§4's ternary duplication). TINSERT/TSEARCH are the
// trigram engine's text-keyed forms — the text (rest of the line,
// spaces allowed) folds into the 16-byte key image of §6's trigram
// signatures, and a hit returns the stored score.
//
// Responses: "OK", "HIT <data>", "MISS", "STATS n=.. alpha=.. amal=..",
// "ENGINES a b c", "MRESULTS r1 r2 ...", "METRICS ...", "SLOWLOG ...",
// "EXPLAIN ...", "HEALTH ..." or "ERR <reason>". A SEARCH that could
// not rule the key out — its row is quarantined or unreadable under the
// error-coding layer — answers "MISS!", the explicit miss-with-error.
// Each MRESULTS slot is "HIT:<hi>:<lo>", "MISS", "MISS!",
// "ERR:no-engine", or "ERR:unavailable" (circuit breaker open), in
// request order.
//
// HEALTH reads the fault-tolerance layer (internal/subsystem): with no
// argument it lists every engine's availability state, with an engine
// it prints the state plus the error-coding counters behind it, and
// HEALTH <engine> SCRUB runs the scrub pass — restoring quarantined
// rows from the insert-side shadow — and reports what it repaired.
//
// METRICS reads the observability layer (internal/metrics): with no
// argument it reports registry totals; with an engine it reports that
// engine's per-op counters and live gauges (all deterministic for a
// scripted session); with LATENCY <op> it adds the op's latency
// quantiles in microseconds (wall-clock, inherently nondeterministic).
//
// SLOWLOG and EXPLAIN read the request-scoped tracing layer
// (internal/trace). SLOWLOG is the Redis-style slow-request log: every
// request whose wall latency exceeded the collector's threshold is
// retained with its full probe trace; GET prints the newest entries on
// one line, LEN the retained count, RESET clears the log. EXPLAIN
// SEARCH runs a real lookup with tracing forced on and prints the
// probe chain deterministically — home bucket, recorded reach, one
// chain element per bucket probed (bucket index, displacement, slots
// tested, match count, overflow hop), the overflow-CAM outcome, and
// the §3.4 analytic expectation of rows accessed next to the measured
// count. SLOWLOG requires the server to be built WithTracing; EXPLAIN
// always works (it forces its own trace).
//
// Request lines are capped at MaxLineBytes; an oversized line draws
// "ERR line too long" and ends the connection.
//
// Overload protection is opt-in per server. WithConnLimit caps the
// number of concurrently served connections: excess accepts are shed
// immediately with a one-line "ERR BUSY" and closed, so a connection
// flood degrades into fast rejections instead of unbounded goroutines.
// WithTimeouts arms read deadlines — an idle timeout for the start of
// the next request and a (usually shorter) read timeout once a request
// has begun arriving, the slow-loris defense — and a deadline expiry
// draws "ERR timeout" and ends the connection without executing the
// partial line. Independently of both, every connection handler runs
// under a panic recovery: a handler bug tears down that one connection
// (logged at Error) and never the process.
//
// Concurrency: the server runs on a per-engine locking model
// (subsystem.Concurrent). Requests that target distinct engines
// execute in parallel — N connections hammering N engines proceed
// independently, the §3.2 picture of multiple lookups simultaneously
// in progress in different slices. INSERT, SEARCH and DELETE on the
// same engine serialize (a slice has one row port, and even lookups
// update access statistics); STATS takes only a read lock and may
// overlap with other STATS of the same engine. MSEARCH fans its batch
// across the referenced engines and collects results in request order.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/metrics"
	"caram/internal/subsystem"
	"caram/internal/trace"
	"caram/internal/wal"
)

// flushThreshold caps how much reply data accumulates before Handle
// writes it out even though more pipelined requests are buffered.
const flushThreshold = 32 * 1024

// MaxLineBytes bounds one request line. Longer lines are rejected with
// "ERR line too long".
const MaxLineBytes = 64 * 1024

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Server serves a subsystem through its per-engine concurrency layer.
type Server struct {
	con *subsystem.Concurrent
	met *metrics.Registry // nil when built WithoutMetrics
	trc *trace.Collector  // nil when built without WithTracing
	log *slog.Logger      // nil when built without WithLogger

	maxConns    int           // 0 = unlimited
	active      atomic.Int32  // connections currently served (conn-limit bookkeeping)
	readTimeout time.Duration // per-read deadline once a request has started; 0 = none
	idleTimeout time.Duration // deadline for the start of the next request; 0 = none

	// panicLine, when non-empty, makes execAppend panic on that exact
	// request line — the test hook behind the panic-recovery regression
	// test. Never set in production.
	panicLine string

	// wal is the durability layer (nil when the server runs without
	// one): every mutation journals through it, Close snapshots and
	// seals it. closing flips at the start of Close so connection
	// readers stop re-arming deadlines and the shutdown nudge reads
	// as "drain and hang up", not "ERR timeout".
	wal      *wal.Log
	snapStop chan struct{} // stops the periodic-snapshot loop
	snapWG   sync.WaitGroup
	closing  atomic.Bool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	handlers  sync.WaitGroup // accept loops + connection handlers
}

// Option configures New.
type Option func(*options)

type options struct {
	metrics   bool
	trc       *trace.Collector
	log       *slog.Logger
	maxConns  int
	readTO    time.Duration
	idleTO    time.Duration
	wal       *wal.Log
	walRoster uint64
	snapEvery time.Duration
}

// WithoutMetrics builds the server without the observability layer:
// no counters, no latency measurement, METRICS answers "ERR metrics
// disabled". The instrumented path is the default; this exists for the
// overhead benchmark and for embedders that bring their own telemetry.
func WithoutMetrics() Option {
	return func(o *options) { o.metrics = false }
}

// WithTracing attaches a request-scoped trace collector: every wire
// command records its own trace (command, engine, key, per-command
// start/end — so each member of a pipelined burst is individually
// attributable — and, for SEARCH, the full probe chain) and the
// collector's sampling/slowlog policies decide retention. Without this
// option tracing is off: the hot path sees only nil checks and stays
// allocation-free, SLOWLOG answers "ERR tracing disabled", and only
// EXPLAIN (which forces its own trace) records probe chains.
func WithTracing(c *trace.Collector) Option {
	return func(o *options) { o.trc = c }
}

// WithLogger attaches a structured logger: connection lifecycle at
// Debug, slow-request records (one line per slowlog admission) at
// Warn, handler panics at Error. nil (the default) disables logging.
func WithLogger(l *slog.Logger) Option {
	return func(o *options) { o.log = l }
}

// WithConnLimit caps concurrently served connections at n (load
// shedding): an accept beyond the cap is answered with one "ERR BUSY"
// line and closed immediately, without dedicating a handler goroutine
// to it. n <= 0 (the default) means unlimited.
func WithConnLimit(n int) Option {
	return func(o *options) { o.maxConns = n }
}

// WithTimeouts arms per-connection read deadlines. idle bounds how
// long a connection may sit between requests (waiting for the first
// byte of the next line); read bounds each subsequent read once a
// request has started arriving — the slow-loris defense, since a
// client trickling one byte per read can no longer hold a handler
// forever. Either may be zero to disable that bound. On expiry the
// connection draws "ERR timeout" and closes; a partially received
// line is never executed.
func WithTimeouts(read, idle time.Duration) Option {
	return func(o *options) { o.readTO, o.idleTO = read, idle }
}

// WithWAL attaches a durability layer: every acknowledged mutation is
// journaled through w (acks ordered after the fsync under the
// sync=always policy), rosterLSN seeds the CREATE/DROP replay gate
// recovered from disk, and snapshotEvery > 0 starts a background loop
// that serializes the subsystem's shadow image and truncates sealed
// segments. Close snapshots once more after the drain and seals the
// log, so a graceful shutdown leaves a log needing zero replay.
func WithWAL(w *wal.Log, rosterLSN uint64, snapshotEvery time.Duration) Option {
	return func(o *options) {
		o.wal = w
		o.walRoster = rosterLSN
		o.snapEvery = snapshotEvery
	}
}

// New wraps a subsystem whose engine registration is complete. By
// default the per-engine metrics layer is attached (see
// internal/metrics); the registry is reachable via Metrics for HTTP
// export.
func New(sub *subsystem.Subsystem, opts ...Option) *Server {
	o := options{metrics: true}
	for _, opt := range opts {
		opt(&o)
	}
	con := subsystem.NewConcurrent(sub)
	var reg *metrics.Registry
	if o.metrics {
		reg = metrics.NewRegistry(con.Engines())
		con.Instrument(reg)
	}
	if o.wal != nil {
		con.SetJournal(o.wal, o.walRoster)
		if reg != nil {
			w := o.wal
			reg.SetWALFunc(func() metrics.WALStats {
				st := w.Stats()
				return metrics.WALStats{
					AppendedLSN: st.LSN,
					DurableLSN:  st.Durable,
					SnapshotLSN: st.SnapshotLSN,
					Pending:     st.Pending,
					Segments:    st.Segments,
					Fsyncs:      st.Fsyncs,
					FsyncNanos:  st.FsyncNanos,
					LastFsync:   st.LastFsync,
				}
			})
		}
	}
	s := &Server{
		con:         con,
		met:         reg,
		trc:         o.trc,
		log:         o.log,
		maxConns:    o.maxConns,
		readTimeout: o.readTO,
		idleTimeout: o.idleTO,
		wal:         o.wal,
		listeners:   make(map[net.Listener]struct{}),
		conns:       make(map[net.Conn]struct{}),
	}
	if s.wal != nil && o.snapEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapWG.Add(1)
		go func() {
			defer s.snapWG.Done()
			wal.Snapshotter(o.snapEvery, s.snapStop,
				func() error { return s.wal.Snapshot(s.con.SnapshotImage) },
				func(err error) {
					if s.log != nil {
						s.log.Error("wal snapshot failed", "err", err)
					}
				})
		}()
	}
	return s
}

// Metrics returns the server's registry, or nil when built
// WithoutMetrics. Callers use it to mount the HTTP exposition
// (metrics.Handler).
func (s *Server) Metrics() *metrics.Registry { return s.met }

// Tracing returns the server's trace collector, or nil when tracing is
// off. Callers use it to mount the /debug/traces endpoint.
func (s *Server) Tracing() *trace.Collector { return s.trc }

// Serve accepts connections until the listener closes or the server is
// shut down with Close (which returns ErrServerClosed).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.handlers.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		s.handlers.Done()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			return err
		}
		if !s.admit() {
			// Over the connection cap: shed the load with one line and
			// move on — no handler goroutine, no map entry, no buffers.
			conn.Write([]byte("ERR BUSY\n")) //nolint:errcheck // best-effort courtesy reply
			conn.Close()
			if s.log != nil {
				s.log.Debug("connection shed", "remote", conn.RemoteAddr().String())
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.active.Add(-1)
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		if s.log != nil {
			s.log.Debug("connection accepted", "remote", conn.RemoteAddr().String())
		}
		go func() {
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.active.Add(-1)
				s.handlers.Done()
				if s.log != nil {
					s.log.Debug("connection closed", "remote", conn.RemoteAddr().String())
				}
			}()
			// A panicking handler must cost exactly its own connection:
			// recover here (before the cleanup defer above closes it)
			// so the accept loop and every other connection live on.
			defer func() {
				if r := recover(); r != nil && s.log != nil {
					s.log.Error("connection handler panic",
						"remote", conn.RemoteAddr().String(),
						"panic", fmt.Sprint(r))
				}
			}()
			rd := io.Reader(conn)
			if s.readTimeout > 0 || s.idleTimeout > 0 {
				rd = &connReader{srv: s, c: conn, read: s.readTimeout, idle: s.idleTimeout}
			}
			s.Handle(rd, conn)
		}()
	}
}

// admit charges one connection against the cap; false means shed it.
func (s *Server) admit() bool {
	if s.maxConns <= 0 {
		s.active.Add(1) // uncapped: keep the gauge honest anyway
		return true
	}
	for {
		cur := s.active.Load()
		if int(cur) >= s.maxConns {
			return false
		}
		if s.active.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// connReader arms a read deadline before every read from the
// connection: the idle timeout while waiting for a request to start,
// the read timeout once one has begun arriving. Handle flips atStart
// at request boundaries; the zero value of either duration clears the
// deadline for reads it would govern.
type connReader struct {
	srv     *Server
	c       net.Conn
	read    time.Duration
	idle    time.Duration
	atStart bool
}

// aLongTimeAgo is a deadline guaranteed to be expired; used to keep a
// connection's reads failing fast during graceful shutdown.
var aLongTimeAgo = time.Unix(1, 0)

func (cr *connReader) Read(p []byte) (int, error) {
	d := cr.read
	if cr.atStart {
		d = cr.idle
	}
	var dl time.Time // zero clears any previous deadline
	if d > 0 {
		dl = time.Now().Add(d)
	}
	if err := cr.c.SetReadDeadline(dl); err != nil {
		return 0, err
	}
	cr.atStart = false
	// During graceful shutdown the deadline must stay expired: Close
	// nudged every connection with an expired deadline, and re-arming
	// it here would let this read block for a full idle period. The
	// re-check after SetReadDeadline closes the race with the nudge.
	if cr.srv != nil && cr.srv.closing.Load() {
		cr.c.SetReadDeadline(aLongTimeAgo) //nolint:errcheck
	}
	return cr.c.Read(p)
}

// closeWriteGrace bounds how long a draining handler may block writing
// its final replies to a client that has stopped reading.
const closeWriteGrace = 5 * time.Second

// Close shuts the server down gracefully: it closes every listener,
// then *nudges* each active connection by expiring its read deadline —
// the connection stays writable, so every in-flight handler finishes
// the requests it has already read (including a buffered pipelined
// burst) and writes their replies before returning. Only after all
// handlers have drained does Close take a final snapshot, close the
// subsystem, and seal the WAL — which is why a graceful shutdown is a
// clean recovery point needing zero replay. Close is idempotent; Serve
// calls racing it return ErrServerClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	first := !s.closed
	if first {
		s.closed = true
		s.closing.Store(true)
		for l := range s.listeners {
			l.Close()
		}
		now := time.Now()
		for c := range s.conns {
			// Expired read deadline: pending and future reads fail fast,
			// but buffered requests still execute and replies still
			// flush. The write grace keeps a non-reading client from
			// pinning the drain forever.
			c.SetReadDeadline(now)                       //nolint:errcheck
			c.SetWriteDeadline(now.Add(closeWriteGrace)) //nolint:errcheck
		}
	}
	stop := s.snapStop
	s.mu.Unlock()
	if first && stop != nil {
		close(stop)
	}
	s.snapWG.Wait()
	s.handlers.Wait()
	var err error
	if first && s.wal != nil {
		// The drain is complete: this snapshot captures every applied
		// mutation, so the sealed log below needs zero replay on the
		// next boot.
		if serr := s.wal.Snapshot(s.con.SnapshotImage); serr != nil {
			err = serr
		}
	}
	s.con.Close()
	if first && s.wal != nil {
		if serr := s.wal.Seal(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// connState is one connection's reusable I/O state: a line reader
// whose buffer doubles as the oversized-line bound, and the reply
// buffer replies are appended into between flushes. Pooled so a
// connection churn-heavy workload does not re-allocate 64 KiB buffers
// per accept.
type connState struct {
	r   *bufio.Reader
	out []byte
}

var connPool = sync.Pool{
	New: func() any {
		return &connState{
			r:   bufio.NewReaderSize(nil, MaxLineBytes),
			out: make([]byte, 0, 4096),
		}
	},
}

// Handle processes one connection's request stream. Split from Serve
// so tests can drive it over arbitrary pipes. Handle itself is safe
// for concurrent use: any number of connections may execute at once.
// It returns as soon as the writer fails, so a dead client cannot keep
// its read loop spinning through the rest of the stream.
//
// Replies are appended to a pooled per-connection buffer and written
// out once per pipelined burst: the buffer is flushed when the reader
// has no complete requests left buffered (or when flushThreshold of
// replies has accumulated), so a client that pipelines N requests
// costs one write, not N.
func (s *Server) Handle(r io.Reader, w io.Writer) {
	st := connPool.Get().(*connState)
	st.r.Reset(r)
	st.out = st.out[:0]
	defer func() {
		st.r.Reset(nil) // drop the connection reference before pooling
		connPool.Put(st)
	}()
	flush := func() bool {
		if len(st.out) == 0 {
			return true
		}
		_, err := w.Write(st.out)
		st.out = st.out[:0]
		return err == nil
	}
	// exec strips the line terminator (and a final "\r", as
	// text-protocol clients send "\r\n") and appends the reply.
	exec := func(line []byte) {
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		st.out = s.ExecAppend(st.out, string(line))
		st.out = append(st.out, '\n')
	}
	cr, _ := r.(*connReader) // deadline-armed transport, when Serve wired one
	for {
		if cr != nil {
			// The next byte pulled off the wire starts a new request
			// (anything already buffered costs no read at all), so it is
			// governed by the idle timeout, not the per-read one.
			cr.atStart = true
		}
		line, err := st.r.ReadSlice('\n')
		switch {
		case err == nil:
			exec(line)
			if st.r.Buffered() == 0 || len(st.out) >= flushThreshold {
				if !flush() {
					return // write side is gone; stop consuming requests
				}
			}
		case errors.Is(err, bufio.ErrBufferFull):
			// The stream is unrecoverable once a line overflows the
			// buffer; report and end the connection like the previous
			// Scanner-based loop did.
			st.out = append(st.out, "ERR line too long\n"...)
			flush()
			return
		case errors.Is(err, io.EOF):
			if len(line) > 0 {
				exec(line) // final unterminated request still counts
			}
			flush()
			return
		default:
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if s.closing.Load() {
					// Graceful-shutdown nudge, not a client timeout: every
					// request read before the nudge has its reply buffered
					// above — flush them and hang up without a spurious
					// error line.
					flush()
					return
				}
				// Deadline expiry (WithTimeouts): a partially received
				// line is untrusted input cut off mid-flight — never
				// execute it, just report and hang up.
				st.out = append(st.out, "ERR timeout\n"...)
				flush()
				return
			}
			if len(line) > 0 {
				exec(line)
			}
			st.out = append(st.out, "ERR read: "...)
			st.out = append(st.out, err.Error()...)
			st.out = append(st.out, '\n')
			flush()
			return
		}
	}
}

// Exec runs one request line and returns the single-line response —
// the string-returning convenience form of ExecAppend, kept for
// embedders and tests.
func (s *Server) Exec(line string) string {
	return string(s.ExecAppend(nil, line))
}

// ExecAppend runs one request line and appends the single-line
// response (without the trailing newline) to dst, returning the
// extended buffer. It is the protocol engine behind Handle, exported
// so embedders and benchmarks can drive the server without a socket.
// ExecAppend is safe for concurrent use; requests to distinct engines
// run in parallel. A SEARCH request on an uninstrumented, untraced
// server allocates nothing: fields are substrings of the line, keys
// parse in place, and the reply is appended into dst.
//
// With tracing attached (WithTracing), every call begins and ends its
// own trace — each command of a pipelined burst gets its own
// start/end stamps even though Handle flushes the burst's replies with
// one write, so slow burst members are individually attributable.
func (s *Server) ExecAppend(dst []byte, line string) []byte {
	tr := s.trc.Begin()
	if tr == nil {
		return s.execAppend(dst, line, nil)
	}
	mark := len(dst)
	dst = s.execAppend(dst, line, tr)
	tr.SetResult(resultToken(dst[mark:]))
	// On slowlog admission the trace is retained (immutable from here
	// on) and safe to read for the log record; otherwise End has
	// already recycled it and it must not be touched again.
	if slow := s.trc.End(tr); slow && s.log != nil {
		s.log.Warn("slow request",
			"id", tr.ID,
			"cmd", tr.Cmd,
			"engine", tr.Engine,
			"key", tr.Key,
			"us", tr.Dur.Microseconds(),
			"rows", tr.Rows,
			"result", tr.Result,
		)
	}
	return dst
}

// execAppend is the protocol engine proper; tr is nil when tracing is
// off for this request.
func (s *Server) execAppend(dst []byte, line string, tr *trace.Trace) []byte {
	if s.panicLine != "" && line == s.panicLine {
		panic("injected handler panic: " + line)
	}
	fs := FieldScanner{s: line}
	cmd, ok := fs.next()
	if !ok {
		return append(dst, "ERR empty request"...)
	}
	if cmd[0] == '*' {
		// Optional wire-tracing annotation: `*TID <hex-id>/<span-id>`
		// prefixed to any command. It joins this request's trace to the
		// caller's trace id and is otherwise invisible — the annotation
		// is stripped and the reply is byte-identical to the bare
		// command (tracing on or off). Cost when absent: this one
		// first-byte branch.
		if !strings.EqualFold(cmd, "*TID") {
			return append(append(dst, "ERR unknown annotation "...), cmd...)
		}
		arg, okArg := fs.next()
		tid, span, okID := parseWireID(arg)
		if !okArg || !okID {
			return append(dst, "ERR usage: *TID <hex-id>/<span-id> <command ...>"...)
		}
		tr.SetWire(tid, span)
		if cmd, ok = fs.next(); !ok {
			return append(dst, "ERR empty request"...)
		}
	}
	cmd = strings.ToUpper(cmd)
	tr.Request(cmd, "", "") // branches with an engine/key refine this
	switch cmd {
	case "ENGINES":
		dst = append(dst, "ENGINES "...)
		for i, name := range s.con.Engines() {
			if i > 0 {
				dst = append(dst, ' ')
			}
			dst = append(dst, name...)
		}
		return dst
	case "INSERT":
		eng, ok1 := fs.next()
		keyS, ok2 := fs.next()
		dataS, ok3 := fs.next()
		if _, extra := fs.next(); !ok1 || !ok2 || !ok3 || extra {
			return append(dst, "ERR usage: INSERT <engine> <key> <data>"...)
		}
		tr.Request(cmd, eng, keyS)
		key, err := parseVec(keyS)
		if err != nil {
			return appendErr(dst, err)
		}
		data, err := parseVec(dataS)
		if err != nil {
			return appendErr(dst, err)
		}
		rec := match.Record{Key: bitutil.Exact(key), Data: data}
		if err := s.con.InsertTraced(eng, rec, tr); err != nil {
			return appendErr(dst, err)
		}
		return append(dst, "OK"...)
	case "SEARCH":
		eng, ok1 := fs.next()
		keyS, ok2 := fs.next()
		maskS, hasMask := fs.next()
		if _, extra := fs.next(); !ok1 || !ok2 || extra {
			return append(dst, "ERR usage: SEARCH <engine> <key> [mask]"...)
		}
		tr.Request(cmd, eng, keyS)
		key, err := parseVec(keyS)
		if err != nil {
			return appendErr(dst, err)
		}
		search := bitutil.Exact(key)
		if hasMask {
			mask, err := parseVec(maskS)
			if err != nil {
				return appendErr(dst, err)
			}
			search = bitutil.NewTernary(key, mask)
		}
		if tr.Enabled() {
			tr.Span(trace.KindParse, tr.Begin)
		}
		sr, err := s.con.SearchTraced(eng, search, tr)
		if err != nil {
			return appendErr(dst, err)
		}
		var encStart time.Time
		if tr.Enabled() {
			encStart = time.Now()
		}
		if !sr.Found {
			if sr.Erred {
				// The lookup skipped a quarantined or unreadable row:
				// the key may well be stored there, so this is the
				// explicit miss-with-error, not a clean miss.
				dst = append(dst, "MISS!"...)
			} else {
				dst = append(dst, "MISS"...)
			}
		} else {
			dst = append(dst, "HIT "...)
			dst = appendHex(dst, sr.Record.Data.Hi)
			dst = append(dst, ':')
			dst = appendHex016(dst, sr.Record.Data.Lo)
		}
		if tr.Enabled() {
			tr.Span(trace.KindEncode, encStart)
		}
		return dst
	case "MSEARCH":
		// Arity is judged over the whole argument list before any key is
		// parsed, so "MSEARCH db 12zz extra" is a usage error, not bad hex.
		n := fs.countFields()
		if n == 0 || n%2 != 0 {
			return append(dst, "ERR usage: MSEARCH <engine> <key> [<engine> <key> ...]"...)
		}
		reqs := make([]subsystem.PortKey, n/2)
		for i := range reqs {
			port, _ := fs.next()
			keyS, _ := fs.next()
			key, err := parseVec(keyS)
			if err != nil {
				return appendErr(dst, err)
			}
			reqs[i] = subsystem.PortKey{Port: port, Key: bitutil.Exact(key)}
		}
		dst = append(dst, "MRESULTS"...)
		for _, r := range s.con.MSearch(reqs) {
			dst = append(dst, ' ')
			switch {
			case errors.Is(r.Err, subsystem.ErrEngineUnavailable):
				dst = append(dst, "ERR:unavailable"...)
			case r.Err != nil:
				dst = append(dst, "ERR:no-engine"...)
			case !r.Result.Found && r.Result.Erred:
				dst = append(dst, "MISS!"...)
			case !r.Result.Found:
				dst = append(dst, "MISS"...)
			default:
				dst = append(dst, "HIT:"...)
				dst = appendHex(dst, r.Result.Record.Data.Hi)
				dst = append(dst, ':')
				dst = appendHex016(dst, r.Result.Record.Data.Lo)
			}
		}
		return dst
	case "DELETE":
		eng, ok1 := fs.next()
		keyS, ok2 := fs.next()
		if _, extra := fs.next(); !ok1 || !ok2 || extra {
			return append(dst, "ERR usage: DELETE <engine> <key>"...)
		}
		tr.Request(cmd, eng, keyS)
		key, err := parseVec(keyS)
		if err != nil {
			return appendErr(dst, err)
		}
		if err := s.con.DeleteTraced(eng, bitutil.Exact(key), tr); err != nil {
			return appendErr(dst, err)
		}
		return append(dst, "OK"...)
	case "CREATE":
		return s.execCreateAppend(dst, &fs)
	case "DROP":
		return s.execDropAppend(dst, &fs)
	case "MINSERT":
		return s.execMInsertAppend(dst, &fs, tr)
	case "MDELETE":
		return s.execMDeleteAppend(dst, &fs, tr)
	case "TINSERT":
		return s.execTInsertAppend(dst, &fs, tr)
	case "TSEARCH":
		return s.execTSearchAppend(dst, &fs, tr)
	case "METRICS":
		return s.execMetricsAppend(dst, &fs)
	case "SLOWLOG":
		return s.execSlowlogAppend(dst, &fs)
	case "EXPLAIN":
		return s.execExplainAppend(dst, &fs)
	case "TRACE":
		return s.execTraceAppend(dst, &fs)
	case "HEALTH":
		return s.execHealthAppend(dst, &fs)
	case "WAL":
		return s.execWALAppend(dst, &fs)
	case "STATS":
		eng, ok1 := fs.next()
		if _, extra := fs.next(); !ok1 || extra {
			return append(dst, "ERR usage: STATS <engine>"...)
		}
		info, err := s.con.Info(eng)
		if err != nil {
			return appendErr(dst, err)
		}
		dst = append(dst, "STATS n="...)
		dst = appendInt(dst, int64(info.Count))
		dst = append(dst, " alpha="...)
		dst = appendFixed(dst, info.LoadFactor, 3)
		dst = append(dst, " amal="...)
		dst = appendFixed(dst, info.Stats.AMAL(), 3)
		dst = append(dst, " hits="...)
		dst = appendUint(dst, info.Stats.Hits)
		dst = append(dst, " misses="...)
		return appendUint(dst, info.Stats.Misses)
	default:
		dst = append(dst, "ERR unknown command "...)
		return append(dst, cmd...)
	}
}

// execMetricsAppend answers the METRICS command against the registry.
// The no-argument and per-engine forms print only counters and
// core-state gauges — deterministic for a scripted session, which is
// what lets the golden-session test cover them byte-exactly. The
// LATENCY form adds wall-clock quantiles and is therefore excluded
// from golden coverage.
func (s *Server) execMetricsAppend(dst []byte, fs *FieldScanner) []byte {
	const usage = "ERR usage: METRICS [engine [LATENCY <op>]]"
	var args [3]string
	n := 0
	for {
		f, ok := fs.next()
		if !ok {
			break
		}
		if n == len(args) {
			n++ // too many args: fall to the usage default below
			break
		}
		args[n] = f
		n++
	}
	if s.met == nil {
		return append(dst, "ERR metrics disabled"...)
	}
	switch n {
	case 0:
		ops, errs := s.met.Totals()
		dst = append(dst, "METRICS engines="...)
		dst = appendInt(dst, int64(len(s.met.Engines())))
		dst = append(dst, " ops="...)
		dst = appendUint(dst, ops)
		dst = append(dst, " errors="...)
		dst = appendUint(dst, errs)
		dst = append(dst, " unknown="...)
		return appendUint(dst, s.met.Unknown())
	case 1:
		em := s.met.Engine(args[0])
		if em == nil {
			dst = append(dst, "ERR metrics: no engine "...)
			return strconv.AppendQuote(dst, args[0])
		}
		dst = append(dst, "METRICS engine="...)
		dst = append(dst, em.Name()...)
		for op := metrics.Op(0); op < metrics.NumOps; op++ {
			dst = append(dst, ' ')
			dst = append(dst, op.String()...)
			dst = append(dst, '=')
			dst = appendUint(dst, em.Count(op))
			dst = append(dst, ' ')
			dst = append(dst, op.String()...)
			dst = append(dst, "_err="...)
			dst = appendUint(dst, em.Errors(op))
		}
		if g, ok := em.SampleGauges(); ok {
			dst = append(dst, " n="...)
			dst = appendInt(dst, int64(g.Records))
			dst = append(dst, " load="...)
			dst = appendFixed(dst, g.LoadFactor, 3)
			dst = append(dst, " amal="...)
			dst = appendFixed(dst, g.AMAL, 3)
			dst = append(dst, " hits="...)
			dst = appendUint(dst, g.Hits)
			dst = append(dst, " misses="...)
			dst = appendUint(dst, g.Misses)
			dst = append(dst, " overflow="...)
			dst = appendInt(dst, int64(g.Overflow))
			dst = append(dst, " spilled="...)
			dst = appendInt(dst, int64(g.Spilled))
		}
		return dst
	case 3:
		if !strings.EqualFold(args[1], "LATENCY") && !strings.EqualFold(args[1], "HIST") {
			return append(dst, usage...)
		}
		em := s.met.Engine(args[0])
		if em == nil {
			dst = append(dst, "ERR metrics: no engine "...)
			return strconv.AppendQuote(dst, args[0])
		}
		op, err := metrics.ParseOp(args[2])
		if err != nil {
			dst = append(dst, "ERR metrics: unknown op "...)
			return append(dst, args[2]...)
		}
		if strings.EqualFold(args[1], "HIST") {
			// Raw power-of-two bucket counts, the machine-readable form
			// the cluster router scatters and merges bucket-wise into a
			// fleet histogram. LATENCY below is the human quantile view.
			h := em.Latency(op).Snapshot()
			dst = append(dst, "METRICS engine="...)
			dst = append(dst, em.Name()...)
			dst = append(dst, " op="...)
			dst = append(dst, op.String()...)
			dst = append(dst, " n="...)
			dst = appendUint(dst, h.N)
			dst = append(dst, " err="...)
			dst = appendUint(dst, em.Errors(op))
			dst = append(dst, " sum_ns="...)
			dst = appendInt(dst, h.SumNs)
			dst = append(dst, " buckets="...)
			for i, c := range h.Counts {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = appendUint(dst, c)
			}
			return dst
		}
		h := em.Latency(op).Snapshot()
		qs := h.Quantiles(0.5, 0.9, 0.99, 1)
		dst = append(dst, "METRICS engine="...)
		dst = append(dst, em.Name()...)
		dst = append(dst, " op="...)
		dst = append(dst, op.String()...)
		dst = append(dst, " n="...)
		dst = appendUint(dst, h.N)
		dst = append(dst, " err="...)
		dst = appendUint(dst, em.Errors(op))
		dst = append(dst, " mean_us="...)
		dst = appendFixed(dst, h.MeanNs()/1e3, 2)
		for i, label := range [...]string{" p50_us=", " p90_us=", " p99_us=", " max_us="} {
			dst = append(dst, label...)
			dst = appendFixed(dst, float64(qs[i])/1e3, 2)
		}
		return dst
	default:
		return append(dst, usage...)
	}
}

// parseVec parses "hi:lo" or plain hex into a Vec128. Each part must
// be 1-16 hex digits with nothing else — trailing garbage ("12zz"),
// signs, and "0x" prefixes are all rejected.
func parseVec(s string) (bitutil.Vec128, error) {
	bad := func() (bitutil.Vec128, error) {
		return bitutil.Vec128{}, fmt.Errorf("bad hex %q", s)
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		hi, err := parseHex64(s[:i])
		if err != nil {
			return bad()
		}
		lo, err := parseHex64(s[i+1:])
		if err != nil {
			return bad()
		}
		return bitutil.FromParts(lo, hi), nil
	}
	lo, err := parseHex64(s)
	if err != nil {
		return bad()
	}
	return bitutil.FromUint64(lo), nil
}

// parseHex64 parses a bare hex field. strconv.ParseUint rejects what
// fmt.Sscanf "%x" silently tolerated: empty fields, signs, "0x"
// prefixes, and valid-prefix-plus-garbage like "12zz".
func parseHex64(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}
