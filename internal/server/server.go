// Package server exposes a CA-RAM subsystem over a TCP line protocol —
// the shape a CA-RAM accelerator takes behind a lookup service (the
// paper's request/result ports, §3.2, stretched over a socket).
//
// Protocol (one request per line, space-separated, keys in hex):
//
//	ENGINES
//	INSERT <engine> <key> <data>
//	SEARCH <engine> <key> [mask]
//	DELETE <engine> <key>
//	STATS  <engine>
//
// Responses: "OK", "HIT <data>", "MISS", "STATS n=.. alpha=.. amal=..",
// "ENGINES a b c", or "ERR <reason>".
package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/subsystem"
)

// Server serves a subsystem. Engines are not safe for concurrent use
// (a slice has one row port), so a mutex serializes operations —
// connections multiplex onto the single hardware resource exactly as
// the input controller of Figure 5 would.
type Server struct {
	mu  sync.Mutex
	sub *subsystem.Subsystem
}

// New wraps a subsystem.
func New(sub *subsystem.Subsystem) *Server { return &Server{sub: sub} }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			s.Handle(conn, conn)
		}()
	}
}

// Handle processes one connection's request stream. Split from Serve
// so tests can drive it over arbitrary pipes.
func (s *Server) Handle(r io.Reader, w io.Writer) {
	sc := bufio.NewScanner(r)
	out := bufio.NewWriter(w)
	defer out.Flush()
	for sc.Scan() {
		resp := s.exec(sc.Text())
		fmt.Fprintln(out, resp)
		out.Flush()
	}
}

// exec runs one request line.
func (s *Server) exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	cmd := strings.ToUpper(fields[0])
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cmd {
	case "ENGINES":
		return "ENGINES " + strings.Join(s.sub.Engines(), " ")
	case "INSERT":
		if len(fields) != 4 {
			return "ERR usage: INSERT <engine> <key> <data>"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		data, err := parseVec(fields[3])
		if err != nil {
			return "ERR " + err.Error()
		}
		rec := match.Record{Key: bitutil.Exact(key), Data: data}
		if err := s.sub.Insert(fields[1], rec); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "SEARCH":
		if len(fields) != 3 && len(fields) != 4 {
			return "ERR usage: SEARCH <engine> <key> [mask]"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		search := bitutil.Exact(key)
		if len(fields) == 4 {
			mask, err := parseVec(fields[3])
			if err != nil {
				return "ERR " + err.Error()
			}
			search = bitutil.NewTernary(key, mask)
		}
		eng, ok := s.sub.Engine(fields[1])
		if !ok {
			return "ERR no engine " + fields[1]
		}
		sr := eng.Search(search)
		if !sr.Found {
			return "MISS"
		}
		return fmt.Sprintf("HIT %x:%016x", sr.Record.Data.Hi, sr.Record.Data.Lo)
	case "DELETE":
		if len(fields) != 3 {
			return "ERR usage: DELETE <engine> <key>"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		eng, ok := s.sub.Engine(fields[1])
		if !ok {
			return "ERR no engine " + fields[1]
		}
		if err := eng.Main.Delete(bitutil.Exact(key)); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "STATS":
		if len(fields) != 2 {
			return "ERR usage: STATS <engine>"
		}
		eng, ok := s.sub.Engine(fields[1])
		if !ok {
			return "ERR no engine " + fields[1]
		}
		st := eng.Main.Stats()
		return fmt.Sprintf("STATS n=%d alpha=%.3f amal=%.3f hits=%d misses=%d",
			eng.Main.Count(), eng.Main.LoadFactor(), st.AMAL(), st.Hits, st.Misses)
	default:
		return "ERR unknown command " + cmd
	}
}

// parseVec parses "hi:lo" or plain hex into a Vec128.
func parseVec(s string) (bitutil.Vec128, error) {
	var hi, lo uint64
	if i := strings.IndexByte(s, ':'); i >= 0 {
		if _, err := fmt.Sscanf(s[:i], "%x", &hi); err != nil {
			return bitutil.Vec128{}, fmt.Errorf("bad hex %q", s)
		}
		if _, err := fmt.Sscanf(s[i+1:], "%x", &lo); err != nil {
			return bitutil.Vec128{}, fmt.Errorf("bad hex %q", s)
		}
		return bitutil.FromParts(lo, hi), nil
	}
	if _, err := fmt.Sscanf(s, "%x", &lo); err != nil {
		return bitutil.Vec128{}, fmt.Errorf("bad hex %q", s)
	}
	return bitutil.FromUint64(lo), nil
}
