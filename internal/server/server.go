// Package server exposes a CA-RAM subsystem over a TCP line protocol —
// the shape a CA-RAM accelerator takes behind a lookup service (the
// paper's request/result ports, §3.2, stretched over a socket).
//
// Protocol (one request per line, space-separated, keys in hex, either
// plain "<lo>" or wide "<hi>:<lo>"):
//
//	ENGINES
//	INSERT  <engine> <key> <data>
//	SEARCH  <engine> <key> [mask]
//	MSEARCH <engine> <key> [<engine> <key> ...]
//	DELETE  <engine> <key>
//	STATS   <engine>
//	METRICS [engine [LATENCY <op>]]
//
// Responses: "OK", "HIT <data>", "MISS", "STATS n=.. alpha=.. amal=..",
// "ENGINES a b c", "MRESULTS r1 r2 ...", "METRICS ..." or
// "ERR <reason>". Each MRESULTS slot is "HIT:<hi>:<lo>", "MISS", or
// "ERR:no-engine", in request order.
//
// METRICS reads the observability layer (internal/metrics): with no
// argument it reports registry totals; with an engine it reports that
// engine's per-op counters and live gauges (all deterministic for a
// scripted session); with LATENCY <op> it adds the op's latency
// quantiles in microseconds (wall-clock, inherently nondeterministic).
//
// Request lines are capped at MaxLineBytes; an oversized line draws
// "ERR line too long" and ends the connection.
//
// Concurrency: the server runs on a per-engine locking model
// (subsystem.Concurrent). Requests that target distinct engines
// execute in parallel — N connections hammering N engines proceed
// independently, the §3.2 picture of multiple lookups simultaneously
// in progress in different slices. INSERT, SEARCH and DELETE on the
// same engine serialize (a slice has one row port, and even lookups
// update access statistics); STATS takes only a read lock and may
// overlap with other STATS of the same engine. MSEARCH fans its batch
// across the referenced engines and collects results in request order.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/metrics"
	"caram/internal/subsystem"
)

// MaxLineBytes bounds one request line. Longer lines are rejected with
// "ERR line too long".
const MaxLineBytes = 64 * 1024

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Server serves a subsystem through its per-engine concurrency layer.
type Server struct {
	con *subsystem.Concurrent
	met *metrics.Registry // nil when built WithoutMetrics

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	handlers  sync.WaitGroup // accept loops + connection handlers
}

// Option configures New.
type Option func(*options)

type options struct {
	metrics bool
}

// WithoutMetrics builds the server without the observability layer:
// no counters, no latency measurement, METRICS answers "ERR metrics
// disabled". The instrumented path is the default; this exists for the
// overhead benchmark and for embedders that bring their own telemetry.
func WithoutMetrics() Option {
	return func(o *options) { o.metrics = false }
}

// New wraps a subsystem whose engine registration is complete. By
// default the per-engine metrics layer is attached (see
// internal/metrics); the registry is reachable via Metrics for HTTP
// export.
func New(sub *subsystem.Subsystem, opts ...Option) *Server {
	o := options{metrics: true}
	for _, opt := range opts {
		opt(&o)
	}
	con := subsystem.NewConcurrent(sub)
	var reg *metrics.Registry
	if o.metrics {
		reg = metrics.NewRegistry(con.Engines())
		con.Instrument(reg)
	}
	return &Server{
		con:       con,
		met:       reg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Metrics returns the server's registry, or nil when built
// WithoutMetrics. Callers use it to mount the HTTP exposition
// (metrics.Handler).
func (s *Server) Metrics() *metrics.Registry { return s.met }

// Serve accepts connections until the listener closes or the server is
// shut down with Close (which returns ErrServerClosed).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.handlers.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		s.handlers.Done()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.handlers.Done()
			}()
			s.Handle(conn, conn)
		}()
	}
}

// Close shuts the server down: it closes every listener and active
// connection, then blocks until all accept loops and in-flight handlers
// have drained. Close is idempotent; Serve calls racing it return
// ErrServerClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for l := range s.listeners {
			l.Close()
		}
		for c := range s.conns {
			c.Close()
		}
	}
	s.mu.Unlock()
	s.handlers.Wait()
	return nil
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Handle processes one connection's request stream. Split from Serve
// so tests can drive it over arbitrary pipes. Handle itself is safe
// for concurrent use: any number of connections may execute at once.
// It returns as soon as the writer fails, so a dead client cannot keep
// its read loop spinning through the rest of the stream.
func (s *Server) Handle(r io.Reader, w io.Writer) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	out := bufio.NewWriter(w)
	defer out.Flush()
	for sc.Scan() {
		fmt.Fprintln(out, s.Exec(sc.Text()))
		if out.Flush() != nil {
			return // write side is gone; stop consuming requests
		}
	}
	switch err := sc.Err(); {
	case err == nil: // clean EOF
	case errors.Is(err, bufio.ErrTooLong):
		fmt.Fprintln(out, "ERR line too long")
	default:
		fmt.Fprintln(out, "ERR read: "+err.Error())
	}
}

// Exec runs one request line and returns the single-line response. It
// is the protocol engine behind Handle, exported so embedders and
// benchmarks can drive the server without a socket. Exec is safe for
// concurrent use; requests to distinct engines run in parallel.
func (s *Server) Exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	switch cmd := strings.ToUpper(fields[0]); cmd {
	case "ENGINES":
		return "ENGINES " + strings.Join(s.con.Engines(), " ")
	case "INSERT":
		if len(fields) != 4 {
			return "ERR usage: INSERT <engine> <key> <data>"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		data, err := parseVec(fields[3])
		if err != nil {
			return "ERR " + err.Error()
		}
		rec := match.Record{Key: bitutil.Exact(key), Data: data}
		if err := s.con.Insert(fields[1], rec); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "SEARCH":
		if len(fields) != 3 && len(fields) != 4 {
			return "ERR usage: SEARCH <engine> <key> [mask]"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		search := bitutil.Exact(key)
		if len(fields) == 4 {
			mask, err := parseVec(fields[3])
			if err != nil {
				return "ERR " + err.Error()
			}
			search = bitutil.NewTernary(key, mask)
		}
		sr, err := s.con.Search(fields[1], search)
		if err != nil {
			return "ERR " + err.Error()
		}
		if !sr.Found {
			return "MISS"
		}
		return fmt.Sprintf("HIT %x:%016x", sr.Record.Data.Hi, sr.Record.Data.Lo)
	case "MSEARCH":
		args := fields[1:]
		if len(args) == 0 || len(args)%2 != 0 {
			return "ERR usage: MSEARCH <engine> <key> [<engine> <key> ...]"
		}
		reqs := make([]subsystem.PortKey, len(args)/2)
		for i := range reqs {
			key, err := parseVec(args[2*i+1])
			if err != nil {
				return "ERR " + err.Error()
			}
			reqs[i] = subsystem.PortKey{Port: args[2*i], Key: bitutil.Exact(key)}
		}
		var sb strings.Builder
		sb.WriteString("MRESULTS")
		for _, r := range s.con.MSearch(reqs) {
			sb.WriteByte(' ')
			switch {
			case r.Err != nil:
				sb.WriteString("ERR:no-engine")
			case !r.Result.Found:
				sb.WriteString("MISS")
			default:
				fmt.Fprintf(&sb, "HIT:%x:%016x", r.Result.Record.Data.Hi, r.Result.Record.Data.Lo)
			}
		}
		return sb.String()
	case "DELETE":
		if len(fields) != 3 {
			return "ERR usage: DELETE <engine> <key>"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		if err := s.con.Delete(fields[1], bitutil.Exact(key)); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "METRICS":
		return s.execMetrics(fields[1:])
	case "STATS":
		if len(fields) != 2 {
			return "ERR usage: STATS <engine>"
		}
		info, err := s.con.Info(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("STATS n=%d alpha=%.3f amal=%.3f hits=%d misses=%d",
			info.Count, info.LoadFactor, info.Stats.AMAL(), info.Stats.Hits, info.Stats.Misses)
	default:
		return "ERR unknown command " + cmd
	}
}

// execMetrics answers the METRICS command against the registry. The
// no-argument and per-engine forms print only counters and core-state
// gauges — deterministic for a scripted session, which is what lets the
// golden-session test cover them byte-exactly. The LATENCY form adds
// wall-clock quantiles and is therefore excluded from golden coverage.
func (s *Server) execMetrics(args []string) string {
	if s.met == nil {
		return "ERR metrics disabled"
	}
	switch len(args) {
	case 0:
		ops, errs := s.met.Totals()
		return fmt.Sprintf("METRICS engines=%d ops=%d errors=%d unknown=%d",
			len(s.met.Engines()), ops, errs, s.met.Unknown())
	case 1:
		em := s.met.Engine(args[0])
		if em == nil {
			return fmt.Sprintf("ERR metrics: no engine %q", args[0])
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "METRICS engine=%s", em.Name())
		for op := metrics.Op(0); op < metrics.NumOps; op++ {
			fmt.Fprintf(&sb, " %s=%d %s_err=%d", op, em.Count(op), op, em.Errors(op))
		}
		if g, ok := em.SampleGauges(); ok {
			fmt.Fprintf(&sb, " n=%d load=%.3f amal=%.3f hits=%d misses=%d overflow=%d spilled=%d",
				g.Records, g.LoadFactor, g.AMAL, g.Hits, g.Misses, g.Overflow, g.Spilled)
		}
		return sb.String()
	case 3:
		if !strings.EqualFold(args[1], "LATENCY") {
			return "ERR usage: METRICS [engine [LATENCY <op>]]"
		}
		em := s.met.Engine(args[0])
		if em == nil {
			return fmt.Sprintf("ERR metrics: no engine %q", args[0])
		}
		op, err := metrics.ParseOp(args[2])
		if err != nil {
			return "ERR metrics: unknown op " + args[2]
		}
		h := em.Latency(op).Snapshot()
		qs := h.Quantiles(0.5, 0.9, 0.99, 1)
		us := func(ns int64) float64 { return float64(ns) / 1e3 }
		return fmt.Sprintf(
			"METRICS engine=%s op=%s n=%d err=%d mean_us=%.2f p50_us=%.2f p90_us=%.2f p99_us=%.2f max_us=%.2f",
			em.Name(), op, h.N, em.Errors(op), h.MeanNs()/1e3,
			us(qs[0]), us(qs[1]), us(qs[2]), us(qs[3]))
	default:
		return "ERR usage: METRICS [engine [LATENCY <op>]]"
	}
}

// parseVec parses "hi:lo" or plain hex into a Vec128. Each part must
// be 1-16 hex digits with nothing else — trailing garbage ("12zz"),
// signs, and "0x" prefixes are all rejected.
func parseVec(s string) (bitutil.Vec128, error) {
	bad := func() (bitutil.Vec128, error) {
		return bitutil.Vec128{}, fmt.Errorf("bad hex %q", s)
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		hi, err := parseHex64(s[:i])
		if err != nil {
			return bad()
		}
		lo, err := parseHex64(s[i+1:])
		if err != nil {
			return bad()
		}
		return bitutil.FromParts(lo, hi), nil
	}
	lo, err := parseHex64(s)
	if err != nil {
		return bad()
	}
	return bitutil.FromUint64(lo), nil
}

// parseHex64 parses a bare hex field. strconv.ParseUint rejects what
// fmt.Sscanf "%x" silently tolerated: empty fields, signs, "0x"
// prefixes, and valid-prefix-plus-garbage like "12zz".
func parseHex64(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}
