// Package server exposes a CA-RAM subsystem over a TCP line protocol —
// the shape a CA-RAM accelerator takes behind a lookup service (the
// paper's request/result ports, §3.2, stretched over a socket).
//
// Protocol (one request per line, space-separated, keys in hex, either
// plain "<lo>" or wide "<hi>:<lo>"):
//
//	ENGINES
//	INSERT  <engine> <key> <data>
//	SEARCH  <engine> <key> [mask]
//	MSEARCH <engine> <key> [<engine> <key> ...]
//	DELETE  <engine> <key>
//	STATS   <engine>
//
// Responses: "OK", "HIT <data>", "MISS", "STATS n=.. alpha=.. amal=..",
// "ENGINES a b c", "MRESULTS r1 r2 ..." or "ERR <reason>". Each
// MRESULTS slot is "HIT:<hi>:<lo>", "MISS", or "ERR:no-engine", in
// request order.
//
// Request lines are capped at MaxLineBytes; an oversized line draws
// "ERR line too long" and ends the connection.
//
// Concurrency: the server runs on a per-engine locking model
// (subsystem.Concurrent). Requests that target distinct engines
// execute in parallel — N connections hammering N engines proceed
// independently, the §3.2 picture of multiple lookups simultaneously
// in progress in different slices. INSERT, SEARCH and DELETE on the
// same engine serialize (a slice has one row port, and even lookups
// update access statistics); STATS takes only a read lock and may
// overlap with other STATS of the same engine. MSEARCH fans its batch
// across the referenced engines and collects results in request order.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/subsystem"
)

// MaxLineBytes bounds one request line. Longer lines are rejected with
// "ERR line too long".
const MaxLineBytes = 64 * 1024

// Server serves a subsystem through its per-engine concurrency layer.
type Server struct {
	con *subsystem.Concurrent
}

// New wraps a subsystem whose engine registration is complete.
func New(sub *subsystem.Subsystem) *Server {
	return &Server{con: subsystem.NewConcurrent(sub)}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			s.Handle(conn, conn)
		}()
	}
}

// Handle processes one connection's request stream. Split from Serve
// so tests can drive it over arbitrary pipes. Handle itself is safe
// for concurrent use: any number of connections may execute at once.
func (s *Server) Handle(r io.Reader, w io.Writer) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	out := bufio.NewWriter(w)
	defer out.Flush()
	for sc.Scan() {
		fmt.Fprintln(out, s.Exec(sc.Text()))
		out.Flush()
	}
	switch err := sc.Err(); {
	case err == nil: // clean EOF
	case errors.Is(err, bufio.ErrTooLong):
		fmt.Fprintln(out, "ERR line too long")
	default:
		fmt.Fprintln(out, "ERR read: "+err.Error())
	}
}

// Exec runs one request line and returns the single-line response. It
// is the protocol engine behind Handle, exported so embedders and
// benchmarks can drive the server without a socket. Exec is safe for
// concurrent use; requests to distinct engines run in parallel.
func (s *Server) Exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	switch cmd := strings.ToUpper(fields[0]); cmd {
	case "ENGINES":
		return "ENGINES " + strings.Join(s.con.Engines(), " ")
	case "INSERT":
		if len(fields) != 4 {
			return "ERR usage: INSERT <engine> <key> <data>"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		data, err := parseVec(fields[3])
		if err != nil {
			return "ERR " + err.Error()
		}
		rec := match.Record{Key: bitutil.Exact(key), Data: data}
		if err := s.con.Insert(fields[1], rec); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "SEARCH":
		if len(fields) != 3 && len(fields) != 4 {
			return "ERR usage: SEARCH <engine> <key> [mask]"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		search := bitutil.Exact(key)
		if len(fields) == 4 {
			mask, err := parseVec(fields[3])
			if err != nil {
				return "ERR " + err.Error()
			}
			search = bitutil.NewTernary(key, mask)
		}
		sr, err := s.con.Search(fields[1], search)
		if err != nil {
			return "ERR " + err.Error()
		}
		if !sr.Found {
			return "MISS"
		}
		return fmt.Sprintf("HIT %x:%016x", sr.Record.Data.Hi, sr.Record.Data.Lo)
	case "MSEARCH":
		args := fields[1:]
		if len(args) == 0 || len(args)%2 != 0 {
			return "ERR usage: MSEARCH <engine> <key> [<engine> <key> ...]"
		}
		reqs := make([]subsystem.PortKey, len(args)/2)
		for i := range reqs {
			key, err := parseVec(args[2*i+1])
			if err != nil {
				return "ERR " + err.Error()
			}
			reqs[i] = subsystem.PortKey{Port: args[2*i], Key: bitutil.Exact(key)}
		}
		var sb strings.Builder
		sb.WriteString("MRESULTS")
		for _, r := range s.con.MSearch(reqs) {
			sb.WriteByte(' ')
			switch {
			case r.Err != nil:
				sb.WriteString("ERR:no-engine")
			case !r.Result.Found:
				sb.WriteString("MISS")
			default:
				fmt.Fprintf(&sb, "HIT:%x:%016x", r.Result.Record.Data.Hi, r.Result.Record.Data.Lo)
			}
		}
		return sb.String()
	case "DELETE":
		if len(fields) != 3 {
			return "ERR usage: DELETE <engine> <key>"
		}
		key, err := parseVec(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		if err := s.con.Delete(fields[1], bitutil.Exact(key)); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "STATS":
		if len(fields) != 2 {
			return "ERR usage: STATS <engine>"
		}
		info, err := s.con.Info(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("STATS n=%d alpha=%.3f amal=%.3f hits=%d misses=%d",
			info.Count, info.LoadFactor, info.Stats.AMAL(), info.Stats.Hits, info.Stats.Misses)
	default:
		return "ERR unknown command " + cmd
	}
}

// parseVec parses "hi:lo" or plain hex into a Vec128. Each part must
// be 1-16 hex digits with nothing else — trailing garbage ("12zz"),
// signs, and "0x" prefixes are all rejected.
func parseVec(s string) (bitutil.Vec128, error) {
	bad := func() (bitutil.Vec128, error) {
		return bitutil.Vec128{}, fmt.Errorf("bad hex %q", s)
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		hi, err := parseHex64(s[:i])
		if err != nil {
			return bad()
		}
		lo, err := parseHex64(s[i+1:])
		if err != nil {
			return bad()
		}
		return bitutil.FromParts(lo, hi), nil
	}
	lo, err := parseHex64(s)
	if err != nil {
		return bad()
	}
	return bitutil.FromUint64(lo), nil
}

// parseHex64 parses a bare hex field. strconv.ParseUint rejects what
// fmt.Sscanf "%x" silently tolerated: empty fields, signs, "0x"
// prefixes, and valid-prefix-plus-garbage like "12zz".
func parseHex64(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}
