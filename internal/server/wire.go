package server

// Wire-shape helpers shared with the cluster router (internal/cluster).
//
// The router speaks this package's protocol on both of its sides: it
// parses just enough of each request line to pick a backend, forwards
// the raw bytes, and reassembles multi-backend replies (MSEARCH
// scatter/gather, STATS aggregation) out of single-backend ones. The
// exported surface below is what reassembly needs — the field scanner
// and key parser the server itself routes with, and the reply tokens
// whose exact spelling is the compatibility contract — so the router
// can never drift from the server's own grammar.

// Reply tokens of the wire protocol. MRESULTS slots use the Slot*
// spellings; single SEARCH replies use the bare forms. The router's
// reassembly code compares against these constants instead of
// respelling them.
const (
	ReplyOK       = "OK"
	ReplyMiss     = "MISS"
	ReplyMissErr  = "MISS!" // explicit miss-with-error (quarantined/unreadable row)
	ReplyMResults = "MRESULTS"

	SlotHitPrefix   = "HIT:"
	SlotNoEngine    = "ERR:no-engine"
	SlotUnavailable = "ERR:unavailable"
)

// Next returns the next whitespace-separated field of the line, or
// ok=false at end of line. The exported form of the scanner the
// protocol engine itself uses; fields are substrings of the input and
// never allocate.
func (f *FieldScanner) Next() (field string, ok bool) { return f.next() }

// Rest returns everything left of the line with surrounding whitespace
// trimmed, consuming the scanner — the free-text tail of a request.
func (f *FieldScanner) Rest() string { return f.rest() }

// CountFields returns how many fields remain without advancing the
// scanner.
func (f *FieldScanner) CountFields() int { return f.countFields() }

// NewFieldScanner returns a scanner over one request (or reply) line.
func NewFieldScanner(line string) FieldScanner { return FieldScanner{s: line} }

// ParseVec parses a wire key — "hi:lo" or plain hex, each part 1-16
// hex digits with nothing else — exactly as the protocol engine does
// (trailing garbage, signs, and "0x" prefixes are all rejected). The
// router canonicalizes keys through this before hashing them onto the
// ring, so "dead", "0:dead" and "0:000000000000dead" route to the same
// backend the server would treat as the same key.
func ParseVec(s string) (v [2]uint64, err error) {
	vec, err := parseVec(s)
	if err != nil {
		return v, err
	}
	return [2]uint64{vec.Lo, vec.Hi}, nil
}
