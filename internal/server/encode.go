package server

import (
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Append-based reply encoding. Every response the server emits is built
// by appending into a caller-supplied byte buffer (per-connection,
// pooled by Handle), replacing the fmt.Sprintf/strings.Builder
// formatting of the original protocol engine. The encoders below are
// byte-compatible with the fmt verbs they replace — the golden session
// test holds the wire format to the old output exactly.

// appendHex appends v in lower-case hex with no padding (fmt's %x).
func appendHex(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 16)
}

// appendHex016 appends v as exactly 16 lower-case hex digits (fmt's
// %016x).
func appendHex016(dst []byte, v uint64) []byte {
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = "0123456789abcdef"[v&0xf]
		v >>= 4
	}
	return append(dst, buf[:]...)
}

// appendFixed appends v with prec digits after the decimal point
// (fmt's %.<prec>f, including its NaN/±Inf spellings).
func appendFixed(dst []byte, v float64, prec int) []byte {
	return strconv.AppendFloat(dst, v, 'f', prec, 64)
}

// appendUint appends v in decimal (fmt's %d for unsigned).
func appendUint(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 10)
}

// appendInt appends v in decimal (fmt's %d).
func appendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// appendErr appends "ERR " plus the error text.
func appendErr(dst []byte, err error) []byte {
	dst = append(dst, "ERR "...)
	return append(dst, err.Error()...)
}

// asciiSpace marks the six ASCII bytes unicode.IsSpace accepts, the
// fast path of the field scanner.
var asciiSpace = [256]uint8{'\t': 1, '\n': 1, '\v': 1, '\f': 1, '\r': 1, ' ': 1}

// FieldScanner iterates the whitespace-separated fields of a request
// line without allocating — the streaming equivalent of strings.Fields
// (same unicode.IsSpace separator set), yielding substrings of the
// input.
type FieldScanner struct {
	s string
	i int
}

// next returns the next field, or ok=false at end of line.
func (f *FieldScanner) next() (field string, ok bool) {
	s, i := f.s, f.i
	for i < len(s) {
		if c := s[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 0 {
				break
			}
			i++
			continue
		}
		r, w := utf8.DecodeRuneInString(s[i:])
		if !unicode.IsSpace(r) {
			break
		}
		i += w
	}
	if i >= len(s) {
		f.i = i
		return "", false
	}
	start := i
	for i < len(s) {
		if c := s[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 1 {
				break
			}
			i++
			continue
		}
		r, w := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			break
		}
		i += w
	}
	f.i = i
	return s[start:i], true
}

// rest returns everything left of the line with surrounding whitespace
// trimmed, consuming the scanner — the free-text tail of a request
// (trigram texts may contain spaces).
func (f *FieldScanner) rest() string {
	out := strings.TrimSpace(f.s[f.i:])
	f.i = len(f.s)
	return out
}

// countFields returns how many fields remain from the scanner's current
// position without advancing it.
func (f *FieldScanner) countFields() int {
	c := *f
	n := 0
	for {
		if _, ok := c.next(); !ok {
			return n
		}
		n++
	}
}
