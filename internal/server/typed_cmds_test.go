package server

import (
	"fmt"
	"strings"
	"testing"
)

// Parser hardening for the typed-engine wire surface: every malformed
// line draws a deterministic single-line ERR (mirroring the parseVec
// discipline — trailing garbage, bad numbers, and type mismatches are
// all rejected, never silently tolerated).
func TestTypedCommandParsing(t *testing.T) {
	s := typedServer(t)
	mustOK(t, s, "CREATE ENGINE ip TYPE lpm INDEXBITS 6 SLOTS 8")
	mustOK(t, s, "CREATE ENGINE tri TYPE trigram INDEXBITS 6")
	mustOK(t, s, "CREATE ENGINE db TYPE exact INDEXBITS 6")

	createUsage := "ERR usage: CREATE ENGINE <name> TYPE <type> [INDEXBITS <n>] [SLOTS <n>] [ECC]"
	cases := []struct{ req, want string }{
		// CREATE grammar.
		{"CREATE", createUsage},
		{"CREATE TABLE x TYPE lpm", createUsage},
		{"CREATE ENGINE", createUsage},
		{"CREATE ENGINE x", createUsage},
		{"CREATE ENGINE x TYPE", createUsage},
		{"CREATE ENGINE x KIND lpm", createUsage},
		{"CREATE ENGINE x TYPE lpm INDEXBITS", createUsage},
		{"CREATE ENGINE x TYPE lpm INDEXBITS four", createUsage},
		{"CREATE ENGINE x TYPE lpm BOGUS 3", createUsage},
		{"CREATE ENGINE x TYPE wat", `ERR subsystem: bad engine type "wat"`},
		{"CREATE ENGINE x TYPE lpm INDEXBITS 0", "ERR indexbits out of range [1,12]"},
		{"CREATE ENGINE x TYPE lpm INDEXBITS 13", "ERR indexbits out of range [1,12]"},
		{"CREATE ENGINE x TYPE lpm SLOTS 0", "ERR slots out of range [1,64]"},
		{"CREATE ENGINE x TYPE lpm SLOTS 65", "ERR slots out of range [1,64]"},
		{"CREATE ENGINE bad name! TYPE lpm", createUsage}, // "name!" parses as a stray option
		{"CREATE ENGINE a/b TYPE lpm", `ERR bad engine name "a/b"`},
		{"CREATE ENGINE " + strings.Repeat("x", 33) + " TYPE lpm",
			fmt.Sprintf("ERR bad engine name %q", strings.Repeat("x", 33))},
		{"CREATE ENGINE ip TYPE lpm", `ERR subsystem: engine "ip" already registered`},
		// DROP grammar.
		{"DROP", "ERR usage: DROP ENGINE <name>"},
		{"DROP ENGINE", "ERR usage: DROP ENGINE <name>"},
		{"DROP ENGINE a b", "ERR usage: DROP ENGINE <name>"},
		{"DROP TABLE ip", "ERR usage: DROP ENGINE <name>"},
		{"DROP ENGINE nosuch", `ERR subsystem: no engine "nosuch"`},
		// MINSERT / MDELETE grammar and type gates.
		{"MINSERT", "ERR usage: MINSERT <engine> <key> <mask> <data>"},
		{"MINSERT ip 1 2", "ERR usage: MINSERT <engine> <key> <mask> <data>"},
		{"MINSERT ip 1 2 3 4", "ERR usage: MINSERT <engine> <key> <mask> <data>"},
		{"MINSERT ip 1z 2 3", `ERR bad hex "1z"`},
		{"MINSERT ip 1 0x2 3", `ERR bad hex "0x2"`},
		{"MINSERT ip 1 2 -3", `ERR bad hex "-3"`},
		{"MINSERT nosuch 1 2 3", `ERR subsystem: no engine "nosuch"`},
		{"MINSERT db 1 2 3", "ERR minsert: engine type exact"},
		{"MINSERT tri 1 2 3", "ERR minsert: engine type trigram"},
		{"MDELETE", "ERR usage: MDELETE <engine> <key> <mask>"},
		{"MDELETE ip 1 2 3", "ERR usage: MDELETE <engine> <key> <mask>"},
		{"MDELETE ip zz 2", `ERR bad hex "zz"`},
		{"MDELETE db 1 2", "ERR mdelete: engine type exact"},
		// TINSERT / TSEARCH grammar and type gates.
		{"TINSERT", "ERR usage: TINSERT <engine> <score> <text>"},
		{"TINSERT tri 5", "ERR usage: TINSERT <engine> <score> <text>"},
		{"TINSERT tri xyz hello", `ERR bad score "xyz"`},
		{"TINSERT tri 10000 hello", `ERR bad score "10000"`}, // > 16 bits
		{"TINSERT tri 5 " + strings.Repeat("a", 257), "ERR text too long"},
		{"TINSERT ip 5 hello", "ERR tinsert: engine type lpm"},
		{"TINSERT nosuch 5 hello", `ERR subsystem: no engine "nosuch"`},
		{"TSEARCH", "ERR usage: TSEARCH <engine> <text>"},
		{"TSEARCH tri", "ERR usage: TSEARCH <engine> <text>"},
		{"TSEARCH tri " + strings.Repeat("a", 257), "ERR text too long"},
		{"TSEARCH db hello", "ERR tsearch: engine type exact"},
	}
	for _, tc := range cases {
		if got := s.Exec(tc.req); got != tc.want {
			t.Errorf("%s\n  got  %q\n  want %q", tc.req, got, tc.want)
		}
	}

	// Keyword case-insensitivity and idempotent round trips.
	mustOK(t, s, "create engine Tmp TYPE lpm indexbits 4 slots 2 ecc")
	mustOK(t, s, "drop engine Tmp")
	if got := s.Exec("DROP ENGINE Tmp"); got != `ERR subsystem: no engine "Tmp"` {
		t.Errorf("second drop => %q", got)
	}
}

// TestTypedEngineLimit fills the process to maxEngines and checks the
// protocol-level cap: the next CREATE draws a deterministic ERR and
// registers nothing, and dropping one engine frees one slot.
func TestTypedEngineLimit(t *testing.T) {
	s := typedServer(t)
	for i := 0; len(s.con.Engines()) < maxEngines; i++ {
		mustOK(t, s, fmt.Sprintf("CREATE ENGINE e%d TYPE exact INDEXBITS 1 SLOTS 1", i))
	}
	if got := s.Exec("CREATE ENGINE over TYPE exact INDEXBITS 1 SLOTS 1"); got != "ERR engine limit reached" {
		t.Fatalf("create past limit => %q", got)
	}
	mustOK(t, s, "DROP ENGINE e0")
	mustOK(t, s, "CREATE ENGINE over TYPE exact INDEXBITS 1 SLOTS 1")
	if n := len(s.con.Engines()); n != maxEngines {
		t.Fatalf("engine count = %d, want %d", n, maxEngines)
	}
}
