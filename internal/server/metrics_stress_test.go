package server

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/subsystem"
)

// metricsFields parses one single-line METRICS response into its
// key=value fields ("METRICS engine=e0 insert=3 ..." -> {"engine":"e0",
// "insert":"3", ...}).
func metricsFields(t *testing.T, resp string) map[string]string {
	t.Helper()
	fields := strings.Fields(resp)
	if len(fields) == 0 || fields[0] != "METRICS" {
		t.Fatalf("not a METRICS response: %q", resp)
	}
	m := make(map[string]string, len(fields)-1)
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("malformed METRICS field %q in %q", f, resp)
		}
		m[k] = v
	}
	return m
}

// TestStressMetricsCountersExact replays the mixed stress workload —
// 32 goroutines over 4 engines, ~46k instrumented ops — and then
// checks that the per-engine METRICS counters match the op counts the
// workers actually issued, exactly. Workers own disjoint key ranges so
// every response (and therefore every expected error) is predictable.
// Under -race this is the end-to-end safety check for the metrics
// path: atomics only, no torn counts, no lost increments.
func TestStressMetricsCountersExact(t *testing.T) {
	const (
		workers = 32
		iters   = 160
		engines = 4
	)
	s, names := stressServer(t, engines)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := names[g%engines]
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("%x", uint64(g)<<32|uint64(i))
				if resp := s.Exec("INSERT " + eng + " " + key + " " + key); resp != "OK" {
					t.Errorf("worker %d INSERT: %q", g, resp)
					return
				}
				if resp := s.Exec("SEARCH " + eng + " " + key); !strings.HasPrefix(resp, "HIT ") {
					t.Errorf("worker %d SEARCH: %q", g, resp)
					return
				}
				var req strings.Builder
				req.WriteString("MSEARCH")
				for _, n := range names {
					req.WriteString(" " + n + " " + key)
				}
				if resp := s.Exec(req.String()); !strings.HasPrefix(resp, "MRESULTS ") {
					t.Errorf("worker %d MSEARCH: %q", g, resp)
					return
				}
				if resp := s.Exec("DELETE " + eng + " " + key); resp != "OK" {
					t.Errorf("worker %d DELETE: %q", g, resp)
					return
				}
				if resp := s.Exec("SEARCH " + eng + " " + key); resp != "MISS" {
					t.Errorf("worker %d post-delete SEARCH: %q", g, resp)
					return
				}
				// Double delete: a predictable per-engine error.
				if resp := s.Exec("DELETE " + eng + " " + key); !strings.HasPrefix(resp, "ERR ") {
					t.Errorf("worker %d double DELETE: %q", g, resp)
					return
				}
				// Periodic unknown-engine traffic.
				if i%10 == 0 {
					if resp := s.Exec("SEARCH ghost " + key); !strings.HasPrefix(resp, "ERR ") {
						t.Errorf("worker %d ghost SEARCH: %q", g, resp)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	perEngineWorkers := workers / engines
	want := map[string]int{
		"insert":      perEngineWorkers * iters,
		"insert_err":  0,
		"search":      2 * perEngineWorkers * iters,
		"search_err":  0,
		"delete":      2 * perEngineWorkers * iters,
		"delete_err":  perEngineWorkers * iters,
		"msearch":     workers * iters, // every worker fans to every engine
		"msearch_err": 0,
	}
	for _, n := range names {
		m := metricsFields(t, s.Exec("METRICS "+n))
		for k, v := range want {
			if m[k] != fmt.Sprint(v) {
				t.Errorf("engine %s: %s = %s, want %d", n, k, m[k], v)
			}
		}
		if m["n"] != "0" {
			t.Errorf("engine %s not empty after stress: n=%s", n, m["n"])
		}
	}
	sum := metricsFields(t, s.Exec("METRICS"))
	wantOps := engines * (want["insert"] + want["search"] + want["delete"] + want["msearch"])
	wantErrs := engines * want["delete_err"]
	wantUnknown := workers * ((iters + 9) / 10)
	if m, w := sum["ops"], fmt.Sprint(wantOps); m != w {
		t.Errorf("summary ops = %s, want %s", m, w)
	}
	if m, w := sum["errors"], fmt.Sprint(wantErrs); m != w {
		t.Errorf("summary errors = %s, want %s", m, w)
	}
	if m, w := sum["unknown"], fmt.Sprint(wantUnknown); m != w {
		t.Errorf("summary unknown = %s, want %s", m, w)
	}
}

// TestMetricsAMALAgreesWithAnalytic validates the live AMAL gauge
// against the paper's §3.4 placement model. An exact-match Lookup
// early-exits at the target, so a search for a stored key reads
// exactly 1+displacement rows; searching every stored key once makes
// the on-the-wire gauge (RowsAccessed/Lookups) equal the analytic
// mean over stored records of 1+displacement, up to the 0.01 absolute
// tolerance the repo's design experiments use.
func TestMetricsAMALAgreesWithAnalytic(t *testing.T) {
	const records = 1800 // 256 buckets x 8 slots: alpha ~0.88, real spill pressure
	sl := caram.MustNew(caram.Config{
		IndexBits: 8,
		RowBits:   8*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewMultShift(8),
	})
	sub := subsystem.New(0)
	if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	s := New(sub)

	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("%x", uint64(i)*0x9e3779b97f4a7c15) // spread the key space
		if resp := s.Exec("INSERT db " + keys[i] + " 1"); resp != "OK" {
			t.Fatalf("INSERT %d: %q", i, resp)
		}
	}
	for _, k := range keys {
		if resp := s.Exec("SEARCH db " + k); !strings.HasPrefix(resp, "HIT ") {
			t.Fatalf("SEARCH %s: %q", k, resp)
		}
	}

	// Analytic AMAL: mean of 1+displacement over the actual placement.
	rows := sl.Config().Rows()
	var totalRows, n int
	sl.Records(func(bucket uint32, slot int, rec match.Record) bool {
		home := sl.Index(rec.Key.Value)
		totalRows += 1 + (int(bucket)-int(home)+rows)%rows
		n++
		return true
	})
	if n != records {
		t.Fatalf("Records walk saw %d records, want %d", n, records)
	}
	analytic := float64(totalRows) / float64(n)

	g, ok := s.Metrics().Engine("db").SampleGauges()
	if !ok {
		t.Fatal("no gauges wired")
	}
	if g.Lookups != uint64(records) {
		t.Fatalf("gauge lookups = %d, want %d", g.Lookups, records)
	}
	if diff := math.Abs(g.AMAL - analytic); diff > 0.01 {
		t.Errorf("live AMAL %.4f vs analytic %.4f: |diff| %.4f > 0.01", g.AMAL, analytic, diff)
	}
	if analytic <= 1 {
		t.Errorf("analytic AMAL %.4f: expected spill pressure at alpha %.2f", analytic, sl.LoadFactor())
	}
	// The wire form reports the same gauge (rounded to 3 decimals).
	m := metricsFields(t, s.Exec("METRICS db"))
	if m["amal"] != fmt.Sprintf("%.3f", g.AMAL) {
		t.Errorf("wire amal = %s, gauge %.3f", m["amal"], g.AMAL)
	}
}
