package server

import (
	"strconv"
	"strings"

	"caram/internal/bitutil"
	"caram/internal/trace"
)

// Wire access to the tracing layer: the SLOWLOG and EXPLAIN commands.
//
// Both are built for determinism first. EXPLAIN prints only positional
// facts about the lookup it runs — bucket indices, displacements, slot
// and match counts, the overflow-CAM outcome, and the §3.4 analytic
// expectation — never timings, so a scripted session produces the same
// bytes every run and the golden test can hold the format exactly.
// SLOWLOG GET prints retained entries with their measured latency, so
// only its empty/LEN/RESET forms appear in the golden session.

// resultToken returns the first token of a reply as an interned
// constant, so stamping a trace's Result does not allocate. Unknown
// prefixes (none exist today) fall back to a clone.
func resultToken(reply []byte) string {
	i := 0
	for i < len(reply) && reply[i] != ' ' {
		i++
	}
	switch string(reply[:i]) { // compiled to a non-allocating comparison
	case "OK":
		return "OK"
	case "HIT":
		return "HIT"
	case "MISS":
		return "MISS"
	case "MISS!":
		return "MISS!"
	case "HEALTH":
		return "HEALTH"
	case "ERR":
		return "ERR"
	case "STATS":
		return "STATS"
	case "ENGINES":
		return "ENGINES"
	case "MRESULTS":
		return "MRESULTS"
	case "METRICS":
		return "METRICS"
	case "SLOWLOG":
		return "SLOWLOG"
	case "EXPLAIN":
		return "EXPLAIN"
	case "TRACE":
		return "TRACE"
	}
	return strings.Clone(string(reply[:i]))
}

// ResultToken returns the first token of a wire reply as an interned
// constant — the label a trace records as its Result. Exported for the
// cluster router, which stamps the same vocabulary on its own spans.
func ResultToken(reply []byte) string { return resultToken(reply) }

// parseWireID parses the `<hex-id>[/<span-id>]` operand of the *TID
// annotation and the TRACE GET command: a 64-bit hex trace id,
// optionally followed by a slash and a decimal span id.
func parseWireID(s string) (tid uint64, span uint32, ok bool) {
	idS := s
	if i := strings.IndexByte(s, '/'); i >= 0 {
		idS = s[:i]
		v, err := strconv.ParseUint(s[i+1:], 10, 32)
		if err != nil {
			return 0, 0, false
		}
		span = uint32(v)
	}
	v, err := parseHex64(idS)
	if err != nil {
		return 0, 0, false
	}
	return v, span, true
}

// execTraceAppend answers TRACE GET: it fetches a retained trace by
// its wire trace id and prints it as one compact JSON object — the
// remote side of cross-node trace stitching. The caller that tagged
// the request (normally the cluster router) knows the id it minted;
// everyone else discovers ids via SLOWLOG GET or /debug/traces. A
// SEARCH trace's reply also carries the engine's current §3.4
// expected-rows value, computed at fetch time, so the stitched view
// shows the measured probe chain next to the model.
func (s *Server) execTraceAppend(dst []byte, fs *FieldScanner) []byte {
	const usage = "ERR usage: TRACE GET <hex-id>[/<span-id>]"
	sub, ok0 := fs.next()
	arg, ok1 := fs.next()
	if _, extra := fs.next(); !ok0 || !ok1 || extra || !strings.EqualFold(sub, "GET") {
		return append(dst, usage...)
	}
	if s.trc == nil {
		return append(dst, "ERR tracing disabled"...)
	}
	tid, span, ok := parseWireID(arg)
	if !ok {
		return append(dst, usage...)
	}
	t := s.trc.Find(tid, span)
	if t == nil {
		return append(dst, "ERR trace: notfound"...)
	}
	var expected float64
	if t.Cmd == "SEARCH" && t.Engine != "" {
		if e, ok := s.con.ExpectedRows(t.Engine); ok {
			expected = e
		}
	}
	dst = append(dst, "TRACE "...)
	return t.AppendJSON(dst, expected)
}

// maxSlowlogGet bounds the n of SLOWLOG GET n: far above any sane ring
// size, far below anything that could size a hostile allocation.
const maxSlowlogGet = 1 << 20

// execSlowlogAppend answers the SLOWLOG command against the slowlog
// ring. GET prints the newest entries (optionally capped at n) on one
// line, newest first; LEN the retained count; RESET clears the ring.
func (s *Server) execSlowlogAppend(dst []byte, fs *FieldScanner) []byte {
	const usage = "ERR usage: SLOWLOG GET [n] | SLOWLOG LEN | SLOWLOG RESET"
	sub, ok := fs.next()
	if !ok {
		return append(dst, usage...)
	}
	if s.trc == nil {
		return append(dst, "ERR tracing disabled"...)
	}
	ring := s.trc.Slow()
	switch strings.ToUpper(sub) {
	case "LEN":
		if _, extra := fs.next(); extra {
			return append(dst, usage...)
		}
		dst = append(dst, "SLOWLOG len="...)
		return appendInt(dst, int64(ring.Len()))
	case "RESET":
		if _, extra := fs.next(); extra {
			return append(dst, usage...)
		}
		ring.Reset()
		return append(dst, "OK"...)
	case "GET":
		max := 0 // all retained
		if arg, has := fs.next(); has {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 0 {
				return append(dst, usage...)
			}
			if v > maxSlowlogGet {
				// The ring itself clamps a snapshot at its retained
				// length, but the request is still nonsense: reject it
				// outright so no future ring (or caller pre-sizing on
				// n) can be talked into an attacker-sized allocation.
				return append(dst, "ERR slowlog: n too large"...)
			}
			if _, extra := fs.next(); extra {
				return append(dst, usage...)
			}
			max = v
			if max == 0 {
				max = -1 // "GET 0" means none, not all
			}
		}
		var entries []*trace.Trace
		if max >= 0 {
			entries = ring.Snapshot(nil, max)
		}
		dst = append(dst, "SLOWLOG n="...)
		dst = appendInt(dst, int64(len(entries)))
		for _, t := range entries {
			dst = append(dst, " id="...)
			dst = appendUint(dst, t.ID)
			dst = append(dst, " us="...)
			dst = appendInt(dst, t.Dur.Microseconds())
			dst = append(dst, " cmd="...)
			dst = append(dst, t.Cmd...)
			dst = append(dst, " engine="...)
			dst = append(dst, t.Engine...)
			dst = append(dst, " key="...)
			dst = append(dst, t.Key...)
			dst = append(dst, " result="...)
			dst = append(dst, t.Result...)
			dst = append(dst, " rows="...)
			dst = appendInt(dst, int64(t.Rows))
		}
		return dst
	default:
		return append(dst, usage...)
	}
}

// execExplainAppend answers EXPLAIN SEARCH: it runs a real lookup with
// tracing forced on (independent of the server's collector — EXPLAIN
// works on an untraced server) and prints the probe chain alongside the
// analytic model. One chain element per bucket probed:
//
//	b<bucket>:d<displacement>:s<slots>:m<matches>[:ovf][:hit]
//
// expected= is the §3.4 analytic expectation of rows accessed for a
// uniformly random stored record under the current placement
// (mean(1 + displacement)); rows= is what this lookup measured. The
// lookup is real — it charges access statistics and counts as a search
// in the metrics layer, exactly like the request it explains.
func (s *Server) execExplainAppend(dst []byte, fs *FieldScanner) []byte {
	const usage = "ERR usage: EXPLAIN SEARCH <engine> <key> [mask]"
	sub, ok0 := fs.next()
	eng, ok1 := fs.next()
	keyS, ok2 := fs.next()
	maskS, hasMask := fs.next()
	if _, extra := fs.next(); !ok0 || !ok1 || !ok2 || extra || !strings.EqualFold(sub, "SEARCH") {
		return append(dst, usage...)
	}
	key, err := parseVec(keyS)
	if err != nil {
		return appendErr(dst, err)
	}
	search := bitutil.Exact(key)
	if hasMask {
		mask, err := parseVec(maskS)
		if err != nil {
			return appendErr(dst, err)
		}
		search = bitutil.NewTernary(key, mask)
	}
	tr := trace.New()
	tr.Request("SEARCH", eng, keyS)
	sr, expected, err := s.con.Explain(eng, search, tr)
	if err != nil {
		return appendErr(dst, err)
	}
	tr.End()
	dst = append(dst, "EXPLAIN engine="...)
	dst = append(dst, eng...)
	dst = append(dst, " key="...)
	dst = append(dst, keyS...)
	dst = append(dst, " home="...)
	dst = appendUint(dst, uint64(tr.Home))
	dst = append(dst, " reach="...)
	dst = appendInt(dst, int64(tr.Reach))
	dst = append(dst, " rows="...)
	dst = appendInt(dst, int64(tr.Rows))
	if m, ok := tr.EventOf(trace.KindMatch); ok {
		dst = append(dst, " slots="...)
		dst = appendInt(dst, int64(m.SlotsTested))
		dst = append(dst, " matches="...)
		dst = appendInt(dst, int64(m.Matches))
		dst = append(dst, " passes="...)
		dst = appendInt(dst, int64(m.Passes))
	}
	dst = append(dst, " expected="...)
	dst = appendFixed(dst, expected, 3)
	dst = append(dst, " result="...)
	if sr.Found {
		dst = append(dst, "HIT"...)
	} else {
		dst = append(dst, "MISS"...)
	}
	dst = append(dst, " chain=["...)
	first := true
	tr.ProbeEvents(func(e trace.Event) {
		if !first {
			dst = append(dst, ' ')
		}
		first = false
		dst = append(dst, 'b')
		dst = appendUint(dst, uint64(e.Bucket))
		dst = append(dst, ":d"...)
		dst = appendInt(dst, int64(e.Displacement))
		dst = append(dst, ":s"...)
		dst = appendInt(dst, int64(e.SlotsTested))
		dst = append(dst, ":m"...)
		dst = appendInt(dst, int64(e.Matches))
		if e.Overflow {
			dst = append(dst, ":ovf"...)
		}
		if e.Hit {
			dst = append(dst, ":hit"...)
		}
	})
	dst = append(dst, "] ovfl="...)
	switch e, ok := tr.EventOf(trace.KindOverflow); {
	case !ok:
		dst = append(dst, "none"...)
	case e.Hit:
		dst = append(dst, "hit"...)
	default:
		dst = append(dst, "miss"...)
	}
	return dst
}
