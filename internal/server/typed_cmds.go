package server

import (
	"strconv"
	"time"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/subsystem"
	"caram/internal/trace"
	"caram/internal/trigram"
)

// Typed-engine wire surface: engine lifecycle (CREATE ENGINE / DROP
// ENGINE) plus the commands whose key encodings the generic
// INSERT/SEARCH line format cannot carry — masked ternary writes for
// the lpm and pktclass engines (MINSERT / MDELETE) and text-keyed
// trigram operations (TINSERT / TSEARCH). Reads stay on the existing
// commands: SEARCH <engine> <key> answers an LPM lookup with the
// longest matching prefix and a pktclass lookup with the
// highest-priority matching rule, because the engine's type carries
// the ranking.

// maxEngines bounds how many engines one server will host — a
// protocol-level guard so a misbehaving (or fuzzing) client cannot
// grow the process without bound through CREATE ENGINE.
const maxEngines = 64

// Geometry bounds for wire-created engines, same motivation.
const (
	maxCreateIndexBits = 12
	maxCreateSlots     = 64
)

// maxTextBytes bounds the text argument of TINSERT/TSEARCH. The key
// image is 16 bytes regardless (longer texts are digest-folded), so
// the cap only keeps trace/log fields sane.
const maxTextBytes = 256

// validEngineName reports whether the name is safe to echo into every
// downstream surface (metrics labels, trace JSON, ENGINES listings):
// 1-32 bytes of [A-Za-z0-9_.-].
func validEngineName(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.', c == '-':
		default:
			return false
		}
	}
	return true
}

// execCreateAppend answers CREATE ENGINE <name> TYPE <type>
// [INDEXBITS <n>] [SLOTS <n>] [ECC].
func (s *Server) execCreateAppend(dst []byte, fs *FieldScanner) []byte {
	const usage = "ERR usage: CREATE ENGINE <name> TYPE <type> [INDEXBITS <n>] [SLOTS <n>] [ECC]"
	kw, ok := fs.next()
	if !ok || !asciiEqualFold(kw, "ENGINE") {
		return append(dst, usage...)
	}
	name, ok1 := fs.next()
	tkw, ok2 := fs.next()
	typS, ok3 := fs.next()
	if !ok1 || !ok2 || !ok3 || !asciiEqualFold(tkw, "TYPE") {
		return append(dst, usage...)
	}
	var tc subsystem.TypedConfig
	for {
		opt, ok := fs.next()
		if !ok {
			break
		}
		switch {
		case asciiEqualFold(opt, "ECC"):
			tc.ECC = true
		case asciiEqualFold(opt, "INDEXBITS"), asciiEqualFold(opt, "SLOTS"):
			valS, ok := fs.next()
			if !ok {
				return append(dst, usage...)
			}
			v, err := strconv.Atoi(valS)
			if err != nil {
				return append(dst, usage...)
			}
			if asciiEqualFold(opt, "INDEXBITS") {
				if v < 1 || v > maxCreateIndexBits {
					return append(dst, "ERR indexbits out of range [1,12]"...)
				}
				tc.IndexBits = v
			} else {
				if v < 1 || v > maxCreateSlots {
					return append(dst, "ERR slots out of range [1,64]"...)
				}
				tc.Slots = v
			}
		default:
			return append(dst, usage...)
		}
	}
	if !validEngineName(name) {
		dst = append(dst, "ERR bad engine name "...)
		return strconv.AppendQuote(dst, name)
	}
	typ, err := subsystem.ParseEngineType(typS)
	if err != nil {
		return appendErr(dst, err)
	}
	if len(s.con.Engines()) >= maxEngines {
		return append(dst, "ERR engine limit reached"...)
	}
	if err := s.con.CreateEngine(name, typ, tc); err != nil {
		return appendErr(dst, err)
	}
	return append(dst, "OK"...)
}

// execDropAppend answers DROP ENGINE <name>.
func (s *Server) execDropAppend(dst []byte, fs *FieldScanner) []byte {
	const usage = "ERR usage: DROP ENGINE <name>"
	kw, ok := fs.next()
	name, ok1 := fs.next()
	if _, extra := fs.next(); !ok || !ok1 || extra || !asciiEqualFold(kw, "ENGINE") {
		return append(dst, usage...)
	}
	if err := s.con.DropEngine(name); err != nil {
		return appendErr(dst, err)
	}
	return append(dst, "OK"...)
}

// ternaryWritable reports whether the engine accepts masked writes
// (its rows store a mask and its inserts duplicate over wildcard hash
// bits).
func ternaryWritable(t subsystem.EngineType) bool {
	return t == subsystem.LPMEngine || t == subsystem.PktClassEngine
}

// execMInsertAppend answers MINSERT <engine> <key> <mask> <data> — the
// masked (ternary) insert for lpm/pktclass engines. Mask bits are
// don't-cares; value bits under the mask are zeroed on storage, so
// equal rules have equal row images.
func (s *Server) execMInsertAppend(dst []byte, fs *FieldScanner, tr *trace.Trace) []byte {
	eng, ok1 := fs.next()
	keyS, ok2 := fs.next()
	maskS, ok3 := fs.next()
	dataS, ok4 := fs.next()
	if _, extra := fs.next(); !ok1 || !ok2 || !ok3 || !ok4 || extra {
		return append(dst, "ERR usage: MINSERT <engine> <key> <mask> <data>"...)
	}
	tr.Request("MINSERT", eng, keyS)
	key, err := parseVec(keyS)
	if err != nil {
		return appendErr(dst, err)
	}
	mask, err := parseVec(maskS)
	if err != nil {
		return appendErr(dst, err)
	}
	data, err := parseVec(dataS)
	if err != nil {
		return appendErr(dst, err)
	}
	typ, err := s.con.EngineType(eng)
	if err != nil {
		return appendErr(dst, err)
	}
	if !ternaryWritable(typ) {
		dst = append(dst, "ERR minsert: engine type "...)
		return append(dst, typ.String()...)
	}
	rec := match.Record{Key: bitutil.NewTernary(key, mask), Data: data}
	if err := s.con.InsertTraced(eng, rec, tr); err != nil {
		return appendErr(dst, err)
	}
	return append(dst, "OK"...)
}

// execMDeleteAppend answers MDELETE <engine> <key> <mask> — removes the
// exact (key, mask) rule, every duplicated copy included.
func (s *Server) execMDeleteAppend(dst []byte, fs *FieldScanner, tr *trace.Trace) []byte {
	eng, ok1 := fs.next()
	keyS, ok2 := fs.next()
	maskS, ok3 := fs.next()
	if _, extra := fs.next(); !ok1 || !ok2 || !ok3 || extra {
		return append(dst, "ERR usage: MDELETE <engine> <key> <mask>"...)
	}
	tr.Request("MDELETE", eng, keyS)
	key, err := parseVec(keyS)
	if err != nil {
		return appendErr(dst, err)
	}
	mask, err := parseVec(maskS)
	if err != nil {
		return appendErr(dst, err)
	}
	typ, err := s.con.EngineType(eng)
	if err != nil {
		return appendErr(dst, err)
	}
	if !ternaryWritable(typ) {
		dst = append(dst, "ERR mdelete: engine type "...)
		return append(dst, typ.String()...)
	}
	if err := s.con.DeleteTraced(eng, bitutil.NewTernary(key, mask), tr); err != nil {
		return appendErr(dst, err)
	}
	return append(dst, "OK"...)
}

// trigramEngineOf resolves the engine for a text-keyed command,
// insisting on the trigram type.
func (s *Server) trigramEngineOf(dst []byte, cmd, eng string) ([]byte, bool) {
	typ, err := s.con.EngineType(eng)
	if err != nil {
		return appendErr(dst, err), false
	}
	if typ != subsystem.TrigramEngine {
		dst = append(dst, "ERR "...)
		dst = append(dst, cmd...)
		dst = append(dst, ": engine type "...)
		return append(dst, typ.String()...), false
	}
	return dst, true
}

// execTInsertAppend answers TINSERT <engine> <score> <text...>: the
// text (rest of the line, spaces allowed) is folded into the trigram
// key image and stored with the 16-bit hex score.
func (s *Server) execTInsertAppend(dst []byte, fs *FieldScanner, tr *trace.Trace) []byte {
	const usage = "ERR usage: TINSERT <engine> <score> <text>"
	eng, ok1 := fs.next()
	scoreS, ok2 := fs.next()
	text := fs.rest()
	if !ok1 || !ok2 || text == "" {
		return append(dst, usage...)
	}
	if len(text) > maxTextBytes {
		return append(dst, "ERR text too long"...)
	}
	tr.Request("TINSERT", eng, text)
	score, err := strconv.ParseUint(scoreS, 16, 16)
	if err != nil {
		dst = append(dst, "ERR bad score "...)
		return strconv.AppendQuote(dst, scoreS)
	}
	var ok bool
	if dst, ok = s.trigramEngineOf(dst, "tinsert", eng); !ok {
		return dst
	}
	rec := match.Record{
		Key:  bitutil.Exact(trigram.Entry{Text: text}.Key()),
		Data: bitutil.FromUint64(score),
	}
	if err := s.con.InsertTraced(eng, rec, tr); err != nil {
		return appendErr(dst, err)
	}
	return append(dst, "OK"...)
}

// execTSearchAppend answers TSEARCH <engine> <text...> with the same
// HIT/MISS/MISS! shapes as SEARCH; a hit's payload is the entry's
// score.
func (s *Server) execTSearchAppend(dst []byte, fs *FieldScanner, tr *trace.Trace) []byte {
	eng, ok1 := fs.next()
	text := fs.rest()
	if !ok1 || text == "" {
		return append(dst, "ERR usage: TSEARCH <engine> <text>"...)
	}
	if len(text) > maxTextBytes {
		return append(dst, "ERR text too long"...)
	}
	tr.Request("TSEARCH", eng, text)
	var ok bool
	if dst, ok = s.trigramEngineOf(dst, "tsearch", eng); !ok {
		return dst
	}
	if tr.Enabled() {
		tr.Span(trace.KindParse, tr.Begin)
	}
	sr, err := s.con.SearchTraced(eng, bitutil.Exact(trigram.Entry{Text: text}.Key()), tr)
	if err != nil {
		return appendErr(dst, err)
	}
	var encStart time.Time
	if tr.Enabled() {
		encStart = time.Now()
	}
	switch {
	case !sr.Found && sr.Erred:
		dst = append(dst, "MISS!"...)
	case !sr.Found:
		dst = append(dst, "MISS"...)
	default:
		dst = append(dst, "HIT "...)
		dst = appendHex(dst, sr.Record.Data.Hi)
		dst = append(dst, ':')
		dst = appendHex016(dst, sr.Record.Data.Lo)
	}
	if tr.Enabled() {
		tr.Span(trace.KindEncode, encStart)
	}
	return dst
}

// asciiEqualFold is a case-insensitive ASCII comparison (the command
// words are ASCII by construction).
func asciiEqualFold(s, t string) bool {
	if len(s) != len(t) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c, d := s[i], t[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if d >= 'a' && d <= 'z' {
			d -= 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}
