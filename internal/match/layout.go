// Package match implements the match-processor side of CA-RAM (§3.1,
// §3.3): how records are laid out inside a memory row, the four-stage
// match pipeline (expand search key, calculate match vector, decode
// match vector, extract result), the Figure 4(b) comparator with both
// don't-care inputs, and the synthesis cost model calibrated against
// the paper's Table 1.
package match

import (
	"fmt"

	"caram/internal/bitutil"
)

// Record is one searchable entry: a (possibly ternary) key plus an
// associated data item. Storing data alongside the key inside CA-RAM is
// the optimization §3.2 highlights as impractical in CAM.
type Record struct {
	Key  bitutil.Ternary
	Data bitutil.Vec128
}

// Layout describes how records are packed into a C-bit row. Each slot
// holds, in order from its base bit: a valid bit, the key value, the
// key mask (ternary layouts only — this is the 2-bits-per-symbol cost
// of ternary storage), and the data field. The auxiliary field of §3.1
// (overflow reach, occupancy) occupies the top AuxBits of the row.
type Layout struct {
	RowBits  int  // C
	KeyBits  int  // N, 1..128
	DataBits int  // 0..128
	Ternary  bool // store an N-bit mask with every key
	AuxBits  int  // top-of-row auxiliary field, 0..64
}

// Validate checks the layout and returns a descriptive error when the
// geometry is impossible.
func (l Layout) Validate() error {
	if l.KeyBits < 1 || l.KeyBits > 128 {
		return fmt.Errorf("match: KeyBits %d outside [1,128]", l.KeyBits)
	}
	if l.DataBits < 0 || l.DataBits > 128 {
		return fmt.Errorf("match: DataBits %d outside [0,128]", l.DataBits)
	}
	if l.AuxBits < 0 || l.AuxBits > 64 {
		return fmt.Errorf("match: AuxBits %d outside [0,64]", l.AuxBits)
	}
	if l.RowBits <= 0 {
		return fmt.Errorf("match: RowBits %d must be positive", l.RowBits)
	}
	if l.Slots() < 1 {
		return fmt.Errorf("match: row of %d bits cannot hold one %d-bit slot plus %d aux bits",
			l.RowBits, l.SlotBits(), l.AuxBits)
	}
	return nil
}

// SlotBits returns the width of one record slot.
func (l Layout) SlotBits() int {
	bits := 1 + l.KeyBits + l.DataBits // valid + key + data
	if l.Ternary {
		bits += l.KeyBits // stored don't-care mask
	}
	return bits
}

// Slots returns S, the number of record slots per row — the paper's
// floor(C/N) generalized to slots carrying valid/mask/data bits.
func (l Layout) Slots() int {
	return (l.RowBits - l.AuxBits) / l.SlotBits()
}

// slotBase returns the bit offset of slot i.
func (l Layout) slotBase(i int) int { return i * l.SlotBits() }

// ReadSlot decodes slot i of a row. ok is false for an empty (invalid)
// slot.
func (l Layout) ReadSlot(row []uint64, i int) (rec Record, ok bool) {
	base := l.slotBase(i)
	if bitutil.GetBits(row, base, 1).IsZero() {
		return Record{}, false
	}
	off := base + 1
	rec.Key.Value = bitutil.GetBits(row, off, l.KeyBits)
	off += l.KeyBits
	if l.Ternary {
		rec.Key.Mask = bitutil.GetBits(row, off, l.KeyBits)
		off += l.KeyBits
	}
	rec.Data = bitutil.GetBits(row, off, l.DataBits)
	return rec, true
}

// WriteSlot encodes rec into slot i of a row and marks it valid. A
// non-empty mask on a binary (non-ternary) layout is rejected, because
// the row has no bits to store it.
func (l Layout) WriteSlot(row []uint64, i int, rec Record) error {
	if !l.Ternary && !rec.Key.Mask.IsZero() {
		return fmt.Errorf("match: ternary key in a binary layout")
	}
	base := l.slotBase(i)
	bitutil.SetBits(row, base, 1, bitutil.FromUint64(1))
	off := base + 1
	bitutil.SetBits(row, off, l.KeyBits, rec.Key.Value.AndNot(rec.Key.Mask))
	off += l.KeyBits
	if l.Ternary {
		bitutil.SetBits(row, off, l.KeyBits, rec.Key.Mask)
		off += l.KeyBits
	}
	bitutil.SetBits(row, off, l.DataBits, rec.Data)
	return nil
}

// ClearSlot invalidates slot i (its stale key/data bits are zeroed too,
// so RAM-mode dumps stay clean).
func (l Layout) ClearSlot(row []uint64, i int) {
	bitutil.SetBits(row, l.slotBase(i), l.SlotBits(), bitutil.Vec128{})
}

// SlotValid reports whether slot i holds a record.
func (l Layout) SlotValid(row []uint64, i int) bool {
	return !bitutil.GetBits(row, l.slotBase(i), 1).IsZero()
}

// ReadAux returns the row's auxiliary field (0 when AuxBits is 0).
func (l Layout) ReadAux(row []uint64) uint64 {
	return bitutil.GetBits(row, l.RowBits-l.AuxBits, l.AuxBits).Uint64()
}

// WriteAux stores v into the row's auxiliary field, truncated to
// AuxBits.
func (l Layout) WriteAux(row []uint64, v uint64) {
	bitutil.SetBits(row, l.RowBits-l.AuxBits, l.AuxBits, bitutil.FromUint64(v))
}

// OccupiedSlots counts valid slots in the row.
func (l Layout) OccupiedSlots(row []uint64) int {
	n := 0
	for i := 0; i < l.Slots(); i++ {
		if l.SlotValid(row, i) {
			n++
		}
	}
	return n
}
