package match

import (
	"caram/internal/bitutil"
)

// Searcher is a private comparator bank for one concurrent reader: the
// same compiled word-parallel kernel a Processor runs, minus every
// piece of shared mutable state. A Processor's expansion cache, match
// vector and statistics counters make it single-owner; the lock-free
// search path (caram.Reader) instead gives each reader goroutine its
// own Searcher, the software analogue of §3.3's observation that match
// logic is stateless combinational hardware — replicating a comparator
// bank costs area, never coherence.
//
// A Searcher keeps no statistics (the caram layer's atomic counters
// account for lock-free lookups) and owns only its matcher's expansion
// scratch, so distinct Searchers over one layout never share a written
// word. It is still single-owner: one goroutine per Searcher.
type Searcher struct {
	layout Layout
	p      int
	m      *matcher
}

// NewSearcher compiles a comparator bank over the layout. p <= 0 means
// one match processor per slot, as in NewProcessor.
func NewSearcher(layout Layout, p int) *Searcher {
	if p <= 0 {
		p = layout.Slots()
	}
	return &Searcher{layout: layout, p: p, m: newMatcher(layout)}
}

// Layout returns the record layout the searcher decodes.
func (sr *Searcher) Layout() Layout { return sr.layout }

// SearchInto runs the match pipeline over one row, writing the match
// vector into res.Vector's backing array (grown only when too small).
// All other Result fields are overwritten. Identical results to
// Processor.SearchInto; the row is typically a seqlock snapshot owned
// by the same reader.
func (sr *Searcher) SearchInto(res *Result, row []uint64, search bitutil.Ternary) {
	need := (sr.layout.Slots() + 63) / 64
	if cap(res.Vector) < need {
		res.Vector = make([]uint64, need)
	} else {
		res.Vector = res.Vector[:need]
	}
	sr.m.expand(search)
	first, count, valid := sr.m.matchRow(res.Vector, row)
	res.First = first
	res.Count = count
	res.Passes = (sr.layout.Slots() + sr.p - 1) / sr.p
	res.SlotsTested = valid
	res.Record = Record{}
	if first >= 0 {
		res.Record, _ = sr.layout.ReadSlot(row, first)
	}
}
