package match

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"caram/internal/bitutil"
)

// These tests pin the word-parallel kernel (Search) to the slot-serial
// oracle (SearchSerial): for any layout, any row image — including raw
// random words never produced by WriteSlot — and any ternary search
// key, the two paths must agree on the match vector, the priority
// encoder's output, the multi-match flag, the extracted record, the
// pass count, and every statistics counter.

func randomLayout(rng *rand.Rand) Layout {
	for {
		var kb int
		switch rng.Intn(3) {
		case 0:
			kb = 1 + rng.Intn(8) // small keys → many slots, S > 64
		case 1:
			kb = 1 + rng.Intn(32)
		default:
			kb = 1 + rng.Intn(128)
		}
		l := Layout{
			KeyBits:  kb,
			DataBits: rng.Intn(129),
			Ternary:  rng.Intn(2) == 1,
			AuxBits:  rng.Intn(65),
		}
		slots := 1 + rng.Intn(80)
		// Leave random slack below the aux field so slot regions do not
		// tile the row exactly.
		l.RowBits = l.AuxBits + slots*l.SlotBits() + rng.Intn(l.SlotBits())
		if l.Validate() == nil {
			return l
		}
	}
}

func randomVec(rng *rand.Rand) bitutil.Vec128 {
	return bitutil.FromParts(rng.Uint64(), rng.Uint64())
}

// randomTernary draws a search or stored key; width<=128 truncates, and
// sparse masks keep exact matches reachable.
func randomTernary(rng *rand.Rand, width int, ternary bool) bitutil.Ternary {
	k := bitutil.Ternary{Value: randomVec(rng).Trunc(width)}
	if ternary && rng.Intn(2) == 0 {
		k.Mask = randomVec(rng).And(randomVec(rng)).Trunc(width)
	}
	return k
}

// randomRow builds either a structured row via WriteSlot (duplicate keys
// planted to force multi-match) or raw random words (the kernel must
// agree with the oracle even on images WriteSlot cannot produce).
func randomRow(rng *rand.Rand, l Layout) (row []uint64, stored []bitutil.Ternary) {
	row = make([]uint64, bitutil.RowWords(l.RowBits))
	if rng.Intn(3) == 0 {
		for i := range row {
			row[i] = rng.Uint64()
		}
		for i := 0; i < l.Slots(); i++ {
			if rec, ok := l.ReadSlot(row, i); ok {
				stored = append(stored, rec.Key)
			}
		}
		return row, stored
	}
	for i := 0; i < l.Slots(); i++ {
		if rng.Intn(3) == 0 {
			continue // leave invalid
		}
		var k bitutil.Ternary
		if len(stored) > 0 && rng.Intn(3) == 0 {
			k = stored[rng.Intn(len(stored))] // duplicate → multi-match
		} else {
			k = randomTernary(rng, l.KeyBits, l.Ternary)
		}
		rec := Record{Key: k, Data: randomVec(rng).Trunc(l.DataBits)}
		if err := l.WriteSlot(row, i, rec); err != nil {
			continue
		}
		stored = append(stored, k)
	}
	if l.AuxBits > 0 {
		l.WriteAux(row, rng.Uint64())
	}
	return row, stored
}

// randomSearch draws search keys that cover hits, misses, masked
// searches, and cared-for bits above KeyBits (which must miss the whole
// row on both paths).
func randomSearch(rng *rand.Rand, l Layout, stored []bitutil.Ternary) bitutil.Ternary {
	switch rng.Intn(4) {
	case 0:
		if len(stored) > 0 {
			k := stored[rng.Intn(len(stored))]
			return bitutil.Ternary{Value: k.Value} // exact probe of a stored key
		}
		fallthrough
	case 1:
		return randomTernary(rng, l.KeyBits, true)
	case 2: // masked search key, any layout
		return bitutil.Ternary{
			Value: randomVec(rng).Trunc(l.KeyBits),
			Mask:  randomVec(rng).And(randomVec(rng)).Trunc(l.KeyBits),
		}
	default: // full-width 128-bit search, bits above KeyBits in play
		return bitutil.Ternary{
			Value: randomVec(rng),
			Mask:  randomVec(rng).And(randomVec(rng)),
		}
	}
}

// checkEquivalence runs one search through both paths on fresh-stat
// processors and reports the first divergence.
func checkEquivalence(t testing.TB, l Layout, p int, row []uint64, search bitutil.Ternary) {
	t.Helper()
	kern := NewProcessor(l, p)
	oracle := NewProcessor(l, p)
	got := kern.Search(row, search)
	want := oracle.SearchSerial(row, search)

	ctx := func() string {
		return fmt.Sprintf("layout=%+v p=%d search=%s", l, p, search.String(128))
	}
	if got.First != want.First || got.Count != want.Count ||
		got.Multi() != want.Multi() || got.Matched() != want.Matched() {
		t.Fatalf("%s: kernel First=%d Count=%d, oracle First=%d Count=%d",
			ctx(), got.First, got.Count, want.First, want.Count)
	}
	if got.Passes != want.Passes {
		t.Fatalf("%s: kernel Passes=%d, oracle Passes=%d", ctx(), got.Passes, want.Passes)
	}
	if got.Record != want.Record {
		t.Fatalf("%s: kernel Record=%+v, oracle Record=%+v", ctx(), got.Record, want.Record)
	}
	if len(got.Vector) != len(want.Vector) {
		t.Fatalf("%s: vector length %d vs %d", ctx(), len(got.Vector), len(want.Vector))
	}
	for w := range got.Vector {
		if got.Vector[w] != want.Vector[w] {
			t.Fatalf("%s: vector word %d = %#x, oracle %#x",
				ctx(), w, got.Vector[w], want.Vector[w])
		}
	}
	if ks, os := kern.Stats(), oracle.Stats(); ks != os {
		t.Fatalf("%s: kernel stats %+v, oracle stats %+v", ctx(), ks, os)
	}
	// SearchAllAppend must surface exactly the matched slots, in order.
	recs := kern.SearchAllAppend(nil, row, search)
	if len(recs) != want.Count {
		t.Fatalf("%s: SearchAllAppend returned %d records, want %d", ctx(), len(recs), want.Count)
	}
	if want.Count > 0 && recs[0] != want.Record {
		t.Fatalf("%s: SearchAllAppend[0]=%+v, want %+v", ctx(), recs[0], want.Record)
	}
}

func randomP(rng *rand.Rand, l Layout) int {
	switch rng.Intn(3) {
	case 0:
		return 0 // P = S
	case 1:
		return 1 // maximal pass count
	default:
		return 1 + rng.Intn(l.Slots()) // S > P in general
	}
}

// TestKernelMatchesSerialRandom sweeps many random scenarios with
// readable failure output.
func TestKernelMatchesSerialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		l := randomLayout(rng)
		p := randomP(rng, l)
		row, stored := randomRow(rng, l)
		for s := 0; s < 4; s++ {
			checkEquivalence(t, l, p, row, randomSearch(rng, l, stored))
		}
	}
}

// TestKernelMatchesSerialQuick states the equivalence as a testing/quick
// property over the seed space.
func TestKernelMatchesSerialQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLayout(rng)
		p := randomP(rng, l)
		row, stored := randomRow(rng, l)
		search := randomSearch(rng, l, stored)

		kern := NewProcessor(l, p)
		oracle := NewProcessor(l, p)
		got := kern.Search(row, search)
		want := oracle.SearchSerial(row, search)
		if got.First != want.First || got.Count != want.Count ||
			got.Passes != want.Passes || got.Record != want.Record {
			return false
		}
		for w := range got.Vector {
			if got.Vector[w] != want.Vector[w] {
				return false
			}
		}
		return kern.Stats() == oracle.Stats()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelExpansionCacheAcrossRows reuses one processor for a probe
// chain (same key, many rows) and interleaves key changes, exercising
// the expansion cache the way Slice.Lookup does.
func TestKernelExpansionCacheAcrossRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		l := randomLayout(rng)
		p := randomP(rng, l)
		kern := NewProcessor(l, p)
		oracle := NewProcessor(l, p)
		var searches []bitutil.Ternary
		var rows [][]uint64
		var allStored []bitutil.Ternary
		for r := 0; r < 4; r++ {
			row, stored := randomRow(rng, l)
			rows = append(rows, row)
			allStored = append(allStored, stored...)
		}
		for s := 0; s < 3; s++ {
			searches = append(searches, randomSearch(rng, l, allStored))
		}
		for _, search := range searches {
			for _, row := range rows { // same key across the chain → cached expansion
				got := kern.Search(row, search)
				want := oracle.SearchSerial(row, search)
				if got.First != want.First || got.Count != want.Count {
					t.Fatalf("layout=%+v search=%s: kernel (%d,%d) oracle (%d,%d)",
						l, search.String(128), got.First, got.Count, want.First, want.Count)
				}
			}
		}
		if kern.Stats() != oracle.Stats() {
			t.Fatalf("layout=%+v: stats diverged: %+v vs %+v", l, kern.Stats(), oracle.Stats())
		}
	}
}

// fuzzReader deals bytes from the fuzz corpus; exhausted reads return
// zero so every input shapes a valid scenario.
type fuzzReader struct{ data []byte }

func (f *fuzzReader) byte() byte {
	if len(f.data) == 0 {
		return 0
	}
	b := f.data[0]
	f.data = f.data[1:]
	return b
}

func (f *fuzzReader) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(f.byte())
	}
	return v
}

// FuzzKernelVsSerial lets the fuzzer shape the layout, the raw row
// image, and the search key directly from corpus bytes.
func FuzzKernelVsSerial(f *testing.F) {
	f.Add([]byte{4, 8, 1, 0, 0, 3, 0xff, 0xaa, 0x55, 0, 1, 2, 3})
	f.Add([]byte{64, 32, 0, 8, 1, 7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{128, 128, 1, 64, 0, 1, 0xde, 0xad, 0xbe, 0xef})
	f.Add([]byte{1, 0, 0, 0, 9, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := &fuzzReader{data}
		l := Layout{
			KeyBits:  1 + int(fz.byte())%128,
			DataBits: int(fz.byte()) % 129,
			Ternary:  fz.byte()&1 == 1,
			AuxBits:  int(fz.byte()) % 65,
		}
		slots := 1 + int(fz.byte())%70
		l.RowBits = l.AuxBits + slots*l.SlotBits() + int(fz.byte())%l.SlotBits()
		if l.Validate() != nil {
			t.Skip()
		}
		p := 1 + int(fz.byte())%l.Slots()
		row := make([]uint64, bitutil.RowWords(l.RowBits))
		for i := range row {
			row[i] = fz.u64()
		}
		searches := []bitutil.Ternary{
			{Value: bitutil.FromParts(fz.u64(), fz.u64()),
				Mask: bitutil.FromParts(fz.u64(), fz.u64())},
		}
		// A truncated variant probes within the key width, and slot 0's
		// own key (when valid) probes a guaranteed hit.
		searches = append(searches, bitutil.Ternary{
			Value: searches[0].Value.Trunc(l.KeyBits),
			Mask:  searches[0].Mask.Trunc(l.KeyBits),
		})
		if rec, ok := l.ReadSlot(row, 0); ok {
			searches = append(searches, bitutil.Ternary{Value: rec.Key.Value})
		}
		for _, search := range searches {
			checkEquivalence(t, l, p, row, search)
		}
	})
}
