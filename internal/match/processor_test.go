package match

import (
	"testing"

	"caram/internal/bitutil"
)

func newRow(t *testing.T, l Layout, recs ...Record) []uint64 {
	t.Helper()
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	for i, r := range recs {
		if err := l.WriteSlot(row, i, r); err != nil {
			t.Fatal(err)
		}
	}
	return row
}

func exactRec(key, data uint64) Record {
	return Record{Key: bitutil.Exact(bitutil.FromUint64(key)), Data: bitutil.FromUint64(data)}
}

func TestSearchExact(t *testing.T) {
	l := Layout{RowBits: 512, KeyBits: 32, DataBits: 16}
	pr := NewProcessor(l, 0)
	row := newRow(t, l, exactRec(10, 100), exactRec(20, 200), exactRec(30, 300))

	res := pr.Search(row, bitutil.Exact(bitutil.FromUint64(20)))
	if !res.Matched() || res.First != 1 || res.Count != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.Record.Data.Uint64() != 200 {
		t.Errorf("extracted data = %v", res.Record.Data)
	}
	if res.Multi() {
		t.Error("single match flagged as multi")
	}

	miss := pr.Search(row, bitutil.Exact(bitutil.FromUint64(99)))
	if miss.Matched() || miss.First != -1 || miss.Count != 0 {
		t.Errorf("miss result = %+v", miss)
	}
}

func TestSearchSkipsInvalidSlots(t *testing.T) {
	l := Layout{RowBits: 512, KeyBits: 32}
	pr := NewProcessor(l, 0)
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	// Slot 0 left invalid but with a matching bit pattern in its key
	// field: write then clear.
	if err := l.WriteSlot(row, 0, exactRec(7, 0)); err != nil {
		t.Fatal(err)
	}
	l.ClearSlot(row, 0)
	if err := l.WriteSlot(row, 2, exactRec(7, 0)); err != nil {
		t.Fatal(err)
	}
	res := pr.Search(row, bitutil.Exact(bitutil.FromUint64(7)))
	if res.First != 2 || res.Count != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestSearchTernaryAndMultiMatch(t *testing.T) {
	l := Layout{RowBits: 1024, KeyBits: 8, DataBits: 8, Ternary: true}
	pr := NewProcessor(l, 0)
	k1, _ := bitutil.ParseTernary("110XX000")
	k2, _ := bitutil.ParseTernary("1100X000")
	k3, _ := bitutil.ParseTernary("00000000")
	row := newRow(t, l,
		Record{Key: k1, Data: bitutil.FromUint64(1)},
		Record{Key: k2, Data: bitutil.FromUint64(2)},
		Record{Key: k3, Data: bitutil.FromUint64(3)},
	)
	res := pr.Search(row, bitutil.Exact(bitutil.FromUint64(0b11001000)))
	if res.Count != 2 || !res.Multi() {
		t.Fatalf("result = %+v", res)
	}
	if res.First != 0 || res.Record.Data.Uint64() != 1 {
		t.Errorf("priority encode picked slot %d", res.First)
	}
	if res.Vector[0] != 0b011 {
		t.Errorf("vector = %b", res.Vector[0])
	}
}

func TestSearchWithMaskedSearchKey(t *testing.T) {
	l := Layout{RowBits: 512, KeyBits: 16}
	pr := NewProcessor(l, 0)
	row := newRow(t, l, exactRec(0x1234, 0), exactRec(0x1235, 0), exactRec(0xff35, 0))
	// Search key masking: low 4 bits don't care.
	search := bitutil.NewTernary(bitutil.FromUint64(0x1230), bitutil.FromUint64(0x000f))
	res := pr.Search(row, search)
	if res.Count != 2 {
		t.Errorf("masked search matched %d, want 2", res.Count)
	}
}

func TestSearchAll(t *testing.T) {
	l := Layout{RowBits: 512, KeyBits: 16, DataBits: 16}
	pr := NewProcessor(l, 0)
	row := newRow(t, l, exactRec(5, 1), exactRec(6, 2), exactRec(5, 3))
	all := pr.SearchAll(row, bitutil.Exact(bitutil.FromUint64(5)))
	if len(all) != 2 || all[0].Data.Uint64() != 1 || all[1].Data.Uint64() != 3 {
		t.Errorf("SearchAll = %+v", all)
	}
	if got := pr.SearchAll(row, bitutil.Exact(bitutil.FromUint64(9))); got != nil {
		t.Errorf("SearchAll miss = %+v", got)
	}
}

func TestBestScoresLPMStyle(t *testing.T) {
	l := Layout{RowBits: 1024, KeyBits: 8, Ternary: true, DataBits: 8}
	pr := NewProcessor(l, 0)
	short, _ := bitutil.ParseTernary("11XXXXXX") // /2 prefix
	long, _ := bitutil.ParseTernary("1100XXXX")  // /4 prefix
	row := newRow(t, l,
		Record{Key: short, Data: bitutil.FromUint64(1)},
		Record{Key: long, Data: bitutil.FromUint64(2)},
	)
	rec, ok := pr.Best(row, bitutil.Exact(bitutil.FromUint64(0b11001111)), func(r Record) int {
		return r.Key.Specificity(8)
	})
	if !ok || rec.Data.Uint64() != 2 {
		t.Errorf("Best = %+v ok=%v, want the longer prefix", rec, ok)
	}
	if _, ok := pr.Best(row, bitutil.Exact(bitutil.FromUint64(0)), func(Record) int { return 0 }); ok {
		t.Error("Best matched on a miss")
	}
}

func TestPassesWithFewProcessors(t *testing.T) {
	l := Layout{RowBits: 33 * 10, KeyBits: 9} // 10-bit slots, 33 slots
	if l.Slots() != 33 {
		t.Fatalf("slots = %d", l.Slots())
	}
	pr := NewProcessor(l, 8)
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	res := pr.Search(row, bitutil.Exact(bitutil.Vec128{}))
	if res.Passes != 5 { // ceil(33/8)
		t.Errorf("Passes = %d, want 5", res.Passes)
	}
	if pr.P() != 8 {
		t.Errorf("P = %d", pr.P())
	}
	full := NewProcessor(l, 0)
	if full.P() != 33 {
		t.Errorf("default P = %d, want S", full.P())
	}
}

func TestPriorityEncode(t *testing.T) {
	cases := []struct {
		v    []uint64
		want int
	}{
		{[]uint64{0}, -1},
		{nil, -1},
		{[]uint64{1}, 0},
		{[]uint64{0b1000}, 3},
		{[]uint64{0, 1}, 64},
		{[]uint64{0, 0, 1 << 10}, 138},
	}
	for _, c := range cases {
		if got := PriorityEncode(c.v); got != c.want {
			t.Errorf("PriorityEncode(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestProcessorStats(t *testing.T) {
	l := Layout{RowBits: 512, KeyBits: 32}
	pr := NewProcessor(l, 0)
	row := newRow(t, l, exactRec(1, 0), exactRec(2, 0))
	pr.Search(row, bitutil.Exact(bitutil.FromUint64(1)))
	pr.Search(row, bitutil.Exact(bitutil.FromUint64(9)))
	s := pr.Stats()
	if s.Searches != 2 || s.SlotsTested != 4 || s.Matches != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Passes != 2 {
		t.Errorf("passes = %d", s.Passes)
	}
	pr.ResetStats()
	if pr.Stats() != (ProcessorStats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestVectorBeyond64Slots(t *testing.T) {
	// 96-slot row (trigram-style geometry, scaled down): the match
	// vector must span multiple words.
	l := Layout{RowBits: 96 * 9, KeyBits: 8}
	if l.Slots() != 96 {
		t.Fatalf("slots = %d", l.Slots())
	}
	pr := NewProcessor(l, 0)
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	if err := l.WriteSlot(row, 80, exactRec(0x42, 0)); err != nil {
		t.Fatal(err)
	}
	res := pr.Search(row, bitutil.Exact(bitutil.FromUint64(0x42)))
	if res.First != 80 {
		t.Errorf("First = %d", res.First)
	}
	if res.Vector[1] != 1<<16 {
		t.Errorf("vector word 1 = %b", res.Vector[1])
	}
}
