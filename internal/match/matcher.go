package match

import (
	"caram/internal/bitutil"
)

// matcher is the compiled comparator bank for one layout: the
// row-resident, word-parallel realization of §3.3 steps 1–2. Where the
// legacy path decodes every slot with ReadSlot and compares records one
// at a time, the matcher tests all slots of a fetched row at once with
// whole-uint64 XOR/mask sweeps (bitutil.CompareInto), exactly the shape
// of the Figure 4(b) comparator bank:
//
//	step 1 (expand)  — the search key is replicated across a row-sized
//	                   image, one copy per slot key field, overlapped
//	                   with the memory access in hardware (expand);
//	step 2 (match)   — diff = (row ^ image) & care &^ storedMask, where
//	                   care drops search-key don't-care bits and
//	                   storedMask is the row's own mask fields shifted
//	                   into key alignment (both don't-care directions);
//	                   a slot matches iff its valid+key region of diff
//	                   is all zero.
//
// Everything the matcher touches per search is pre-allocated at build
// time, so the kernel performs zero allocations per row.
type matcher struct {
	layout Layout
	words  int // row image size in uint64 words

	// Static images compiled from the layout.
	keyOnly   []uint64 // 1s over every slot's key-value field
	careExact []uint64 // keyOnly plus every slot's valid bit
	slots     []slotRef
	keyFields []int // bit offset of each slot's key-value field

	// Per-search scratch.
	expValue []uint64 // valid bits preset to 1; key fields hold the expanded key
	expCare  []uint64 // careExact with search-key don't-care bits dropped
	shifted  []uint64 // ternary layouts: row >> KeyBits, masked to key fields
	diff     []uint64 // cared mismatch bits of the current row

	// Expansion cache: re-expanding is skipped while consecutive
	// searches carry the same ternary key (the common case inside one
	// probe chain).
	curCare    []uint64
	last       bitutil.Ternary
	have       bool
	impossible bool // the key cares about bits above KeyBits: nothing can match
}

// slotRef locates one slot's comparator inputs inside the row image.
type slotRef struct {
	validWord  int  // word holding the slot's valid bit
	validShift uint // bit position of the valid bit within that word
	nparts     int
	parts      [3]slotPart // words covering [base, base+1+KeyBits)
}

// slotPart selects the slice of one word belonging to a slot's
// valid+key region.
type slotPart struct {
	word int
	mask uint64
}

// newMatcher compiles the comparator bank for a layout.
func newMatcher(l Layout) *matcher {
	words := bitutil.RowWords(l.RowBits)
	s := l.Slots()
	m := &matcher{
		layout:    l,
		words:     words,
		keyOnly:   make([]uint64, words),
		careExact: make([]uint64, words),
		slots:     make([]slotRef, s),
		keyFields: make([]int, s),
		expValue:  make([]uint64, words),
		expCare:   make([]uint64, words),
		diff:      make([]uint64, words),
	}
	if l.Ternary {
		m.shifted = make([]uint64, words)
	}
	one := bitutil.FromUint64(1)
	keyMask := bitutil.Mask(l.KeyBits)
	for i := 0; i < s; i++ {
		base := l.slotBase(i)
		off := base + 1 // key-value field
		m.keyFields[i] = off
		bitutil.SetBits(m.careExact, base, 1, one)
		bitutil.SetBits(m.careExact, off, l.KeyBits, keyMask)
		bitutil.SetBits(m.keyOnly, off, l.KeyBits, keyMask)
		// A slot only matches when its valid bit is 1, so the expanded
		// image demands a 1 there; the bit never changes across searches.
		bitutil.SetBits(m.expValue, base, 1, one)

		sr := &m.slots[i]
		sr.validWord, sr.validShift = base/64, uint(base%64)
		lo, hi := base, base+1+l.KeyBits // the slot's valid+key region
		for w := lo / 64; w*64 < hi; w++ {
			mask := ^uint64(0)
			if d := lo - w*64; d > 0 {
				mask &= ^uint64(0) << uint(d)
			}
			if d := (w+1)*64 - hi; d > 0 {
				mask &= ^uint64(0) >> uint(d)
			}
			sr.parts[sr.nparts] = slotPart{word: w, mask: mask}
			sr.nparts++
		}
	}
	copy(m.expCare, m.careExact)
	m.curCare = m.careExact
	return m
}

// expand replicates the search key across the row image (§3.3 step 1).
// Consecutive searches with an identical key skip the work, so a probe
// chain expands once however many rows it visits.
func (m *matcher) expand(search bitutil.Ternary) {
	if m.have && search.Value == m.last.Value && search.Mask == m.last.Mask {
		return
	}
	m.last, m.have = search, true
	width := bitutil.Mask(m.layout.KeyBits)
	// A cared-for search bit above KeyBits can never equal a stored key
	// bit (the field truncates on write, so those bits read back zero
	// only when the search itself is zero there) — unless it is zero,
	// the whole row misses. This mirrors the legacy path, where the full
	// 128-bit ternary compare fails for every slot.
	m.impossible = !search.Value.AndNot(search.Mask).AndNot(width).IsZero()
	if m.impossible {
		return
	}
	for _, off := range m.keyFields {
		bitutil.SetBits(m.expValue, off, m.layout.KeyBits, search.Value)
	}
	if search.Mask.IsZero() {
		m.curCare = m.careExact
		return
	}
	m.curCare = m.expCare
	nm := width.AndNot(search.Mask)
	for _, off := range m.keyFields {
		bitutil.SetBits(m.expCare, off, m.layout.KeyBits, nm)
	}
}

// matchRow runs the comparator bank over one fetched row (§3.3 step 2)
// and priority-scans the result (step 3): the match vector lands in
// vec (len (S+63)/64, fully overwritten), and the return values carry
// the priority encoder's output plus the number of valid slots tested.
// expand must have been called for the current search key.
func (m *matcher) matchRow(vec, row []uint64) (first, count, valid int) {
	first = -1
	for i := range vec {
		vec[i] = 0
	}
	if m.impossible {
		// No slot can match, but the comparators still test every valid
		// slot — the stats contract of the slot-serial path.
		for i := range m.slots {
			sr := &m.slots[i]
			if sr.validWord < len(row) && row[sr.validWord]>>sr.validShift&1 == 1 {
				valid++
			}
		}
		return first, 0, valid
	}
	diff := m.diff
	if m.layout.Ternary {
		// Align every slot's stored don't-care mask with its own key
		// field in one row-wide shift, then silence those comparators.
		bitutil.ShrInto(m.shifted, row, m.layout.KeyBits)
		bitutil.AndInto(m.shifted, m.shifted, m.keyOnly)
		bitutil.CompareTernaryInto(diff, row, m.expValue, m.curCare, m.shifted)
	} else {
		bitutil.CompareInto(diff, row, m.expValue, m.curCare)
	}
	for i := range m.slots {
		sr := &m.slots[i]
		d := diff[sr.parts[0].word] & sr.parts[0].mask
		for k := 1; k < sr.nparts; k++ {
			d |= diff[sr.parts[k].word] & sr.parts[k].mask
		}
		// An invalid slot surfaces as a set valid bit in diff (the image
		// demands 1, missing row words read as zero), so it is neither
		// tested nor matchable.
		if diff[sr.validWord]>>sr.validShift&1 == 1 {
			continue
		}
		valid++
		if d != 0 {
			continue
		}
		vec[i>>6] |= 1 << uint(i&63)
		count++
		if first < 0 {
			first = i
		}
	}
	return first, count, valid
}
