package match

import (
	"testing"

	"caram/internal/bitutil"
)

// TestSearchZeroAlloc is the alloc-regression guard for the core match
// path: one row search through the word-parallel kernel must not
// allocate, hit or miss, binary or ternary. `make alloc-guard` (part of
// `make ci`) runs every *ZeroAlloc test.
func TestSearchZeroAlloc(t *testing.T) {
	for _, tern := range []bool{false, true} {
		l := Layout{RowBits: 8*(1+64+32) + 8, KeyBits: 64, DataBits: 32}
		if tern {
			l = Layout{RowBits: 4*(1+2*64+32) + 8, KeyBits: 64, DataBits: 32, Ternary: true}
		}
		pr := NewProcessor(l, 0)
		row := make([]uint64, bitutil.RowWords(l.RowBits))
		for i := 0; i < l.Slots(); i++ {
			if err := l.WriteSlot(row, i, Record{
				Key:  bitutil.Ternary{Value: bitutil.FromUint64(uint64(0x1000 + i))},
				Data: bitutil.FromUint64(uint64(i)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		hit := bitutil.Ternary{Value: bitutil.FromUint64(0x1001)}
		miss := bitutil.Ternary{Value: bitutil.FromUint64(0xffff)}
		if n := testing.AllocsPerRun(200, func() {
			pr.Search(row, hit)
			pr.Search(row, miss)
		}); n != 0 {
			t.Fatalf("ternary=%v: Search allocated %.1f times per run, want 0", tern, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			pr.Best(row, hit, func(r Record) int { return int(r.Data.Uint64()) })
		}); n != 0 {
			t.Fatalf("ternary=%v: Best allocated %.1f times per run, want 0", tern, n)
		}
	}
}
