package match

import "math"

// Synthesis cost model for the match processor, calibrated to the
// paper's Table 1: a 0.16 µm standard-cell synthesis of the prototype
// with C = 1600 and configurable key sizes (1–16 bytes, so up to
// 200 slots to decode). At the calibration point the model reproduces
// Table 1 exactly; away from it, each stage scales with the quantity
// that dominates its logic:
//
//   - expand search key:    wiring/muxing across the whole row  -> ~C
//   - calculate match vector: one comparator bit per row bit    -> ~C
//   - decode match vector:  priority encoder over S slots       -> cells ~S, delay ~log2 S
//   - extract result:       data multiplexer across the row     -> cells ~C, delay ~log2 S
//
// The expand stage is overlapped with the memory access (its latency is
// hidden), so it never contributes to the critical path: Table 1's
// 4.85 ns total is match + decode + extract.

// Calibration constants — Table 1 verbatim.
const (
	calRowBits = 1600
	calSlots   = 200 // C=1600 with the smallest (1-byte) key
	calVDD     = 1.8
	calPowerMW = 60.8 // worst-case dynamic power @ 0.5 activity, 6 ns clock
)

// StageCost is one row of Table 1.
type StageCost struct {
	Name    string
	Cells   int
	AreaUm2 float64
	DelayNs float64
	Hidden  bool // latency overlapped with the memory access
}

// SynthesisResult aggregates the four stages.
type SynthesisResult struct {
	Stages  []StageCost
	RowBits int
	KeyBits int
}

// table1 holds the calibration rows (cells, µm², ns).
var table1 = []StageCost{
	{Name: "Expand search key", Cells: 3804, AreaUm2: 66228, DelayNs: 0.89, Hidden: true},
	{Name: "Calculate match vector", Cells: 5252, AreaUm2: 10591, DelayNs: 0.95},
	{Name: "Decode match vector", Cells: 899, AreaUm2: 1970, DelayNs: 1.91},
	{Name: "Extract result", Cells: 6037, AreaUm2: 21775, DelayNs: 1.99},
}

// Synthesize estimates the match-processor cost for a row of rowBits
// bits holding keyBits-bit keys. rowBits = 1600 reproduces Table 1
// exactly (the prototype's slot count is keyed to its worst-case
// 1-byte key, so keyBits only affects the decode/extract scaling).
func Synthesize(rowBits, keyBits int) SynthesisResult {
	if rowBits <= 0 {
		rowBits = calRowBits
	}
	if keyBits <= 0 {
		keyBits = 8
	}
	slots := rowBits / keyBits
	if slots < 1 {
		slots = 1
	}
	// The prototype decodes up to calSlots slots; a fixed-key design
	// only pays for its own slot count. rowBits=calRowBits keeps the
	// calibration rows untouched regardless of keyBits, matching how
	// Table 1 reports a single synthesis covering all key sizes.
	cRatio := float64(rowBits) / calRowBits
	sRatio := cRatio
	dRatio := 1.0
	if rowBits != calRowBits {
		sRatio = float64(slots) / calSlots
		dRatio = math.Log2(float64(slots)+1) / math.Log2(calSlots+1)
	}
	out := SynthesisResult{RowBits: rowBits, KeyBits: keyBits}
	for _, st := range table1 {
		scaled := st
		switch st.Name {
		case "Decode match vector":
			scaled.Cells = scaleInt(st.Cells, sRatio)
			scaled.AreaUm2 = st.AreaUm2 * sRatio
			scaled.DelayNs = st.DelayNs * dRatio
		case "Extract result":
			scaled.Cells = scaleInt(st.Cells, cRatio)
			scaled.AreaUm2 = st.AreaUm2 * cRatio
			scaled.DelayNs = st.DelayNs * dRatio
		default: // expand, match: row-wide bit-parallel logic
			scaled.Cells = scaleInt(st.Cells, cRatio)
			scaled.AreaUm2 = st.AreaUm2 * cRatio
		}
		out.Stages = append(out.Stages, scaled)
	}
	return out
}

func scaleInt(v int, r float64) int { return int(math.Round(float64(v) * r)) }

// TotalCells sums the stage cell counts.
func (s SynthesisResult) TotalCells() int {
	n := 0
	for _, st := range s.Stages {
		n += st.Cells
	}
	return n
}

// TotalAreaUm2 sums the stage areas.
func (s SynthesisResult) TotalAreaUm2() float64 {
	a := 0.0
	for _, st := range s.Stages {
		a += st.AreaUm2
	}
	return a
}

// CriticalPathNs sums the delays of the non-hidden stages — the
// latency that must fit in one clock cycle.
func (s SynthesisResult) CriticalPathNs() float64 {
	d := 0.0
	for _, st := range s.Stages {
		if !st.Hidden {
			d += st.DelayNs
		}
	}
	return d
}

// FitsCycleMHz reports whether the match pipeline fits in a single
// cycle at the given clock frequency (the paper: "a latency that will
// fit in a single cycle at over 200 MHz").
func (s SynthesisResult) FitsCycleMHz(freqMHz float64) bool {
	if freqMHz <= 0 {
		return false
	}
	return s.CriticalPathNs() <= 1e3/freqMHz
}

// DynamicPowerMW estimates worst-case dynamic power, scaling the
// calibration point (60.8 mW at VDD = 1.8 V, activity 0.5, 6 ns clock)
// with cell count, frequency, activity, and VDD squared.
func (s SynthesisResult) DynamicPowerMW(freqMHz, activity, vdd float64) float64 {
	if freqMHz <= 0 || activity < 0 || vdd <= 0 {
		return 0
	}
	calFreq := 1e3 / 6.0 // 6 ns clock
	cellRatio := float64(s.TotalCells()) / float64(Synthesize(calRowBits, 8).TotalCells())
	return calPowerMW * cellRatio * (freqMHz / calFreq) * (activity / 0.5) * (vdd * vdd) / (calVDD * calVDD)
}
