package match

import (
	"math"
	"testing"
)

func TestSynthesizeReproducesTable1(t *testing.T) {
	s := Synthesize(1600, 8)
	want := []struct {
		name  string
		cells int
		area  float64
		delay float64
	}{
		{"Expand search key", 3804, 66228, 0.89},
		{"Calculate match vector", 5252, 10591, 0.95},
		{"Decode match vector", 899, 1970, 1.91},
		{"Extract result", 6037, 21775, 1.99},
	}
	if len(s.Stages) != len(want) {
		t.Fatalf("got %d stages", len(s.Stages))
	}
	for i, w := range want {
		st := s.Stages[i]
		if st.Name != w.name || st.Cells != w.cells || st.AreaUm2 != w.area || st.DelayNs != w.delay {
			t.Errorf("stage %d = %+v, want %+v", i, st, w)
		}
	}
	if got := s.TotalCells(); got != 15992 {
		t.Errorf("TotalCells = %d, want 15992", got)
	}
	if got := s.TotalAreaUm2(); got != 100564 {
		t.Errorf("TotalArea = %f, want 100564", got)
	}
	if got := s.CriticalPathNs(); math.Abs(got-4.85) > 1e-9 {
		t.Errorf("CriticalPath = %f, want 4.85", got)
	}
}

func TestTable1IndependentOfKeySizeAtCalibration(t *testing.T) {
	// The prototype's single synthesis covers all key sizes: at C=1600
	// the reported numbers must not change with keyBits.
	for _, kb := range []int{8, 16, 32, 64, 128} {
		s := Synthesize(1600, kb)
		if s.TotalCells() != 15992 {
			t.Errorf("keyBits=%d: TotalCells = %d", kb, s.TotalCells())
		}
	}
}

func TestFitsCycle(t *testing.T) {
	s := Synthesize(1600, 8)
	// Paper: fits a single cycle at over 200 MHz (period 5 ns > 4.85 ns).
	if !s.FitsCycleMHz(200) {
		t.Error("should fit at 200 MHz")
	}
	if !s.FitsCycleMHz(206) {
		t.Error("should fit just over 200 MHz")
	}
	if s.FitsCycleMHz(250) {
		t.Error("must not fit at 250 MHz (4 ns period)")
	}
	if s.FitsCycleMHz(0) || s.FitsCycleMHz(-5) {
		t.Error("nonpositive frequency must not fit")
	}
}

func TestSynthesisScaling(t *testing.T) {
	base := Synthesize(1600, 8)
	half := Synthesize(800, 8)
	double := Synthesize(3200, 8)
	if half.TotalCells() >= base.TotalCells() {
		t.Error("halving C should shrink the processor")
	}
	if double.TotalCells() <= base.TotalCells() {
		t.Error("doubling C should grow the processor")
	}
	// Decode delay grows with slot count (log2): more slots, longer path.
	if double.CriticalPathNs() <= base.CriticalPathNs() {
		t.Error("doubling C should lengthen the critical path")
	}
	// Wider keys mean fewer slots to decode: shorter or equal path.
	wide := Synthesize(3200, 128)
	if wide.CriticalPathNs() > double.CriticalPathNs() {
		t.Error("wider keys should not lengthen decode")
	}
}

func TestSynthesizeDefaults(t *testing.T) {
	s := Synthesize(0, 0)
	if s.TotalCells() != 15992 {
		t.Errorf("defaults should hit the calibration point, got %d cells", s.TotalCells())
	}
	tiny := Synthesize(4, 128) // fewer bits than a key: clamps to 1 slot
	if tiny.TotalCells() <= 0 {
		t.Error("degenerate geometry should still synthesize")
	}
}

func TestDynamicPower(t *testing.T) {
	s := Synthesize(1600, 8)
	// Calibration point: 60.8 mW at 1/6ns, activity 0.5, 1.8 V.
	got := s.DynamicPowerMW(1e3/6.0, 0.5, 1.8)
	if math.Abs(got-60.8) > 1e-6 {
		t.Errorf("calibration power = %f, want 60.8", got)
	}
	// Power scales linearly with frequency.
	if p := s.DynamicPowerMW(2e3/6.0, 0.5, 1.8); math.Abs(p-2*60.8) > 1e-6 {
		t.Errorf("double frequency power = %f", p)
	}
	// And quadratically with VDD.
	if p := s.DynamicPowerMW(1e3/6.0, 0.5, 0.9); math.Abs(p-60.8/4) > 1e-6 {
		t.Errorf("half VDD power = %f", p)
	}
	if s.DynamicPowerMW(-1, 0.5, 1.8) != 0 || s.DynamicPowerMW(100, 0.5, 0) != 0 {
		t.Error("invalid inputs should give 0")
	}
}
