package match

import (
	"math/bits"

	"caram/internal/bitutil"
)

// Processor models the bank of P match processors attached to a CA-RAM
// slice. A search runs the four steps of §3.3 over one fetched row:
//
//  1. expand the search key across the row (overlapped with the memory
//     access, so it contributes no latency),
//  2. calculate the match vector — every slot compared in parallel with
//     the Figure 4(b) comparator (both don't-care directions),
//  3. decode the match vector with a priority encoder, detecting the
//     no-match and multi-match conditions,
//  4. extract the matched slot's data.
//
// When the row holds more slots than there are match processors
// (S > P), matching is divided into ceil(S/P) pipelined passes, as the
// paper describes for flexible key sizes.
//
// Steps 1–3 run on the word-parallel kernel (see matcher): the search
// key is expanded into a row-sized image once per distinct key, each
// fetched row is tested with whole-uint64 XOR/mask sweeps, and the
// match vector lands in processor-owned scratch — the hot path
// performs zero allocations per search. SearchSerial keeps the legacy
// slot-at-a-time pipeline as the behavioral oracle.
//
// A Processor is not safe for concurrent use: the kernel's expansion
// image, the scratch match vector and the statistics counters are all
// per-processor mutable state (the hardware analogue: one comparator
// bank per slice port).
type Processor struct {
	layout Layout
	p      int // number of match processor instances
	stats  ProcessorStats
	m      *matcher
	vec    []uint64 // scratch match vector handed out via Result.Vector
}

// ProcessorStats counts the work a processor bank has performed.
type ProcessorStats struct {
	Searches    uint64 // rows searched
	SlotsTested uint64 // slot comparisons performed
	Passes      uint64 // pipelined match passes (ceil(S/P) per search)
	Matches     uint64 // slots that matched
}

// NewProcessor builds a bank of p match processors over the given
// layout. p <= 0 means "one per slot" (P = S, the desirable case of
// §3.1).
func NewProcessor(layout Layout, p int) *Processor {
	if p <= 0 {
		p = layout.Slots()
	}
	return &Processor{
		layout: layout,
		p:      p,
		m:      newMatcher(layout),
		vec:    make([]uint64, (layout.Slots()+63)/64),
	}
}

// Layout returns the record layout the processor decodes.
func (pr *Processor) Layout() Layout { return pr.layout }

// P returns the number of match processor instances.
func (pr *Processor) P() int { return pr.p }

// Result is the outcome of searching one row.
type Result struct {
	// Vector has one bit per slot: 1 = that slot matched. Word 0 bit 0
	// is slot 0.
	//
	// Aliasing: when produced by Search, Vector is scratch owned by the
	// processor — it stays valid only until the processor's next
	// Search/SearchInto call, exactly like a hardware match-vector
	// latch that the next operation overwrites. Callers that retain a
	// Result across searches must Clone it first. SearchInto writes
	// into caller-provided scratch instead; SearchSerial allocates a
	// fresh vector.
	Vector []uint64
	// First is the priority-encoded match (lowest slot index), -1 if
	// none. Insertion order therefore defines match priority, which is
	// how the applications realize LPM inside a bucket.
	First int
	// Count is the number of matching slots; Count > 1 is the
	// multi-match condition step 3 must flag.
	Count int
	// Record is the extracted record at First (zero when First < 0).
	Record Record
	// Passes is how many pipelined passes this search needed.
	Passes int
	// SlotsTested is how many valid slots this search compared — the
	// per-row share of the processor's cumulative SlotsTested stat,
	// surfaced so request-scoped traces can attribute match work to
	// individual bucket probes.
	SlotsTested int
}

// Multi reports the multiple-match condition.
func (r Result) Multi() bool { return r.Count > 1 }

// Matched reports whether any slot matched.
func (r Result) Matched() bool { return r.First >= 0 }

// Clone returns a copy of the result whose Vector no longer aliases
// processor scratch, safe to retain across searches.
func (r Result) Clone() Result {
	r.Vector = append([]uint64(nil), r.Vector...)
	return r
}

// Search runs the match pipeline for a (possibly masked) search key
// over one row. The search key's mask implements search-key bit
// masking; stored masks implement ternary search — both may be active
// at once.
//
// The returned Result's Vector aliases processor-owned scratch (see
// Result.Vector); the call itself allocates nothing.
func (pr *Processor) Search(row []uint64, search bitutil.Ternary) Result {
	res := Result{Vector: pr.vec}
	pr.SearchInto(&res, row, search)
	return res
}

// SearchInto is Search writing its match vector into res.Vector's
// backing array (grown only when too small), for callers that own
// their scratch. All other Result fields are overwritten.
func (pr *Processor) SearchInto(res *Result, row []uint64, search bitutil.Ternary) {
	need := (pr.layout.Slots() + 63) / 64
	if cap(res.Vector) < need {
		res.Vector = make([]uint64, need)
	} else {
		res.Vector = res.Vector[:need]
	}
	pr.m.expand(search)
	first, count, valid := pr.m.matchRow(res.Vector, row)
	res.First = first
	res.Count = count
	res.Passes = (pr.layout.Slots() + pr.p - 1) / pr.p
	res.SlotsTested = valid
	res.Record = Record{}
	if first >= 0 {
		res.Record, _ = pr.layout.ReadSlot(row, first)
	}
	pr.stats.Searches++
	pr.stats.Passes += uint64(res.Passes)
	pr.stats.SlotsTested += uint64(valid)
	pr.stats.Matches += uint64(count)
}

// SearchSerial is the legacy slot-serial match pipeline: every slot is
// decoded with ReadSlot and compared on its own, and the match vector
// is freshly allocated. It is kept as the behavioral oracle for the
// word-parallel kernel — property and fuzz tests require the two paths
// to be bit-exact — and it updates the same statistics counters.
func (pr *Processor) SearchSerial(row []uint64, search bitutil.Ternary) Result {
	s := pr.layout.Slots()
	res := Result{
		Vector: make([]uint64, (s+63)/64),
		First:  -1,
		Passes: (s + pr.p - 1) / pr.p,
	}
	pr.stats.Searches++
	pr.stats.Passes += uint64(res.Passes)
	for i := 0; i < s; i++ {
		rec, ok := pr.layout.ReadSlot(row, i)
		if !ok {
			continue
		}
		pr.stats.SlotsTested++
		res.SlotsTested++
		if !rec.Key.Matches(search) {
			continue
		}
		res.Vector[i/64] |= 1 << uint(i%64)
		res.Count++
		if res.First < 0 {
			res.First = i
			res.Record = rec
		}
	}
	pr.stats.Matches += uint64(res.Count)
	return res
}

// SearchAll returns every matching record in slot order — the "massive
// data evaluation" capability the decoupled match logic enables (§1).
// It returns nil when nothing matches.
func (pr *Processor) SearchAll(row []uint64, search bitutil.Ternary) []Record {
	return pr.SearchAllAppend(nil, row, search)
}

// SearchAllAppend appends every matching record in slot order to dst
// and returns the extended slice — the allocation-free variant of
// SearchAll for callers that reuse a record buffer across rows.
func (pr *Processor) SearchAllAppend(dst []Record, row []uint64, search bitutil.Ternary) []Record {
	res := pr.Search(row, search)
	if res.Count == 0 {
		return dst
	}
	for i := 0; i < pr.layout.Slots(); i++ {
		if res.Vector[i/64]>>uint(i%64)&1 == 1 {
			rec, _ := pr.layout.ReadSlot(row, i)
			dst = append(dst, rec)
		}
	}
	return dst
}

// Best returns the matching record that maximizes the supplied score
// (ties broken toward the lower slot), or ok=false if nothing matched.
// This generalizes the priority encoder for applications, like LPM,
// where priority is a property of the record rather than its position.
// It allocates nothing.
func (pr *Processor) Best(row []uint64, search bitutil.Ternary, score func(Record) int) (rec Record, ok bool) {
	res := pr.Search(row, search)
	if res.Count == 0 {
		return Record{}, false
	}
	best, bestScore := Record{}, 0
	for i := 0; i < pr.layout.Slots(); i++ {
		if res.Vector[i/64]>>uint(i%64)&1 == 0 {
			continue
		}
		r, _ := pr.layout.ReadSlot(row, i)
		if sc := score(r); !ok || sc > bestScore {
			best, bestScore, ok = r, sc, true
		}
	}
	return best, ok
}

// PriorityEncode reduces a match vector to its lowest set bit index,
// -1 when empty — step 3 in isolation, exposed for tests and for the
// CAM baseline to share.
func PriorityEncode(vector []uint64) int {
	for w, v := range vector {
		if v != 0 {
			return w*64 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// Stats returns a snapshot of the processor's activity counters.
func (pr *Processor) Stats() ProcessorStats { return pr.stats }

// ResetStats zeroes the activity counters.
func (pr *Processor) ResetStats() { pr.stats = ProcessorStats{} }
