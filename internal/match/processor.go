package match

import (
	"math/bits"

	"caram/internal/bitutil"
)

// Processor models the bank of P match processors attached to a CA-RAM
// slice. A search runs the four steps of §3.3 over one fetched row:
//
//  1. expand the search key across the row (overlapped with the memory
//     access, so it contributes no latency),
//  2. calculate the match vector — every slot compared in parallel with
//     the Figure 4(b) comparator (both don't-care directions),
//  3. decode the match vector with a priority encoder, detecting the
//     no-match and multi-match conditions,
//  4. extract the matched slot's data.
//
// When the row holds more slots than there are match processors
// (S > P), matching is divided into ceil(S/P) pipelined passes, as the
// paper describes for flexible key sizes.
type Processor struct {
	layout Layout
	p      int // number of match processor instances
	stats  ProcessorStats
}

// ProcessorStats counts the work a processor bank has performed.
type ProcessorStats struct {
	Searches    uint64 // rows searched
	SlotsTested uint64 // slot comparisons performed
	Passes      uint64 // pipelined match passes (ceil(S/P) per search)
	Matches     uint64 // slots that matched
}

// NewProcessor builds a bank of p match processors over the given
// layout. p <= 0 means "one per slot" (P = S, the desirable case of
// §3.1).
func NewProcessor(layout Layout, p int) *Processor {
	if p <= 0 {
		p = layout.Slots()
	}
	return &Processor{layout: layout, p: p}
}

// Layout returns the record layout the processor decodes.
func (pr *Processor) Layout() Layout { return pr.layout }

// P returns the number of match processor instances.
func (pr *Processor) P() int { return pr.p }

// Result is the outcome of searching one row.
type Result struct {
	// Vector has one bit per slot: 1 = that slot matched. Word 0 bit 0
	// is slot 0.
	Vector []uint64
	// First is the priority-encoded match (lowest slot index), -1 if
	// none. Insertion order therefore defines match priority, which is
	// how the applications realize LPM inside a bucket.
	First int
	// Count is the number of matching slots; Count > 1 is the
	// multi-match condition step 3 must flag.
	Count int
	// Record is the extracted record at First (zero when First < 0).
	Record Record
	// Passes is how many pipelined passes this search needed.
	Passes int
}

// Multi reports the multiple-match condition.
func (r Result) Multi() bool { return r.Count > 1 }

// Matched reports whether any slot matched.
func (r Result) Matched() bool { return r.First >= 0 }

// Search runs the match pipeline for a (possibly masked) search key
// over one row. The search key's mask implements search-key bit
// masking; stored masks implement ternary search — both may be active
// at once.
func (pr *Processor) Search(row []uint64, search bitutil.Ternary) Result {
	s := pr.layout.Slots()
	res := Result{
		Vector: make([]uint64, (s+63)/64),
		First:  -1,
		Passes: (s + pr.p - 1) / pr.p,
	}
	pr.stats.Searches++
	pr.stats.Passes += uint64(res.Passes)
	for i := 0; i < s; i++ {
		rec, ok := pr.layout.ReadSlot(row, i)
		if !ok {
			continue
		}
		pr.stats.SlotsTested++
		if !rec.Key.Matches(search) {
			continue
		}
		res.Vector[i/64] |= 1 << uint(i%64)
		res.Count++
		if res.First < 0 {
			res.First = i
			res.Record = rec
		}
	}
	pr.stats.Matches += uint64(res.Count)
	return res
}

// SearchAll returns every matching record in slot order — the "massive
// data evaluation" capability the decoupled match logic enables (§1).
func (pr *Processor) SearchAll(row []uint64, search bitutil.Ternary) []Record {
	res := pr.Search(row, search)
	if res.Count == 0 {
		return nil
	}
	out := make([]Record, 0, res.Count)
	for i := 0; i < pr.layout.Slots(); i++ {
		if res.Vector[i/64]>>uint(i%64)&1 == 1 {
			rec, _ := pr.layout.ReadSlot(row, i)
			out = append(out, rec)
		}
	}
	return out
}

// Best returns the matching record that maximizes the supplied score
// (ties broken toward the lower slot), or ok=false if nothing matched.
// This generalizes the priority encoder for applications, like LPM,
// where priority is a property of the record rather than its position.
func (pr *Processor) Best(row []uint64, search bitutil.Ternary, score func(Record) int) (rec Record, ok bool) {
	res := pr.Search(row, search)
	if res.Count == 0 {
		return Record{}, false
	}
	best, bestScore := Record{}, 0
	for i := 0; i < pr.layout.Slots(); i++ {
		if res.Vector[i/64]>>uint(i%64)&1 == 0 {
			continue
		}
		r, _ := pr.layout.ReadSlot(row, i)
		if sc := score(r); !ok || sc > bestScore {
			best, bestScore, ok = r, sc, true
		}
	}
	return best, ok
}

// PriorityEncode reduces a match vector to its lowest set bit index,
// -1 when empty — step 3 in isolation, exposed for tests and for the
// CAM baseline to share.
func PriorityEncode(vector []uint64) int {
	for w, v := range vector {
		if v != 0 {
			return w*64 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// Stats returns a snapshot of the processor's activity counters.
func (pr *Processor) Stats() ProcessorStats { return pr.stats }

// ResetStats zeroes the activity counters.
func (pr *Processor) ResetStats() { pr.stats = ProcessorStats{} }
