package match

import (
	"testing"
	"testing/quick"

	"caram/internal/bitutil"
)

func ipLayout() Layout {
	// The IP-lookup geometry: 64-bit ternary keys (32 symbols) in a
	// 32-key row of 64-bit keys -> C = 32*64*... here a small variant.
	return Layout{RowBits: 2048, KeyBits: 64, DataBits: 16, Ternary: true, AuxBits: 8}
}

func TestLayoutValidate(t *testing.T) {
	good := []Layout{
		{RowBits: 2048, KeyBits: 32, DataBits: 0},
		ipLayout(),
		{RowBits: 12288, KeyBits: 128, DataBits: 0, AuxBits: 16},
	}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", l, err)
		}
	}
	bad := []Layout{
		{RowBits: 0, KeyBits: 32},
		{RowBits: 64, KeyBits: 0},
		{RowBits: 64, KeyBits: 200},
		{RowBits: 64, KeyBits: 32, DataBits: 200},
		{RowBits: 64, KeyBits: 32, DataBits: -1},
		{RowBits: 64, KeyBits: 32, AuxBits: 100},
		{RowBits: 64, KeyBits: 63, DataBits: 8}, // slot doesn't fit
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid layout", l)
		}
	}
}

func TestSlotGeometry(t *testing.T) {
	l := Layout{RowBits: 12288, KeyBits: 128, DataBits: 0, Ternary: false}
	// Paper (§4.2): 96 keys of 128 bits in a 12,288-bit row. Our slot
	// carries an extra valid bit, so we fit 95 — the geometry the tests
	// and experiments account for explicitly.
	if got := l.SlotBits(); got != 129 {
		t.Errorf("SlotBits = %d", got)
	}
	if got := l.Slots(); got != 95 {
		t.Errorf("Slots = %d", got)
	}
	lt := Layout{RowBits: 2048, KeyBits: 64, DataBits: 16, Ternary: true}
	if got := lt.SlotBits(); got != 1+64+64+16 {
		t.Errorf("ternary SlotBits = %d", got)
	}
}

func TestSlotRoundTrip(t *testing.T) {
	l := ipLayout()
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	rec := Record{
		Key:  bitutil.NewTernary(bitutil.FromUint64(0xdeadbeef00), bitutil.FromUint64(0xff)),
		Data: bitutil.FromUint64(0x1234),
	}
	for i := 0; i < l.Slots(); i++ {
		if _, ok := l.ReadSlot(row, i); ok {
			t.Fatalf("empty slot %d reads valid", i)
		}
	}
	if err := l.WriteSlot(row, 3, rec); err != nil {
		t.Fatal(err)
	}
	got, ok := l.ReadSlot(row, 3)
	if !ok {
		t.Fatal("written slot reads invalid")
	}
	if !got.Key.Equal(rec.Key) || got.Data != rec.Data {
		t.Errorf("round trip: got %+v, want %+v", got, rec)
	}
	if _, ok := l.ReadSlot(row, 2); ok {
		t.Error("neighbor slot became valid")
	}
	if !l.SlotValid(row, 3) || l.SlotValid(row, 4) {
		t.Error("SlotValid wrong")
	}
	l.ClearSlot(row, 3)
	if _, ok := l.ReadSlot(row, 3); ok {
		t.Error("cleared slot still valid")
	}
}

func TestBinaryLayoutRejectsTernaryKey(t *testing.T) {
	l := Layout{RowBits: 256, KeyBits: 32, DataBits: 0}
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	rec := Record{Key: bitutil.NewTernary(bitutil.FromUint64(1), bitutil.FromUint64(2))}
	if err := l.WriteSlot(row, 0, rec); err == nil {
		t.Error("binary layout accepted a masked key")
	}
	if err := l.WriteSlot(row, 0, Record{Key: bitutil.Exact(bitutil.FromUint64(1))}); err != nil {
		t.Errorf("binary layout rejected exact key: %v", err)
	}
}

func TestAuxField(t *testing.T) {
	l := ipLayout()
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	if l.ReadAux(row) != 0 {
		t.Error("fresh aux not zero")
	}
	l.WriteAux(row, 0x7f)
	if got := l.ReadAux(row); got != 0x7f {
		t.Errorf("aux = %#x", got)
	}
	// Truncated to AuxBits.
	l.WriteAux(row, 0x1ff)
	if got := l.ReadAux(row); got != 0xff {
		t.Errorf("aux overflow = %#x, want 0xff", got)
	}
	// Aux must not disturb the last slot.
	rec := Record{Key: bitutil.Exact(bitutil.FromUint64(42))}
	if err := l.WriteSlot(row, l.Slots()-1, rec); err != nil {
		t.Fatal(err)
	}
	l.WriteAux(row, 0x55)
	got, ok := l.ReadSlot(row, l.Slots()-1)
	if !ok || !got.Key.Equal(rec.Key) {
		t.Error("aux write corrupted last slot")
	}
	if l.ReadAux(row) != 0x55 {
		t.Error("slot write corrupted aux")
	}
}

func TestZeroAuxLayout(t *testing.T) {
	l := Layout{RowBits: 256, KeyBits: 32}
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	l.WriteAux(row, 99) // no-op
	if l.ReadAux(row) != 0 {
		t.Error("zero-aux layout stored something")
	}
}

func TestOccupiedSlots(t *testing.T) {
	l := Layout{RowBits: 256, KeyBits: 32}
	row := make([]uint64, bitutil.RowWords(l.RowBits))
	if l.OccupiedSlots(row) != 0 {
		t.Error("fresh row occupied")
	}
	for i := 0; i < 3; i++ {
		if err := l.WriteSlot(row, i, Record{Key: bitutil.Exact(bitutil.FromUint64(uint64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.OccupiedSlots(row); got != 3 {
		t.Errorf("OccupiedSlots = %d", got)
	}
}

// Property: write/read round-trips for random records across every slot
// of a ternary layout.
func TestSlotRoundTripQuick(t *testing.T) {
	l := Layout{RowBits: 1600, KeyBits: 48, DataBits: 32, Ternary: true, AuxBits: 8}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(v, m, d uint64, slotRaw uint8) bool {
		i := int(slotRaw) % l.Slots()
		row := make([]uint64, bitutil.RowWords(l.RowBits))
		rec := Record{
			Key:  bitutil.NewTernary(bitutil.FromUint64(v).Trunc(48), bitutil.FromUint64(m).Trunc(48)),
			Data: bitutil.FromUint64(d).Trunc(32),
		}
		if err := l.WriteSlot(row, i, rec); err != nil {
			return false
		}
		got, ok := l.ReadSlot(row, i)
		return ok && got.Key.Equal(rec.Key) && got.Data == rec.Data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
