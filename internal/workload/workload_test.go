package workload

import (
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRand(9)
	z := NewZipf(rng, 1.5, 1000)
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		r := z.Rank()
		if r < 0 || r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must dominate and the tail must be light.
	if counts[0] < draws/10 {
		t.Errorf("rank 0 drawn %d times, expected heavy head", counts[0])
	}
	if counts[0] <= counts[500] {
		t.Error("head not heavier than tail")
	}
}

func TestZipfClamping(t *testing.T) {
	rng := NewRand(1)
	z := NewZipf(rng, 0.5, 0) // s below 1, n below 1: clamped
	if r := z.Rank(); r != 0 {
		t.Errorf("single-rank Zipf drew %d", r)
	}
}

func TestWeights(t *testing.T) {
	w := Weights(1.0, 4)
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %f", sum)
	}
	for k := 1; k < len(w); k++ {
		if w[k] > w[k-1] {
			t.Errorf("weights not decreasing at %d", k)
		}
	}
	// s=1: w[0]/w[1] = 2.
	if math.Abs(w[0]/w[1]-2) > 1e-9 {
		t.Errorf("w0/w1 = %f", w[0]/w[1])
	}
}

func TestTraces(t *testing.T) {
	rng := NewRand(4)
	u := UniformTrace(rng, 50, 1000)
	if len(u) != 1000 {
		t.Fatalf("len = %d", len(u))
	}
	for _, i := range u {
		if i < 0 || i >= 50 {
			t.Fatalf("index %d out of range", i)
		}
	}
	z := ZipfTrace(NewRand(4), 1.2, 50, 1000)
	head := 0
	for _, i := range z {
		if i < 0 || i >= 50 {
			t.Fatalf("zipf index %d out of range", i)
		}
		if i == 0 {
			head++
		}
	}
	if head < 100 {
		t.Errorf("zipf head drawn %d/1000", head)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	ys := append([]int(nil), xs...)
	Shuffle(NewRand(7), xs)
	Shuffle(NewRand(7), ys)
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatal("same-seed shuffles diverged")
		}
	}
	// Contents preserved.
	seen := map[int]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Error("shuffle lost elements")
	}
}
