// Package workload provides deterministic workload synthesis shared by
// the application studies: seeded random sources, Zipf-distributed
// access patterns (the "skewed access pattern" of §4.1), and trace
// generation over arbitrary key sets.
package workload

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic random source for the given seed.
// All experiments derive their randomness from explicit seeds so every
// table and figure is exactly reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf draws ranks in [0, n) with P(rank=k) proportional to
// 1/(k+1)^s. It wraps math/rand's Zipf with the conventional
// parameterization used in IP-lookup performance modeling (Narlikar and
// Zane use a comparable skew).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 1 being
// more skewed as s grows; s is clamped to a minimum of 1.01 because the
// underlying sampler requires s > 1.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if s < 1.01 {
		s = 1.01
	}
	if n < 1 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Rank draws one rank.
func (z *Zipf) Rank() int { return int(z.z.Uint64()) }

// Weights returns normalized access probabilities for n ranks under a
// 1/(k+1)^s law — the analytical counterpart of the sampler, used when
// an experiment wants exact expected values instead of sampling noise.
func Weights(s float64, n int) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		w[k] = 1 / math.Pow(float64(k+1), s)
		sum += w[k]
	}
	for k := range w {
		w[k] /= sum
	}
	return w
}

// UniformTrace returns n indices drawn uniformly from [0, keys).
func UniformTrace(rng *rand.Rand, keys, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(keys)
	}
	return out
}

// ZipfTrace returns n indices drawn Zipf(s) from [0, keys): index 0 is
// the most popular key.
func ZipfTrace(rng *rand.Rand, s float64, keys, n int) []int {
	z := NewZipf(rng, s, keys)
	out := make([]int, n)
	for i := range out {
		out[i] = z.Rank()
	}
	return out
}

// Shuffle permutes xs deterministically under rng.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
