package bitutil

import (
	"math/rand"
	"testing"
)

// shrRef is the bit-at-a-time oracle for ShrInto.
func shrRef(dst, src []uint64, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < len(dst)*64; i++ {
		j := i + n
		if j < 0 || j >= len(src)*64 {
			continue
		}
		bit := src[j/64] >> uint(j%64) & 1
		dst[i/64] |= bit << uint(i%64)
	}
}

func TestShrIntoAgainstBitOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		words := 1 + rng.Intn(6)
		src := make([]uint64, words)
		for i := range src {
			src[i] = rng.Uint64()
		}
		// Destination may be longer or shorter than the source.
		dst := make([]uint64, 1+rng.Intn(7))
		want := make([]uint64, len(dst))
		n := rng.Intn(words*64 + 70)
		ShrInto(dst, src, n)
		shrRef(want, src, n)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("ShrInto(words=%d, n=%d) word %d = %#x, want %#x",
					words, n, i, dst[i], want[i])
			}
		}
	}
}

func TestShrIntoWordAlignedAndZero(t *testing.T) {
	src := []uint64{0x1111, 0x2222, 0x3333}
	dst := make([]uint64, 3)
	ShrInto(dst, src, 0)
	if dst[0] != 0x1111 || dst[1] != 0x2222 || dst[2] != 0x3333 {
		t.Fatalf("shift 0 = %#x", dst)
	}
	ShrInto(dst, src, 64)
	if dst[0] != 0x2222 || dst[1] != 0x3333 || dst[2] != 0 {
		t.Fatalf("shift 64 = %#x", dst)
	}
	ShrInto(dst, src, -5) // clamped to 0
	if dst[0] != 0x1111 {
		t.Fatalf("negative shift = %#x", dst)
	}
}

func TestCompareInto(t *testing.T) {
	row := []uint64{0b1010, 0b1111}
	value := []uint64{0b1001, 0b1111}
	care := []uint64{0b1111, 0b0000}
	dst := make([]uint64, 2)
	CompareInto(dst, row, value, care)
	if dst[0] != 0b0011 || dst[1] != 0 {
		t.Fatalf("CompareInto = %b %b", dst[0], dst[1])
	}
	// Row shorter than the image: missing words read as zero.
	CompareInto(dst, row[:1], value, care)
	if dst[0] != 0b0011 || dst[1] != 0 {
		t.Fatalf("short row CompareInto = %b %b", dst[0], dst[1])
	}
	one := make([]uint64, 1)
	CompareInto(one, []uint64{}, []uint64{0b1}, []uint64{0b1})
	if one[0] != 0b1 {
		t.Fatalf("empty row CompareInto = %b", one[0])
	}
}

func TestCompareTernaryInto(t *testing.T) {
	row := []uint64{0b1010}
	value := []uint64{0b0101}
	care := []uint64{0b1111}
	stored := []uint64{0b0110} // middle two mismatches silenced
	dst := make([]uint64, 1)
	CompareTernaryInto(dst, row, value, care, stored)
	if dst[0] != 0b1001 {
		t.Fatalf("CompareTernaryInto = %b", dst[0])
	}
}

func TestAndInto(t *testing.T) {
	a := []uint64{0b1100, ^uint64(0)}
	b := []uint64{0b1010, 0}
	dst := make([]uint64, 2)
	AndInto(dst, a, b)
	if dst[0] != 0b1000 || dst[1] != 0 {
		t.Fatalf("AndInto = %b %b", dst[0], dst[1])
	}
	AndInto(a, a, b) // aliasing allowed
	if a[0] != 0b1000 {
		t.Fatalf("aliased AndInto = %b", a[0])
	}
}
