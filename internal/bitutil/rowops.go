package bitutil

// Word-parallel row operations — the software image of the Figure 4(b)
// comparator bank. A CA-RAM row is matched in one step by P comparators
// working on the fetched row in parallel; these primitives realize that
// step as whole-uint64 XOR/AND sweeps over the row's backing words, so
// the match kernel in internal/match never decodes slots one field at a
// time on the hot path.
//
// All destinations are caller-provided scratch: nothing here allocates.
// The row operand may be shorter than the destination (a row narrower
// than the compiled image); missing words read as zero, mirroring
// GetBits' "bits beyond the end of the row read as zero" contract.

// CompareInto writes the cared-about mismatch bits of row against an
// expanded search image: dst[w] = (row[w] ^ value[w]) & care[w].
// A slot whose field region ends up all-zero in dst matches the search
// key. len(dst), len(value) and len(care) must be equal.
func CompareInto(dst, row, value, care []uint64) {
	for w := range dst {
		var rw uint64
		if w < len(row) {
			rw = row[w]
		}
		dst[w] = (rw ^ value[w]) & care[w]
	}
}

// CompareTernaryInto is CompareInto with the row's own stored
// don't-care masks applied: dst[w] = (row[w]^value[w]) & care[w] &^
// stored[w]. The stored operand is the row's mask fields pre-shifted
// into key-field alignment (see ShrInto) and restricted to key-bit
// positions, so a stored X bit silences its comparator exactly as the
// second don't-care input of Figure 4(b) does.
func CompareTernaryInto(dst, row, value, care, stored []uint64) {
	for w := range dst {
		var rw uint64
		if w < len(row) {
			rw = row[w]
		}
		dst[w] = (rw ^ value[w]) & care[w] &^ stored[w]
	}
}

// ShrInto writes the row-level logical right shift src >> n into dst
// (bit i of dst reads bit i+n of src; bits beyond the end read as
// zero). Because a ternary slot stores its mask exactly KeyBits above
// its value field, shifting the whole row right by KeyBits aligns every
// slot's stored mask with its own key field in one sweep. dst must not
// alias src.
func ShrInto(dst, src []uint64, n int) {
	if n < 0 {
		n = 0
	}
	ws, bs := n/64, uint(n%64)
	word := func(i int) uint64 {
		if i >= 0 && i < len(src) {
			return src[i]
		}
		return 0
	}
	if bs == 0 {
		for i := range dst {
			dst[i] = word(i + ws)
		}
		return
	}
	for i := range dst {
		dst[i] = word(i+ws)>>bs | word(i+ws+1)<<(64-bs)
	}
}

// AndInto writes a & b into dst (all three the same length; dst may
// alias either operand).
func AndInto(dst, a, b []uint64) {
	for w := range dst {
		dst[w] = a[w] & b[w]
	}
}
