package bitutil

import (
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Ternary {
	t.Helper()
	tn, ok := ParseTernary(s)
	if !ok {
		t.Fatalf("ParseTernary(%q) failed", s)
	}
	return tn
}

func TestTernaryMatchesKey(t *testing.T) {
	// The paper's example: stored key 110XX matches 11000..11011.
	stored := mustParse(t, "110XX")
	for k := uint64(0); k < 32; k++ {
		want := k>>2 == 0b110
		if got := stored.MatchesKey(FromUint64(k)); got != want {
			t.Errorf("110XX vs %05b: got %v, want %v", k, got, want)
		}
	}
}

func TestTernaryMatchesBothMasks(t *testing.T) {
	cases := []struct {
		stored, search string
		want           bool
	}{
		{"1010", "1010", true},
		{"1010", "1011", false},
		{"10X0", "1010", true},
		{"10X0", "1000", true},
		{"10X0", "1001", false},
		{"1010", "10X0", true}, // don't care in the search key
		{"1010", "101X", true}, // search masks the mismatching... no, last bit matches anyway
		{"1011", "101X", true}, // search key masks the differing bit
		{"1011", "X011", true},
		{"1011", "X111", false},
		{"XXXX", "1010", true},
		{"1010", "XXXX", true},
		{"1X10", "10XX", true}, // overlap of masks never mismatches
	}
	for _, c := range cases {
		stored := mustParse(t, c.stored)
		search := mustParse(t, c.search)
		if got := stored.Matches(search); got != c.want {
			t.Errorf("stored %s vs search %s: got %v, want %v", c.stored, c.search, got, c.want)
		}
	}
}

func TestTernaryNormalizeAndEqual(t *testing.T) {
	a := Ternary{Value: FromUint64(0b1111), Mask: FromUint64(0b0011)}
	b := Ternary{Value: FromUint64(0b1100), Mask: FromUint64(0b0011)}
	if !a.Equal(b) {
		t.Error("keys differing only under the mask must be Equal")
	}
	if n := a.Normalize(); n.Value != FromUint64(0b1100) {
		t.Errorf("Normalize value = %v", n.Value)
	}
}

func TestTernaryStringRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "1", "X", "10X", "110XX", "X0X1X0X1"} {
		tn := mustParse(t, s)
		if got := tn.String(len(s)); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, ok := ParseTernary("10Z"); ok {
		t.Error("ParseTernary accepted an invalid rune")
	}
	if _, ok := ParseTernary(string(make([]byte, 200))); ok {
		t.Error("ParseTernary accepted an overlong string")
	}
	if got := (Ternary{}).String(0); got != "" {
		t.Errorf("String(0) = %q", got)
	}
}

func TestCareCountAndSpecificity(t *testing.T) {
	tn := mustParse(t, "1X0X")
	if got := tn.CareCount(4); got != 2 {
		t.Errorf("CareCount = %d", got)
	}
	if tn.Specificity(4) != 2 {
		t.Error("Specificity should equal CareCount")
	}
	if got := Exact(FromUint64(0b101)).CareCount(3); got != 3 {
		t.Errorf("Exact CareCount = %d", got)
	}
}

// Property: MatchesKey agrees with a bit-by-bit reference comparator.
func TestMatchesKeyAgainstReferenceQuick(t *testing.T) {
	f := func(value, mask, key Vec128) bool {
		tn := NewTernary(value, mask)
		want := true
		for i := 0; i < 128; i++ {
			if tn.Mask.Bit(i) == 1 {
				continue
			}
			if tn.Value.Bit(i) != key.Bit(i) {
				want = false
				break
			}
		}
		return tn.MatchesKey(key) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Matches is symmetric when both sides carry masks.
func TestMatchesSymmetricQuick(t *testing.T) {
	f := func(v1, m1, v2, m2 Vec128) bool {
		a := NewTernary(v1, m1)
		b := NewTernary(v2, m2)
		return a.Matches(b) == b.Matches(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an exact search key reduces Matches to MatchesKey.
func TestMatchesReducesToMatchesKeyQuick(t *testing.T) {
	f := func(v, m, key Vec128) bool {
		tn := NewTernary(v, m)
		return tn.Matches(Exact(key)) == tn.MatchesKey(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
