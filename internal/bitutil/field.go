package bitutil

// Bit-field access over raw memory rows. A CA-RAM row is a flat run of
// C bits stored as []uint64 words (word 0 holds bits 0..63 of the row).
// Records are packed into the row at arbitrary bit offsets, so the
// slice and match-processor layers need to read and write fields that
// straddle word boundaries.

// GetBits extracts width bits (width <= 128) starting at bit offset off
// from the row. Bits beyond the end of the row read as zero.
func GetBits(row []uint64, off, width int) Vec128 {
	if width <= 0 || off < 0 {
		return Vec128{}
	}
	if width > 128 {
		width = 128
	}
	var v Vec128
	w := off / 64
	shift := off % 64
	// Gather up to three words: width up to 128 plus a nonzero shift can
	// span three consecutive words.
	var w0, w1, w2 uint64
	if w < len(row) {
		w0 = row[w]
	}
	if w+1 < len(row) {
		w1 = row[w+1]
	}
	if w+2 < len(row) {
		w2 = row[w+2]
	}
	if shift == 0 {
		v = Vec128{Lo: w0, Hi: w1}
	} else {
		v = Vec128{
			Lo: w0>>shift | w1<<(64-shift),
			Hi: w1>>shift | w2<<(64-shift),
		}
	}
	return v.Trunc(width)
}

// SetBits stores the low width bits of v into the row at bit offset off.
// Writes beyond the end of the row are silently dropped, mirroring a
// hardware row of fixed width.
func SetBits(row []uint64, off, width int, v Vec128) {
	if width <= 0 || off < 0 {
		return
	}
	if width > 128 {
		width = 128
	}
	v = v.Trunc(width)
	mask := Mask(width)
	// Shift value and mask into row alignment, then merge word by word.
	w := off / 64
	shift := off % 64
	vals := [3]uint64{v.Lo << shift, 0, 0}
	masks := [3]uint64{mask.Lo << shift, 0, 0}
	if shift == 0 {
		vals[1] = v.Hi
		masks[1] = mask.Hi
	} else {
		vals[1] = v.Lo>>(64-shift) | v.Hi<<shift
		masks[1] = mask.Lo>>(64-shift) | mask.Hi<<shift
		vals[2] = v.Hi >> (64 - shift)
		masks[2] = mask.Hi >> (64 - shift)
	}
	for i := 0; i < 3; i++ {
		if masks[i] == 0 {
			continue
		}
		if w+i >= len(row) {
			return
		}
		row[w+i] = row[w+i]&^masks[i] | vals[i]
	}
}

// RowWords returns the number of uint64 words needed to hold bits bits.
func RowWords(bits int) int { return (bits + 63) / 64 }
