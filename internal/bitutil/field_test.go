package bitutil

import (
	"testing"
	"testing/quick"
)

func TestRowWords(t *testing.T) {
	cases := []struct{ bits, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {1600, 25},
	}
	for _, c := range cases {
		if got := RowWords(c.bits); got != c.want {
			t.Errorf("RowWords(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestSetGetAligned(t *testing.T) {
	row := make([]uint64, 4)
	v := Vec128{Lo: 0xdeadbeefcafef00d, Hi: 0x0123456789abcdef}
	SetBits(row, 64, 128, v)
	if got := GetBits(row, 64, 128); got != v {
		t.Errorf("aligned get = %v, want %v", got, v)
	}
	if row[0] != 0 || row[3] != 0 {
		t.Error("aligned set touched neighboring words")
	}
}

func TestSetGetStraddling(t *testing.T) {
	row := make([]uint64, 4)
	v := Vec128{Lo: ^uint64(0), Hi: ^uint64(0)}
	SetBits(row, 17, 128, v)
	if got := GetBits(row, 17, 128); got != Mask(128) {
		t.Errorf("straddling get = %v", got)
	}
	// Bits outside [17, 145) must be untouched.
	if GetBits(row, 0, 17) != (Vec128{}) {
		t.Error("set spilled below offset")
	}
	if GetBits(row, 145, 64) != (Vec128{}) {
		t.Error("set spilled above field")
	}
}

func TestSetDoesNotClobberNeighbors(t *testing.T) {
	row := make([]uint64, 3)
	for i := range row {
		row[i] = ^uint64(0)
	}
	SetBits(row, 40, 30, Vec128{})
	if got := GetBits(row, 40, 30); !got.IsZero() {
		t.Errorf("cleared field reads %v", got)
	}
	if GetBits(row, 0, 40) != Mask(40) {
		t.Error("low neighbor damaged")
	}
	if GetBits(row, 70, 50) != Mask(50) {
		t.Error("high neighbor damaged")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	row := make([]uint64, 1)
	SetBits(row, 200, 8, FromUint64(0xff)) // dropped
	if row[0] != 0 {
		t.Error("out-of-range write modified the row")
	}
	SetBits(row, -1, 8, FromUint64(0xff))
	if row[0] != 0 {
		t.Error("negative-offset write modified the row")
	}
	if got := GetBits(row, 200, 8); !got.IsZero() {
		t.Errorf("out-of-range read = %v", got)
	}
	if got := GetBits(row, 0, -5); !got.IsZero() {
		t.Errorf("negative-width read = %v", got)
	}
	// A write that starts in range but runs off the end keeps the
	// in-range part.
	SetBits(row, 60, 8, FromUint64(0xff))
	if got := GetBits(row, 60, 4); got != FromUint64(0xf) {
		t.Errorf("partial tail write lost in-range bits: %v", got)
	}
}

// Property: writing then reading the same field round-trips, for random
// offsets and widths within a 1600-bit row (the paper's prototype C).
func TestSetGetRoundTripQuick(t *testing.T) {
	const rowBits = 1600
	f := func(v Vec128, offRaw uint16, wRaw uint8) bool {
		width := 1 + int(wRaw)%128
		off := int(offRaw) % (rowBits - width)
		row := make([]uint64, RowWords(rowBits))
		SetBits(row, off, width, v)
		return GetBits(row, off, width) == v.Trunc(width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two disjoint fields never interfere.
func TestDisjointFieldsQuick(t *testing.T) {
	f := func(a, b Vec128, offRaw uint16) bool {
		const w = 96
		off := int(offRaw) % 400
		row := make([]uint64, RowWords(1024))
		SetBits(row, off, w, a)
		SetBits(row, off+w, w, b)
		return GetBits(row, off, w) == a.Trunc(w) && GetBits(row, off+w, w) == b.Trunc(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
