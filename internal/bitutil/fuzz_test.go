package bitutil

import "testing"

// FuzzParseTernary checks that arbitrary inputs never panic, and that
// accepted inputs round-trip through String.
func FuzzParseTernary(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "X", "110XX", "xXxX10", "10Z", "0000000011111111XXXXXXXX"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tn, ok := ParseTernary(s)
		if !ok {
			return
		}
		if got := tn.String(len(s)); got != normalizeUpper(s) {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	})
}

// normalizeUpper uppercases 'x' the way String renders don't-cares.
func normalizeUpper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] == 'x' {
			b[i] = 'X'
		}
	}
	return string(b)
}

// FuzzFieldAccess checks SetBits/GetBits never panic and round-trip for
// in-range fields of a fixed row.
func FuzzFieldAccess(f *testing.F) {
	f.Add(uint64(1), uint64(2), 10, 33)
	f.Add(uint64(0), uint64(0), 0, 1)
	f.Add(^uint64(0), ^uint64(0), 1500, 128)
	f.Fuzz(func(t *testing.T, lo, hi uint64, off, width int) {
		row := make([]uint64, RowWords(1600))
		v := Vec128{Lo: lo, Hi: hi}
		SetBits(row, off, width, v)
		got := GetBits(row, off, width)
		if width > 0 && width <= 128 && off >= 0 && off+width <= 1600 {
			if got != v.Trunc(width) {
				t.Fatalf("round trip (%d,%d): %v != %v", off, width, got, v.Trunc(width))
			}
		}
	})
}
