package bitutil

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate lets testing/quick draw random vectors.
func (Vec128) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(Vec128{Lo: r.Uint64(), Hi: r.Uint64()})
}

func TestMask(t *testing.T) {
	cases := []struct {
		width int
		want  Vec128
	}{
		{-3, Vec128{}},
		{0, Vec128{}},
		{1, Vec128{Lo: 1}},
		{8, Vec128{Lo: 0xff}},
		{63, Vec128{Lo: 0x7fffffffffffffff}},
		{64, Vec128{Lo: ^uint64(0)}},
		{65, Vec128{Lo: ^uint64(0), Hi: 1}},
		{127, Vec128{Lo: ^uint64(0), Hi: 0x7fffffffffffffff}},
		{128, Vec128{Lo: ^uint64(0), Hi: ^uint64(0)}},
		{200, Vec128{Lo: ^uint64(0), Hi: ^uint64(0)}},
	}
	for _, c := range cases {
		if got := Mask(c.width); got != c.want {
			t.Errorf("Mask(%d) = %v, want %v", c.width, got, c.want)
		}
	}
}

func TestMaskOnesCount(t *testing.T) {
	for w := 0; w <= 128; w++ {
		if got := Mask(w).OnesCount(); got != w {
			t.Fatalf("Mask(%d).OnesCount() = %d", w, got)
		}
	}
}

func TestBitAndWithBit(t *testing.T) {
	var v Vec128
	for _, i := range []int{0, 1, 17, 63, 64, 65, 100, 127} {
		v = v.WithBit(i, 1)
		if v.Bit(i) != 1 {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.OnesCount() != 8 {
		t.Fatalf("OnesCount = %d, want 8", v.OnesCount())
	}
	for _, i := range []int{0, 64, 127} {
		v = v.WithBit(i, 0)
		if v.Bit(i) != 0 {
			t.Fatalf("bit %d not cleared", i)
		}
	}
	if v.Bit(-1) != 0 || v.Bit(128) != 0 {
		t.Fatal("out-of-range Bit should read 0")
	}
	if got := v.WithBit(128, 1); got != v {
		t.Fatal("out-of-range WithBit should be a no-op")
	}
}

func TestShiftBasics(t *testing.T) {
	one := FromUint64(1)
	if got := one.Shl(64); got != (Vec128{Hi: 1}) {
		t.Errorf("1<<64 = %v", got)
	}
	if got := one.Shl(127); got != (Vec128{Hi: 1 << 63}) {
		t.Errorf("1<<127 = %v", got)
	}
	if got := one.Shl(128); !got.IsZero() {
		t.Errorf("1<<128 = %v, want 0", got)
	}
	if got := (Vec128{Hi: 1}).Shr(64); got != one {
		t.Errorf("hi>>64 = %v", got)
	}
	if got := (Vec128{Hi: 1 << 63}).Shr(127); got != one {
		t.Errorf(">>127 = %v", got)
	}
	if got := one.Shl(-1); got != one {
		t.Errorf("negative shift changed value: %v", got)
	}
}

func TestShiftRoundTripQuick(t *testing.T) {
	f := func(v Vec128, nRaw uint8) bool {
		n := int(nRaw) % 128
		// Shifting left then right must preserve the low 128-n bits.
		want := v.Trunc(128 - n)
		return v.Shl(n).Shr(n) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBooleanIdentitiesQuick(t *testing.T) {
	f := func(a, b Vec128) bool {
		if a.And(b) != b.And(a) || a.Or(b) != b.Or(a) || a.Xor(b) != b.Xor(a) {
			return false
		}
		if a.AndNot(b) != a.And(b.Not(128)) {
			return false
		}
		if a.Xor(a) != (Vec128{}) {
			return false
		}
		return a.Xor(b).Xor(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{0x01},
		{0xde, 0xad},
		{0xde, 0xad, 0xbe, 0xef},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
		{0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0},
	}
	for _, b := range cases {
		v := FromBytes(b)
		got := v.Bytes(len(b) * 8)
		if len(b) == 0 {
			if len(got) != 0 {
				t.Errorf("Bytes of empty input = %x", got)
			}
			continue
		}
		if string(got) != string(b) {
			t.Errorf("round trip %x -> %v -> %x", b, v, got)
		}
	}
}

func TestBytesRoundTripQuick(t *testing.T) {
	f := func(v Vec128, wRaw uint8) bool {
		w := 8 * (1 + int(wRaw)%16) // whole bytes, 8..128 bits
		tv := v.Trunc(w)
		return FromBytes(tv.Bytes(w)) == tv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromString(t *testing.T) {
	v := FromString("AB")
	if v.Lo != 0x4142 {
		t.Errorf("FromString(AB) = %v", v)
	}
}

func TestFromBytesLongInputKeepsTail(t *testing.T) {
	b := make([]byte, 20)
	for i := range b {
		b[i] = byte(i)
	}
	if got, want := FromBytes(b), FromBytes(b[4:]); got != want {
		t.Errorf("FromBytes(long) = %v, want %v", got, want)
	}
}

func TestCmp(t *testing.T) {
	a := Vec128{Lo: 5}
	b := Vec128{Lo: 7}
	c := Vec128{Hi: 1}
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("low-word compare wrong")
	}
	if b.Cmp(c) != -1 || c.Cmp(b) != 1 {
		t.Error("high-word compare wrong")
	}
}

func TestString(t *testing.T) {
	if got := FromUint64(0xbeef).String(); got != "0xbeef" {
		t.Errorf("String = %q", got)
	}
	if got := (Vec128{Lo: 1, Hi: 2}).String(); got != "0x20000000000000001" {
		t.Errorf("String = %q", got)
	}
}

func TestTruncQuick(t *testing.T) {
	f := func(v Vec128, wRaw uint8) bool {
		w := int(wRaw) % 130
		tv := v.Trunc(w)
		// No bits above w survive, and bits below w are unchanged.
		if !tv.AndNot(Mask(w)).IsZero() {
			return false
		}
		return tv.Xor(v).And(Mask(w)).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
