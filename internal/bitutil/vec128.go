// Package bitutil provides the low-level bit machinery of the CA-RAM
// simulator: fixed 128-bit vectors used for search keys, ternary
// (value + don't-care mask) keys, and helpers for reading and writing
// arbitrary bit fields inside raw memory rows.
//
// The CA-RAM prototype in the paper supports key sizes of 1, 2, 3, 4,
// 6, 8, 12 and 16 bytes; 128 bits is therefore the widest key any part
// of the design must carry, and Vec128 is sized accordingly.
package bitutil

import (
	"fmt"
	"math/bits"
)

// Vec128 is a 128-bit vector. Bit 0 is the least-significant bit of Lo;
// bit 127 is the most-significant bit of Hi. The zero value is the
// all-zero vector, ready to use.
type Vec128 struct {
	Lo, Hi uint64
}

// FromUint64 returns a vector holding v in its low 64 bits.
func FromUint64(v uint64) Vec128 { return Vec128{Lo: v} }

// FromParts returns a vector from explicit low and high words.
func FromParts(lo, hi uint64) Vec128 { return Vec128{Lo: lo, Hi: hi} }

// Mask returns a vector with the low width bits set. Width outside
// [0, 128] is clamped.
func Mask(width int) Vec128 {
	switch {
	case width <= 0:
		return Vec128{}
	case width >= 128:
		return Vec128{Lo: ^uint64(0), Hi: ^uint64(0)}
	case width >= 64:
		return Vec128{Lo: ^uint64(0), Hi: (uint64(1) << (width - 64)) - 1}
	default:
		return Vec128{Lo: (uint64(1) << width) - 1}
	}
}

// And returns v & w.
func (v Vec128) And(w Vec128) Vec128 { return Vec128{v.Lo & w.Lo, v.Hi & w.Hi} }

// Or returns v | w.
func (v Vec128) Or(w Vec128) Vec128 { return Vec128{v.Lo | w.Lo, v.Hi | w.Hi} }

// Xor returns v ^ w.
func (v Vec128) Xor(w Vec128) Vec128 { return Vec128{v.Lo ^ w.Lo, v.Hi ^ w.Hi} }

// AndNot returns v &^ w.
func (v Vec128) AndNot(w Vec128) Vec128 { return Vec128{v.Lo &^ w.Lo, v.Hi &^ w.Hi} }

// Not returns the complement of v truncated to width bits.
func (v Vec128) Not(width int) Vec128 {
	m := Mask(width)
	return Vec128{^v.Lo & m.Lo, ^v.Hi & m.Hi}
}

// Trunc returns v truncated to its low width bits.
func (v Vec128) Trunc(width int) Vec128 {
	m := Mask(width)
	return v.And(m)
}

// IsZero reports whether every bit of v is zero.
func (v Vec128) IsZero() bool { return v.Lo == 0 && v.Hi == 0 }

// Bit returns bit i of v (0 or 1). Bits outside [0, 128) read as zero.
func (v Vec128) Bit(i int) uint {
	switch {
	case i < 0 || i >= 128:
		return 0
	case i < 64:
		return uint(v.Lo>>i) & 1
	default:
		return uint(v.Hi>>(i-64)) & 1
	}
}

// WithBit returns a copy of v with bit i set to b. Bits outside
// [0, 128) are ignored.
func (v Vec128) WithBit(i int, b uint) Vec128 {
	if i < 0 || i >= 128 {
		return v
	}
	if i < 64 {
		v.Lo = v.Lo&^(uint64(1)<<i) | uint64(b&1)<<i
	} else {
		v.Hi = v.Hi&^(uint64(1)<<(i-64)) | uint64(b&1)<<(i-64)
	}
	return v
}

// Shl returns v shifted left by n bits. Shifts of 128 or more yield zero.
func (v Vec128) Shl(n int) Vec128 {
	switch {
	case n <= 0:
		return v
	case n >= 128:
		return Vec128{}
	case n >= 64:
		return Vec128{Lo: 0, Hi: v.Lo << (n - 64)}
	default:
		return Vec128{Lo: v.Lo << n, Hi: v.Hi<<n | v.Lo>>(64-n)}
	}
}

// Shr returns v shifted right by n bits. Shifts of 128 or more yield zero.
func (v Vec128) Shr(n int) Vec128 {
	switch {
	case n <= 0:
		return v
	case n >= 128:
		return Vec128{}
	case n >= 64:
		return Vec128{Lo: v.Hi >> (n - 64), Hi: 0}
	default:
		return Vec128{Lo: v.Lo>>n | v.Hi<<(64-n), Hi: v.Hi >> n}
	}
}

// OnesCount returns the number of set bits in v.
func (v Vec128) OnesCount() int {
	return bits.OnesCount64(v.Lo) + bits.OnesCount64(v.Hi)
}

// Uint64 returns the low 64 bits of v.
func (v Vec128) Uint64() uint64 { return v.Lo }

// FromBytes builds a vector from big-endian bytes: b[0] holds the most
// significant bits. At most 16 bytes are consumed; the resulting width
// is 8*len(b).
func FromBytes(b []byte) Vec128 {
	if len(b) > 16 {
		b = b[len(b)-16:]
	}
	var v Vec128
	for _, c := range b {
		v = v.Shl(8)
		v.Lo |= uint64(c)
	}
	return v
}

// FromString builds a vector from the raw bytes of s (big-endian, as
// FromBytes). Handy for string keys such as trigrams.
func FromString(s string) Vec128 { return FromBytes([]byte(s)) }

// Bytes returns v as big-endian bytes spanning width bits (rounded up to
// whole bytes).
func (v Vec128) Bytes(width int) []byte {
	n := (width + 7) / 8
	if n > 16 {
		n = 16
	}
	out := make([]byte, n)
	w := v
	for i := n - 1; i >= 0; i-- {
		out[i] = byte(w.Lo)
		w = w.Shr(8)
	}
	return out
}

// String renders v as 0x-prefixed hexadecimal.
func (v Vec128) String() string {
	if v.Hi == 0 {
		return fmt.Sprintf("0x%x", v.Lo)
	}
	return fmt.Sprintf("0x%x%016x", v.Hi, v.Lo)
}

// Cmp compares v and w as unsigned 128-bit integers, returning -1, 0, or 1.
func (v Vec128) Cmp(w Vec128) int {
	switch {
	case v.Hi < w.Hi:
		return -1
	case v.Hi > w.Hi:
		return 1
	case v.Lo < w.Lo:
		return -1
	case v.Lo > w.Lo:
		return 1
	default:
		return 0
	}
}
