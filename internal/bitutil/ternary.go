package bitutil

import "strings"

// Ternary is a key whose bits may each be 0, 1, or X (don't care). It is
// the software image of the two-bit-per-symbol encoding used by TCAM
// cells and by ternary CA-RAM records: Value carries the cared-for bits
// and Mask has a 1 wherever the bit is X. Bits of Value under a set Mask
// bit are ignored (kept zero by Normalize).
type Ternary struct {
	Value Vec128
	Mask  Vec128 // 1 = don't care
}

// NewTernary returns a normalized ternary key.
func NewTernary(value, mask Vec128) Ternary {
	return Ternary{Value: value.AndNot(mask), Mask: mask}
}

// Exact returns a ternary key with no don't-care bits.
func Exact(value Vec128) Ternary { return Ternary{Value: value} }

// Normalize zeroes Value bits under the mask so that equal ternary keys
// have equal representations.
func (t Ternary) Normalize() Ternary {
	t.Value = t.Value.AndNot(t.Mask)
	return t
}

// MatchesKey reports whether the exact search key matches t: every
// cared-for bit of t equals the corresponding key bit. This is the
// stored-key-masking (ternary search) direction of Figure 4(b).
func (t Ternary) MatchesKey(key Vec128) bool {
	return t.Value.Xor(key).AndNot(t.Mask).IsZero()
}

// Matches reports whether a search key that itself carries don't-care
// bits matches t. A bit mismatches only when both sides care and the
// values differ — the full two-don't-care-input comparator of
// Figure 4(b).
func (t Ternary) Matches(search Ternary) bool {
	return t.Value.Xor(search.Value).AndNot(t.Mask.Or(search.Mask)).IsZero()
}

// Equal reports whether two ternary keys are identical after
// normalization (same cared-for bits and same don't-care positions).
func (t Ternary) Equal(u Ternary) bool {
	t, u = t.Normalize(), u.Normalize()
	return t.Value == u.Value && t.Mask == u.Mask
}

// CareCount returns the number of cared-for bits within width.
func (t Ternary) CareCount(width int) int {
	return t.Mask.Not(width).OnesCount()
}

// Specificity orders ternary keys by how many bits they care about;
// larger means more specific. Used as the default match priority for
// longest-prefix-match style lookups.
func (t Ternary) Specificity(width int) int { return t.CareCount(width) }

// String renders the low width bits of t MSB-first as a string over
// {0, 1, X}.
func (t Ternary) String(width int) string {
	if width <= 0 {
		return ""
	}
	if width > 128 {
		width = 128
	}
	var b strings.Builder
	b.Grow(width)
	for i := width - 1; i >= 0; i-- {
		switch {
		case t.Mask.Bit(i) == 1:
			b.WriteByte('X')
		case t.Value.Bit(i) == 1:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ParseTernary parses an MSB-first string of {0,1,X,x} into a ternary
// key. Any other rune is rejected.
func ParseTernary(s string) (Ternary, bool) {
	if len(s) > 128 {
		return Ternary{}, false
	}
	var t Ternary
	for _, r := range s {
		t.Value = t.Value.Shl(1)
		t.Mask = t.Mask.Shl(1)
		switch r {
		case '0':
		case '1':
			t.Value.Lo |= 1
		case 'X', 'x':
			t.Mask.Lo |= 1
		default:
			return Ternary{}, false
		}
	}
	return t, true
}
