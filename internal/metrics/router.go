package metrics

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Router-side metric families (cmd/caram-router). The router is a
// forwarding tier, so its observability is per-backend, not
// per-engine: how many operations each backend absorbed, how deep its
// pipelines run, how well request coalescing works (the burst-size
// histogram — the whole point of the pipelined pools), and whether its
// circuit breaker is open.
const (
	FamRouterOps          = "caram_router_backend_ops_total"
	FamRouterErrors       = "caram_router_backend_errors_total"
	FamRouterRetries      = "caram_router_backend_retries_total"
	FamRouterBreakerTrips = "caram_router_backend_breaker_trips_total"
	FamRouterBreakerOpen  = "caram_router_backend_breaker_open"
	FamRouterInflight     = "caram_router_backend_inflight"
	FamRouterBurst        = "caram_router_burst_size"
)

// burstBuckets is the power-of-two bucket count of the burst-size
// histogram: bucket i counts bursts of size in (2^(i-1), 2^i], so 12
// buckets cover bursts of 1 request up to 2048 per flush.
const burstBuckets = 12

// RouterBackend is one backend's slot: lock-free counters recorded by
// the pool on the forward path (atomic adds, no allocation).
type RouterBackend struct {
	name string

	ops     atomic.Uint64 // requests submitted to this backend
	errs    atomic.Uint64 // requests that failed (transport or shed)
	retries atomic.Uint64 // idempotent SEARCH resubmissions

	breakerTrips atomic.Uint64 // times the breaker opened
	breakerOpen  atomic.Int64  // 1 while open, 0 while closed

	inflight atomic.Int64 // pipeline depth: submitted, not yet answered

	burstN   atomic.Uint64 // bursts flushed
	burstSum atomic.Uint64 // requests across all bursts
	burst    [burstBuckets]atomic.Uint64
}

// Name returns the backend label the slot was registered under.
func (b *RouterBackend) Name() string { return b.name }

// IncOps counts one submitted request. Nil-safe like every recorder
// here, so an unmetered pool costs only the nil check.
func (b *RouterBackend) IncOps() {
	if b != nil {
		b.ops.Add(1)
	}
}

// IncErrs counts one failed request.
func (b *RouterBackend) IncErrs() {
	if b != nil {
		b.errs.Add(1)
	}
}

// IncRetries counts one idempotent resubmission.
func (b *RouterBackend) IncRetries() {
	if b != nil {
		b.retries.Add(1)
	}
}

// DepthAdd moves the pipeline-depth gauge by d (+1 at submit, -1 at
// completion).
func (b *RouterBackend) DepthAdd(d int64) {
	if b != nil {
		b.inflight.Add(d)
	}
}

// SetBreaker records the breaker state; opening increments the trip
// counter.
func (b *RouterBackend) SetBreaker(open bool) {
	if b == nil {
		return
	}
	if open {
		if b.breakerOpen.Swap(1) == 0 {
			b.breakerTrips.Add(1)
		}
	} else {
		b.breakerOpen.Store(0)
	}
}

// ObserveBurst records one write burst of n coalesced requests.
func (b *RouterBackend) ObserveBurst(n int) {
	if b == nil || n <= 0 {
		return
	}
	i := 0
	for s := n - 1; s > 0; s >>= 1 { // bucket i spans (2^(i-1), 2^i]
		i++
	}
	if i >= burstBuckets {
		i = burstBuckets - 1
	}
	b.burst[i].Add(1)
	b.burstN.Add(1)
	b.burstSum.Add(uint64(n))
}

// Ops returns the submitted-request count.
func (b *RouterBackend) Ops() uint64 { return b.ops.Load() }

// Errs returns the failed-request count.
func (b *RouterBackend) Errs() uint64 { return b.errs.Load() }

// Retries returns the resubmission count.
func (b *RouterBackend) Retries() uint64 { return b.retries.Load() }

// Inflight returns the current pipeline depth.
func (b *RouterBackend) Inflight() int64 { return b.inflight.Load() }

// BreakerOpen reports whether the breaker gauge is raised.
func (b *RouterBackend) BreakerOpen() bool { return b.breakerOpen.Load() != 0 }

// Bursts returns the burst count and the mean burst size.
func (b *RouterBackend) Bursts() (n uint64, mean float64) {
	n = b.burstN.Load()
	if n == 0 {
		return 0, 0
	}
	return n, float64(b.burstSum.Load()) / float64(n)
}

// RouterMetrics is the router's registry: one fixed slot per backend,
// frozen at construction (the backend set is static for a router
// process), so every lookup is an index and every record an atomic op.
type RouterMetrics struct {
	slots []RouterBackend
}

// NewRouterMetrics builds a registry with one slot per backend label.
func NewRouterMetrics(backends []string) *RouterMetrics {
	rm := &RouterMetrics{slots: make([]RouterBackend, len(backends))}
	for i, n := range backends {
		rm.slots[i].name = n
	}
	return rm
}

// Backend returns slot i, or nil when the registry itself is nil (an
// unmetered router) — callers chain the nil-safe recorders without
// checking.
func (rm *RouterMetrics) Backend(i int) *RouterBackend {
	if rm == nil {
		return nil
	}
	return &rm.slots[i]
}

// Backends returns the slot count.
func (rm *RouterMetrics) Backends() int {
	if rm == nil {
		return 0
	}
	return len(rm.slots)
}

// Totals sums ops and errors across backends.
func (rm *RouterMetrics) Totals() (ops, errs uint64) {
	if rm == nil {
		return 0, 0
	}
	for i := range rm.slots {
		ops += rm.slots[i].ops.Load()
		errs += rm.slots[i].errs.Load()
	}
	return ops, errs
}

// WriteRouterPrometheus renders the router families in the Prometheus
// text exposition format.
func WriteRouterPrometheus(w io.Writer, rm *RouterMetrics) error {
	bw := &errWriter{w: w}
	counter := func(fam, help string, val func(*RouterBackend) uint64) {
		bw.printf("# HELP %s %s\n# TYPE %s counter\n", fam, help, fam)
		for i := range rm.slots {
			b := &rm.slots[i]
			bw.printf("%s{backend=%q} %d\n", fam, b.name, val(b))
		}
	}
	counter(FamRouterOps, "Requests submitted to the backend's connection pool.",
		func(b *RouterBackend) uint64 { return b.ops.Load() })
	counter(FamRouterErrors, "Requests that failed against the backend (transport error or shed).",
		func(b *RouterBackend) uint64 { return b.errs.Load() })
	counter(FamRouterRetries, "Idempotent SEARCH requests resubmitted on a fresh connection.",
		func(b *RouterBackend) uint64 { return b.retries.Load() })
	counter(FamRouterBreakerTrips, "Times the backend's circuit breaker opened.",
		func(b *RouterBackend) uint64 { return b.breakerTrips.Load() })

	bw.printf("# HELP %s 1 while the backend's circuit breaker is open, 0 while closed.\n# TYPE %s gauge\n",
		FamRouterBreakerOpen, FamRouterBreakerOpen)
	for i := range rm.slots {
		bw.printf("%s{backend=%q} %d\n", FamRouterBreakerOpen, rm.slots[i].name, rm.slots[i].breakerOpen.Load())
	}
	bw.printf("# HELP %s Requests submitted to the backend and not yet answered (pipeline depth).\n# TYPE %s gauge\n",
		FamRouterInflight, FamRouterInflight)
	for i := range rm.slots {
		bw.printf("%s{backend=%q} %d\n", FamRouterInflight, rm.slots[i].name, rm.slots[i].inflight.Load())
	}

	bw.printf("# HELP %s Requests coalesced per write burst (one flush per bucket'd burst).\n# TYPE %s histogram\n",
		FamRouterBurst, FamRouterBurst)
	for i := range rm.slots {
		b := &rm.slots[i]
		var cum uint64
		for j := 0; j < burstBuckets; j++ {
			c := b.burst[j].Load()
			cum += c
			if c == 0 && cum == 0 {
				continue
			}
			bw.printf("%s_bucket{backend=%q,le=\"%d\"} %d\n", FamRouterBurst, b.name, 1<<uint(j), cum)
		}
		bw.printf("%s_bucket{backend=%q,le=\"+Inf\"} %d\n", FamRouterBurst, b.name, b.burstN.Load())
		bw.printf("%s_sum{backend=%q} %d\n", FamRouterBurst, b.name, b.burstSum.Load())
		bw.printf("%s_count{backend=%q} %d\n", FamRouterBurst, b.name, b.burstN.Load())
	}
	writeBuildInfo(bw)
	return bw.err
}

// RouterHandler serves the router registry over HTTP: /metrics in the
// Prometheus exposition plus the standard pprof endpoints — the
// router-tier counterpart of Handler.
func RouterHandler(rm *RouterMetrics, opts ...HandlerOption) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteRouterPrometheus(w, rm)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}

// String renders a compact one-line summary (the router's wire-level
// METRICS reply body): per-registry totals only, deterministic.
func (rm *RouterMetrics) String() string {
	ops, errs := rm.Totals()
	return fmt.Sprintf("backends=%d ops=%d errors=%d", rm.Backends(), ops, errs)
}
