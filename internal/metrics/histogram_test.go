package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBucketGeometry(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {127, 0},
		{128, 1}, {255, 1}, {256, 2},
		{1 << 20, 14}, {1 << 31, 25}, {1 << 40, 25}, // clamps to last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	// Every value must be ≤ its bucket's reported edge (except past the
	// bounded range, where the last bucket saturates).
	for ns := int64(0); ns < 1<<22; ns = ns*3 + 1 {
		b := bucketOf(ns)
		if ns > BucketEdgeNs(b) {
			t.Errorf("ns %d exceeds its bucket %d edge %d", ns, b, BucketEdgeNs(b))
		}
		if b > 0 && ns <= BucketEdgeNs(b-1) {
			t.Errorf("ns %d fits the previous bucket %d", ns, b-1)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.N != 0 || s.SumNs != 0 || s.MeanNs() != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	qs := s.Quantiles(0.5, 0.99)
	if qs[0] != 0 || qs[1] != 0 {
		t.Errorf("empty quantiles = %v", qs)
	}
}

// TestHistogramQuantileQuick is the property test behind the quantile
// export: for arbitrary observation sets, (1) no observation is lost,
// (2) the sum is exact, (3) quantiles are monotone in p, and (4) each
// reported quantile brackets the true order statistic to within the
// histogram's power-of-two resolution — q_true ≤ q_reported < 2·q_true
// (with the first bucket's 128 ns floor and the last bucket's ~4.3 s
// ceiling as the bounded ends).
func TestHistogramQuantileQuick(t *testing.T) {
	prop := func(raw []uint32, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		vals := make([]int64, len(raw))
		var sum int64
		for i, r := range raw {
			// Spread observations across the interesting range: sub-bucket
			// noise up to tens of milliseconds.
			ns := int64(r) << uint(rng.Intn(8))
			vals[i] = ns
			sum += ns
			h.Observe(ns)
		}
		s := h.Snapshot()
		if s.N != uint64(len(vals)) || s.SumNs != sum {
			t.Logf("N=%d want %d, sum=%d want %d", s.N, len(vals), s.SumNs, sum)
			return false
		}
		ps := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1}
		qs := s.Quantiles(ps...)
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				t.Logf("quantiles not monotone: %v", qs)
				return false
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for i, p := range ps {
			// The target-th smallest value, matching stats.Histogram's
			// Percentile contract (target = ceil(p·n), at least 1).
			k := int(math.Ceil(p*float64(len(vals)))) - 1
			if k < 0 {
				k = 0
			}
			truth := vals[k]
			lo, hi := truth, 2*truth
			if hi < int64(1)<<histMinShift-1 {
				hi = int64(1)<<histMinShift - 1 // first-bucket floor
			}
			if maxEdge := BucketEdgeNs(histBuckets - 1); hi > maxEdge {
				hi = maxEdge // bounded-range ceiling
			}
			if lo > hi {
				lo = hi
			}
			if qs[i] < lo || qs[i] > hi {
				t.Logf("p=%.2f: reported %d outside [%d,%d] (truth %d, all=%v)", p, qs[i], lo, hi, truth, qs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramStatsExport(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(1000) // bucket [512,1023] -> edge 1023
	}
	h.Observe(1 << 20) // one slow outlier
	sh := h.Snapshot().Stats()
	if sh.N() != 1001 {
		t.Fatalf("stats N = %d", sh.N())
	}
	if p50 := sh.Percentile(0.5); p50 != 1023 {
		t.Errorf("p50 = %d, want 1023", p50)
	}
	if p100 := sh.Percentile(1); p100 != int(BucketEdgeNs(bucketOf(1<<20))) {
		t.Errorf("p100 = %d", p100)
	}
}
