package metrics

import (
	"math/bits"
	"sync/atomic"

	"caram/internal/stats"
)

// Latency histogram geometry: bucket i spans [2^(minShift+i-1),
// 2^(minShift+i)) nanoseconds (bucket 0 starts at zero), so 26 buckets
// cover 128 ns .. ~4.3 s with power-of-two resolution; anything slower
// lands in the last bucket. Bounded and fixed up front so Observe is a
// shift, a bits.Len and one atomic add — no locks, no allocation.
const (
	histMinShift = 7  // first bucket: < 128 ns
	histBuckets  = 26 // last edge: 128ns << 25 ≈ 4.29 s
)

// Histogram is a bounded, race-safe latency histogram: fixed
// exponential bucket edges, one atomic counter per bucket, plus a
// running sum so mean latency and Prometheus's `_sum` come for free.
// The zero value is NOT ready; it is initialised by NewRegistry.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sumNs  atomic.Int64
}

// init exists for symmetry with future variable-geometry histograms;
// the fixed-array layout needs no allocation.
func (h *Histogram) init() {}

// bucketOf maps a duration in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns) >> histMinShift)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketEdgeNs returns bucket i's inclusive upper edge in nanoseconds
// (the value the bucket reports for quantile purposes). The last
// bucket is unbounded and reports its lower edge ×2 like the others —
// callers treating it as "at least this slow" is the bounded-histogram
// trade-off.
func BucketEdgeNs(i int) int64 {
	return int64(1)<<(histMinShift+uint(i)) - 1
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.sumNs.Add(ns)
}

// ObserveN records n observations of the same duration with two atomic
// adds — the batched-measurement path: a caller that timed a whole
// batch once attributes the per-item share to each item without paying
// n clock reads or n histogram updates.
func (h *Histogram) ObserveN(ns int64, n uint64) {
	if n == 0 {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(n)
	h.sumNs.Add(ns * int64(n))
}

// N returns the number of observations.
func (h *Histogram) N() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// HistSnapshot is an atomic-load copy of a histogram: per-bucket counts
// against fixed upper edges, plus the running sum.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	SumNs  int64
	N      uint64
}

// Snapshot copies the counters. Loads are per-bucket atomic, so the
// copy is monotone (never ahead of the live histogram's future state)
// though not a single instant.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.SumNs = h.sumNs.Load()
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.N += c
	}
	return s
}

// Stats re-expresses the bucketed counts as a stats.Histogram (each
// bucket contributes its upper edge as the value), reusing the
// experiment toolkit's quantile machinery for export.
func (s HistSnapshot) Stats() *stats.Histogram {
	h := stats.NewHistogram()
	for i, c := range s.Counts {
		if c > 0 {
			h.AddN(int(BucketEdgeNs(i)), int64(c))
		}
	}
	return h
}

// Quantiles returns the upper-edge latency in nanoseconds at each
// quantile p (0..1). The answer overestimates the true quantile by at
// most one power of two — the histogram's resolution contract.
func (s HistSnapshot) Quantiles(ps ...float64) []int64 {
	qs := s.Stats().Quantiles(ps...)
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = int64(q)
	}
	return out
}

// MeanNs returns the mean observed latency in nanoseconds.
func (s HistSnapshot) MeanNs() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.N)
}
