package metrics

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Process-identity families, emitted by both the server and router
// expositions so every scrape says which build answered it.
const (
	// FamBuildInfo is the conventional constant-1 info metric with the
	// build identity as labels (module version, Go toolchain, VCS
	// revision when the binary was built from a checkout).
	FamBuildInfo = "caram_build_info"
	// FamUptime is seconds since this process's metrics layer was
	// initialized — a restart detector that needs no server-side state.
	FamUptime = "caram_uptime_seconds"
)

var (
	startTime = time.Now()

	buildOnce     sync.Once
	buildVersion  string
	buildRevision string
)

// buildIdentity resolves the version/revision labels once. The values
// come from the runtime's embedded build info, so they are correct for
// any caller (server, router, tests) without threading flags around.
func buildIdentity() (version, goVersion, revision string) {
	buildOnce.Do(func() {
		buildVersion, buildRevision = "unknown", "unknown"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildVersion = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				buildRevision = s.Value
			}
		}
	})
	return buildVersion, runtime.Version(), buildRevision
}

// writeBuildInfo emits the process-identity families onto an
// in-flight exposition.
func writeBuildInfo(bw *errWriter) {
	version, goVersion, revision := buildIdentity()
	bw.printf("# HELP %s Build identity of this process (constant 1).\n# TYPE %s gauge\n", FamBuildInfo, FamBuildInfo)
	bw.printf("%s{version=%q,go=%q,revision=%q} 1\n", FamBuildInfo, version, goVersion, revision)
	bw.printf("# HELP %s Seconds since this process started serving metrics.\n# TYPE %s gauge\n", FamUptime, FamUptime)
	bw.printf("%s %g\n", FamUptime, time.Since(startTime).Seconds())
}
