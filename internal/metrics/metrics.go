// Package metrics is the serving path's observability layer: per-engine,
// per-operation counters and bounded latency histograms, plus engine-level
// gauges sampled live from the CA-RAM core (load factor, probe count /
// AMAL, overflow occupancy). The paper's headline quantity — AMAL, the
// average number of memory accesses per lookup (§3.4) — is computed
// offline by internal/exp; this package puts the same quantity on the
// wire for a running server, measured over the live traffic instead of a
// synthetic trace.
//
// The hot path is lock-free: every engine and operation gets a fixed
// slot of atomic counters at registration time, so recording one
// observation is two or three atomic adds and never allocates. Reads
// (Snapshot, the Prometheus exposition) use atomic loads; a snapshot
// taken mid-traffic is not a single instant but is monotone — every
// counter in it is ≤ the same counter in any later snapshot.
package metrics

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Op enumerates the instrumented operations, matching the wire commands
// of internal/server.
type Op uint8

const (
	OpInsert Op = iota
	OpSearch
	OpDelete
	OpMSearch
	// NumOps sizes per-op arrays.
	NumOps
)

// String returns the lower-case metric label for the op.
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpSearch:
		return "search"
	case OpDelete:
		return "delete"
	case OpMSearch:
		return "msearch"
	}
	return "unknown"
}

// ParseOp maps a wire-command word (any case) to its Op.
func ParseOp(s string) (Op, error) {
	switch {
	case equalFold(s, "INSERT"):
		return OpInsert, nil
	case equalFold(s, "SEARCH"):
		return OpSearch, nil
	case equalFold(s, "DELETE"):
		return OpDelete, nil
	case equalFold(s, "MSEARCH"):
		return OpMSearch, nil
	}
	return 0, errors.New("metrics: unknown op " + s)
}

// equalFold avoids importing strings for one ASCII comparison.
func equalFold(s, t string) bool {
	if len(s) != len(t) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c, d := s[i], t[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if d >= 'a' && d <= 'z' {
			d -= 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

// Gauges is one sample of an engine's live state, read from the CA-RAM
// core under the engine's read lock. LoadFactor is the paper's α;
// AMAL is RowsAccessed/Lookups over the engine's lifetime traffic —
// the measured counterpart of the §3.4 analytic access cost; Overflow
// counts records diverted to the parallel overflow CAM (§4.3), Spilled
// counts main-array records stored outside their home bucket. The
// fault-tolerance block mirrors the engine's availability state and
// error-coding counters: Health is the subsystem.Health value
// (0 healthy, 1 degraded, 2 failed), Quarantined the rows currently
// out of service. SearchRetries counts torn seqlock snapshots the
// lock-free search path re-read; LockFallbacks counts searches that
// escalated from the lock-free path to the serialized one.
type Gauges struct {
	Records      int
	LoadFactor   float64
	AMAL         float64
	Lookups      uint64
	RowsAccessed uint64
	Hits         uint64
	Misses       uint64
	Overflow     int
	Spilled      int

	Health            int
	Quarantined       int
	EccCorrected      uint64
	EccUncorrectable  uint64
	EccReadErrors     uint64
	ScrubRepairedBits uint64

	SearchRetries uint64
	LockFallbacks uint64
}

// Registry holds the metrics of the registered engines. The roster is
// copy-on-write: lookups by name do one atomic load and index an
// immutable map (the hot path never takes a lock), while Register and
// Unregister — the CREATE ENGINE / DROP ENGINE path — serialize on a
// mutex and swap in a fresh snapshot.
type Registry struct {
	mu      sync.Mutex // serializes roster writers
	set     atomic.Pointer[registrySet]
	unknown atomic.Uint64 // requests addressed to no registered engine

	// walFn, when set, samples the durability layer for Snapshot —
	// the same generic-callback decoupling SetGaugeFunc uses, so this
	// package never imports the wal implementation.
	walFn atomic.Pointer[func() WALStats]
}

// WALStats is one observation of the durability layer, sampled at
// Snapshot time via SetWALFunc. LSNs are cumulative positions; the
// fsync counters are totals since boot.
type WALStats struct {
	AppendedLSN uint64 // highest LSN assigned
	DurableLSN  uint64 // highest LSN fsynced
	SnapshotLSN uint64 // bound of the newest on-disk snapshot
	Pending     uint64 // records appended but not yet durable
	Segments    int    // on-disk segments, including the active one
	Fsyncs      uint64
	FsyncNanos  uint64 // cumulative time spent in fsync
	LastFsync   int64  // unix nanos of the last fsync; 0 = never
}

// SetWALFunc installs the durability sampler (nil clears it). Safe on
// a nil registry.
func (r *Registry) SetWALFunc(fn func() WALStats) {
	if r == nil {
		return
	}
	if fn == nil {
		r.walFn.Store(nil)
		return
	}
	r.walFn.Store(&fn)
}

// registrySet is one immutable roster snapshot.
type registrySet struct {
	order   []string
	engines map[string]*EngineMetrics
}

// newEngineMetrics builds one engine's slot.
func newEngineMetrics(name, typ string) *EngineMetrics {
	em := &EngineMetrics{name: name, typ: typ}
	for op := Op(0); op < NumOps; op++ {
		em.ops[op].lat.init()
	}
	return em
}

// NewRegistry builds a registry with one metrics slot per engine name,
// each of the default "exact" engine type (SetType adjusts it during
// instrumentation).
func NewRegistry(names []string) *Registry {
	set := &registrySet{
		order:   append([]string(nil), names...),
		engines: make(map[string]*EngineMetrics, len(names)),
	}
	for _, n := range set.order {
		set.engines[n] = newEngineMetrics(n, "exact")
	}
	r := &Registry{}
	r.set.Store(set)
	return r
}

// Register adds an engine slot of the given type to a live registry
// and returns it; registering an existing name returns the existing
// slot unchanged.
func (r *Registry) Register(name, typ string) *EngineMetrics {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.set.Load()
	if em, ok := cur.engines[name]; ok {
		return em
	}
	em := newEngineMetrics(name, typ)
	next := &registrySet{
		order:   append(append(make([]string, 0, len(cur.order)+1), cur.order...), name),
		engines: make(map[string]*EngineMetrics, len(cur.engines)+1),
	}
	for k, v := range cur.engines {
		next.engines[k] = v
	}
	next.engines[name] = em
	r.set.Store(next)
	return em
}

// Unregister removes an engine slot from a live registry; its counters
// drop out of subsequent snapshots and expositions. Unknown names are
// a no-op.
func (r *Registry) Unregister(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.set.Load()
	if _, ok := cur.engines[name]; !ok {
		return
	}
	next := &registrySet{
		order:   make([]string, 0, len(cur.order)-1),
		engines: make(map[string]*EngineMetrics, len(cur.engines)-1),
	}
	for _, n := range cur.order {
		if n != name {
			next.order = append(next.order, n)
		}
	}
	for k, v := range cur.engines {
		if k != name {
			next.engines[k] = v
		}
	}
	r.set.Store(next)
}

// Engine returns the named engine's metrics, or nil when unknown (or
// when the registry itself is nil — callers may be uninstrumented).
func (r *Registry) Engine(name string) *EngineMetrics {
	if r == nil {
		return nil
	}
	return r.set.Load().engines[name]
}

// Engines lists engine names in registration order.
func (r *Registry) Engines() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.set.Load().order...)
}

// AddUnknown counts n requests that named no registered engine. Safe on
// a nil registry.
func (r *Registry) AddUnknown(n uint64) {
	if r == nil {
		return
	}
	r.unknown.Add(n)
}

// Unknown returns the unknown-engine request count.
func (r *Registry) Unknown() uint64 {
	if r == nil {
		return 0
	}
	return r.unknown.Load()
}

// Totals sums op and error counts across all engines and ops.
func (r *Registry) Totals() (ops, errs uint64) {
	if r == nil {
		return 0, 0
	}
	set := r.set.Load()
	for _, name := range set.order {
		em := set.engines[name]
		for op := Op(0); op < NumOps; op++ {
			ops += em.ops[op].count.Load()
			errs += em.ops[op].errs.Load()
		}
	}
	return ops, errs
}

// EngineMetrics is one engine's slot: per-op counters and latency
// histograms, plus an optional gauge sampler wired by the concurrency
// layer. SetGaugeFunc must be called before the registry is shared
// across goroutines (it is part of instrumentation, not of serving).
type EngineMetrics struct {
	name   string
	typ    string // engine_type label value ("exact", "lpm", ...)
	ops    [NumOps]opMetrics
	gauges func() Gauges
}

type opMetrics struct {
	count atomic.Uint64
	errs  atomic.Uint64
	lat   Histogram
}

// Name returns the engine name the slot was registered under.
func (m *EngineMetrics) Name() string { return m.name }

// Type returns the engine's type label value.
func (m *EngineMetrics) Type() string { return m.typ }

// SetType sets the engine_type label. Like SetGaugeFunc it is part of
// instrumentation: call it before the registry serves concurrent
// traffic (Register sets it atomically for engines created live).
func (m *EngineMetrics) SetType(t string) { m.typ = t }

// Observe records one completed operation: its kind, wall-clock
// duration, and outcome. The duration lands in the op's bounded
// latency histogram; err only increments the error counter (errors are
// legitimate responses — full engine, unknown key — and their latency
// is as real as a hit's).
func (m *EngineMetrics) Observe(op Op, d time.Duration, err error) {
	o := &m.ops[op]
	o.count.Add(1)
	if err != nil {
		o.errs.Add(1)
	}
	o.lat.Observe(int64(d))
}

// ObserveBatch records n completed operations of one kind measured with
// a single clock pair: d is the whole batch's wall-clock duration, and
// each operation is attributed the per-item share d/n. The op count and
// the histogram's observation count advance by n together, preserving
// the Latency(op).N() == Count(op) invariant the per-call Observe path
// maintains. errs counts how many of the n returned errors.
func (m *EngineMetrics) ObserveBatch(op Op, d time.Duration, n, errs uint64) {
	if n == 0 {
		return
	}
	o := &m.ops[op]
	o.count.Add(n)
	if errs > 0 {
		o.errs.Add(errs)
	}
	o.lat.ObserveN(int64(d)/int64(n), n)
}

// Count returns the op's completed-operation count.
func (m *EngineMetrics) Count(op Op) uint64 { return m.ops[op].count.Load() }

// Errors returns the op's error count.
func (m *EngineMetrics) Errors(op Op) uint64 { return m.ops[op].errs.Load() }

// Latency returns the op's latency histogram.
func (m *EngineMetrics) Latency(op Op) *Histogram { return &m.ops[op].lat }

// SetGaugeFunc installs the live-state sampler. It is called during
// instrumentation, before the registry serves concurrent traffic.
func (m *EngineMetrics) SetGaugeFunc(f func() Gauges) { m.gauges = f }

// SampleGauges runs the installed sampler, or returns ok=false when
// none is wired.
func (m *EngineMetrics) SampleGauges() (Gauges, bool) {
	if m.gauges == nil {
		return Gauges{}, false
	}
	return m.gauges(), true
}

// OpSnapshot is one op's counters at a point in time.
type OpSnapshot struct {
	Op      Op
	Count   uint64
	Errors  uint64
	Latency HistSnapshot
}

// EngineSnapshot is one engine's counters and gauges at a point in time.
type EngineSnapshot struct {
	Name      string
	Type      string
	Ops       [NumOps]OpSnapshot
	Gauges    Gauges
	HasGauges bool
}

// Snapshot is a monotone view of the whole registry: counters are read
// atomically, so a snapshot taken mid-traffic never exceeds a later one.
type Snapshot struct {
	Engines []EngineSnapshot
	Unknown uint64
	// WAL is the durability layer's state at snapshot time; nil when
	// the server runs without one.
	WAL *WALStats
}

// Snapshot captures every engine's counters, histograms and gauges.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	set := r.set.Load()
	s := Snapshot{
		Engines: make([]EngineSnapshot, 0, len(set.order)),
		Unknown: r.unknown.Load(),
	}
	for _, name := range set.order {
		em := set.engines[name]
		es := EngineSnapshot{Name: name, Type: em.typ}
		for op := Op(0); op < NumOps; op++ {
			es.Ops[op] = OpSnapshot{
				Op:      op,
				Count:   em.ops[op].count.Load(),
				Errors:  em.ops[op].errs.Load(),
				Latency: em.ops[op].lat.Snapshot(),
			}
		}
		es.Gauges, es.HasGauges = em.SampleGauges()
		s.Engines = append(s.Engines, es)
	}
	if fn := r.walFn.Load(); fn != nil {
		ws := (*fn)()
		s.WAL = &ws
	}
	return s
}
