package metrics

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-global expvar name: expvar.Publish
// panics on duplicates, and tests may build several handlers.
var publishOnce sync.Once

// HandlerOption adds a route to the exposition mux — the seam that lets
// caram-server mount endpoints owned by other layers (the tracing
// layer's /debug/traces) on the same port without this package
// importing them.
type HandlerOption func(*http.ServeMux)

// WithHandler mounts h at pattern on the exposition mux.
func WithHandler(pattern string, h http.Handler) HandlerOption {
	return func(mux *http.ServeMux) { mux.Handle(pattern, h) }
}

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition (see WritePrometheus)
//	/debug/vars    expvar JSON — runtime memstats plus a "caram" map of
//	               op counts per engine
//	/debug/pprof/  the standard pprof index, profile, trace, ...
//
// plus whatever extra routes the options mount (caram-server adds the
// tracing layer's /debug/traces). Wire it with `caram-server -http
// :9090`.
func Handler(r *Registry, opts ...HandlerOption) http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("caram", expvar.Func(func() any { return expvarView(r) }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}

// expvarView flattens a snapshot into the JSON-friendly shape expvar
// expects (plain maps; the snapshot structs carry arrays and histograms
// that would serialize poorly).
func expvarView(r *Registry) map[string]any {
	s := r.Snapshot()
	engines := make(map[string]any, len(s.Engines))
	for _, e := range s.Engines {
		ops := make(map[string]any, NumOps)
		for op := Op(0); op < NumOps; op++ {
			ops[op.String()] = map[string]any{
				"count":   e.Ops[op].Count,
				"errors":  e.Ops[op].Errors,
				"mean_ns": e.Ops[op].Latency.MeanNs(),
			}
		}
		ev := map[string]any{"ops": ops}
		if e.HasGauges {
			ev["records"] = e.Gauges.Records
			ev["load_factor"] = e.Gauges.LoadFactor
			ev["amal"] = e.Gauges.AMAL
			ev["overflow"] = e.Gauges.Overflow
			ev["spilled"] = e.Gauges.Spilled
		}
		engines[e.Name] = ev
	}
	return map[string]any{"engines": engines, "unknown_engine": s.Unknown}
}
