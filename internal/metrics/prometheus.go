package metrics

import (
	"fmt"
	"io"
	"time"
)

// Metric family names of the Prometheus exposition. README documents
// them; cmd/metrics-smoke asserts their presence on a live server.
const (
	FamOps          = "caram_ops_total"
	FamOpErrors     = "caram_op_errors_total"
	FamOpLatency    = "caram_op_latency_seconds"
	FamRecords      = "caram_engine_records"
	FamLoadFactor   = "caram_engine_load_factor"
	FamAMAL         = "caram_engine_amal"
	FamLookups      = "caram_engine_lookups_total"
	FamRowsAccessed = "caram_engine_rows_accessed_total"
	FamHits         = "caram_engine_hits_total"
	FamMisses       = "caram_engine_misses_total"
	FamOverflow     = "caram_engine_overflow_records"
	FamSpilled      = "caram_engine_spilled_records"
	FamUnknown      = "caram_unknown_engine_total"

	// Fault-tolerance families (the health state machine and the
	// per-row error coding behind it).
	FamHealth        = "caram_engine_health"
	FamQuarantined   = "caram_engine_quarantined_rows"
	FamEccCorrected  = "caram_engine_ecc_corrected_bits_total"
	FamEccUncorrect  = "caram_engine_ecc_uncorrectable_total"
	FamRowReadErrors = "caram_engine_row_read_errors_total"
	FamScrubRepaired = "caram_engine_scrub_repaired_bits_total"
)

// Lock-free search path families (PR 6): the seqlock read side's
// contention telemetry.
const (
	FamSearchRetries = "caram_search_retries_total"
	FamLockFallbacks = "caram_search_lock_fallbacks_total"
)

// Durability families (PR 10): the write-ahead log's commit horizon
// and fsync cost.
const (
	FamWALAppended     = "caram_wal_appended_lsn"
	FamWALDurable      = "caram_wal_durable_lsn"
	FamWALPending      = "caram_wal_pending_records"
	FamWALSegments     = "caram_wal_segments"
	FamWALSnapshot     = "caram_wal_snapshot_lsn"
	FamWALFsyncs       = "caram_wal_fsyncs_total"
	FamWALFsyncSeconds = "caram_wal_fsync_seconds_total"
	FamWALLastFsyncAge = "caram_wal_last_fsync_age_seconds"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters for ops and errors, a cumulative
// `le`-bucketed histogram per (engine, op) latency, and the live engine
// gauges. Zero-count ops keep their `_count`/`_sum` series (so rates
// are well-defined from scrape one) but emit only the +Inf bucket.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}

	bw.printf("# HELP %s Operations processed, by engine and op.\n# TYPE %s counter\n", FamOps, FamOps)
	for _, e := range s.Engines {
		for op := Op(0); op < NumOps; op++ {
			bw.printf("%s{engine=%q,engine_type=%q,op=%q} %d\n", FamOps, e.Name, e.Type, op.String(), e.Ops[op].Count)
		}
	}

	bw.printf("# HELP %s Operations that returned an error, by engine and op.\n# TYPE %s counter\n", FamOpErrors, FamOpErrors)
	for _, e := range s.Engines {
		for op := Op(0); op < NumOps; op++ {
			bw.printf("%s{engine=%q,engine_type=%q,op=%q} %d\n", FamOpErrors, e.Name, e.Type, op.String(), e.Ops[op].Errors)
		}
	}

	bw.printf("# HELP %s Wall-clock operation latency: lock-free searches are timed end to end, serialized ops at the engine lock boundary (writer lock wait included).\n# TYPE %s histogram\n", FamOpLatency, FamOpLatency)
	for _, e := range s.Engines {
		for op := Op(0); op < NumOps; op++ {
			writeLatency(bw, e.Name, e.Type, op, e.Ops[op].Latency)
		}
	}

	gauge := func(fam, help string, val func(EngineSnapshot) string, typ string) {
		bw.printf("# HELP %s %s\n# TYPE %s %s\n", fam, help, fam, typ)
		for _, e := range s.Engines {
			if !e.HasGauges {
				continue
			}
			bw.printf("%s{engine=%q,engine_type=%q} %s\n", fam, e.Name, e.Type, val(e))
		}
	}
	gauge(FamRecords, "Records stored in the engine's main array.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.Records) }, "gauge")
	gauge(FamLoadFactor, "Load factor alpha of the engine's main array.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%g", e.Gauges.LoadFactor) }, "gauge")
	gauge(FamAMAL, "Average memory accesses per lookup over live traffic (the paper's AMAL, section 3.4).",
		func(e EngineSnapshot) string { return fmt.Sprintf("%g", e.Gauges.AMAL) }, "gauge")
	gauge(FamLookups, "Lookups charged against the engine's main array.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.Lookups) }, "counter")
	gauge(FamRowsAccessed, "Rows read by lookups (AMAL numerator).",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.RowsAccessed) }, "counter")
	gauge(FamHits, "Lookups that found a record.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.Hits) }, "counter")
	gauge(FamMisses, "Lookups that found nothing.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.Misses) }, "counter")
	gauge(FamOverflow, "Records diverted to the parallel overflow CAM.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.Overflow) }, "gauge")
	gauge(FamSpilled, "Main-array records stored outside their home bucket.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.Spilled) }, "gauge")
	gauge(FamHealth, "Engine availability state: 0 healthy, 1 degraded, 2 failed (circuit broken).",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.Health) }, "gauge")
	gauge(FamQuarantined, "Main-array rows quarantined as uncorrectable, pending scrub.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.Quarantined) }, "gauge")
	gauge(FamEccCorrected, "Single-bit errors corrected in place by per-row error coding.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.EccCorrected) }, "counter")
	gauge(FamEccUncorrect, "Uncorrectable row errors detected (each quarantines its row).",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.EccUncorrectable) }, "counter")
	gauge(FamRowReadErrors, "Transient row-read failures observed by checked fetches.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.EccReadErrors) }, "counter")
	gauge(FamScrubRepaired, "Corrupt bits restored from the insert-side shadow by scrub passes.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.ScrubRepairedBits) }, "counter")
	gauge(FamSearchRetries, "Torn seqlock snapshots re-read by the lock-free search path.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.SearchRetries) }, "counter")
	gauge(FamLockFallbacks, "Searches escalated from the lock-free path to the serialized engine lock.",
		func(e EngineSnapshot) string { return fmt.Sprintf("%d", e.Gauges.LockFallbacks) }, "counter")

	bw.printf("# HELP %s Requests addressed to no registered engine.\n# TYPE %s counter\n", FamUnknown, FamUnknown)
	bw.printf("%s %d\n", FamUnknown, s.Unknown)
	if s.WAL != nil {
		writeWAL(bw, s.WAL)
	}
	writeBuildInfo(bw)
	return bw.err
}

// writeLatency emits one (engine, op) latency histogram with
// cumulative buckets in seconds.
func writeLatency(bw *errWriter, engine, typ string, op Op, h HistSnapshot) {
	var cum uint64
	if h.N > 0 {
		for i, c := range h.Counts {
			cum += c
			if c == 0 && cum == 0 {
				continue // skip leading empty buckets
			}
			if cum == h.N && c == 0 {
				continue // skip trailing empty buckets (the +Inf line closes the series)
			}
			bw.printf("%s_bucket{engine=%q,engine_type=%q,op=%q,le=%q} %d\n",
				FamOpLatency, engine, typ, op.String(), formatSeconds(BucketEdgeNs(i)), cum)
		}
	}
	bw.printf("%s_bucket{engine=%q,engine_type=%q,op=%q,le=\"+Inf\"} %d\n", FamOpLatency, engine, typ, op.String(), h.N)
	bw.printf("%s_sum{engine=%q,engine_type=%q,op=%q} %g\n", FamOpLatency, engine, typ, op.String(), float64(h.SumNs)/1e9)
	bw.printf("%s_count{engine=%q,engine_type=%q,op=%q} %d\n", FamOpLatency, engine, typ, op.String(), h.N)
}

// formatSeconds renders a nanosecond edge as seconds for an `le` label.
func formatSeconds(ns int64) string {
	return fmt.Sprintf("%g", float64(ns)/1e9)
}

// writeWAL renders the durability families. LSNs are monotone but
// exposed as gauges (they are positions, not event counts; rate() on
// the appended/durable pair still yields write and commit throughput).
func writeWAL(bw *errWriter, w *WALStats) {
	emit := func(fam, help, typ string, val string) {
		bw.printf("# HELP %s %s\n# TYPE %s %s\n%s %s\n", fam, help, fam, typ, fam, val)
	}
	emit(FamWALAppended, "Highest WAL LSN assigned.", "gauge", fmt.Sprintf("%d", w.AppendedLSN))
	emit(FamWALDurable, "Highest WAL LSN fsynced to disk.", "gauge", fmt.Sprintf("%d", w.DurableLSN))
	emit(FamWALPending, "WAL records appended but not yet durable (commit lag).", "gauge", fmt.Sprintf("%d", w.Pending))
	emit(FamWALSegments, "On-disk WAL segments, including the active one.", "gauge", fmt.Sprintf("%d", w.Segments))
	emit(FamWALSnapshot, "LSN bound of the newest on-disk snapshot.", "gauge", fmt.Sprintf("%d", w.SnapshotLSN))
	emit(FamWALFsyncs, "WAL fsync calls.", "counter", fmt.Sprintf("%d", w.Fsyncs))
	emit(FamWALFsyncSeconds, "Cumulative time spent in WAL fsync.", "counter", fmt.Sprintf("%g", float64(w.FsyncNanos)/1e9))
	age := -1.0
	if w.LastFsync > 0 {
		age = float64(time.Now().UnixNano()-w.LastFsync) / 1e9
	}
	emit(FamWALLastFsyncAge, "Seconds since the last WAL fsync (-1 = never).", "gauge", fmt.Sprintf("%g", age))
}

// errWriter folds the repeated error checks of sequential printfs.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
