package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRouterBackendCounters(t *testing.T) {
	rm := NewRouterMetrics([]string{"b0", "b1"})
	b := rm.Backend(0)
	if b.Name() != "b0" || rm.Backend(1).Name() != "b1" {
		t.Fatalf("names: %q %q", b.Name(), rm.Backend(1).Name())
	}
	for i := 0; i < 5; i++ {
		b.IncOps()
	}
	b.IncErrs()
	b.IncRetries()
	b.IncRetries()
	b.DepthAdd(3)
	b.DepthAdd(-1)
	if b.Ops() != 5 || b.Errs() != 1 || b.Retries() != 2 || b.Inflight() != 2 {
		t.Errorf("counters: ops=%d errs=%d retries=%d inflight=%d",
			b.Ops(), b.Errs(), b.Retries(), b.Inflight())
	}
	if ops, errs := rm.Totals(); ops != 5 || errs != 1 {
		t.Errorf("totals: %d %d", ops, errs)
	}
	if rm.Backends() != 2 {
		t.Errorf("backends: %d", rm.Backends())
	}
	if got := rm.String(); got != "backends=2 ops=5 errors=1" {
		t.Errorf("String() = %q", got)
	}
}

func TestRouterBreakerGauge(t *testing.T) {
	rm := NewRouterMetrics([]string{"b0"})
	b := rm.Backend(0)
	if b.BreakerOpen() {
		t.Fatal("breaker starts open")
	}
	b.SetBreaker(true)
	b.SetBreaker(true) // already open: no second trip
	if !b.BreakerOpen() {
		t.Error("breaker not open after SetBreaker(true)")
	}
	b.SetBreaker(false)
	b.SetBreaker(true) // second real trip
	out := routerProm(t, rm)
	if !strings.Contains(out, FamRouterBreakerTrips+`{backend="b0"} 2`) {
		t.Errorf("trip counter wrong:\n%s", out)
	}
	if !strings.Contains(out, FamRouterBreakerOpen+`{backend="b0"} 1`) {
		t.Errorf("open gauge wrong:\n%s", out)
	}
}

// TestRouterBurstHistogram pins the power-of-two bucketing: bucket le=2^i
// counts bursts of size in (2^(i-1), 2^i], cumulatively rendered.
func TestRouterBurstHistogram(t *testing.T) {
	rm := NewRouterMetrics([]string{"b0"})
	b := rm.Backend(0)
	b.ObserveBurst(0) // ignored
	b.ObserveBurst(1) // le=1
	b.ObserveBurst(2) // le=2
	b.ObserveBurst(3) // le=4
	b.ObserveBurst(4) // le=4
	b.ObserveBurst(5000) // clamps into the last bucket
	if n, mean := b.Bursts(); n != 5 || mean != float64(1+2+3+4+5000)/5 {
		t.Errorf("bursts: n=%d mean=%g", n, mean)
	}
	out := routerProm(t, rm)
	for _, want := range []string{
		FamRouterBurst + `_bucket{backend="b0",le="1"} 1`,
		FamRouterBurst + `_bucket{backend="b0",le="2"} 2`,
		FamRouterBurst + `_bucket{backend="b0",le="4"} 4`,
		FamRouterBurst + `_bucket{backend="b0",le="2048"} 5`,
		FamRouterBurst + `_bucket{backend="b0",le="+Inf"} 5`,
		FamRouterBurst + `_sum{backend="b0"} 5010`,
		FamRouterBurst + `_count{backend="b0"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRouterPrometheusFamilies(t *testing.T) {
	rm := NewRouterMetrics([]string{"alpha", "beta"})
	rm.Backend(1).IncOps()
	out := routerProm(t, rm)
	for _, fam := range []string{
		FamRouterOps, FamRouterErrors, FamRouterRetries,
		FamRouterBreakerTrips, FamRouterBreakerOpen, FamRouterInflight, FamRouterBurst,
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("family %s not exported", fam)
		}
	}
	if !strings.Contains(out, FamRouterOps+`{backend="alpha"} 0`) ||
		!strings.Contains(out, FamRouterOps+`{backend="beta"} 1`) {
		t.Errorf("per-backend labels wrong:\n%s", out)
	}
}

// TestRouterMetricsNilSafe: an unmetered router passes nil all the way
// down; every recorder must be a no-op, not a panic.
func TestRouterMetricsNilSafe(t *testing.T) {
	var rm *RouterMetrics
	b := rm.Backend(3)
	b.IncOps()
	b.IncErrs()
	b.IncRetries()
	b.DepthAdd(1)
	b.SetBreaker(true)
	b.ObserveBurst(8)
	if rm.Backends() != 0 {
		t.Error("nil registry has backends")
	}
	if ops, errs := rm.Totals(); ops != 0 || errs != 0 {
		t.Error("nil registry has totals")
	}
}

func routerProm(t *testing.T, rm *RouterMetrics) string {
	t.Helper()
	rec := httptest.NewRecorder()
	RouterHandler(rm).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	return rec.Body.String()
}
