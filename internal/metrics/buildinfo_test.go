package metrics

import (
	"strconv"
	"strings"
	"testing"
)

// TestBuildInfoFamilies: both expositions — server and router — carry
// the process-identity families, so any scrape identifies the build
// that answered and how long it has been up.
func TestBuildInfoFamilies(t *testing.T) {
	var sb strings.Builder
	r := NewRegistry([]string{"db"})
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	server := sb.String()
	router := routerProm(t, NewRouterMetrics([]string{"b0"}))

	for name, out := range map[string]string{"server": server, "router": router} {
		for _, want := range []string{
			"# TYPE " + FamBuildInfo + " gauge",
			"# TYPE " + FamUptime + " gauge",
			FamBuildInfo + `{version=`,
			`go="` + goVersionLabel(t) + `"`,
			`revision=`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%s exposition missing %q\n%s", name, want, out)
			}
		}
		// The info metric is the conventional constant 1.
		i := strings.Index(out, FamBuildInfo+`{`)
		if i < 0 {
			continue
		}
		line := out[i:]
		line = line[:strings.IndexByte(line, '\n')]
		if !strings.HasSuffix(line, "} 1") {
			t.Errorf("%s: build info sample not constant 1: %q", name, line)
		}
		// Uptime is a plausible non-negative seconds value.
		j := strings.Index(out, "\n"+FamUptime+" ")
		if j < 0 {
			t.Errorf("%s: no uptime sample", name)
			continue
		}
		val := out[j+1+len(FamUptime)+1:]
		val = val[:strings.IndexByte(val, '\n')]
		up, err := strconv.ParseFloat(val, 64)
		if err != nil || up < 0 {
			t.Errorf("%s: uptime sample %q", name, val)
		}
	}
}

// goVersionLabel returns the label value buildIdentity reports for the
// running toolchain.
func goVersionLabel(t *testing.T) string {
	t.Helper()
	_, gv, _ := buildIdentity()
	return gv
}
