package metrics

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOpStringsAndParse(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOp(%q) = %v, %v", op.String(), got, err)
		}
		upper, err := ParseOp(strings.ToUpper(op.String()))
		if err != nil || upper != op {
			t.Errorf("ParseOp upper %q failed: %v", op.String(), err)
		}
	}
	if _, err := ParseOp("STATS"); err == nil {
		t.Error("ParseOp accepted STATS")
	}
	if Op(99).String() != "unknown" {
		t.Error("out-of-range op string")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.AddUnknown(3)
	if r.Engine("db") != nil || r.Engines() != nil || r.Unknown() != 0 {
		t.Error("nil registry leaked state")
	}
	if ops, errs := r.Totals(); ops != 0 || errs != 0 {
		t.Error("nil registry totals non-zero")
	}
	if s := r.Snapshot(); len(s.Engines) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
}

func TestObserveCounts(t *testing.T) {
	r := NewRegistry([]string{"db", "aux"})
	em := r.Engine("db")
	em.Observe(OpInsert, time.Microsecond, nil)
	em.Observe(OpInsert, time.Microsecond, errors.New("full"))
	em.Observe(OpSearch, 500*time.Nanosecond, nil)
	if em.Count(OpInsert) != 2 || em.Errors(OpInsert) != 1 {
		t.Errorf("insert counters = %d/%d", em.Count(OpInsert), em.Errors(OpInsert))
	}
	if em.Count(OpSearch) != 1 || em.Errors(OpSearch) != 0 {
		t.Errorf("search counters = %d/%d", em.Count(OpSearch), em.Errors(OpSearch))
	}
	if n := em.Latency(OpInsert).N(); n != 2 {
		t.Errorf("insert latency N = %d", n)
	}
	ops, errs := r.Totals()
	if ops != 3 || errs != 1 {
		t.Errorf("totals = %d/%d", ops, errs)
	}
	r.AddUnknown(2)
	if r.Unknown() != 2 {
		t.Errorf("unknown = %d", r.Unknown())
	}
	if r.Engine("nope") != nil {
		t.Error("unknown engine resolved")
	}
}

// TestConcurrentIncrementsRace hammers one registry from 32 goroutines
// across engines and ops; the final counts must be exact. Run under
// -race (make race) this is the layer's core safety check.
func TestConcurrentIncrementsRace(t *testing.T) {
	const (
		workers = 32
		iters   = 500
	)
	names := []string{"e0", "e1", "e2", "e3"}
	r := NewRegistry(names)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			em := r.Engine(names[g%len(names)])
			for i := 0; i < iters; i++ {
				op := Op(i % int(NumOps))
				var err error
				if i%5 == 0 {
					err = errors.New("synthetic")
				}
				em.Observe(op, time.Duration(i)*time.Nanosecond, err)
				if i%7 == 0 {
					r.AddUnknown(1)
				}
				if i%50 == 0 {
					_ = r.Snapshot() // readers race the writers
				}
			}
		}()
	}
	wg.Wait()

	wantPerEngine := uint64(workers / len(names) * iters)
	var ops, errs uint64
	for _, n := range names {
		em := r.Engine(n)
		var engTotal uint64
		for op := Op(0); op < NumOps; op++ {
			engTotal += em.Count(op)
			ops += em.Count(op)
			errs += em.Errors(op)
			if em.Latency(op).N() != em.Count(op) {
				t.Errorf("%s/%s: latency N %d != count %d", n, op, em.Latency(op).N(), em.Count(op))
			}
		}
		if engTotal != wantPerEngine {
			t.Errorf("engine %s total = %d, want %d", n, engTotal, wantPerEngine)
		}
	}
	if want := uint64(workers * iters); ops != want {
		t.Errorf("total ops = %d, want %d", ops, want)
	}
	if want := uint64(workers * iters / 5); errs != want {
		t.Errorf("total errors = %d, want %d", errs, want)
	}
	if want := uint64(workers * ((iters + 6) / 7)); r.Unknown() != want {
		t.Errorf("unknown = %d, want %d", r.Unknown(), want)
	}
}

// TestSnapshotConsistencyMidStress takes snapshot pairs while writers
// are running: every counter in the earlier snapshot must be ≤ the same
// counter in the later one (monotone reads), and a final quiescent
// snapshot must equal the written totals.
func TestSnapshotConsistencyMidStress(t *testing.T) {
	const writers = 8
	r := NewRegistry([]string{"db"})
	em := r.Engine("db")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				em.Observe(Op(i%int(NumOps)), time.Duration(i%4096)*time.Nanosecond, nil)
			}
		}()
	}
	leq := func(a, b Snapshot) bool {
		if a.Unknown > b.Unknown {
			return false
		}
		for i := range a.Engines {
			for op := Op(0); op < NumOps; op++ {
				x, y := a.Engines[i].Ops[op], b.Engines[i].Ops[op]
				if x.Count > y.Count || x.Errors > y.Errors || x.Latency.N > y.Latency.N {
					return false
				}
				for j := range x.Latency.Counts {
					if x.Latency.Counts[j] > y.Latency.Counts[j] {
						return false
					}
				}
			}
		}
		return true
	}
	for round := 0; round < 200; round++ {
		s1 := r.Snapshot()
		s2 := r.Snapshot()
		if !leq(s1, s2) {
			t.Fatalf("round %d: earlier snapshot exceeds later one", round)
		}
	}
	close(stop)
	wg.Wait()
	final := r.Snapshot()
	var n uint64
	for op := Op(0); op < NumOps; op++ {
		if final.Engines[0].Ops[op].Count != final.Engines[0].Ops[op].Latency.N {
			t.Errorf("op %s: count %d != latency N %d", op,
				final.Engines[0].Ops[op].Count, final.Engines[0].Ops[op].Latency.N)
		}
		n += final.Engines[0].Ops[op].Count
	}
	if ops, _ := r.Totals(); ops != n {
		t.Errorf("totals %d != snapshot sum %d", ops, n)
	}
}

func TestGaugeSampling(t *testing.T) {
	r := NewRegistry([]string{"db"})
	em := r.Engine("db")
	if _, ok := em.SampleGauges(); ok {
		t.Error("gauges reported before a sampler is wired")
	}
	em.SetGaugeFunc(func() Gauges {
		return Gauges{Records: 7, LoadFactor: 0.5, AMAL: 1.25, Overflow: 2, Spilled: 1}
	})
	g, ok := em.SampleGauges()
	if !ok || g.Records != 7 || g.AMAL != 1.25 {
		t.Errorf("gauges = %+v, ok=%v", g, ok)
	}
	s := r.Snapshot()
	if !s.Engines[0].HasGauges || s.Engines[0].Gauges.Overflow != 2 {
		t.Errorf("snapshot gauges = %+v", s.Engines[0])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry([]string{"db"})
	em := r.Engine("db")
	em.Observe(OpSearch, time.Microsecond, nil)
	em.Observe(OpSearch, 2*time.Microsecond, errors.New("x"))
	em.SetGaugeFunc(func() Gauges { return Gauges{Records: 3, LoadFactor: 0.25, AMAL: 1.5} })
	r.AddUnknown(4)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		FamOps + `{engine="db",engine_type="exact",op="search"} 2`,
		FamOpErrors + `{engine="db",engine_type="exact",op="search"} 1`,
		FamOpLatency + `_count{engine="db",engine_type="exact",op="search"} 2`,
		FamOpLatency + `_bucket{engine="db",engine_type="exact",op="search",le="+Inf"} 2`,
		FamOps + `{engine="db",engine_type="exact",op="insert"} 0`,
		FamRecords + `{engine="db",engine_type="exact"} 3`,
		FamLoadFactor + `{engine="db",engine_type="exact"} 0.25`,
		FamAMAL + `{engine="db",engine_type="exact"} 1.5`,
		FamUnknown + " 4",
		"# TYPE " + FamOpLatency + " histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Latency buckets must be cumulative and end at the count.
	if !strings.Contains(out, `le="+Inf"} 2`) {
		t.Error("missing +Inf closing bucket")
	}
}

func TestObserveBatch(t *testing.T) {
	r := NewRegistry([]string{"db"})
	em := r.Engine("db")
	// A 64-item batch measured with one clock pair must advance count,
	// errors, and histogram observations together, each item carrying
	// the per-item share of the batch duration.
	em.ObserveBatch(OpMSearch, 64*time.Microsecond, 64, 3)
	if got := em.Count(OpMSearch); got != 64 {
		t.Fatalf("Count = %d, want 64", got)
	}
	if got := em.Errors(OpMSearch); got != 3 {
		t.Fatalf("Errors = %d, want 3", got)
	}
	h := em.Latency(OpMSearch).Snapshot()
	if h.N != 64 {
		t.Fatalf("Latency N = %d, want 64 (must equal Count)", h.N)
	}
	if h.SumNs != 64*int64(time.Microsecond) {
		t.Fatalf("SumNs = %d, want %d", h.SumNs, 64*int64(time.Microsecond))
	}
	if mean := h.MeanNs(); mean != float64(time.Microsecond) {
		t.Fatalf("MeanNs = %v, want %v", mean, float64(time.Microsecond))
	}
	// Zero-sized batches are ignored entirely.
	em.ObserveBatch(OpMSearch, time.Second, 0, 0)
	if got := em.Count(OpMSearch); got != 64 {
		t.Fatalf("Count after empty batch = %d, want 64", got)
	}
	// ObserveN floors negative durations at zero like Observe.
	var hist Histogram
	hist.ObserveN(-5, 2)
	if hist.N() != 2 || hist.sumNs.Load() != 0 {
		t.Fatalf("negative ObserveN: N=%d sum=%d", hist.N(), hist.sumNs.Load())
	}
}
