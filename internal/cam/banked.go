package cam

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/hash"
	"caram/internal/match"
)

// Banked is the CoolCAM scheme of Zane, Narlikar and Basu (§5.2): a
// two-phase lookup where a bit-selection first phase picks one TCAM
// partition and only that partition searches, cutting power by the
// partition count. Like CA-RAM, stored keys whose don't-care bits
// overlap the selection bits must be duplicated into every partition
// they may match in, and a search key with don't-care selection bits
// must search multiple partitions.
type Banked struct {
	sel     *hash.BitSelect
	banks   []*Device
	keyBits int
	kind    Kind
}

// NewBanked builds 2^sel.Bits() partitions, each with perBank entries.
func NewBanked(perBank, keyBits int, kind Kind, sel *hash.BitSelect) (*Banked, error) {
	if sel == nil || sel.Bits() < 1 || sel.Bits() > 8 {
		return nil, fmt.Errorf("cam: bank selector must produce 1..8 bits")
	}
	n := 1 << uint(sel.Bits())
	b := &Banked{sel: sel, keyBits: keyBits, kind: kind}
	for i := 0; i < n; i++ {
		d, err := New(Config{Entries: perBank, KeyBits: keyBits, Kind: kind})
		if err != nil {
			return nil, err
		}
		b.banks = append(b.banks, d)
	}
	return b, nil
}

// Banks returns the partition count.
func (b *Banked) Banks() int { return len(b.banks) }

// Len returns the total stored entries (duplicates counted per copy).
func (b *Banked) Len() int {
	n := 0
	for _, d := range b.banks {
		n += d.Len()
	}
	return n
}

// Insert stores the record in every partition its key can match in.
func (b *Banked) Insert(rec match.Record, priority int) error {
	for _, idx := range b.sel.TernaryIndices(rec.Key) {
		if err := b.banks[idx].Insert(rec, priority); err != nil {
			return fmt.Errorf("bank %d: %w", idx, err)
		}
	}
	return nil
}

// Search runs the two-phase lookup: the selector picks the partitions
// (one, unless the search key masks selection bits) and only those
// search. The winning result is the highest-priority match across the
// searched partitions.
func (b *Banked) Search(search bitutil.Ternary) Result {
	best := Result{Index: -1}
	bestPrio := -1
	total := 0
	for _, idx := range b.sel.TernaryIndices(search) {
		r := b.banks[idx].Search(search)
		total += r.Count
		if r.Found {
			if p := b.banks[idx].prio[r.Index]; p > bestPrio {
				best, bestPrio = r, p
			}
		}
	}
	best.Count = total
	return best
}

// Stats aggregates partition activity — the quantity that shows the
// power saving: CellsActivated grows by one partition per search, not
// the whole device.
func (b *Banked) Stats() Stats {
	var s Stats
	for _, d := range b.banks {
		st := d.Stats()
		s.Searches += st.Searches
		s.RowsActivated += st.RowsActivated
		s.CellsActivated += st.CellsActivated
		s.Inserts += st.Inserts
		s.InsertMoves += st.InsertMoves
		s.Deletes += st.Deletes
		s.DeleteMoves += st.DeleteMoves
	}
	return s
}

// Verify checks every partition's ordering invariant.
func (b *Banked) Verify() string {
	for i, d := range b.banks {
		if msg := d.Verify(); msg != "" {
			return fmt.Sprintf("bank %d: %s", i, msg)
		}
	}
	return ""
}
