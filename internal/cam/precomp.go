package cam

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/match"
)

// Precomputed is the precomputation-based low-power scheme of Lin,
// Chang and Liu (§5.2): the first phase matches a precomputed
// signature — the number of ones in the key — so the second-phase
// search activates only entries sharing the search key's signature.
// As the paper notes, the scheme applies to binary CAMs only: a
// don't-care bit has no definite ones-count.
type Precomputed struct {
	keyBits int
	groups  [][]match.Record // indexed by ones-count 0..keyBits
	total   int
	stats   Stats
}

// NewPrecomputed builds an empty device for keyBits-bit binary keys.
func NewPrecomputed(keyBits int) (*Precomputed, error) {
	if keyBits < 1 || keyBits > 128 {
		return nil, fmt.Errorf("cam: KeyBits %d outside [1,128]", keyBits)
	}
	return &Precomputed{
		keyBits: keyBits,
		groups:  make([][]match.Record, keyBits+1),
	}, nil
}

// Insert stores a binary record under its ones-count signature.
func (p *Precomputed) Insert(rec match.Record) error {
	if !rec.Key.Mask.IsZero() {
		return fmt.Errorf("cam: precomputation CAM is binary only")
	}
	sig := rec.Key.Value.Trunc(p.keyBits).OnesCount()
	p.groups[sig] = append(p.groups[sig], rec)
	p.total++
	p.stats.Inserts++
	return nil
}

// Len returns the stored entry count.
func (p *Precomputed) Len() int { return p.total }

// Search matches an exact key: only the signature group activates.
func (p *Precomputed) Search(key bitutil.Vec128) Result {
	p.stats.Searches++
	sig := key.Trunc(p.keyBits).OnesCount()
	group := p.groups[sig]
	p.stats.RowsActivated += uint64(len(group))
	p.stats.CellsActivated += uint64(len(group)) * uint64(p.keyBits)
	res := Result{Index: -1}
	for i, rec := range group {
		if rec.Key.Value == key.Trunc(p.keyBits) {
			res.Count++
			if !res.Found {
				res.Found, res.Index, res.Record = true, i, rec
			}
		}
	}
	return res
}

// GroupSizes returns the entry count per signature, for diagnostics
// (the scheme's saving is the ratio of the mean group to the total).
func (p *Precomputed) GroupSizes() []int {
	out := make([]int, len(p.groups))
	for i, g := range p.groups {
		out[i] = len(g)
	}
	return out
}

// Stats returns activity counters.
func (p *Precomputed) Stats() Stats { return p.stats }
