package cam

import (
	"math/rand"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/hash"
	"caram/internal/match"
)

func TestBankedBasics(t *testing.T) {
	// 4 partitions selected by key bits 6..7.
	sel := hash.NewBitSelect([]int{6, 7})
	b, err := NewBanked(16, 8, Ternary, sel)
	if err != nil {
		t.Fatal(err)
	}
	if b.Banks() != 4 {
		t.Fatalf("Banks = %d", b.Banks())
	}
	for i := 0; i < 32; i++ {
		rec := exact(uint64(i*8), uint64(i))
		if err := b.Insert(rec, 8); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 32 {
		t.Errorf("Len = %d", b.Len())
	}
	res := b.Search(bitutil.Exact(bitutil.FromUint64(5 * 8)))
	if !res.Found || res.Record.Data.Uint64() != 5 {
		t.Fatalf("search = %+v", res)
	}
	if msg := b.Verify(); msg != "" {
		t.Errorf("Verify: %s", msg)
	}
}

// The point of the scheme: one search activates one partition, so the
// cell activity is 1/Banks of a flat TCAM's.
func TestBankedPowerSaving(t *testing.T) {
	sel := hash.NewBitSelect([]int{6, 7})
	banked, _ := NewBanked(64, 8, Ternary, sel)
	flat := MustNew(Config{Entries: 256, KeyBits: 8, Kind: Ternary})
	for i := 0; i < 128; i++ {
		rec := exact(uint64(i), 0)
		if err := banked.Insert(rec, 4); err != nil {
			t.Fatal(err)
		}
		if err := flat.Insert(rec, 4); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k := bitutil.Exact(bitutil.FromUint64(uint64(i)))
		if banked.Search(k).Found != flat.Search(k).Found {
			t.Fatal("banked and flat disagree")
		}
	}
	bankCells := banked.Stats().CellsActivated
	flatCells := flat.Stats().CellsActivated
	if bankCells*4 != flatCells {
		t.Errorf("banked activity %d, flat %d: want exactly 1/4", bankCells, flatCells)
	}
}

// Don't-care bits in the selection positions force duplication on
// insert and multi-partition searches — the same §4 cost CA-RAM pays.
func TestBankedDuplication(t *testing.T) {
	sel := hash.NewBitSelect([]int{6, 7})
	b, _ := NewBanked(8, 8, Ternary, sel)
	wild, _ := bitutil.ParseTernary("XX000000") // both selector bits masked
	if err := b.Insert(match.Record{Key: wild, Data: bitutil.FromUint64(9)}, 6); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 {
		t.Errorf("Len = %d, want one copy per partition", b.Len())
	}
	// Any concrete key in the class finds it, searching one partition.
	res := b.Search(bitutil.Exact(bitutil.FromUint64(0b01000000)))
	if !res.Found || res.Record.Data.Uint64() != 9 {
		t.Fatalf("search = %+v", res)
	}
	// A masked search key searches several partitions.
	query, _ := bitutil.ParseTernary("X1000000")
	before := b.Stats().Searches
	res = b.Search(query)
	if !res.Found {
		t.Fatal("masked search missed")
	}
	if got := b.Stats().Searches - before; got != 2 {
		t.Errorf("masked search activated %d partitions, want 2", got)
	}
}

func TestBankedLPMPriorityAcrossBanks(t *testing.T) {
	// Selector on bits 6..7; a short prefix masking those bits is
	// duplicated, and the LPM winner must still be the longest prefix.
	sel := hash.NewBitSelect([]int{6, 7})
	b, _ := NewBanked(8, 8, Ternary, sel)
	short, _ := bitutil.ParseTernary("XXXXXXXX")
	long, _ := bitutil.ParseTernary("0100XXXX")
	if err := b.Insert(match.Record{Key: short, Data: bitutil.FromUint64(1)}, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(match.Record{Key: long, Data: bitutil.FromUint64(2)}, 4); err != nil {
		t.Fatal(err)
	}
	res := b.Search(bitutil.Exact(bitutil.FromUint64(0b01001111)))
	if !res.Found || res.Record.Data.Uint64() != 2 {
		t.Fatalf("LPM across banks = %+v", res)
	}
}

func TestNewBankedValidation(t *testing.T) {
	if _, err := NewBanked(8, 8, Ternary, nil); err == nil {
		t.Error("nil selector accepted")
	}
	big := make([]int, 9)
	for i := range big {
		big[i] = i
	}
	if _, err := NewBanked(8, 8, Ternary, hash.NewBitSelect(big)); err == nil {
		t.Error("9-bit selector accepted")
	}
	if _, err := NewBanked(0, 8, Ternary, hash.NewBitSelect([]int{0})); err == nil {
		t.Error("zero-entry banks accepted")
	}
}

func TestPrecomputed(t *testing.T) {
	p, err := NewPrecomputed(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = rng.Uint64() & 0xffff
		if err := p.Insert(exact(keys[i], uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 200 {
		t.Errorf("Len = %d", p.Len())
	}
	for i, k := range keys {
		res := p.Search(bitutil.FromUint64(k))
		if !res.Found {
			t.Fatalf("key %#x lost", k)
		}
		_ = i
	}
	if p.Search(bitutil.FromUint64(0xFFFF)).Found && !contains(keys, 0xFFFF) {
		t.Error("phantom hit")
	}
	// Activity: far fewer cells than a flat search of 200 entries each
	// time — the group sizes bound it.
	st := p.Stats()
	if st.CellsActivated >= st.Searches*200*16 {
		t.Error("no activity saving")
	}
	sizes := p.GroupSizes()
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 200 {
		t.Errorf("group sizes sum to %d", sum)
	}
}

func TestPrecomputedRejectsTernary(t *testing.T) {
	p, _ := NewPrecomputed(8)
	wild, _ := bitutil.ParseTernary("1XXX0000")
	if err := p.Insert(match.Record{Key: wild}); err == nil {
		t.Error("ternary key accepted by binary scheme")
	}
	if _, err := NewPrecomputed(0); err == nil {
		t.Error("zero key bits accepted")
	}
}

func contains(xs []uint64, v uint64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
