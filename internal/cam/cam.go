// Package cam models the baseline the paper compares against:
// conventional content-addressable memory (binary CAM) and ternary CAM
// (§2.2). A search compares the key against every stored row in
// parallel and a priority encoder returns the lowest-index match, so
// physical order defines priority; for longest-prefix match the device
// is kept sorted by decreasing prefix length, maintained incrementally
// with the one-move-per-group update algorithm in the style of Shah and
// Gupta's TCAM update work.
//
// The model also accounts the activity that makes CAM expensive: every
// search activates all searchlines and matchlines (O(w+n) lines, O(w·n)
// match transistors), which the cost package turns into power.
package cam

import (
	"errors"
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/match"
)

// Errors returned by device operations.
var (
	// ErrFull means the device has no free entry.
	ErrFull = errors.New("cam: device full")
	// ErrNotFound is returned by Delete for absent keys.
	ErrNotFound = errors.New("cam: entry not found")
)

// Kind distinguishes binary CAM from ternary CAM.
type Kind int

// Device kinds.
const (
	Binary Kind = iota
	Ternary
)

// String names the kind.
func (k Kind) String() string {
	if k == Binary {
		return "CAM"
	}
	return "TCAM"
}

// Config describes a CAM device.
type Config struct {
	Entries int  // w: number of rows
	KeyBits int  // n: bits per stored key
	Kind    Kind // Binary rejects masked keys
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("cam: Entries %d must be positive", c.Entries)
	}
	if c.KeyBits < 1 || c.KeyBits > 128 {
		return fmt.Errorf("cam: KeyBits %d outside [1,128]", c.KeyBits)
	}
	return nil
}

// Stats accumulates device activity.
type Stats struct {
	Searches       uint64
	RowsActivated  uint64 // w per search: every matchline precharges
	CellsActivated uint64 // w*n per search: every match transistor
	Inserts        uint64
	InsertMoves    uint64 // entry relocations performed by ordered insert
	Deletes        uint64
	DeleteMoves    uint64
}

// Device is a behavioral CAM/TCAM.
type Device struct {
	cfg     Config
	entries []match.Record // [0, total) valid, descending priority groups
	prio    []int          // priority of each stored entry
	byPrio  []int          // count of entries per priority value
	total   int
	stats   Stats
}

// New builds a device.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		cfg:     cfg,
		entries: make([]match.Record, cfg.Entries),
		prio:    make([]int, cfg.Entries),
		byPrio:  make([]int, 130), // priorities 0..129 (CareCount of 128-bit key + margin)
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Len returns the number of stored entries.
func (d *Device) Len() int { return d.total }

// Capacity returns w.
func (d *Device) Capacity() int { return d.cfg.Entries }

// Result is the outcome of one search.
type Result struct {
	Found  bool
	Index  int // winning row (lowest index = highest priority)
	Record match.Record
	Count  int // total matching rows (multi-match condition)
}

// Search compares the key against every stored row and priority-encodes
// the result. The search key may carry don't-care bits. Activity is
// charged for the full device, matching hardware behavior.
func (d *Device) Search(search bitutil.Ternary) Result {
	d.stats.Searches++
	d.stats.RowsActivated += uint64(d.cfg.Entries)
	d.stats.CellsActivated += uint64(d.cfg.Entries) * uint64(d.cfg.KeyBits)
	res := Result{Index: -1}
	for i := 0; i < d.total; i++ {
		if d.entries[i].Key.Matches(search) {
			res.Count++
			if !res.Found {
				res.Found = true
				res.Index = i
				res.Record = d.entries[i]
			}
		}
	}
	return res
}

// start returns the index of the first entry of priority group p, i.e.
// the number of entries with priority greater than p.
func (d *Device) start(p int) int {
	s := 0
	for r := p + 1; r < len(d.byPrio); r++ {
		s += d.byPrio[r]
	}
	return s
}

// Insert stores a record with the given priority (higher priority wins
// on multi-match; for LPM use the prefix length). The device keeps
// priority groups contiguous and descending; opening a slot costs at
// most one entry move per lower-priority group, the key property of
// CAM update algorithms.
func (d *Device) Insert(rec match.Record, priority int) error {
	if d.total >= d.cfg.Entries {
		return ErrFull
	}
	if priority < 0 || priority >= len(d.byPrio) {
		return fmt.Errorf("cam: priority %d out of range", priority)
	}
	if d.cfg.Kind == Binary && !rec.Key.Mask.IsZero() {
		return fmt.Errorf("cam: masked key in a binary CAM")
	}
	rec.Key = rec.Key.Normalize()
	hole := d.total
	for p := 0; p < priority; p++ {
		if d.byPrio[p] == 0 {
			continue
		}
		first := d.start(p)
		d.entries[hole], d.prio[hole] = d.entries[first], d.prio[first]
		d.stats.InsertMoves++
		hole = first
	}
	d.entries[hole], d.prio[hole] = rec, priority
	d.byPrio[priority]++
	d.total++
	d.stats.Inserts++
	return nil
}

// Append stores a record at the lowest priority — sufficient for
// exact-match databases where multi-match cannot occur.
func (d *Device) Append(rec match.Record) error { return d.Insert(rec, 0) }

// Delete removes the entry whose key equals key exactly (value and
// mask), compacting with one move per affected priority group.
func (d *Device) Delete(key bitutil.Ternary) error {
	key = key.Normalize()
	idx := -1
	for i := 0; i < d.total; i++ {
		if d.entries[i].Key.Equal(key) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ErrNotFound
	}
	p := d.prio[idx]
	last := d.start(p) + d.byPrio[p] - 1
	if last != idx {
		d.entries[idx], d.prio[idx] = d.entries[last], d.prio[last]
		d.stats.DeleteMoves++
	}
	hole := last
	for q := p - 1; q >= 0; q-- {
		if d.byPrio[q] == 0 {
			continue
		}
		qLast := d.start(q) + d.byPrio[q] - 1
		d.entries[hole], d.prio[hole] = d.entries[qLast], d.prio[qLast]
		d.stats.DeleteMoves++
		hole = qLast
	}
	d.byPrio[p]--
	d.total--
	d.stats.Deletes++
	d.entries[d.total] = match.Record{}
	d.prio[d.total] = 0
	return nil
}

// Entry returns the stored record at a physical row, for inspection.
func (d *Device) Entry(i int) (match.Record, bool) {
	if i < 0 || i >= d.total {
		return match.Record{}, false
	}
	return d.entries[i], true
}

// EntryAt returns the stored record and its priority at a physical
// row — the enumerator durability snapshots use to serialize the
// device (Insert(rec, priority) round-trips each entry).
func (d *Device) EntryAt(i int) (match.Record, int, bool) {
	if i < 0 || i >= d.total {
		return match.Record{}, 0, false
	}
	return d.entries[i], d.prio[i], true
}

// Stats returns a snapshot of activity counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes activity counters.
func (d *Device) ResetStats() { d.stats = Stats{} }

// Verify checks the priority-ordering invariant: priorities are
// non-increasing along physical rows and group counts are consistent.
// It returns a description of the first violation, or "".
func (d *Device) Verify() string {
	for i := 1; i < d.total; i++ {
		if d.prio[i] > d.prio[i-1] {
			return fmt.Sprintf("priority inversion at row %d: %d after %d", i, d.prio[i], d.prio[i-1])
		}
	}
	counts := make([]int, len(d.byPrio))
	for i := 0; i < d.total; i++ {
		counts[d.prio[i]]++
	}
	for p := range counts {
		if counts[p] != d.byPrio[p] {
			return fmt.Sprintf("priority %d: counted %d, recorded %d", p, counts[p], d.byPrio[p])
		}
	}
	return ""
}
