package cam

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/match"
)

func exact(key, data uint64) match.Record {
	return match.Record{Key: bitutil.Exact(bitutil.FromUint64(key)), Data: bitutil.FromUint64(data)}
}

func tern(t *testing.T, s string, data uint64) match.Record {
	t.Helper()
	k, ok := bitutil.ParseTernary(s)
	if !ok {
		t.Fatalf("bad ternary %q", s)
	}
	return match.Record{Key: k, Data: bitutil.FromUint64(data)}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Entries: 0, KeyBits: 32}).Validate(); err == nil {
		t.Error("zero entries accepted")
	}
	if err := (Config{Entries: 4, KeyBits: 0}).Validate(); err == nil {
		t.Error("zero key bits accepted")
	}
	if err := (Config{Entries: 4, KeyBits: 200}).Validate(); err == nil {
		t.Error("oversized key accepted")
	}
	if err := (Config{Entries: 4, KeyBits: 64}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Binary.String() != "CAM" || Ternary.String() != "TCAM" {
		t.Error("Kind names wrong")
	}
}

func TestSearchExactAndMiss(t *testing.T) {
	d := MustNew(Config{Entries: 8, KeyBits: 32})
	for i := 0; i < 4; i++ {
		if err := d.Append(exact(uint64(i*10), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	res := d.Search(bitutil.Exact(bitutil.FromUint64(20)))
	if !res.Found || res.Record.Data.Uint64() != 2 || res.Count != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res := d.Search(bitutil.Exact(bitutil.FromUint64(99))); res.Found || res.Index != -1 {
		t.Errorf("miss = %+v", res)
	}
	if d.Len() != 4 || d.Capacity() != 8 {
		t.Error("Len/Capacity wrong")
	}
}

func TestBinaryRejectsMask(t *testing.T) {
	d := MustNew(Config{Entries: 2, KeyBits: 8, Kind: Binary})
	if err := d.Insert(tern(t, "1XXX0000", 0), 4); err == nil {
		t.Error("binary CAM accepted a masked key")
	}
	dt := MustNew(Config{Entries: 2, KeyBits: 8, Kind: Ternary})
	if err := dt.Insert(tern(t, "1XXX0000", 0), 4); err != nil {
		t.Errorf("ternary CAM rejected a masked key: %v", err)
	}
}

func TestLPMPriority(t *testing.T) {
	d := MustNew(Config{Entries: 8, KeyBits: 8, Kind: Ternary})
	// Insert short prefix first, long second — priority must still give
	// the long one on a multi-match.
	short := tern(t, "11XXXXXX", 1)
	long := tern(t, "1100XXXX", 2)
	if err := d.Insert(short, short.Key.Specificity(8)); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(long, long.Key.Specificity(8)); err != nil {
		t.Fatal(err)
	}
	if msg := d.Verify(); msg != "" {
		t.Fatalf("Verify: %s", msg)
	}
	res := d.Search(bitutil.Exact(bitutil.FromUint64(0b11001111)))
	if !res.Found || res.Record.Data.Uint64() != 2 || res.Count != 2 {
		t.Fatalf("LPM = %+v", res)
	}
	// Only the short prefix covers 1111....
	res = d.Search(bitutil.Exact(bitutil.FromUint64(0b11111111)))
	if !res.Found || res.Record.Data.Uint64() != 1 {
		t.Fatalf("short match = %+v", res)
	}
}

func TestInsertMovesBounded(t *testing.T) {
	d := MustNew(Config{Entries: 100, KeyBits: 8, Kind: Ternary})
	// Fill groups 0..7, then insert at priority 8: at most one move per
	// nonempty lower group.
	for p := 0; p < 8; p++ {
		for i := 0; i < 3; i++ {
			if err := d.Insert(exact(uint64(p*16+i), 0), p); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := d.Stats().InsertMoves
	if err := d.Insert(exact(200, 0), 8); err != nil {
		t.Fatal(err)
	}
	if moves := d.Stats().InsertMoves - before; moves > 8 {
		t.Errorf("insert performed %d moves, want <= 8", moves)
	}
	if msg := d.Verify(); msg != "" {
		t.Fatalf("Verify: %s", msg)
	}
}

func TestErrFullAndBadPriority(t *testing.T) {
	d := MustNew(Config{Entries: 1, KeyBits: 8})
	if err := d.Append(exact(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(exact(2, 0)); !errors.Is(err, ErrFull) {
		t.Errorf("full device: %v", err)
	}
	d2 := MustNew(Config{Entries: 4, KeyBits: 8})
	if err := d2.Insert(exact(1, 0), -1); err == nil {
		t.Error("negative priority accepted")
	}
	if err := d2.Insert(exact(1, 0), 1000); err == nil {
		t.Error("huge priority accepted")
	}
}

func TestDelete(t *testing.T) {
	d := MustNew(Config{Entries: 16, KeyBits: 8, Kind: Ternary})
	recs := []match.Record{
		tern(t, "11111111", 1), tern(t, "1111111X", 2),
		tern(t, "111111XX", 3), tern(t, "11111XXX", 4),
	}
	for _, r := range recs {
		if err := d.Insert(r, r.Key.Specificity(8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete(recs[1].Key); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
	if msg := d.Verify(); msg != "" {
		t.Fatalf("Verify after delete: %s", msg)
	}
	if err := d.Delete(recs[1].Key); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	// Remaining records still searchable with right priority.
	res := d.Search(bitutil.Exact(bitutil.FromUint64(0xff)))
	if !res.Found || res.Record.Data.Uint64() != 1 {
		t.Fatalf("post-delete search = %+v", res)
	}
}

func TestActivityAccounting(t *testing.T) {
	d := MustNew(Config{Entries: 32, KeyBits: 64})
	d.Append(exact(1, 0))
	d.Search(bitutil.Exact(bitutil.FromUint64(1)))
	d.Search(bitutil.Exact(bitutil.FromUint64(2)))
	s := d.Stats()
	if s.Searches != 2 {
		t.Errorf("Searches = %d", s.Searches)
	}
	// Full-device activity regardless of occupancy.
	if s.RowsActivated != 64 || s.CellsActivated != 2*32*64 {
		t.Errorf("activity = %+v", s)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestEntryAccessor(t *testing.T) {
	d := MustNew(Config{Entries: 4, KeyBits: 8})
	d.Append(exact(5, 50))
	if r, ok := d.Entry(0); !ok || r.Data.Uint64() != 50 {
		t.Errorf("Entry(0) = %+v, %v", r, ok)
	}
	if _, ok := d.Entry(1); ok {
		t.Error("Entry past total")
	}
	if _, ok := d.Entry(-1); ok {
		t.Error("Entry(-1)")
	}
}

// Randomized ordering test: random priorities, interleaved deletes; the
// invariant must hold throughout and search must always return a
// highest-priority match.
func TestRandomOpsKeepInvariant(t *testing.T) {
	d := MustNew(Config{Entries: 64, KeyBits: 16, Kind: Ternary})
	rng := rand.New(rand.NewSource(3))
	type live struct {
		key  bitutil.Ternary
		prio int
	}
	var stored []live
	for op := 0; op < 500; op++ {
		if rng.Intn(3) != 0 || len(stored) == 0 {
			if d.Len() == d.Capacity() {
				continue
			}
			k := bitutil.Exact(bitutil.FromUint64(uint64(op)).Trunc(16))
			p := rng.Intn(17)
			if err := d.Insert(match.Record{Key: k}, p); err != nil {
				t.Fatal(err)
			}
			stored = append(stored, live{k, p})
		} else {
			i := rng.Intn(len(stored))
			if err := d.Delete(stored[i].key); err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			stored = append(stored[:i], stored[i+1:]...)
		}
		if msg := d.Verify(); msg != "" {
			t.Fatalf("op %d: %s", op, msg)
		}
	}
	// Physical order must equal a stable sort by descending priority.
	var prios []int
	for i := 0; i < d.Len(); i++ {
		_, _ = d.Entry(i)
		prios = append(prios, d.prio[i])
	}
	if !sort.SliceIsSorted(prios, func(i, j int) bool { return prios[i] > prios[j] }) {
		t.Error("entries not in descending priority order")
	}
}
