package pktclass

import "testing"

// FuzzRangeToPrefixes checks the cover is always exact and minimal-ish
// for arbitrary ranges.
func FuzzRangeToPrefixes(f *testing.F) {
	f.Add(uint16(0), uint16(0xffff))
	f.Add(uint16(80), uint16(80))
	f.Add(uint16(1024), uint16(65535))
	f.Add(uint16(1), uint16(65534))
	f.Fuzz(func(t *testing.T, a, b uint16) {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cover := RangeToPrefixes(PortRange{lo, hi})
		if len(cover) == 0 || len(cover) > 30 {
			t.Fatalf("[%d,%d]: cover size %d", lo, hi, len(cover))
		}
		// Boundaries covered exactly once; outside not at all.
		for _, p := range []uint32{uint32(lo), uint32(hi), uint32(lo) - 1, uint32(hi) + 1} {
			if p > 0xffff {
				continue
			}
			port := uint16(p)
			n := 0
			for _, pp := range cover {
				if pp.Contains(port) {
					n++
				}
			}
			inside := port >= lo && port <= hi
			if inside && n != 1 {
				t.Fatalf("[%d,%d]: port %d covered %d times", lo, hi, port, n)
			}
			if !inside && n != 0 {
				t.Fatalf("[%d,%d]: port %d outside but covered", lo, hi, port)
			}
		}
	})
}
