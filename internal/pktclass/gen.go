package pktclass

import (
	"math/rand"
	"sort"

	"caram/internal/iproute"
	"caram/internal/workload"
)

// Synthetic ACL generation, shaped like the classifier benchmarks
// (ClassBench-style firewall/ACL mixes): most rules carry a concrete
// destination prefix and protocol, a large share pin the destination
// port (exact well-known port or an ephemeral range), and a small tail
// is broadly wildcarded (the default-deny scaffolding). Destination
// prefixes cluster into allocation blocks exactly as routing prefixes
// do, reusing the iproute generator's structure.

// GenRulesConfig controls rule synthesis.
type GenRulesConfig struct {
	Rules int
	Seed  int64
}

// wellKnownPorts weight the exact-port rules.
var wellKnownPorts = []uint16{80, 443, 53, 25, 22, 23, 110, 143, 123, 161, 389, 445, 993, 3306, 5432, 8080}

// GenerateRules synthesizes a deterministic ACL of exactly cfg.Rules
// rules with descending priorities (rule order).
func GenerateRules(cfg GenRulesConfig) []Rule {
	if cfg.Rules <= 0 {
		cfg.Rules = 1000
	}
	rng := workload.NewRand(cfg.Seed)
	// Destination prefixes borrowed from the routing-table generator's
	// clustered address structure.
	prefixes := iproute.Generate(iproute.GenConfig{
		Prefixes: cfg.Rules + cfg.Rules/2,
		Seed:     cfg.Seed + 101,
	})
	workload.Shuffle(rng, prefixes)

	out := make([]Rule, 0, cfg.Rules)
	for i := 0; len(out) < cfg.Rules; i++ {
		r := Rule{
			ID:       len(out) + 1,
			Priority: cfg.Rules - len(out), // rule order
			Action:   uint8(rng.Intn(4)),
			SrcPorts: AnyPort(),
			DstPorts: AnyPort(),
		}
		kind := rng.Intn(100)
		switch {
		case kind < 55: // dst prefix + exact well-known dst port + proto
			r.DstPrefix = prefixes[i%len(prefixes)]
			r.DstPorts = ExactPort(wellKnownPorts[rng.Intn(len(wellKnownPorts))])
			r.Proto = pickProto(rng)
		case kind < 75: // dst prefix + port range + proto
			r.DstPrefix = prefixes[i%len(prefixes)]
			r.DstPorts = pickRange(rng)
			r.Proto = pickProto(rng)
		case kind < 90: // src+dst prefixes, any port
			r.SrcPrefix = prefixes[(i+7)%len(prefixes)]
			r.DstPrefix = prefixes[i%len(prefixes)]
			r.Proto = pickProto(rng)
		case kind < 97: // exact 5-tuple pin (e.g. a pinned flow)
			r.SrcPrefix = hostPrefix(prefixes[(i+3)%len(prefixes)], rng)
			r.DstPrefix = hostPrefix(prefixes[i%len(prefixes)], rng)
			r.SrcPorts = ExactPort(uint16(1024 + rng.Intn(60000)))
			r.DstPorts = ExactPort(wellKnownPorts[rng.Intn(len(wellKnownPorts))])
			r.Proto = pickProto(rng)
		default: // broad wildcard (monitoring / default rules)
			r.ProtoAny = true
		}
		out = append(out, r)
	}
	return out
}

func pickProto(rng *rand.Rand) uint8 {
	switch rng.Intn(10) {
	case 0:
		return 1 // ICMP
	case 1, 2:
		return 17 // UDP
	default:
		return 6 // TCP
	}
}

// pickRange draws an aligned-ish ephemeral or service range.
func pickRange(rng *rand.Rand) PortRange {
	switch rng.Intn(4) {
	case 0:
		return PortRange{1024, 65535} // ephemeral
	case 1:
		return PortRange{0, 1023} // privileged
	case 2:
		lo := uint16(rng.Intn(60000))
		return PortRange{lo, lo + uint16(rng.Intn(2000))}
	default:
		base := uint16(rng.Intn(1<<12) << 4)
		return PortRange{base, base + 15}
	}
}

// hostPrefix narrows a prefix to a single host inside it.
func hostPrefix(p iproute.Prefix, rng *rand.Rand) iproute.Prefix {
	addr := p.Addr
	if p.Len < 32 {
		addr |= rng.Uint32() & (1<<uint(32-p.Len) - 1)
	}
	return iproute.Prefix{Addr: addr, Len: 32}
}

// GenerateTrace draws packets that hit the rule set (headers sampled
// from random rules) mixed with fraction missRatio of random packets.
func GenerateTrace(rules []Rule, n int, missRatio float64, seed int64) []FiveTuple {
	rng := workload.NewRand(seed)
	out := make([]FiveTuple, n)
	for i := range out {
		if rng.Float64() < missRatio {
			out[i] = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
				SrcPort: uint16(rng.Intn(1 << 16)), DstPort: uint16(rng.Intn(1 << 16)),
				Proto: uint8(rng.Intn(256)),
			}
			continue
		}
		r := rules[rng.Intn(len(rules))]
		out[i] = packetIn(r, rng)
	}
	return out
}

// packetIn samples a packet matching the rule.
func packetIn(r Rule, rng *rand.Rand) FiveTuple {
	p := FiveTuple{
		SrcIP:   fillPrefix(r.SrcPrefix, rng),
		DstIP:   fillPrefix(r.DstPrefix, rng),
		SrcPort: fillRange(r.SrcPorts, rng),
		DstPort: fillRange(r.DstPorts, rng),
		Proto:   r.Proto,
	}
	if r.ProtoAny {
		p.Proto = pickProto(rng)
	}
	return p
}

func fillPrefix(p iproute.Prefix, rng *rand.Rand) uint32 {
	addr := p.Canonical().Addr
	if p.Len < 32 {
		addr |= rng.Uint32() & (1<<uint(32-p.Len) - 1)
	}
	return addr
}

func fillRange(r PortRange, rng *rand.Rand) uint16 {
	return r.Lo + uint16(rng.Intn(int(r.Hi-r.Lo)+1))
}

// Oracle classifies by linear scan — the verification reference.
func Oracle(rules []Rule, p FiveTuple) Result {
	best := Result{}
	for _, r := range rules {
		if r.Matches(p) && (!best.Matched || r.Priority > best.Priority) {
			best = Result{Matched: true, RuleID: r.ID, Action: r.Action, Priority: r.Priority}
		}
	}
	return best
}

// SortByPriority orders rules descending by priority (stable).
func SortByPriority(rules []Rule) []Rule {
	out := append([]Rule(nil), rules...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	return out
}
