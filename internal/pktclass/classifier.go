package pktclass

import (
	"fmt"
	"sort"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
)

// Result is one classification outcome.
type Result struct {
	Matched  bool
	RuleID   int
	Action   uint8
	Priority int
	RowsRead int // CA-RAM rows; 0 for pure-TCAM hits searched in parallel
}

// TCAMClassifier is the baseline: every expanded entry in one TCAM,
// physical order by descending priority.
type TCAMClassifier struct {
	dev   *cam.Device
	rules map[int]Rule // by ID
}

// dataOf encodes (ruleID, action, priority) into the record payload.
func dataOf(r Rule) bitutil.Vec128 {
	return bitutil.FromUint64(uint64(r.ID)<<24 | uint64(r.Action)<<16 | uint64(uint16(r.Priority)))
}

func decode(d bitutil.Vec128) (id int, action uint8, prio int) {
	v := d.Uint64()
	return int(v >> 24), uint8(v >> 16), int(uint16(v))
}

// NewTCAMClassifier builds the baseline from a rule set.
func NewTCAMClassifier(rules []Rule, capacity int) (*TCAMClassifier, error) {
	if capacity <= 0 {
		capacity = totalExpansion(rules)
	}
	dev, err := cam.New(cam.Config{Entries: capacity, KeyBits: KeyBits, Kind: cam.Ternary})
	if err != nil {
		return nil, err
	}
	c := &TCAMClassifier{dev: dev, rules: make(map[int]Rule, len(rules))}
	// Classifiers are build-once: physical order IS the priority, so
	// append expanded entries in descending rule priority and let the
	// priority encoder (lowest index wins) resolve multi-matches.
	for _, r := range SortByPriority(rules) {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		c.rules[r.ID] = r
		for _, k := range r.ternaryKeys() {
			if err := dev.Append(match.Record{Key: k, Data: dataOf(r)}); err != nil {
				return nil, fmt.Errorf("pktclass: rule %d: %w", r.ID, err)
			}
		}
	}
	return c, nil
}

// Entries returns the stored (post-expansion) entry count.
func (c *TCAMClassifier) Entries() int { return c.dev.Len() }

// Classify returns the highest-priority matching rule.
func (c *TCAMClassifier) Classify(p FiveTuple) Result {
	res := c.dev.Search(bitutil.Exact(p.Key()))
	if !res.Found {
		return Result{}
	}
	id, action, prio := decode(res.Record.Data)
	return Result{Matched: true, RuleID: id, Action: action, Priority: prio}
}

// Stats exposes the device activity.
func (c *TCAMClassifier) Stats() cam.Stats { return c.dev.Stats() }

// CARAMClassifier maps the expanded entries onto a CA-RAM hashed by
// destination-address bits, with entries whose hash bits are wildcards
// (or whose home buckets are full) living in a small parallel overflow
// TCAM — the engine structure of §4.3. Classification costs one CA-RAM
// row access; the overflow TCAM searches concurrently.
type CARAMClassifier struct {
	slice    *caram.Slice
	overflow *cam.Device
	sel      *hash.BitSelect
	// dupLimit bounds per-entry duplication before diverting to the
	// overflow TCAM.
	dupLimit int

	Duplicated int // extra copies stored in the CA-RAM
	Overflowed int // entries diverted to the TCAM
}

// CARAMConfig sizes the classifier.
type CARAMConfig struct {
	IndexBits int // hash bits, drawn from the destination address
	Slots     int // keys per bucket
	Overflow  int // overflow TCAM capacity
	DupLimit  int // max copies per entry before diverting (default 4)
}

// NewCARAMClassifier builds the CA-RAM engine from a rule set.
func NewCARAMClassifier(rules []Rule, cfg CARAMConfig) (*CARAMClassifier, error) {
	if cfg.IndexBits <= 0 {
		cfg.IndexBits = 10
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 16
	}
	if cfg.DupLimit <= 0 {
		cfg.DupLimit = 4
	}
	if cfg.Overflow <= 0 {
		cfg.Overflow = totalExpansion(rules)
	}
	// Hash on the last IndexBits bits of the first 16 destination-
	// address bits — the paper's §4.1 selection: ACLs overwhelmingly
	// specify a destination prefix of at least /16, so these bits are
	// rarely masked, yet they sit low enough to spread the clustered
	// allocation blocks across buckets.
	pos := make([]int, cfg.IndexBits)
	for i := range pos {
		pos[i] = dstIPOff + 16 + i
	}
	sel := hash.NewBitSelect(pos)
	slot := 1 + KeyBits + KeyBits + 32
	slice, err := caram.New(caram.Config{
		IndexBits:       cfg.IndexBits,
		RowBits:         cfg.Slots*slot + 16,
		KeyBits:         KeyBits,
		DataBits:        32,
		Ternary:         true,
		AuxBits:         16,
		Tech:            mem.DRAM,
		ProbeLimit:      caram.NoProbing,
		Index:           sel,
		AllowDuplicates: true,
	})
	if err != nil {
		return nil, err
	}
	ovfl, err := cam.New(cam.Config{Entries: cfg.Overflow, KeyBits: KeyBits, Kind: cam.Ternary})
	if err != nil {
		return nil, err
	}
	c := &CARAMClassifier{slice: slice, overflow: ovfl, sel: sel, dupLimit: cfg.DupLimit}

	// Insert highest-priority first so in-bucket order resolves
	// multi-match the right way even without scoring.
	ordered := append([]Rule(nil), rules...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Priority > ordered[j].Priority })
	for _, r := range ordered {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		for _, k := range r.ternaryKeys() {
			rec := match.Record{Key: k, Data: dataOf(r)}
			homes := sel.TernaryIndices(k)
			if len(homes) > c.dupLimit {
				if err := ovfl.Append(rec); err != nil {
					return nil, fmt.Errorf("pktclass: overflow TCAM: %w", err)
				}
				c.Overflowed++
				continue
			}
			for _, home := range homes {
				if err := slice.InsertAt(home, rec); err == caram.ErrFull {
					if err := ovfl.Append(rec); err != nil {
						return nil, fmt.Errorf("pktclass: overflow TCAM: %w", err)
					}
					c.Overflowed++
				} else if err != nil {
					return nil, err
				}
			}
			c.Duplicated += len(homes) - 1
		}
	}
	return c, nil
}

// Classify looks the packet up: one CA-RAM bucket (priority-scored
// across all matches in the bucket) plus the parallel overflow TCAM.
func (c *CARAMClassifier) Classify(p FiveTuple) Result {
	key := bitutil.Exact(p.Key())
	score := func(r match.Record) int {
		_, _, prio := decode(r.Data)
		return prio + 1 // keep zero distinguishable from "no match"
	}
	main := c.slice.LookupBest(key, score)
	out := Result{RowsRead: main.RowsRead}
	bestPrio := -1
	if main.Found {
		id, action, prio := decode(main.Record.Data)
		out.Matched, out.RuleID, out.Action, out.Priority = true, id, action, prio
		bestPrio = prio
	}
	if ovfl := c.overflow.Search(key); ovfl.Found {
		id, action, prio := decode(ovfl.Record.Data)
		if prio > bestPrio {
			out.Matched, out.RuleID, out.Action, out.Priority = true, id, action, prio
		}
	}
	return out
}

// Entries returns (CA-RAM entries, overflow entries).
func (c *CARAMClassifier) Entries() (int, int) { return c.slice.Count(), c.overflow.Len() }

// Slice exposes the underlying CA-RAM for statistics.
func (c *CARAMClassifier) Slice() *caram.Slice { return c.slice }

// totalExpansion sums the rule set's post-expansion entry count.
func totalExpansion(rules []Rule) int {
	n := 0
	for _, r := range rules {
		n += r.ExpansionFactor()
	}
	if n == 0 {
		n = 1
	}
	return n
}
