package pktclass

import (
	"testing"
)

func TestTCAMClassifierAgainstOracle(t *testing.T) {
	rules := GenerateRules(GenRulesConfig{Rules: 300, Seed: 4})
	c, err := NewTCAMClassifier(rules, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Entries() == 0 {
		t.Fatal("no entries stored")
	}
	trace := GenerateTrace(rules, 2000, 0.3, 5)
	for i, p := range trace {
		want := Oracle(rules, p)
		got := c.Classify(p)
		if got.Matched != want.Matched {
			t.Fatalf("packet %d: matched %v, oracle %v", i, got.Matched, want.Matched)
		}
		if got.Matched && got.Priority != want.Priority {
			t.Fatalf("packet %d: rule %d prio %d, oracle rule %d prio %d",
				i, got.RuleID, got.Priority, want.RuleID, want.Priority)
		}
	}
}

func TestCARAMClassifierAgainstOracle(t *testing.T) {
	rules := GenerateRules(GenRulesConfig{Rules: 300, Seed: 6})
	c, err := NewCARAMClassifier(rules, CARAMConfig{IndexBits: 8, Slots: 32})
	if err != nil {
		t.Fatal(err)
	}
	main, ovfl := c.Entries()
	if main == 0 {
		t.Fatal("CA-RAM holds nothing")
	}
	if ovfl == 0 {
		t.Fatal("overflow TCAM empty — wildcard rules must land there")
	}
	trace := GenerateTrace(rules, 2000, 0.3, 7)
	rows := 0
	for i, p := range trace {
		want := Oracle(rules, p)
		got := c.Classify(p)
		if got.Matched != want.Matched {
			t.Fatalf("packet %d (%+v): matched %v, oracle %v", i, p, got.Matched, want.Matched)
		}
		if got.Matched && got.Priority != want.Priority {
			t.Fatalf("packet %d: prio %d (rule %d), oracle prio %d (rule %d)",
				i, got.Priority, got.RuleID, want.Priority, want.RuleID)
		}
		rows += got.RowsRead
	}
	// NoProbing + parallel TCAM: exactly one row per classification.
	if amal := float64(rows) / float64(len(trace)); amal != 1 {
		t.Errorf("AMAL = %f, want 1", amal)
	}
}

func TestCARAMClassifierDuplicationAccounting(t *testing.T) {
	rules := GenerateRules(GenRulesConfig{Rules: 200, Seed: 8})
	c, err := NewCARAMClassifier(rules, CARAMConfig{IndexBits: 10, Slots: 16})
	if err != nil {
		t.Fatal(err)
	}
	main, ovfl := c.Entries()
	total := 0
	for _, r := range rules {
		total += r.ExpansionFactor()
	}
	if main+ovfl < total {
		t.Errorf("stored %d+%d entries for %d expanded (+%d dups)", main, ovfl, total, c.Duplicated)
	}
	if msg := c.Slice().Verify(); msg != "" {
		t.Errorf("slice invariant: %s", msg)
	}
}

func TestClassifiersAgree(t *testing.T) {
	rules := GenerateRules(GenRulesConfig{Rules: 150, Seed: 9})
	tc, err := NewTCAMClassifier(rules, 0)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCARAMClassifier(rules, CARAMConfig{IndexBits: 7, Slots: 32})
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rules, 1500, 0.2, 10)
	for i, p := range trace {
		a, b := tc.Classify(p), cc.Classify(p)
		if a.Matched != b.Matched || (a.Matched && a.Priority != b.Priority) {
			t.Fatalf("packet %d: TCAM %+v, CA-RAM %+v", i, a, b)
		}
	}
}

func TestMissedPacket(t *testing.T) {
	rules := []Rule{{
		ID: 1, Priority: 1,
		SrcPrefix: mustPrefix(t, "10.0.0.0/8"),
		DstPrefix: mustPrefix(t, "10.0.0.0/8"),
		SrcPorts:  AnyPort(), DstPorts: AnyPort(), Proto: 6,
	}}
	tc, err := NewTCAMClassifier(rules, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Classify(FiveTuple{SrcIP: 0x20000000, Proto: 6}).Matched {
		t.Error("phantom classification")
	}
}
