package pktclass

import (
	"testing"
	"testing/quick"

	"caram/internal/iproute"
)

func mustPrefix(t *testing.T, s string) iproute.Prefix {
	t.Helper()
	p, err := iproute.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRangeToPrefixesKnownCases(t *testing.T) {
	cases := []struct {
		r    PortRange
		want int // cover size
	}{
		{ExactPort(80), 1},
		{AnyPort(), 1},
		{PortRange{0, 1023}, 1},     // aligned block
		{PortRange{1024, 65535}, 6}, // classic ephemeral cover
		{PortRange{1, 65534}, 30},   // worst case: 2*16-2
	}
	for _, c := range cases {
		got := RangeToPrefixes(c.r)
		if len(got) != c.want {
			t.Errorf("cover(%d-%d) = %d prefixes, want %d", c.r.Lo, c.r.Hi, len(got), c.want)
		}
	}
	if RangeToPrefixes(PortRange{5, 4}) != nil {
		t.Error("inverted range produced a cover")
	}
}

// Property: the cover is exact — every port in [lo,hi] is covered by
// exactly one prefix, and no port outside is covered.
func TestRangeCoverExactQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cover := RangeToPrefixes(PortRange{lo, hi})
		// Spot-check boundary and sampled ports.
		probes := []uint16{lo, hi, lo + (hi-lo)/2, lo + (hi-lo)/3}
		if lo > 0 {
			probes = append(probes, lo-1)
		}
		if hi < 0xffff {
			probes = append(probes, hi+1)
		}
		for _, p := range probes {
			n := 0
			for _, pp := range cover {
				if pp.Contains(p) {
					n++
				}
			}
			inside := p >= lo && p <= hi
			if inside && n != 1 {
				return false
			}
			if !inside && n != 0 {
				return false
			}
		}
		return len(cover) <= 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{
		ID:        1,
		SrcPrefix: mustPrefix(t, "10.0.0.0/8"),
		DstPrefix: mustPrefix(t, "192.168.1.0/24"),
		SrcPorts:  AnyPort(),
		DstPorts:  ExactPort(443),
		Proto:     6,
	}
	hit := FiveTuple{SrcIP: 0x0A010203, DstIP: 0xC0A80105, SrcPort: 33000, DstPort: 443, Proto: 6}
	if !r.Matches(hit) {
		t.Error("matching packet rejected")
	}
	for _, miss := range []FiveTuple{
		{SrcIP: 0x0B010203, DstIP: 0xC0A80105, SrcPort: 33000, DstPort: 443, Proto: 6}, // src
		{SrcIP: 0x0A010203, DstIP: 0xC0A80205, SrcPort: 33000, DstPort: 443, Proto: 6}, // dst
		{SrcIP: 0x0A010203, DstIP: 0xC0A80105, SrcPort: 33000, DstPort: 80, Proto: 6},  // port
		{SrcIP: 0x0A010203, DstIP: 0xC0A80105, SrcPort: 33000, DstPort: 443, Proto: 17},
	} {
		if r.Matches(miss) {
			t.Errorf("non-matching packet %+v accepted", miss)
		}
	}
	if err := r.Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	bad := r
	bad.SrcPorts = PortRange{5, 4}
	if err := bad.Validate(); err == nil {
		t.Error("inverted range validated")
	}
}

// Property: the ternary expansion is faithful — a key matches the
// expansion iff the rule matches the packet.
func TestTernaryExpansionFaithfulQuick(t *testing.T) {
	r := Rule{
		ID:        2,
		SrcPrefix: iproute.Prefix{Addr: 0x0A000000, Len: 8},
		DstPrefix: iproute.Prefix{Addr: 0xC0A80000, Len: 16},
		SrcPorts:  PortRange{1024, 65535},
		DstPorts:  PortRange{80, 90},
		Proto:     6,
	}
	keys := r.ternaryKeys()
	if len(keys) != r.ExpansionFactor() {
		t.Fatalf("expansion %d keys, factor %d", len(keys), r.ExpansionFactor())
	}
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		// Bias half the probes into the rule's space for coverage.
		if src%2 == 0 {
			src = 0x0A000000 | src&0x00ffffff
			dst = 0xC0A80000 | dst&0xffff
			dp = 80 + dp%16
		}
		p := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		key := p.Key()
		n := 0
		for _, k := range keys {
			if k.MatchesKey(key) {
				n++
			}
		}
		if r.Matches(p) {
			return n == 1 // disjoint cover: exactly one expanded entry
		}
		return n == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProtoAnyExpansion(t *testing.T) {
	r := Rule{ID: 3, SrcPorts: AnyPort(), DstPorts: AnyPort(), ProtoAny: true}
	keys := r.ternaryKeys()
	if len(keys) != 1 {
		t.Fatalf("wildcard rule expanded to %d keys", len(keys))
	}
	p := FiveTuple{SrcIP: 123, DstIP: 456, SrcPort: 7, DstPort: 8, Proto: 99}
	if !keys[0].MatchesKey(p.Key()) {
		t.Error("wildcard key does not match everything")
	}
}

func TestGenerateRulesDeterministicAndValid(t *testing.T) {
	a := GenerateRules(GenRulesConfig{Rules: 500, Seed: 1})
	b := GenerateRules(GenRulesConfig{Rules: 500, Seed: 1})
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("rule %d invalid: %v", i, err)
		}
	}
	// Priorities strictly descending in rule order.
	for i := 1; i < len(a); i++ {
		if a[i].Priority >= a[i-1].Priority {
			t.Fatal("priorities not descending")
		}
	}
}

func TestTraceHitsRules(t *testing.T) {
	rules := GenerateRules(GenRulesConfig{Rules: 200, Seed: 2})
	trace := GenerateTrace(rules, 500, 0, 3)
	misses := 0
	for _, p := range trace {
		if !Oracle(rules, p).Matched {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d/%d rule-sampled packets miss the oracle", misses, len(trace))
	}
}
