// Package pktclass implements multi-field packet classification — the
// "network packet filtering" workload the paper's introduction names
// alongside routing as the canonical high-bandwidth search problem.
// An ACL rule matches a 104-bit 5-tuple (source/destination prefixes,
// port ranges, protocol) and carries a priority; classification
// returns the highest-priority matching rule.
//
// Port ranges do not map to single ternary keys, so rules undergo the
// classic range-to-prefix expansion before entering a TCAM or CA-RAM —
// an expansion this package implements minimally (a 16-bit range needs
// at most 30 prefixes). Rules whose don't-care bits cover the hash
// positions fall back to the engine's parallel overflow TCAM (§4.3),
// keeping one-access classification for the common case.
package pktclass

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/iproute"
)

// Key layout, MSB to LSB: [dstIP 32][srcIP 32][dstPort 16][srcPort 16][proto 8].
const (
	KeyBits    = 104
	protoOff   = 0
	srcPortOff = 8
	dstPortOff = 24
	srcIPOff   = 40
	dstIPOff   = 72
)

// FiveTuple is one packet header.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Key packs a packet into its 104-bit search key.
func (p FiveTuple) Key() bitutil.Vec128 {
	var v bitutil.Vec128
	v = v.Or(bitutil.FromUint64(uint64(p.DstIP)).Shl(dstIPOff))
	v = v.Or(bitutil.FromUint64(uint64(p.SrcIP)).Shl(srcIPOff))
	v = v.Or(bitutil.FromUint64(uint64(p.DstPort)).Shl(dstPortOff))
	v = v.Or(bitutil.FromUint64(uint64(p.SrcPort)).Shl(srcPortOff))
	v = v.Or(bitutil.FromUint64(uint64(p.Proto)).Shl(protoOff))
	return v
}

// PortRange is an inclusive port interval. The zero value is invalid;
// Any() covers all ports.
type PortRange struct {
	Lo, Hi uint16
}

// AnyPort covers the whole port space.
func AnyPort() PortRange { return PortRange{0, 0xffff} }

// ExactPort covers one port.
func ExactPort(p uint16) PortRange { return PortRange{p, p} }

// Contains reports membership.
func (r PortRange) Contains(p uint16) bool { return p >= r.Lo && p <= r.Hi }

// IsAny reports a full-space range.
func (r PortRange) IsAny() bool { return r.Lo == 0 && r.Hi == 0xffff }

// Valid reports Lo <= Hi.
func (r PortRange) Valid() bool { return r.Lo <= r.Hi }

// Rule is one classifier entry.
type Rule struct {
	ID        int
	SrcPrefix iproute.Prefix // source IP prefix (Len 0 = any)
	DstPrefix iproute.Prefix
	SrcPorts  PortRange
	DstPorts  PortRange
	Proto     uint8
	ProtoAny  bool
	Priority  int // higher wins
	Action    uint8
}

// Matches evaluates the rule against a packet directly (the linear
// oracle the hardware engines are verified against).
func (r Rule) Matches(p FiveTuple) bool {
	return r.SrcPrefix.Matches(p.SrcIP) &&
		r.DstPrefix.Matches(p.DstIP) &&
		r.SrcPorts.Contains(p.SrcPort) &&
		r.DstPorts.Contains(p.DstPort) &&
		(r.ProtoAny || r.Proto == p.Proto)
}

// Validate checks the rule's fields.
func (r Rule) Validate() error {
	if !r.SrcPorts.Valid() || !r.DstPorts.Valid() {
		return fmt.Errorf("pktclass: rule %d has an inverted port range", r.ID)
	}
	if r.SrcPrefix.Len < 0 || r.SrcPrefix.Len > 32 || r.DstPrefix.Len < 0 || r.DstPrefix.Len > 32 {
		return fmt.Errorf("pktclass: rule %d has a bad prefix length", r.ID)
	}
	return nil
}

// PortPrefix is one element of a range's minimal prefix cover: the top
// Len bits of Value are fixed, the rest don't care.
type PortPrefix struct {
	Value uint16
	Len   int // 0..16
}

// Contains reports membership in the prefix.
func (pp PortPrefix) Contains(p uint16) bool {
	if pp.Len == 0 {
		return true
	}
	shift := uint(16 - pp.Len)
	return p>>shift == pp.Value>>shift
}

// RangeToPrefixes returns the minimal prefix cover of [lo, hi] over the
// 16-bit port space — the classic greedy expansion: repeatedly take the
// largest aligned block starting at lo that fits. A worst-case range
// needs 2*16-2 = 30 prefixes.
func RangeToPrefixes(r PortRange) []PortPrefix {
	if !r.Valid() {
		return nil
	}
	var out []PortPrefix
	lo, hi := uint32(r.Lo), uint32(r.Hi)
	for lo <= hi {
		// Largest power-of-two block aligned at lo.
		size := lo & -lo
		if size == 0 {
			size = 1 << 16
		}
		for lo+size-1 > hi {
			size >>= 1
		}
		lenBits := 16
		for s := size; s > 1; s >>= 1 {
			lenBits--
		}
		out = append(out, PortPrefix{Value: uint16(lo), Len: lenBits})
		lo += size // lo and size are uint32, so 0xffff+1 cannot wrap
	}
	return out
}

// ternaryKeys expands the rule into its ternary CA-RAM/TCAM keys: the
// cross product of the two port covers over the fixed IP/proto fields.
func (r Rule) ternaryKeys() []bitutil.Ternary {
	srcCover := RangeToPrefixes(r.SrcPorts)
	dstCover := RangeToPrefixes(r.DstPorts)
	base := bitutil.Ternary{}
	// IPs.
	base.Value = base.Value.Or(bitutil.FromUint64(uint64(r.DstPrefix.Canonical().Addr)).Shl(dstIPOff))
	base.Mask = base.Mask.Or(ipMask(r.DstPrefix.Len).Shl(dstIPOff))
	base.Value = base.Value.Or(bitutil.FromUint64(uint64(r.SrcPrefix.Canonical().Addr)).Shl(srcIPOff))
	base.Mask = base.Mask.Or(ipMask(r.SrcPrefix.Len).Shl(srcIPOff))
	// Proto.
	if r.ProtoAny {
		base.Mask = base.Mask.Or(bitutil.FromUint64(0xff).Shl(protoOff))
	} else {
		base.Value = base.Value.Or(bitutil.FromUint64(uint64(r.Proto)).Shl(protoOff))
	}
	out := make([]bitutil.Ternary, 0, len(srcCover)*len(dstCover))
	for _, sp := range srcCover {
		for _, dp := range dstCover {
			k := base
			k.Value = k.Value.Or(bitutil.FromUint64(uint64(sp.Value)).Shl(srcPortOff))
			k.Mask = k.Mask.Or(portMask(sp.Len).Shl(srcPortOff))
			k.Value = k.Value.Or(bitutil.FromUint64(uint64(dp.Value)).Shl(dstPortOff))
			k.Mask = k.Mask.Or(portMask(dp.Len).Shl(dstPortOff))
			out = append(out, k.Normalize())
		}
	}
	return out
}

// ipMask returns the 32-bit don't-care mask for a prefix of length l.
func ipMask(l int) bitutil.Vec128 {
	if l >= 32 {
		return bitutil.Vec128{}
	}
	return bitutil.Mask(32 - l)
}

// portMask returns the 16-bit don't-care mask for a port prefix.
func portMask(l int) bitutil.Vec128 {
	if l >= 16 {
		return bitutil.Vec128{}
	}
	return bitutil.Mask(16 - l)
}

// ExpansionFactor returns how many ternary entries the rule needs.
func (r Rule) ExpansionFactor() int {
	return len(RangeToPrefixes(r.SrcPorts)) * len(RangeToPrefixes(r.DstPorts))
}
