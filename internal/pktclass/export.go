package pktclass

import "caram/internal/bitutil"

// The serving stack (internal/subsystem's pktclass engine type) stores
// classifier rules in a generic CA-RAM slice rather than through
// NewCARAMClassifier, so the key/payload encodings and the classifier
// hash geometry are exported here as thin wrappers over the package's
// internal helpers.

// HashPositions returns the bit-selection positions a pktclass engine
// of n index bits hashes on: the low n bits of the destination IP's
// host portion (dstIPOff+16 .. dstIPOff+16+n-1), the same choice
// NewCARAMClassifier makes — rarely wildcarded by real ACLs, so ternary
// duplication stays bounded.
func HashPositions(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = dstIPOff + 16 + i
	}
	return pos
}

// TernaryKeys expands the rule into its ternary CA-RAM/TCAM keys: the
// cross product of the two port-range prefix covers over the fixed
// IP/proto fields, each normalized.
func (r Rule) TernaryKeys() []bitutil.Ternary { return r.ternaryKeys() }

// EncodeData encodes the rule's (ID, action, priority) into the 32-bit
// record payload stored beside each expanded key.
func EncodeData(r Rule) bitutil.Vec128 { return dataOf(r) }

// DecodeData reverses EncodeData.
func DecodeData(d bitutil.Vec128) (id int, action uint8, prio int) { return decode(d) }
