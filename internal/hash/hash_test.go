package hash

import (
	"math/rand"
	"testing"
	"testing/quick"

	"caram/internal/bitutil"
)

func TestBitSelectIndex(t *testing.T) {
	gen := NewBitSelect([]int{0, 4, 8})
	key := bitutil.FromUint64(0b1_0001_0001) // bits 0, 4, 8 set
	if got := gen.Index(key); got != 0b111 {
		t.Errorf("Index = %03b, want 111", got)
	}
	if got := gen.Index(bitutil.FromUint64(0b1_0000_0000)); got != 0b100 {
		t.Errorf("Index = %03b, want 100", got)
	}
	if gen.Bits() != 3 {
		t.Errorf("Bits = %d", gen.Bits())
	}
}

func TestBitSelectHighBits(t *testing.T) {
	gen := NewBitSelect([]int{127, 64})
	key := bitutil.FromParts(0, 1|1<<63) // bits 64 and 127 set
	if got := gen.Index(key); got != 0b11 {
		t.Errorf("Index = %02b, want 11", got)
	}
}

func TestBitSelectPanics(t *testing.T) {
	for _, bad := range [][]int{{-1}, {128}, make([]int, 33)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBitSelect(%v) did not panic", bad)
				}
			}()
			NewBitSelect(bad)
		}()
	}
}

func TestTernaryIndicesDuplication(t *testing.T) {
	gen := NewBitSelect([]int{0, 1, 2})
	// Key with don't-care in positions 0 and 2: duplicated into 4 buckets.
	key := bitutil.NewTernary(bitutil.FromUint64(0b010), bitutil.FromUint64(0b101))
	got := gen.TernaryIndices(key)
	want := []uint32{0b010, 0b011, 0b110, 0b111}
	if len(got) != len(want) {
		t.Fatalf("TernaryIndices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TernaryIndices = %v, want %v", got, want)
		}
	}
	if gen.DuplicationFactor(key) != 4 {
		t.Errorf("DuplicationFactor = %d, want 4", gen.DuplicationFactor(key))
	}
	exact := bitutil.Exact(bitutil.FromUint64(0b111))
	if gen.DuplicationFactor(exact) != 1 {
		t.Error("exact key should not be duplicated")
	}
	if idx := gen.TernaryIndices(exact); len(idx) != 1 || idx[0] != 0b111 {
		t.Errorf("TernaryIndices(exact) = %v", idx)
	}
}

func TestDJBRecurrence(t *testing.T) {
	// Manual expansion for "ab": h = 5381; h = h*33 + 'a'; h = h*33 + 'b'.
	h := uint64(5381)
	h = h*33 + 'a'
	h = h*33 + 'b'
	if got := DJBBytes([]byte("ab")); got != h {
		t.Errorf("DJBBytes = %d, want %d", got, h)
	}
	if DJBString("ab") != DJBBytes([]byte("ab")) {
		t.Error("DJBString disagrees with DJBBytes")
	}
	if DJBBytes(nil) != 5381 {
		t.Error("empty hash must equal the seed")
	}
}

// TestDJBIndexMatchesBytes pins the allocation-free Index walk to the
// reference byte-slice recurrence for every key width.
func TestDJBIndexMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for keyBytes := 1; keyBytes <= 16; keyBytes++ {
		gen := NewDJB(14, keyBytes)
		for i := 0; i < 200; i++ {
			key := bitutil.FromParts(rng.Uint64(), rng.Uint64())
			want := uint32(DJBBytes(key.Bytes(keyBytes*8))) & (1<<14 - 1)
			if got := gen.Index(key); got != want {
				t.Fatalf("keyBytes=%d key=%v: Index=%d, reference=%d", keyBytes, key, got, want)
			}
		}
	}
}

func TestDJBIndexRange(t *testing.T) {
	gen := NewDJB(14, 16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		key := bitutil.FromParts(rng.Uint64(), rng.Uint64())
		if idx := gen.Index(key); idx >= 1<<14 {
			t.Fatalf("index %d out of range", idx)
		}
	}
	if gen.Bits() != 14 {
		t.Errorf("Bits = %d", gen.Bits())
	}
}

func TestGeneratorsStayInRangeQuick(t *testing.T) {
	gens := []IndexGenerator{
		LowBits(11),
		NewDJB(12, 8),
		NewMultShift(13),
		NewXorFold(10, 64),
		Func{F: func(k bitutil.Vec128) uint32 { return uint32(k.Lo) }, R: 9, Label: "low9"},
	}
	for _, g := range gens {
		g := g
		f := func(lo, hi uint64) bool {
			idx := g.Index(bitutil.FromParts(lo, hi))
			return idx < 1<<uint(g.Bits())
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		if g.Name() == "" {
			t.Errorf("generator has empty name")
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	key := bitutil.FromParts(0xdeadbeef, 0x1234)
	gens := []IndexGenerator{LowBits(11), NewDJB(12, 8), NewMultShift(13), NewXorFold(10, 64)}
	for _, g := range gens {
		if g.Index(key) != g.Index(key) {
			t.Errorf("%s: nondeterministic", g.Name())
		}
	}
}

// Distribution smoke test: over random 64-bit keys every generator
// should fill buckets roughly uniformly (no bucket > 4x the mean).
func TestGeneratorUniformity(t *testing.T) {
	const r, n = 8, 1 << 15
	gens := []IndexGenerator{LowBits(r), NewDJB(r, 8), NewMultShift(r), NewXorFold(r, 64)}
	rng := rand.New(rand.NewSource(7))
	keys := make([]bitutil.Vec128, n)
	for i := range keys {
		keys[i] = bitutil.FromUint64(rng.Uint64())
	}
	for _, g := range gens {
		loads := make([]int, 1<<r)
		for _, k := range keys {
			loads[g.Index(k)]++
		}
		mean := n / (1 << r)
		for b, l := range loads {
			if l > 4*mean {
				t.Errorf("%s: bucket %d load %d exceeds 4x mean %d", g.Name(), b, l, mean)
			}
		}
	}
}
