package hash

import (
	"testing"
	"testing/quick"

	"caram/internal/bitutil"
)

func TestProgramValidate(t *testing.T) {
	good := []struct {
		r      int
		instrs []Instr
	}{
		{8, []Instr{{Op: OpLoad, Off: 0, Width: 8}}},
		{12, []Instr{{Op: OpLoad, Off: 16, Width: 16}, {Op: OpMulImm, Imm: 33}, {Op: OpShr, Imm: 4}}},
	}
	for _, g := range good {
		if _, err := NewProgram(g.r, "", g.instrs...); err != nil {
			t.Errorf("valid program rejected: %v", err)
		}
	}
	bad := []struct {
		name   string
		r      int
		instrs []Instr
	}{
		{"empty", 8, nil},
		{"r too small", 0, []Instr{{Op: OpLoad, Width: 8}}},
		{"r too big", 33, []Instr{{Op: OpLoad, Width: 8}}},
		{"field off end", 8, []Instr{{Op: OpLoad, Off: 100, Width: 40}}},
		{"zero width", 8, []Instr{{Op: OpXor, Off: 0, Width: 0}}},
		{"wide field", 8, []Instr{{Op: OpAdd, Off: 0, Width: 65}}},
		{"big shift", 8, []Instr{{Op: OpLoad, Width: 8}, {Op: OpShl, Imm: 64}}},
		{"bad op", 8, []Instr{{Op: OpCode(99)}}},
	}
	for _, b := range bad {
		if _, err := NewProgram(b.r, "", b.instrs...); err == nil {
			t.Errorf("%s: accepted", b.name)
		}
	}
}

func TestProgramBitSelectEquivalence(t *testing.T) {
	// load key[16:24] == bit selection of positions 16..23.
	prog := MustProgram(8, "", Instr{Op: OpLoad, Off: 16, Width: 8})
	sel := NewBitSelect([]int{16, 17, 18, 19, 20, 21, 22, 23})
	f := func(lo, hi uint64) bool {
		k := bitutil.FromParts(lo, hi)
		return prog.Index(k) == sel.Index(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldProgramMatchesXorFold(t *testing.T) {
	prog := FoldProgram(10, 64)
	xf := NewXorFold(10, 64)
	f := func(lo uint64) bool {
		k := bitutil.FromUint64(lo)
		return prog.Index(k) == xf.Index(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Uneven tail width too.
	prog = FoldProgram(12, 50)
	xf = NewXorFold(12, 50)
	f2 := func(lo uint64) bool {
		k := bitutil.FromUint64(lo).Trunc(50)
		return prog.Index(k) == xf.Index(k)
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramArithmetic(t *testing.T) {
	// (key[0:16] + key[16:16]) * 33 >> 4, low 8 bits.
	prog := MustProgram(8, "mix",
		Instr{Op: OpLoad, Off: 0, Width: 16},
		Instr{Op: OpAdd, Off: 16, Width: 16},
		Instr{Op: OpMulImm, Imm: 33},
		Instr{Op: OpShr, Imm: 4},
	)
	key := bitutil.FromUint64(0x0003_0005)
	want := uint32((5+3)*33>>4) & 0xff
	if got := prog.Index(key); got != want {
		t.Errorf("Index = %d, want %d", got, want)
	}
	if prog.Bits() != 8 || prog.Name() != "mix" {
		t.Error("accessors wrong")
	}
}

func TestProgramOpsCoverage(t *testing.T) {
	prog := MustProgram(16, "",
		Instr{Op: OpLoad, Off: 0, Width: 16},
		Instr{Op: OpXorImm, Imm: 0xffff},
		Instr{Op: OpAddImm, Imm: 1},
		Instr{Op: OpShl, Imm: 2},
		Instr{Op: OpXor, Off: 16, Width: 8},
	)
	key := bitutil.FromUint64(0xab_1234)
	want := uint32(((0x1234^0xffff)+1)<<2^0xab) & 0xffff
	if got := prog.Index(key); got != want {
		t.Errorf("Index = %#x, want %#x", got, want)
	}
	// Unnamed programs describe themselves.
	if got := prog.Name(); got != "prog[load,xori,addi,shl,xor]" {
		t.Errorf("Name = %q", got)
	}
	if OpCode(99).String() == "" {
		t.Error("unknown opcode renders empty")
	}
}

func TestProgramStaysInRangeQuick(t *testing.T) {
	prog := MustProgram(9, "",
		Instr{Op: OpLoad, Off: 0, Width: 32},
		Instr{Op: OpMulImm, Imm: 0x9e3779b9},
		Instr{Op: OpShr, Imm: 16},
	)
	f := func(lo, hi uint64) bool {
		return prog.Index(bitutil.FromParts(lo, hi)) < 1<<9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProgram did not panic")
		}
	}()
	MustProgram(0, "")
}
