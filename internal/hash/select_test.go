package hash

import (
	"math/rand"
	"testing"

	"caram/internal/bitutil"
)

func TestSelectBitsFindsDiscriminatingBits(t *testing.T) {
	// Keys vary only in bits 3 and 9; every other bit is constant.
	// The greedy chooser must pick exactly those two.
	var keys []bitutil.Ternary
	for v := 0; v < 4; v++ {
		k := bitutil.FromUint64(0xf0f0)
		k = k.WithBit(3, uint(v)&1).WithBit(9, uint(v>>1)&1)
		for i := 0; i < 10; i++ { // repeat so loads matter
			keys = append(keys, bitutil.Exact(k))
		}
	}
	got := SelectBits(keys, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 2)
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Errorf("SelectBits = %v, want [3 9]", got)
	}
}

func TestSelectBitsAvoidsDontCarePositions(t *testing.T) {
	// Bit 2 is don't-care in every key (duplication penalty); bits 0 and
	// 1 discriminate. The chooser should prefer 0 and 1.
	var keys []bitutil.Ternary
	for v := 0; v < 4; v++ {
		keys = append(keys, bitutil.NewTernary(
			bitutil.FromUint64(uint64(v)),
			bitutil.FromUint64(0b100),
		))
	}
	got := SelectBits(keys, []int{0, 1, 2}, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("SelectBits = %v, want [0 1]", got)
	}
}

func TestSelectBitsEdgeCases(t *testing.T) {
	keys := []bitutil.Ternary{bitutil.Exact(bitutil.FromUint64(1))}
	if got := SelectBits(keys, nil, 3); got != nil {
		t.Errorf("no candidates: got %v", got)
	}
	if got := SelectBits(keys, []int{5}, 0); got != nil {
		t.Errorf("r=0: got %v", got)
	}
	// r larger than candidate count: clamp.
	if got := SelectBits(keys, []int{5, 7}, 10); len(got) != 2 {
		t.Errorf("clamped selection: got %v", got)
	}
}

func TestSelectBitsBeatsNaiveChoice(t *testing.T) {
	// Clustered keys: low 8 bits nearly constant, upper bits random.
	rng := rand.New(rand.NewSource(42))
	keys := make([]bitutil.Ternary, 4096)
	for i := range keys {
		k := rng.Uint64()<<8 | 0x5a
		keys[i] = bitutil.Exact(bitutil.FromUint64(k))
	}
	cands := make([]int, 16)
	for i := range cands {
		cands[i] = i
	}
	chosen := SelectBits(keys, cands, 6)
	naive := []int{0, 1, 2, 3, 4, 5}
	if distributionCost(keys, chosen) > distributionCost(keys, naive) {
		t.Errorf("greedy choice %v no better than naive %v", chosen, naive)
	}
	_, maxLoad, mean := LoadSpread(keys, chosen)
	if float64(maxLoad) > 3*mean {
		t.Errorf("max load %d far above mean %.1f", maxLoad, mean)
	}
}

func TestDistributionCostCountsDuplicates(t *testing.T) {
	// One ternary key with a don't care in the single selected bit lands
	// in both buckets: cost = 1^2 + 1^2 = 2.
	keys := []bitutil.Ternary{bitutil.NewTernary(bitutil.Vec128{}, bitutil.FromUint64(1))}
	if got := distributionCost(keys, []int{0}); got != 2 {
		t.Errorf("cost = %d, want 2", got)
	}
	// An exact key lands once: cost 1.
	keys = []bitutil.Ternary{bitutil.Exact(bitutil.FromUint64(1))}
	if got := distributionCost(keys, []int{0}); got != 1 {
		t.Errorf("cost = %d, want 1", got)
	}
}

func TestLoadSpread(t *testing.T) {
	keys := []bitutil.Ternary{
		bitutil.Exact(bitutil.FromUint64(0)),
		bitutil.Exact(bitutil.FromUint64(0)),
		bitutil.Exact(bitutil.FromUint64(1)),
	}
	min, max, mean := LoadSpread(keys, []int{0})
	if min != 1 || max != 2 || mean != 1.5 {
		t.Errorf("LoadSpread = %d %d %f", min, max, mean)
	}
}
