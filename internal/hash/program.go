package hash

import (
	"fmt"
	"strings"

	"caram/internal/bitutil"
)

// Programmable index generation (§3.1): "Depending on the application
// requirements, a small degree of programmability in index generation
// can be employed." Program is a tiny accumulator machine over the
// search key — field extracts combined with xor/add/multiply/shift —
// expressive enough for bit selection, folding, and simple arithmetic
// mixing, while staying a few gate-levels deep like the hardware it
// models.

// OpCode is one Program operation.
type OpCode int

// Operations. Field operations read Width key bits at Off; immediate
// operations use Imm; shifts use Imm as the distance.
const (
	OpLoad   OpCode = iota // acc = key[Off:Off+Width]
	OpXor                  // acc ^= key[Off:Off+Width]
	OpAdd                  // acc += key[Off:Off+Width]
	OpXorImm               // acc ^= Imm
	OpAddImm               // acc += Imm
	OpMulImm               // acc *= Imm
	OpShl                  // acc <<= Imm
	OpShr                  // acc >>= Imm
)

// String names the opcode.
func (o OpCode) String() string {
	names := [...]string{"load", "xor", "add", "xori", "addi", "muli", "shl", "shr"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction.
type Instr struct {
	Op         OpCode
	Off, Width int    // key field for Load/Xor/Add
	Imm        uint64 // immediate for *Imm and shift distance
}

// Program is a compiled index generator: the instructions run in order
// over a 64-bit accumulator and the low R bits of the result form the
// index.
type Program struct {
	Instrs []Instr
	R      int
	Label  string
}

// Validate checks instruction fields.
func (p *Program) Validate() error {
	if p.R < 1 || p.R > 32 {
		return fmt.Errorf("hash: program index width %d outside [1,32]", p.R)
	}
	if len(p.Instrs) == 0 {
		return fmt.Errorf("hash: empty program")
	}
	for i, in := range p.Instrs {
		switch in.Op {
		case OpLoad, OpXor, OpAdd:
			if in.Off < 0 || in.Width < 1 || in.Width > 64 || in.Off+in.Width > 128 {
				return fmt.Errorf("hash: instr %d: field [%d,+%d) invalid", i, in.Off, in.Width)
			}
		case OpShl, OpShr:
			if in.Imm > 63 {
				return fmt.Errorf("hash: instr %d: shift %d too large", i, in.Imm)
			}
		case OpXorImm, OpAddImm, OpMulImm:
			// any immediate is fine
		default:
			return fmt.Errorf("hash: instr %d: unknown opcode %d", i, in.Op)
		}
	}
	return nil
}

// NewProgram validates and returns a program.
func NewProgram(r int, label string, instrs ...Instr) (*Program, error) {
	p := &Program{Instrs: instrs, R: r, Label: label}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is NewProgram that panics on error.
func MustProgram(r int, label string, instrs ...Instr) *Program {
	p, err := NewProgram(r, label, instrs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Index executes the program over the key.
func (p *Program) Index(key bitutil.Vec128) uint32 {
	var acc uint64
	for _, in := range p.Instrs {
		switch in.Op {
		case OpLoad:
			acc = key.Shr(in.Off).Trunc(in.Width).Uint64()
		case OpXor:
			acc ^= key.Shr(in.Off).Trunc(in.Width).Uint64()
		case OpAdd:
			acc += key.Shr(in.Off).Trunc(in.Width).Uint64()
		case OpXorImm:
			acc ^= in.Imm
		case OpAddImm:
			acc += in.Imm
		case OpMulImm:
			acc *= in.Imm
		case OpShl:
			acc <<= in.Imm
		case OpShr:
			acc >>= in.Imm
		}
	}
	return uint32(acc) & (1<<uint(p.R) - 1)
}

// Bits returns the index width.
func (p *Program) Bits() int { return p.R }

// Name identifies the program.
func (p *Program) Name() string {
	if p.Label != "" {
		return p.Label
	}
	ops := make([]string, len(p.Instrs))
	for i, in := range p.Instrs {
		ops[i] = in.Op.String()
	}
	return "prog[" + strings.Join(ops, ",") + "]"
}

// FoldProgram builds a program equivalent to XorFold(r, keyWidth): the
// canonical example of expressing a standard generator in the
// programmable engine.
func FoldProgram(r, keyWidth int) *Program {
	instrs := []Instr{{Op: OpLoad, Off: 0, Width: min(r, keyWidth)}}
	for off := r; off < keyWidth; off += r {
		w := keyWidth - off
		if w > r {
			w = r
		}
		instrs = append(instrs, Instr{Op: OpXor, Off: off, Width: w})
	}
	return MustProgram(r, fmt.Sprintf("prog-xorfold/%d", r), instrs...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
