package hash

import (
	"sort"

	"caram/internal/bitutil"
)

// Greedy hash-bit selection, after Zane, Narlikar and Basu (CoolCAMs,
// INFOCOM 2003), as used in §4.1: given a set of (possibly ternary)
// keys and a window of candidate bit positions, choose the R positions
// that spread the keys most evenly across 2^R buckets.
//
// The quality of a candidate set is measured by the sum of squared
// bucket loads, which is proportional to the expected number of
// colliding pairs; a ternary key whose don't-care bits intersect the
// chosen positions counts once in every bucket it must be duplicated
// into, so the metric also penalizes duplication.

// SelectBits greedily picks r bit positions from candidates. Each round
// tries every remaining candidate, scores the resulting distribution
// over the doubled bucket count, and keeps the best. Ties are broken in
// favor of the lowest position to keep the result deterministic. The
// returned positions are sorted ascending.
func SelectBits(keys []bitutil.Ternary, candidates []int, r int) []int {
	if r <= 0 || len(candidates) == 0 {
		return nil
	}
	if r > len(candidates) {
		r = len(candidates)
	}
	chosen := make([]int, 0, r)
	remaining := append([]int(nil), candidates...)
	sort.Ints(remaining)
	for round := 0; round < r; round++ {
		bestIdx, bestCost := -1, int64(-1)
		for i, cand := range remaining {
			trial := append(append([]int(nil), chosen...), cand)
			cost := distributionCost(keys, trial)
			if bestIdx == -1 || cost < bestCost {
				bestIdx, bestCost = i, cost
			}
		}
		chosen = append(chosen, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	sort.Ints(chosen)
	return chosen
}

// distributionCost returns the sum of squared bucket loads for keys
// hashed by bit selection over positions. Don't-care bits in selected
// positions expand the key into every bucket it would be duplicated to.
func distributionCost(keys []bitutil.Ternary, positions []int) int64 {
	gen := BitSelect{Positions: positions}
	loads := make([]int32, 1<<uint(len(positions)))
	for _, k := range keys {
		if gen.DuplicationFactor(k) == 1 {
			loads[gen.Index(k.Value)]++
			continue
		}
		for _, idx := range gen.TernaryIndices(k) {
			loads[idx]++
		}
	}
	var cost int64
	for _, l := range loads {
		cost += int64(l) * int64(l)
	}
	return cost
}

// LoadSpread reports the min, max and mean bucket load produced by a
// bit-selection generator over the given keys, for diagnostics and
// tests.
func LoadSpread(keys []bitutil.Ternary, positions []int) (min, max int, mean float64) {
	gen := BitSelect{Positions: positions}
	loads := make([]int, 1<<uint(len(positions)))
	total := 0
	for _, k := range keys {
		for _, idx := range gen.TernaryIndices(k) {
			loads[idx]++
			total++
		}
	}
	min, max = loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	return min, max, float64(total) / float64(len(loads))
}
