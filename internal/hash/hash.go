// Package hash implements the index generators of CA-RAM (§3.1): the
// small block of logic that maps an N-bit search key to an R-bit row
// index. The paper notes that index generation ranges from plain bit
// selection (IP lookup, §4.1) to string hashing (the DJB hash used for
// trigram lookup, §4.2); this package provides both, plus the greedy
// hash-bit chooser of Zane et al. used to pick the selected bits, and a
// couple of generic generators useful for ablations.
package hash

import (
	"fmt"
	"sort"

	"caram/internal/bitutil"
)

// IndexGenerator turns a search key into a row index in [0, 2^Bits()).
// Implementations must be deterministic and safe for concurrent use.
type IndexGenerator interface {
	// Index returns the row index for key.
	Index(key bitutil.Vec128) uint32
	// Bits returns R, the width of the produced index.
	Bits() int
	// Name identifies the generator in reports.
	Name() string
}

// Func adapts a plain function to an IndexGenerator.
type Func struct {
	F     func(bitutil.Vec128) uint32
	R     int
	Label string
}

// Index invokes the wrapped function and truncates to R bits.
func (f Func) Index(key bitutil.Vec128) uint32 {
	return f.F(key) & (1<<uint(f.R) - 1)
}

// Bits returns the index width.
func (f Func) Bits() int { return f.R }

// Name returns the label given at construction.
func (f Func) Name() string { return f.Label }

// BitSelect extracts a fixed set of key bit positions and concatenates
// them into an index — the cheapest possible index generator, and the
// one the paper uses for IP lookup. Positions[0] becomes the least
// significant index bit.
type BitSelect struct {
	Positions []int
}

// NewBitSelect returns a bit-selection generator over the given key bit
// positions. It panics if more than 32 positions are supplied (the
// index is a uint32) or if any position is out of [0, 128).
func NewBitSelect(positions []int) *BitSelect {
	if len(positions) > 32 {
		panic(fmt.Sprintf("hash: BitSelect with %d positions", len(positions)))
	}
	for _, p := range positions {
		if p < 0 || p >= 128 {
			panic(fmt.Sprintf("hash: BitSelect position %d out of range", p))
		}
	}
	return &BitSelect{Positions: append([]int(nil), positions...)}
}

// Index assembles the selected key bits into an index.
func (b *BitSelect) Index(key bitutil.Vec128) uint32 {
	var idx uint32
	for i, p := range b.Positions {
		idx |= uint32(key.Bit(p)) << uint(i)
	}
	return idx
}

// Bits returns the number of selected positions.
func (b *BitSelect) Bits() int { return len(b.Positions) }

// Name identifies the generator.
func (b *BitSelect) Name() string { return fmt.Sprintf("bitselect%v", b.Positions) }

// TernaryIndices returns every row index a ternary key hashes to. A
// stored key with n don't-care bits in the selected positions must be
// duplicated into 2^n buckets to preserve don't-care semantics (§4);
// the returned slice has exactly that length and is sorted.
func (b *BitSelect) TernaryIndices(key bitutil.Ternary) []uint32 {
	base := b.Index(key.Value)
	var wild []int // index-bit positions that are don't care
	for i, p := range b.Positions {
		if key.Mask.Bit(p) == 1 {
			wild = append(wild, i)
		}
	}
	n := len(wild)
	out := make([]uint32, 0, 1<<uint(n))
	for combo := 0; combo < 1<<uint(n); combo++ {
		idx := base
		for j, bitPos := range wild {
			if combo>>uint(j)&1 == 1 {
				idx |= 1 << uint(bitPos)
			} else {
				idx &^= 1 << uint(bitPos)
			}
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DuplicationFactor returns how many buckets the key occupies (2^n for n
// don't-care bits in the selected positions) without materializing them.
func (b *BitSelect) DuplicationFactor(key bitutil.Ternary) int {
	n := 0
	for _, p := range b.Positions {
		if key.Mask.Bit(p) == 1 {
			n++
		}
	}
	return 1 << uint(n)
}

// LowBits returns a generator that uses the low r bits of the key —
// the degenerate bit selection, useful as a baseline.
func LowBits(r int) *BitSelect {
	pos := make([]int, r)
	for i := range pos {
		pos[i] = i
	}
	return NewBitSelect(pos)
}

// djbSeed is the classic starting value of the DJB string hash.
const djbSeed = 5381

// DJBBytes computes the DJB hash over raw bytes:
// hash(i) = (hash(i-1) << 5) + hash(i-1) + b[i], seeded with 5381.
// This is the exact recurrence quoted in §4.2.
func DJBBytes(b []byte) uint64 {
	h := uint64(djbSeed)
	for _, c := range b {
		h = h<<5 + h + uint64(c)
	}
	return h
}

// DJBString computes the DJB hash of a string without allocating.
func DJBString(s string) uint64 {
	h := uint64(djbSeed)
	for i := 0; i < len(s); i++ {
		h = h<<5 + h + uint64(s[i])
	}
	return h
}

// DJB is an IndexGenerator applying the DJB string hash to the key's
// big-endian byte image — the generator of the trigram study.
type DJB struct {
	R        int // index bits
	KeyBytes int // how many bytes of the key participate
}

// NewDJB returns a DJB index generator producing r-bit indices over
// keyBytes-byte keys.
func NewDJB(r, keyBytes int) *DJB { return &DJB{R: r, KeyBytes: keyBytes} }

// Index hashes the key bytes and keeps the low R bits. It walks the
// key's big-endian byte image in place — same values as
// DJBBytes(key.Bytes(...)) without materializing the slice, keeping
// trigram-engine searches allocation-free.
func (d *DJB) Index(key bitutil.Vec128) uint32 {
	n := d.KeyBytes
	if n > 16 {
		n = 16
	}
	h := uint64(djbSeed)
	for i := n - 1; i >= 0; i-- { // i = byte position from the LSB; MSB first
		var b byte
		if i < 8 {
			b = byte(key.Lo >> (8 * uint(i)))
		} else {
			b = byte(key.Hi >> (8 * uint(i-8)))
		}
		h = h<<5 + h + uint64(b)
	}
	return uint32(h) & (1<<uint(d.R) - 1)
}

// Bits returns the index width.
func (d *DJB) Bits() int { return d.R }

// Name identifies the generator.
func (d *DJB) Name() string { return fmt.Sprintf("djb/%dB", d.KeyBytes) }

// MultShift is a universal multiply-shift generator: (a*lo ^ b*hi) taken
// from the top R bits. It serves as the "simple arithmetic" index
// generator of §3.1 and as an ablation point against bit selection.
type MultShift struct {
	R    int
	A, B uint64
}

// NewMultShift returns a multiply-shift generator with fixed, odd
// multipliers (deterministic across runs).
func NewMultShift(r int) *MultShift {
	return &MultShift{R: r, A: 0x9e3779b97f4a7c15, B: 0xc2b2ae3d27d4eb4f}
}

// Index mixes both key words and keeps the top R bits of the product.
func (m *MultShift) Index(key bitutil.Vec128) uint32 {
	h := m.A*key.Lo ^ m.B*key.Hi
	h ^= h >> 29
	h *= m.A
	return uint32(h >> (64 - uint(m.R)))
}

// Bits returns the index width.
func (m *MultShift) Bits() int { return m.R }

// Name identifies the generator.
func (m *MultShift) Name() string { return fmt.Sprintf("multshift/%d", m.R) }

// XorFold folds the whole key into R bits by XORing R-bit chunks — a
// middle ground between bit selection and true hashing.
type XorFold struct {
	R        int
	KeyWidth int
}

// NewXorFold returns an R-bit xor-folding generator over keyWidth-bit keys.
func NewXorFold(r, keyWidth int) *XorFold { return &XorFold{R: r, KeyWidth: keyWidth} }

// Index xor-folds the key.
func (x *XorFold) Index(key bitutil.Vec128) uint32 {
	var h uint32
	k := key.Trunc(x.KeyWidth)
	for off := 0; off < x.KeyWidth; off += x.R {
		h ^= uint32(k.Shr(off).Trunc(x.R).Uint64())
	}
	return h & (1<<uint(x.R) - 1)
}

// Bits returns the index width.
func (x *XorFold) Bits() int { return x.R }

// Name identifies the generator.
func (x *XorFold) Name() string { return fmt.Sprintf("xorfold/%d", x.R) }
