package trigram

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
	"caram/internal/stats"
)

// Arrangement mirrors Table 3's slice arrangements: vertical slices
// multiply the bucket count, horizontal slices widen buckets.
type Arrangement int

// Arrangements.
const (
	Vertical Arrangement = iota
	Horizontal
)

// String names the arrangement.
func (a Arrangement) String() string {
	if a == Horizontal {
		return "horizontal"
	}
	return "vertical"
}

// Design is one row of Table 3. Each slice contributes 2^R rows of 96
// 128-bit keys (C = 96 x 128 = 12,288 bits in the paper's accounting).
type Design struct {
	Name   string
	R      int // per-slice index bits (14 in the paper)
	Slices int
	Arr    Arrangement
}

// KeysPerSliceRow is the paper's 96 keys per bucket.
const KeysPerSliceRow = 96

// ScoreBits is the per-entry payload width stored with the key.
const ScoreBits = 16

// Table3Designs are the four designs the paper evaluates.
var Table3Designs = []Design{
	{Name: "A", R: 14, Slices: 4, Arr: Vertical},
	{Name: "B", R: 14, Slices: 5, Arr: Vertical},
	{Name: "C", R: 14, Slices: 4, Arr: Horizontal},
	{Name: "D", R: 14, Slices: 5, Arr: Horizontal},
}

// Buckets returns the combined bucket count M.
func (d Design) Buckets() int {
	if d.Arr == Vertical {
		return d.Slices << uint(d.R)
	}
	return 1 << uint(d.R)
}

// Slots returns S, keys per combined bucket.
func (d Design) Slots() int {
	if d.Arr == Vertical {
		return KeysPerSliceRow
	}
	return KeysPerSliceRow * d.Slices
}

// Capacity returns M*S in keys.
func (d Design) Capacity() int { return d.Buckets() * d.Slots() }

// CapacityBits returns the physical key storage in bits (128 per key),
// the quantity Figure 8's area model consumes.
func (d Design) CapacityBits() float64 {
	return float64(d.Slices) * float64(int(1)<<uint(d.R)) * KeysPerSliceRow * 128
}

// djbIndex hashes the padded 16-byte key image with the DJB function —
// the §4.2 index generator. Its 31-bit output is reduced modulo the
// bucket count by the slice, with negligible bias.
func djbIndex() hash.Func {
	return hash.Func{
		F: func(key bitutil.Vec128) uint32 {
			return uint32(hash.DJBBytes(key.Bytes(KeyBytes * 8)))
		},
		R:     31,
		Label: "djb/trigram",
	}
}

// sliceConfig derives the simulator configuration for a design with an
// explicit slot count and probe limit (0 = unlimited, caram.NoProbing
// to disable probing).
func sliceConfig(d Design, slots, probeLimit int) caram.Config {
	slot := 1 + 128 + ScoreBits
	return caram.Config{
		IndexBits:  31, // documentation only; TotalRows governs geometry
		TotalRows:  d.Buckets(),
		RowBits:    slots*slot + 16,
		KeyBits:    128,
		DataBits:   ScoreBits,
		AuxBits:    16,
		Tech:       mem.DRAM,
		ProbeLimit: probeLimit,
		Index:      djbIndex(),
	}
}

// Evaluation is one computed row of Table 3 plus Figure 7's data.
type Evaluation struct {
	Design         Design
	Entries        int
	LoadFactor     float64 // alpha = N / (M*S)
	OverflowingPct float64
	SpilledPct     float64
	AMAL           float64
	Unplaced       int
	Slice          *caram.Slice
}

// Evaluate builds the design from the database and computes the
// Table 3 metrics.
func Evaluate(db []Entry, d Design) (*Evaluation, error) {
	return EvaluateGeometry(db, d, d.Slots())
}

// EvaluateWithProbeLimit is Evaluate with an explicit linear-probing
// bound (0 = unlimited, caram.NoProbing disables spilling) — the
// probe-limit ablation's entry point.
func EvaluateWithProbeLimit(db []Entry, d Design, probeLimit int) (*Evaluation, error) {
	return evaluate(db, d, d.Slots(), probeLimit)
}

// EvaluateGeometry is Evaluate with an explicit slots-per-bucket count,
// for S-vs-M sweeps at fixed capacity.
func EvaluateGeometry(db []Entry, d Design, slots int) (*Evaluation, error) {
	return evaluate(db, d, slots, 0)
}

func evaluate(db []Entry, d Design, slots, probeLimit int) (*Evaluation, error) {
	slice, err := caram.New(sliceConfig(d, slots, probeLimit))
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Design: d, Entries: len(db), Slice: slice}
	sumAccesses := 0.0
	placed := 0
	for _, e := range db {
		rec := match.Record{
			Key:  bitutil.Exact(e.Key()),
			Data: bitutil.FromUint64(uint64(e.Score)),
		}
		disp, err := slice.Place(slice.Index(rec.Key.Value), rec)
		if err == caram.ErrFull {
			ev.Unplaced++
			continue
		}
		if err == caram.ErrExists {
			return nil, fmt.Errorf("trigram: duplicate entry %q", e.Text)
		}
		if err != nil {
			return nil, err
		}
		sumAccesses += float64(1 + disp)
		placed++
	}
	ev.LoadFactor = float64(len(db)) / float64(d.Buckets()*slots)
	p := slice.Placement()
	ev.OverflowingPct = p.OverflowingPct
	ev.SpilledPct = p.SpilledPct
	if placed > 0 {
		ev.AMAL = sumAccesses / float64(placed)
	}
	return ev, nil
}

// Lookup finds a trigram's score with a single CA-RAM search.
func Lookup(slice *caram.Slice, text string) (score uint16, rowsRead int, ok bool) {
	res := slice.Lookup(bitutil.Exact(Entry{Text: text}.Key()))
	return uint16(res.Record.Data.Uint64()), res.RowsRead, res.Found
}

// OccupancyHistogram returns the Figure 7 distribution: how many
// buckets hold each number of records (by hash, before spilling).
func (ev *Evaluation) OccupancyHistogram() *stats.Histogram {
	h := stats.NewHistogram()
	for _, load := range ev.Slice.HomeLoads() {
		h.Add(int(load))
	}
	return h
}
