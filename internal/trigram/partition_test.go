package trigram

import (
	"testing"

	"caram/internal/bitutil"
	"caram/internal/subsystem"
)

func TestGeneratePartitionedShares(t *testing.T) {
	dbs := GeneratePartitioned(50000, 1, SphinxPartitions)
	if len(dbs) != len(SphinxPartitions) {
		t.Fatalf("partitions = %d", len(dbs))
	}
	total := 0
	for _, p := range SphinxPartitions {
		db := dbs[p.Name]
		total += len(db)
		want := int(50000 * p.Share)
		if len(db) != want {
			t.Errorf("%s: %d entries, want %d", p.Name, len(db), want)
		}
		for _, e := range db {
			if len(e.Text) < p.MinLen || len(e.Text) > p.MaxLen {
				t.Fatalf("%s: entry %q of length %d outside [%d,%d]",
					p.Name, e.Text, len(e.Text), p.MinLen, p.MaxLen)
			}
		}
	}
	if total < 45000 {
		t.Errorf("total = %d", total)
	}
}

func TestPartitionedLookup(t *testing.T) {
	dbs := GeneratePartitioned(20000, 2, SphinxPartitions)
	p, err := BuildPartitioned(dbs, SphinxPartitions, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if p.KeyCollisions > 5 {
		t.Errorf("%d xlong key collisions; digest scheme suspect", p.KeyCollisions)
	}
	checked := 0
	for _, part := range SphinxPartitions {
		for i, e := range dbs[part.Name] {
			if i%37 != 0 {
				continue
			}
			score, rows, ok := p.Lookup(e.Text)
			if !ok {
				t.Fatalf("%s: entry %q lost", part.Name, e.Text)
			}
			if score != e.Score {
				// Only acceptable for an xlong digest collision.
				if len(e.Text) <= KeyBytes {
					t.Fatalf("%s: entry %q score %d, want %d", part.Name, e.Text, score, e.Score)
				}
			}
			if rows < 1 {
				t.Fatal("no rows read")
			}
			checked++
		}
	}
	if checked < 400 {
		t.Errorf("only %d lookups checked", checked)
	}
	// Out-of-range lengths and misses.
	if _, _, ok := p.Lookup("abc"); ok {
		t.Error("3-char query matched")
	}
	if _, _, ok := p.Lookup("zz qq ww pp ll"); ok {
		t.Error("phantom hit")
	}
	// Per-partition load factors near the target.
	for name, st := range p.Stats() {
		if st[1] < 0.4 || st[1] > 0.95 {
			t.Errorf("%s load factor = %.2f", name, st[1])
		}
	}
	if got := len(p.Engines()); got != len(SphinxPartitions) {
		t.Errorf("Engines = %d", got)
	}
	if p.Subsystem() == nil {
		t.Error("no subsystem")
	}
}

func TestPartitionedWithDispatcher(t *testing.T) {
	dbs := GeneratePartitioned(8000, 3, SphinxPartitions)
	p, err := BuildPartitioned(dbs, SphinxPartitions, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	d := subsystem.NewDispatcher(p.Engines(), 32)
	want := map[uint64]uint16{}
	id := uint64(0)
	for _, part := range SphinxPartitions {
		for i, e := range dbs[part.Name] {
			if i%101 != 0 {
				continue
			}
			id++
			want[id] = e.Score
			if err := d.Submit(part.Name, id, bitutil.Exact(e.Key())); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.Close()
	got := 0
	for r := range d.Results() {
		if !r.Found {
			t.Fatalf("result %d not found", r.ID)
		}
		if uint16(r.Record.Data.Uint64()) != want[r.ID] {
			t.Fatalf("result %d score mismatch", r.ID)
		}
		got++
	}
	if got != len(want) {
		t.Fatalf("collected %d of %d results", got, len(want))
	}
}

func TestLongKeyScheme(t *testing.T) {
	a := Entry{Text: "aaaaaaaaaaaa-tail-one-x"}
	b := Entry{Text: "aaaaaaaaaaaa-tail-two-y"}
	if a.Key() == b.Key() {
		t.Error("different tails produced the same key")
	}
	c := Entry{Text: "bbbbbbbbbbbb-tail-one-x"}
	if a.Key() == c.Key() {
		t.Error("different heads produced the same key")
	}
	// Deterministic.
	if a.Key() != (Entry{Text: a.Text}).Key() {
		t.Error("long key not deterministic")
	}
}

func TestGenerateWithBoundsUnreachable(t *testing.T) {
	// No word-length triple can reach 100+ characters: empty result,
	// no hang.
	db := generateLenRange(10, 1, 100, 120)
	if len(db) != 0 {
		t.Errorf("unreachable bounds produced %d entries", len(db))
	}
}

func TestPartitionForOutOfRange(t *testing.T) {
	if i := partitionFor(SphinxPartitions, 3); i != -1 {
		t.Errorf("length 3 mapped to partition %d", i)
	}
	if i := partitionFor(SphinxPartitions, 30); i != -1 {
		t.Errorf("length 30 mapped to partition %d", i)
	}
	if i := partitionFor(SphinxPartitions, 13); i < 0 || SphinxPartitions[i].Name != "long" {
		t.Errorf("length 13 mapped to %d", i)
	}
}

func TestBuildPartitionedDefaults(t *testing.T) {
	dbs := map[string][]Entry{"long": Generate(GenConfig{Entries: 500, Seed: 4, Vocabulary: 2000})}
	parts := []Partition{{Name: "long", MinLen: 13, MaxLen: 16, Share: 1}}
	p, err := BuildPartitioned(dbs, parts, -1) // alpha clamps to default
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Lookup(dbs["long"][0].Text); !ok {
		t.Error("entry lost under default alpha")
	}
	// Partition present in parts but missing from dbs is skipped.
	parts2 := append(parts, Partition{Name: "ghost", MinLen: 2, MaxLen: 3})
	p2, err := BuildPartitioned(dbs, parts2, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Engines()) != 1 {
		t.Errorf("engines = %d", len(p2.Engines()))
	}
}
