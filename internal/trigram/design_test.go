package trigram

import (
	"math"
	"testing"
)

func TestDesignGeometry(t *testing.T) {
	cases := []struct {
		name           string
		buckets, slots int
		alpha          float64 // paper's alpha at 5,385,231 entries
	}{
		{"A", 4 << 14, 96, 0.86},
		{"B", 5 << 14, 96, 0.68},
		{"C", 1 << 14, 384, 0.86},
		{"D", 1 << 14, 480, 0.68},
	}
	byName := map[string]Design{}
	for _, d := range Table3Designs {
		byName[d.Name] = d
	}
	for _, c := range cases {
		d := byName[c.name]
		if d.Buckets() != c.buckets || d.Slots() != c.slots {
			t.Errorf("%s: geometry %d x %d, want %d x %d",
				c.name, d.Buckets(), d.Slots(), c.buckets, c.slots)
		}
		alpha := float64(PaperEntries) / float64(d.Capacity())
		if math.Abs(alpha-c.alpha) > 0.01 {
			t.Errorf("%s: alpha = %.3f, paper %.2f", c.name, alpha, c.alpha)
		}
	}
	// C = 96 keys x 128 bits = 12,288 bits per slice row (paper §4.2).
	if got := Table3Designs[0].CapacityBits() / float64(4*(1<<14)); got != 12288 {
		t.Errorf("per-row bits = %f, want 12288", got)
	}
}

// scaled shrinks a design by dropping index bits; with the database
// shrunk by the same power of two, alpha — and therefore the binomial
// occupancy statistics — are preserved.
func scaled(d Design, drop int) Design {
	d.R -= drop
	d.Name += "'"
	return d
}

func testDB(t *testing.T, scaleDrop int) []Entry {
	t.Helper()
	n := PaperEntries >> uint(scaleDrop)
	return Generate(GenConfig{Entries: n, Seed: 9, Vocabulary: 20000})
}

// Table 3's shape at 1/64 scale:
//   - design A (alpha=.86): a few % of buckets overflow, well under 1%
//     of records spill, AMAL just above 1
//   - design B (alpha=.68): essentially no overflow
//   - horizontal designs C/D: wider buckets absorb variance, ~0 spill
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design evaluation in -short mode")
	}
	db := testDB(t, 6)
	results := map[string]*Evaluation{}
	for _, d := range Table3Designs {
		ev, err := Evaluate(db, scaled(d, 6))
		if err != nil {
			t.Fatal(err)
		}
		results[d.Name] = ev
		t.Logf("design %s: alpha=%.2f overflow=%.2f%% spilled=%.3f%% AMAL=%.4f",
			d.Name, ev.LoadFactor, ev.OverflowingPct, ev.SpilledPct, ev.AMAL)
		if ev.Unplaced != 0 {
			t.Errorf("design %s: %d unplaced", d.Name, ev.Unplaced)
		}
	}
	a, b, c, dd := results["A"], results["B"], results["C"], results["D"]
	if math.Abs(a.LoadFactor-0.86) > 0.01 || math.Abs(b.LoadFactor-0.68) > 0.01 {
		t.Errorf("alphas: A=%.3f B=%.3f", a.LoadFactor, b.LoadFactor)
	}
	// Paper design A: 5.99% overflowing, 0.34% spilled, AMAL 1.003.
	if a.OverflowingPct < 2 || a.OverflowingPct > 12 {
		t.Errorf("A overflow = %.2f%%, paper 5.99%%", a.OverflowingPct)
	}
	if a.SpilledPct > 1.0 {
		t.Errorf("A spilled = %.3f%%, paper 0.34%%", a.SpilledPct)
	}
	if a.AMAL < 1 || a.AMAL > 1.02 {
		t.Errorf("A AMAL = %.4f, paper 1.003", a.AMAL)
	}
	// B: nearly nothing overflows (paper 0.02%/0.00%).
	if b.OverflowingPct > 0.5 || b.SpilledPct > 0.05 {
		t.Errorf("B overflow=%.3f%% spilled=%.3f%%", b.OverflowingPct, b.SpilledPct)
	}
	if b.AMAL > 1.001 {
		t.Errorf("B AMAL = %.5f", b.AMAL)
	}
	// Horizontal beats vertical at equal alpha (C vs A, D vs B).
	if c.OverflowingPct >= a.OverflowingPct {
		t.Errorf("C (%.3f%%) should overflow less than A (%.3f%%)", c.OverflowingPct, a.OverflowingPct)
	}
	if dd.SpilledPct > 0.01 {
		t.Errorf("D spilled = %.4f%%, paper 0.00%%", dd.SpilledPct)
	}
}

// Figure 7: design A's occupancy distribution is centered around
// alpha*96 ~ 82 with binomial spread, and the 96-slot bucket size puts
// the vast majority of buckets in the non-overflowing region.
func TestFig7Distribution(t *testing.T) {
	db := testDB(t, 7)
	ev, err := Evaluate(db, scaled(Table3Designs[0], 7))
	if err != nil {
		t.Fatal(err)
	}
	h := ev.OccupancyHistogram()
	if mean := h.Mean(); mean < 78 || mean > 86 {
		t.Errorf("mean occupancy = %.1f, paper: centered ~81-83", mean)
	}
	// Binomial spread: stddev ~ sqrt(mean) ~ 9.
	if sd := h.StdDev(); sd < 5 || sd > 14 {
		t.Errorf("occupancy stddev = %.1f", sd)
	}
	overflowing := float64(h.CountAbove(KeysPerSliceRow)) / float64(h.N())
	if overflowing > 0.12 {
		t.Errorf("%.1f%% of buckets beyond 96 records", 100*overflowing)
	}
}

func TestLookupRoundTrip(t *testing.T) {
	db := Generate(GenConfig{Entries: 20000, Seed: 5, Vocabulary: 8000})
	ev, err := Evaluate(db, Design{Name: "t", R: 8, Slices: 1, Arr: Vertical})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < len(db); i += 97 {
		score, rows, ok := Lookup(ev.Slice, db[i].Text)
		if !ok {
			t.Fatalf("entry %q not found", db[i].Text)
		}
		if score != db[i].Score {
			t.Fatalf("entry %q: score %d, want %d", db[i].Text, score, db[i].Score)
		}
		if rows < 1 {
			t.Fatal("lookup read no rows")
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("no lookups exercised")
	}
	if _, _, ok := Lookup(ev.Slice, "not a trigram!!"); ok {
		t.Error("phantom hit")
	}
	if msg := ev.Slice.Verify(); msg != "" {
		t.Errorf("slice invariant: %s", msg)
	}
}

// Non-power-of-two bucket counts (design B's 5 vertical slices) must
// behave: every entry findable, row count within bounds.
func TestFiveSliceVertical(t *testing.T) {
	db := Generate(GenConfig{Entries: 5000, Seed: 6, Vocabulary: 4000})
	ev, err := Evaluate(db, Design{Name: "b", R: 5, Slices: 5, Arr: Vertical})
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.Slice.Config().Rows(); got != 5*32 {
		t.Fatalf("rows = %d, want 160", got)
	}
	for i := 0; i < len(db); i += 53 {
		if _, _, ok := Lookup(ev.Slice, db[i].Text); !ok {
			t.Fatalf("entry %q lost in 5-slice design", db[i].Text)
		}
	}
}
