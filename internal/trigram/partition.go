package trigram

import (
	"fmt"
	"sort"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/match"
	"caram/internal/subsystem"
)

// The partitioned-database approach of §4.2, completed: the paper maps
// only the 13–16-character partition (40% of the 13,459,881-entry
// Sphinx database) onto CA-RAM; here the *whole* database is split by
// entry length into partitions, each served by its own CA-RAM engine
// sized to its share, behind the subsystem's ports — the input
// controller routes a query to the partition its length selects, so
// the full database still answers in one row access.

// Partition describes one length class.
type Partition struct {
	Name           string
	MinLen, MaxLen int     // inclusive character bounds
	Share          float64 // fraction of the database (Sphinx-like mix)
}

// SphinxPartitions approximates the full database's length mix; the
// paper states the 13–16 class holds 40% of all entries.
var SphinxPartitions = []Partition{
	{Name: "short", MinLen: 5, MaxLen: 8, Share: 0.08},
	{Name: "mid", MinLen: 9, MaxLen: 12, Share: 0.34},
	{Name: "long", MinLen: 13, MaxLen: 16, Share: 0.40},
	{Name: "xlong", MinLen: 17, MaxLen: 24, Share: 0.18},
}

// PartitionedDB is the full database behind one subsystem.
type PartitionedDB struct {
	sub        *subsystem.Subsystem
	partitions []Partition
	// engines keeps the per-partition engines for direct access.
	engines map[string]*subsystem.Engine
	// KeyCollisions counts xlong entries dropped because their
	// head+digest key collided with a stored one (see Entry.Key).
	KeyCollisions int
}

// partitionFor returns the partition index for an entry length, or -1.
func partitionFor(parts []Partition, n int) int {
	for i, p := range parts {
		if n >= p.MinLen && n <= p.MaxLen {
			return i
		}
	}
	return -1
}

// GeneratePartitioned synthesizes a full-database image: total entries
// distributed over the partitions by share, each entry's length within
// its partition's bounds.
func GeneratePartitioned(total int, seed int64, parts []Partition) map[string][]Entry {
	if total <= 0 {
		total = 200000
	}
	out := make(map[string][]Entry, len(parts))
	for i, p := range parts {
		n := int(float64(total) * p.Share)
		if n == 0 {
			n = 1
		}
		out[p.Name] = generateLenRange(n, seed+int64(i)*17, p.MinLen, p.MaxLen)
	}
	return out
}

// generateLenRange is the Generate core with custom length bounds.
func generateLenRange(n int, seed int64, minLen, maxLen int) []Entry {
	// Reuse Generate and post-filter would be wasteful for short
	// bounds, so synthesize directly with the same vocabulary model.
	db := generateWithBounds(n, seed, minLen, maxLen, 0)
	sort.Slice(db, func(i, j int) bool { return db[i].Text < db[j].Text })
	return db
}

// BuildPartitioned loads every partition into its own engine behind a
// shared subsystem. perSliceR sizes each engine's bucket count; the
// bucket count scales with the partition share so load factors are
// comparable across partitions.
func BuildPartitioned(dbs map[string][]Entry, parts []Partition, targetAlpha float64) (*PartitionedDB, error) {
	if targetAlpha <= 0 || targetAlpha >= 1 {
		targetAlpha = 0.7
	}
	p := &PartitionedDB{
		sub:        subsystem.New(4096),
		partitions: parts,
		engines:    make(map[string]*subsystem.Engine, len(parts)),
	}
	for _, part := range parts {
		db := dbs[part.Name]
		if len(db) == 0 {
			continue
		}
		// Buckets so that N/(M*S) ~ targetAlpha with S = 96.
		m := int(float64(len(db))/(targetAlpha*KeysPerSliceRow)) + 1
		if m < 4 {
			m = 4
		}
		slot := 1 + 128 + ScoreBits
		slice, err := caram.New(caram.Config{
			IndexBits: 31,
			TotalRows: m,
			RowBits:   KeysPerSliceRow*slot + 16,
			KeyBits:   128,
			DataBits:  ScoreBits,
			AuxBits:   16,
			Index:     djbIndex(),
		})
		if err != nil {
			return nil, err
		}
		eng := &subsystem.Engine{Name: part.Name, Main: slice}
		if err := p.sub.AddEngine(eng); err != nil {
			return nil, err
		}
		p.engines[part.Name] = eng
		for _, e := range db {
			rec := match.Record{Key: bitutil.Exact(e.Key()), Data: bitutil.FromUint64(uint64(e.Score))}
			switch err := slice.Insert(rec); err {
			case nil:
			case caram.ErrExists:
				p.KeyCollisions++ // digest collision on an xlong key
			default:
				return nil, fmt.Errorf("trigram: partition %s: %w", part.Name, err)
			}
		}
	}
	return p, nil
}

// Lookup routes the query to its length's partition — the virtual-port
// dispatch of §3.2 — and performs one search there.
func (p *PartitionedDB) Lookup(text string) (score uint16, rowsRead int, ok bool) {
	i := partitionFor(p.partitions, len(text))
	if i < 0 {
		return 0, 0, false
	}
	eng, present := p.engines[p.partitions[i].Name]
	if !present {
		return 0, 0, false
	}
	sr := eng.Search(bitutil.Exact(Entry{Text: text}.Key()))
	if !sr.Found {
		return 0, sr.RowsRead, false
	}
	return uint16(sr.Record.Data.Uint64()), sr.RowsRead, true
}

// Stats returns per-partition (entries, load factor, AMAL-so-far).
func (p *PartitionedDB) Stats() map[string][3]float64 {
	out := make(map[string][3]float64, len(p.engines))
	for name, eng := range p.engines {
		st := eng.Main.Stats()
		out[name] = [3]float64{float64(eng.Main.Count()), eng.Main.LoadFactor(), st.AMAL()}
	}
	return out
}

// Subsystem exposes the underlying assembly (for the dispatcher).
func (p *PartitionedDB) Subsystem() *subsystem.Subsystem { return p.sub }

// Engines lists partition engines in partition order.
func (p *PartitionedDB) Engines() []*subsystem.Engine {
	var out []*subsystem.Engine
	for _, part := range p.partitions {
		if e, ok := p.engines[part.Name]; ok {
			out = append(out, e)
		}
	}
	return out
}
