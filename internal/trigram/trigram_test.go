package trigram

import (
	"testing"

	"caram/internal/bitutil"
)

func TestGenerateCountLengthUnique(t *testing.T) {
	db := Generate(GenConfig{Entries: 30000, Seed: 1, Vocabulary: 5000})
	if len(db) != 30000 {
		t.Fatalf("len = %d", len(db))
	}
	seen := map[string]bool{}
	for _, e := range db {
		if len(e.Text) < MinLen || len(e.Text) > MaxLen {
			t.Fatalf("entry %q has length %d outside [%d,%d]", e.Text, len(e.Text), MinLen, MaxLen)
		}
		if seen[e.Text] {
			t.Fatalf("duplicate entry %q", e.Text)
		}
		seen[e.Text] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Entries: 2000, Seed: 3, Vocabulary: 2000})
	b := Generate(GenConfig{Entries: 2000, Seed: 3, Vocabulary: 2000})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGenerateTrigramShape(t *testing.T) {
	db := Generate(GenConfig{Entries: 5000, Seed: 2, Vocabulary: 3000})
	for _, e := range db[:100] {
		words := 1
		for i := 0; i < len(e.Text); i++ {
			if e.Text[i] == ' ' {
				words++
			}
		}
		if words != 3 {
			t.Fatalf("entry %q has %d words", e.Text, words)
		}
	}
}

func TestEntryKey(t *testing.T) {
	e := Entry{Text: "abc"}
	k := e.Key()
	// Big-endian padded: 'a' in the top byte of the 16-byte image.
	want := bitutil.FromBytes(append([]byte("abc"), make([]byte, 13)...))
	if k != want {
		t.Errorf("Key = %v, want %v", k, want)
	}
	// Distinct texts give distinct keys.
	if (Entry{Text: "abc"}).Key() == (Entry{Text: "abd"}).Key() {
		t.Error("key collision on different texts")
	}
	// 16-char text uses the full width.
	full := Entry{Text: "abcdefghijklmnop"}
	if full.Key() != bitutil.FromString("abcdefghijklmnop") {
		t.Error("full-width key wrong")
	}
}
