// Package trigram implements the paper's second application study
// (§4.2): trigram lookup in a large-vocabulary speech recognition
// system. The CMU-Sphinx III trigram database is not redistributable,
// so a synthetic corpus stands in (see DESIGN.md, "Substitutions"): a
// Zipf-distributed vocabulary of syllable-built words generates
// trigram strings, filtered — as the paper does — to the 13–16
// character partition. The metrics of Table 3 and the Figure 7
// occupancy distribution are pure functions of the load factor and the
// DJB hash's uniformity, so they carry over from the real database.
package trigram

import (
	"sort"
	"strings"

	"caram/internal/bitutil"
	"caram/internal/hash"
	"caram/internal/workload"
)

// Paper-scale constants (§4.2).
const (
	// PaperEntries is the size of the 13–16-character partition the
	// paper maps onto CA-RAM (40% of the full 13,459,881-entry DB).
	PaperEntries = 5385231
	// MinLen and MaxLen bound the partition's entry length in bytes.
	MinLen = 13
	MaxLen = 16
	// KeyBytes is the stored key width: 16 characters (128 bits).
	KeyBytes = 16
)

// Entry is one trigram record: the text and its language-model score
// (standing in for the back-off weight / probability payload).
type Entry struct {
	Text  string
	Score uint16
}

// Key returns the entry's 128-bit CA-RAM key. Texts up to 16 bytes are
// zero-padded; longer texts (the xlong partition) are keyed by their
// first 12 bytes plus a 32-bit DJB digest of the remainder — the
// standard long-key compromise, collision-free unless both the head
// and the digest coincide.
func (e Entry) Key() bitutil.Vec128 {
	var buf [KeyBytes]byte
	if len(e.Text) <= KeyBytes {
		copy(buf[:], e.Text)
		return bitutil.FromBytes(buf[:])
	}
	copy(buf[:12], e.Text[:12])
	d := uint32(hash.DJBString(e.Text[12:]))
	buf[12] = byte(d >> 24)
	buf[13] = byte(d >> 16)
	buf[14] = byte(d >> 8)
	buf[15] = byte(d)
	return bitutil.FromBytes(buf[:])
}

// GenConfig controls corpus synthesis.
type GenConfig struct {
	Entries int   // target entry count; 0 = PaperEntries
	Seed    int64 // RNG seed
	// Vocabulary is the distinct word count; 0 derives ~60,000 (the
	// paper's "~60,000-word vocabulary" system).
	Vocabulary int
}

// syllables for word synthesis; chosen to give natural-ish lengths.
var onsets = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
	"n", "p", "r", "s", "t", "v", "w", "z", "ch", "sh", "th", "st", "tr", "pl"}
var nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou", "io"}
var codas = []string{"", "", "n", "r", "s", "t", "l", "m", "nd", "st", "ck", "ng"}

// Generate synthesizes a deduplicated trigram database of exactly
// cfg.Entries entries, each 13–16 characters ("w1 w2 w3").
func Generate(cfg GenConfig) []Entry {
	if cfg.Entries <= 0 {
		cfg.Entries = PaperEntries
	}
	if cfg.Vocabulary <= 0 {
		cfg.Vocabulary = 60000
	}
	out := generateWithBounds(cfg.Entries, cfg.Seed, MinLen, MaxLen, cfg.Vocabulary)
	sort.Slice(out, func(i, j int) bool { return out[i].Text < out[j].Text })
	return out
}

// generateWithBounds is the synthesis core with custom length bounds,
// shared with the partitioned-database generator. The paper's own
// 13-16 partition uses Zipf word sampling with rejection (cheap there
// because most trigrams land in range); other partitions use a
// length-bucketed sampler, since rejection sampling of, say, an
// 8-character trigram from a 60,000-word vocabulary almost never
// succeeds.
func generateWithBounds(entries int, seed int64, minLen, maxLen, vocabulary int) []Entry {
	if vocabulary <= 0 {
		vocabulary = 60000
	}
	cfg := GenConfig{Entries: entries, Seed: seed, Vocabulary: vocabulary}
	rng := workload.NewRand(cfg.Seed)

	vocab := make([]string, cfg.Vocabulary)
	seenWord := make(map[string]bool, cfg.Vocabulary)
	for i := 0; i < cfg.Vocabulary; {
		var b strings.Builder
		syls := 1 + rng.Intn(3)
		for s := 0; s < syls; s++ {
			b.WriteString(onsets[rng.Intn(len(onsets))])
			b.WriteString(nuclei[rng.Intn(len(nuclei))])
			b.WriteString(codas[rng.Intn(len(codas))])
		}
		w := b.String()
		if len(w) < 2 || len(w) > 10 || seenWord[w] {
			continue
		}
		seenWord[w] = true
		vocab[i] = w
		i++
	}

	seen := make(map[string]bool, cfg.Entries)
	out := make([]Entry, 0, cfg.Entries)
	if minLen == MinLen && maxLen == MaxLen {
		pick := workload.NewZipf(rng, 1.1, len(vocab))
		for len(out) < cfg.Entries {
			t := vocab[pick.Rank()] + " " + vocab[pick.Rank()] + " " + vocab[pick.Rank()]
			if len(t) < minLen || len(t) > maxLen || seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, Entry{Text: t, Score: uint16(rng.Intn(1 << 16))})
		}
		return out
	}

	// Length-bucketed sampling: draw a feasible word-length triple,
	// then a word from each length bucket.
	byLen := make(map[int][]string)
	for _, w := range vocab {
		byLen[len(w)] = append(byLen[len(w)], w)
	}
	var triples [][3]int
	for l1 := range byLen {
		for l2 := range byLen {
			for l3 := range byLen {
				total := l1 + l2 + l3 + 2
				if total >= minLen && total <= maxLen {
					triples = append(triples, [3]int{l1, l2, l3})
				}
			}
		}
	}
	if len(triples) == 0 {
		return out // bounds unreachable with this vocabulary
	}
	sort.Slice(triples, func(i, j int) bool { // determinism over map order
		a, b := triples[i], triples[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	maxAttempts := 200*cfg.Entries + 10000
	for attempts := 0; len(out) < cfg.Entries && attempts < maxAttempts; attempts++ {
		tr := triples[rng.Intn(len(triples))]
		t := byLen[tr[0]][rng.Intn(len(byLen[tr[0]]))] + " " +
			byLen[tr[1]][rng.Intn(len(byLen[tr[1]]))] + " " +
			byLen[tr[2]][rng.Intn(len(byLen[tr[2]]))]
		if seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, Entry{Text: t, Score: uint16(rng.Intn(1 << 16))})
	}
	return out
}
