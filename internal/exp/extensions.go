package exp

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/cost"
	"caram/internal/hash"
	"caram/internal/iproute"
	"caram/internal/match"
	"caram/internal/workload"
)

// Extension experiments: the paper's forward-looking claims and
// related-work comparisons, built on the same substrates.

func init() {
	Experiments = append(Experiments,
		Experiment{"ipv6", "§4.1 projection: IPv6 quadruples the table; CA-RAM vs TCAM capacity", runIPv6},
		Experiment{"lowpower", "§5.2: per-search cell activity — flat TCAM vs CoolCAM banks vs CA-RAM", runLowPower},
		Experiment{"matchp", "ablation: match-processor count P vs pipelined passes and area", runMatchP},
	)
}

// --- IPv6 scaling (§4.1) ---

func runIPv6(sc Scale) (string, error) {
	// Scale the projected 4x table with the same drop as the v4 runs,
	// shrinking the designs identically so alpha is scale-invariant.
	n := 4 * iproute.PaperTableSize >> uint(sc.IPDrop)
	table := iproute.Generate6(n, sc.Seed)
	t := &Table{
		Title: "IPv6 projection: 64-bit ternary keys, table 4x the v4 size (scaled)",
		Header: []string{"Design", "R", "keys/bkt", "alpha", "Ovf bkts", "Spilled",
			"AMALu", "dup"},
	}
	// Two geometries at the paper's preferred load factors (~.36, ~.24).
	designs := []iproute.Design6{
		{Name: "C6", R: 13 - sc.IPDrop, KeysPerRow: 32, Slices: 8},
		{Name: "E6", R: 13 - sc.IPDrop, KeysPerRow: 32, Slices: 12},
	}
	var lastAlpha float64
	for _, d := range designs {
		ev, err := iproute.Evaluate6(table, d)
		if err != nil {
			return "", err
		}
		t.AddRow(d.Name, d.R, d.KeysPerRow*d.Slices, f2(ev.LoadFactor),
			pct(ev.OverflowingPct), pct(ev.SpilledPct), f3(ev.AMALu), pct(ev.DupPct))
		lastAlpha = ev.LoadFactor
	}
	// Area at full projected scale: TCAM must hold 4x entries of 64
	// symbols each; CA-RAM the E6 geometry at full scale (R=13), with
	// the same load-factor accounting Figure 8 uses.
	fullEntries := 4.0 * float64(iproute.PaperTableSize) * 1.02 // + duplication
	tcamArea := cost.TCAMAreaMM2(fullEntries * 64)
	fullCapacityBits := 12.0 * float64(int(1)<<13) * 32 * 128
	caramArea := cost.CARAMLoadAdjustedAreaMM2(fullCapacityBits, lastAlpha)
	t.Note("full-scale area projection: TCAM %.0f mm^2 vs CA-RAM %.0f mm^2 (%.0f%% saving)",
		tcamArea, caramArea, 100*(1-caramArea/tcamArea))
	t.Note("the paper's §4.1 motivation: associative capacity is where TCAM scaling breaks first")
	return t.Render(), nil
}

// --- Low-power CAM schemes (§5.2) ---

func runLowPower(sc Scale) (string, error) {
	const keyBits = 32
	rng := workload.NewRand(sc.Seed)
	entries := make([]match.Record, 4096)
	for i := range entries {
		entries[i] = match.Record{
			Key:  bitutil.Exact(bitutil.FromUint64(uint64(rng.Uint32()))),
			Data: bitutil.FromUint64(uint64(i)),
		}
	}

	flat := cam.MustNew(cam.Config{Entries: len(entries), KeyBits: keyBits, Kind: cam.Ternary})
	// Real partitioned TCAMs need slack over a perfect split, since the
	// selector does not balance banks exactly; 30% here.
	slack := func(banks int) int { return len(entries) * 13 / (10 * banks) }
	banked4, err := cam.NewBanked(slack(4), keyBits, cam.Ternary, hash.NewBitSelect([]int{30, 31}))
	if err != nil {
		return "", err
	}
	banked8, err := cam.NewBanked(slack(8), keyBits, cam.Ternary, hash.NewBitSelect([]int{29, 30, 31}))
	if err != nil {
		return "", err
	}
	pre, err := cam.NewPrecomputed(keyBits)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		if err := flat.Append(e); err != nil {
			return "", err
		}
		if err := banked4.Insert(e, 0); err != nil {
			return "", err
		}
		if err := banked8.Insert(e, 0); err != nil {
			return "", err
		}
		if err := pre.Insert(e); err != nil {
			return "", err
		}
	}

	const searches = 2000
	for i := 0; i < searches; i++ {
		k := entries[rng.Intn(len(entries))].Key
		if !flat.Search(k).Found || !banked4.Search(k).Found ||
			!banked8.Search(k).Found || !pre.Search(k.Value).Found {
			return "", fmt.Errorf("lowpower: schemes disagree")
		}
	}

	t := &Table{
		Title:  "Low-power schemes: storage cells activated per search (4096 entries x 32b)",
		Header: []string{"Scheme", "cells/search", "vs flat TCAM"},
	}
	flatCells := float64(flat.Stats().CellsActivated) / searches
	row := func(name string, cells float64) {
		t.AddRow(name, fmt.Sprintf("%.0f", cells), fmt.Sprintf("%.1f%%", 100*cells/flatCells))
	}
	row("flat TCAM", flatCells)
	row("CoolCAM, 4 banks", float64(banked4.Stats().CellsActivated)/searches)
	row("CoolCAM, 8 banks", float64(banked8.Stats().CellsActivated)/searches)
	row("precomputation CAM (binary)", float64(pre.Stats().CellsActivated)/searches)
	// CA-RAM: one bucket row of, say, 8 keys: 8*keyBits "cells" matched.
	row("CA-RAM (8-key bucket)", 8*keyBits)
	t.Note("paper §5.2: four partitions ideally cut power 75%%; 'In CA-RAM, even better, a memory access is made on a single row'")
	return t.Render(), nil
}

// --- Match-processor count ablation ---

func runMatchP(Scale) (string, error) {
	t := &Table{
		Title:  "Match-processor count P (C=1600, 64-bit keys, S=24 slots): passes vs area",
		Header: []string{"P", "pipelined passes", "relative match area"},
	}
	layout := match.Layout{RowBits: 1600, KeyBits: 64, AuxBits: 0}
	s := layout.Slots()
	for _, p := range []int{1, 4, 8, 16, s} {
		proc := match.NewProcessor(layout, p)
		row := make([]uint64, bitutil.RowWords(1600))
		res := proc.Search(row, bitutil.Exact(bitutil.Vec128{}))
		// Match-stage logic scales with the processors instantiated;
		// expand/decode/extract are row-wide either way.
		t.AddRow(p, res.Passes, fmt.Sprintf("%.2f", float64(p)/float64(s)))
	}
	t.Note("P = S gives the paper's single-step matching; smaller P trades latency (passes) for area")
	return t.Render(), nil
}
