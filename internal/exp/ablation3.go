package exp

import (
	"fmt"

	"caram/internal/iproute"
	"caram/internal/trigram"
	"caram/internal/workload"
)

func init() {
	Experiments = append(Experiments,
		Experiment{"partition", "§4.2 completed: the full Sphinx-like DB partitioned by length over engines", runPartition},
		Experiment{"amaltrace", "validation: analytic AMAL vs trace-driven LPM lookups", runAMALTrace},
	)
}

// --- Full partitioned database (§4.2) ---

func runPartition(sc Scale) (string, error) {
	// The full database is 13,459,881 entries; the paper's partition is
	// 40% of it. Scale the whole thing with the trigram drop.
	total := 13459881 >> uint(sc.TrigramDrop+2)
	dbs := trigram.GeneratePartitioned(total, sc.Seed, trigram.SphinxPartitions)
	p, err := trigram.BuildPartitioned(dbs, trigram.SphinxPartitions, 0.7)
	if err != nil {
		return "", err
	}
	// Query a sample from every partition through the router.
	rng := workload.NewRand(sc.Seed + 5)
	queries, rows := 0, 0
	for _, part := range trigram.SphinxPartitions {
		db := dbs[part.Name]
		for i := 0; i < 500 && i < len(db); i++ {
			e := db[rng.Intn(len(db))]
			_, r, ok := p.Lookup(e.Text)
			if !ok {
				return "", fmt.Errorf("partition %s lost entry %q", part.Name, e.Text)
			}
			queries++
			rows += r
		}
	}
	t := &Table{
		Title:  "Partitioned database (§4.2): every length class on its own engine",
		Header: []string{"Partition", "lengths", "entries", "alpha", "AMAL"},
	}
	stats := p.Stats()
	for _, part := range trigram.SphinxPartitions {
		st := stats[part.Name]
		t.AddRow(part.Name, fmt.Sprintf("%d-%d", part.MinLen, part.MaxLen),
			int(st[0]), f2(st[1]), f3(st[2]))
	}
	t.AddRow("(all)", "", total, "", f3(float64(rows)/float64(queries)))
	t.Note("%s; the paper maps only the 13-16 partition (40%% of the DB); here the input", sc.Label())
	t.Note("controller routes each query by length, so the WHOLE database answers in ~1 access")
	if p.KeyCollisions > 0 {
		t.Note("xlong head+digest key collisions: %d", p.KeyCollisions)
	}
	return t.Render(), nil
}

// --- Analytic vs trace-driven AMAL ---

func runAMALTrace(sc Scale) (string, error) {
	table := iproute.Generate(iproute.GenConfig{Prefixes: sc.IPPrefixes(), Seed: sc.Seed})
	t := &Table{
		Title:  "AMAL accounting: analytic placement cost vs trace-driven LPM scans",
		Header: []string{"Design", "analytic AMALu", "trace AMAL", "note"},
	}
	rng := workload.NewRand(sc.Seed + 3)
	for _, d := range []iproute.Design{iproute.Table2Designs[2], iproute.Table2Designs[3]} {
		sd := scaledIPDesign(d, sc.IPDrop)
		ev, err := iproute.Evaluate(table, sd, sc.Seed)
		if err != nil {
			return "", err
		}
		ev.Slice.ResetStats()
		for i := 0; i < 5000; i++ {
			p := table[rng.Intn(len(table))]
			addr := p.Addr
			if p.Len < 32 {
				addr |= rng.Uint32() & (1<<uint(32-p.Len) - 1)
			}
			if _, _, ok := iproute.LPMLookup(ev.Slice, addr); !ok {
				return "", fmt.Errorf("amaltrace: lost prefix")
			}
		}
		trace := ev.Slice.Stats().AMAL()
		t.AddRow(d.Name, f3(ev.AMALu), f3(trace),
			"trace scans the full bucket reach (LPM cannot early-exit)")
	}
	t.Note("%s", sc.Label())
	t.Note("the analytic metric (the paper's) charges 1+displacement of the target; a live LPM")
	t.Note("search must also examine every bucket within the home reach, so trace >= analytic")
	return t.Render(), nil
}
