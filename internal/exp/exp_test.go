package exp

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bbbb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("long-cell", "x")
	tab.Note("note %d", 7)
	out := tab.Render()
	for _, want := range []string{"== T ==", "a", "bbbb", "2.500", "long-cell", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScale(t *testing.T) {
	if DefaultScale().IPPrefixes() != 186760>>4 {
		t.Error("default IP scale wrong")
	}
	if FullScale().Label() != "full paper scale" {
		t.Error("full-scale label wrong")
	}
	if !strings.Contains(DefaultScale().Label(), "scaled") {
		t.Error("scaled label wrong")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", DefaultScale()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFastExperiments(t *testing.T) {
	// The analytic experiments run instantly and must mention their
	// paper anchor values.
	checks := map[string][]string{
		"table1": {"Expand search key", "15992", "4.85"},
		"fig6a":  {"16T SRAM TCAM", "12.0x", "4.8x"},
		"fig6b":  {"6T dynamic TCAM", "CA-RAM"},
		"fig8":   {"IP lookup", "trigram", "area saving"},
	}
	for name, wants := range checks {
		out, err := Run(name, DefaultScale())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", name, w, out)
			}
		}
	}
}

func TestWorkloadExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-building experiments in -short mode")
	}
	sc := Scale{IPDrop: 6, TrigramDrop: 8, Seed: 1} // extra small for test speed
	for _, name := range []string{"table2", "table3", "fig7", "bandwidth", "overflow",
		"hashes", "software", "ipv6", "lowpower", "matchp", "pktclass", "svm", "probelimit",
		"partition", "amaltrace", "updates", "energy", "zane"} {
		out, err := Run(name, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
		if !strings.Contains(out, "==") {
			t.Errorf("%s output has no table header", name)
		}
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
}
