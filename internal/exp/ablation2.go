package exp

import (
	"fmt"

	"caram/internal/pktclass"
	"caram/internal/trigram"
)

func init() {
	Experiments = append(Experiments,
		Experiment{"pktclass", "packet classification: ACL on TCAM vs CA-RAM + overflow engine", runPktClass},
		Experiment{"svm", "§2.1 trade-off: S vs M at fixed capacity (trigram workload)", runSvsM},
		Experiment{"probelimit", "probe-limit sensitivity: bounded probing vs unplaced records", runProbeLimit},
	)
}

// --- Packet classification ---

func runPktClass(sc Scale) (string, error) {
	nRules := 4000 >> uint(sc.IPDrop/2)
	rules := pktclass.GenerateRules(pktclass.GenRulesConfig{Rules: nRules, Seed: sc.Seed})
	expanded := 0
	for _, r := range rules {
		expanded += r.ExpansionFactor()
	}

	tcam, err := pktclass.NewTCAMClassifier(rules, 0)
	if err != nil {
		return "", err
	}
	cc, err := pktclass.NewCARAMClassifier(rules, pktclass.CARAMConfig{IndexBits: 9, Slots: 64})
	if err != nil {
		return "", err
	}
	trace := pktclass.GenerateTrace(rules, 10000, 0.25, sc.Seed+1)
	rows := 0
	for _, p := range trace {
		want := pktclass.Oracle(rules, p)
		a := tcam.Classify(p)
		b := cc.Classify(p)
		if a.Matched != want.Matched || b.Matched != want.Matched ||
			(want.Matched && (a.Priority != want.Priority || b.Priority != want.Priority)) {
			return "", fmt.Errorf("pktclass: engines disagree with the oracle")
		}
		rows += b.RowsRead
	}
	main, ovfl := cc.Entries()
	t := &Table{
		Title:  "Packet classification: one ACL on both engines, verified against a linear oracle",
		Header: []string{"Quantity", "value"},
	}
	t.AddRow("rules", nRules)
	t.AddRow("ternary entries after range expansion", expanded)
	t.AddRow("TCAM entries", tcam.Entries())
	t.AddRow("CA-RAM entries (hashed array)", main)
	t.AddRow("overflow TCAM entries", fmt.Sprintf("%d (%.1f%%)", ovfl, 100*float64(ovfl)/float64(main+ovfl)))
	t.AddRow("CA-RAM row accesses per packet", f3(float64(rows)/float64(len(trace))))
	st := tcam.Stats()
	t.AddRow("TCAM cells activated per search", st.CellsActivated/st.Searches)
	t.Note("every packet classified identically by TCAM, CA-RAM engine, and the oracle")
	t.Note("wildcard-heavy rules and hot buckets live in the small parallel overflow TCAM (§4.3)")
	return t.Render(), nil
}

// --- S vs M at fixed capacity (§2.1) ---

func runSvsM(sc Scale) (string, error) {
	db := trigramDB(sc)
	t := &Table{
		Title:  "S vs M at fixed capacity M*S (trigram workload, alpha held at the design-A level)",
		Header: []string{"S (keys/bucket)", "M (buckets)", "Ovf bkts", "Spilled", "AMAL"},
	}
	// Design A's capacity, repartitioned: S in {24, 48, 96, 192, 384}.
	baseBuckets := trigram.Table3Designs[0].Buckets() >> uint(sc.TrigramDrop)
	baseSlots := trigram.Table3Designs[0].Slots() // 96
	for _, factor := range []int{-2, -1, 0, 1, 2} {
		s := baseSlots
		m := baseBuckets
		switch {
		case factor < 0:
			s >>= uint(-factor)
			m <<= uint(-factor)
		case factor > 0:
			s <<= uint(factor)
			m >>= uint(factor)
		}
		ev, err := evaluateTrigramGeometry(db, m, s)
		if err != nil {
			return "", err
		}
		t.AddRow(s, m, pct(ev.OverflowingPct), pct(ev.SpilledPct), f3(ev.AMAL))
	}
	t.Note("%s", sc.Label())
	t.Note("§2.1: \"when (MxS) is fixed, one can potentially reduce the number of collisions by increasing S\"")
	return t.Render(), nil
}

// evaluateTrigramGeometry builds a custom (M, S) trigram table reusing
// the trigram package's vertical-design plumbing: a design with R such
// that slices<<R = m.
func evaluateTrigramGeometry(db []trigram.Entry, m, s int) (*trigram.Evaluation, error) {
	// Express m as slices * 2^R with slices in 1..15.
	r := 0
	for 1<<uint(r+1) <= m {
		r++
	}
	slices := m >> uint(r)
	for slices<<uint(r) != m && r > 0 {
		r--
		slices = m >> uint(r)
	}
	d := trigram.Design{Name: fmt.Sprintf("S%d", s), R: r, Slices: slices, Arr: trigram.Vertical}
	return trigram.EvaluateGeometry(db, d, s)
}

// --- Probe-limit sensitivity ---

func runProbeLimit(sc Scale) (string, error) {
	db := trigramDB(sc)
	d := scaledTriDesign(trigram.Table3Designs[0], sc.TrigramDrop)
	t := &Table{
		Title:  "Probe-limit sensitivity (trigram design A): bounded probing vs unplaced records",
		Header: []string{"Probe limit", "Spilled", "AMAL", "unplaced"},
	}
	for _, limit := range []int{-1, 1, 2, 4, 0} { // -1 = none, 0 = unlimited
		ev, err := trigram.EvaluateWithProbeLimit(db, d, limit)
		if err != nil {
			return "", err
		}
		label := fmt.Sprintf("%d", limit)
		if limit == -1 {
			label = "none"
		}
		if limit == 0 {
			label = "unlimited"
		}
		t.AddRow(label, pct(ev.SpilledPct), f3(ev.AMAL), ev.Unplaced)
	}
	t.Note("%s", sc.Label())
	t.Note("no probing leaves records homeless (they need an overflow area); a couple of probes already place everything")
	return t.Render(), nil
}
