package exp

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/cost"
	"caram/internal/hash"
	"caram/internal/iproute"
	"caram/internal/match"
	"caram/internal/mem"
	"caram/internal/subsystem"
	"caram/internal/swsearch"
	"caram/internal/trigram"
	"caram/internal/workload"
)

// --- Bandwidth (§3.4) ---

func runBandwidth(sc Scale) (string, error) {
	t := &Table{
		Title: "Bandwidth: cycle-level simulation vs B = Nslice/nmem * fclk (DRAM, nmem=6, 200MHz)",
		Header: []string{"Banks", "simulated req/cy", "formula req/cy",
			"simulated Msps", "formula Msps", "error"},
	}
	rng := workload.NewRand(sc.Seed)
	for _, banks := range []int{1, 2, 4, 8, 16} {
		sl := caram.MustNew(caram.Config{
			IndexBits: 12,
			RowBits:   8*(1+32+16) + 8,
			KeyBits:   32,
			DataBits:  16,
			Tech:      mem.DRAM,
			Index:     hash.NewMultShift(12),
		})
		keys := make([]bitutil.Ternary, 20000)
		for i := range keys {
			keys[i] = bitutil.Exact(bitutil.FromUint64(uint64(rng.Uint32())))
		}
		e := &subsystem.Engine{Name: "bw", Main: sl, Banks: banks}
		res := e.Simulate(keys, subsystem.TrafficConfig{QueueDepth: 512}, 1)
		formula := cost.CARAMBandwidth(banks, 6, 1) // per cycle
		errPct := 100 * (res.ThroughputPerCy - formula) / formula
		t.AddRow(banks, fmt.Sprintf("%.4f", res.ThroughputPerCy), fmt.Sprintf("%.4f", formula),
			fmt.Sprintf("%.1f", res.ThroughputHz(200e6)/1e6),
			fmt.Sprintf("%.1f", cost.CARAMBandwidth(banks, 6, 200e6)/1e6),
			fmt.Sprintf("%+.1f%%", errPct))
	}
	t.Note("B_CAM = f_CAM = 143 Msps for the Figure 8 TCAM; 8 banks at 200MHz exceed it (266 Msps)")
	return t.Render(), nil
}

// --- §4.3 overflow-area ablation ---

func runOverflow(sc Scale) (string, error) {
	table := iproute.Generate(iproute.GenConfig{Prefixes: sc.IPPrefixes(), Seed: sc.Seed})
	t := &Table{
		Title: "§4.3 ablation: spilled entries per design; with a parallel overflow TCAM, AMAL = 1",
		Header: []string{"Design", "probing AMALu", "spilled records",
			"overflow entries", "engine AMAL", "ovfl capacity pressure"},
	}
	for _, d := range iproute.Table2Designs {
		sd := scaledIPDesign(d, sc.IPDrop)
		ev, err := iproute.Evaluate(table, sd, sc.Seed)
		if err != nil {
			return "", err
		}
		eng, stats, err := buildOverflowEngine(table, sd)
		if err != nil {
			return "", err
		}
		// Sample lookups: every record costs exactly one row access.
		amal := measureEngineAMAL(eng, table, 2000)
		pressure := fmt.Sprintf("%.2f%%", 100*float64(stats.ToOverflow)/float64(ev.Stored))
		t.AddRow(d.Name, f3(ev.AMALu), ev.Slice.Placement().SpilledRecords,
			stats.ToOverflow, f3(amal), pressure)
	}
	t.Note("%s", sc.Label())
	t.Note("paper: designs C and E need only 1,829 and 1,163 overflow entries; A and F need >6,000 and >21,000")
	return t.Render(), nil
}

// buildOverflowEngine rebuilds a design with probing disabled and a
// parallel overflow TCAM, as §4.3 proposes.
func buildOverflowEngine(table []iproute.Prefix, d iproute.Design) (*subsystem.Engine, *subsystem.EngineStats, error) {
	idxBits, err := d.IndexBits()
	if err != nil {
		return nil, nil, err
	}
	gen := hash.NewBitSelect(iproute.HashPositions(idxBits))
	slot := 1 + 32 + 32 + 8
	main, err := caram.New(caram.Config{
		IndexBits:       idxBits,
		RowBits:         d.Slots()*slot + 16,
		KeyBits:         32,
		DataBits:        8,
		Ternary:         true,
		AuxBits:         16,
		ProbeLimit:      caram.NoProbing,
		Index:           gen,
		AllowDuplicates: true,
	})
	if err != nil {
		return nil, nil, err
	}
	eng := &subsystem.Engine{
		Name:     "ip-" + d.Name,
		Main:     main,
		Overflow: cam.MustNew(cam.Config{Entries: len(table), KeyBits: 32, Kind: cam.Ternary}),
		Score:    func(r match.Record) int { return r.Key.Specificity(32) },
	}
	stats := &subsystem.EngineStats{}
	for _, p := range table {
		key := p.Key()
		rec := match.Record{Key: key, Data: bitutil.FromUint64(uint64(p.NextHop))}
		for _, home := range gen.TernaryIndices(key) {
			// Route through the main array at an explicit home; divert
			// to the TCAM when the bucket is full.
			if _, err := main.Place(home, rec); err == caram.ErrFull {
				if err := eng.Overflow.Insert(rec, p.Len); err != nil {
					return nil, nil, err
				}
				stats.ToOverflow++
			} else if err != nil {
				return nil, nil, err
			}
			stats.Inserted++
		}
	}
	return eng, stats, nil
}

// measureEngineAMAL samples LPM lookups over stored prefixes.
func measureEngineAMAL(e *subsystem.Engine, table []iproute.Prefix, samples int) float64 {
	rng := workload.NewRand(7)
	rows := 0
	for i := 0; i < samples; i++ {
		p := table[rng.Intn(len(table))]
		addr := p.Addr | uint32(rng.Uint32())&(1<<uint(32-p.Len)-1)
		if p.Len == 32 {
			addr = p.Addr
		}
		sr := e.Search(bitutil.Exact(bitutil.FromUint64(uint64(addr))))
		rows += sr.RowsRead
	}
	return float64(rows) / float64(samples)
}

// --- Hash-function ablation ---

func runHashAblation(sc Scale) (string, error) {
	t := &Table{
		Title:  "Ablation: index-generator choice (design C geometry, IP workload; design A, trigram workload)",
		Header: []string{"Workload", "Generator", "alpha", "Ovf bkts", "Spilled", "AMAL (analytic)"},
	}
	table := iproute.Generate(iproute.GenConfig{Prefixes: sc.IPPrefixes(), Seed: sc.Seed})
	d := scaledIPDesign(iproute.Table2Designs[2], sc.IPDrop)
	idxBits, _ := d.IndexBits()
	gens := []hash.IndexGenerator{
		hash.NewBitSelect(iproute.HashPositions(idxBits)),
		hash.NewMultShift(idxBits),
		hash.NewXorFold(idxBits, 32),
	}
	for _, g := range gens {
		ev, err := evaluateIPWithGenerator(table, d, g)
		if err != nil {
			return "", err
		}
		t.AddRow("IP lookup", g.Name(), f2(ev.alpha), pct(ev.ovfPct), pct(ev.spillPct), f3(ev.amal))
	}
	// Trigram: DJB (paper) vs multiply-shift vs xor-fold.
	db := trigramDB(sc)
	td := scaledTriDesign(trigram.Table3Designs[0], sc.TrigramDrop)
	ev, err := trigram.Evaluate(db, td)
	if err != nil {
		return "", err
	}
	t.AddRow("trigram", "djb (paper)", f2(ev.LoadFactor), pct(ev.OverflowingPct), pct(ev.SpilledPct), f3(ev.AMAL))
	t.Note("%s", sc.Label())
	t.Note("generic hashes cannot honor prefix don't-care bits, so the IP rows treat keys as exact — an upper bound on their quality")
	return t.Render(), nil
}

type ipGenResult struct {
	alpha, ovfPct, spillPct, amal float64
}

// evaluateIPWithGenerator places IP keys with an arbitrary generator
// (exact-key hashing; generic generators cannot expand don't-cares).
func evaluateIPWithGenerator(table []iproute.Prefix, d iproute.Design, g hash.IndexGenerator) (ipGenResult, error) {
	slot := 1 + 32 + 32 + 8
	idxBits, err := d.IndexBits()
	if err != nil {
		return ipGenResult{}, err
	}
	if g.Bits() != idxBits {
		return ipGenResult{}, fmt.Errorf("generator bits %d != %d", g.Bits(), idxBits)
	}
	slice, err := caram.New(caram.Config{
		IndexBits:       idxBits,
		RowBits:         d.Slots()*slot + 16,
		KeyBits:         32,
		DataBits:        8,
		Ternary:         true,
		AuxBits:         16,
		Index:           g,
		AllowDuplicates: true,
	})
	if err != nil {
		return ipGenResult{}, err
	}
	sum, n := 0.0, 0
	for _, p := range table {
		rec := match.Record{Key: p.Key(), Data: bitutil.FromUint64(uint64(p.NextHop))}
		disp, err := slice.Place(slice.Index(rec.Key.Value), rec)
		if err == caram.ErrFull {
			continue
		}
		if err != nil {
			return ipGenResult{}, err
		}
		sum += float64(1 + disp)
		n++
	}
	pl := slice.Placement()
	return ipGenResult{
		alpha:    float64(len(table)) / float64(d.Capacity()),
		ovfPct:   pl.OverflowingPct,
		spillPct: pl.SpilledPct,
		amal:     sum / float64(n),
	}, nil
}

// --- Software baseline comparison ---

func runSoftware(sc Scale) (string, error) {
	table := iproute.Generate(iproute.GenConfig{Prefixes: sc.IPPrefixes() / 4, Seed: sc.Seed})
	trie := swsearch.NewTrie(32)
	ptrie := swsearch.NewPathTrie(32)
	for _, p := range table {
		trie.Insert(uint64(p.Addr), p.Len, uint64(p.NextHop))
		ptrie.Insert(uint64(p.Addr), p.Len, uint64(p.NextHop))
	}
	d := scaledIPDesign(iproute.Table2Designs[4], sc.IPDrop+2) // design E geometry
	ev, err := iproute.Evaluate(table, d, sc.Seed)
	if err != nil {
		return "", err
	}
	rng := workload.NewRand(sc.Seed)
	const samples = 10000
	rows := 0
	for i := 0; i < samples; i++ {
		p := table[rng.Intn(len(table))]
		addr := p.Addr
		if p.Len < 32 {
			addr |= uint32(rng.Uint32()) & (1<<uint(32-p.Len) - 1)
		}
		trie.Lookup(uint64(addr))
		ptrie.Lookup(uint64(addr))
		hop, _, ok := iproute.LPMLookup(ev.Slice, addr)
		_ = hop
		if !ok {
			return "", fmt.Errorf("CA-RAM missed a stored prefix")
		}
	}
	rows = int(ev.Slice.Stats().RowsAccessed)
	t := &Table{
		Title:  "Software LPM baselines vs CA-RAM: memory accesses per lookup",
		Header: []string{"Structure", "accesses/lookup"},
	}
	t.AddRow("unibit trie", f2(trie.Counter().AMAL()))
	t.AddRow("path-compressed trie", f2(ptrie.Counter().AMAL()))
	t.AddRow("CA-RAM (design E geometry)", f2(float64(rows)/samples))
	t.Note("paper §4.1: software approaches need at least 4-6 memory accesses per packet; CA-RAM needs ~1")
	return t.Render(), nil
}
