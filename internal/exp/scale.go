package exp

import "caram/internal/iproute"

// Scale selects dataset sizes. The paper's full datasets (186,760
// prefixes; 5,385,231 trigrams) run in minutes; the default scale
// shrinks both the dataset and each design's row count by the same
// power of two, which preserves every load factor and therefore the
// statistics Tables 2 and 3 measure.
type Scale struct {
	// IPDrop halves the IP table and designs IPDrop times.
	IPDrop int
	// TrigramDrop halves the trigram database and designs TrigramDrop
	// times.
	TrigramDrop int
	// Seed drives all dataset synthesis.
	Seed int64
}

// DefaultScale runs in a few seconds.
func DefaultScale() Scale { return Scale{IPDrop: 4, TrigramDrop: 6, Seed: 1} }

// FullScale reproduces the paper's exact dataset sizes.
func FullScale() Scale { return Scale{Seed: 1} }

// IPPrefixes returns the scaled routing-table size.
func (s Scale) IPPrefixes() int { return iproute.PaperTableSize >> uint(s.IPDrop) }

// Label describes the scale in table notes.
func (s Scale) Label() string {
	if s.IPDrop == 0 && s.TrigramDrop == 0 {
		return "full paper scale"
	}
	return "scaled (same load factors as the paper; see -full)"
}
