package exp

import (
	"fmt"
	"strings"
	"sync"

	"caram/internal/cost"
	"caram/internal/iproute"
	"caram/internal/match"
	"caram/internal/trigram"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	Name string
	Desc string
	Run  func(Scale) (string, error)
}

// Experiments lists every experiment in paper order.
var Experiments = []Experiment{
	{"table1", "match-processor synthesis (cells/area/delay per stage)", runTable1},
	{"fig6a", "cell size comparison: TCAMs vs ternary DRAM CA-RAM", runFig6a},
	{"fig6b", "power comparison: TCAMs vs ternary DRAM CA-RAM", runFig6b},
	{"table2", "IP-lookup CA-RAM designs (alpha, overflow, AMAL)", runTable2},
	{"table3", "trigram-lookup CA-RAM designs (alpha, overflow, AMAL)", runTable3},
	{"fig7", "bucket-occupancy distribution, trigram design A", runFig7},
	{"fig8", "application-level area/power: TCAM/CAM vs CA-RAM", runFig8},
	{"bandwidth", "cycle-level banked bandwidth vs the B=Nslice/nmem*fclk formula", runBandwidth},
	{"overflow", "§4.3 ablation: parallel overflow area drives AMAL to 1", runOverflow},
	{"hashes", "ablation: index-generator choice on both workloads", runHashAblation},
	{"software", "software baselines: memory accesses per lookup vs CA-RAM", runSoftware},
}

// Run executes one experiment by name.
func Run(name string, sc Scale) (string, error) {
	for _, e := range Experiments {
		if e.Name == name {
			return e.Run(sc)
		}
	}
	return "", fmt.Errorf("exp: unknown experiment %q", name)
}

// RunAll executes every experiment, concatenating output.
func RunAll(sc Scale) (string, error) {
	var b strings.Builder
	for _, e := range Experiments {
		out, err := e.Run(sc)
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", e.Name, err)
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// --- Table 1 ---

func runTable1(Scale) (string, error) {
	s := match.Synthesize(1600, 8)
	t := &Table{
		Title:  "Table 1: match processor synthesis (C=1600, 0.16um)",
		Header: []string{"Step", "# cells", "Area um^2", "Delay ns", "hidden"},
	}
	for _, st := range s.Stages {
		hidden := ""
		if st.Hidden {
			hidden = "yes (overlapped with memory access)"
		}
		t.AddRow(st.Name, st.Cells, fmt.Sprintf("%.0f", st.AreaUm2), f2(st.DelayNs), hidden)
	}
	t.AddRow("Total", s.TotalCells(), fmt.Sprintf("%.0f", s.TotalAreaUm2()), f2(s.CriticalPathNs()), "")
	t.Note("paper totals: 15,992 cells, 100,564 um^2, 4.85 ns — reproduced exactly (calibration point)")
	t.Note("fits a single cycle at %v MHz: %v (paper: 'over 200MHz')", 200, s.FitsCycleMHz(200))
	t.Note("worst-case dynamic power at 6ns clock, 0.5 activity, 1.8V: %.1f mW (paper: 60.8 mW)",
		s.DynamicPowerMW(1e3/6, 0.5, 1.8))
	return t.Render(), nil
}

// --- Figure 6 ---

func runFig6a(Scale) (string, error) {
	comp := cost.Fig6Comparison(cost.Default, cost.DefaultFig6)
	t := &Table{
		Title:  "Figure 6(a): cell size of different schemes (130nm)",
		Header: []string{"Scheme", "cell um^2", "relative to CA-RAM"},
	}
	for _, c := range comp {
		t.AddRow(c.Name, f3(c.CellUm2), fmt.Sprintf("%.1fx", c.RelativeArea))
	}
	t.Note("paper: 16T SRAM TCAM over 12x, 6T dynamic TCAM 4.8x larger than ternary DRAM CA-RAM")
	return t.Render(), nil
}

func runFig6b(Scale) (string, error) {
	comp := cost.Fig6Comparison(cost.Default, cost.DefaultFig6)
	t := &Table{
		Title:  "Figure 6(b): power of different schemes (1Mi cells, 143MHz search rate)",
		Header: []string{"Scheme", "power (rel units)", "relative to CA-RAM"},
	}
	for _, c := range comp {
		t.AddRow(c.Name, fmt.Sprintf("%.3g", c.Power), fmt.Sprintf("%.1fx", c.RelativePower))
	}
	t.Note("paper: over 26x more power-efficient than 16T TCAM, over 7x than 6T TCAM")
	return t.Render(), nil
}

// --- Table 2 ---

// paperTable2 carries the published values for side-by-side reporting.
var paperTable2 = map[string][5]float64{ // alpha, ovf%, spill%, AMALu, AMALs
	"A": {0.47, 12.21, 15.82, 1.476, 1.425},
	"B": {0.40, 5.42, 5.50, 1.147, 1.125},
	"C": {0.36, 2.64, 1.35, 1.093, 1.082},
	"D": {0.36, 6.67, 8.03, 1.159, 1.126},
	"E": {0.24, 1.03, 0.72, 1.072, 1.068},
	"F": {0.36, 15.56, 29.63, 1.990, 1.875},
}

func scaledIPDesign(d iproute.Design, drop int) iproute.Design {
	d.R -= drop
	return d
}

func runTable2(sc Scale) (string, error) {
	table := iproute.Generate(iproute.GenConfig{Prefixes: sc.IPPrefixes(), Seed: sc.Seed})
	t := &Table{
		Title: "Table 2: CA-RAM designs for IP address lookup",
		Header: []string{"Design", "R", "C", "Slices", "Arrangement",
			"alpha", "Ovf bkts", "Spilled", "AMALu", "AMALs",
			"paper u", "paper s"},
	}
	var dupPct float64
	for _, d := range iproute.Table2Designs {
		ev, err := iproute.Evaluate(table, scaledIPDesign(d, sc.IPDrop), sc.Seed)
		if err != nil {
			return "", err
		}
		dupPct = ev.DupPct
		p := paperTable2[d.Name]
		t.AddRow(d.Name, d.R-sc.IPDrop, fmt.Sprintf("%dx64", d.KeysPerRow), d.Slices, d.Arr.String(),
			f2(ev.LoadFactor), pct(ev.OverflowingPct), pct(ev.SpilledPct),
			f3(ev.AMALu), f3(ev.AMALs), f3(p[3]), f3(p[4]))
	}
	t.Note("%s; %d prefixes (paper: 186,760)", sc.Label(), len(table))
	t.Note("don't-care duplication: %.2f%% (paper: 6.4%%)", dupPct)
	t.Note("paper alpha/overflow/spill: A .47/12.21/15.82 B .40/5.42/5.50 C .36/2.64/1.35 D .36/6.67/8.03 E .24/1.03/0.72 F .36/15.56/29.63")
	return t.Render(), nil
}

// --- Table 3 ---

var paperTable3 = map[string][4]float64{ // alpha, ovf%, spill%, AMAL
	"A": {0.86, 5.99, 0.34, 1.003},
	"B": {0.68, 0.02, 0.00, 1.000},
	"C": {0.86, 0.15, 0.00, 1.000},
	"D": {0.68, 0.00, 0.00, 1.000},
}

func scaledTriDesign(d trigram.Design, drop int) trigram.Design {
	d.R -= drop
	return d
}

// trigramDBCache memoizes the synthetic database per (drop, seed):
// several experiments share it, and the full-scale 5.4M-entry corpus
// takes a minute to synthesize.
var trigramDBCache struct {
	sync.Mutex
	drop int
	seed int64
	db   []trigram.Entry
}

func trigramDB(sc Scale) []trigram.Entry {
	c := &trigramDBCache
	c.Lock()
	defer c.Unlock()
	if c.db == nil || c.drop != sc.TrigramDrop || c.seed != sc.Seed {
		n := trigram.PaperEntries >> uint(sc.TrigramDrop)
		c.db = trigram.Generate(trigram.GenConfig{Entries: n, Seed: sc.Seed})
		c.drop, c.seed = sc.TrigramDrop, sc.Seed
	}
	return c.db
}

func runTable3(sc Scale) (string, error) {
	db := trigramDB(sc)
	t := &Table{
		Title: "Table 3: CA-RAM designs for trigram lookup",
		Header: []string{"Design", "R", "C", "Slices", "Arrangement",
			"alpha", "Ovf bkts", "Spilled", "AMAL", "paper AMAL"},
	}
	for _, d := range trigram.Table3Designs {
		ev, err := trigram.Evaluate(db, scaledTriDesign(d, sc.TrigramDrop))
		if err != nil {
			return "", err
		}
		p := paperTable3[d.Name]
		t.AddRow(d.Name, d.R-sc.TrigramDrop, "128x96", d.Slices, d.Arr.String(),
			f2(ev.LoadFactor), pct(ev.OverflowingPct), pct(ev.SpilledPct),
			f3(ev.AMAL), f3(p[3]))
	}
	t.Note("%s; %d entries (paper: 5,385,231)", sc.Label(), len(db))
	t.Note("paper alpha/overflow/spill: A .86/5.99/0.34 B .68/0.02/0.00 C .86/0.15/0.00 D .68/0.00/0.00")
	return t.Render(), nil
}

// --- Figure 7 ---

func runFig7(sc Scale) (string, error) {
	db := trigramDB(sc)
	ev, err := trigram.Evaluate(db, scaledTriDesign(trigram.Table3Designs[0], sc.TrigramDrop))
	if err != nil {
		return "", err
	}
	h := ev.OccupancyHistogram()
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure 7: records-per-bucket distribution, trigram design A ==\n")
	b.WriteString(h.Render(h.Min(), 2, 50))
	fmt.Fprintf(&b, "mean %.1f, stddev %.1f (paper: centered around 81)\n", h.Mean(), h.StdDev())
	over := float64(h.CountAbove(trigram.KeysPerSliceRow)) / float64(h.N())
	fmt.Fprintf(&b, "buckets beyond the 96-record bucket size: %.2f%% (paper: 5.99%% overflowing)\n", 100*over)
	return b.String(), nil
}

// --- Figure 8 ---

func runFig8(sc Scale) (string, error) {
	// The Figure 8 comparison is analytical at the paper's full-scale
	// parameters; the measured load factor and duplication come from
	// the scaled runs above and match the paper's by construction.
	ipDesign := iproute.Table2Designs[3] // design D
	triDesign := trigram.Table3Designs[0]

	storedPrefixes := 198795.0 // 186,760 + 6.44% duplicates
	ip := cost.Fig8(cost.Default, cost.Fig8Params{
		App:            "IP lookup (TCAM vs CA-RAM design D, 8 banks @200MHz)",
		BaselineKind:   cost.TCAM6T,
		BaselineCells:  storedPrefixes * 32,
		BaselineRateHz: 143e6,
		CapacityBits:   ipDesign.CapacityBits(),
		LoadFactor:     float64(iproute.PaperTableSize) / float64(ipDesign.Capacity()),
		BucketBits:     float64(ipDesign.Slots()) * 64,
		Slots:          float64(ipDesign.Slots()),
		CARAMRateHz:    143e6,
		ComparePower:   true,
	})
	tri := cost.Fig8(cost.Default, cost.Fig8Params{
		App:           "trigram lookup (CAM vs CA-RAM design A)",
		BaselineKind:  cost.CAMStacked,
		BaselineCells: float64(trigram.PaperEntries) * 128,
		CapacityBits:  triDesign.CapacityBits(),
		LoadFactor:    float64(trigram.PaperEntries) / float64(triDesign.Capacity()),
	})

	t := &Table{
		Title: "Figure 8: area and power, baseline vs CA-RAM (relative)",
		Header: []string{"Application", "Baseline", "base area mm^2", "CA-RAM area mm^2",
			"area saving", "power saving"},
	}
	t.AddRow(ip.App, ip.Baseline, f2(ip.BaselineAreaMM2), f2(ip.CARAMAreaMM2),
		pct(ip.AreaSavingPct), pct(ip.PowerSavingPct))
	t.AddRow(tri.App, tri.Baseline, f2(tri.BaselineAreaMM2), f2(tri.CARAMAreaMM2),
		fmt.Sprintf("%.1fx smaller", 1/tri.AreaRatio), "(not compared)")
	t.Note("paper: IP lookup 45%% area reduction, 70%% power saving; trigram 5.9x area reduction")
	t.Note("power for the 1992 stacked-capacitor CAM is not compared, following the paper")
	return t.Render(), nil
}
