package exp

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/cost"
	"caram/internal/hash"
	"caram/internal/iproute"
	"caram/internal/match"
	"caram/internal/trigram"
	"caram/internal/workload"
)

func init() {
	Experiments = append(Experiments,
		Experiment{"updates", "BGP churn: per-update cost, CA-RAM row writes vs TCAM entry moves", runUpdates},
		Experiment{"energy", "measured workload energy via the §3.4 model, CA-RAM vs TCAM", runEnergy},
	)
}

// --- Route-update churn (§5's TCAM-update problem) ---

func runUpdates(sc Scale) (string, error) {
	table := iproute.Generate(iproute.GenConfig{Prefixes: sc.IPPrefixes() / 2, Seed: sc.Seed})
	// CA-RAM design C, scaled, holding the table.
	d := scaledIPDesign(iproute.Table2Designs[2], sc.IPDrop+1)
	ev, err := iproute.Evaluate(table, d, sc.Seed)
	if err != nil {
		return "", err
	}
	slice := ev.Slice
	idxBits, err := d.IndexBits()
	if err != nil {
		return "", err
	}
	gen := hash.NewBitSelect(iproute.HashPositions(idxBits))

	// Churn volume: bounded by the table so repeated withdrawals of the
	// same prefix stay rare.
	churn := 2000
	if max := len(table) / 2; churn > max {
		churn = max
	}
	// TCAM with prefix-length-ordered priorities (Shah-Gupta style
	// maintenance), with slack for the churn's net growth (withdrawing
	// an already-withdrawn prefix is a no-op, announcing is not).
	dev := cam.MustNew(cam.Config{
		Entries: ev.Stored + churn + 16,
		KeyBits: 32,
		Kind:    cam.Ternary,
	})
	for _, p := range table {
		rec := match.Record{Key: p.Key(), Data: bitutil.FromUint64(uint64(p.NextHop))}
		if err := dev.Insert(rec, p.Len); err != nil {
			return "", err
		}
	}

	// Churn: withdraw a random prefix, announce a fresh one, repeatedly.
	rng := workload.NewRand(sc.Seed + 9)
	fresh := iproute.Generate(iproute.GenConfig{Prefixes: 4000, Seed: sc.Seed + 777})
	arrayBefore := slice.Array().Stats()
	camBefore := dev.Stats()
	applied := 0
	for i := 0; i < churn; i++ {
		old := table[rng.Intn(len(table))]
		neu := fresh[i%len(fresh)]
		// CA-RAM: delete every duplicated copy, insert the new ones.
		oldKey := old.Key()
		for _, home := range gen.TernaryIndices(oldKey) {
			_ = slice.DeleteAt(home, oldKey) // may already be gone from a prior withdraw
		}
		neuKey := neu.Key()
		rec := match.Record{Key: neuKey, Data: bitutil.FromUint64(uint64(neu.NextHop))}
		for _, home := range gen.TernaryIndices(neuKey) {
			if _, err := slice.Place(home, rec); err != nil && err != caram.ErrFull {
				return "", err
			}
		}
		// TCAM: delete + ordered insert.
		_ = dev.Delete(oldKey)
		if err := dev.Insert(rec, neu.Len); err != nil {
			return "", fmt.Errorf("updates: TCAM churn: %w", err)
		}
		applied++
	}
	arrayAfter := slice.Array().Stats()
	camAfter := dev.Stats()

	t := &Table{
		Title:  "Route-update churn: per-update maintenance cost (withdraw + announce)",
		Header: []string{"Engine", "row writes/update", "row reads/update", "entry moves/update"},
	}
	writes := float64(arrayAfter.RowWrites-arrayBefore.RowWrites) / float64(churn)
	reads := float64(arrayAfter.RowReads-arrayBefore.RowReads) / float64(churn)
	t.AddRow("CA-RAM (design C)", f2(writes), f2(reads), "n/a (in-place)")
	moves := float64(camAfter.InsertMoves-camBefore.InsertMoves+
		camAfter.DeleteMoves-camBefore.DeleteMoves) / float64(churn)
	t.AddRow("TCAM (length-ordered)", "2.00", "n/a", f2(moves))
	t.Note("%s; %d updates applied", sc.Label(), applied)
	t.Note("CA-RAM updates are in-place row read-modify-writes; ordered TCAMs relocate up to one entry per priority group (§5, Shah-Gupta)")
	return t.Render(), nil
}

// --- Measured workload energy ---

func runEnergy(sc Scale) (string, error) {
	db := trigramDB(sc)
	d := scaledTriDesign(trigram.Table3Designs[0], sc.TrigramDrop)
	ev, err := trigram.Evaluate(db, d)
	if err != nil {
		return "", err
	}
	ev.Slice.ResetStats()
	rng := workload.NewRand(sc.Seed + 2)
	const lookups = 20000
	for i := 0; i < lookups; i++ {
		e := db[rng.Intn(len(db))]
		if _, _, ok := trigram.Lookup(ev.Slice, e.Text); !ok {
			return "", fmt.Errorf("energy: entry lost")
		}
	}
	// Energy from the cost model driven by MEASURED row counts: each
	// row access fetches and matches RowBits bits over Slots keys.
	m := cost.Default
	cfgRows := float64(ev.Slice.Stats().RowsAccessed)
	rowBits := float64(ev.Slice.Config().RowBits)
	slots := float64(ev.Slice.Config().Slots())
	perSearch := m.Hash + rowBits*(m.MemBit+m.MatchBit) + slots*m.EncoderSlot
	caramEnergy := perSearch * cfgRows / lookups

	// A CAM holding the same database activates every cell per search.
	camCells := float64(len(db)) * 128
	camEnergy := camCells * m.TCAMCell[cost.CAMStacked]

	t := &Table{
		Title:  "Measured workload energy (trigram design A lookups, relative units/search)",
		Header: []string{"Engine", "energy/search", "vs CA-RAM"},
	}
	t.AddRow("CA-RAM (measured rows)", fmt.Sprintf("%.3g", caramEnergy), "1.0x")
	t.AddRow("binary CAM (same DB)", fmt.Sprintf("%.3g", camEnergy),
		fmt.Sprintf("%.0fx", camEnergy/caramEnergy))
	t.Note("%s; %d lookups, measured AMAL %.4f", sc.Label(), lookups, cfgRows/lookups)
	t.Note("the CAM figure excludes the paper's Figure 6(b) background/periphery terms; this is the raw O(w*n) match activity")
	return t.Render(), nil
}
