package exp

import (
	"fmt"
	"sort"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/iproute"
	"caram/internal/match"
)

func init() {
	Experiments = append(Experiments,
		Experiment{"zane", "§4.1 claim check: greedy hash-bit selection vs the fixed last-R-bits choice", runZane},
	)
}

// runZane reruns the paper's hash-bit search: "we apply the algorithm
// in [32] to find the best set of R bits which distributes the
// prefixes most evenly... we determined that choosing the last R bits
// in the first 16 bits results in the best outcome." We run the greedy
// chooser over our synthetic table and compare the resulting placement
// against the fixed choice.
func runZane(sc Scale) (string, error) {
	table := iproute.Generate(iproute.GenConfig{Prefixes: sc.IPPrefixes(), Seed: sc.Seed})
	d := scaledIPDesign(iproute.Table2Designs[2], sc.IPDrop) // design C geometry
	idxBits, err := d.IndexBits()
	if err != nil {
		return "", err
	}

	candidates := make([]int, 0, 16) // the first 16 address bits
	for b := 16; b < 32; b++ {
		candidates = append(candidates, b)
	}
	keys := make([]bitutil.Ternary, 0, len(table))
	for _, p := range table {
		keys = append(keys, p.Key())
	}
	chosen := hash.SelectBits(keys, candidates, idxBits)
	fixed := iproute.HashPositions(idxBits)

	t := &Table{
		Title:  "Hash-bit selection (Zane et al. greedy) vs the paper's fixed choice (design C geometry)",
		Header: []string{"Positions", "Ovf bkts", "Spilled", "AMAL (analytic)"},
	}
	for _, row := range []struct {
		name string
		pos  []int
	}{
		{fmt.Sprintf("greedy %v", chosen), chosen},
		{fmt.Sprintf("fixed  %v", fixed), fixed},
	} {
		ev, err := evaluateIPWithPositions(table, d, row.pos)
		if err != nil {
			return "", err
		}
		t.AddRow(row.name, pct(ev.ovfPct), pct(ev.spillPct), f3(ev.amal))
	}
	overlap := intersect(chosen, fixed)
	t.Note("%s; greedy and fixed share %d of %d positions", sc.Label(), overlap, idxBits)
	t.Note("paper: the greedy search converged on the last R bits of the first 16; closeness here validates the synthetic table's clustering structure")
	return t.Render(), nil
}

func intersect(a, b []int) int {
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, x := range b {
		if set[x] {
			n++
		}
	}
	return n
}

// evaluateIPWithPositions places the table with explicit bit-selection
// positions, honoring don't-care duplication (unlike the generic-hash
// ablation, which cannot).
func evaluateIPWithPositions(table []iproute.Prefix, d iproute.Design, pos []int) (ipGenResult, error) {
	gen := hash.NewBitSelect(pos)
	idxBits := len(pos)
	slot := 1 + 32 + 32 + 8
	slice, err := caram.New(caram.Config{
		IndexBits:       idxBits,
		RowBits:         d.Slots()*slot + 16,
		KeyBits:         32,
		DataBits:        8,
		Ternary:         true,
		AuxBits:         16,
		Index:           gen,
		AllowDuplicates: true,
	})
	if err != nil {
		return ipGenResult{}, err
	}
	ordered := append([]iproute.Prefix(nil), table...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Len > ordered[j].Len })
	sum, n := 0.0, 0
	for _, p := range ordered {
		key := p.Key()
		rec := match.Record{Key: key, Data: bitutil.FromUint64(uint64(p.NextHop))}
		for _, home := range gen.TernaryIndices(key) {
			disp, err := slice.Place(home, rec)
			if err == caram.ErrFull {
				continue
			}
			if err != nil {
				return ipGenResult{}, err
			}
			sum += float64(1 + disp)
			n++
		}
	}
	pl := slice.Placement()
	return ipGenResult{
		alpha:    float64(len(table)) / float64(d.Capacity()),
		ovfPct:   pl.OverflowingPct,
		spillPct: pl.SpilledPct,
		amal:     sum / float64(n),
	}, nil
}
