// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation, rendering measured values next
// to the paper's published ones. cmd/caram-bench and the repository
// benchmarks are thin wrappers around this package.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render draws the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a percentage with two decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// f2 formats with two decimals; f3 with three.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
