package fault

import (
	"math/bits"
	"testing"

	"caram/internal/mem"
)

func popcount(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}

// TestInjectorDeterministic: two injectors with the same seed produce
// the identical fault sequence over the identical fetch stream.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, PSingle: 0.2, PDouble: 0.1, PReadErr: 0.1, PSpike: 0.1}
	mk := func() (*mem.Array, *Injector) {
		a := mem.MustNew(mem.Config{Rows: 16, RowBits: 256})
		in := New(cfg)
		a.InstallFaults(in)
		in.Enable()
		return a, in
	}
	a1, in1 := mk()
	a2, in2 := mk()
	for i := 0; i < 2000; i++ {
		idx := uint32(i % 16)
		r1, ok1 := a1.FetchRow(idx)
		r2, ok2 := a2.FetchRow(idx)
		if ok1 != ok2 {
			t.Fatalf("fetch %d: ok diverged (%v vs %v)", i, ok1, ok2)
		}
		for w := range r1 {
			if r1[w] != r2[w] {
				t.Fatalf("fetch %d: row contents diverged at word %d", i, w)
			}
		}
	}
	if in1.Counts() != in2.Counts() {
		t.Fatalf("counts diverged:\n%+v\n%+v", in1.Counts(), in2.Counts())
	}
}

// TestInjectorLedgerMatchesDamage: BitsFlipped equals the popcount
// delta actually observed in storage (all-zero array, flips only).
func TestInjectorLedgerMatchesDamage(t *testing.T) {
	a := mem.MustNew(mem.Config{Rows: 8, RowBits: 192})
	in := New(Config{Seed: 7, PSingle: 0.3, PDouble: 0.15})
	a.InstallFaults(in)
	in.Enable()
	for i := 0; i < 4000; i++ {
		a.FetchRow(uint32(i % 8))
	}
	in.Disable()
	// Flips toggle bits, so storage popcount parity/totals cannot be
	// compared directly against BitsFlipped (a bit flipped twice is
	// clean again). Instead check the ledger's internal consistency.
	c := in.Counts()
	if c.BitsFlipped != c.SingleFlips+2*c.DoubleFlips+c.StuckAsserts {
		t.Fatalf("ledger inconsistent: %+v", c)
	}
	if c.SingleFlips == 0 || c.DoubleFlips == 0 {
		t.Fatalf("expected both fault kinds at these rates: %+v", c)
	}
	if c.Fetches != 4000 {
		t.Fatalf("fetches = %d, want 4000", c.Fetches)
	}
}

// TestInjectorAtMostOneEventPerFetch: on an all-zero array a fetch
// changes storage by at most 2 bits (one double flip), and a stuck
// cell assertion suppresses the random draw.
func TestInjectorAtMostOneEventPerFetch(t *testing.T) {
	a := mem.MustNew(mem.Config{Rows: 4, RowBits: 128})
	in := New(Config{
		Seed: 3, PSingle: 0.5, PDouble: 0.5, // every draw would flip
		Stuck: []StuckCell{{Row: 1, Word: 0, Bit: 5, Value: 1}},
	})
	a.InstallFaults(in)
	in.Enable()
	for i := 0; i < 500; i++ {
		idx := uint32(i % 4)
		before := popcount(a.PeekRow(idx))
		a.FetchRow(idx)
		after := popcount(a.PeekRow(idx))
		if d := after - before; d < -2 || d > 2 {
			t.Fatalf("fetch %d changed %d bits, want at most 2", i, d)
		}
		// Repair so the next fetch starts clean and the stuck cell on
		// row 1 asserts every time.
		row := a.PeekRow(idx)
		for w := range row {
			row[w] = 0
		}
	}
	c := in.Counts()
	// Row 1 is fetched 125 times; the stuck bit was zeroed before each
	// fetch, so it asserts every time and suppresses the random fault.
	if c.StuckAsserts != 125 {
		t.Fatalf("stuck asserts = %d, want 125", c.StuckAsserts)
	}
	if c.BitsFlipped != c.SingleFlips+2*c.DoubleFlips+c.StuckAsserts {
		t.Fatalf("ledger inconsistent: %+v", c)
	}
}

// TestInjectorDisabledIsTransparent: a disabled injector neither
// mutates rows nor counts fetches.
func TestInjectorDisabledIsTransparent(t *testing.T) {
	a := mem.MustNew(mem.Config{Rows: 2, RowBits: 128})
	in := New(Config{Seed: 1, PSingle: 1})
	a.InstallFaults(in)
	for i := 0; i < 100; i++ {
		row, ok := a.FetchRow(uint32(i % 2))
		if !ok {
			t.Fatal("disabled injector failed a fetch")
		}
		if popcount(row) != 0 {
			t.Fatal("disabled injector flipped a bit")
		}
	}
	if c := in.Counts(); c != (Counts{}) {
		t.Fatalf("disabled injector counted: %+v", c)
	}
}

// TestInjectorReadErrorLeavesStorageIntact: a transient read error
// reports ok=false without touching the stored bits.
func TestInjectorReadErrorLeavesStorageIntact(t *testing.T) {
	a := mem.MustNew(mem.Config{Rows: 2, RowBits: 128})
	in := New(Config{Seed: 9, PReadErr: 1})
	a.InstallFaults(in)
	in.Enable()
	for i := 0; i < 50; i++ {
		_, ok := a.FetchRow(0)
		if ok {
			t.Fatal("PReadErr=1 fetch succeeded")
		}
		if popcount(a.PeekRow(0)) != 0 {
			t.Fatal("read error mutated storage")
		}
	}
	if c := in.Counts(); c.ReadErrors != 50 {
		t.Fatalf("read errors = %d, want 50", c.ReadErrors)
	}
}
