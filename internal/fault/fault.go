// Package fault is a deterministic soft-error model for the CA-RAM
// memory array. The paper's substrate is a dense SRAM/eDRAM macro
// (§3.1) — exactly the silicon where particle-strike bit flips,
// stuck-at cells, and transient row-read failures occur — so a
// reproduction that wants to behave like the hardware must be able to
// inject those faults and prove the layers above survive them.
//
// The Injector implements mem.RowFaultInjector: it rides the array's
// charged fetch path (mem.Array.FetchRow) and never touches reads the
// model treats as maintenance (PeekRow, scrub, serialization). Every
// draw comes from a seeded math/rand source, so a fixed seed replays
// the identical fault sequence — the property the chaos harness uses
// to reconcile injected faults against corrected/quarantined counters
// exactly.
//
// At most one fault event fires per fetch: a stuck cell that asserts
// (actually flips a stored bit) consumes the fetch's event, otherwise
// a single random draw selects among single flip, double flip,
// transient read error, latency spike, or nothing. One event per fetch
// keeps the per-row error state within what a SECDED-style code can
// adjudicate (a single flip is correctable, a double flip detectable),
// so the layers above can account for every injected bit without
// aliasing — three simultaneous flips would alias to a valid
// single-bit syndrome and silently miscorrect, which is a real failure
// mode of real ECC but would make exact reconciliation impossible.
package fault

import (
	"math/rand"
	"sync"
)

// StuckCell pins one bit of one row to a value: every fetch of the row
// re-asserts it (the cell re-reads wrong no matter what was written).
type StuckCell struct {
	Row   uint32
	Word  int  // word index within the row
	Bit   uint // bit index within the word (0..63)
	Value uint // 0 or 1
}

// Config describes the fault mix. Probabilities are per charged fetch
// and partition one random draw: PSingle+PDouble+PReadErr+PSpike must
// not exceed 1.
type Config struct {
	Seed        int64
	PSingle     float64     // single-bit flip (SECDED-correctable)
	PDouble     float64     // double-bit flip (detectable, uncorrectable)
	PReadErr    float64     // transient row-read failure (storage intact)
	PSpike      float64     // latency spike of SpikeCycles
	SpikeCycles int         // extra cycles charged by a spike (default 32)
	Stuck       []StuckCell // permanent stuck-at cells
}

// Counts is the injector's ledger: every fault it has caused, by kind.
// BitsFlipped counts stored bits actually inverted (a stuck-cell
// assertion that matches the stored value flips nothing and is not an
// event).
type Counts struct {
	Fetches      uint64 // fetches observed while enabled
	SingleFlips  uint64
	DoubleFlips  uint64
	StuckAsserts uint64 // stuck-cell assertions that flipped a bit
	BitsFlipped  uint64 // singles + 2*doubles + stuck asserts
	ReadErrors   uint64 // fetches failed transiently
	Spikes       uint64
}

// Injector is a seeded, reproducible fault source implementing
// mem.RowFaultInjector. It is safe for concurrent use (the engine lock
// already serializes fetches of one array; the mutex makes the counts
// and the rand source safe when one injector is shared or polled from
// a monitor goroutine).
type Injector struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	enabled bool
	counts  Counts
}

// New builds an injector from the config, disabled. Call Enable to
// start injecting.
func New(cfg Config) *Injector {
	if cfg.SpikeCycles == 0 {
		cfg.SpikeCycles = 32
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Enable turns injection on.
func (in *Injector) Enable() {
	in.mu.Lock()
	in.enabled = true
	in.mu.Unlock()
}

// Disable turns injection off; fetches pass through untouched. The
// ledger is preserved for reconciliation.
func (in *Injector) Disable() {
	in.mu.Lock()
	in.enabled = false
	in.mu.Unlock()
}

// Counts returns a snapshot of the fault ledger.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// OnRowFetch implements mem.RowFaultInjector.
func (in *Injector) OnRowFetch(idx uint32, row []uint64) (bool, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.enabled {
		return true, 0
	}
	in.counts.Fetches++
	// A stuck cell re-reads wrong on every fetch. The first one that
	// actually inverts a stored bit is this fetch's one fault event.
	for _, sc := range in.cfg.Stuck {
		if sc.Row != idx || sc.Word < 0 || sc.Word >= len(row) || sc.Bit > 63 {
			continue
		}
		old := row[sc.Word]
		forced := old&^(1<<sc.Bit) | uint64(sc.Value&1)<<sc.Bit
		if forced != old {
			row[sc.Word] = forced
			in.counts.StuckAsserts++
			in.counts.BitsFlipped++
			return true, 0
		}
	}
	nbits := len(row) * 64
	if nbits < 2 {
		return true, 0
	}
	r := in.rng.Float64()
	p := in.cfg.PSingle
	if r < p {
		in.flip(row, in.rng.Intn(nbits))
		in.counts.SingleFlips++
		in.counts.BitsFlipped++
		return true, 0
	}
	p += in.cfg.PDouble
	if r < p {
		b1 := in.rng.Intn(nbits)
		b2 := in.rng.Intn(nbits - 1)
		if b2 >= b1 {
			b2++ // distinct bits, uniform over pairs
		}
		in.flip(row, b1)
		in.flip(row, b2)
		in.counts.DoubleFlips++
		in.counts.BitsFlipped += 2
		return true, 0
	}
	p += in.cfg.PReadErr
	if r < p {
		in.counts.ReadErrors++
		return false, 0
	}
	p += in.cfg.PSpike
	if r < p {
		in.counts.Spikes++
		return true, in.cfg.SpikeCycles
	}
	return true, 0
}

// flip inverts bit b of the row (b indexes the row's flat bit space).
func (in *Injector) flip(row []uint64, b int) {
	row[b>>6] ^= 1 << uint(b&63)
}
