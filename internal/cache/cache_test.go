package cache

import (
	"math/rand"
	"testing"

	"caram/internal/mem"
)

func small() Config {
	return Config{Sets: 16, Ways: 4, BlockBits: 6, AddrBits: 32}
}

func TestConfigValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Sets: 0, Ways: 4, BlockBits: 6, AddrBits: 32},
		{Sets: 12, Ways: 4, BlockBits: 6, AddrBits: 32}, // not a power of two
		{Sets: 16, Ways: 0, BlockBits: 6, AddrBits: 32},
		{Sets: 16, Ways: 65, BlockBits: 6, AddrBits: 32},
		{Sets: 16, Ways: 4, BlockBits: 13, AddrBits: 32},
		{Sets: 16, Ways: 4, BlockBits: 6, AddrBits: 0},
		{Sets: 1 << 20, Ways: 4, BlockBits: 6, AddrBits: 24}, // no tag bits
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestHitMissBasics(t *testing.T) {
	c := MustNew(small())
	addr := uint64(0x12340)
	if c.Access(addr) {
		t.Error("cold access hit")
	}
	if !c.Access(addr) {
		t.Error("warm access missed")
	}
	// Same block, different offset: hit.
	if !c.Access(addr + 63) {
		t.Error("same-block access missed")
	}
	// Different block, same set (stride = sets * blocksize).
	if c.Access(addr + 16*64) {
		t.Error("distinct block hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("HitRate = %f", st.HitRate())
	}
	if !c.Contains(addr) || c.Contains(0xdead0000) {
		t.Error("Contains wrong")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := MustNew(small()) // 4 ways
	base := uint64(0x1000)
	stride := uint64(16 * 64) // same set
	// Fill the set with blocks 0..3.
	for i := uint64(0); i < 4; i++ {
		c.Access(base + i*stride)
	}
	// Touch block 0 so block 1 becomes LRU.
	c.Access(base)
	// A fifth block evicts block 1, not block 0.
	c.Access(base + 4*stride)
	if !c.Contains(base) {
		t.Error("recently used block evicted")
	}
	if c.Contains(base + 1*stride) {
		t.Error("LRU block survived")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d", c.Stats().Evictions)
	}
}

// Oracle check: random trace against a map-based LRU model.
func TestAgainstLRUOracle(t *testing.T) {
	cfg := Config{Sets: 8, Ways: 2, BlockBits: 4, AddrBits: 16}
	c := MustNew(cfg)
	type entry struct {
		tag   uint64
		stamp int
	}
	oracle := make(map[uint32][]entry)
	clock := 0
	rng := rand.New(rand.NewSource(9))
	for op := 0; op < 5000; op++ {
		addr := uint64(rng.Intn(1 << 16))
		got := c.Access(addr)
		// Oracle.
		clock++
		block := addr >> 4
		set := uint32(block) & 7
		tag := block >> 3
		ways := oracle[set]
		want := false
		for i := range ways {
			if ways[i].tag == tag {
				want = true
				ways[i].stamp = clock
				break
			}
		}
		if !want {
			if len(ways) < cfg.Ways {
				ways = append(ways, entry{tag, clock})
			} else {
				lru := 0
				for i := range ways {
					if ways[i].stamp < ways[lru].stamp {
						lru = i
					}
				}
				ways[lru] = entry{tag, clock}
			}
			oracle[set] = ways
		}
		if got != want {
			t.Fatalf("op %d addr %#x: hit=%v oracle=%v", op, addr, got, want)
		}
	}
}

func TestSequentialScanThrashes(t *testing.T) {
	// A scan over more blocks than the cache holds must miss every
	// time on the second pass too (LRU pathological case).
	c := MustNew(Config{Sets: 4, Ways: 2, BlockBits: 6, AddrBits: 32})
	blocks := 4 * 2 * 2 // twice the capacity
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < blocks; b++ {
			if c.Access(uint64(b*64)) && pass == 1 {
				t.Fatal("scan should thrash an LRU cache")
			}
		}
	}
}

func TestDRAMTagsCharged(t *testing.T) {
	c := MustNew(Config{Sets: 8, Ways: 2, BlockBits: 6, AddrBits: 32, Tech: mem.DRAM})
	c.Access(0)
	if c.Tags().Stats().Accesses() == 0 {
		t.Error("tag array access not charged")
	}
	if c.Config().Sets != 8 {
		t.Error("Config accessor wrong")
	}
}
