// Package cache implements a set-associative cache on the same memory
// substrate and row layout the CA-RAM slice uses — the structural
// cousin §1 singles out: "a CA-RAM slice and a set-associative cache
// bear similarity in their hardware structure. However, the required
// and supported operations for CA-RAM and for caches are different."
//
// The tag array is a mem.Array whose rows hold one set: per way a
// valid bit, the tag (the match.Layout key field), and an LRU counter
// (the data field). A lookup fetches the set row and compares every
// way in parallel — exactly a CA-RAM bucket search with a trivial
// index function (address bit selection) — but the operations on top
// are loads and stores with replacement, not insert/search/delete on
// an explicit database.
package cache

import (
	"fmt"
	"math/bits"

	"caram/internal/bitutil"
	"caram/internal/match"
	"caram/internal/mem"
)

// Config describes the cache geometry.
type Config struct {
	Sets      int // power of two
	Ways      int
	BlockBits int // log2 of the block size in bytes
	AddrBits  int // address width, <= 64
	Tech      mem.Technology
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Sets < 1 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: Sets %d must be a positive power of two", c.Sets)
	}
	if c.Ways < 1 || c.Ways > 64 {
		return fmt.Errorf("cache: Ways %d outside [1,64]", c.Ways)
	}
	if c.BlockBits < 0 || c.BlockBits > 12 {
		return fmt.Errorf("cache: BlockBits %d outside [0,12]", c.BlockBits)
	}
	if c.AddrBits < 1 || c.AddrBits > 64 {
		return fmt.Errorf("cache: AddrBits %d outside [1,64]", c.AddrBits)
	}
	if c.indexBits()+c.BlockBits >= c.AddrBits {
		return fmt.Errorf("cache: no tag bits left (addr %d, index %d, block %d)",
			c.AddrBits, c.indexBits(), c.BlockBits)
	}
	return nil
}

func (c Config) indexBits() int { return bits.TrailingZeros(uint(c.Sets)) }

// tagBits returns the stored tag width.
func (c Config) tagBits() int { return c.AddrBits - c.indexBits() - c.BlockBits }

// Stats counts cache activity.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits per access.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is the behavioral model (tag array only; data payloads are
// outside its concern, like the paper's key-only CA-RAM view).
type Cache struct {
	cfg    Config
	layout match.Layout
	tags   *mem.Array
	clock  uint64 // LRU timestamp source
	stats  Stats
}

// lruBits sizes the per-way LRU counter field.
const lruBits = 32

// New builds an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout := match.Layout{
		RowBits:  cfg.Ways*(1+cfg.tagBits()+lruBits) + 8,
		KeyBits:  cfg.tagBits(),
		DataBits: lruBits,
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	tags, err := mem.New(mem.Config{Rows: cfg.Sets, RowBits: layout.RowBits, Tech: cfg.Tech})
	if err != nil {
		return nil, err
	}
	return &Cache{cfg: cfg, layout: layout, tags: tags}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// split decomposes an address.
func (c *Cache) split(addr uint64) (set uint32, tag uint64) {
	addr &= 1<<uint(c.cfg.AddrBits) - 1
	blockAddr := addr >> uint(c.cfg.BlockBits)
	set = uint32(blockAddr) & uint32(c.cfg.Sets-1)
	tag = blockAddr >> uint(c.cfg.indexBits())
	return set, tag
}

// Access performs one cache access (load or store look the same to the
// tag array) and returns whether it hit. Misses fill the block,
// evicting the least recently used way when the set is full.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	c.clock++
	set, tag := c.split(addr)
	row := c.tags.ReadRow(set)
	// Parallel tag compare across the ways — the CA-RAM bucket match.
	hitWay := -1
	freeWay := -1
	lruWay, lruStamp := 0, uint64(1)<<63
	for w := 0; w < c.cfg.Ways; w++ {
		rec, ok := c.layout.ReadSlot(row, w)
		if !ok {
			if freeWay < 0 {
				freeWay = w
			}
			continue
		}
		if rec.Key.Value.Uint64() == tag {
			hitWay = w
		}
		if stamp := rec.Data.Uint64(); stamp < lruStamp {
			lruWay, lruStamp = w, stamp
		}
	}
	if hitWay >= 0 {
		c.stats.Hits++
		c.touch(set, hitWay, tag)
		return true
	}
	c.stats.Misses++
	way := freeWay
	if way < 0 {
		way = lruWay
		c.stats.Evictions++
	}
	c.touch(set, way, tag)
	return false
}

// touch writes a way's tag and LRU stamp.
func (c *Cache) touch(set uint32, way int, tag uint64) {
	row := c.tags.RowForUpdate(set)
	rec := match.Record{
		Key:  bitutil.Exact(bitutil.FromUint64(tag)),
		Data: bitutil.FromUint64(c.clock & (1<<lruBits - 1)),
	}
	if err := c.layout.WriteSlot(row, way, rec); err != nil {
		panic(fmt.Sprintf("cache: tag write: %v", err)) // geometry-checked at New
	}
}

// Contains reports whether the block holding addr is resident, without
// touching LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.split(addr)
	row := c.tags.PeekRow(set)
	for w := 0; w < c.cfg.Ways; w++ {
		rec, ok := c.layout.ReadSlot(row, w)
		if ok && rec.Key.Value.Uint64() == tag {
			return true
		}
	}
	return false
}

// Stats returns a snapshot.
func (c *Cache) Stats() Stats { return c.stats }

// Tags exposes the tag array (access counts, RAM-mode view).
func (c *Cache) Tags() *mem.Array { return c.tags }
