package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.N() != 0 || h.Mean() != 0 || h.StdDev() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram not zeroed")
	}
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
	if h.Mean() != 5 {
		t.Errorf("Mean = %f", h.Mean())
	}
	if math.Abs(h.StdDev()-2) > 1e-9 {
		t.Errorf("StdDev = %f, want 2", h.StdDev())
	}
	if h.Min() != 2 || h.Max() != 9 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if h.Count(4) != 3 || h.Count(100) != 0 {
		t.Error("Count wrong")
	}
	if h.CountAbove(5) != 2 {
		t.Errorf("CountAbove(5) = %d", h.CountAbove(5))
	}
	if h.CountAbove(-1) != 8 {
		t.Errorf("CountAbove(-1) = %d", h.CountAbove(-1))
	}
}

func TestAddN(t *testing.T) {
	h := NewHistogram()
	h.AddN(10, 5)
	h.AddN(20, 0)  // ignored
	h.AddN(30, -2) // ignored
	if h.N() != 5 || h.Mean() != 10 {
		t.Errorf("AddN: N=%d mean=%f", h.N(), h.Mean())
	}
}

func TestPercentile(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		p    float64
		want int
	}{{0, 1}, {0.01, 1}, {0.5, 50}, {0.9, 90}, {1, 100}, {-1, 1}, {2, 100}}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%f) = %d, want %d", c.p, got, c.want)
		}
	}
	if NewHistogram().Percentile(0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestBin(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{0, 1, 9, 10, 11, 25} {
		h.Add(v)
	}
	edges, counts := h.Bin(0, 10)
	if len(edges) != 3 || edges[0] != 0 || edges[1] != 10 || edges[2] != 20 {
		t.Fatalf("edges = %v", edges)
	}
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
	// Values below lo clamp into bin 0: 0 and 1 join the [5,14] bin.
	_, counts = h.Bin(5, 10)
	if counts[0] != 5 { // 0, 1, 9, 10, 11
		t.Errorf("clamped counts = %v", counts)
	}
}

func TestBinClamping(t *testing.T) {
	h := NewHistogram()
	h.Add(-5)
	h.Add(3)
	h.Add(40)
	_, counts := h.Bin(0, 10)
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("binned total = %d", total)
	}
	if e, c := h.Bin(0, 0); e != nil || c != nil {
		t.Error("zero width should return nil")
	}
}

func TestRender(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Add(i % 3 * 10)
	}
	out := h.Render(0, 10, 20)
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
	if got := NewHistogram().Render(0, 10, 20); got != "(empty)\n" {
		t.Errorf("empty render = %q", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty summary")
	}
	s = Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %f", s.StdDev)
	}
}

// Property: histogram mean/min/max agree with direct computation.
func TestHistogramAgainstDirectQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		sum, min, max := 0, int(raw[0]), int(raw[0])
		for _, b := range raw {
			v := int(b)
			h.Add(v)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		wantMean := float64(sum) / float64(len(raw))
		return h.Min() == min && h.Max() == max && math.Abs(h.Mean()-wantMean) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantiles agrees with Percentile at every requested p, on
// arbitrary data.
func TestQuantilesMatchPercentileQuick(t *testing.T) {
	f := func(raw []uint8, ps []float64) bool {
		h := NewHistogram()
		for _, b := range raw {
			h.Add(int(b))
		}
		got := h.Quantiles(ps...)
		for i, p := range ps {
			if got[i] != h.Percentile(p) {
				return false
			}
		}
		return len(got) == len(ps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantilesEdges(t *testing.T) {
	h := NewHistogram()
	if qs := h.Quantiles(0.5); qs[0] != 0 {
		t.Errorf("empty Quantiles = %v", qs)
	}
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	qs := h.Quantiles(-1, 0, 0.5, 0.99, 1, 2)
	want := []int{1, 1, 50, 99, 100, 100}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("Quantiles[%d] = %d, want %d", i, qs[i], want[i])
		}
	}
}

// TestHistogramMerge: Merge is bucket-wise addition, so every derived
// statistic of the merged histogram equals the same statistic computed
// over the concatenated observation streams — the property the cluster
// router relies on when it merges per-backend histograms fleet-wide.
func TestHistogramMerge(t *testing.T) {
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	for _, v := range []int{1, 1, 2, 7} {
		a.Add(v)
		both.Add(v)
	}
	for _, v := range []int{0, 2, 2, 40} {
		b.Add(v)
		both.Add(v)
	}
	a.Merge(b)
	if a.N() != both.N() || a.Mean() != both.Mean() || a.StdDev() != both.StdDev() {
		t.Fatalf("merged n=%d mean=%v sd=%v, want n=%d mean=%v sd=%v",
			a.N(), a.Mean(), a.StdDev(), both.N(), both.Mean(), both.StdDev())
	}
	if a.Min() != 0 || a.Max() != 40 {
		t.Errorf("merged extrema [%d,%d], want [0,40]", a.Min(), a.Max())
	}
	for v := 0; v <= 40; v++ {
		if a.Count(v) != both.Count(v) {
			t.Errorf("bucket %d: merged %d, direct %d", v, a.Count(v), both.Count(v))
		}
	}
	wantQ := both.Quantiles(0.5, 0.9, 1)
	gotQ := a.Quantiles(0.5, 0.9, 1)
	for i := range wantQ {
		if gotQ[i] != wantQ[i] {
			t.Errorf("quantile %d: merged %d, direct %d", i, gotQ[i], wantQ[i])
		}
	}
	// b is untouched; nil and empty merges are no-ops.
	if b.N() != 4 {
		t.Errorf("Merge modified its argument: n=%d", b.N())
	}
	before := a.N()
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.N() != before {
		t.Errorf("nil/empty merge changed n: %d -> %d", before, a.N())
	}
}
