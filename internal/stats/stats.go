// Package stats provides the small statistical toolkit the experiments
// share: integer histograms (Figure 7's bucket-occupancy distribution)
// and summary statistics for measured quantities.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts occurrences of integer values.
type Histogram struct {
	counts map[int]int64
	n      int64
	sum    int64
	sumSq  float64
	min    int
	max    int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int64)}
}

// Add records one observation of v.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN records n observations of v.
func (h *Histogram) AddN(v int, n int64) {
	if n <= 0 {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.counts[v] += n
	h.n += n
	h.sum += int64(v) * n
	h.sumSq += float64(v) * float64(v) * float64(n)
}

// Merge folds another histogram into this one by bucket-wise
// addition: every value bucket of o is added with its full count, so
// moments, extrema, and quantiles afterwards describe the union of
// both observation streams. It is the aggregation seam the cluster
// router uses to merge per-backend latency histograms into one
// fleet-wide view. o is not modified; a nil o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for v, n := range o.counts {
		h.AddN(v, n)
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Count returns the number of observations of exactly v.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// CountAbove returns the number of observations strictly greater than v.
func (h *Histogram) CountAbove(v int) int64 {
	var c int64
	for val, n := range h.counts {
		if val > v {
			c += n
		}
	}
	return c
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// StdDev returns the population standard deviation, or 0 when empty.
func (h *Histogram) StdDev() float64 {
	if h.n == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumSq/float64(h.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the smallest value v such that at least p (0..1)
// of the observations are <= v.
func (h *Histogram) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(h.n)))
	if target < 1 {
		target = 1
	}
	vals := h.sortedValues()
	var cum int64
	for _, v := range vals {
		cum += h.counts[v]
		if cum >= target {
			return v
		}
	}
	return h.max
}

// Quantiles returns Percentile(p) for each p in ps, sharing one sorted
// pass over the values — the export path the metrics layer uses to
// report latency quantiles from one consistent view of the histogram.
func (h *Histogram) Quantiles(ps ...float64) []int {
	out := make([]int, len(ps))
	if h.n == 0 || len(ps) == 0 {
		return out
	}
	vals := h.sortedValues()
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		target := int64(math.Ceil(p * float64(h.n)))
		if target < 1 {
			target = 1
		}
		var cum int64
		out[i] = h.max
		for _, v := range vals {
			cum += h.counts[v]
			if cum >= target {
				out[i] = v
				break
			}
		}
	}
	return out
}

func (h *Histogram) sortedValues() []int {
	vals := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// Bin aggregates observations into fixed-width bins of the given width
// starting at lo; it returns the bin lower edges and counts, covering
// [lo, max]. Used to render Figure 7.
func (h *Histogram) Bin(lo, width int) (edges []int, counts []int64) {
	if width <= 0 || h.n == 0 {
		return nil, nil
	}
	nbins := (h.max-lo)/width + 1
	if nbins < 1 {
		nbins = 1
	}
	counts = make([]int64, nbins)
	edges = make([]int, nbins)
	for i := range edges {
		edges[i] = lo + i*width
	}
	for v, n := range h.counts {
		b := (v - lo) / width
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b] += n
	}
	return edges, counts
}

// Render draws a textual bar chart of the binned histogram, one line
// per bin, with bars scaled to barWidth characters.
func (h *Histogram) Render(lo, binWidth, barWidth int) string {
	edges, counts := h.Bin(lo, binWidth)
	if len(edges) == 0 {
		return "(empty)\n"
	}
	var peak int64 = 1
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, e := range edges {
		bar := int(counts[i] * int64(barWidth) / peak)
		fmt.Fprintf(&b, "%6d-%-6d |%-*s %d\n", e, e+binWidth-1, barWidth, strings.Repeat("#", bar), counts[i])
	}
	return b.String()
}

// Summary is a compact set of summary statistics for float samples.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
}

// Summarize computes summary statistics over samples.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	sum, sumSq := 0.0, 0.0
	for _, v := range samples {
		sum += v
		sumSq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	varr := sumSq/float64(s.N) - s.Mean*s.Mean
	if varr < 0 {
		varr = 0
	}
	s.StdDev = math.Sqrt(varr)
	return s
}
