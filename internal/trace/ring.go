package trace

import "sync/atomic"

// Ring is a fixed-size lock-free trace buffer. Writers claim a slot
// with one atomic add and publish with one atomic pointer store; the
// newest size traces survive, older ones are overwritten in FIFO
// order. Readers snapshot by walking the sequence backwards with
// atomic loads. Reset is a lock-free epoch bump: it advances the base
// sequence and clears the slots.
//
// Concurrent Put/Snapshot/Reset are all safe. A snapshot taken while
// writers are active is best-effort — it may miss a trace published
// mid-walk — but every trace it returns was genuinely admitted and is
// immutable (the Collector detaches traces before Put).
type Ring struct {
	slots []atomic.Pointer[Trace]
	seq   atomic.Uint64 // next admission sequence number
	base  atomic.Uint64 // sequence floor set by the last Reset
}

// NewRing returns a ring retaining the newest size traces (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], size)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Put admits a trace and returns its admission sequence number
// (monotone from 1). The trace must not be mutated afterwards.
func (r *Ring) Put(t *Trace) uint64 {
	id := r.seq.Add(1)
	t.ID = id
	r.slots[int((id-1)%uint64(len(r.slots)))].Store(t)
	return id
}

// Len returns the number of traces currently retained.
func (r *Ring) Len() int {
	seq, base := r.seq.Load(), r.base.Load()
	n := int(seq - base)
	if n < 0 { // racing Reset moved base past a stale seq read
		n = 0
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	return n
}

// Total returns how many traces were ever admitted (across resets).
func (r *Ring) Total() uint64 { return r.seq.Load() }

// Reset discards the retained traces. Traces admitted concurrently
// with the reset may survive it.
func (r *Ring) Reset() {
	r.base.Store(r.seq.Load())
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
}

// Snapshot appends up to max retained traces to dst, newest first, and
// returns the extended slice. max <= 0 means "all retained".
func (r *Ring) Snapshot(dst []*Trace, max int) []*Trace {
	n := r.Len()
	if max <= 0 || max > n {
		max = n
	}
	seq := r.seq.Load()
	for i := 0; i < max && uint64(i) < seq; i++ {
		id := seq - uint64(i) // walk newest to oldest
		t := r.slots[int((id-1)%uint64(len(r.slots)))].Load()
		// A racing writer may have overwritten the slot with a newer
		// trace, or a racing Reset nilled it; keep only what matches.
		if t == nil || t.ID != id {
			continue
		}
		dst = append(dst, t)
	}
	return dst
}
