package trace

import (
	"testing"
	"time"
)

// The wire-id half of the collector: tagged-ring admission and the
// Find lookup behind TRACE GET.

// TestTaggedAdmissionPriority pins the ring precedence for a trace
// carrying a wire id: slowlog > tagged > sampled, landing in exactly
// one ring.
func TestTaggedAdmissionPriority(t *testing.T) {
	// Slow AND tagged AND sampled: the slowlog wins.
	c := NewCollector(Config{SampleN: 1, Slowlog: 0, Ring: 4})
	tr := c.Begin()
	tr.SetWire(0xbeef, 1)
	if !c.Observe(tr, time.Millisecond) {
		t.Fatal("above-threshold trace not slow")
	}
	if c.Slow().Len() != 1 || c.Tagged().Len() != 0 || c.Sampled().Len() != 0 {
		t.Fatalf("slow/tagged/sampled = %d/%d/%d, want 1/0/0",
			c.Slow().Len(), c.Tagged().Len(), c.Sampled().Len())
	}

	// Tagged AND sampled, slowlog off: the tagged ring wins.
	c = NewCollector(Config{SampleN: 1, Slowlog: -1, Ring: 4})
	tr = c.Begin()
	tr.SetWire(0xbeef, 1)
	c.Observe(tr, time.Millisecond)
	if c.Tagged().Len() != 1 || c.Sampled().Len() != 0 {
		t.Fatalf("tagged/sampled = %d/%d, want 1/0",
			c.Tagged().Len(), c.Sampled().Len())
	}

	// No policies, no tag: recycled, retained nowhere.
	c = NewCollector(Config{Slowlog: -1, Ring: 4})
	c.Observe(c.Begin(), time.Millisecond)
	if c.Slow().Len()+c.Tagged().Len()+c.Sampled().Len() != 0 {
		t.Fatal("untagged ineligible trace was retained")
	}
}

func TestEligible(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want bool
	}{
		{"slowlog on", Config{Slowlog: 0}, true},
		{"sampling every request", Config{SampleN: 1, Slowlog: -1}, true},
		{"both off", Config{SampleN: 0, Slowlog: -1}, false},
	} {
		c := NewCollector(tc.cfg)
		tr := c.Begin()
		if got := c.Eligible(tr); got != tc.want {
			t.Errorf("%s: Eligible = %v, want %v", tc.name, got, tc.want)
		}
		c.End(tr)
	}
	var nc *Collector
	if nc.Eligible(nil) {
		t.Error("nil collector eligible")
	}
}

// TestFindAcrossRings: Find scans all three retention rings and
// honours the span-0-matches-any convention.
func TestFindAcrossRings(t *testing.T) {
	c := NewCollector(Config{SampleN: 1, Slowlog: 10 * time.Millisecond, Ring: 8})

	admit := func(tid uint64, span uint32, d time.Duration) {
		tr := c.Begin()
		tr.Request("SEARCH", "db", "k")
		tr.SetWire(tid, span)
		c.Observe(tr, d)
	}
	admit(0xa1, 1, time.Hour)        // slowlog
	admit(0xa2, 2, time.Microsecond) // fast but tagged: tagged ring

	if got := c.Find(0xa1, 1); got == nil || got.SpanID != 1 {
		t.Errorf("Find in slowlog ring: %+v", got)
	}
	if got := c.Find(0xa2, 0); got == nil || got.TID != 0xa2 {
		t.Errorf("Find span 0 across rings: %+v", got)
	}
	if c.Find(0xa2, 9) != nil {
		t.Error("Find matched the wrong span")
	}
	if c.Find(0xffff, 0) != nil {
		t.Error("Find matched an unknown id")
	}
	if c.Find(0, 0) != nil {
		t.Error("Find(0, 0) must always miss: tid 0 means untagged")
	}

	// Wraparound eviction: newer tagged ids push 0xa2 out.
	for i := 0; i < c.Tagged().Cap()+c.Sampled().Cap(); i++ {
		admit(0xb000+uint64(i), 1, time.Microsecond)
	}
	if c.Find(0xa2, 2) != nil {
		t.Error("evicted id still found")
	}
	// The slowlog entry is untouched by tagged-ring churn.
	if c.Find(0xa1, 1) == nil {
		t.Error("slowlog entry lost to tagged-ring wraparound")
	}
}

// TestFindVsResetRace races Find against Reset on every ring; the race
// detector (make trace-guard) is the assertion.
func TestFindVsResetRace(t *testing.T) {
	c := NewCollector(Config{SampleN: 2, Slowlog: 0, Ring: 8})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Slow().Reset()
			c.Tagged().Reset()
			c.Sampled().Reset()
		}
	}()
	for i := 0; i < 1000; i++ {
		tr := c.Begin()
		tr.Request("SEARCH", "db", "k")
		tr.SetWire(uint64(i)+1, 1)
		c.Observe(tr, time.Microsecond)
		if got := c.Find(uint64(i)+1, 1); got != nil && got.TID != uint64(i)+1 {
			t.Fatalf("Find returned a foreign trace: %+v", got)
		}
	}
	<-done
}

func TestNewTraceIDNonZero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID minted 0 (the untagged sentinel)")
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %x within 1000 draws", id)
		}
		seen[id] = true
	}
}
