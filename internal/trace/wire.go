package trace

import (
	"sync/atomic"
	"time"
)

// Wire trace ids. The router (or any client) mints one id per request
// it wants stitched, tags every downstream command with it
// (*TID <hex-id>/<span-id>), and later fetches the children with
// TRACE GET. Ids only need to be unique enough that two traces
// retained in the same ring window never collide, so a splitmix64
// stream seeded from the process start time is plenty — no crypto, no
// coordination.

var (
	tidSeed    = uint64(time.Now().UnixNano()) | 1
	tidCounter atomic.Uint64
)

// NewTraceID returns a nonzero process-unique wire trace id.
func NewTraceID() uint64 {
	x := tidSeed + tidCounter.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
