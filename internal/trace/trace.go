// Package trace is the request-scoped tracing layer: where
// internal/metrics answers "how is the server doing on average", this
// package answers "what did *this* request actually do" — which home
// bucket the index generator selected, how many buckets the probe
// chain touched (the per-request contribution to the paper's AMAL,
// §3.4), whether the parallel overflow CAM answered, and where the
// wall-clock time went (parse, engine lock wait, match, reply encode).
//
// The design constraints, in order:
//
//  1. Zero cost when off. Every recording method is nil-safe — a nil
//     *Trace (and a nil *Collector) turns the whole layer into a
//     handful of predictable branches, so the search hot path stays
//     allocation-free with tracing compiled in but disabled (guarded
//     by the alloc-regression CI).
//  2. Race-safe retention. Admitted traces land in fixed-size
//     lock-free rings (atomic slot pointers + a sequence counter);
//     concurrent record, snapshot and reset never block each other.
//  3. Two admission policies: probabilistic sampling (1-in-N, counter
//     based so tests are deterministic) and a Redis-style slowlog —
//     every request whose wall latency exceeds the threshold is kept
//     with its full probe trace.
//
// The package depends only on the standard library and imports nothing
// from this repository, so any layer (caram, subsystem, server) may
// thread a *Trace through without cycles.
package trace

import (
	"strings"
	"time"
)

// Kind enumerates span/event types along the request path, in stack
// order from the server's parser down to the match kernel and back.
type Kind uint8

const (
	// KindParse covers request parsing and validation in the server
	// (command word, engine name, hex keys).
	KindParse Kind = iota
	// KindLockWait is the wait for the target engine's port lock —
	// the queueing delay in front of the slice's single row port.
	KindLockWait
	// KindProbe is one bucket probe of the CA-RAM lookup chain: one
	// row fetched and matched. Payload: bucket index, displacement
	// from the home bucket, slots tested, match count, and whether
	// the probe was an overflow hop (displacement > 0).
	KindProbe
	// KindOverflow is the parallel overflow-CAM search (§4.3).
	KindOverflow
	// KindMatch aggregates the match kernel's work over the whole
	// lookup: total slots tested, total matches, pipelined passes.
	KindMatch
	// KindEncode covers appending the reply to the output buffer.
	KindEncode
	// KindEcc is a per-row error-coding event on the probe path: the
	// row's check word disagreed with its contents and the ECC layer
	// either corrected a single-bit error in place (Matches = bits
	// corrected) or quarantined the row as uncorrectable (Hit=true
	// marks quarantine). Positional like KindProbe, not timed.
	KindEcc
	// KindRetries reports how many seqlock snapshots the lock-free
	// search path re-read after observing a concurrent writer mid-
	// publish (Matches = torn snapshots retried). Emitted at most once
	// per request, only when nonzero. Not timed.
	KindRetries

	// The remaining kinds are router-side spans (internal/cluster): a
	// proxied request's lifecycle from the frontend parser through the
	// backend pools. Bucket carries the backend index for all of them.

	// KindRoute covers frontend parsing plus the consistent-hash ring
	// lookup that picked the backend. Timed.
	KindRoute
	// KindQueue is the FIFO-lane queue wait: submission to the
	// backend pool until the connection writer picked the call up.
	// Timed (Offset/Dur are measured on the pool's own clock stamps).
	KindQueue
	// KindRTT is the backend round trip: the coalesced write until the
	// reply was matched off the wire. Span carries the child span id
	// this call was tagged with (*TID <id>/<span>), so a stitcher can
	// fetch the backend's own trace for exactly this hop. Timed.
	KindRTT
	// KindBurst records coalesced-burst membership: Matches is how
	// many calls shared the single write this call rode in. Not timed.
	KindBurst
	// KindBreaker records the backend's circuit-breaker state at
	// dispatch (Hit = breaker open, the call was shed or about to be
	// probed). Not timed.
	KindBreaker
	// KindRetry is one idempotent-read retry attempt after a backend
	// connection died (Matches = attempt number, 1-based). Not timed.
	KindRetry
	// KindWALAppend times a mutation's durability window: journal
	// append through the group-commit wait (fsync under sync=always).
	KindWALAppend
)

// String names the kind for logs and JSON.
func (k Kind) String() string {
	switch k {
	case KindParse:
		return "parse"
	case KindLockWait:
		return "lock_wait"
	case KindProbe:
		return "probe"
	case KindOverflow:
		return "overflow"
	case KindMatch:
		return "match"
	case KindEncode:
		return "encode"
	case KindEcc:
		return "ecc"
	case KindRetries:
		return "retries"
	case KindRoute:
		return "route"
	case KindQueue:
		return "queue_wait"
	case KindRTT:
		return "backend_rtt"
	case KindBurst:
		return "burst"
	case KindBreaker:
		return "breaker"
	case KindRetry:
		return "retry"
	case KindWALAppend:
		return "wal_append"
	}
	return "unknown"
}

// Event is one recorded step. It is a small plain struct (no pointers)
// so a Trace's event list reuses one backing array across pooled
// reuses. Fields beyond Kind are kind-specific; unused ones are zero.
type Event struct {
	Kind Kind

	// Probe / match payload.
	Bucket       uint32 // bucket index probed
	Displacement int32  // probe distance from the home bucket
	SlotsTested  int32  // valid slots compared in this row / lookup
	Matches      int32  // slots that matched
	Passes       int32  // pipelined match passes (KindMatch)
	Span         uint32 // child span id this hop was tagged with (KindRTT)
	Overflow     bool   // probe left the home bucket (an overflow hop)
	Hit          bool   // this probe (or the overflow CAM) matched

	// Span timing: offset from the trace's Begin and duration. Zero
	// for untimed events (probes are positional, not timed — the
	// hardware fetches rows at a fixed cadence).
	Offset time.Duration
	Dur    time.Duration
}

// Trace accumulates one request's events. A Trace is owned by exactly
// one goroutine while recording; once admitted to a ring it is
// immutable and may be read concurrently.
//
// The zero-value-pointer contract: every method is safe on a nil
// receiver and does nothing, so call sites need no "is tracing on"
// branches beyond what the compiler generates for the nil check.
type Trace struct {
	ID     uint64        // admission sequence number (0 until admitted)
	TID    uint64        // wire trace id (*TID annotation); 0 = unpropagated
	SpanID uint32        // span id within the parent trace (0 = root)
	Cmd    string        // wire command, upper-case
	Engine string        // target engine ("" when the command has none)
	Key    string        // key field as received ("" when none)
	Begin  time.Time     // request start (per command, not per burst)
	Dur    time.Duration // wall latency, set by Collector.End/Observe
	Result string        // first reply token: OK, HIT, MISS, ERR, ...

	// Lookup summary, recorded by the caram layer.
	Home  uint32 // home bucket the index generator selected
	Reach int32  // home bucket's recorded overflow reach
	Rows  int32  // rows accessed (this request's AMAL contribution)
	Found bool

	Events []Event

	sampled bool // chosen by the 1-in-N sampler at Begin
}

// Enabled reports whether the trace is live. It is the idiomatic guard
// for work that only matters when tracing (building strings, summing
// aggregates); plain recording calls don't need it.
func (t *Trace) Enabled() bool { return t != nil }

// Request records the command identity. The strings may be substrings
// of the request line; the Collector clones them on admission so a
// retained trace does not pin a connection buffer.
func (t *Trace) Request(cmd, engine, key string) {
	if t == nil {
		return
	}
	t.Cmd, t.Engine, t.Key = cmd, engine, key
}

// SetWire joins this trace to a caller-supplied wire trace id: the
// server records the (*TID <id>/<span>) annotation here, and the
// router stamps the ids it tags forwarded commands with. A nonzero
// TID makes the trace retainable in the collector's tagged ring, so a
// parent tier can fetch it later with TRACE GET.
func (t *Trace) SetWire(tid uint64, span uint32) {
	if t == nil {
		return
	}
	t.TID, t.SpanID = tid, span
}

// Add appends one pre-built event. The typed recorders above cover the
// engine path; Add is the generic seam for router-side events whose
// field mix (backend index, child span id, burst size) has no
// dedicated recorder.
func (t *Trace) Add(e Event) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, e)
}

// SetResult records the first token of the reply.
func (t *Trace) SetResult(r string) {
	if t == nil {
		return
	}
	t.Result = r
}

// Probe records one bucket probe of the lookup chain.
func (t *Trace) Probe(bucket uint32, displacement, slotsTested, matches int, hit bool) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, Event{
		Kind:         KindProbe,
		Bucket:       bucket,
		Displacement: int32(displacement),
		SlotsTested:  int32(slotsTested),
		Matches:      int32(matches),
		Overflow:     displacement > 0,
		Hit:          hit,
	})
}

// Overflow records the parallel overflow-CAM search and its outcome.
func (t *Trace) Overflow(hit bool) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, Event{Kind: KindOverflow, Hit: hit})
}

// Ecc records a per-row error-coding event: correctedBits bits fixed
// in place on bucket, or (quarantined=true) the row taken out of
// service as uncorrectable.
func (t *Trace) Ecc(bucket uint32, correctedBits int, quarantined bool) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, Event{
		Kind:    KindEcc,
		Bucket:  bucket,
		Matches: int32(correctedBits),
		Hit:     quarantined,
	})
}

// Retries records how many torn seqlock snapshots the lock-free
// search path re-read while serving this request. Zero retries emit
// nothing, so uncontended requests trace identically with either
// read path.
func (t *Trace) Retries(n int) {
	if t == nil || n == 0 {
		return
	}
	t.Events = append(t.Events, Event{Kind: KindRetries, Matches: int32(n)})
}

// Match records the match kernel's aggregate work for the lookup.
func (t *Trace) Match(slotsTested, matches, passes int) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, Event{
		Kind:        KindMatch,
		SlotsTested: int32(slotsTested),
		Matches:     int32(matches),
		Passes:      int32(passes),
	})
}

// Lookup records the caram-level lookup summary.
func (t *Trace) Lookup(home uint32, reach, rows int, found bool) {
	if t == nil {
		return
	}
	t.Home, t.Reach, t.Rows, t.Found = home, int32(reach), int32(rows), found
}

// Span records a timed stage that started at start and ends now.
// Callers take the start timestamp only when the trace is enabled:
//
//	var start time.Time
//	if tr.Enabled() { start = time.Now() }
//	... stage ...
//	tr.Span(trace.KindLockWait, start)
func (t *Trace) Span(k Kind, start time.Time) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, Event{
		Kind:   k,
		Offset: start.Sub(t.Begin),
		Dur:    time.Since(start),
	})
}

// SpanDur records a timed stage with an explicit duration.
func (t *Trace) SpanDur(k Kind, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, Event{Kind: k, Offset: start.Sub(t.Begin), Dur: d})
}

// ProbeEvents calls fn for each KindProbe event in record order.
func (t *Trace) ProbeEvents(fn func(Event)) {
	if t == nil {
		return
	}
	for _, e := range t.Events {
		if e.Kind == KindProbe {
			fn(e)
		}
	}
}

// EventOf returns the first event of the given kind.
func (t *Trace) EventOf(k Kind) (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	for _, e := range t.Events {
		if e.Kind == k {
			return e, true
		}
	}
	return Event{}, false
}

// End stamps the trace's wall latency. The Collector calls it; EXPLAIN
// calls it directly on its forced trace.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.Dur = time.Since(t.Begin)
}

// reset clears the trace for pooled reuse, keeping the event array.
func (t *Trace) reset() {
	events := t.Events[:0]
	*t = Trace{Events: events}
}

// detach clones any strings that may alias a caller buffer, making the
// trace safe to retain after the request line is recycled.
func (t *Trace) detach() {
	t.Cmd = strings.Clone(t.Cmd)
	t.Engine = strings.Clone(t.Engine)
	t.Key = strings.Clone(t.Key)
	t.Result = strings.Clone(t.Result)
}

// New returns a standalone trace beginning now — the forced-on form
// EXPLAIN uses, independent of any collector.
func New() *Trace {
	return &Trace{Begin: time.Now(), Events: make([]Event, 0, 8)}
}
