package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", r.Cap())
	}
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("empty ring: Len=%d Total=%d", r.Len(), r.Total())
	}
	for i := 0; i < 5; i++ {
		tr := &Trace{Cmd: "SEARCH"}
		if id := r.Put(tr); id != uint64(i+1) {
			t.Fatalf("Put #%d returned id %d", i+1, id)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len after 5 puts into cap 3 = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	got := r.Snapshot(nil, 0)
	if len(got) != 3 {
		t.Fatalf("Snapshot returned %d traces, want 3", len(got))
	}
	for i, tr := range got { // newest first: ids 5, 4, 3
		if want := uint64(5 - i); tr.ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
	if got := r.Snapshot(nil, 2); len(got) != 2 || got[0].ID != 5 {
		t.Fatalf("bounded snapshot = %v", got)
	}

	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	if got := r.Snapshot(nil, 0); len(got) != 0 {
		t.Fatalf("Snapshot after Reset returned %d traces", len(got))
	}
	// Admission sequence continues across resets.
	if id := r.Put(&Trace{}); id != 6 {
		t.Fatalf("Put after Reset returned id %d, want 6", id)
	}
	if r.Len() != 1 || r.Total() != 6 {
		t.Fatalf("after post-reset put: Len=%d Total=%d", r.Len(), r.Total())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", r.Cap())
	}
	r.Put(&Trace{})
	r.Put(&Trace{})
	if got := r.Snapshot(nil, 0); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("snapshot = %+v, want the single newest trace", got)
	}
}

// TestRingConcurrent hammers one ring from 32 writer goroutines while
// readers snapshot and reset concurrently — the retention path a busy
// traced server exercises. Run under -race by `make race`. The
// correctness bar: no torn traces (every snapshot entry's ID is
// self-consistent and IDs are strictly decreasing within a snapshot).
func TestRingConcurrent(t *testing.T) {
	const (
		writers = 32
		perG    = 500
	)
	r := NewRing(64)
	var wg sync.WaitGroup
	var stop atomic.Bool

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Put(&Trace{Cmd: "SEARCH", Rows: int32(w)})
			}
		}(w)
	}
	// Two snapshot readers and one resetter race the writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]*Trace, 0, 64)
			for !stop.Load() {
				buf = r.Snapshot(buf[:0], 0)
				last := uint64(0)
				for i, tr := range buf {
					if tr.ID == 0 {
						t.Error("snapshot returned an unadmitted trace")
						return
					}
					if i > 0 && tr.ID >= last {
						t.Errorf("snapshot not newest-first: id %d after %d", tr.ID, last)
						return
					}
					last = tr.ID
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if i%64 == 0 {
				r.Reset()
			}
			_ = r.Len()
		}
	}()

	// Writers finish, then the readers are released.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r.Total() < writers*perG {
			if stop.Load() {
				return
			}
		}
	}()
	<-done
	stop.Store(true)
	wg.Wait()

	if r.Total() != writers*perG {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*perG)
	}
}
