package trace

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"testing/quick"
	"time"
)

func TestNilSafety(t *testing.T) {
	var c *Collector
	var tr *Trace
	if c.Enabled() || tr.Enabled() {
		t.Fatal("nil collector/trace report enabled")
	}
	if got := c.Begin(); got != nil {
		t.Fatalf("nil collector Begin = %v, want nil", got)
	}
	if c.End(nil) {
		t.Fatal("nil End reported slow")
	}
	if c.SlowAdmit(time.Hour) {
		t.Fatal("nil collector admitted to slowlog")
	}
	if c.Seen() != 0 || c.SampleN() != 0 || c.Sampled() != nil || c.Slow() != nil {
		t.Fatal("nil collector accessors not zero")
	}
	if _, ok := c.SlowThreshold(); ok {
		t.Fatal("nil collector has a slow threshold")
	}
	// Every recording method must no-op on a nil trace.
	tr.Request("SEARCH", "db", "1")
	tr.SetResult("HIT")
	tr.Probe(1, 0, 4, 1, true)
	tr.Overflow(false)
	tr.Match(4, 1, 1)
	tr.Lookup(1, 0, 1, true)
	tr.Span(KindParse, time.Now())
	tr.SpanDur(KindEncode, time.Now(), time.Microsecond)
	tr.ProbeEvents(func(Event) { t.Fatal("nil trace yielded a probe") })
	if _, ok := tr.EventOf(KindMatch); ok {
		t.Fatal("nil trace yielded an event")
	}
	tr.End()
}

// TestSlowAdmitProperty is the admission property from the issue: a
// request enters the slowlog exactly when its latency is strictly
// greater than the threshold. Driven by testing/quick over random
// (threshold, latency) pairs, checked both against the predicate and
// against the ring the trace actually lands in.
func TestSlowAdmitProperty(t *testing.T) {
	prop := func(thrUs uint16, durUs uint32) bool {
		thr := time.Duration(thrUs) * time.Microsecond
		d := time.Duration(durUs) * time.Microsecond
		c := NewCollector(Config{Slowlog: thr, Ring: 4})
		tr := c.Begin()
		before := c.Slow().Total()
		slow := c.Observe(tr, d)
		want := d > thr
		if slow != want {
			t.Logf("thr=%v d=%v: slow=%v want %v", thr, d, slow, want)
			return false
		}
		if c.SlowAdmit(d) != want {
			return false
		}
		admitted := c.Slow().Total() - before
		return admitted == map[bool]uint64{true: 1, false: 0}[want]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowlogDisabledByNegativeThreshold(t *testing.T) {
	c := NewCollector(Config{Slowlog: -1})
	if _, ok := c.SlowThreshold(); ok {
		t.Fatal("negative threshold reports enabled")
	}
	if c.SlowAdmit(time.Hour) {
		t.Fatal("disabled slowlog admitted")
	}
	tr := c.Begin()
	if c.Observe(tr, time.Hour) {
		t.Fatal("disabled slowlog retained a trace")
	}
	if c.Slow().Len() != 0 {
		t.Fatal("disabled slowlog ring non-empty")
	}
}

func TestSamplingOneInN(t *testing.T) {
	c := NewCollector(Config{SampleN: 3, Slowlog: -1, Ring: 16})
	for i := 0; i < 10; i++ {
		tr := c.Begin()
		tr.Request("SEARCH", "db", "1")
		if c.Observe(tr, time.Microsecond) {
			t.Fatal("sampled trace reported slow")
		}
	}
	if got := c.Sampled().Len(); got != 3 { // requests 3, 6, 9
		t.Fatalf("sampled ring Len = %d, want 3", got)
	}
	if c.Seen() != 10 {
		t.Fatalf("Seen = %d, want 10", c.Seen())
	}
	for _, tr := range c.Sampled().Snapshot(nil, 0) {
		if tr.Cmd != "SEARCH" || tr.Engine != "db" {
			t.Fatalf("sampled trace lost identity: %+v", tr)
		}
	}
}

func TestSlowlogWinsOverSampling(t *testing.T) {
	c := NewCollector(Config{SampleN: 1, Slowlog: 0, Ring: 4})
	tr := c.Begin()
	if !c.Observe(tr, time.Microsecond) {
		t.Fatal("above-threshold trace not slow")
	}
	if c.Slow().Len() != 1 || c.Sampled().Len() != 0 {
		t.Fatalf("slow=%d sampled=%d, want 1/0 (slowlog wins)", c.Slow().Len(), c.Sampled().Len())
	}
}

// TestPoolRecycling checks the unadmitted path really recycles: a trace
// that misses both policies comes back from the pool with its identity
// cleared and its event storage empty.
func TestPoolRecycling(t *testing.T) {
	c := NewCollector(Config{Slowlog: time.Hour})
	tr := c.Begin()
	tr.Request("SEARCH", "db", "dead")
	tr.Probe(1, 0, 4, 1, true)
	tr.Match(4, 1, 1)
	if c.Observe(tr, time.Microsecond) {
		t.Fatal("trace below threshold admitted")
	}
	// sync.Pool gives no guarantees, but single-goroutine get-after-put
	// returns the same object in practice; tolerate a fresh one.
	tr2 := c.Begin()
	if tr2.Cmd != "" || tr2.Engine != "" || tr2.Key != "" || tr2.Result != "" {
		t.Fatalf("recycled trace keeps identity: %+v", tr2)
	}
	if len(tr2.Events) != 0 {
		t.Fatalf("recycled trace keeps %d events", len(tr2.Events))
	}
	c.Observe(tr2, 0)
}

// TestAdmittedTraceDetaches checks that a retained trace does not alias
// the request line it was parsed from: admission clones the strings.
func TestAdmittedTraceDetaches(t *testing.T) {
	c := NewCollector(Config{Slowlog: 0})
	line := string([]byte("SEARCH db dead")) // force a fresh backing array
	tr := c.Begin()
	tr.Request(line[:6], line[7:9], line[10:])
	tr.SetResult("HIT")
	if !c.Observe(tr, time.Microsecond) {
		t.Fatal("trace not admitted")
	}
	got := c.Slow().Snapshot(nil, 1)
	if len(got) != 1 {
		t.Fatal("admitted trace missing from ring")
	}
	if got[0].Cmd != "SEARCH" || got[0].Engine != "db" || got[0].Key != "dead" {
		t.Fatalf("retained identity wrong: %+v", got[0])
	}
}

func TestTraceEventAccessors(t *testing.T) {
	tr := New()
	tr.Probe(5, 0, 4, 0, false)
	tr.Probe(6, 1, 2, 1, true)
	tr.Overflow(false)
	tr.Match(6, 1, 2)
	tr.Lookup(5, 1, 2, true)

	var probes []Event
	tr.ProbeEvents(func(e Event) { probes = append(probes, e) })
	if len(probes) != 2 {
		t.Fatalf("ProbeEvents yielded %d, want 2", len(probes))
	}
	if probes[0].Bucket != 5 || probes[0].Overflow || probes[1].Bucket != 6 || !probes[1].Overflow || !probes[1].Hit {
		t.Fatalf("probe payloads wrong: %+v", probes)
	}
	m, ok := tr.EventOf(KindMatch)
	if !ok || m.SlotsTested != 6 || m.Matches != 1 || m.Passes != 2 {
		t.Fatalf("match event = %+v ok=%v", m, ok)
	}
	if o, ok := tr.EventOf(KindOverflow); !ok || o.Hit {
		t.Fatalf("overflow event = %+v ok=%v", o, ok)
	}
	if tr.Home != 5 || tr.Reach != 1 || tr.Rows != 2 || !tr.Found {
		t.Fatalf("lookup summary wrong: %+v", tr)
	}
	for k := KindParse; k <= KindEncode; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(255).String() != "unknown" {
		t.Fatal("out-of-range kind not unknown")
	}
}

func TestHandlerJSON(t *testing.T) {
	c := NewCollector(Config{SampleN: 2, Slowlog: 0, Ring: 8})
	tr := c.Begin()
	tr.Request("SEARCH", "db", "dead")
	tr.SetResult("HIT")
	tr.Probe(1, 0, 4, 1, true)
	tr.Match(4, 1, 1)
	tr.Lookup(1, 0, 1, true)
	tr.Span(KindEncode, tr.Begin)
	if !c.Observe(tr, 5*time.Microsecond) {
		t.Fatal("trace not admitted")
	}

	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=4", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var v struct {
		Policy struct {
			Sample    int   `json:"sample"`
			SlowlogUs int64 `json:"slowlog_us"`
			Ring      int   `json:"ring"`
		} `json:"policy"`
		Seen    uint64 `json:"seen"`
		Slowlog struct {
			Len     int `json:"len"`
			Entries []struct {
				ID     uint64  `json:"id"`
				Cmd    string  `json:"cmd"`
				Engine string  `json:"engine"`
				Key    string  `json:"key"`
				Us     float64 `json:"us"`
				Result string  `json:"result"`
				Home   uint32  `json:"home"`
				Rows   int32   `json:"rows"`
				Found  bool    `json:"found"`
				Probes []struct {
					Bucket  uint32 `json:"bucket"`
					Slots   int32  `json:"slots"`
					Matches int32  `json:"matches"`
					Hit     bool   `json:"hit"`
				} `json:"probes"`
				Spans []struct {
					Kind string `json:"kind"`
				} `json:"spans"`
			} `json:"entries"`
		} `json:"slowlog"`
		Sampled struct {
			Len     int   `json:"len"`
			Entries []any `json:"entries"`
		} `json:"sampled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("handler output not JSON: %v\n%s", err, rec.Body.String())
	}
	if v.Policy.Sample != 2 || v.Policy.SlowlogUs != 0 || v.Policy.Ring != 8 {
		t.Fatalf("policy = %+v", v.Policy)
	}
	if v.Seen != 1 || v.Slowlog.Len != 1 || len(v.Slowlog.Entries) != 1 {
		t.Fatalf("retention: seen=%d slowlog.len=%d entries=%d", v.Seen, v.Slowlog.Len, len(v.Slowlog.Entries))
	}
	e := v.Slowlog.Entries[0]
	if e.Cmd != "SEARCH" || e.Engine != "db" || e.Key != "dead" || e.Result != "HIT" || !e.Found {
		t.Fatalf("entry identity: %+v", e)
	}
	if e.Us != 5 || e.Rows != 1 || e.Home != 1 {
		t.Fatalf("entry measurements: %+v", e)
	}
	if len(e.Probes) != 1 || e.Probes[0].Bucket != 1 || e.Probes[0].Slots != 4 || !e.Probes[0].Hit {
		t.Fatalf("entry probes: %+v", e.Probes)
	}
	sawMatch, sawEncode := false, false
	for _, s := range e.Spans {
		switch s.Kind {
		case "match":
			sawMatch = true
		case "encode":
			sawEncode = true
		}
	}
	if !sawMatch || !sawEncode {
		t.Fatalf("entry spans missing match/encode: %+v", e.Spans)
	}
	if v.Sampled.Len != 0 || len(v.Sampled.Entries) != 0 {
		t.Fatalf("sampled ring should be empty: %+v", v.Sampled)
	}

	// The nil collector serves the disabled sentinel.
	rec = httptest.NewRecorder()
	(*Collector)(nil).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Body.String() != "{\"disabled\":true}\n" {
		t.Fatalf("nil collector handler = %q", rec.Body.String())
	}
}
