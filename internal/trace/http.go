package trace

import (
	"encoding/json"
	"net/http"
	"time"
)

// JSON shapes for the /debug/traces endpoint. The wire SLOWLOG command
// is the terse, single-line view; this endpoint is the full structured
// dump a human (or the metrics-smoke gate) reads.

type probeJSON struct {
	Bucket       uint32 `json:"bucket"`
	Displacement int32  `json:"d"`
	Slots        int32  `json:"slots"`
	Matches      int32  `json:"matches"`
	Overflow     bool   `json:"ovf"`
	Hit          bool   `json:"hit"`
}

type spanJSON struct {
	Kind     string `json:"kind"`
	OffsetNs int64  `json:"offset_ns"`
	DurNs    int64  `json:"dur_ns"`
}

// hopJSON is a router-side span: one event of the proxied request's
// journey through the backend pools. Backend is the pool index (the
// stitcher maps it to a label); Span is the child span id for
// backend_rtt hops.
type hopJSON struct {
	Kind     string `json:"kind"`
	Backend  uint32 `json:"backend"`
	Span     uint32 `json:"span,omitempty"`
	N        int32  `json:"n,omitempty"`
	Open     bool   `json:"open,omitempty"`
	OffsetNs int64  `json:"offset_ns"`
	DurNs    int64  `json:"dur_ns"`
}

type entryJSON struct {
	ID        uint64      `json:"id"`
	TID       string      `json:"tid,omitempty"` // wire trace id, hex
	Span      uint32      `json:"span,omitempty"`
	Cmd       string      `json:"cmd"`
	Engine    string      `json:"engine,omitempty"`
	Key       string      `json:"key,omitempty"`
	StartUnix int64       `json:"start_unix_ns"`
	Us        float64     `json:"us"`
	Result    string      `json:"result,omitempty"`
	Home      uint32      `json:"home"`
	Reach     int32       `json:"reach"`
	Rows      int32       `json:"rows"`
	Found     bool        `json:"found"`
	Expected  float64     `json:"expected_rows,omitempty"`
	Probes    []probeJSON `json:"probes,omitempty"`
	Spans     []spanJSON  `json:"spans,omitempty"`
	Hops      []hopJSON   `json:"hops,omitempty"`
}

type ringJSON struct {
	Len     int         `json:"len"`
	Total   uint64      `json:"total"`
	Entries []entryJSON `json:"entries"`
}

type tracesJSON struct {
	Policy struct {
		SampleN   int   `json:"sample"`
		SlowlogUs int64 `json:"slowlog_us"` // -1 when the slowlog is off
		Ring      int   `json:"ring"`
	} `json:"policy"`
	Seen    uint64   `json:"seen"`
	Slowlog ringJSON `json:"slowlog"`
	Tagged  ringJSON `json:"tagged"`
	Sampled ringJSON `json:"sampled"`
}

func entryView(t *Trace) entryJSON {
	e := entryJSON{
		ID:        t.ID,
		Cmd:       t.Cmd,
		Engine:    t.Engine,
		Key:       t.Key,
		StartUnix: t.Begin.UnixNano(),
		Us:        float64(t.Dur) / float64(time.Microsecond),
		Result:    t.Result,
		Home:      t.Home,
		Reach:     t.Reach,
		Rows:      t.Rows,
		Found:     t.Found,
	}
	if t.TID != 0 {
		e.TID = formatHex(t.TID)
		e.Span = t.SpanID
	}
	for _, ev := range t.Events {
		switch ev.Kind {
		case KindProbe:
			e.Probes = append(e.Probes, probeJSON{
				Bucket:       ev.Bucket,
				Displacement: ev.Displacement,
				Slots:        ev.SlotsTested,
				Matches:      ev.Matches,
				Overflow:     ev.Overflow,
				Hit:          ev.Hit,
			})
		case KindOverflow, KindEcc:
			// Positional, untimed events: render kind-only.
			e.Spans = append(e.Spans, spanJSON{Kind: ev.Kind.String()})
		case KindRoute, KindQueue, KindRTT, KindBurst, KindBreaker, KindRetry:
			h := hopJSON{
				Kind:     ev.Kind.String(),
				Backend:  ev.Bucket,
				Span:     ev.Span,
				OffsetNs: int64(ev.Offset),
				DurNs:    int64(ev.Dur),
				Open:     ev.Hit,
			}
			if ev.Kind == KindBurst || ev.Kind == KindRetry {
				h.N = ev.Matches
			}
			e.Hops = append(e.Hops, h)
		default:
			e.Spans = append(e.Spans, spanJSON{
				Kind:     ev.Kind.String(),
				OffsetNs: int64(ev.Offset),
				DurNs:    int64(ev.Dur),
			})
		}
	}
	return e
}

func formatHex(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	i := len(b)
	for {
		i--
		b[i] = digits[v&0xf]
		v >>= 4
		if v == 0 {
			break
		}
	}
	return string(b[i:])
}

// AppendJSON appends the trace's compact single-line JSON entry — the
// same shape /debug/traces serves — to dst. expected, when positive,
// is the engine's §3.4 analytic expected-rows value computed at fetch
// time; it rides along so a stitched view can show measured probe
// chains next to the model. This is the payload of the TRACE GET wire
// reply; it allocates and is not for hot paths.
func (t *Trace) AppendJSON(dst []byte, expected float64) []byte {
	if t == nil {
		return append(dst, "null"...)
	}
	e := entryView(t)
	if expected > 0 {
		e.Expected = expected
	}
	b, err := json.Marshal(e)
	if err != nil { // unreachable: entryJSON has no unmarshalable fields
		return append(dst, "null"...)
	}
	return append(dst, b...)
}

func ringView(r *Ring, max int) ringJSON {
	v := ringJSON{Len: r.Len(), Total: r.Total(), Entries: []entryJSON{}}
	for _, t := range r.Snapshot(nil, max) {
		v.Entries = append(v.Entries, entryView(t))
	}
	return v
}

// Handler serves the collector's state as JSON — mounted by the
// server's metrics mux at /debug/traces. The optional ?n= query bounds
// how many entries of each ring are returned (default 32).
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if c == nil {
			_, _ = w.Write([]byte(`{"disabled":true}` + "\n"))
			return
		}
		max := 32
		if q := req.URL.Query().Get("n"); q != "" {
			// Tolerant parse: anything non-numeric keeps the default.
			n := 0
			for i := 0; i < len(q) && q[i] >= '0' && q[i] <= '9'; i++ {
				n = n*10 + int(q[i]-'0')
			}
			if n > 0 {
				max = n
			}
		}
		var v tracesJSON
		v.Policy.SampleN = c.SampleN()
		v.Policy.SlowlogUs = -1
		if thr, ok := c.SlowThreshold(); ok {
			v.Policy.SlowlogUs = int64(thr / time.Microsecond)
		}
		v.Policy.Ring = c.slow.Cap()
		v.Seen = c.Seen()
		v.Slowlog = ringView(c.slow, max)
		v.Tagged = ringView(c.tagged, max)
		v.Sampled = ringView(c.sampled, max)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
}
