package trace

import (
	"encoding/json"
	"net/http"
	"time"
)

// JSON shapes for the /debug/traces endpoint. The wire SLOWLOG command
// is the terse, single-line view; this endpoint is the full structured
// dump a human (or the metrics-smoke gate) reads.

type probeJSON struct {
	Bucket       uint32 `json:"bucket"`
	Displacement int32  `json:"d"`
	Slots        int32  `json:"slots"`
	Matches      int32  `json:"matches"`
	Overflow     bool   `json:"ovf"`
	Hit          bool   `json:"hit"`
}

type spanJSON struct {
	Kind     string `json:"kind"`
	OffsetNs int64  `json:"offset_ns"`
	DurNs    int64  `json:"dur_ns"`
}

type entryJSON struct {
	ID        uint64      `json:"id"`
	Cmd       string      `json:"cmd"`
	Engine    string      `json:"engine,omitempty"`
	Key       string      `json:"key,omitempty"`
	StartUnix int64       `json:"start_unix_ns"`
	Us        float64     `json:"us"`
	Result    string      `json:"result,omitempty"`
	Home      uint32      `json:"home"`
	Reach     int32       `json:"reach"`
	Rows      int32       `json:"rows"`
	Found     bool        `json:"found"`
	Probes    []probeJSON `json:"probes,omitempty"`
	Spans     []spanJSON  `json:"spans,omitempty"`
}

type ringJSON struct {
	Len     int         `json:"len"`
	Total   uint64      `json:"total"`
	Entries []entryJSON `json:"entries"`
}

type tracesJSON struct {
	Policy struct {
		SampleN   int   `json:"sample"`
		SlowlogUs int64 `json:"slowlog_us"` // -1 when the slowlog is off
		Ring      int   `json:"ring"`
	} `json:"policy"`
	Seen    uint64   `json:"seen"`
	Slowlog ringJSON `json:"slowlog"`
	Sampled ringJSON `json:"sampled"`
}

func entryView(t *Trace) entryJSON {
	e := entryJSON{
		ID:        t.ID,
		Cmd:       t.Cmd,
		Engine:    t.Engine,
		Key:       t.Key,
		StartUnix: t.Begin.UnixNano(),
		Us:        float64(t.Dur) / float64(time.Microsecond),
		Result:    t.Result,
		Home:      t.Home,
		Reach:     t.Reach,
		Rows:      t.Rows,
		Found:     t.Found,
	}
	for _, ev := range t.Events {
		switch ev.Kind {
		case KindProbe:
			e.Probes = append(e.Probes, probeJSON{
				Bucket:       ev.Bucket,
				Displacement: ev.Displacement,
				Slots:        ev.SlotsTested,
				Matches:      ev.Matches,
				Overflow:     ev.Overflow,
				Hit:          ev.Hit,
			})
		case KindOverflow, KindEcc:
			// Positional, untimed events: render kind-only.
			e.Spans = append(e.Spans, spanJSON{Kind: ev.Kind.String()})
		default:
			e.Spans = append(e.Spans, spanJSON{
				Kind:     ev.Kind.String(),
				OffsetNs: int64(ev.Offset),
				DurNs:    int64(ev.Dur),
			})
		}
	}
	return e
}

func ringView(r *Ring, max int) ringJSON {
	v := ringJSON{Len: r.Len(), Total: r.Total(), Entries: []entryJSON{}}
	for _, t := range r.Snapshot(nil, max) {
		v.Entries = append(v.Entries, entryView(t))
	}
	return v
}

// Handler serves the collector's state as JSON — mounted by the
// server's metrics mux at /debug/traces. The optional ?n= query bounds
// how many entries of each ring are returned (default 32).
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if c == nil {
			_, _ = w.Write([]byte(`{"disabled":true}` + "\n"))
			return
		}
		max := 32
		if q := req.URL.Query().Get("n"); q != "" {
			// Tolerant parse: anything non-numeric keeps the default.
			n := 0
			for i := 0; i < len(q) && q[i] >= '0' && q[i] <= '9'; i++ {
				n = n*10 + int(q[i]-'0')
			}
			if n > 0 {
				max = n
			}
		}
		var v tracesJSON
		v.Policy.SampleN = c.SampleN()
		v.Policy.SlowlogUs = -1
		if thr, ok := c.SlowThreshold(); ok {
			v.Policy.SlowlogUs = int64(thr / time.Microsecond)
		}
		v.Policy.Ring = c.slow.Cap()
		v.Seen = c.Seen()
		v.Slowlog = ringView(c.slow, max)
		v.Sampled = ringView(c.sampled, max)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
}
