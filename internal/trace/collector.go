package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Collector. The zero value keeps both
// admission policies off (traces are still recorded and pooled, so
// EXPLAIN-style forced traces and per-request logging keep working).
type Config struct {
	// SampleN admits every Nth request into the sampled ring
	// (1-in-N). 0 or negative disables sampling. The sampler is
	// counter-based, not random, so admission is deterministic for a
	// scripted session.
	SampleN int
	// Slowlog is the slowlog latency threshold: a request is admitted
	// exactly when its wall latency exceeds it (strictly greater, the
	// Redis convention). A negative threshold disables the slowlog; 0
	// admits everything with nonzero latency.
	Slowlog time.Duration
	// Ring is the capacity of each retention ring (sampled and
	// slowlog). 0 means DefaultRing.
	Ring int
}

// DefaultRing is the per-policy retention when Config.Ring is 0.
const DefaultRing = 128

// Collector owns trace retention for a server: a pool of reusable
// traces, the two admission policies, and their rings. All methods are
// safe for concurrent use and safe on a nil receiver (a nil Collector
// is "tracing off": Begin returns a nil Trace and every downstream
// recording call no-ops).
type Collector struct {
	sampleN int64
	slowNs  int64

	seen    atomic.Uint64 // requests begun (drives the 1-in-N sampler)
	sampled *Ring
	slow    *Ring
	tagged  *Ring // wire-propagated traces (*TID) a parent tier may fetch
	pool    sync.Pool
}

// NewCollector builds a collector with the given policies.
func NewCollector(cfg Config) *Collector {
	size := cfg.Ring
	if size <= 0 {
		size = DefaultRing
	}
	slowNs := int64(cfg.Slowlog)
	if cfg.Slowlog < 0 {
		slowNs = -1
	}
	sampleN := int64(cfg.SampleN)
	if sampleN < 0 {
		sampleN = 0
	}
	return &Collector{
		sampleN: sampleN,
		slowNs:  slowNs,
		sampled: NewRing(size),
		slow:    NewRing(size),
		tagged:  NewRing(size),
		pool: sync.Pool{New: func() any {
			return &Trace{Events: make([]Event, 0, 16)}
		}},
	}
}

// Enabled reports whether the collector is live.
func (c *Collector) Enabled() bool { return c != nil }

// SampleN returns the 1-in-N sampling rate (0 = off).
func (c *Collector) SampleN() int {
	if c == nil {
		return 0
	}
	return int(c.sampleN)
}

// SlowThreshold returns the slowlog threshold, or ok=false when the
// slowlog is disabled.
func (c *Collector) SlowThreshold() (time.Duration, bool) {
	if c == nil || c.slowNs < 0 {
		return 0, false
	}
	return time.Duration(c.slowNs), true
}

// Seen returns how many requests have begun tracing.
func (c *Collector) Seen() uint64 {
	if c == nil {
		return 0
	}
	return c.seen.Load()
}

// Sampled returns the sampled-trace ring (nil on a nil collector).
func (c *Collector) Sampled() *Ring {
	if c == nil {
		return nil
	}
	return c.sampled
}

// Slow returns the slowlog ring (nil on a nil collector).
func (c *Collector) Slow() *Ring {
	if c == nil {
		return nil
	}
	return c.slow
}

// Tagged returns the wire-propagated trace ring (nil on a nil
// collector): traces that carried a *TID annotation but were neither
// slow nor sampled, retained so the tagging tier can stitch them.
func (c *Collector) Tagged() *Ring {
	if c == nil {
		return nil
	}
	return c.tagged
}

// SlowAdmit is the slowlog admission predicate: latency strictly
// greater than the threshold, never on a disabled slowlog. Exposed so
// the admission property ("admitted exactly when d > threshold") is
// directly testable.
func (c *Collector) SlowAdmit(d time.Duration) bool {
	return c != nil && c.slowNs >= 0 && int64(d) > c.slowNs
}

// Begin starts tracing one request. It returns nil — tracing off for
// this request — only on a nil collector; otherwise the trace comes
// from the pool, so the steady-state cost of an unadmitted trace is a
// clock read and zero allocations.
func (c *Collector) Begin() *Trace {
	if c == nil {
		return nil
	}
	t := c.pool.Get().(*Trace)
	n := c.seen.Add(1)
	t.Begin = time.Now()
	t.sampled = c.sampleN > 0 && n%uint64(c.sampleN) == 0
	return t
}

// End finishes a request trace: it stamps the wall latency, applies
// both admission policies, and either retains the trace (slowlog wins
// over the sampled ring) or recycles it. It returns whether the
// request entered the slowlog, so the server can log it. Safe on nil
// collector/trace.
func (c *Collector) End(t *Trace) (slow bool) {
	if c == nil || t == nil {
		return false
	}
	return c.Observe(t, time.Since(t.Begin))
}

// Observe is End with an explicit latency, the seam the admission
// property test drives with synthetic durations.
func (c *Collector) Observe(t *Trace, d time.Duration) (slow bool) {
	if c == nil || t == nil {
		return false
	}
	t.Dur = d
	// A trace lands in exactly one ring (Ring.Put rewrites Trace.ID, so
	// double admission would corrupt the older ring's slot validation).
	// Priority: slowlog > tagged > sampled.
	switch {
	case c.SlowAdmit(d):
		t.detach()
		c.slow.Put(t)
		return true
	case t.TID != 0:
		t.detach()
		c.tagged.Put(t)
		return false
	case t.sampled:
		t.detach()
		c.sampled.Put(t)
		return false
	default:
		t.reset()
		c.pool.Put(t)
		return false
	}
}

// Eligible reports whether the trace has any chance of being retained
// under the collector's policies: it was picked by the sampler, or the
// slowlog is on (any request may turn out slow). Parent tiers use it
// to decide whether tagging downstream requests is worth the bytes —
// with sampling and the slowlog both off, Eligible is false for every
// trace and the forward path stays allocation-free.
func (c *Collector) Eligible(t *Trace) bool {
	return c != nil && t != nil && (t.sampled || c.slowNs >= 0)
}

// Find returns the newest retained trace carrying the wire trace id
// tid (and, when span is nonzero, exactly that span id), scanning the
// slowlog, tagged, and sampled rings. It is the lookup behind the
// TRACE GET wire command; a miss — never admitted, or already evicted
// by ring wraparound — returns nil.
func (c *Collector) Find(tid uint64, span uint32) *Trace {
	if c == nil || tid == 0 {
		return nil
	}
	var buf []*Trace
	for _, r := range []*Ring{c.slow, c.tagged, c.sampled} {
		buf = r.Snapshot(buf[:0], r.Cap())
		for _, t := range buf { // Snapshot is newest first
			if t.TID == tid && (span == 0 || t.SpanID == span) {
				return t
			}
		}
	}
	return nil
}
