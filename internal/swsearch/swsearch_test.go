package swsearch

import (
	"math/rand"
	"testing"
)

func TestLinkedList(t *testing.T) {
	l := &LinkedList{}
	for i := 0; i < 10; i++ {
		l.Insert(Entry{Key: uint64(i), Value: uint64(i * 10)})
	}
	if l.Len() != 10 {
		t.Errorf("Len = %d", l.Len())
	}
	e, ok := l.Lookup(7)
	if !ok || e.Value != 70 {
		t.Fatalf("Lookup(7) = %+v, %v", e, ok)
	}
	if _, ok := l.Lookup(99); ok {
		t.Error("phantom hit")
	}
	// Key 7 was inserted 8th from the end, list is LIFO: 3 accesses.
	c := l.Counter()
	if c.Lookups != 2 {
		t.Errorf("Lookups = %d", c.Lookups)
	}
	// Miss costs a full scan of 10.
	if c.Accesses != 3+10 {
		t.Errorf("Accesses = %d, want 13", c.Accesses)
	}
	if c.AMAL() != 6.5 {
		t.Errorf("AMAL = %f", c.AMAL())
	}
}

func TestSortedTable(t *testing.T) {
	var entries []Entry
	for i := 0; i < 1024; i++ {
		entries = append(entries, Entry{Key: uint64(i * 2), Value: uint64(i)})
	}
	st := Build(entries)
	if st.Len() != 1024 {
		t.Errorf("Len = %d", st.Len())
	}
	for i := 0; i < 1024; i += 97 {
		e, ok := st.Lookup(uint64(i * 2))
		if !ok || e.Value != uint64(i) {
			t.Fatalf("Lookup(%d) = %+v, %v", i*2, e, ok)
		}
	}
	if _, ok := st.Lookup(3); ok {
		t.Error("odd key found")
	}
	// Binary search: at most ~log2(1024)+1 probes per lookup.
	c := st.Counter()
	if perLookup := c.AMAL(); perLookup > 11 {
		t.Errorf("binary search AMAL = %f", perLookup)
	}
}

func TestBuildDoesNotAliasInput(t *testing.T) {
	in := []Entry{{Key: 3}, {Key: 1}, {Key: 2}}
	st := Build(in)
	in[0].Key = 999
	if _, ok := st.Lookup(3); !ok {
		t.Error("table shares storage with caller")
	}
}

func TestHashTable(t *testing.T) {
	h := NewHashTable(6)
	for i := 0; i < 500; i++ {
		h.Insert(Entry{Key: uint64(i), Value: uint64(i)})
	}
	if h.Len() != 500 {
		t.Errorf("Len = %d", h.Len())
	}
	if lf := h.LoadFactor(); lf != 500.0/64 {
		t.Errorf("LoadFactor = %f", lf)
	}
	for i := 0; i < 500; i += 13 {
		e, ok := h.Lookup(uint64(i))
		if !ok || e.Value != uint64(i) {
			t.Fatalf("Lookup(%d) failed", i)
		}
	}
	if _, ok := h.Lookup(10000); ok {
		t.Error("phantom hit")
	}
	// Replacement keeps Len stable.
	h.Insert(Entry{Key: 5, Value: 99})
	if h.Len() != 500 {
		t.Error("replace grew the table")
	}
	if e, _ := h.Lookup(5); e.Value != 99 {
		t.Error("replace did not update value")
	}
	// Chained hashing with alpha ~8: a handful of accesses per lookup.
	if amal := h.Counter().AMAL(); amal < 1 || amal > 16 {
		t.Errorf("hash AMAL = %f", amal)
	}
	if NewHashTable(0).mask != 1 {
		t.Error("bits clamp failed")
	}
}

// Relative cost ordering on the same workload: hash < binary search <
// linked list, the premise of §2.1.
func TestBaselineOrdering(t *testing.T) {
	const n = 2000
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	ll := &LinkedList{}
	var entries []Entry
	h := NewHashTable(10)
	for i, k := range keys {
		e := Entry{Key: k, Value: uint64(i)}
		ll.Insert(e)
		entries = append(entries, e)
		h.Insert(e)
	}
	st := Build(entries)
	for i := 0; i < 500; i++ {
		k := keys[rng.Intn(n)]
		if _, ok := ll.Lookup(k); !ok {
			t.Fatal("list miss")
		}
		if _, ok := st.Lookup(k); !ok {
			t.Fatal("table miss")
		}
		if _, ok := h.Lookup(k); !ok {
			t.Fatal("hash miss")
		}
	}
	la, sa, ha := ll.Counter().AMAL(), st.Counter().AMAL(), h.Counter().AMAL()
	if !(ha < sa && sa < la) {
		t.Errorf("ordering violated: hash %.1f, sorted %.1f, list %.1f", ha, sa, la)
	}
}

func TestCounterZero(t *testing.T) {
	if (Counter{}).AMAL() != 0 {
		t.Error("empty counter AMAL")
	}
}
