package swsearch

// Binary tries for longest-prefix match — the software IP-lookup
// baseline of §4.1 ("software-based approaches usually require at
// least 4 to 6 memory accesses for forwarding one packet"). Trie is a
// plain unibit trie: one node visit (= one memory access) per prefix
// bit. PathTrie applies path compression, skipping single-child runs,
// which shortens chains but still leaves several dependent accesses.

// Trie is a unibit binary trie over fixed-width keys.
type Trie struct {
	root  *trieNode
	width int
	n     int
	ctr   Counter
}

type trieNode struct {
	child  [2]*trieNode
	hasVal bool
	value  uint64
}

// NewTrie builds a trie over keys of the given bit width (e.g. 32 for
// IPv4 addresses). The most significant bit branches first.
func NewTrie(width int) *Trie {
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	return &Trie{root: &trieNode{}, width: width}
}

// Insert stores value under the prefix given by the top length bits of
// key. length 0 installs a default route at the root.
func (t *Trie) Insert(key uint64, length int, value uint64) {
	if length < 0 {
		length = 0
	}
	if length > t.width {
		length = t.width
	}
	n := t.root
	for i := 0; i < length; i++ {
		b := key >> uint(t.width-1-i) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	if !n.hasVal {
		t.n++
	}
	n.hasVal = true
	n.value = value
}

// Lookup returns the longest-prefix match for key, charging one memory
// access per node visited.
func (t *Trie) Lookup(key uint64) (value uint64, length int, ok bool) {
	t.ctr.Lookups++
	n := t.root
	t.ctr.Accesses++
	if n.hasVal {
		value, length, ok = n.value, 0, true
	}
	for i := 0; i < t.width; i++ {
		b := key >> uint(t.width-1-i) & 1
		if n.child[b] == nil {
			break
		}
		n = n.child[b]
		t.ctr.Accesses++
		if n.hasVal {
			value, length, ok = n.value, i+1, true
		}
	}
	return value, length, ok
}

// Len returns the number of stored prefixes.
func (t *Trie) Len() int { return t.n }

// Counter returns the access counter.
func (t *Trie) Counter() Counter { return t.ctr }

// MaxDepth returns the deepest node, an upper bound on per-lookup
// accesses.
func (t *Trie) MaxDepth() int { return maxDepth(t.root) }

func maxDepth(n *trieNode) int {
	if n == nil {
		return 0
	}
	d := maxDepth(n.child[0])
	if r := maxDepth(n.child[1]); r > d {
		d = r
	}
	return d + 1
}

// PathTrie is a path-compressed binary trie: chains of single-child,
// valueless nodes are skipped by storing a skip stride, so a lookup
// performs one access per *branching or valued* node only.
type PathTrie struct {
	root  *pathNode
	width int
	n     int
	ctr   Counter
}

type pathNode struct {
	// skipLen bits of skipBits (MSB-aligned within skipLen) are
	// consumed before this node's branch point.
	skipBits uint64
	skipLen  int
	child    [2]*pathNode
	hasVal   bool
	value    uint64
	valLen   int // prefix length of the stored value
}

// NewPathTrie builds a path-compressed trie over keys of the given
// width.
func NewPathTrie(width int) *PathTrie {
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	return &PathTrie{width: width}
}

// Insert stores value under the top length bits of key. For simplicity
// and correctness the compressed trie is rebuilt from a side list on
// each insert batch boundary; Insert here performs direct incremental
// insertion by splitting compressed edges.
func (p *PathTrie) Insert(key uint64, length int, value uint64) {
	if length < 0 {
		length = 0
	}
	if length > p.width {
		length = p.width
	}
	key = extract(key, p.width, 0, length) << uint(64-length) >> uint(64-max(length, 1)) // normalized top bits
	p.root = p.insert(p.root, key, length, 0, value, length)
	// n is maintained inside insert via pointer; recompute lazily is
	// costly — track with a walk-free counter instead:
}

// insert places the remaining prefix bits (bits [depth, length) of the
// original prefix, MSB-first in key's low 'length' bits) below n.
func (p *PathTrie) insert(n *pathNode, key uint64, length, depth int, value uint64, valLen int) *pathNode {
	rem := length - depth
	if n == nil {
		p.n++
		return &pathNode{
			skipBits: extractLow(key, length, depth, rem),
			skipLen:  rem,
			hasVal:   true,
			value:    value,
			valLen:   valLen,
		}
	}
	// Compare against n's skip run.
	common := 0
	for common < n.skipLen && common < rem {
		if bitOf(n.skipBits, n.skipLen, common) != bitOf(extractLow(key, length, depth, rem), rem, common) {
			break
		}
		common++
	}
	if common < n.skipLen {
		// Split n's edge at 'common'.
		tail := &pathNode{
			skipBits: lowBits(n.skipBits, n.skipLen, common+1),
			skipLen:  n.skipLen - common - 1,
			child:    n.child,
			hasVal:   n.hasVal,
			value:    n.value,
			valLen:   n.valLen,
		}
		branch := &pathNode{
			skipBits: highBits(n.skipBits, n.skipLen, common),
			skipLen:  common,
		}
		branch.child[bitOf(n.skipBits, n.skipLen, common)] = tail
		if common == rem {
			// New prefix ends exactly at the branch point.
			branch.hasVal, branch.value, branch.valLen = true, value, valLen
			p.n++
		} else {
			nb := bitOf(extractLow(key, length, depth, rem), rem, common)
			branch.child[nb] = p.insert(nil, key, length, depth+common+1, value, valLen)
		}
		return branch
	}
	// The whole skip run matched.
	if rem == n.skipLen {
		if !n.hasVal {
			p.n++
		}
		n.hasVal, n.value, n.valLen = true, value, valLen
		return n
	}
	b := bitOf(extractLow(key, length, depth, rem), rem, n.skipLen)
	n.child[b] = p.insert(n.child[b], key, length, depth+n.skipLen+1, value, valLen)
	return n
}

// Lookup returns the longest-prefix match for key, charging one access
// per compressed node visited.
func (p *PathTrie) Lookup(key uint64) (value uint64, length int, ok bool) {
	p.ctr.Lookups++
	n := p.root
	depth := 0
	for n != nil {
		p.ctr.Accesses++
		// Verify the skip run.
		matched := true
		for i := 0; i < n.skipLen; i++ {
			if depth+i >= p.width || bitOf(n.skipBits, n.skipLen, i) != key>>uint(p.width-1-depth-i)&1 {
				matched = false
				break
			}
		}
		if !matched {
			break
		}
		depth += n.skipLen
		if n.hasVal {
			value, length, ok = n.value, n.valLen, true
		}
		if depth >= p.width {
			break
		}
		b := key >> uint(p.width-1-depth) & 1
		n = n.child[b]
		depth++
	}
	return value, length, ok
}

// Len returns the number of stored prefixes.
func (p *PathTrie) Len() int { return p.n }

// Counter returns the access counter.
func (p *PathTrie) Counter() Counter { return p.ctr }

// Bit-string helpers: a run of L bits is stored MSB-first in the low L
// bits of a uint64.

func bitOf(run uint64, runLen, i int) uint64 { return run >> uint(runLen-1-i) & 1 }

func lowBits(run uint64, runLen, from int) uint64 {
	if from >= runLen {
		return 0
	}
	return run & (1<<uint(runLen-from) - 1)
}

func highBits(run uint64, runLen, count int) uint64 {
	if count <= 0 {
		return 0
	}
	return run >> uint(runLen-count)
}

// extract returns bits [from, from+count) of the top 'width' bits of
// key, MSB-first in the low bits of the result.
func extract(key uint64, width, from, count int) uint64 {
	if count <= 0 {
		return 0
	}
	return key >> uint(width-from-count) & (1<<uint(count) - 1)
}

// extractLow returns bits [depth, depth+count) of a prefix whose top
// 'length' bits sit in key's low 'length' bits.
func extractLow(key uint64, length, depth, count int) uint64 {
	if count <= 0 {
		return 0
	}
	return key >> uint(length-depth-count) & (1<<uint(count) - 1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
