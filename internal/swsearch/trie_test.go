package swsearch

import (
	"math/rand"
	"testing"
)

func TestTrieBasicLPM(t *testing.T) {
	tr := NewTrie(8)
	tr.Insert(0b11000000, 2, 1) // 11*
	tr.Insert(0b11010000, 4, 2) // 1101*
	tr.Insert(0, 0, 99)         // default route

	v, l, ok := tr.Lookup(0b11011111)
	if !ok || v != 2 || l != 4 {
		t.Errorf("Lookup = %d/%d/%v, want 2/4", v, l, ok)
	}
	v, l, ok = tr.Lookup(0b11100000)
	if !ok || v != 1 || l != 2 {
		t.Errorf("Lookup = %d/%d/%v, want 1/2", v, l, ok)
	}
	v, l, ok = tr.Lookup(0b00000000)
	if !ok || v != 99 || l != 0 {
		t.Errorf("default route = %d/%d/%v", v, l, ok)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTrieNoMatch(t *testing.T) {
	tr := NewTrie(8)
	tr.Insert(0b10000000, 1, 1)
	if _, _, ok := tr.Lookup(0b01111111); ok {
		t.Error("matched outside the only prefix")
	}
}

func TestTrieReinsertAndClamping(t *testing.T) {
	tr := NewTrie(8)
	tr.Insert(0xff, 8, 1)
	tr.Insert(0xff, 8, 2) // overwrite
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if v, _, _ := tr.Lookup(0xff); v != 2 {
		t.Errorf("overwrite lost: %d", v)
	}
	tr.Insert(0xaa, 100, 3) // length clamped to width
	if v, l, ok := tr.Lookup(0xaa); !ok || v != 3 || l != 8 {
		t.Errorf("clamped insert = %d/%d/%v", v, l, ok)
	}
	if NewTrie(0).width != 1 || NewTrie(100).width != 64 {
		t.Error("width clamping")
	}
}

func TestTrieAccessCounting(t *testing.T) {
	tr := NewTrie(32)
	tr.Insert(0xC0A80000, 16, 1) // 192.168/16
	tr.Lookup(0xC0A80101)
	c := tr.Counter()
	// Root + 16 nodes.
	if c.Accesses != 17 || c.Lookups != 1 {
		t.Errorf("counter = %+v", c)
	}
	if tr.MaxDepth() != 17 {
		t.Errorf("MaxDepth = %d", tr.MaxDepth())
	}
}

func TestPathTrieMatchesTrieRandom(t *testing.T) {
	const width = 16
	rng := rand.New(rand.NewSource(21))
	tr := NewTrie(width)
	pt := NewPathTrie(width)
	for i := 0; i < 400; i++ {
		l := rng.Intn(width + 1)
		key := rng.Uint64() & 0xffff
		key = key >> uint(width-l) << uint(width-l) // canonical prefix
		if l == 0 {
			key = 0
		}
		v := uint64(i + 1)
		tr.Insert(key, l, v)
		pt.Insert(key, l, v)
	}
	if tr.Len() != pt.Len() {
		t.Fatalf("Len: trie %d, pathtrie %d", tr.Len(), pt.Len())
	}
	for i := 0; i < 5000; i++ {
		addr := rng.Uint64() & 0xffff
		v1, l1, ok1 := tr.Lookup(addr)
		v2, l2, ok2 := pt.Lookup(addr)
		if ok1 != ok2 || v1 != v2 || l1 != l2 {
			t.Fatalf("addr %04x: trie %d/%d/%v, pathtrie %d/%d/%v",
				addr, v1, l1, ok1, v2, l2, ok2)
		}
	}
	// Path compression must not be more expensive than unibit walking.
	if pt.Counter().AMAL() > tr.Counter().AMAL() {
		t.Errorf("path trie AMAL %.2f > trie %.2f", pt.Counter().AMAL(), tr.Counter().AMAL())
	}
}

func TestPathTrieDefaultRoute(t *testing.T) {
	pt := NewPathTrie(8)
	pt.Insert(0, 0, 42)
	v, l, ok := pt.Lookup(0x5a)
	if !ok || v != 42 || l != 0 {
		t.Errorf("default route = %d/%d/%v", v, l, ok)
	}
	pt.Insert(0x5a, 8, 7)
	if v, _, _ := pt.Lookup(0x5a); v != 7 {
		t.Error("specific route lost")
	}
	if v, _, _ := pt.Lookup(0x00); v != 42 {
		t.Error("default route lost after split")
	}
}

func TestPathTrieEdgeSplit(t *testing.T) {
	pt := NewPathTrie(8)
	pt.Insert(0b11110000, 8, 1)
	pt.Insert(0b11000000, 2, 2) // splits the single compressed edge
	if v, l, ok := pt.Lookup(0b11110000); !ok || v != 1 || l != 8 {
		t.Errorf("long = %d/%d/%v", v, l, ok)
	}
	if v, l, ok := pt.Lookup(0b11001111); !ok || v != 2 || l != 2 {
		t.Errorf("short = %d/%d/%v", v, l, ok)
	}
	if _, _, ok := pt.Lookup(0b00110000); ok {
		t.Error("phantom match")
	}
}

// The §4.1 claim: software LPM needs ~4-6+ dependent accesses; a
// realistic prefix set in a path-compressed trie still averages well
// above 2.
func TestSoftwareLPMNeedsManyAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pt := NewPathTrie(32)
	for i := 0; i < 20000; i++ {
		l := 16 + rng.Intn(9) // /16../24
		key := rng.Uint64() & 0xffffffff
		key = key >> uint(32-l) << uint(32-l)
		pt.Insert(key, l, uint64(i))
	}
	for i := 0; i < 10000; i++ {
		pt.Lookup(rng.Uint64() & 0xffffffff)
	}
	if amal := pt.Counter().AMAL(); amal < 2 {
		t.Errorf("path trie AMAL = %.2f, expected pointer-chasing cost", amal)
	}
}
