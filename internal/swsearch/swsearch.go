// Package swsearch implements the software searching techniques CA-RAM
// is positioned against (§2.1): linear list traversal, sorted-table
// binary search, and chained hashing, plus binary tries for
// longest-prefix match (the software IP-lookup baseline of §4.1). Every
// structure counts the memory accesses a lookup performs — the unit the
// paper's comparison is framed in, since a pointer-chasing software
// search costs one (likely cache-missing) memory access per node.
package swsearch

import "sort"

// Counter accumulates simulated memory accesses.
type Counter struct {
	Lookups  uint64
	Accesses uint64
}

// AMAL returns the average memory accesses per lookup.
func (c Counter) AMAL() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Accesses) / float64(c.Lookups)
}

// Entry is a key/value pair for the exact-match structures.
type Entry struct {
	Key   uint64
	Value uint64
}

// LinkedList is the naive baseline: a singly linked list searched
// front to back, one memory access per node.
type LinkedList struct {
	head *listNode
	n    int
	ctr  Counter
}

type listNode struct {
	e    Entry
	next *listNode
}

// Insert prepends an entry.
func (l *LinkedList) Insert(e Entry) {
	l.head = &listNode{e: e, next: l.head}
	l.n++
}

// Lookup scans for the key, charging one access per node visited.
func (l *LinkedList) Lookup(key uint64) (Entry, bool) {
	l.ctr.Lookups++
	for n := l.head; n != nil; n = n.next {
		l.ctr.Accesses++
		if n.e.Key == key {
			return n.e, true
		}
	}
	return Entry{}, false
}

// Len returns the element count.
func (l *LinkedList) Len() int { return l.n }

// Counter returns the access counter.
func (l *LinkedList) Counter() Counter { return l.ctr }

// SortedTable is an ordered table searched by binary search: one memory
// access per probe, ~log2(n) per lookup.
type SortedTable struct {
	entries []Entry
	ctr     Counter
}

// Build sorts the entries into a table (duplicate keys keep their
// first occurrence on lookup).
func Build(entries []Entry) *SortedTable {
	t := &SortedTable{entries: append([]Entry(nil), entries...)}
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].Key < t.entries[j].Key })
	return t
}

// Lookup binary-searches for the key.
func (t *SortedTable) Lookup(key uint64) (Entry, bool) {
	t.ctr.Lookups++
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		t.ctr.Accesses++
		switch {
		case t.entries[mid].Key == key:
			return t.entries[mid], true
		case t.entries[mid].Key < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return Entry{}, false
}

// Len returns the element count.
func (t *SortedTable) Len() int { return len(t.entries) }

// Counter returns the access counter.
func (t *SortedTable) Counter() Counter { return t.ctr }

// HashTable is the software hashing technique of §2.1: M buckets of
// chained entries. A lookup costs one access for the bucket head plus
// one per chained node traversed.
type HashTable struct {
	buckets [][]Entry
	mask    uint64
	n       int
	ctr     Counter
}

// NewHashTable allocates a table with 2^bits buckets.
func NewHashTable(bits int) *HashTable {
	if bits < 1 {
		bits = 1
	}
	return &HashTable{
		buckets: make([][]Entry, 1<<uint(bits)),
		mask:    1<<uint(bits) - 1,
	}
}

func (h *HashTable) bucket(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15
	return (key >> 32) & h.mask
}

// Insert adds an entry (replacing an existing key's value).
func (h *HashTable) Insert(e Entry) {
	b := h.bucket(e.Key)
	for i := range h.buckets[b] {
		if h.buckets[b][i].Key == e.Key {
			h.buckets[b][i] = e
			return
		}
	}
	h.buckets[b] = append(h.buckets[b], e)
	h.n++
}

// Lookup walks the bucket chain.
func (h *HashTable) Lookup(key uint64) (Entry, bool) {
	h.ctr.Lookups++
	b := h.bucket(key)
	h.ctr.Accesses++ // bucket head
	for i, e := range h.buckets[b] {
		if i > 0 {
			h.ctr.Accesses++ // chained node
		}
		if e.Key == key {
			return e, true
		}
	}
	return Entry{}, false
}

// Len returns the element count.
func (h *HashTable) Len() int { return h.n }

// Counter returns the access counter.
func (h *HashTable) Counter() Counter { return h.ctr }

// LoadFactor returns entries per bucket.
func (h *HashTable) LoadFactor() float64 {
	return float64(h.n) / float64(len(h.buckets))
}
