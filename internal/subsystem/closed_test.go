package subsystem

import (
	"errors"
	"sync"
	"testing"
	"time"

	"caram/internal/caram"
	"caram/internal/trace"
)

// TestClosedOpsReturnErrClosed: after Close every operation fails with
// ErrClosed instead of panicking or deadlocking; the uncharged
// read-side inspectors stay usable.
func TestClosedOpsReturnErrClosed(t *testing.T) {
	c, names := concurrentFixture(t, 2)
	if err := c.Insert(names[0], rec(1, 10)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent

	if err := c.Insert(names[0], rec(2, 20)); !errors.Is(err, ErrClosed) {
		t.Errorf("Insert after Close: %v", err)
	}
	if _, err := c.Search(names[0], exact(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Search after Close: %v", err)
	}
	if _, err := c.SearchTraced(names[0], exact(1), trace.New()); !errors.Is(err, ErrClosed) {
		t.Errorf("SearchTraced after Close: %v", err)
	}
	if _, _, err := c.Explain(names[0], exact(1), trace.New()); !errors.Is(err, ErrClosed) {
		t.Errorf("Explain after Close: %v", err)
	}
	if err := c.Delete(names[0], exact(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after Close: %v", err)
	}
	if _, err := c.Scrub(names[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Scrub after Close: %v", err)
	}
	out := c.MSearch([]PortKey{
		{Port: names[0], Key: exact(1)},
		{Port: "nope", Key: exact(1)},
	})
	for i, r := range out {
		if !errors.Is(r.Err, ErrClosed) {
			t.Errorf("MSearch slot %d after Close: %v", i, r.Err)
		}
	}
	// Contains/Info/Health peek at engine state without the torn-down
	// batch machinery; they keep answering.
	if ok, err := c.Contains(names[0], exact(1)); err != nil || !ok {
		t.Errorf("Contains after Close = %v, %v", ok, err)
	}
	if info, err := c.Info(names[0]); err != nil || info.Count != 1 {
		t.Errorf("Info after Close = %+v, %v", info, err)
	}
	if h, err := c.Health(names[0]); err != nil || h != Healthy {
		t.Errorf("Health after Close = %v, %v", h, err)
	}
}

// TestCloseConcurrentWithOps races Close against a full mix of
// operations: every op either completes normally or reports ErrClosed,
// and nothing panics (run under -race in CI).
func TestCloseConcurrentWithOps(t *testing.T) {
	c, names := concurrentFixture(t, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for gid := 0; gid < 8; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			port := names[gid%2]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(gid)<<16 | uint64(i%500)
				if err := c.Insert(port, rec(key, key&0xff)); err != nil &&
					!errors.Is(err, ErrClosed) &&
					!errors.Is(err, caram.ErrFull) &&
					!errors.Is(err, caram.ErrExists) {
					t.Errorf("Insert: %v", err)
				}
				if _, err := c.Search(port, exact(key)); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Search: %v", err)
				}
				out := c.MSearch([]PortKey{{Port: port, Key: exact(key)}})
				if err := out[0].Err; err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("MSearch: %v", err)
				}
				if err := c.Delete(port, exact(key)); err != nil &&
					!errors.Is(err, ErrClosed) &&
					!errors.Is(err, caram.ErrNotFound) {
					t.Errorf("Delete: %v", err)
				}
			}
		}(gid)
	}
	time.Sleep(2 * time.Millisecond)
	c.Close()
	close(stop)
	wg.Wait()
	if err := c.Insert(names[0], rec(1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after racing Close: %v", err)
	}
}
