package subsystem

import (
	"errors"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/trace"
)

// eccSlice is testSlice with per-row error coding enabled.
func eccSlice(t *testing.T, probe int) *caram.Slice {
	t.Helper()
	return caram.MustNew(caram.Config{
		IndexBits:  8,
		RowBits:    4*(1+32+16) + 8,
		KeyBits:    32,
		DataBits:   16,
		ProbeLimit: probe,
		Index:      hash.NewMultShift(8),
		ECC:        true,
	})
}

// corruptRow flips two stored bits of a row directly — an injected
// uncorrectable soft error.
func corruptRow(sl *caram.Slice, idx uint32, a, b int) {
	row := sl.Array().PeekRow(idx)
	row[a>>6] ^= 1 << uint(a&63)
	row[b>>6] ^= 1 << uint(b&63)
}

func TestHealthDegradesOnQuarantineAndScrubRecovers(t *testing.T) {
	sub := New(0)
	sl := eccSlice(t, 0)
	if err := sub.AddEngine(&Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(sub)
	defer c.Close()
	for i := 0; i < 50; i++ {
		if err := c.Insert("db", rec(uint64(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if h, err := c.Health("db"); err != nil || h != Healthy {
		t.Fatalf("initial health = %v, %v", h, err)
	}
	home := sl.Index(bitutil.FromUint64(7))
	corruptRow(sl, home, 3, 97)
	sr, err := c.Search("db", exact(7))
	if err != nil || sr.Found || !sr.Erred {
		t.Fatalf("search over corrupt row = %+v, %v", sr, err)
	}
	if h, _ := c.Health("db"); h != Degraded {
		t.Fatalf("health after quarantine = %v, want degraded", h)
	}
	hi, err := c.HealthInfo("db")
	if err != nil || hi.State != Degraded || hi.Quarantined != 1 || hi.Ecc.Uncorrectable != 1 {
		t.Fatalf("HealthInfo = %+v, %v", hi, err)
	}
	// Degraded still serves: other keys answer normally.
	if sr, err := c.Search("db", exact(8)); err != nil || !sr.Found {
		t.Fatalf("degraded engine refused service: %+v, %v", sr, err)
	}
	rep, err := c.Scrub("db")
	if err != nil || rep.Released != 1 {
		t.Fatalf("scrub = %+v, %v", rep, err)
	}
	if h, _ := c.Health("db"); h != Healthy {
		t.Fatalf("health after scrub = %v, want healthy", h)
	}
	if sr, err := c.Search("db", exact(7)); err != nil || !sr.Found || sr.Erred {
		t.Fatalf("record not restored by scrub: %+v, %v", sr, err)
	}
}

func TestHealthFailedTripsCircuitBreaker(t *testing.T) {
	sub := New(0)
	sl := eccSlice(t, 0)
	if err := sub.AddEngine(&Engine{Name: "db", Main: sl}); err != nil {
		t.Fatal(err)
	}
	// One quarantined row out of 256 fails the engine under this policy.
	c := NewConcurrent(sub).SetHealthPolicy(HealthPolicy{
		DegradeQuarantined:  1,
		FailQuarantinedFrac: 1.0 / 512.0,
	})
	defer c.Close()
	for i := 0; i < 20; i++ {
		if err := c.Insert("db", rec(uint64(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	corruptRow(sl, sl.Index(bitutil.FromUint64(7)), 3, 97)
	if sr, err := c.Search("db", exact(7)); err != nil || !sr.Erred {
		t.Fatalf("detection search = %+v, %v", sr, err)
	}
	if h, _ := c.Health("db"); h != Failed {
		t.Fatalf("health = %v, want failed", h)
	}
	// Every op now fails fast, before the engine lock.
	if err := c.Insert("db", rec(99, 99)); !errors.Is(err, ErrEngineUnavailable) {
		t.Errorf("Insert on failed engine: %v", err)
	}
	if _, err := c.Search("db", exact(8)); !errors.Is(err, ErrEngineUnavailable) {
		t.Errorf("Search on failed engine: %v", err)
	}
	if err := c.Delete("db", exact(8)); !errors.Is(err, ErrEngineUnavailable) {
		t.Errorf("Delete on failed engine: %v", err)
	}
	if _, _, err := c.Explain("db", exact(8), trace.New()); !errors.Is(err, ErrEngineUnavailable) {
		t.Errorf("Explain on failed engine: %v", err)
	}
	out := c.MSearch([]PortKey{{Port: "db", Key: exact(8)}})
	if !errors.Is(out[0].Err, ErrEngineUnavailable) {
		t.Errorf("MSearch slot on failed engine: %v", out[0].Err)
	}
	// Scrub is the recovery action: it bypasses the breaker by design.
	if _, err := c.Scrub("db"); err != nil {
		t.Fatalf("scrub of failed engine: %v", err)
	}
	if h, _ := c.Health("db"); h != Healthy {
		t.Fatalf("health after scrub = %v", h)
	}
	if sr, err := c.Search("db", exact(8)); err != nil || !sr.Found {
		t.Fatalf("recovered engine: %+v, %v", sr, err)
	}
}

func TestHealthOverflowSaturationDegrades(t *testing.T) {
	sub := New(0)
	main := caram.MustNew(caram.Config{
		IndexBits:  2,
		RowBits:    4*(1+32+16) + 8,
		KeyBits:    32,
		DataBits:   16,
		ProbeLimit: caram.NoProbing,
		Index:      hash.LowBits(2),
		ECC:        true,
	})
	ovfl := cam.MustNew(cam.Config{Entries: 4, KeyBits: 32})
	if err := sub.AddEngine(&Engine{Name: "db", Main: main, Overflow: ovfl}); err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(sub) // default policy: degrade at 90% CAM occupancy
	defer c.Close()
	// Keys with low bits 0 all home at bucket 0: four fill its slots,
	// the rest divert to the 4-entry overflow CAM.
	for i := 0; i < 7; i++ {
		if err := c.Insert("db", rec(uint64(i*4), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if h, _ := c.Health("db"); h != Healthy { // 3/4 CAM < 0.9
		t.Fatalf("health below threshold = %v", h)
	}
	if err := c.Insert("db", rec(28, 7)); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.Health("db"); h != Degraded { // 4/4 CAM
		t.Fatalf("health at saturation = %v, want degraded", h)
	}
	hi, _ := c.HealthInfo("db")
	if hi.OverflowLen != 4 || hi.OverflowCap != 4 {
		t.Fatalf("HealthInfo overflow = %+v", hi)
	}
	// Scrub repairs rows, not occupancy: saturation persists, so the
	// engine stays degraded after the episode boundary.
	if _, err := c.Scrub("db"); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.Health("db"); h != Degraded {
		t.Fatalf("health after scrub = %v, want degraded (CAM still full)", h)
	}
}
