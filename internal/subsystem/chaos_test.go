package subsystem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/fault"
	"caram/internal/hash"
	"caram/internal/trace"
)

// TestChaosEngineUnderFaults is the fault-injection capstone: 32
// goroutines of mixed operations against four ECC-protected engines
// whose memory arrays have live fault injectors (random single/double
// bit flips, transient read errors, latency spikes, plus stuck cells on
// engine 0; engine 3 is the §4.3 no-probing design with a tiny overflow
// CAM so saturation-driven degradation is exercised too). Throughout
// the fault phase it asserts:
//
//   - no operation panics, deadlocks, or reports an unexpected error;
//   - no stored key is ever SILENTLY missing — a lookup of a live key
//     either hits or reports the explicit miss-with-error (Erred);
//   - each engine's health is monotone non-decreasing (no scrub runs
//     during the phase, so no transition may lower it).
//
// Then it quiesces, disables injection, scrubs every engine, and
// reconciles the books exactly — every counter on the ECC side must
// account for the injector's ledger, bit for bit:
//
//	CorrectedBits          == SingleFlips + StuckAsserts
//	Uncorrectable          == DoubleFlips
//	ScrubRepairedBits      == 2 * DoubleFlips
//	ecc ReadErrors         == injector ReadErrors
//	Corrected + ScrubBits  == BitsFlipped
//
// and every key the workers kept must be found cleanly.
func TestChaosEngineUnderFaults(t *testing.T) {
	const (
		nEngines   = 4
		nWorkers   = 32
		iterations = 120
	)
	sub := New(0)
	names := make([]string, 0, nEngines)
	slices := make([]*caram.Slice, 0, nEngines)
	injs := make([]*fault.Injector, 0, nEngines)
	for i := 0; i < nEngines; i++ {
		name := fmt.Sprintf("ch%d", i)
		cfg := caram.Config{
			IndexBits: 6,
			RowBits:   4*(1+32+16) + 8,
			KeyBits:   32,
			DataBits:  16,
			Index:     hash.NewMultShift(6),
			ECC:       true,
		}
		var ovfl *cam.Device
		if i == 3 {
			cfg.ProbeLimit = caram.NoProbing
			ovfl = cam.MustNew(cam.Config{Entries: 32, KeyBits: 32})
		}
		sl := caram.MustNew(cfg)
		fcfg := fault.Config{
			Seed:     int64(1000 + i),
			PSingle:  0.01,
			PDouble:  0.002,
			PReadErr: 0.005,
			PSpike:   0.01,
		}
		if i == 0 {
			fcfg.Stuck = []fault.StuckCell{
				{Row: 9, Word: 0, Bit: 13, Value: 1},
				{Row: 40, Word: 2, Bit: 7, Value: 1},
			}
		}
		in := fault.New(fcfg)
		sl.Array().InstallFaults(in)
		if err := sub.AddEngine(&Engine{Name: name, Main: sl, Overflow: ovfl}); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		slices = append(slices, sl)
		injs = append(injs, in)
	}
	c := NewConcurrent(sub)
	defer c.Close()
	for _, in := range injs {
		in.Enable()
	}

	// Health monitor: no scrub runs during the fault phase, so each
	// engine's health may only rise.
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		last := make([]Health, nEngines)
		for {
			for i, name := range names {
				h, err := c.Health(name)
				if err != nil {
					t.Errorf("health %s: %v", name, err)
					return
				}
				if h < last[i] {
					t.Errorf("engine %s health regressed %v -> %v without a scrub", name, last[i], h)
					return
				}
				last[i] = h
			}
			select {
			case <-stopMon:
				return
			case <-time.After(100 * time.Microsecond):
			}
		}
	}()

	// Workers: disjoint key spaces (gid<<16 | i), each tracking the
	// keys it kept so the post-scrub sweep can demand them all back.
	expected := make([][]uint64, nWorkers)
	var wg sync.WaitGroup
	for gid := 0; gid < nWorkers; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + gid)))
			port := names[gid%nEngines]
			for i := 0; i < iterations; i++ {
				key := uint64(gid)<<16 | uint64(i)
				err := c.Insert(port, rec(key, key&0xffff))
				switch {
				case err == nil:
				case errors.Is(err, ErrEngineUnavailable),
					errors.Is(err, caram.ErrFull),
					errors.Is(err, errNoCapacity):
					continue // not stored; nothing to track
				default:
					t.Errorf("insert %x on %s: %v", key, port, err)
					continue
				}
				// The key is stored: until deleted, every observation
				// must be a hit or an explicit miss-with-error.
				if sr, err := c.Search(port, exact(key)); err == nil && !sr.Found && !sr.Erred {
					t.Errorf("stored key %x silently missing on %s", key, port)
				}
				if i%7 == 3 {
					out := c.MSearch([]PortKey{{Port: port, Key: exact(key)}})
					if r := out[0]; r.Err == nil && !r.Result.Found && !r.Result.Erred {
						t.Errorf("stored key %x silently missing from MSearch on %s", key, port)
					}
				}
				if i%11 == 5 {
					if sr, _, err := c.Explain(port, exact(key), trace.New()); err == nil && !sr.Found && !sr.Erred {
						t.Errorf("stored key %x silently missing from Explain on %s", key, port)
					}
				}
				if rng.Float64() < 0.85 {
					switch err := c.Delete(port, exact(key)); {
					case err == nil:
					case errors.Is(err, ErrEngineUnavailable),
						errors.Is(err, caram.ErrNotFound):
						// Breaker tripped, or the record lives in the
						// overflow CAM (Delete only reaches the main
						// array): either way it is still stored.
						expected[gid] = append(expected[gid], key)
					default:
						t.Errorf("delete %x on %s: %v", key, port, err)
					}
				} else {
					expected[gid] = append(expected[gid], key)
				}
			}
		}(gid)
	}
	wg.Wait()
	close(stopMon)
	monWG.Wait()

	// Quiesce: stop injecting, scrub, reconcile the books exactly.
	for i, name := range names {
		injs[i].Disable()
		if _, err := c.Scrub(name); err != nil {
			t.Fatalf("scrub %s: %v", name, err)
		}
	}
	var totalFlips uint64
	for i, name := range names {
		cnt := injs[i].Counts()
		est := slices[i].EccStats()
		totalFlips += cnt.BitsFlipped
		t.Logf("%s: fetches=%d singles=%d doubles=%d stuck=%d readerrs=%d spikes=%d | corrected=%d uncorrectable=%d scrub_bits=%d skips=%d",
			name, cnt.Fetches, cnt.SingleFlips, cnt.DoubleFlips, cnt.StuckAsserts,
			cnt.ReadErrors, cnt.Spikes, est.CorrectedBits, est.Uncorrectable,
			est.ScrubRepairedBits, est.QuarantineSkips)
		if est.CorrectedBits != cnt.SingleFlips+cnt.StuckAsserts {
			t.Errorf("%s: corrected %d != singles %d + stuck %d",
				name, est.CorrectedBits, cnt.SingleFlips, cnt.StuckAsserts)
		}
		if est.Uncorrectable != cnt.DoubleFlips {
			t.Errorf("%s: uncorrectable %d != doubles %d", name, est.Uncorrectable, cnt.DoubleFlips)
		}
		if est.ScrubRepairedBits != 2*cnt.DoubleFlips {
			t.Errorf("%s: scrub-repaired bits %d != 2*doubles %d",
				name, est.ScrubRepairedBits, cnt.DoubleFlips)
		}
		if est.ReadErrors != cnt.ReadErrors {
			t.Errorf("%s: ecc read errors %d != injected %d", name, est.ReadErrors, cnt.ReadErrors)
		}
		if got := est.CorrectedBits + est.ScrubRepairedBits; got != cnt.BitsFlipped {
			t.Errorf("%s: corrected+scrubbed %d != flipped %d", name, got, cnt.BitsFlipped)
		}
		if q := slices[i].QuarantinedRows(); q != 0 {
			t.Errorf("%s: %d rows still quarantined after scrub", name, q)
		}
		h, _ := c.Health(name)
		if i == 3 {
			if h == Failed { // CAM saturation may legitimately keep it degraded
				t.Errorf("%s: still failed after scrub", name)
			}
		} else if h != Healthy {
			t.Errorf("%s: health %v after scrub, want healthy", name, h)
		}
	}
	if totalFlips == 0 {
		t.Error("chaos run injected no faults; the harness is not exercising anything")
	}

	// Every kept key answers cleanly now that the arrays are repaired.
	lost := 0
	for gid, keys := range expected {
		port := names[gid%nEngines]
		for _, key := range keys {
			if sr, err := c.Search(port, exact(key)); err != nil || !sr.Found || sr.Erred {
				t.Errorf("key %x on %s lost after scrub: %+v, %v", key, port, sr, err)
				lost++
				if lost > 10 {
					t.Fatal("too many lost keys; aborting sweep")
				}
			}
		}
	}
}
