package subsystem_test

// External-package tests for the typed-engine factory. Living outside
// package subsystem lets this file import internal/trigram (which
// itself imports subsystem, so the factory cannot) and pin the
// trigram geometry constants the factory mirrors locally.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/match"
	"caram/internal/subsystem"
	"caram/internal/trigram"
)

// matchRecord builds a record from a ternary key and a small payload.
func matchRecord(key bitutil.Ternary, data uint64) match.Record {
	return match.Record{Key: key, Data: bitutil.FromUint64(data)}
}

// TestTypedEngineGeometry checks each engine type's slice geometry
// against the workload packages' own constants — in particular the
// trigram row layout, whose KeyBytes/ScoreBits the factory duplicates
// to avoid an import cycle. If the trigram package ever changes shape,
// this is the test that breaks.
func TestTypedEngineGeometry(t *testing.T) {
	cases := []struct {
		typ               subsystem.EngineType
		keyBits, dataBits int
		ternary           bool
	}{
		{subsystem.ExactEngine, 64, 32, false},
		{subsystem.LPMEngine, 32, 32, true},
		{subsystem.PktClassEngine, 104, 32, true},
		{subsystem.TrigramEngine, trigram.KeyBytes * 8, trigram.ScoreBits, false},
	}
	for _, tc := range cases {
		e, err := subsystem.NewTypedEngine("x", tc.typ, subsystem.TypedConfig{IndexBits: 6, Slots: 4})
		if err != nil {
			t.Fatalf("%v: %v", tc.typ, err)
		}
		cfg := e.Main.Config()
		if cfg.KeyBits != tc.keyBits || cfg.DataBits != tc.dataBits || cfg.Ternary != tc.ternary {
			t.Errorf("%v: KeyBits=%d DataBits=%d Ternary=%v, want %d/%d/%v",
				tc.typ, cfg.KeyBits, cfg.DataBits, cfg.Ternary, tc.keyBits, tc.dataBits, tc.ternary)
		}
		if e.Type != tc.typ {
			t.Errorf("%v: engine Type = %v", tc.typ, e.Type)
		}
		if tc.ternary != (e.Sel != nil) {
			t.Errorf("%v: ternary engines and only they carry a bit-selection function", tc.typ)
		}
		if e.Overflow != nil {
			t.Errorf("%v: typed engines must stay overflow-less (wait-free reads)", tc.typ)
		}
	}

	// Type round trip and rejection.
	for _, typ := range []subsystem.EngineType{subsystem.ExactEngine, subsystem.LPMEngine,
		subsystem.PktClassEngine, subsystem.TrigramEngine} {
		back, err := subsystem.ParseEngineType(typ.String())
		if err != nil || back != typ {
			t.Errorf("round trip %v: %v, %v", typ, back, err)
		}
	}
	if _, err := subsystem.ParseEngineType("wat"); err == nil {
		t.Error("ParseEngineType accepted garbage")
	}
	if _, err := subsystem.NewTypedEngine("x", subsystem.LPMEngine, subsystem.TypedConfig{IndexBits: 20}); err == nil {
		t.Error("lpm engine accepted more index bits than the 32-bit key has selectable positions")
	}
}

// TestTypedDuplicateInsert pins the duplicated-write contract at the
// engine layer: reinserting an identical masked rule fails with
// caram.ErrExists (no partial second copy), and deleting it removes
// every duplicated home so a fresh insert succeeds again.
func TestTypedDuplicateInsert(t *testing.T) {
	e, err := subsystem.NewTypedEngine("ip", subsystem.LPMEngine, subsystem.TypedConfig{IndexBits: 6, Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A /4 prefix wildcards hash positions 16..21 entirely: 64 copies.
	rule := bitutil.NewTernary(bitutil.FromUint64(0xA0000000), bitutil.FromUint64(0x0FFFFFFF))
	rec := matchRecord(rule, 7)
	if err := e.Insert(rec, nil); err != nil {
		t.Fatal(err)
	}
	if n := e.Main.Count(); n != 64 {
		t.Fatalf("duplicated copies = %d, want 64", n)
	}
	if err := e.Insert(rec, nil); !errors.Is(err, caram.ErrExists) {
		t.Fatalf("reinsert = %v, want ErrExists", err)
	}
	if n := e.Main.Count(); n != 64 {
		t.Fatalf("count after rejected reinsert = %d, want 64", n)
	}
	if err := e.Delete(rule); err != nil {
		t.Fatal(err)
	}
	if n := e.Main.Count(); n != 0 {
		t.Fatalf("count after delete = %d, want 0 (stale duplicated copies)", n)
	}
	if err := e.Delete(rule); !errors.Is(err, caram.ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	if err := e.Insert(rec, nil); err != nil {
		t.Fatalf("insert after full delete: %v", err)
	}
}

// TestTypedCreateDropChurn hammers engine lifecycle against live
// traffic: a stable exact engine serves Search/Insert/Delete/MSearch
// from many goroutines while other goroutines create and drop typed
// engines (own namespaces) in a loop, including searches aimed at
// engines that may vanish mid-flight — those must answer a clean
// no-engine error, never hang or panic. Run under -race by the
// typed-guard tier.
func TestTypedCreateDropChurn(t *testing.T) {
	const (
		nLifecycle = 4
		nTraffic   = 8
		nAimed     = 4
		iters      = 150
	)
	c := subsystem.NewConcurrent(subsystem.New(0))
	defer c.Close()
	if err := c.CreateEngine("stable", subsystem.ExactEngine, subsystem.TypedConfig{IndexBits: 6, Slots: 8}); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 32; k++ {
		rec := matchRecord(bitutil.Exact(bitutil.FromUint64(k)), 0x100+k)
		if err := c.Insert("stable", rec); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var fail atomic.Value
	record := func(format string, args ...any) {
		fail.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	types := []subsystem.EngineType{subsystem.ExactEngine, subsystem.LPMEngine,
		subsystem.PktClassEngine, subsystem.TrigramEngine}
	for g := 0; g < nLifecycle; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("churn%d", g)
			for i := 0; i < iters; i++ {
				typ := types[i%len(types)]
				if err := c.CreateEngine(name, typ, subsystem.TypedConfig{IndexBits: 4, Slots: 2}); err != nil {
					record("create %s: %v", name, err)
					return
				}
				if got, err := c.EngineType(name); err != nil || got != typ {
					record("engine type of %s = %v, %v", name, got, err)
					return
				}
				if typ == subsystem.ExactEngine {
					rec := matchRecord(bitutil.Exact(bitutil.FromUint64(uint64(i))), uint64(i))
					if err := c.Insert(name, rec); err != nil {
						record("insert into fresh %s: %v", name, err)
						return
					}
				}
				if err := c.DropEngine(name); err != nil {
					record("drop %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < nTraffic; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(4000 + g)))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(32))
				switch i % 3 {
				case 0:
					sr, err := c.Search("stable", bitutil.Exact(bitutil.FromUint64(k)))
					if err != nil || !sr.Found || sr.Record.Data.Uint64() != 0x100+k {
						record("stable search %d: %+v, %v", k, sr, err)
						return
					}
				case 1:
					if found, err := c.Contains("stable", bitutil.Exact(bitutil.FromUint64(k))); err != nil || !found {
						record("stable contains %d: %v, %v", k, found, err)
						return
					}
				default:
					out := c.MSearch([]subsystem.PortKey{
						{Port: "stable", Key: bitutil.Exact(bitutil.FromUint64(k))},
						{Port: "stable", Key: bitutil.Exact(bitutil.FromUint64((k + 1) % 32))},
					})
					for _, r := range out {
						if r.Err != nil || !r.Result.Found {
							record("stable msearch: %+v", r)
							return
						}
					}
				}
			}
		}(g)
	}
	// Searches aimed at engines that appear and disappear: any answer
	// is legal except a hang, a panic, or a found-record from a
	// just-created empty engine.
	for g := 0; g < nAimed; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("churn%d", i%nLifecycle)
				sr, err := c.Search(name, bitutil.Exact(bitutil.FromUint64(99)))
				if err == nil && sr.Found {
					record("search on churning empty engine %s found a record", name)
					return
				}
				out := c.MSearch([]subsystem.PortKey{{Port: name, Key: bitutil.Exact(bitutil.FromUint64(99))}})
				if out[0].Err == nil && out[0].Result.Found {
					record("msearch on churning empty engine %s found a record", name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if got := c.Engines(); len(got) != 1 || got[0] != "stable" {
		t.Fatalf("engines after churn = %v, want [stable]", got)
	}
}
