package subsystem

import "errors"

// Engine health. Error coding in the caram layer quarantines rows and
// the overflow CAM fills under displaced records; past configurable
// thresholds an engine is no longer trustworthy and the dispatch layer
// degrades or fails it. Health is per engine and MONOTONE within an
// episode: it only rises (Healthy → Degraded → Failed) between scrubs,
// so concurrent observers never see a failed engine flap back to
// healthy without an explicit recovery action. A scrub is the episode
// boundary — it repairs the array from the shadow and re-evaluates
// health from the post-repair state.
//
// A Failed engine trips the circuit breaker: Concurrent fails its
// operations fast with ErrEngineUnavailable before touching the port
// lock, so a broken engine cannot queue work or slow its neighbors.

// Health is an engine's availability state.
type Health int32

const (
	Healthy  Health = iota // full service
	Degraded               // serving, but quarantined rows / overflow saturation observed
	Failed                 // circuit broken: operations fail fast
)

// String names the state for wire replies and logs.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// HealthPolicy sets the thresholds the dispatch layer evaluates after
// each write-side operation and each erred search.
type HealthPolicy struct {
	// DegradeQuarantined: this many quarantined rows (or more) degrades
	// the engine. 0 disables the rule.
	DegradeQuarantined int
	// FailQuarantinedFrac: this fraction of all rows quarantined (or
	// more) fails the engine. 0 disables the rule.
	FailQuarantinedFrac float64
	// DegradeOverflowFrac: overflow-CAM occupancy at or above this
	// fraction of its capacity degrades the engine. 0 disables the rule.
	DegradeOverflowFrac float64
}

// DefaultHealthPolicy is the policy NewConcurrent installs: one
// quarantined row degrades, a quarter of the array failed fails, and a
// 90%-full overflow CAM degrades.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{
		DegradeQuarantined:  1,
		FailQuarantinedFrac: 0.25,
		DegradeOverflowFrac: 0.9,
	}
}

// Errors the dispatch layer returns for unavailable service.
var (
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("subsystem: closed")
	// ErrEngineUnavailable is the circuit breaker's fast failure for a
	// Failed engine.
	ErrEngineUnavailable = errors.New("subsystem: engine unavailable")
)
