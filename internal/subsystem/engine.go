// Package subsystem assembles CA-RAM slices into the memory subsystem
// of Figure 5: search engines (slice groups) serving separate
// databases, an optional small CAM/TCAM overflow area searched in
// parallel with the main array (§4.3), the request/result-queue port
// interface of §3.2, and a cycle-level bandwidth simulation that
// validates the §3.4 formula B = Nslice/nmem * fclk.
package subsystem

import (
	"errors"
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/trace"
)

// Engine is one database search engine: a (possibly banked) CA-RAM
// plus an optional overflow CAM. The main slice should be configured
// with caram.NoProbing when an overflow area is attached — spilled
// records live in the CAM and every lookup costs exactly one row
// access, the design point §4.3 analyzes.
type Engine struct {
	Name     string
	Main     *caram.Slice
	Overflow *cam.Device // optional; searched in parallel with Main
	// Banks is the number of independently-accessible vertical banks
	// the slice is split into for bandwidth (Figure 8 splits design D
	// into eight). Purely a timing property; 0 means 1.
	Banks int
	// Score ranks multi-matches (e.g. prefix length for LPM); nil
	// means first-match-wins exact search.
	Score func(match.Record) int
	// Type is the engine's workload shape (NewTypedEngine); the
	// zero value is ExactEngine, so hand-built engines need no change.
	Type EngineType
	// Sel, when non-nil, is the bit-selection index generator of a
	// ternary engine: inserts duplicate each record across
	// Sel.TernaryIndices(key) (one copy per wildcard hash-bit combo,
	// §4's ternary duplication) and deletes remove every copy.
	Sel *hash.BitSelect
	// AppliedLSN is the journal LSN of the last mutation applied to
	// this engine (written under the engine's write lock, captured in
	// snapshots). Replay skips records with lsn <= AppliedLSN: they
	// are already reflected in the recovered image. Zero when no
	// journal is attached.
	AppliedLSN uint64
}

// EngineStats tracks engine-level placement.
type EngineStats struct {
	Inserted     int
	ToOverflow   int
	FailedInsert int
}

// stats is updated by Insert.
var errNoCapacity = errors.New("subsystem: record fits neither main array nor overflow")

// SearchResult is the engine's answer to one search.
type SearchResult struct {
	Found    bool
	Record   match.Record
	RowsRead int  // main-array rows; the parallel overflow adds none
	FromOvfl bool // the winning record came from the overflow area
	Erred    bool // a probed row was unavailable (ECC quarantine/read error)
}

// Insert places a record, diverting it to the overflow area when the
// main array rejects it. On a ternary engine with a duplication
// selector the record is instead placed once per wildcard home bucket
// (all copies or none).
func (e *Engine) Insert(rec match.Record, st *EngineStats) error {
	if e.Sel != nil {
		return e.insertDuplicated(rec, st)
	}
	err := e.Main.Insert(rec)
	if err == nil {
		if st != nil {
			st.Inserted++
		}
		return nil
	}
	if !errors.Is(err, caram.ErrFull) || e.Overflow == nil {
		if st != nil {
			st.FailedInsert++
		}
		return err
	}
	prio := 0
	if e.Score != nil {
		prio = e.Score(rec)
	}
	if err := e.Overflow.Insert(rec, prio); err != nil {
		if st != nil {
			st.FailedInsert++
		}
		return fmt.Errorf("%w: %v", errNoCapacity, err)
	}
	if st != nil {
		st.Inserted++
		st.ToOverflow++
	}
	return nil
}

// insertDuplicated places one copy of the record in every home bucket
// its wildcard hash bits reach (hash.TernaryIndices). The slice runs
// with AllowDuplicates (a copy spilled from one home may sit on
// another home's probe chain), so whole-record duplicate rejection
// happens here: TernaryIndices always includes Index(key.Value), the
// bucket Contains scans, making the pre-check exact. Placement is
// all-or-nothing — if any copy finds no slot, the already-placed
// copies are rolled back and the insert fails.
func (e *Engine) insertDuplicated(rec match.Record, st *EngineStats) error {
	if e.Main.Contains(rec.Key) {
		if st != nil {
			st.FailedInsert++
		}
		return caram.ErrExists
	}
	homes := e.Sel.TernaryIndices(rec.Key)
	for i, home := range homes {
		if err := e.Main.InsertAt(home, rec); err != nil {
			for _, h := range homes[:i] {
				e.Main.DeleteAt(h, rec.Key) //nolint:errcheck // just placed there
			}
			if st != nil {
				st.FailedInsert++
			}
			return err
		}
	}
	if st != nil {
		st.Inserted++
	}
	return nil
}

// Delete removes the exact (value, mask) key: every duplicated copy on
// a ternary engine with a selector, the single copy otherwise. The
// overflow CAM is not consulted — typed engines carry none, and the
// exact engine's overflow path deletes through Main as before.
func (e *Engine) Delete(key bitutil.Ternary) error {
	if e.Sel == nil {
		return e.Main.Delete(key)
	}
	found := false
	for _, home := range e.Sel.TernaryIndices(key) {
		switch err := e.Main.DeleteAt(home, key); {
		case err == nil:
			found = true
		case !errors.Is(err, caram.ErrNotFound):
			return err
		}
	}
	if !found {
		return caram.ErrNotFound
	}
	return nil
}

// Search looks the key up in the main array and, simultaneously, the
// overflow area. With an overflow area attached the row cost is the
// main lookup's only (AMAL = 1 under NoProbing), since the CAM search
// proceeds in parallel.
func (e *Engine) Search(key bitutil.Ternary) SearchResult {
	return e.SearchTraced(key, nil)
}

// SearchTraced is Search recording into a request-scoped trace: the
// main array's probe chain (via the caram layer) plus one event for
// the parallel overflow-CAM search when an overflow area is attached.
// A nil trace is the untraced hot path; Search delegates here.
func (e *Engine) SearchTraced(key bitutil.Ternary, tr *trace.Trace) SearchResult {
	var main caram.LookupResult
	if e.Score != nil {
		main = e.Main.LookupBestTraced(key, e.Score, tr)
	} else {
		main = e.Main.LookupTraced(key, tr)
	}
	res := SearchResult{Found: main.Found, Record: main.Record, RowsRead: main.RowsRead, Erred: main.Erred}
	if e.Overflow == nil {
		return res
	}
	ovfl := e.Overflow.Search(key)
	tr.Overflow(ovfl.Found)
	if !ovfl.Found {
		return res
	}
	switch {
	case !res.Found:
		res.Found, res.Record, res.FromOvfl = true, ovfl.Record, true
	case e.Score != nil && e.Score(ovfl.Record) > e.Score(res.Record):
		res.Record, res.FromOvfl = ovfl.Record, true
	}
	return res
}

// SearchSeq runs one lookup on the caller's lock-free Reader instead
// of the engine's port lock. It serves engines without an overflow CAM
// only (the Concurrent layer gates on that): the CAM has its own
// mutable priority state, so overflow-equipped engines stay on the
// serialized path. ok=false means the Reader could not certify the
// answer (torn past its retry budget, quarantined row, or check-word
// mismatch) and the caller must fall back to the locked SearchTraced;
// the partial result is meaningless then. A certified result never
// carries Erred — anything a locked search would flag erred escalates
// here instead.
func (e *Engine) SearchSeq(rd *caram.Reader, key bitutil.Ternary, tr *trace.Trace) (SearchResult, bool) {
	var main caram.LookupResult
	var ok bool
	if e.Score != nil {
		main, ok = rd.LookupBest(key, e.Score, tr)
	} else {
		main, ok = rd.Lookup(key, tr)
	}
	if !ok {
		return SearchResult{}, false
	}
	return SearchResult{Found: main.Found, Record: main.Record, RowsRead: main.RowsRead, Erred: main.Erred}, true
}

// banks resolves the timing bank count.
func (e *Engine) banks() int {
	if e.Banks <= 0 {
		return 1
	}
	return e.Banks
}

// bankOf maps a home bucket to its bank: contiguous row partitions, so
// short probe chains stay within one bank.
func (e *Engine) bankOf(home uint32) int {
	rows := e.Main.Config().Rows()
	b := int(home) * e.banks() / rows
	if b >= e.banks() {
		b = e.banks() - 1
	}
	return b
}
