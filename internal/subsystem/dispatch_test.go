package subsystem

import (
	"sync"
	"sync/atomic"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/mem"
)

func TestDispatcherCorrectness(t *testing.T) {
	// Two engines with disjoint contents; concurrent submitters; every
	// result must carry the right payload for its port.
	ip := &Engine{Name: "ip", Main: testSlice(t, 0, mem.SRAM)}
	tri := &Engine{Name: "tri", Main: testSlice(t, 0, mem.SRAM)}
	const n = 500
	for i := 0; i < n; i++ {
		if err := ip.Insert(rec(uint64(i), uint64(i)*2), nil); err != nil {
			t.Fatal(err)
		}
		if err := tri.Insert(rec(uint64(i), uint64(i)*3), nil); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDispatcher([]*Engine{ip, tri}, 16)

	// Collect results concurrently with submission.
	got := make(map[uint64]PortResult, 2*n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range d.Results() {
			got[r.ID] = r
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				key := bitutil.Exact(bitutil.FromUint64(uint64(i)))
				if err := d.Submit("ip", uint64(i), key); err != nil {
					t.Error(err)
				}
				if err := d.Submit("tri", uint64(n+i), key); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	d.Close()
	<-done

	if len(got) != 2*n {
		t.Fatalf("collected %d results, want %d", len(got), 2*n)
	}
	for i := 0; i < n; i++ {
		r := got[uint64(i)]
		if r.Port != "ip" || !r.Found || r.Record.Data.Uint64() != uint64(i)*2 {
			t.Fatalf("ip result %d = %+v", i, r)
		}
		r = got[uint64(n+i)]
		if r.Port != "tri" || !r.Found || r.Record.Data.Uint64() != uint64(i)*3 {
			t.Fatalf("tri result %d = %+v", i, r)
		}
	}
}

func TestDispatcherUnknownPortAndDoubleClose(t *testing.T) {
	e := &Engine{Name: "only", Main: testSlice(t, 0, mem.SRAM)}
	d := NewDispatcher([]*Engine{e}, 4)
	if err := d.Submit("nope", 1, bitutil.Ternary{}); err == nil {
		t.Error("unknown port accepted")
	}
	d.Close()
	d.Close() // idempotent
	if _, open := <-d.Results(); open {
		t.Error("results channel not closed")
	}
}

func TestDispatcherSubmitAfterClose(t *testing.T) {
	e := &Engine{Name: "only", Main: testSlice(t, 0, mem.SRAM)}
	d := NewDispatcher([]*Engine{e}, 4)
	d.Close()
	// A late Submit must fail cleanly, not panic on a closed queue.
	if err := d.Submit("only", 1, bitutil.Ternary{}); err != ErrDispatcherClosed {
		t.Errorf("Submit after Close = %v, want ErrDispatcherClosed", err)
	}
	// Unknown port still reports the port error, closed or not.
	if err := d.Submit("nope", 1, bitutil.Ternary{}); err == nil || err == ErrDispatcherClosed {
		t.Errorf("unknown port after Close = %v", err)
	}
}

// TestStressDispatcherCloseRace races many submitters against Close:
// every Submit must either enqueue (and produce a result) or return
// ErrDispatcherClosed — never panic, never lose a result.
func TestStressDispatcherCloseRace(t *testing.T) {
	e := &Engine{Name: "only", Main: testSlice(t, 0, mem.SRAM)}
	if err := e.Insert(rec(1, 2), nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		d := NewDispatcher([]*Engine{e}, 8)
		var accepted int64
		results := make(chan int, 1)
		go func() {
			n := 0
			for range d.Results() {
				n++
			}
			results <- n
		}()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					err := d.Submit("only", uint64(w*50+i), bitutil.Exact(bitutil.FromUint64(1)))
					switch err {
					case nil:
						atomic.AddInt64(&accepted, 1)
					case ErrDispatcherClosed:
						return
					default:
						t.Errorf("Submit: %v", err)
						return
					}
				}
			}()
		}
		// Close midway through the submission storm.
		d.Close()
		wg.Wait()
		if got := <-results; int64(got) != atomic.LoadInt64(&accepted) {
			t.Fatalf("round %d: %d results for %d accepted submits", round, got, accepted)
		}
	}
}
