package subsystem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkSearchUnderWriteContention is the PR 6 headline A/B: read
// throughput on one engine, lock-free seqlock path vs the serialized
// rwmutex baseline (SetLockedReads), with zero or one writer in the
// background. The writer runs the realistic maintenance mix — row
// churn (delete/insert) plus a periodic Scrub pass, whose write-locked
// whole-array scan is exactly the window a serialized reader stalls
// in. The seqlock column must hold its throughput under the writer —
// that is the wait-free property measured; frozen into BENCH_PR6.json
// by `make bench-json`.
func BenchmarkSearchUnderWriteContention(b *testing.B) {
	for _, mode := range []struct {
		name   string
		locked bool
	}{
		{"seqlock", false},
		{"rwmutex", true},
	} {
		for _, writers := range []int{0, 1} {
			b.Run(fmt.Sprintf("%s/writers=%d", mode.name, writers), func(b *testing.B) {
				benchSearchContention(b, mode.locked, writers)
			})
		}
	}
}

func benchSearchContention(b *testing.B, locked bool, writers int) {
	// The A/B needs real scheduler concurrency between readers and the
	// writer even on a single-core CI box: pin GOMAXPROCS to at least 8
	// for the measurement so RunParallel fields many readers and the
	// writer genuinely interleaves with them.
	if runtime.GOMAXPROCS(0) < 8 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	}
	sub := New(0)
	sl := seqlockSlice()
	if err := sub.AddEngine(&Engine{Name: "e0", Main: sl}); err != nil {
		b.Fatal(err)
	}
	c := NewConcurrent(sub).SetLockedReads(locked)
	defer c.Close()

	const nRead, nChurn = 64, 8
	readKeys := make([]uint64, nRead)
	for i := range readKeys {
		readKeys[i] = uint64(0xA000 + i)
		if err := c.Insert("e0", rec(readKeys[i], readKeys[i]&0xffff)); err != nil {
			b.Fatal(err)
		}
	}
	churnKeys := make([]uint64, nChurn)
	for i := range churnKeys {
		churnKeys[i] = uint64(0xB000 + i)
		if err := c.Insert("e0", rec(churnKeys[i], churnKeys[i]&0xffff)); err != nil {
			b.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := churnKeys[(w+i)%nChurn]
				if err := c.Delete("e0", exact(k)); err != nil {
					b.Error(err)
					return
				}
				if err := c.Insert("e0", rec(k, k&0xffff)); err != nil {
					b.Error(err)
					return
				}
				if i%16 == 15 {
					if _, err := c.Scrub("e0"); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(w)
	}

	b.ReportAllocs()
	// Field many more reader goroutines than Ps: under the serialized
	// baseline each writer acquisition then parks a convoy of readers,
	// the real cost of a locked read side; the lock-free path has no
	// convoy to form. Readers yield every 64 lookups — the scheduling
	// texture of a real server goroutine that also touches the network —
	// which is what lets the single writer actually run (and contend)
	// on a box with few hardware threads.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := readKeys[i%nRead]
			i++
			sr, err := c.Search("e0", exact(key))
			if err != nil {
				b.Error(err)
				return
			}
			if !sr.Found {
				b.Errorf("read key %x missing", key)
				return
			}
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	})
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
	if retries, fallbacks, err := c.SearchRetries("e0"); err == nil && b.N > 0 {
		b.ReportMetric(float64(retries)/float64(b.N), "retries/op")
		b.ReportMetric(float64(fallbacks)/float64(b.N), "fallbacks/op")
	}
}
