package subsystem

import (
	"fmt"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/iproute"
	"caram/internal/match"
	"caram/internal/mem"
	"caram/internal/pktclass"
)

// trigramKeyBytes and trigramScoreBits mirror trigram.KeyBytes and
// trigram.ScoreBits — the trigram package imports subsystem for its
// partitioned database, so it cannot be imported here; the external
// test package pins the pairs equal at compile time.
const (
	trigramKeyBytes  = 16
	trigramScoreBits = 16
)

// EngineType selects an engine's key encoding and search semantics —
// the four workload shapes of the paper's case studies served by one
// substrate: exact match (§3), IP longest-prefix match over ternary
// keys (§5), packet classification by highest-priority rule (§6.2 of
// the classifier literature the paper cites), and trigram candidate
// lookup (§6).
type EngineType uint8

const (
	// ExactEngine is first-match exact search on 64-bit keys — the
	// default workload every prior PR exercised.
	ExactEngine EngineType = iota
	// LPMEngine stores 32-bit ternary prefixes (value + don't-care
	// mask) duplicated across their wildcard home buckets and answers
	// SEARCH with the longest (most specific) matching prefix.
	LPMEngine
	// PktClassEngine stores 104-bit five-tuple ternary rules (expanded
	// port ranges) and answers SEARCH with the highest-priority match;
	// the payload encodes (ruleID, action, priority) per
	// pktclass.EncodeData.
	PktClassEngine
	// TrigramEngine stores 128-bit signature keys derived from short
	// texts (trigram.Entry.Key) under a byte-wise DJB index and answers
	// exact candidate lookups.
	TrigramEngine
)

// String returns the wire-level type name.
func (t EngineType) String() string {
	switch t {
	case ExactEngine:
		return "exact"
	case LPMEngine:
		return "lpm"
	case PktClassEngine:
		return "pktclass"
	case TrigramEngine:
		return "trigram"
	}
	return fmt.Sprintf("EngineType(%d)", uint8(t))
}

// ParseEngineType maps a wire-level type name (case-sensitive, the
// canonical lower-case spelling) to its EngineType.
func ParseEngineType(s string) (EngineType, error) {
	switch s {
	case "exact":
		return ExactEngine, nil
	case "lpm":
		return LPMEngine, nil
	case "pktclass":
		return PktClassEngine, nil
	case "trigram":
		return TrigramEngine, nil
	}
	return ExactEngine, fmt.Errorf("subsystem: bad engine type %q", s)
}

// TypedConfig sizes a typed engine. The zero value gets a small
// general-purpose geometry (256 rows of 8 slots).
type TypedConfig struct {
	IndexBits int  // 2^IndexBits rows; 0 = 8
	Slots     int  // slots per row; 0 = 8
	ECC       bool // per-row SEC-DED protection
}

func (c TypedConfig) withDefaults() TypedConfig {
	if c.IndexBits == 0 {
		c.IndexBits = 8
	}
	if c.Slots == 0 {
		c.Slots = 8
	}
	return c
}

// lpmScore ranks LPM multi-matches by prefix specificity.
func lpmScore(r match.Record) int { return r.Key.Specificity(32) }

// pktclassScore ranks classifier multi-matches by rule priority (the
// low 16 bits of the payload), offset so a zero-priority rule still
// outranks "no match yet".
func pktclassScore(r match.Record) int { return int(r.Data.Uint64()&0xffff) + 1 }

// NewTypedEngine builds one engine of the given type: the per-type key
// geometry, index generator, duplication selector, and match-ranking
// score, mirroring the simulation packages' design points (iproute
// hashes address bits 16.., pktclass hashes destination-IP host bits,
// trigram uses the byte-wise DJB hash over its 16-byte signatures).
// Typed engines carry no overflow CAM, so every search stays on the
// wait-free seqlock read path; an insert that finds no slot within the
// probe limit simply fails with caram.ErrFull.
func NewTypedEngine(name string, typ EngineType, tc TypedConfig) (*Engine, error) {
	tc = tc.withDefaults()
	cfg := caram.Config{
		IndexBits: tc.IndexBits,
		AuxBits:   16,
		Tech:      mem.DRAM,
		ECC:       tc.ECC,
	}
	e := &Engine{Name: name, Type: typ}
	switch typ {
	case ExactEngine:
		cfg.KeyBits, cfg.DataBits = 64, 32
		cfg.RowBits = tc.Slots*(1+64+32) + 16
		cfg.Index = hash.NewMultShift(tc.IndexBits)
	case LPMEngine:
		if tc.IndexBits > 16 {
			return nil, fmt.Errorf("subsystem: lpm engine supports at most 16 index bits, got %d", tc.IndexBits)
		}
		cfg.KeyBits, cfg.DataBits = 32, 32
		cfg.RowBits = tc.Slots*(1+32+32+32) + 16
		cfg.Ternary, cfg.AllowDuplicates = true, true
		sel := hash.NewBitSelect(iproute.HashPositions(tc.IndexBits))
		cfg.Index = sel
		e.Sel, e.Score = sel, lpmScore
	case PktClassEngine:
		if tc.IndexBits > 16 {
			return nil, fmt.Errorf("subsystem: pktclass engine supports at most 16 index bits, got %d", tc.IndexBits)
		}
		cfg.KeyBits, cfg.DataBits = 104, 32
		cfg.RowBits = tc.Slots*(1+104+104+32) + 16
		cfg.Ternary, cfg.AllowDuplicates = true, true
		sel := hash.NewBitSelect(pktclass.HashPositions(tc.IndexBits))
		cfg.Index = sel
		e.Sel, e.Score = sel, pktclassScore
	case TrigramEngine:
		cfg.KeyBits, cfg.DataBits = 128, trigramScoreBits
		cfg.RowBits = tc.Slots*(1+128+trigramScoreBits) + 16
		cfg.Index = hash.NewDJB(tc.IndexBits, trigramKeyBytes)
	default:
		return nil, fmt.Errorf("subsystem: bad engine type %q", typ)
	}
	slice, err := caram.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("subsystem: engine %q: %w", name, err)
	}
	e.Main = slice
	return e, nil
}
