package subsystem

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/metrics"
	"caram/internal/trace"
)

// The Concurrent layer's side of the wait-free SEARCH contract: a
// search on an overflow-less engine performs no mutex operations (it
// cannot be blocked by a held engine lock), never returns a torn
// value, and every escalation is visible in the retry/fallback
// telemetry, the request trace, and the Prometheus exposition.

// seqlockSlice is a slice wide enough for the self-validating 32-bit
// payloads of the torn-read stress (testSlice carries only 16 data
// bits).
func seqlockSlice() *caram.Slice {
	return caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+32+32) + 8,
		KeyBits:   32,
		DataBits:  32,
		Index:     hash.NewMultShift(6),
	})
}

// seqlockFixture builds a Concurrent over one overflow-less engine
// "e0" backed by a seqlockSlice, returning both.
func seqlockFixture(t *testing.T) (*Concurrent, *caram.Slice) {
	t.Helper()
	sub := New(0)
	sl := seqlockSlice()
	if err := sub.AddEngine(&Engine{Name: "e0", Main: sl}); err != nil {
		t.Fatal(err)
	}
	return NewConcurrent(sub), sl
}

// genPayload encodes a self-validating value: generation in the high
// half, a checksum binding key and generation in the low half, so a
// torn row cannot decode cleanly.
func genPayload(key uint64, gen uint32) uint64 {
	return uint64(gen)<<16 | uint64(genPayloadSum(key, gen))
}

func genPayloadSum(key uint64, gen uint32) uint16 {
	x := key*0x9E3779B97F4A7C15 ^ uint64(gen)*0xBF58476D1CE4E5B9
	return uint16(x >> 48)
}

func genPayloadValid(key, data uint64) bool {
	return uint16(data) == genPayloadSum(key, uint32(data>>16))
}

// TestSearchWaitFreeUnderHeldEngineLock is the code-level zero-mutex
// assertion: with the engine's port mutex held by the test, SEARCH,
// Contains, and MSEARCH on an overflow-less engine still complete —
// they cannot be touching the mutex. The SetLockedReads escape hatch
// inverts the property: the same search blocks until the lock is
// released.
func TestSearchWaitFreeUnderHeldEngineLock(t *testing.T) {
	c, _ := seqlockFixture(t)
	defer c.Close()
	if err := c.Insert("e0", rec(9, 90)); err != nil {
		t.Fatal(err)
	}

	g, _ := c.engine("e0")
	g.mu.Lock()
	done := make(chan error, 1)
	go func() {
		sr, err := c.Search("e0", exact(9))
		if err == nil && (!sr.Found || sr.Record.Data.Uint64() != 90) {
			err = errBadResult
		}
		if err == nil {
			if found, cerr := c.Contains("e0", exact(9)); cerr != nil || !found {
				err = errBadResult
			}
		}
		if err == nil {
			out := c.MSearch([]PortKey{{Port: "e0", Key: exact(9)}})
			if out[0].Err != nil || !out[0].Result.Found {
				err = errBadResult
			}
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("lock-free search under held engine lock: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SEARCH blocked on the engine mutex; the path is not wait-free")
	}
	g.mu.Unlock()

	// The escape hatch serializes again: the same search now queues
	// behind the held lock and completes only once it is released.
	cl, _ := seqlockFixture(t)
	defer cl.Close()
	cl.SetLockedReads(true)
	if err := cl.Insert("e0", rec(9, 90)); err != nil {
		t.Fatal(err)
	}
	gl, _ := cl.engine("e0")
	gl.mu.Lock()
	lockedDone := make(chan error, 1)
	go func() {
		_, err := cl.Search("e0", exact(9))
		lockedDone <- err
	}()
	select {
	case <-lockedDone:
		t.Fatal("SetLockedReads(true) search completed through a held engine lock")
	case <-time.After(50 * time.Millisecond):
	}
	gl.mu.Unlock()
	select {
	case err := <-lockedDone:
		if err != nil {
			t.Fatalf("locked search after release: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("locked search never completed after the lock was released")
	}
}

var errBadResult = errors.New("bad lock-free result")

// TestSearchTornReadStress runs the torn-read/linearizability suite
// through the full Concurrent dispatch: reader goroutines issue
// c.Search while a writer churns keys through c.Delete/c.Insert with
// self-validating payloads. At this layer escalation is invisible
// (the dispatcher falls back to the serialized path itself), so EVERY
// search must return a legally published value, and permanent keys
// must hit on every single read.
func TestSearchTornReadStress(t *testing.T) {
	const (
		nReaders   = 16
		nPermanent = 10
		nChurn     = 6
		writerIter = 1000
		minReads   = 8_000
	)
	c, _ := seqlockFixture(t)
	defer c.Close()
	permKeys := make([]uint64, nPermanent)
	for i := range permKeys {
		permKeys[i] = uint64(0xA000 + i)
		if err := c.Insert("e0", rec(permKeys[i], genPayload(permKeys[i], 0))); err != nil {
			t.Fatalf("permanent insert %d: %v", i, err)
		}
	}
	churnKeys := make([]uint64, nChurn)
	for i := range churnKeys {
		churnKeys[i] = uint64(0xB000 + i)
		if err := c.Insert("e0", rec(churnKeys[i], genPayload(churnKeys[i], 0))); err != nil {
			t.Fatalf("churn insert %d: %v", i, err)
		}
	}

	var done atomic.Bool
	var reads atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < nReaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				var key uint64
				permanent := i%2 == 0
				if permanent {
					key = permKeys[(g+i)%nPermanent]
				} else {
					key = churnKeys[(g+i)%nChurn]
				}
				sr, err := c.Search("e0", exact(key))
				if err != nil {
					t.Errorf("search %x: %v", key, err)
					return
				}
				reads.Add(1)
				if permanent && !sr.Found {
					t.Errorf("permanent key %x missing (linearizability violation)", key)
					return
				}
				if sr.Found && !genPayloadValid(key, sr.Record.Data.Uint64()) {
					t.Errorf("key %x returned unpublished value %#x (torn read)", key, sr.Record.Data.Uint64())
					return
				}
				runtime.Gosched() // interleave with the writer on one CPU
			}
		}(g)
	}

	deadline := time.Now().Add(10 * time.Second)
	for gen := uint32(1); gen <= writerIter || (reads.Load() < minReads && time.Now().Before(deadline)); gen++ {
		k := churnKeys[int(gen)%nChurn]
		if err := c.Delete("e0", exact(k)); err != nil {
			t.Fatalf("delete gen %d: %v", gen, err)
		}
		if err := c.Insert("e0", rec(k, genPayload(k, gen))); err != nil {
			t.Fatalf("reinsert gen %d: %v", gen, err)
		}
		runtime.Gosched()
	}
	done.Store(true)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no searches completed; harness exercised nothing")
	}
	retries, fallbacks, err := c.SearchRetries("e0")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("searches=%d retries=%d fallbacks=%d", reads.Load(), retries, fallbacks)
}

// TestForcedRetryTelemetry forces the lock-free path to retry and
// escalate (a write window held open over the key's home row), then
// asserts the whole telemetry chain: SearchRetries counters, the
// trace's retries event, and the caram_search_retries_total /
// caram_search_lock_fallbacks_total Prometheus families.
func TestForcedRetryTelemetry(t *testing.T) {
	sub := New(0)
	sl := seqlockSlice()
	if err := sub.AddEngine(&Engine{Name: "e0", Main: sl}); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry([]string{"e0"})
	c := NewConcurrent(sub).Instrument(reg)
	defer c.Close()

	key := uint64(0x1234)
	if err := c.Insert("e0", rec(key, 42)); err != nil {
		t.Fatal(err)
	}
	home := sl.Index(bitutil.FromUint64(key))

	// Window open: the Reader exhausts its retry budget, the dispatcher
	// falls back to the serialized path, and the caller still gets the
	// right answer.
	sl.Array().BeginRowMaint(home)
	tr := trace.New()
	sr, err := c.SearchTraced("e0", exact(key), tr)
	if err != nil || !sr.Found || sr.Record.Data.Uint64() != 42 {
		t.Fatalf("escalated search = %+v, %v", sr, err)
	}
	retries, fallbacks, err := c.SearchRetries("e0")
	if err != nil {
		t.Fatal(err)
	}
	if retries == 0 {
		t.Fatal("forced torn window produced no retries")
	}
	if fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", fallbacks)
	}

	// The trace carries exactly one retries event with the count, and a
	// lock_wait span from the serialized re-run.
	nRetryEv, nLockWait := 0, 0
	for _, ev := range tr.Events {
		switch ev.Kind {
		case trace.KindRetries:
			nRetryEv++
			if uint64(ev.Matches) != retries {
				t.Errorf("trace retries = %d, counter = %d", ev.Matches, retries)
			}
		case trace.KindLockWait:
			nLockWait++
		}
	}
	if nRetryEv != 1 || nLockWait != 1 {
		t.Fatalf("trace has %d retries events and %d lock_wait spans, want 1 and 1: %+v",
			nRetryEv, nLockWait, tr.Events)
	}

	// The exposition reports both families with the live counts.
	var b strings.Builder
	if err := metrics.WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	wantRetries := metrics.FamSearchRetries + `{engine="e0",engine_type="exact"} `
	wantFallbacks := metrics.FamLockFallbacks + `{engine="e0",engine_type="exact"} 1`
	if !strings.Contains(text, wantRetries) || strings.Contains(text, wantRetries+"0\n") {
		t.Errorf("exposition missing nonzero %s:\n%s", metrics.FamSearchRetries, text)
	}
	if !strings.Contains(text, wantFallbacks) {
		t.Errorf("exposition missing %s == 1", metrics.FamLockFallbacks)
	}

	// Window closed: the lock-free path certifies again, and the
	// fallback counter stays put.
	sl.Array().CommitRowUpdate(home)
	if sr, err := c.Search("e0", exact(key)); err != nil || !sr.Found {
		t.Fatalf("post-commit search = %+v, %v", sr, err)
	}
	if _, fb, _ := c.SearchRetries("e0"); fb != 1 {
		t.Fatalf("post-commit fallbacks = %d, want 1", fb)
	}
}
