package subsystem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/match"
	"caram/internal/metrics"
	"caram/internal/trace"
)

// Concurrent is the thread-safe dispatch layer over a fully-registered
// Subsystem — the software counterpart of §3.2's observation that
// "multiple lookup actions [can be] simultaneously in progress in
// different CA-RAM slices". Each engine gets its own mutex and, when
// it has no overflow CAM, a pool of lock-free Readers:
//
//   - INSERT / DELETE / Scrub on one engine serialize under the engine
//     mutex (a slice has a single row port for writes), while the same
//     operations on distinct engines run fully in parallel;
//   - SEARCH / MSEARCH / Explain / Contains on an overflow-less engine
//     are wait-free: they run on per-goroutine caram.Readers over the
//     array's per-row seqlock, performing no mutex operations at all —
//     any number may overlap with each other AND with the engine's one
//     writer. A read the seqlock protocol cannot certify (torn past
//     the retry budget, quarantined row, check-word mismatch) falls
//     back to the serialized path, which owns the ECC protocol;
//   - engines with an overflow CAM keep every search serialized (the
//     CAM has mutable priority state);
//   - read-only inspection (Info, HealthInfo) takes the mutex like a
//     writer — it is off the hot path.
//
// Once a Subsystem is wrapped, all access must go through the
// Concurrent layer; using the bare Subsystem or its engines directly
// alongside it would bypass the locks.
//
// An optional metrics registry (Instrument) observes every op; lock-
// free searches are timed end to end, serialized ops at the lock
// boundary (so writer latency still includes lock wait, the true
// service latency under contention).
type Concurrent struct {
	// set is the current engine roster, copy-on-write: op paths do one
	// atomic load and index an immutable map, so the hot path stays
	// exactly as cheap as the pre-dynamic frozen map. setMu serializes
	// the writers (CreateEngine, DropEngine, Close).
	set    atomic.Pointer[engineSet]
	setMu  sync.Mutex
	met    *metrics.Registry // nil when uninstrumented
	policy HealthPolicy

	// jr, when non-nil, receives one journal record per applied
	// mutation and roster change (SetJournal). rosterLSN is the LSN of
	// the last CREATE/DROP reflected in the roster — written under
	// setMu, captured by SnapshotImage as the roster replay gate.
	jr        Journal
	rosterLSN uint64

	// lockedReads forces every search through the serialized path —
	// the pre-seqlock behavior, kept for A/B benchmarks and as an
	// escape hatch. Construction-time only (SetLockedReads).
	lockedReads bool

	// down gates every operation after Close: a single atomic load on
	// the op path, so a closed layer fails fast instead of deadlocking
	// or panicking on torn-down machinery.
	down atomic.Bool

	// Batched-search machinery: one persistent worker per engine, fed
	// through its guardedEngine.batch queue. sendMu guards the
	// closed flag so MSearch never sends on a closed channel.
	workers sync.WaitGroup
	sendMu  sync.RWMutex
	closed  bool
}

// engineSet is one immutable roster snapshot.
type engineSet struct {
	order []string
	m     map[string]*guardedEngine
}

// engine resolves a port against the current roster: one atomic load,
// no locks — the dispatch hot path.
func (c *Concurrent) engine(port string) (*guardedEngine, bool) {
	g, ok := c.set.Load().m[port]
	return g, ok
}

// guardedEngine pairs an engine with its port lock, the placement
// stats the subsystem tracks for it, the batch queue feeding its
// persistent MSearch worker, and — when the engine qualifies — the
// machinery of the lock-free read path.
type guardedEngine struct {
	mu    sync.RWMutex
	e     *Engine
	st    *EngineStats
	em    *metrics.EngineMetrics // nil when uninstrumented
	batch chan *msearchBatch

	// seqRead marks the engine as eligible for lock-free searches
	// (no overflow CAM). Fixed at construction.
	seqRead bool
	// readers caches per-goroutine caram.Readers; each carries its own
	// snapshot buffer and match kernel, so a cached Reader is reused
	// without any cross-goroutine shared mutable state.
	readers *readerCache
	// retries counts torn seqlock snapshots re-read by this engine's
	// lock-free searches; fallbacks counts searches that escalated to
	// the serialized path. Exported as caram_search_retries_total /
	// caram_search_lock_fallbacks_total.
	retries   atomic.Uint64
	fallbacks atomic.Uint64

	// dropped is set (under sendMu's write lock) when DropEngine closes
	// this engine's batch channel; in-flight MSearch senders check it
	// under sendMu's read lock and run the share inline instead of
	// sending, so a send on the closed channel is impossible.
	dropped atomic.Bool

	// health is the engine's availability state (a Health value). It is
	// read lock-free by the circuit breaker and written only while the
	// engine lock is held: raised monotonically as faults are observed,
	// lowered only by Scrub (the episode boundary).
	health atomic.Int32
}

// raiseTo lifts the engine's health state to at least h, never
// lowering it — the per-episode monotonicity contract.
func (g *guardedEngine) raiseTo(h Health) {
	for {
		cur := Health(g.health.Load())
		if cur >= h {
			return
		}
		if g.health.CompareAndSwap(int32(cur), int32(h)) {
			return
		}
	}
}

// readerCache is a tiny lock-free freelist of caram.Readers. It
// stands in for sync.Pool on the search hot path because the pool
// deliberately drops items under the race detector (to shake out
// misuse), which would make the zero-allocation CI guards flaky under
// `-race`; a fixed slot array is deterministic everywhere, costs one
// atomic swap in the common case, and performs no mutex operations —
// the property the wait-free search path is built on. Readers that
// find every slot full on return are simply dropped (they are a few
// hundred bytes of scratch), so the cache never grows.
type readerCache struct {
	newFn func() *caram.Reader
	slots []atomic.Pointer[caram.Reader]
}

func newReaderCache(newFn func() *caram.Reader) *readerCache {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return &readerCache{newFn: newFn, slots: make([]atomic.Pointer[caram.Reader], n)}
}

func (p *readerCache) get() *caram.Reader {
	for i := range p.slots {
		if rd := p.slots[i].Swap(nil); rd != nil {
			return rd
		}
	}
	return p.newFn()
}

func (p *readerCache) put(rd *caram.Reader) {
	for i := range p.slots {
		if p.slots[i].CompareAndSwap(nil, rd) {
			return
		}
	}
}

// msearchBatch is one engine's share of an MSearch call: the slots of
// reqs/out selected by idxs. The receiving worker signals wg when the
// share is done.
type msearchBatch struct {
	reqs []PortKey
	out  []MSearchResult
	idxs []int
	wg   *sync.WaitGroup
}

// msearchBatchDepth bounds how many in-flight MSearch shares can queue
// on one engine before senders block (back-pressure, not an error).
const msearchBatchDepth = 16

// NewConcurrent wraps a subsystem whose engine registration is
// complete. Engines added to the subsystem afterwards are not visible
// through the wrapper.
//
// The wrapper starts one persistent worker goroutine per engine to
// serve batched searches; Close stops them (leaving them running for
// the process lifetime is also fine — idle workers block on an empty
// queue and cost nothing).
func NewConcurrent(sub *Subsystem) *Concurrent {
	c := &Concurrent{policy: DefaultHealthPolicy()}
	order := sub.Engines()
	set := &engineSet{order: order, m: make(map[string]*guardedEngine, len(order))}
	for _, name := range order {
		g := newGuarded(sub.engines[name], sub.stats[name])
		set.m[name] = g
		c.workers.Add(1)
		go c.msearchWorker(g)
	}
	c.set.Store(set)
	return c
}

// newGuarded wraps one engine with its port lock, batch queue, and —
// when it qualifies (no overflow CAM) — the lock-free read machinery.
func newGuarded(e *Engine, st *EngineStats) *guardedEngine {
	g := &guardedEngine{
		e:     e,
		st:    st,
		batch: make(chan *msearchBatch, msearchBatchDepth),
	}
	if e.Overflow == nil {
		g.seqRead = true
		g.readers = newReaderCache(e.Main.NewReader)
	}
	return g
}

// CreateEngine adds a typed engine to a live layer: the engine is
// built (NewTypedEngine), registered in the metrics registry when the
// layer is instrumented, given its own MSearch worker, and published
// by swapping in a new roster snapshot — concurrent operations on
// other engines never block or even notice. The name must be new;
// CreateEngine after Close fails with ErrClosed.
func (c *Concurrent) CreateEngine(name string, typ EngineType, tc TypedConfig) error {
	c.setMu.Lock()
	defer c.setMu.Unlock()
	if c.down.Load() {
		return ErrClosed
	}
	cur := c.set.Load()
	if _, dup := cur.m[name]; dup {
		return fmt.Errorf("subsystem: engine %q already registered", name)
	}
	e, err := NewTypedEngine(name, typ, tc)
	if err != nil {
		return err
	}
	if c.jr != nil {
		// Roster records append under setMu (their lock boundary) and
		// commit before the engine is published: an acknowledged CREATE
		// must be durable, and one the log rejected must never publish.
		lsn, jerr := c.jr.Append(JournalEntry{Op: JournalCreate, Engine: name, Type: typ, Conf: tc})
		if jerr != nil {
			return jerr
		}
		if jerr := c.jr.Commit(lsn); jerr != nil {
			return jerr
		}
		e.AppliedLSN = lsn
		c.rosterLSN = lsn
	}
	g := newGuarded(e, &EngineStats{})
	if c.met != nil {
		em := c.met.Register(name, typ.String())
		g.em = em
		em.SetGaugeFunc(func() metrics.Gauges { return c.sampleGauges(g) })
	}
	next := &engineSet{
		order: append(append(make([]string, 0, len(cur.order)+1), cur.order...), name),
		m:     make(map[string]*guardedEngine, len(cur.m)+1),
	}
	for k, v := range cur.m {
		next.m[k] = v
	}
	next.m[name] = g
	c.workers.Add(1)
	go c.msearchWorker(g)
	c.set.Store(next)
	return nil
}

// DropEngine removes an engine from a live layer: it disappears from
// the roster snapshot first (new requests get "no engine"), then its
// batch worker is stopped. Operations that resolved the engine before
// the swap complete normally on the retired snapshot — the engine's
// locks and array stay intact, only unreachable. The metrics registry
// entry is removed with it.
func (c *Concurrent) DropEngine(name string) error {
	c.setMu.Lock()
	defer c.setMu.Unlock()
	if c.down.Load() {
		return ErrClosed
	}
	cur := c.set.Load()
	g, ok := cur.m[name]
	if !ok {
		return errNoEngine(name)
	}
	if c.jr != nil {
		lsn, jerr := c.jr.Append(JournalEntry{Op: JournalDrop, Engine: name})
		if jerr != nil {
			return jerr
		}
		if jerr := c.jr.Commit(lsn); jerr != nil {
			return jerr
		}
		c.rosterLSN = lsn
	}
	next := &engineSet{
		order: make([]string, 0, len(cur.order)-1),
		m:     make(map[string]*guardedEngine, len(cur.m)-1),
	}
	for _, n := range cur.order {
		if n != name {
			next.order = append(next.order, n)
		}
	}
	for k, v := range cur.m {
		if k != name {
			next.m[k] = v
		}
	}
	c.set.Store(next)
	if c.met != nil {
		c.met.Unregister(name)
	}
	// Retire the worker. dropped flips under the write lock, so any
	// MSearch sender that saw it unset still holds the read lock and
	// completes its send before the close below can proceed.
	c.sendMu.Lock()
	g.dropped.Store(true)
	close(g.batch)
	c.sendMu.Unlock()
	return nil
}

// SetLockedReads forces (on=true) every search through the serialized
// engine lock instead of the lock-free seqlock path — the escape hatch
// and the A/B baseline for contention benchmarks. Like Instrument it
// is part of construction: call it before the Concurrent is shared
// across goroutines.
func (c *Concurrent) SetLockedReads(on bool) *Concurrent {
	c.lockedReads = on
	return c
}

// searchSeq runs one search on a pooled lock-free Reader, folding its
// torn-snapshot count into the engine's retry telemetry (and the
// request trace). ok=false means the Reader could not certify an
// answer; the caller escalates to the serialized path.
func (c *Concurrent) searchSeq(g *guardedEngine, key bitutil.Ternary, tr *trace.Trace) (SearchResult, bool) {
	mark := 0
	if tr.Enabled() {
		mark = len(tr.Events)
	}
	rd := g.readers.get()
	sr, ok := g.e.SearchSeq(rd, key, tr)
	n := rd.TakeRetries()
	g.readers.put(rd)
	if !ok && tr.Enabled() {
		// Drop the abandoned attempt's partial probe chain; the
		// serialized re-run records the authoritative one.
		tr.Events = tr.Events[:mark]
	}
	if n > 0 {
		g.retries.Add(uint64(n))
		tr.Retries(n)
	}
	if !ok {
		g.fallbacks.Add(1)
	}
	return sr, ok
}

// SearchRetries reports the engine's lock-free read telemetry: torn
// seqlock snapshots re-read, and searches that escalated to the
// serialized path.
func (c *Concurrent) SearchRetries(port string) (retries, fallbacks uint64, err error) {
	g, ok := c.engine(port)
	if !ok {
		return 0, 0, errNoEngine(port)
	}
	return g.retries.Load(), g.fallbacks.Load(), nil
}

// msearchWorker drains one engine's batch queue until Close.
func (c *Concurrent) msearchWorker(g *guardedEngine) {
	defer c.workers.Done()
	for b := range g.batch {
		c.runBatch(g, b.reqs, b.out, b.idxs)
		b.wg.Done()
	}
}

// Close stops the per-engine batch workers and waits for them to
// drain. Afterwards every operation returns ErrClosed (per-slot for
// MSearch); only the uncharged read-side inspectors Contains and Info
// stay usable, since they touch no torn-down machinery. Close is
// idempotent and safe to race with in-flight operations — an op that
// already passed the gate completes normally on its own goroutine.
func (c *Concurrent) Close() {
	c.down.Store(true)
	// setMu excludes a racing CreateEngine: it either publishes its
	// engine before we load the roster here (and we stop its worker),
	// or it observes down under setMu and never starts one.
	c.setMu.Lock()
	c.sendMu.Lock()
	if !c.closed {
		c.closed = true
		set := c.set.Load()
		for _, name := range set.order {
			close(set.m[name].batch)
		}
	}
	c.sendMu.Unlock()
	c.setMu.Unlock()
	c.workers.Wait()
}

// Instrument attaches a metrics registry: every subsequent
// INSERT/SEARCH/DELETE/MSEARCH is observed — count, error, and
// wall-clock latency measured at the lock boundary (so the recorded
// time includes lock wait, the true service latency under contention) —
// and each engine gets a gauge sampler that reads its live core state
// (load factor, probe count / AMAL, overflow occupancy) under the read
// lock. Engines missing from the registry stay uninstrumented; requests
// naming no engine at all count against the registry's unknown counter.
//
// Instrument is part of construction: call it before the Concurrent is
// shared across goroutines.
func (c *Concurrent) Instrument(reg *metrics.Registry) *Concurrent {
	c.met = reg
	for name, g := range c.set.Load().m {
		em := reg.Engine(name)
		if em == nil {
			continue
		}
		em.SetType(g.e.Type.String())
		g.em = em
		g := g
		em.SetGaugeFunc(func() metrics.Gauges { return c.sampleGauges(g) })
	}
	return c
}

// Metrics returns the attached registry (nil when uninstrumented).
func (c *Concurrent) Metrics() *metrics.Registry { return c.met }

// sampleGauges reads one engine's live state under its read lock.
// Placement (the spilled-record scan) is O(rows); gauges are sampled on
// scrape/METRICS, never on the op path.
func (c *Concurrent) sampleGauges(g *guardedEngine) metrics.Gauges {
	g.mu.RLock()
	defer g.mu.RUnlock()
	st := g.e.Main.Stats()
	ovfl := 0
	if g.e.Overflow != nil {
		ovfl = g.e.Overflow.Len()
	}
	est := g.e.Main.EccStats()
	return metrics.Gauges{
		Records:           g.e.Main.Count(),
		LoadFactor:        g.e.Main.LoadFactor(),
		AMAL:              st.AMAL(),
		Lookups:           st.Lookups,
		RowsAccessed:      st.RowsAccessed,
		Hits:              st.Hits,
		Misses:            st.Misses,
		Overflow:          ovfl,
		Spilled:           g.e.Main.Placement().SpilledRecords,
		Health:            int(g.health.Load()),
		Quarantined:       g.e.Main.QuarantinedRows(),
		EccCorrected:      est.CorrectedBits,
		EccUncorrectable:  est.Uncorrectable,
		EccReadErrors:     est.ReadErrors,
		ScrubRepairedBits: est.ScrubRepairedBits,
		SearchRetries:     g.retries.Load(),
		LockFallbacks:     g.fallbacks.Load(),
	}
}

// SetHealthPolicy replaces the health thresholds. Like Instrument it
// is part of construction: call it before the Concurrent is shared
// across goroutines.
func (c *Concurrent) SetHealthPolicy(p HealthPolicy) *Concurrent {
	c.policy = p
	return c
}

// evalHealth computes the engine's health from its current state (the
// caller holds the engine lock). All inputs are O(1) counters, so this
// is cheap enough to run after every write-side operation.
func (c *Concurrent) evalHealth(g *guardedEngine) Health {
	p := c.policy
	q := g.e.Main.QuarantinedRows()
	if p.FailQuarantinedFrac > 0 && q > 0 &&
		float64(q) >= p.FailQuarantinedFrac*float64(g.e.Main.Config().Rows()) {
		return Failed
	}
	h := Healthy
	if p.DegradeQuarantined > 0 && q >= p.DegradeQuarantined {
		h = Degraded
	}
	if g.e.Overflow != nil && p.DegradeOverflowFrac > 0 {
		if cap := g.e.Overflow.Capacity(); cap > 0 &&
			float64(g.e.Overflow.Len()) >= p.DegradeOverflowFrac*float64(cap) {
			if h < Degraded {
				h = Degraded
			}
		}
	}
	return h
}

// Health returns the engine's current availability state (a lock-free
// read of what the breaker sees).
func (c *Concurrent) Health(port string) (Health, error) {
	g, ok := c.engine(port)
	if !ok {
		return Healthy, errNoEngine(port)
	}
	return Health(g.health.Load()), nil
}

// HealthInfo is the HEALTH wire command's payload for one engine.
type HealthInfo struct {
	State       Health
	Quarantined int
	Ecc         caram.EccStats
	OverflowLen int
	OverflowCap int
}

// HealthInfo snapshots an engine's availability state and the fault
// counters behind it, under the read lock.
func (c *Concurrent) HealthInfo(port string) (HealthInfo, error) {
	g, ok := c.engine(port)
	if !ok {
		return HealthInfo{}, errNoEngine(port)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	hi := HealthInfo{
		State:       Health(g.health.Load()),
		Quarantined: g.e.Main.QuarantinedRows(),
		Ecc:         g.e.Main.EccStats(),
	}
	if g.e.Overflow != nil {
		hi.OverflowLen, hi.OverflowCap = g.e.Overflow.Len(), g.e.Overflow.Capacity()
	}
	return hi, nil
}

// Scrub runs the engine's scrub pass under the write lock and then
// re-evaluates health from the repaired state. It is the episode
// boundary: the one transition allowed to LOWER health, because the
// array has just been restored from the authoritative shadow.
func (c *Concurrent) Scrub(port string) (caram.ScrubReport, error) {
	if c.down.Load() {
		return caram.ScrubReport{}, ErrClosed
	}
	g, ok := c.engine(port)
	if !ok {
		return caram.ScrubReport{}, errNoEngine(port)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := g.e.Main.Scrub()
	g.health.Store(int32(c.evalHealth(g)))
	return rep, nil
}

// errNoEngine formats the canonical unknown-port error.
func errNoEngine(port string) error {
	return fmt.Errorf("subsystem: no engine %q", port)
}

// Engines lists engine names in registration order (a snapshot; a
// concurrent CreateEngine/DropEngine may change the roster after).
func (c *Concurrent) Engines() []string {
	return append([]string(nil), c.set.Load().order...)
}

// EngineType reports the named engine's workload type.
func (c *Concurrent) EngineType(port string) (EngineType, error) {
	g, ok := c.engine(port)
	if !ok {
		return ExactEngine, errNoEngine(port)
	}
	return g.e.Type, nil
}

// Insert routes a record to the named engine under its write lock. A
// Failed engine fails fast with ErrEngineUnavailable before the lock
// (the circuit breaker), so a broken engine cannot queue work.
func (c *Concurrent) Insert(port string, rec match.Record) error {
	return c.InsertTraced(port, rec, nil)
}

// InsertTraced is Insert recording into a request-scoped trace. With a
// journal attached, the applied record is appended under the engine
// lock — so per-engine LSN order equals apply order, the invariant the
// replay gate relies on — and the durability wait (Commit) happens
// after unlock, so one connection's fsync never blocks the engine's
// other writers (group commit). The caller's ack is ordered after the
// wait: Insert returning nil means the record is durable under the
// journal's sync policy. The wal_append span covers append + wait.
func (c *Concurrent) InsertTraced(port string, rec match.Record, tr *trace.Trace) error {
	if c.down.Load() {
		return ErrClosed
	}
	g, ok := c.engine(port)
	if !ok {
		c.met.AddUnknown(1)
		return errNoEngine(port)
	}
	if Health(g.health.Load()) == Failed {
		return ErrEngineUnavailable
	}
	if g.em == nil && c.jr == nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		err := g.e.Insert(rec, g.st)
		g.raiseTo(c.evalHealth(g))
		return err
	}
	var start, walStart time.Time
	if g.em != nil {
		start = time.Now()
	}
	var lsn uint64
	g.mu.Lock()
	err := g.e.Insert(rec, g.st)
	if err == nil && c.jr != nil {
		if tr.Enabled() {
			walStart = time.Now()
		}
		lsn, err = c.journalInsert(g, port, rec)
	}
	g.raiseTo(c.evalHealth(g))
	g.mu.Unlock()
	if lsn != 0 {
		if cerr := c.jr.Commit(lsn); cerr != nil && err == nil {
			err = cerr
		}
		if !walStart.IsZero() {
			tr.Span(trace.KindWALAppend, walStart)
		}
	}
	if g.em != nil {
		g.em.Observe(metrics.OpInsert, time.Since(start), err)
	}
	return err
}

// Search runs one lookup on the named engine. On an overflow-less
// engine it is wait-free: the lookup runs on a pooled lock-free Reader
// over the array's per-row seqlock, touching no mutex — concurrent
// searches overlap with each other and with the engine's writer, the
// software form of §3.3's replicated comparator banks. Engines with an
// overflow CAM (and the rare search the seqlock protocol cannot
// certify) serialize under the engine lock as before.
func (c *Concurrent) Search(port string, key bitutil.Ternary) (SearchResult, error) {
	return c.SearchTraced(port, key, nil)
}

// SearchTraced is Search recording into a request-scoped trace: the
// engine layer records the probe chain, plus a retries event when the
// lock-free read re-read torn snapshots. Only the serialized path
// (overflow engines, escalations, SetLockedReads) records a lock_wait
// span — a lock-free search never waits on the port lock, which is the
// point. A nil trace is the plain hot path — Search delegates here,
// and with metrics also absent the clock is never read.
func (c *Concurrent) SearchTraced(port string, key bitutil.Ternary, tr *trace.Trace) (SearchResult, error) {
	if c.down.Load() {
		return SearchResult{}, ErrClosed
	}
	g, ok := c.engine(port)
	if !ok {
		c.met.AddUnknown(1)
		return SearchResult{}, errNoEngine(port)
	}
	if Health(g.health.Load()) == Failed {
		return SearchResult{}, ErrEngineUnavailable
	}
	if g.seqRead && !c.lockedReads {
		if g.em == nil && tr == nil {
			if sr, ok := c.searchSeq(g, key, nil); ok {
				return sr, nil
			}
		} else {
			start := time.Now()
			if sr, ok := c.searchSeq(g, key, tr); ok {
				if g.em != nil {
					g.em.Observe(metrics.OpSearch, time.Since(start), nil)
				}
				return sr, nil
			}
		}
	}
	if g.em == nil && tr == nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		sr := g.e.Search(key)
		if sr.Erred {
			g.raiseTo(c.evalHealth(g))
		}
		return sr, nil
	}
	start := time.Now()
	g.mu.Lock()
	tr.Span(trace.KindLockWait, start)
	sr := g.e.SearchTraced(key, tr)
	if sr.Erred {
		g.raiseTo(c.evalHealth(g))
	}
	g.mu.Unlock()
	if g.em != nil {
		g.em.Observe(metrics.OpSearch, time.Since(start), nil)
	}
	return sr, nil
}

// Explain runs one lookup with tracing forced on (tr must be non-nil)
// and also returns the engine's §3.4 analytic expectation of rows
// accessed — mean(1 + displacement) over the records stored at the
// moment of the lookup. On the lock-free path the lookup itself takes
// no lock; the expectation scan then runs under the read lock (it
// peeks every row, so it must not race the writer's plain reads). The
// lookup is real: it charges access statistics and counts as a search
// in the metrics layer, exactly like the request it explains.
func (c *Concurrent) Explain(port string, key bitutil.Ternary, tr *trace.Trace) (SearchResult, float64, error) {
	if c.down.Load() {
		return SearchResult{}, 0, ErrClosed
	}
	g, ok := c.engine(port)
	if !ok {
		c.met.AddUnknown(1)
		return SearchResult{}, 0, errNoEngine(port)
	}
	if Health(g.health.Load()) == Failed {
		return SearchResult{}, 0, ErrEngineUnavailable
	}
	start := time.Now()
	if g.seqRead && !c.lockedReads {
		if sr, ok := c.searchSeq(g, key, tr); ok {
			g.mu.RLock()
			expected := g.e.Main.ExpectedRows()
			g.mu.RUnlock()
			if g.em != nil {
				g.em.Observe(metrics.OpSearch, time.Since(start), nil)
			}
			return sr, expected, nil
		}
	}
	g.mu.Lock()
	tr.Span(trace.KindLockWait, start)
	sr := g.e.SearchTraced(key, tr)
	if sr.Erred {
		g.raiseTo(c.evalHealth(g))
	}
	expected := g.e.Main.ExpectedRows()
	g.mu.Unlock()
	if g.em != nil {
		g.em.Observe(metrics.OpSearch, time.Since(start), nil)
	}
	return sr, expected, nil
}

// ExpectedRows returns the engine's current §3.4 analytic expectation
// of rows accessed per lookup — the same value EXPLAIN prints — taken
// under the read lock without running a search. TRACE GET uses it to
// annotate a retained trace with the model value at fetch time.
func (c *Concurrent) ExpectedRows(port string) (float64, bool) {
	if c.down.Load() {
		return 0, false
	}
	g, ok := c.engine(port)
	if !ok {
		return 0, false
	}
	g.mu.RLock()
	expected := g.e.Main.ExpectedRows()
	g.mu.RUnlock()
	return expected, true
}

// Delete removes the exact key from the named engine under its write
// lock.
func (c *Concurrent) Delete(port string, key bitutil.Ternary) error {
	return c.DeleteTraced(port, key, nil)
}

// DeleteTraced is Delete recording into a request-scoped trace. With a
// journal attached the delete is logged before it applies: a logged
// delete that then finds nothing replays as the same harmless no-op,
// so failed deletes need no undo. As with inserts, the durability wait
// happens after unlock and the caller's ack after the wait.
func (c *Concurrent) DeleteTraced(port string, key bitutil.Ternary, tr *trace.Trace) error {
	if c.down.Load() {
		return ErrClosed
	}
	g, ok := c.engine(port)
	if !ok {
		c.met.AddUnknown(1)
		return errNoEngine(port)
	}
	if Health(g.health.Load()) == Failed {
		return ErrEngineUnavailable
	}
	if g.em == nil && c.jr == nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.e.Delete(key)
	}
	var start, walStart time.Time
	if g.em != nil {
		start = time.Now()
	}
	var lsn uint64
	var err error
	g.mu.Lock()
	if c.jr != nil {
		if tr.Enabled() {
			walStart = time.Now()
		}
		if lsn, err = c.jr.Append(JournalEntry{Op: JournalDelete, Engine: port, Key: key}); err == nil {
			g.e.AppliedLSN = lsn
		}
	}
	if err == nil {
		err = g.e.Delete(key)
	}
	g.mu.Unlock()
	if lsn != 0 {
		if cerr := c.jr.Commit(lsn); cerr != nil && err == nil {
			err = cerr
		}
		if !walStart.IsZero() {
			tr.Span(trace.KindWALAppend, walStart)
		}
	}
	if g.em != nil {
		g.em.Observe(metrics.OpDelete, time.Since(start), err)
	}
	return err
}

// Contains reports whether the exact key is stored. On an overflow-
// less engine it is lock-free (an uncharged seqlock scan on a pooled
// Reader); otherwise — or when the protocol cannot certify the scan —
// it takes the read lock and peeks rows as before.
func (c *Concurrent) Contains(port string, key bitutil.Ternary) (bool, error) {
	g, ok := c.engine(port)
	if !ok {
		return false, errNoEngine(port)
	}
	if g.seqRead && !c.lockedReads {
		rd := g.readers.get()
		found, ok := rd.Contains(key)
		if n := rd.TakeRetries(); n > 0 {
			g.retries.Add(uint64(n))
		}
		g.readers.put(rd)
		if ok {
			return found, nil
		}
		g.fallbacks.Add(1)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.e.Main.Contains(key), nil
}

// EngineInfo is a consistent snapshot of one engine's occupancy and
// activity counters.
type EngineInfo struct {
	Count      int
	LoadFactor float64
	Stats      caram.Stats
	Placement  EngineStats
}

// Info snapshots an engine's counters under the read lock.
func (c *Concurrent) Info(port string) (EngineInfo, error) {
	g, ok := c.engine(port)
	if !ok {
		return EngineInfo{}, errNoEngine(port)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return EngineInfo{
		Count:      g.e.Main.Count(),
		LoadFactor: g.e.Main.LoadFactor(),
		Stats:      g.e.Main.Stats(),
		Placement:  *g.st,
	}, nil
}

// PortKey names one element of a batched search: a key aimed at an
// engine port.
type PortKey struct {
	Port string
	Key  bitutil.Ternary
}

// MSearchResult is one slot of a batched search's answer.
type MSearchResult struct {
	Err    error
	Result SearchResult
}

// mjob is the per-engine grouping MSearch builds before dispatch.
type mjob struct {
	g    *guardedEngine
	idxs []int
}

// MSearch fans a batch of searches across engines. Requests are
// grouped by engine; each group is handed as one unit to the engine's
// persistent worker (the caller runs the first group itself), which
// acquires the engine lock once for the whole group and — when
// instrumented — charges the group with a single clock pair
// (metrics.ObserveBatch) instead of per-key timestamps. Groups for
// distinct engines run in parallel; requests sharing an engine
// serialize within their group, exactly the hardware's one-row-port
// constraint. Results come back in request order; an unknown port
// yields a per-slot error rather than failing the batch.
func (c *Concurrent) MSearch(reqs []PortKey) []MSearchResult {
	out := make([]MSearchResult, len(reqs))
	if c.down.Load() {
		for i := range out {
			out[i].Err = ErrClosed
		}
		return out
	}
	if len(reqs) == 0 {
		return out
	}
	jobs := make([]mjob, 0, 4)
	for i, r := range reqs {
		g, ok := c.engine(r.Port)
		if !ok {
			c.met.AddUnknown(1)
			out[i].Err = errNoEngine(r.Port)
			continue
		}
		if Health(g.health.Load()) == Failed {
			out[i].Err = ErrEngineUnavailable
			continue
		}
		found := false
		for j := range jobs { // engine counts are small; linear beats a map
			if jobs[j].g == g {
				jobs[j].idxs = append(jobs[j].idxs, i)
				found = true
				break
			}
		}
		if !found {
			jobs = append(jobs, mjob{g: g, idxs: []int{i}})
		}
	}
	switch len(jobs) {
	case 0:
		return out
	case 1:
		c.runBatch(jobs[0].g, reqs, out, jobs[0].idxs)
		return out
	}
	var wg sync.WaitGroup
	var inline []int // jobs whose engine was dropped mid-flight
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		for _, j := range jobs {
			c.runBatch(j.g, reqs, out, j.idxs)
		}
		return out
	}
	for i := range jobs[1:] {
		j := &jobs[1+i]
		// A dropped engine's batch channel is closed; its share runs
		// inline on the caller (the engine's array is still intact in
		// the retired snapshot this MSearch resolved against).
		if j.g.dropped.Load() {
			inline = append(inline, 1+i)
			continue
		}
		wg.Add(1)
		j.g.batch <- &msearchBatch{reqs: reqs, out: out, idxs: j.idxs, wg: &wg}
	}
	c.sendMu.RUnlock()
	for _, i := range inline {
		c.runBatch(jobs[i].g, reqs, out, jobs[i].idxs)
	}
	c.runBatch(jobs[0].g, reqs, out, jobs[0].idxs)
	wg.Wait()
	return out
}

// runBatch executes one engine's share of an MSearch. On the lock-free
// path the whole share runs on one pooled Reader with no mutex
// operations; any keys the seqlock protocol could not certify are
// re-run as a locked leftover batch. The serialized path takes the
// engine lock once for the whole share. Either way instrumentation
// measures the share with one clock pair, attributing each key its
// per-item slice of the duration.
func (c *Concurrent) runBatch(g *guardedEngine, reqs []PortKey, out []MSearchResult, idxs []int) {
	if g.seqRead && !c.lockedReads {
		var start time.Time
		if g.em != nil {
			start = time.Now()
		}
		rd := g.readers.get()
		var rest []int
		for _, i := range idxs {
			sr, ok := g.e.SearchSeq(rd, reqs[i].Key, nil)
			if !ok {
				rest = append(rest, i)
				continue
			}
			out[i].Result = sr
		}
		if n := rd.TakeRetries(); n > 0 {
			g.retries.Add(uint64(n))
		}
		g.readers.put(rd)
		if len(rest) > 0 {
			g.fallbacks.Add(uint64(len(rest)))
			c.runBatchLocked(g, reqs, out, rest)
		}
		if g.em != nil {
			g.em.ObserveBatch(metrics.OpMSearch, time.Since(start), uint64(len(idxs)), 0)
		}
		return
	}
	if g.em == nil {
		c.runBatchLocked(g, reqs, out, idxs)
		return
	}
	start := time.Now()
	c.runBatchLocked(g, reqs, out, idxs)
	g.em.ObserveBatch(metrics.OpMSearch, time.Since(start), uint64(len(idxs)), 0)
}

// runBatchLocked is the serialized share runner: the engine lock held
// once across the listed keys.
func (c *Concurrent) runBatchLocked(g *guardedEngine, reqs []PortKey, out []MSearchResult, idxs []int) {
	erred := false
	g.mu.Lock()
	for _, i := range idxs {
		out[i].Result = g.e.Search(reqs[i].Key)
		erred = erred || out[i].Result.Erred
	}
	if erred {
		g.raiseTo(c.evalHealth(g))
	}
	g.mu.Unlock()
}
