package subsystem

import (
	"fmt"
	"sync"
	"time"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/match"
	"caram/internal/metrics"
)

// Concurrent is the thread-safe dispatch layer over a fully-registered
// Subsystem — the software counterpart of §3.2's observation that
// "multiple lookup actions [can be] simultaneously in progress in
// different CA-RAM slices". Each engine gets its own RWMutex:
//
//   - INSERT / SEARCH / DELETE on one engine serialize (a slice has a
//     single row port, and even lookups update access statistics), but
//     the same operations on distinct engines run fully in parallel;
//   - read-only inspection (Contains, Info) takes the read lock and
//     may overlap with other readers of the same engine, since those
//     paths peek at rows without charging accesses.
//
// Once a Subsystem is wrapped, all access must go through the
// Concurrent layer; using the bare Subsystem or its engines directly
// alongside it would bypass the locks.
//
// An optional metrics registry (Instrument) observes every op at the
// lock boundary; without one the layer runs the original uncounted
// paths.
type Concurrent struct {
	order   []string
	engines map[string]*guardedEngine
	met     *metrics.Registry // nil when uninstrumented
}

// guardedEngine pairs an engine with its port lock and the placement
// stats the subsystem tracks for it.
type guardedEngine struct {
	mu sync.RWMutex
	e  *Engine
	st *EngineStats
	em *metrics.EngineMetrics // nil when uninstrumented
}

// NewConcurrent wraps a subsystem whose engine registration is
// complete. Engines added to the subsystem afterwards are not visible
// through the wrapper.
func NewConcurrent(sub *Subsystem) *Concurrent {
	c := &Concurrent{
		order:   sub.Engines(),
		engines: make(map[string]*guardedEngine, len(sub.engines)),
	}
	for _, name := range c.order {
		c.engines[name] = &guardedEngine{e: sub.engines[name], st: sub.stats[name]}
	}
	return c
}

// Instrument attaches a metrics registry: every subsequent
// INSERT/SEARCH/DELETE/MSEARCH is observed — count, error, and
// wall-clock latency measured at the lock boundary (so the recorded
// time includes lock wait, the true service latency under contention) —
// and each engine gets a gauge sampler that reads its live core state
// (load factor, probe count / AMAL, overflow occupancy) under the read
// lock. Engines missing from the registry stay uninstrumented; requests
// naming no engine at all count against the registry's unknown counter.
//
// Instrument is part of construction: call it before the Concurrent is
// shared across goroutines.
func (c *Concurrent) Instrument(reg *metrics.Registry) *Concurrent {
	c.met = reg
	for name, g := range c.engines {
		em := reg.Engine(name)
		if em == nil {
			continue
		}
		g.em = em
		g := g
		em.SetGaugeFunc(func() metrics.Gauges { return c.sampleGauges(g) })
	}
	return c
}

// Metrics returns the attached registry (nil when uninstrumented).
func (c *Concurrent) Metrics() *metrics.Registry { return c.met }

// sampleGauges reads one engine's live state under its read lock.
// Placement (the spilled-record scan) is O(rows); gauges are sampled on
// scrape/METRICS, never on the op path.
func (c *Concurrent) sampleGauges(g *guardedEngine) metrics.Gauges {
	g.mu.RLock()
	defer g.mu.RUnlock()
	st := g.e.Main.Stats()
	ovfl := 0
	if g.e.Overflow != nil {
		ovfl = g.e.Overflow.Len()
	}
	return metrics.Gauges{
		Records:      g.e.Main.Count(),
		LoadFactor:   g.e.Main.LoadFactor(),
		AMAL:         st.AMAL(),
		Lookups:      st.Lookups,
		RowsAccessed: st.RowsAccessed,
		Hits:         st.Hits,
		Misses:       st.Misses,
		Overflow:     ovfl,
		Spilled:      g.e.Main.Placement().SpilledRecords,
	}
}

// errNoEngine formats the canonical unknown-port error.
func errNoEngine(port string) error {
	return fmt.Errorf("subsystem: no engine %q", port)
}

// Engines lists engine names in registration order.
func (c *Concurrent) Engines() []string { return append([]string(nil), c.order...) }

// Insert routes a record to the named engine under its write lock.
func (c *Concurrent) Insert(port string, rec match.Record) error {
	g, ok := c.engines[port]
	if !ok {
		c.met.AddUnknown(1)
		return errNoEngine(port)
	}
	if g.em == nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.e.Insert(rec, g.st)
	}
	start := time.Now()
	g.mu.Lock()
	err := g.e.Insert(rec, g.st)
	g.mu.Unlock()
	g.em.Observe(metrics.OpInsert, time.Since(start), err)
	return err
}

// Search runs one lookup on the named engine. It takes the write lock:
// a search occupies the slice's only row port and updates its access
// statistics, so two searches of one engine cannot overlap — exactly
// the hardware's constraint.
func (c *Concurrent) Search(port string, key bitutil.Ternary) (SearchResult, error) {
	g, ok := c.engines[port]
	if !ok {
		c.met.AddUnknown(1)
		return SearchResult{}, errNoEngine(port)
	}
	if g.em == nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.e.Search(key), nil
	}
	start := time.Now()
	g.mu.Lock()
	sr := g.e.Search(key)
	g.mu.Unlock()
	g.em.Observe(metrics.OpSearch, time.Since(start), nil)
	return sr, nil
}

// Delete removes the exact key from the named engine under its write
// lock.
func (c *Concurrent) Delete(port string, key bitutil.Ternary) error {
	g, ok := c.engines[port]
	if !ok {
		c.met.AddUnknown(1)
		return errNoEngine(port)
	}
	if g.em == nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.e.Main.Delete(key)
	}
	start := time.Now()
	g.mu.Lock()
	err := g.e.Main.Delete(key)
	g.mu.Unlock()
	g.em.Observe(metrics.OpDelete, time.Since(start), err)
	return err
}

// Contains reports whether the exact key is stored. It takes only the
// read lock — the underlying scan peeks at rows and charges no
// accesses, so concurrent readers are safe.
func (c *Concurrent) Contains(port string, key bitutil.Ternary) (bool, error) {
	g, ok := c.engines[port]
	if !ok {
		return false, errNoEngine(port)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.e.Main.Contains(key), nil
}

// EngineInfo is a consistent snapshot of one engine's occupancy and
// activity counters.
type EngineInfo struct {
	Count      int
	LoadFactor float64
	Stats      caram.Stats
	Placement  EngineStats
}

// Info snapshots an engine's counters under the read lock.
func (c *Concurrent) Info(port string) (EngineInfo, error) {
	g, ok := c.engines[port]
	if !ok {
		return EngineInfo{}, errNoEngine(port)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return EngineInfo{
		Count:      g.e.Main.Count(),
		LoadFactor: g.e.Main.LoadFactor(),
		Stats:      g.e.Main.Stats(),
		Placement:  *g.st,
	}, nil
}

// PortKey names one element of a batched search: a key aimed at an
// engine port.
type PortKey struct {
	Port string
	Key  bitutil.Ternary
}

// MSearchResult is one slot of a batched search's answer.
type MSearchResult struct {
	Err    error
	Result SearchResult
}

// MSearch fans a batch of searches across engines: requests for
// distinct engines run in parallel (one goroutine per referenced
// port), requests sharing an engine serialize on its lock. Results
// come back in request order; an unknown port yields a per-slot error
// rather than failing the batch.
func (c *Concurrent) MSearch(reqs []PortKey) []MSearchResult {
	out := make([]MSearchResult, len(reqs))
	byPort := make(map[string][]int, len(c.engines))
	for i, r := range reqs {
		byPort[r.Port] = append(byPort[r.Port], i)
	}
	var wg sync.WaitGroup
	for port, idxs := range byPort {
		wg.Add(1)
		go func(port string, idxs []int) {
			defer wg.Done()
			g, ok := c.engines[port]
			if !ok {
				c.met.AddUnknown(uint64(len(idxs)))
				err := errNoEngine(port)
				for _, i := range idxs {
					out[i].Err = err
				}
				return
			}
			for _, i := range idxs {
				if g.em == nil {
					g.mu.Lock()
					sr := g.e.Search(reqs[i].Key)
					g.mu.Unlock()
					out[i].Result = sr
					continue
				}
				start := time.Now()
				g.mu.Lock()
				sr := g.e.Search(reqs[i].Key)
				g.mu.Unlock()
				g.em.Observe(metrics.OpMSearch, time.Since(start), nil)
				out[i].Result = sr
			}
		}(port, idxs)
	}
	wg.Wait()
	return out
}
