package subsystem

import (
	"fmt"

	"caram/internal/bitutil"
	"caram/internal/match"
)

// Subsystem is the Figure 5 assembly: named engines behind virtual
// ports, with request and result queues. The paper maps ports to
// memory addresses so ordinary loads and stores drive the subsystem;
// here Submit and Poll play the roles of those stores and loads.
type Subsystem struct {
	engines  map[string]*Engine
	order    []string
	results  []PortResult
	maxQueue int
	nextID   uint64
	stats    map[string]*EngineStats
}

// PortResult is one entry of the result queue.
type PortResult struct {
	ID     uint64
	Port   string
	Found  bool
	Record match.Record
}

// New builds an empty subsystem; maxQueue bounds the result queue
// (0 = 1024).
func New(maxQueue int) *Subsystem {
	if maxQueue <= 0 {
		maxQueue = 1024
	}
	return &Subsystem{
		engines:  make(map[string]*Engine),
		stats:    make(map[string]*EngineStats),
		maxQueue: maxQueue,
	}
}

// AddEngine registers an engine under its name (the virtual port of
// §3.2). Duplicate names are rejected.
func (s *Subsystem) AddEngine(e *Engine) error {
	if e == nil || e.Name == "" {
		return fmt.Errorf("subsystem: engine must be named")
	}
	if _, dup := s.engines[e.Name]; dup {
		return fmt.Errorf("subsystem: engine %q already registered", e.Name)
	}
	s.engines[e.Name] = e
	s.order = append(s.order, e.Name)
	s.stats[e.Name] = &EngineStats{}
	return nil
}

// Engine returns a registered engine.
func (s *Subsystem) Engine(name string) (*Engine, bool) {
	e, ok := s.engines[name]
	return e, ok
}

// Engines lists engine names in registration order.
func (s *Subsystem) Engines() []string { return append([]string(nil), s.order...) }

// Stats returns the placement stats of an engine's port.
func (s *Subsystem) Stats(name string) EngineStats {
	if st, ok := s.stats[name]; ok {
		return *st
	}
	return EngineStats{}
}

// Insert routes a record to the named engine's database.
func (s *Subsystem) Insert(port string, rec match.Record) error {
	e, ok := s.engines[port]
	if !ok {
		return fmt.Errorf("subsystem: no engine %q", port)
	}
	return e.Insert(rec, s.stats[port])
}

// Submit enqueues a search request on a virtual port: the input
// controller forwards it to the engine and the result lands in the
// result queue. It fails when the result queue is full — backpressure
// the hardware exerts by stalling the store.
func (s *Subsystem) Submit(port string, key bitutil.Ternary) (uint64, error) {
	e, ok := s.engines[port]
	if !ok {
		return 0, fmt.Errorf("subsystem: no engine %q", port)
	}
	if len(s.results) >= s.maxQueue {
		return 0, fmt.Errorf("subsystem: result queue full")
	}
	s.nextID++
	sr := e.Search(key)
	s.results = append(s.results, PortResult{
		ID:     s.nextID,
		Port:   port,
		Found:  sr.Found,
		Record: sr.Record,
	})
	return s.nextID, nil
}

// Poll dequeues the oldest result, if any.
func (s *Subsystem) Poll() (PortResult, bool) {
	if len(s.results) == 0 {
		return PortResult{}, false
	}
	r := s.results[0]
	s.results = s.results[1:]
	return r, true
}

// Pending returns the result-queue occupancy.
func (s *Subsystem) Pending() int { return len(s.results) }
