package subsystem

import (
	"fmt"
	"sync"

	"caram/internal/bitutil"
)

// Dispatcher executes searches concurrently across engines — the §3.2
// behavior of "multiple lookup actions simultaneously in progress in
// different CA-RAM slices, leading to high search bandwidth". Each
// engine is owned by exactly one goroutine (a slice has one row port,
// so per-engine serialization is the hardware's own constraint);
// requests fan out through per-engine queues and results merge into a
// single stream.
type Dispatcher struct {
	queues  map[string]chan dispatchReq
	results chan PortResult
	wg      sync.WaitGroup
	closed  bool
}

type dispatchReq struct {
	id  uint64
	key bitutil.Ternary
}

// NewDispatcher starts one worker per engine with the given queue
// depth (the request queue of Figure 5; 0 = 64). Callers must Close it
// to release the workers.
func NewDispatcher(engines []*Engine, queueDepth int) *Dispatcher {
	if queueDepth <= 0 {
		queueDepth = 64
	}
	d := &Dispatcher{
		queues:  make(map[string]chan dispatchReq, len(engines)),
		results: make(chan PortResult, queueDepth*len(engines)),
	}
	for _, e := range engines {
		e := e
		q := make(chan dispatchReq, queueDepth)
		d.queues[e.Name] = q
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for req := range q {
				sr := e.Search(req.key)
				d.results <- PortResult{
					ID:     req.id,
					Port:   e.Name,
					Found:  sr.Found,
					Record: sr.Record,
				}
			}
		}()
	}
	return d
}

// Submit enqueues a search on an engine's port. It blocks when the
// port's request queue is full — the backpressure a full hardware
// queue exerts.
func (d *Dispatcher) Submit(port string, id uint64, key bitutil.Ternary) error {
	q, ok := d.queues[port]
	if !ok {
		return fmt.Errorf("subsystem: no engine %q", port)
	}
	q <- dispatchReq{id: id, key: key}
	return nil
}

// Results is the merged result stream. It is closed by Close after all
// in-flight requests drain.
func (d *Dispatcher) Results() <-chan PortResult { return d.results }

// Close stops accepting requests, waits for in-flight work, and closes
// the result stream.
func (d *Dispatcher) Close() {
	if d.closed {
		return
	}
	d.closed = true
	for _, q := range d.queues {
		close(q)
	}
	d.wg.Wait()
	close(d.results)
}
