package subsystem

import (
	"errors"
	"sync"

	"caram/internal/bitutil"
)

// ErrDispatcherClosed is returned by Submit after Close has begun.
var ErrDispatcherClosed = errors.New("subsystem: dispatcher closed")

// Dispatcher executes searches concurrently across engines — the §3.2
// behavior of "multiple lookup actions simultaneously in progress in
// different CA-RAM slices, leading to high search bandwidth". Each
// engine is owned by exactly one goroutine (a slice has one row port,
// so per-engine serialization is the hardware's own constraint);
// requests fan out through per-engine queues and results merge into a
// single stream.
type Dispatcher struct {
	queues  map[string]chan dispatchReq
	results chan PortResult
	wg      sync.WaitGroup

	// mu guards closed and holds every in-flight Submit's queue send
	// under its read side, so Close can only tear the queues down once
	// no sender is mid-flight (and Submit can never send on a closed
	// channel).
	mu     sync.RWMutex
	closed bool
}

type dispatchReq struct {
	id  uint64
	key bitutil.Ternary
}

// NewDispatcher starts one worker per engine with the given queue
// depth (the request queue of Figure 5; 0 = 64). Callers must Close it
// to release the workers.
func NewDispatcher(engines []*Engine, queueDepth int) *Dispatcher {
	if queueDepth <= 0 {
		queueDepth = 64
	}
	d := &Dispatcher{
		queues:  make(map[string]chan dispatchReq, len(engines)),
		results: make(chan PortResult, queueDepth*len(engines)),
	}
	for _, e := range engines {
		e := e
		q := make(chan dispatchReq, queueDepth)
		d.queues[e.Name] = q
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for req := range q {
				sr := e.Search(req.key)
				d.results <- PortResult{
					ID:     req.id,
					Port:   e.Name,
					Found:  sr.Found,
					Record: sr.Record,
				}
			}
		}()
	}
	return d
}

// Submit enqueues a search on an engine's port. It blocks when the
// port's request queue is full — the backpressure a full hardware
// queue exerts. After Close it returns ErrDispatcherClosed. Callers
// must be draining Results, or a full queue can block Submit forever.
func (d *Dispatcher) Submit(port string, id uint64, key bitutil.Ternary) error {
	q, ok := d.queues[port]
	if !ok {
		return errNoEngine(port)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrDispatcherClosed
	}
	q <- dispatchReq{id: id, key: key}
	return nil
}

// Results is the merged result stream. It is closed by Close after all
// in-flight requests drain.
func (d *Dispatcher) Results() <-chan PortResult { return d.results }

// Close stops accepting requests, waits for in-flight work, and closes
// the result stream. It is idempotent and safe to race with Submit:
// late Submits fail with ErrDispatcherClosed instead of panicking.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	for _, q := range d.queues {
		close(q)
	}
	d.mu.Unlock()
	d.wg.Wait()
	close(d.results)
}
