package subsystem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/fault"
	"caram/internal/hash"
)

// TestChaosSeqlockUnderConcurrentScrub is the PR 6 extension of the
// fault-injection capstone: the same four ECC-protected engines with
// live injectors, but now (a) searches ride the lock-free seqlock path
// wherever eligible, (b) dedicated reader goroutines hammer SEARCH /
// Contains throughout, and (c) a scrubber goroutine runs Scrub
// concurrently with the fault phase — so quarantine, repair, and
// lock-free reads all overlap. Health is no longer monotone (scrub is
// the transition allowed to lower it), so the monitor instead asserts
// the PR 5 fault-accounting invariants that survive mid-phase scrubs:
//
//   - Uncorrectable and ScrubRepairedBits are monotone counters;
//   - ScrubRepairedBits <= 2*Uncorrectable at every instant (a scrub
//     can only repair bits that a double flip quarantined first).
//
// The no-silently-missing-key property holds throughout, and after the
// final quiesce + scrub the books must reconcile against the
// injector's ledger exactly as in TestChaosEngineUnderFaults — the
// concurrent scrubs must not leak or double-count a single bit.
func TestChaosSeqlockUnderConcurrentScrub(t *testing.T) {
	const (
		nEngines   = 4
		nWorkers   = 24
		nReaders   = 8
		iterations = 120
	)
	sub := New(0)
	names := make([]string, 0, nEngines)
	slices := make([]*caram.Slice, 0, nEngines)
	injs := make([]*fault.Injector, 0, nEngines)
	for i := 0; i < nEngines; i++ {
		name := fmt.Sprintf("cs%d", i)
		cfg := caram.Config{
			IndexBits: 6,
			RowBits:   4*(1+32+16) + 8,
			KeyBits:   32,
			DataBits:  16,
			Index:     hash.NewMultShift(6),
			ECC:       true,
		}
		var ovfl *cam.Device
		if i == 3 {
			cfg.ProbeLimit = caram.NoProbing
			ovfl = cam.MustNew(cam.Config{Entries: 32, KeyBits: 32})
		}
		sl := caram.MustNew(cfg)
		fcfg := fault.Config{
			Seed:     int64(4000 + i),
			PSingle:  0.01,
			PDouble:  0.002,
			PReadErr: 0.005,
			PSpike:   0.01,
		}
		if i == 0 {
			fcfg.Stuck = []fault.StuckCell{
				{Row: 9, Word: 0, Bit: 13, Value: 1},
				{Row: 40, Word: 2, Bit: 7, Value: 1},
			}
		}
		in := fault.New(fcfg)
		sl.Array().InstallFaults(in)
		if err := sub.AddEngine(&Engine{Name: name, Main: sl, Overflow: ovfl}); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		slices = append(slices, sl)
		injs = append(injs, in)
	}
	c := NewConcurrent(sub)
	defer c.Close()

	// Permanent keys inserted before injection: until the final scrub a
	// read may legitimately report an explicit miss-with-error (the row
	// can be quarantined), but never a silent miss.
	permKeys := make([]uint64, 16)
	for i := range permKeys {
		permKeys[i] = uint64(0xCAF0 + i)
		port := names[i%nEngines]
		if err := c.Insert(port, rec(permKeys[i], permKeys[i]&0xffff)); err != nil {
			t.Fatalf("permanent insert %x on %s: %v", permKeys[i], port, err)
		}
	}
	for _, in := range injs {
		in.Enable()
	}

	// Invariant monitor: the accounting properties that survive
	// concurrent scrubs (health itself may now go down mid-phase).
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		lastUncorrectable := make([]uint64, nEngines)
		lastScrubbed := make([]uint64, nEngines)
		for {
			for i, name := range names {
				hi, err := c.HealthInfo(name)
				if err != nil {
					t.Errorf("health info %s: %v", name, err)
					return
				}
				if hi.Ecc.Uncorrectable < lastUncorrectable[i] {
					t.Errorf("%s: Uncorrectable regressed %d -> %d",
						name, lastUncorrectable[i], hi.Ecc.Uncorrectable)
					return
				}
				if hi.Ecc.ScrubRepairedBits < lastScrubbed[i] {
					t.Errorf("%s: ScrubRepairedBits regressed %d -> %d",
						name, lastScrubbed[i], hi.Ecc.ScrubRepairedBits)
					return
				}
				if hi.Ecc.ScrubRepairedBits > 2*hi.Ecc.Uncorrectable {
					t.Errorf("%s: scrub repaired %d bits from only %d uncorrectable events",
						name, hi.Ecc.ScrubRepairedBits, hi.Ecc.Uncorrectable)
					return
				}
				lastUncorrectable[i] = hi.Ecc.Uncorrectable
				lastScrubbed[i] = hi.Ecc.ScrubRepairedBits
			}
			select {
			case <-stopMon:
				return
			case <-time.After(100 * time.Microsecond):
			}
		}
	}()

	// The scrubber: repairs run CONCURRENTLY with faults and lock-free
	// reads, round-robin across engines.
	stopScrub := make(chan struct{})
	var scrubWG sync.WaitGroup
	var scrubs atomic.Uint64
	scrubWG.Add(1)
	go func() {
		defer scrubWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopScrub:
				return
			case <-time.After(200 * time.Microsecond):
			}
			if _, err := c.Scrub(names[i%nEngines]); err != nil {
				t.Errorf("concurrent scrub %s: %v", names[i%nEngines], err)
				return
			}
			scrubs.Add(1)
		}
	}()

	// Dedicated seqlock readers: SEARCH and Contains on the permanent
	// keys, concurrent with writers, faults, and scrubs.
	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	var permReads atomic.Uint64
	for r := 0; r < nReaders; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopRead:
					return
				default:
				}
				key := permKeys[(r+i)%len(permKeys)]
				port := names[((r+i)%len(permKeys))%nEngines]
				sr, err := c.Search(port, exact(key))
				switch {
				case errors.Is(err, ErrEngineUnavailable):
				case err != nil:
					t.Errorf("reader search %x on %s: %v", key, port, err)
					return
				case !sr.Found && !sr.Erred:
					t.Errorf("permanent key %x silently missing on %s", key, port)
					return
				case sr.Found && sr.Record.Data.Uint64() != key&0xffff:
					t.Errorf("permanent key %x returned corrupt data %#x", key, sr.Record.Data.Uint64())
					return
				}
				if _, err := c.Contains(port, exact(key)); err != nil {
					t.Errorf("reader contains %x on %s: %v", key, port, err)
					return
				}
				permReads.Add(1)
			}
		}(r)
	}

	// Writers: same mixed-operation churn as the capstone, disjoint key
	// spaces, every kept key demanded back after the final scrub.
	expected := make([][]uint64, nWorkers)
	var wg sync.WaitGroup
	for gid := 0; gid < nWorkers; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + gid)))
			port := names[gid%nEngines]
			for i := 0; i < iterations; i++ {
				key := uint64(gid)<<16 | uint64(i)
				err := c.Insert(port, rec(key, key&0xffff))
				switch {
				case err == nil:
				case errors.Is(err, ErrEngineUnavailable),
					errors.Is(err, caram.ErrFull),
					errors.Is(err, errNoCapacity):
					continue
				default:
					t.Errorf("insert %x on %s: %v", key, port, err)
					continue
				}
				if sr, err := c.Search(port, exact(key)); err == nil && !sr.Found && !sr.Erred {
					t.Errorf("stored key %x silently missing on %s", key, port)
				}
				if i%7 == 3 {
					out := c.MSearch([]PortKey{{Port: port, Key: exact(key)}})
					if r := out[0]; r.Err == nil && !r.Result.Found && !r.Result.Erred {
						t.Errorf("stored key %x silently missing from MSearch on %s", key, port)
					}
				}
				if rng.Float64() < 0.85 {
					switch err := c.Delete(port, exact(key)); {
					case err == nil:
					case errors.Is(err, ErrEngineUnavailable),
						errors.Is(err, caram.ErrNotFound):
						expected[gid] = append(expected[gid], key)
					default:
						t.Errorf("delete %x on %s: %v", key, port, err)
					}
				} else {
					expected[gid] = append(expected[gid], key)
				}
			}
		}(gid)
	}
	wg.Wait()
	close(stopRead)
	readWG.Wait()
	close(stopScrub)
	scrubWG.Wait()
	close(stopMon)
	monWG.Wait()

	// Quiesce and reconcile: the concurrent scrubs must leave the exact
	// same global ledger as the capstone's single post-hoc scrub.
	for i, name := range names {
		injs[i].Disable()
		if _, err := c.Scrub(name); err != nil {
			t.Fatalf("final scrub %s: %v", name, err)
		}
	}
	var totalFlips uint64
	for i, name := range names {
		cnt := injs[i].Counts()
		est := slices[i].EccStats()
		totalFlips += cnt.BitsFlipped
		retries, fallbacks, _ := c.SearchRetries(name)
		t.Logf("%s: singles=%d doubles=%d stuck=%d readerrs=%d | corrected=%d uncorrectable=%d scrub_bits=%d | seq retries=%d fallbacks=%d",
			name, cnt.SingleFlips, cnt.DoubleFlips, cnt.StuckAsserts, cnt.ReadErrors,
			est.CorrectedBits, est.Uncorrectable, est.ScrubRepairedBits, retries, fallbacks)
		if est.CorrectedBits != cnt.SingleFlips+cnt.StuckAsserts {
			t.Errorf("%s: corrected %d != singles %d + stuck %d",
				name, est.CorrectedBits, cnt.SingleFlips, cnt.StuckAsserts)
		}
		if est.Uncorrectable != cnt.DoubleFlips {
			t.Errorf("%s: uncorrectable %d != doubles %d", name, est.Uncorrectable, cnt.DoubleFlips)
		}
		if est.ScrubRepairedBits != 2*cnt.DoubleFlips {
			t.Errorf("%s: scrub-repaired bits %d != 2*doubles %d",
				name, est.ScrubRepairedBits, cnt.DoubleFlips)
		}
		if est.ReadErrors != cnt.ReadErrors {
			t.Errorf("%s: ecc read errors %d != injected %d", name, est.ReadErrors, cnt.ReadErrors)
		}
		if got := est.CorrectedBits + est.ScrubRepairedBits; got != cnt.BitsFlipped {
			t.Errorf("%s: corrected+scrubbed %d != flipped %d", name, got, cnt.BitsFlipped)
		}
		if q := slices[i].QuarantinedRows(); q != 0 {
			t.Errorf("%s: %d rows still quarantined after final scrub", name, q)
		}
	}
	if totalFlips == 0 {
		t.Error("chaos run injected no faults; the harness is not exercising anything")
	}
	if permReads.Load() == 0 {
		t.Error("no dedicated lock-free reads completed")
	}
	t.Logf("concurrent scrubs=%d dedicated reads=%d", scrubs.Load(), permReads.Load())

	// Every kept key answers cleanly on the repaired arrays.
	lost := 0
	for gid, keys := range expected {
		port := names[gid%nEngines]
		for _, key := range keys {
			if sr, err := c.Search(port, exact(key)); err != nil || !sr.Found || sr.Erred {
				t.Errorf("key %x on %s lost after scrub: %+v, %v", key, port, sr, err)
				lost++
				if lost > 10 {
					t.Fatal("too many lost keys; aborting sweep")
				}
			}
		}
	}
}
