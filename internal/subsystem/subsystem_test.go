package subsystem

import (
	"math"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
	"caram/internal/workload"
)

func testSlice(t *testing.T, probe int, tech mem.Technology) *caram.Slice {
	t.Helper()
	return caram.MustNew(caram.Config{
		IndexBits:  8,
		RowBits:    4*(1+32+16) + 8,
		KeyBits:    32,
		DataBits:   16,
		Tech:       tech,
		ProbeLimit: probe,
		Index:      hash.NewMultShift(8),
	})
}

func rec(key, data uint64) match.Record {
	return match.Record{Key: bitutil.Exact(bitutil.FromUint64(key)), Data: bitutil.FromUint64(data)}
}

func TestEngineOverflowKeepsAMALOne(t *testing.T) {
	e := &Engine{
		Name:     "ip",
		Main:     testSlice(t, caram.NoProbing, mem.SRAM),
		Overflow: cam.MustNew(cam.Config{Entries: 256, KeyBits: 32}),
	}
	var st EngineStats
	// Overfill: 256 buckets x 4 slots = 1024 capacity; insert hot keys
	// that pile into few buckets to force overflow.
	n := 0
	for i := 0; i < 2000; i++ {
		if err := e.Insert(rec(uint64(i), uint64(i)), &st); err != nil {
			break
		}
		n++
	}
	if st.ToOverflow == 0 {
		t.Fatal("nothing overflowed; test not exercising the CAM")
	}
	if st.Inserted != n {
		t.Errorf("stats inserted=%d, placed %d", st.Inserted, n)
	}
	// Every record findable at exactly one row access.
	for i := 0; i < n; i++ {
		sr := e.Search(bitutil.Exact(bitutil.FromUint64(uint64(i))))
		if !sr.Found || sr.Record.Data.Uint64() != uint64(i) {
			t.Fatalf("key %d lost (found=%v)", i, sr.Found)
		}
		if sr.RowsRead != 1 {
			t.Fatalf("key %d cost %d rows; overflow should keep AMAL=1", i, sr.RowsRead)
		}
	}
	// AMAL over the whole engine is exactly 1.
	if amal := e.Main.Stats().AMAL(); amal != 1 {
		t.Errorf("AMAL = %f", amal)
	}
}

func TestEngineWithoutOverflowRejects(t *testing.T) {
	e := &Engine{Name: "x", Main: testSlice(t, caram.NoProbing, mem.SRAM)}
	var st EngineStats
	var sawErr bool
	for i := 0; i < 2000; i++ {
		if err := e.Insert(rec(uint64(i), 0), &st); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("engine accepted more than capacity")
	}
	if st.FailedInsert != 1 {
		t.Errorf("FailedInsert = %d", st.FailedInsert)
	}
}

func TestEngineScorePrefersOverflowRecord(t *testing.T) {
	// LPM-style: a longer prefix relegated to the overflow CAM must
	// still win over a shorter one in the main array.
	mainCfg := caram.Config{
		IndexBits:  2,
		RowBits:    1*(1+8+8+8) + 8, // one slot per bucket
		KeyBits:    8,
		DataBits:   8,
		Ternary:    true,
		ProbeLimit: caram.NoProbing,
		Index:      hash.NewBitSelect([]int{6, 7}),
	}
	e := &Engine{
		Name:     "lpm",
		Main:     caram.MustNew(mainCfg),
		Overflow: cam.MustNew(cam.Config{Entries: 16, KeyBits: 8, Kind: cam.Ternary}),
		Score:    func(r match.Record) int { return r.Key.Specificity(8) },
	}
	short, _ := bitutil.ParseTernary("11XXXXXX")
	long, _ := bitutil.ParseTernary("1100XXXX")
	var st EngineStats
	if err := e.Insert(match.Record{Key: short, Data: bitutil.FromUint64(1)}, &st); err != nil {
		t.Fatal(err)
	}
	// Same home bucket, single slot: the long prefix goes to overflow.
	if err := e.Insert(match.Record{Key: long, Data: bitutil.FromUint64(2)}, &st); err != nil {
		t.Fatal(err)
	}
	if st.ToOverflow != 1 {
		t.Fatalf("ToOverflow = %d", st.ToOverflow)
	}
	sr := e.Search(bitutil.Exact(bitutil.FromUint64(0b11000001)))
	if !sr.Found || sr.Record.Data.Uint64() != 2 || !sr.FromOvfl {
		t.Errorf("search = %+v, want overflow LPM win", sr)
	}
	// Address covered only by the short prefix.
	sr = e.Search(bitutil.Exact(bitutil.FromUint64(0b11110001)))
	if !sr.Found || sr.Record.Data.Uint64() != 1 || sr.FromOvfl {
		t.Errorf("search = %+v, want main-array match", sr)
	}
}

// The §3.4 bandwidth formula: an engine with N banks of DRAM (nmem=6)
// sustains ~N/6 requests per cycle under uniform saturating traffic.
func TestSimulateMatchesBandwidthFormula(t *testing.T) {
	for _, banks := range []int{1, 4, 8} {
		sl := caram.MustNew(caram.Config{
			IndexBits: 12,
			RowBits:   8*(1+32+16) + 8,
			KeyBits:   32,
			DataBits:  16,
			Tech:      mem.DRAM,
			Index:     hash.NewMultShift(12),
		})
		rng := workload.NewRand(3)
		keys := make([]bitutil.Ternary, 20000)
		for i := range keys {
			k := uint64(rng.Uint32())
			keys[i] = bitutil.Exact(bitutil.FromUint64(k))
			// Sparse load so AMAL stays 1.
			if i < 2000 {
				_ = sl.Insert(rec(k, 0))
			}
		}
		e := &Engine{Name: "bw", Main: sl, Banks: banks}
		res := e.Simulate(keys, TrafficConfig{QueueDepth: 256}, 1)
		want := float64(banks) / 6.0
		if math.Abs(res.ThroughputPerCy-want)/want > 0.15 {
			t.Errorf("banks=%d: throughput %.4f req/cy, formula %.4f",
				banks, res.ThroughputPerCy, want)
		}
		if res.RowAccesses < int64(len(keys)) {
			t.Errorf("banks=%d: rows=%d below request count", banks, res.RowAccesses)
		}
		// Utilization sane.
		for b, u := range res.Utilization() {
			if u < 0 || u > 1.0001 {
				t.Errorf("banks=%d: bank %d utilization %f", banks, b, u)
			}
		}
		// Absolute bandwidth at 200 MHz.
		hz := res.ThroughputHz(200e6)
		if hz < 0.8*want*200e6 || hz > 1.2*want*200e6 {
			t.Errorf("banks=%d: %f Hz", banks, hz)
		}
	}
}

func TestSimulateLowInjectionLatency(t *testing.T) {
	sl := testSlice(t, 0, mem.DRAM)
	for i := 0; i < 100; i++ {
		_ = sl.Insert(rec(uint64(i), 0))
	}
	keys := make([]bitutil.Ternary, 1000)
	rng := workload.NewRand(4)
	for i := range keys {
		keys[i] = bitutil.Exact(bitutil.FromUint64(uint64(rng.Intn(100))))
	}
	e := &Engine{Name: "lat", Main: sl, Banks: 4}
	// Far below saturation: latency ~ access + match, no queueing.
	res := e.Simulate(keys, TrafficConfig{InjectionPerCycle: 0.01}, 1)
	if res.AvgLatency > 20 {
		t.Errorf("unloaded latency = %.1f cycles", res.AvgLatency)
	}
	sat := e.Simulate(keys, TrafficConfig{}, 1)
	if sat.AvgLatency <= res.AvgLatency {
		t.Error("saturating traffic should increase latency")
	}
}

func TestSubsystemPorts(t *testing.T) {
	s := New(4)
	ip := &Engine{Name: "ip", Main: testSlice(t, 0, mem.SRAM)}
	tri := &Engine{Name: "trigram", Main: testSlice(t, 0, mem.SRAM)}
	if err := s.AddEngine(ip); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEngine(tri); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEngine(&Engine{Name: "ip", Main: ip.Main}); err == nil {
		t.Error("duplicate engine accepted")
	}
	if err := s.AddEngine(&Engine{}); err == nil {
		t.Error("unnamed engine accepted")
	}
	if got := s.Engines(); len(got) != 2 || got[0] != "ip" || got[1] != "trigram" {
		t.Errorf("Engines = %v", got)
	}

	if err := s.Insert("ip", rec(42, 4242)); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("nope", rec(1, 1)); err == nil {
		t.Error("insert to missing port accepted")
	}
	if st := s.Stats("ip"); st.Inserted != 1 {
		t.Errorf("stats = %+v", st)
	}

	id1, err := s.Submit("ip", bitutil.Exact(bitutil.FromUint64(42)))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit("trigram", bitutil.Exact(bitutil.FromUint64(42)))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Error("request IDs collide")
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	r, ok := s.Poll()
	if !ok || r.ID != id1 || r.Port != "ip" || !r.Found || r.Record.Data.Uint64() != 4242 {
		t.Errorf("first result = %+v", r)
	}
	r, ok = s.Poll()
	if !ok || r.Found { // trigram engine is empty
		t.Errorf("second result = %+v", r)
	}
	if _, ok := s.Poll(); ok {
		t.Error("Poll on empty queue")
	}
	if _, err := s.Submit("nope", bitutil.Ternary{}); err == nil {
		t.Error("submit to missing port accepted")
	}

	// Queue backpressure.
	for i := 0; i < 4; i++ {
		if _, err := s.Submit("ip", bitutil.Exact(bitutil.FromUint64(uint64(i)))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit("ip", bitutil.Ternary{}); err == nil {
		t.Error("full result queue accepted a request")
	}
	if e, ok := s.Engine("ip"); !ok || e != ip {
		t.Error("Engine accessor wrong")
	}
	if st := s.Stats("nope"); st != (EngineStats{}) {
		t.Error("missing port stats should be zero")
	}
}
