package subsystem

import (
	"caram/internal/bitutil"
	"caram/internal/cam"
	"caram/internal/match"
)

// Durability hook. The subsystem is fed from the insert side, so the
// mutation stream at the engine-lock boundary is the authoritative
// history of every table — the same observation that makes the §3.2
// shadow image the recovery source for scrub. A Journal (implemented
// by internal/wal) receives one entry per acknowledged mutation and
// per roster change; replay after a crash drives the same Insert /
// Delete / NewTypedEngine paths the live traffic did.
//
// Ordering contract: Append is called while the mutated engine's lock
// (or, for roster records, setMu) is held, immediately after the
// mutation applied. Per engine, LSN order therefore equals apply
// order, which is what makes the per-engine AppliedLSN gate sound
// during replay. Commit — the durability wait — happens outside the
// lock, so one connection's fsync never blocks another engine's
// writers (group commit).

// JournalOp enumerates the record types of the mutation journal.
type JournalOp uint8

const (
	// JournalInsert records one applied record placement (INSERT,
	// MINSERT, TINSERT — the engine stores the derived record, so
	// replay never needs the wire form).
	JournalInsert JournalOp = iota + 1
	// JournalDelete records one delete by exact (value, mask) key
	// (DELETE, MDELETE). Deletes are logged before they apply: a
	// logged delete that found nothing replays as the same no-op.
	JournalDelete
	// JournalCreate records CREATE ENGINE with its typed config.
	JournalCreate
	// JournalDrop records DROP ENGINE.
	JournalDrop
	// JournalSeal marks a clean shutdown. Never applied on replay; a
	// log whose last record is a seal needs no replay at all.
	JournalSeal
)

// JournalEntry is one logical mutation record. Fields beyond Op and
// Engine are op-specific; unused ones are zero.
type JournalEntry struct {
	Op     JournalOp
	Engine string
	Rec    match.Record    // JournalInsert: the record as stored
	Key    bitutil.Ternary // JournalDelete: the key removed
	Type   EngineType      // JournalCreate
	Conf   TypedConfig     // JournalCreate
}

// Journal is the durability sink the concurrency layer appends to.
// Append assigns and returns the record's LSN; Commit blocks until
// that LSN is durable under the journal's sync policy (it may return
// immediately for relaxed policies). Implementations must allow
// Append under an engine lock — it must never perform blocking I/O.
type Journal interface {
	Append(e JournalEntry) (lsn uint64, err error)
	Commit(lsn uint64) error
	LastLSN() uint64
}

// EngineImage is one engine's snapshot: geometry, the logical row
// image (quarantined rows contribute their shadow contents — the
// authoritative copy), and the overflow CAM's records with their
// priorities. AppliedLSN gates replay: records with lsn <= AppliedLSN
// are already reflected in Rows and must be skipped.
type EngineImage struct {
	Name        string
	Type        EngineType
	Conf        TypedConfig
	AppliedLSN  uint64
	Rows        []uint64
	OverflowCfg cam.Config // meaningful when HasOverflow
	HasOverflow bool
	Overflow    []OverflowEntry
}

// OverflowEntry is one overflow-CAM record with its priority.
type OverflowEntry struct {
	Rec      match.Record
	Priority int
}

// Image is a recovery-consistent snapshot of the whole roster.
// RosterLSN gates roster replay: CREATE/DROP records with
// lsn <= RosterLSN are already reflected in Engines.
type Image struct {
	RosterLSN uint64
	Engines   []EngineImage
}

// SetJournal attaches the durability sink. rosterLSN seeds the roster
// replay gate (the last CREATE/DROP LSN already reflected in the
// current roster — zero on a fresh start, the recovered value after
// boot recovery). Like Instrument it is part of construction: call it
// before the Concurrent is shared across goroutines.
func (c *Concurrent) SetJournal(j Journal, rosterLSN uint64) *Concurrent {
	c.jr = j
	c.rosterLSN = rosterLSN
	return c
}

// Journal returns the attached durability sink (nil when none).
func (c *Concurrent) Journal() Journal { return c.jr }

// SnapshotImage captures a recovery-consistent image of every engine.
// It holds setMu for the whole pass — excluding roster changes, so
// RosterLSN and the engine list agree — and captures each engine
// under its read lock, excluding that engine's writer. Lock-free
// seqlock searches are unaffected. Writers on OTHER engines proceed;
// the per-engine AppliedLSN values make the fuzziness safe: any
// record appended before the capture of its engine is in that
// engine's image and gated out of replay.
func (c *Concurrent) SnapshotImage() Image {
	c.setMu.Lock()
	defer c.setMu.Unlock()
	set := c.set.Load()
	img := Image{RosterLSN: c.rosterLSN}
	for _, name := range set.order {
		g := set.m[name]
		g.mu.RLock()
		cfg := g.e.Main.Config()
		ei := EngineImage{
			Name:       name,
			Type:       g.e.Type,
			Conf:       TypedConfig{IndexBits: cfg.IndexBits, Slots: cfg.Slots(), ECC: cfg.ECC},
			AppliedLSN: g.e.AppliedLSN,
			Rows:       g.e.Main.LogicalImage(),
		}
		if ov := g.e.Overflow; ov != nil {
			ei.HasOverflow = true
			ei.OverflowCfg = ov.Config()
			for i := 0; i < ov.Len(); i++ {
				rec, prio, ok := ov.EntryAt(i)
				if ok {
					ei.Overflow = append(ei.Overflow, OverflowEntry{Rec: rec, Priority: prio})
				}
			}
		}
		g.mu.RUnlock()
		img.Engines = append(img.Engines, ei)
	}
	return img
}

// journalInsert appends the applied insert to the journal while the
// engine lock is held. On append failure the placement is undone —
// the server must never acknowledge a mutation the log rejected, and
// an unlogged mutation must not survive in memory either (it would
// silently vanish on the next recovery). Inserts are logged after
// they apply (and only on success) because insert failure is not
// deterministic across replay: fault injection or quarantine can fail
// an insert that replay would accept.
func (c *Concurrent) journalInsert(g *guardedEngine, port string, rec match.Record) (uint64, error) {
	lsn, err := c.jr.Append(JournalEntry{Op: JournalInsert, Engine: port, Rec: rec})
	if err != nil {
		g.e.Delete(rec.Key) //nolint:errcheck // best-effort undo of a just-applied placement
		return 0, err
	}
	g.e.AppliedLSN = lsn
	return lsn, nil
}
