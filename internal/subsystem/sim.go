package subsystem

import (
	"caram/internal/bitutil"
)

// Cycle-level bandwidth simulation (§3.4). Requests stream into the
// engine at a configurable injection rate; each occupies its bank for
// nmem cycles per row accessed. The sustained throughput of a banked
// engine under uniform traffic approaches the analytical bound
// B = Nbanks/nmem * fclk.

// TrafficConfig shapes the offered load.
type TrafficConfig struct {
	// InjectionPerCycle is the offered request rate (requests per
	// clock cycle); 0 means saturating (a request is always waiting).
	InjectionPerCycle float64
	// QueueDepth bounds requests in flight (request queue of §3.2);
	// 0 means 64.
	QueueDepth int
}

// SimResult summarizes one simulated run.
type SimResult struct {
	Requests        int
	Cycles          int64   // makespan in clock cycles
	RowAccesses     int64   // total rows fetched
	ThroughputPerCy float64 // completed requests per cycle
	AvgLatency      float64 // cycles from arrival to completion
	BankBusy        []int64 // busy cycles per bank
}

// ThroughputHz converts to absolute search bandwidth at fclk.
func (r SimResult) ThroughputHz(fclkHz float64) float64 {
	return r.ThroughputPerCy * fclkHz
}

// Utilization returns each bank's busy fraction.
func (r SimResult) Utilization() []float64 {
	out := make([]float64, len(r.BankBusy))
	for i, b := range r.BankBusy {
		out[i] = float64(b) / float64(r.Cycles)
	}
	return out
}

// Simulate runs the keys through the engine's timing model. Each
// search's row count comes from actually performing it, so overflow
// reaches and probe chains are charged faithfully. matchCycles is the
// pipeline latency added to each request's completion (1 in the
// prototype, §3.3); it does not occupy the bank, since matching is
// pipelined with the next access.
func (e *Engine) Simulate(keys []bitutil.Ternary, traffic TrafficConfig, matchCycles int) SimResult {
	nmem := int64(e.Main.Array().Config().Timing.MinInterval)
	qd := traffic.QueueDepth
	if qd <= 0 {
		qd = 64
	}
	res := SimResult{
		Requests: len(keys),
		BankBusy: make([]int64, e.banks()),
	}
	bankFree := make([]int64, e.banks())
	finishRing := make([]int64, qd) // completion times of in-flight window
	var totalLatency int64
	for i, key := range keys {
		var arrival int64
		if traffic.InjectionPerCycle > 0 {
			arrival = int64(float64(i) / traffic.InjectionPerCycle)
		}
		sr := e.Search(key)
		rows := int64(sr.RowsRead)
		if rows == 0 {
			rows = 1
		}
		res.RowAccesses += rows
		home := e.Main.Index(key.Value)
		b := e.bankOf(home)
		start := arrival
		if bankFree[b] > start {
			start = bankFree[b]
		}
		// The request queue admits at most qd requests in flight: we
		// cannot start before the request qd slots ago completed.
		if prev := finishRing[i%qd]; prev > start {
			start = prev
		}
		busy := rows * nmem
		finish := start + busy
		bankFree[b] = finish
		res.BankBusy[b] += busy
		complete := finish + int64(matchCycles)
		finishRing[i%qd] = complete
		totalLatency += complete - arrival
		if complete > res.Cycles {
			res.Cycles = complete
		}
	}
	if res.Cycles > 0 {
		res.ThroughputPerCy = float64(res.Requests) / float64(res.Cycles)
	}
	if res.Requests > 0 {
		res.AvgLatency = float64(totalLatency) / float64(res.Requests)
	}
	return res
}
