package subsystem

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"caram/internal/bitutil"
	"caram/internal/mem"
	"caram/internal/metrics"
)

// concurrentFixture builds a Concurrent layer over n engines named
// e0..e(n-1), each backed by a fresh test slice.
func concurrentFixture(t *testing.T, n int) (*Concurrent, []string) {
	t.Helper()
	sub := New(0)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("e%d", i)
		sl := testSlice(t, 0, mem.SRAM)
		if err := sub.AddEngine(&Engine{Name: names[i], Main: sl}); err != nil {
			t.Fatal(err)
		}
	}
	return NewConcurrent(sub), names
}

func exact(k uint64) bitutil.Ternary { return bitutil.Exact(bitutil.FromUint64(k)) }

func TestConcurrentBasics(t *testing.T) {
	c, names := concurrentFixture(t, 2)
	if got := c.Engines(); len(got) != 2 || got[0] != "e0" || got[1] != "e1" {
		t.Fatalf("Engines() = %v", got)
	}
	if err := c.Insert("e0", rec(7, 70)); err != nil {
		t.Fatal(err)
	}
	sr, err := c.Search("e0", exact(7))
	if err != nil || !sr.Found || sr.Record.Data.Uint64() != 70 {
		t.Fatalf("Search = %+v, %v", sr, err)
	}
	if ok, err := c.Contains("e0", exact(7)); err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	// The other engine stays empty — engines are independent databases.
	if sr, err := c.Search("e1", exact(7)); err != nil || sr.Found {
		t.Fatalf("cross-engine Search = %+v, %v", sr, err)
	}
	info, err := c.Info("e0")
	if err != nil || info.Count != 1 || info.Placement.Inserted != 1 {
		t.Fatalf("Info = %+v, %v", info, err)
	}
	if info.Stats.Lookups != 1 { // the one e0 search; Contains charges nothing
		t.Errorf("Lookups = %d, want 1", info.Stats.Lookups)
	}
	if err := c.Delete("e0", exact(7)); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Contains("e0", exact(7)); ok {
		t.Error("key survived Delete")
	}
	_ = names
}

// TestConcurrentErrors covers every method's unknown-engine path.
func TestConcurrentErrors(t *testing.T) {
	c, _ := concurrentFixture(t, 1)
	if err := c.Insert("nope", rec(1, 1)); err == nil || !strings.Contains(err.Error(), "no engine") {
		t.Errorf("Insert err = %v", err)
	}
	if _, err := c.Search("nope", exact(1)); err == nil {
		t.Error("Search on unknown engine succeeded")
	}
	if err := c.Delete("nope", exact(1)); err == nil {
		t.Error("Delete on unknown engine succeeded")
	}
	if _, err := c.Contains("nope", exact(1)); err == nil {
		t.Error("Contains on unknown engine succeeded")
	}
	if _, err := c.Info("nope"); err == nil {
		t.Error("Info on unknown engine succeeded")
	}
}

func TestMSearchFanout(t *testing.T) {
	c, _ := concurrentFixture(t, 3)
	for e := 0; e < 3; e++ {
		for k := 0; k < 10; k++ {
			if err := c.Insert(fmt.Sprintf("e%d", e), rec(uint64(e*100+k), uint64(e*1000+k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	reqs := []PortKey{
		{Port: "e1", Key: exact(105)},  // hit
		{Port: "e0", Key: exact(3)},    // hit
		{Port: "nope", Key: exact(0)},  // unknown engine
		{Port: "e2", Key: exact(205)},  // hit
		{Port: "e0", Key: exact(9999)}, // miss
		{Port: "e1", Key: exact(101)},  // hit (same engine as slot 0)
	}
	res := c.MSearch(reqs)
	if len(res) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(res), len(reqs))
	}
	wantData := []int64{1005, 3, -1, 2005, -2, 1001} // -1 = error, -2 = miss
	for i, w := range wantData {
		r := res[i]
		switch {
		case w == -1:
			if r.Err == nil {
				t.Errorf("slot %d: expected error", i)
			}
		case w == -2:
			if r.Err != nil || r.Result.Found {
				t.Errorf("slot %d: expected miss, got %+v, %v", i, r.Result, r.Err)
			}
		default:
			if r.Err != nil || !r.Result.Found || r.Result.Record.Data.Uint64() != uint64(w) {
				t.Errorf("slot %d: want data %d, got %+v, %v", i, w, r.Result, r.Err)
			}
		}
	}
	if res := c.MSearch(nil); len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}

// TestStressConcurrentMixedOps hammers the Concurrent layer from many
// goroutines with mixed insert/search/delete/read traffic. Workers own
// disjoint key ranges, so each can assert its own sequential story
// (insert -> hit -> delete -> miss) even while the engines are shared.
// Run under -race this is the PR's core safety check.
func TestStressConcurrentMixedOps(t *testing.T) {
	const (
		workers = 32
		iters   = 80
		engines = 4
	)
	c, names := concurrentFixture(t, engines)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := names[g%engines]
			for i := 0; i < iters; i++ {
				// Keys stay within the slice's 32-bit key space and
				// data within its 16 data bits: worker id in the high
				// bits, iteration below.
				k := uint64(g)<<16 | uint64(i)
				d := uint64(g)<<8 | uint64(i&0xff) // fits DataBits: 16
				if err := c.Insert(eng, rec(k, d)); err != nil {
					t.Errorf("worker %d insert %x: %v", g, k, err)
					return
				}
				sr, err := c.Search(eng, exact(k))
				if err != nil || !sr.Found || sr.Record.Data.Uint64() != d {
					t.Errorf("worker %d search %x = %+v, %v", g, k, sr, err)
					return
				}
				// Batched search across every engine: only our own
				// engine can hold our key.
				reqs := make([]PortKey, engines)
				for e := range reqs {
					reqs[e] = PortKey{Port: names[e], Key: exact(k)}
				}
				for e, r := range c.MSearch(reqs) {
					if r.Err != nil {
						t.Errorf("worker %d msearch engine %d: %v", g, e, r.Err)
						return
					}
					if hit := r.Result.Found; hit != (names[e] == eng) {
						t.Errorf("worker %d msearch engine %d: found=%v", g, e, hit)
						return
					}
				}
				if ok, err := c.Contains(eng, exact(k)); err != nil || !ok {
					t.Errorf("worker %d contains %x = %v, %v", g, k, ok, err)
					return
				}
				if _, err := c.Info(eng); err != nil {
					t.Errorf("worker %d info: %v", g, err)
					return
				}
				if err := c.Delete(eng, exact(k)); err != nil {
					t.Errorf("worker %d delete %x: %v", g, k, err)
					return
				}
				if sr, _ := c.Search(eng, exact(k)); sr.Found {
					t.Errorf("worker %d: key %x survived delete", g, k)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Everything was deleted; engines must be empty and consistent.
	for _, n := range names {
		info, err := c.Info(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Count != 0 {
			t.Errorf("engine %s: %d records left after stress", n, info.Count)
		}
		if info.Placement.FailedInsert != 0 {
			t.Errorf("engine %s: %d failed inserts", n, info.Placement.FailedInsert)
		}
	}
}

// TestInstrumentedConcurrent pins the metrics contract at the lock
// boundary: every op is observed exactly once with its outcome, unknown
// ports hit the registry-level counter, and the gauge sampler reports
// the engine's live core state.
func TestInstrumentedConcurrent(t *testing.T) {
	c, names := concurrentFixture(t, 2)
	reg := metrics.NewRegistry(c.Engines())
	if c.Instrument(reg) != c || c.Metrics() != reg {
		t.Fatal("Instrument must return the receiver and retain the registry")
	}
	for k := uint64(1); k <= 3; k++ {
		if err := c.Insert("e0", rec(k, k*10)); err != nil {
			t.Fatal(err)
		}
	}
	if sr, err := c.Search("e0", exact(1)); err != nil || !sr.Found {
		t.Fatalf("Search = %+v, %v", sr, err)
	}
	if sr, err := c.Search("e0", exact(999)); err != nil || sr.Found {
		t.Fatalf("miss Search = %+v, %v", sr, err)
	}
	if err := c.Delete("e0", exact(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("e0", exact(999)); err == nil {
		t.Fatal("Delete of missing key succeeded")
	}
	c.MSearch([]PortKey{
		{Port: "e0", Key: exact(1)},
		{Port: "e1", Key: exact(1)},
		{Port: "nope", Key: exact(1)},
		{Port: "nope", Key: exact(2)},
	})
	if _, err := c.Search("ghost", exact(1)); err == nil {
		t.Fatal("unknown engine Search succeeded")
	}

	em := reg.Engine("e0")
	checks := []struct {
		op          metrics.Op
		count, errs uint64
	}{
		{metrics.OpInsert, 3, 0},
		{metrics.OpSearch, 2, 0},
		{metrics.OpDelete, 2, 1},
		{metrics.OpMSearch, 1, 0},
	}
	for _, ck := range checks {
		if em.Count(ck.op) != ck.count || em.Errors(ck.op) != ck.errs {
			t.Errorf("e0 %s = %d/%d, want %d/%d",
				ck.op, em.Count(ck.op), em.Errors(ck.op), ck.count, ck.errs)
		}
		if em.Latency(ck.op).N() != ck.count {
			t.Errorf("e0 %s latency N = %d, want %d", ck.op, em.Latency(ck.op).N(), ck.count)
		}
	}
	if got := reg.Engine("e1").Count(metrics.OpMSearch); got != 1 {
		t.Errorf("e1 msearch = %d, want 1", got)
	}
	if reg.Unknown() != 3 { // two msearch slots + one search
		t.Errorf("unknown = %d, want 3", reg.Unknown())
	}

	g, ok := em.SampleGauges()
	if !ok {
		t.Fatal("no gauges wired")
	}
	// 3 inserted - 1 deleted = 2 records; 2 searches + 1 msearch slot = 3
	// lookups (Delete probes rows but charges no lookup).
	if g.Records != 2 {
		t.Errorf("gauge records = %d, want 2", g.Records)
	}
	if g.Lookups != 3 || g.Hits != 2 || g.Misses != 1 {
		t.Errorf("gauge lookups/hits/misses = %d/%d/%d, want 3/2/1", g.Lookups, g.Hits, g.Misses)
	}
	if g.AMAL < 1 {
		t.Errorf("gauge AMAL = %v, want >= 1", g.AMAL)
	}
	if g.LoadFactor <= 0 {
		t.Errorf("gauge load factor = %v", g.LoadFactor)
	}
	_ = names
}

// TestUninstrumentedConcurrentUnchanged guards the nil-metrics fast
// path: without Instrument, ops run exactly as before and no registry
// is reachable.
func TestUninstrumentedConcurrentUnchanged(t *testing.T) {
	c, _ := concurrentFixture(t, 1)
	if c.Metrics() != nil {
		t.Fatal("fresh Concurrent has a registry")
	}
	if err := c.Insert("e0", rec(1, 1)); err != nil {
		t.Fatal(err)
	}
	if sr, err := c.Search("e0", exact(1)); err != nil || !sr.Found {
		t.Fatalf("Search = %+v, %v", sr, err)
	}
	if _, err := c.Search("nope", exact(1)); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
