package dict

import (
	"sort"
	"strings"
	"testing"

	"caram/internal/workload"
)

var sampleWords = []string{
	"cat", "cot", "cut", "car", "cap", "can", "cane", "candle",
	"bat", "bet", "bit", "but", "bad", "bed",
	"dog", "dig", "dug", "den", "din",
	"a", "an", "ant", "and",
	"search", "searching", "matcher", "matching", "match",
	"hash", "hashing", "bucket", "buckets",
}

func loaded(t *testing.T) *Dict {
	t.Helper()
	d := MustNew(Config{IndexBits: 6, Slots: 8})
	for i, w := range sampleWords {
		if err := d.Add(w, uint32(i+1)); err != nil {
			t.Fatalf("Add(%q): %v", w, err)
		}
	}
	return d
}

// naiveMatch applies the '?' pattern semantics directly.
func naiveMatch(pattern string) []string {
	var out []string
	for _, w := range sampleWords {
		if len(w) != len(pattern) {
			continue
		}
		ok := true
		for i := range w {
			if pattern[i] != '?' && pattern[i] != w[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

func words(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Word
	}
	sort.Strings(out)
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExactLookup(t *testing.T) {
	d := loaded(t)
	if d.Len() != len(sampleWords) {
		t.Fatalf("Len = %d", d.Len())
	}
	for i, w := range sampleWords {
		v, ok := d.Lookup(w)
		if !ok || v != uint32(i+1) {
			t.Fatalf("Lookup(%q) = %d, %v", w, v, ok)
		}
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("phantom hit")
	}
	if _, ok := d.Lookup(""); ok {
		t.Error("empty word matched")
	}
	// "cat" and "catx" are distinct; "ca" is not stored.
	if _, ok := d.Lookup("ca"); ok {
		t.Error("prefix matched as exact word")
	}
}

func TestAddRemoveValidation(t *testing.T) {
	d := MustNew(Config{})
	if err := d.Add("", 1); err == nil {
		t.Error("empty word accepted")
	}
	if err := d.Add(strings.Repeat("x", 16), 1); err == nil {
		t.Error("16-char word accepted")
	}
	if err := d.Add("nul\x00word", 1); err == nil {
		t.Error("NUL word accepted")
	}
	if err := d.Add("fine", 9); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("fine", 10); err == nil {
		t.Error("duplicate accepted")
	}
	if err := d.Remove("fine"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup("fine"); ok {
		t.Error("removed word found")
	}
	if err := d.Remove("fine"); err == nil {
		t.Error("double remove accepted")
	}
	if _, err := New(Config{IndexBits: 20}); err == nil {
		t.Error("oversized IndexBits accepted")
	}
}

func TestMatchPatternAnchored(t *testing.T) {
	d := loaded(t)
	cases := []string{"c?t", "ca?", "b?t", "d?g", "ma?ch", "c??", "hashing"}
	for _, pat := range cases {
		got, rows, err := d.MatchPattern(pat)
		if err != nil {
			t.Fatalf("MatchPattern(%q): %v", pat, err)
		}
		want := naiveMatch(pat)
		if !equal(words(got), want) {
			t.Errorf("MatchPattern(%q) = %v, want %v", pat, words(got), want)
		}
		if pat[0] != '?' && pat[1] != '?' && rows > 3 {
			t.Errorf("anchored pattern %q cost %d rows", pat, rows)
		}
	}
}

func TestMatchPatternUnanchoredSweeps(t *testing.T) {
	d := loaded(t)
	got, rows, err := d.MatchPattern("?at")
	if err != nil {
		t.Fatal(err)
	}
	want := naiveMatch("?at")
	if !equal(words(got), want) {
		t.Errorf("MatchPattern(?at) = %v, want %v", words(got), want)
	}
	// A sweep reads every bucket.
	if rows != d.Slice().Config().Rows() {
		t.Errorf("sweep read %d rows, want %d", rows, d.Slice().Config().Rows())
	}
	// Fully wild single char.
	got, _, err = d.MatchPattern("?")
	if err != nil {
		t.Fatal(err)
	}
	if !equal(words(got), []string{"a"}) {
		t.Errorf("MatchPattern(?) = %v", words(got))
	}
	if _, _, err := d.MatchPattern(""); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, _, err := d.MatchPattern(strings.Repeat("?", 16)); err == nil {
		t.Error("overlong pattern accepted")
	}
}

func TestMatchPrefix(t *testing.T) {
	d := loaded(t)
	got, rows, err := d.MatchPrefix("ca")
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, w := range sampleWords {
		if strings.HasPrefix(w, "ca") {
			want = append(want, w)
		}
	}
	sort.Strings(want)
	if !equal(words(got), want) {
		t.Errorf("MatchPrefix(ca) = %v, want %v", words(got), want)
	}
	if rows > 3 {
		t.Errorf("anchored prefix cost %d rows", rows)
	}
	// One-character prefix sweeps.
	got, _, err = d.MatchPrefix("b")
	if err != nil {
		t.Fatal(err)
	}
	want = want[:0]
	for _, w := range sampleWords {
		if strings.HasPrefix(w, "b") {
			want = append(want, w)
		}
	}
	sort.Strings(want)
	if !equal(words(got), want) {
		t.Errorf("MatchPrefix(b) = %v, want %v", words(got), want)
	}
}

// A larger randomized cross-check against the naive matcher.
func TestMatchPatternRandomized(t *testing.T) {
	d := MustNew(Config{IndexBits: 8, Slots: 16})
	rng := workload.NewRand(5)
	vocab := map[string]uint32{}
	letters := "abcdef"
	for len(vocab) < 800 {
		n := 2 + rng.Intn(5)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(letters[rng.Intn(len(letters))])
		}
		w := b.String()
		if _, dup := vocab[w]; dup {
			continue
		}
		v := uint32(len(vocab) + 1)
		vocab[w] = v
		if err := d.Add(w, v); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		pat := make([]byte, n)
		for i := range pat {
			if rng.Intn(3) == 0 {
				pat[i] = '?'
			} else {
				pat[i] = letters[rng.Intn(len(letters))]
			}
		}
		got, _, err := d.MatchPattern(string(pat))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for w := range vocab {
			if len(w) != n {
				continue
			}
			ok := true
			for i := range w {
				if pat[i] != '?' && pat[i] != w[i] {
					ok = false
					break
				}
			}
			if ok {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("pattern %q: %d matches, want %d", pat, len(got), want)
		}
		for _, m := range got {
			if vocab[m.Word] != m.Value {
				t.Fatalf("pattern %q: wrong value for %q", pat, m.Word)
			}
		}
	}
}
