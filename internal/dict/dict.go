// Package dict is a dictionary search engine in the mold of the
// related work's DISP chip (§5.1, Motomura et al.: "a large-capacity
// CAM design for dictionary lookup applications in natural language
// processing"), rebuilt on a CA-RAM slice. It stores words of up to 15
// characters with a value, answers exact lookups in one row access,
// and supports '?'-wildcard pattern matching: patterns whose leading
// two characters are fixed stay single-bucket; fully wild patterns
// fall back to a whole-array sweep through the match processors — the
// massive-data-evaluation capability of §1.
package dict

import (
	"fmt"
	"strings"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
)

// MaxWord is the longest storable word: 15 characters plus a length
// byte in the key's last position, which pins every match — exact,
// wildcard, or prefix-with-mask — to words of the intended length
// (a '?' must match a character, never the zero padding).
const MaxWord = 15

// Dict is the dictionary engine.
type Dict struct {
	slice *caram.Slice
}

// Config sizes the dictionary.
type Config struct {
	IndexBits int // 2^n buckets; default 10
	Slots     int // words per bucket; default 8
}

// New builds an empty dictionary. The index generator hashes the first
// two characters (key bytes 15 and 14, the top of the big-endian
// image), so exact lookups and leading-anchored patterns resolve to
// one bucket.
func New(cfg Config) (*Dict, error) {
	if cfg.IndexBits <= 0 {
		cfg.IndexBits = 10
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.IndexBits > 16 {
		return nil, fmt.Errorf("dict: IndexBits %d too large (max 16, two characters)", cfg.IndexBits)
	}
	// The top 16 key bits hold the first two characters; select the
	// low IndexBits of that window so single-character differences
	// spread.
	pos := make([]int, cfg.IndexBits)
	for i := range pos {
		pos[i] = 128 - 16 + i
	}
	slot := 1 + 128 + 32
	slice, err := caram.New(caram.Config{
		IndexBits: cfg.IndexBits,
		RowBits:   cfg.Slots*slot + 16,
		KeyBits:   128,
		DataBits:  32,
		AuxBits:   16,
		Index:     hash.NewBitSelect(pos),
	})
	if err != nil {
		return nil, err
	}
	return &Dict{slice: slice}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Dict {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// wordKey pads a word into its 128-bit key: characters from the most
// significant byte down, length in the last byte.
func wordKey(w string) bitutil.Vec128 {
	var buf [16]byte
	copy(buf[:], w)
	buf[15] = byte(len(w))
	return bitutil.FromBytes(buf[:])
}

// keyWord recovers the word from a stored key via its length byte.
func keyWord(k bitutil.Vec128) string {
	b := k.Bytes(128)
	n := int(b[15])
	if n > MaxWord {
		n = MaxWord
	}
	return string(b[:n])
}

// validate rejects unstorable words.
func validate(word string) error {
	if word == "" || len(word) > MaxWord {
		return fmt.Errorf("dict: word length %d outside [1,%d]", len(word), MaxWord)
	}
	if strings.IndexByte(word, 0) >= 0 {
		return fmt.Errorf("dict: word contains NUL")
	}
	return nil
}

// Add stores a word with its value.
func (d *Dict) Add(word string, val uint32) error {
	if err := validate(word); err != nil {
		return err
	}
	return d.slice.Insert(match.Record{
		Key:  bitutil.Exact(wordKey(word)),
		Data: bitutil.FromUint64(uint64(val)),
	})
}

// Remove deletes a word.
func (d *Dict) Remove(word string) error {
	if err := validate(word); err != nil {
		return err
	}
	return d.slice.Delete(bitutil.Exact(wordKey(word)))
}

// Len returns the stored word count.
func (d *Dict) Len() int { return d.slice.Count() }

// Lookup finds a word's value in one bucket access.
func (d *Dict) Lookup(word string) (uint32, bool) {
	if validate(word) != nil {
		return 0, false
	}
	res := d.slice.Lookup(bitutil.Exact(wordKey(word)))
	if !res.Found {
		return 0, false
	}
	return uint32(res.Record.Data.Uint64()), true
}

// Match is one pattern-match result.
type Match struct {
	Word  string
	Value uint32
}

// patternKey builds the ternary query for a '?'-wildcard pattern: each
// '?' masks its byte; the zero padding stays cared, so only words of
// the pattern's exact length match.
func patternKey(pattern string) (bitutil.Ternary, error) {
	if len(pattern) == 0 || len(pattern) > MaxWord {
		return bitutil.Ternary{}, fmt.Errorf("dict: pattern length %d outside [1,%d]", len(pattern), MaxWord)
	}
	var val, mask [16]byte
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '?' {
			mask[i] = 0xff
		} else {
			val[i] = pattern[i]
		}
	}
	val[15] = byte(len(pattern)) // length byte cared: equal-length words only
	return bitutil.NewTernary(bitutil.FromBytes(val[:]), bitutil.FromBytes(mask[:])), nil
}

// MatchPattern returns every stored word matching the pattern, where
// '?' matches any single character. It also reports the number of row
// accesses spent: one when the leading two characters are fixed (the
// pattern resolves to one bucket chain), or a full-array sweep when
// the wildcards reach the hash window.
func (d *Dict) MatchPattern(pattern string) ([]Match, int, error) {
	q, err := patternKey(pattern)
	if err != nil {
		return nil, 0, err
	}
	anchored := len(pattern) >= 2 && pattern[0] != '?' && pattern[1] != '?'
	if anchored {
		return d.matchAnchored(q)
	}
	// Whole-array evaluation: every bucket streams through the match
	// processors once.
	before := d.slice.Array().Stats().RowReads
	recs := d.slice.SelectWhere(q)
	rows := int(d.slice.Array().Stats().RowReads - before)
	return toMatches(recs), rows, nil
}

// matchAnchored searches the single bucket chain the anchored pattern
// hashes to.
func (d *Dict) matchAnchored(q bitutil.Ternary) ([]Match, int, error) {
	home := d.slice.Index(q.Value)
	rows := 0
	var out []Match
	reach := d.slice.Reach(home)
	arr := d.slice.Array()
	layout := d.slice.Layout()
	proc := match.NewProcessor(layout, 0)
	for dlt := 0; dlt <= reach && dlt < d.slice.Config().Rows(); dlt++ {
		idx := uint32((int(home) + dlt) % d.slice.Config().Rows())
		row := arr.ReadRow(idx)
		rows++
		out = append(out, toMatches(proc.SearchAll(row, q))...)
	}
	return out, rows, nil
}

func toMatches(recs []match.Record) []Match {
	out := make([]Match, 0, len(recs))
	for _, r := range recs {
		out = append(out, Match{Word: keyWord(r.Key.Value), Value: uint32(r.Data.Uint64())})
	}
	return out
}

// MatchPrefix returns every word beginning with prefix (any length up
// to MaxWord), by masking the tail bytes. The zero padding of shorter
// stored words is masked too, so "ca" matches both "cat" and "ca".
func (d *Dict) MatchPrefix(prefix string) ([]Match, int, error) {
	if err := validate(prefix); err != nil {
		return nil, 0, err
	}
	var val, mask [16]byte
	copy(val[:], prefix)
	for i := len(prefix); i < 16; i++ {
		mask[i] = 0xff // tail and length byte don't care: any length
	}
	q := bitutil.NewTernary(bitutil.FromBytes(val[:]), bitutil.FromBytes(mask[:]))
	if len(prefix) >= 2 {
		return d.matchAnchored(q)
	}
	before := d.slice.Array().Stats().RowReads
	recs := d.slice.SelectWhere(q)
	rows := int(d.slice.Array().Stats().RowReads - before)
	return toMatches(recs), rows, nil
}

// Slice exposes the underlying CA-RAM (statistics, RAM mode).
func (d *Dict) Slice() *caram.Slice { return d.slice }
