package iproute

import (
	"fmt"
	"math"
	"sort"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
	"caram/internal/workload"
)

// IPv6 lookup — the scaling pressure §4.1 anticipates: "The size of a
// routing table will even quadruple as we adopt IPv6." Routed IPv6
// prefixes are at most 64 bits, so a record is 64 ternary symbols
// (128 stored bits), twice the IPv4 key; with tables growing several-
// fold, associative capacity is exactly where TCAM hurts and dense
// CA-RAM pays off. The generator mirrors 2010s-era IPv6 BGP structure:
// /32 LIR allocations spawning clustered /48 site routes (the /48 mode
// plays /24's role), with hash bits drawn from the first 32 bits.

// Prefix6 is an IPv6 route: the top 64 bits of the address and a
// prefix length up to 64.
type Prefix6 struct {
	Addr    uint64 // top 64 address bits; bits below Len are zero
	Len     int    // 0..64
	NextHop uint8
}

// Canonical zeroes bits below the prefix length.
func (p Prefix6) Canonical() Prefix6 {
	p.Addr &= p.netMask()
	return p
}

func (p Prefix6) netMask() uint64 {
	if p.Len <= 0 {
		return 0
	}
	if p.Len >= 64 {
		return ^uint64(0)
	}
	return ^uint64(0) << uint(64-p.Len)
}

// Matches reports whether the 64-bit address head falls in the prefix.
func (p Prefix6) Matches(addr uint64) bool {
	return addr&p.netMask() == p.Addr&p.netMask()
}

// Key returns the 64-bit ternary CA-RAM key.
func (p Prefix6) Key() bitutil.Ternary {
	return bitutil.NewTernary(
		bitutil.FromUint64(p.Addr),
		bitutil.FromUint64(^p.netMask()),
	)
}

// String renders an abbreviated hex form, e.g. 2001:db8::/32.
func (p Prefix6) String() string {
	return fmt.Sprintf("%x:%x:%x:%x::/%d",
		p.Addr>>48, p.Addr>>32&0xffff, p.Addr>>16&0xffff, p.Addr&0xffff, p.Len)
}

// v6LengthDist: fractions per prefix length for prefixes of at least
// /32, mode at /48 with a secondary peak at /32 (allocation
// boundaries). Shorter prefixes use small absolute counts, as the v4
// generator does, because each one must be duplicated into every
// bucket its masked hash bits reach.
var v6LengthDist = []struct {
	len  int
	frac float64
}{
	{32, 0.270}, {36, 0.030}, {40, 0.062}, {44, 0.057},
	{48, 0.525}, {56, 0.031}, {64, 0.025},
}

// shortLengths6 gives absolute counts (at the 4x-PaperTableSize scale)
// for prefixes shorter than /32; counts scale with table size.
var shortLengths6 = []struct {
	len   int
	count int
}{
	{24, 20}, {26, 30}, {28, 60}, {29, 90}, {30, 120}, {31, 150},
}

// Generate6 synthesizes an IPv6-like table of n unique prefixes.
func Generate6(n int, seed int64) []Prefix6 {
	if n <= 0 {
		n = 4 * PaperTableSize // the paper's "quadruple" projection
	}
	rng := workload.NewRand(seed)

	// /32 allocation blocks (the top 32 bits), power-law popular.
	nBlocks := n/24 + 16
	blocks := make([]uint64, nBlocks)
	for i := range blocks {
		// 2000::/3 global unicast: top 3 bits = 001.
		blocks[i] = 0x20000000 | uint64(rng.Uint32())&0x1fffffff
	}
	blockCum := make([]float64, nBlocks)
	acc := 0.0
	for k := range blockCum {
		acc += 1 / math.Pow(float64(k+1), 0.70)
		blockCum[k] = acc
	}
	pickBlock := func() uint64 {
		u := rng.Float64() * acc
		i := sort.SearchFloat64s(blockCum, u)
		if i >= nBlocks {
			i = nBlocks - 1
		}
		return blocks[i]
	}

	cum := make([]float64, len(v6LengthDist))
	sum := 0.0
	for i, d := range v6LengthDist {
		sum += d.frac
		cum[i] = sum
	}
	sampleLen := func() int {
		u := rng.Float64() * sum
		for i, c := range cum {
			if u <= c {
				return v6LengthDist[i].len
			}
		}
		return 48
	}

	seen := make(map[uint64]bool, n)
	out := make([]Prefix6, 0, n)
	add := func(p Prefix6) bool {
		p = p.Canonical()
		id := p.Addr ^ uint64(p.Len)<<1
		if seen[id] {
			return false
		}
		seen[id] = true
		p.NextHop = uint8(1 + rng.Intn(255))
		out = append(out, p)
		return true
	}
	for _, sl := range shortLengths6 {
		count := sl.count * n / (4 * PaperTableSize)
		if count == 0 && n >= 4096 {
			count = 1
		}
		for placed := 0; placed < count; {
			addr := (0x20000000 | uint64(rng.Uint32())&0x1fffffff) << 32
			if add(Prefix6{Addr: addr, Len: sl.len}) {
				placed++
			}
		}
	}
	for len(out) < n {
		l := sampleLen()
		addr := pickBlock() << 32
		if l > 32 {
			addr |= rng.Uint64() & ((1<<uint(l-32) - 1) << uint(64-l))
		}
		add(Prefix6{Addr: addr, Len: l})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len != out[j].Len {
			return out[i].Len < out[j].Len
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Design6 is an IPv6 CA-RAM geometry: 64-bit ternary keys, so a row of
// the paper's 4096 bits holds half the keys an IPv4 row does.
type Design6 struct {
	Name       string
	R          int
	KeysPerRow int
	Slices     int
}

// Evaluation6 mirrors Evaluation for the IPv6 table.
type Evaluation6 struct {
	Design         Design6
	Prefixes       int
	Stored         int
	Duplicates     int
	DupPct         float64
	LoadFactor     float64
	OverflowingPct float64
	SpilledPct     float64
	AMALu          float64
	Unplaced       int
	Slice          *caram.Slice
}

// HashPositions6 returns the selection positions: the last n bits of
// the first 32 address bits (key bits 32..32+n-1), the IPv6 analogue
// of the paper's choice — almost every prefix is at least /32, so
// these bits are rarely masked.
func HashPositions6(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = 32 + i
	}
	return pos
}

// Evaluate6 builds an IPv6 design and computes the Table 2 metrics.
func Evaluate6(table []Prefix6, d Design6) (*Evaluation6, error) {
	gen := hash.NewBitSelect(HashPositions6(d.R))
	slot := 1 + 64 + 64 + slotDataBits
	slots := d.KeysPerRow * d.Slices
	slice, err := caram.New(caram.Config{
		IndexBits:       d.R,
		RowBits:         slots*slot + 16,
		KeyBits:         64,
		DataBits:        slotDataBits,
		Ternary:         true,
		AuxBits:         16,
		Tech:            mem.DRAM,
		Index:           gen,
		AllowDuplicates: true,
	})
	if err != nil {
		return nil, err
	}
	ordered := append([]Prefix6(nil), table...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Len > ordered[j].Len })

	ev := &Evaluation6{Design: d, Prefixes: len(table), Slice: slice}
	sum, n := 0.0, 0
	for _, p := range ordered {
		key := p.Key()
		rec := match.Record{Key: key, Data: bitutil.FromUint64(uint64(p.NextHop))}
		homes := gen.TernaryIndices(key)
		ev.Duplicates += len(homes) - 1
		for _, home := range homes {
			disp, err := slice.Place(home, rec)
			if err == caram.ErrFull {
				ev.Unplaced++
				continue
			}
			if err != nil {
				return nil, err
			}
			sum += float64(1 + disp)
			n++
		}
	}
	ev.Stored = slice.Count()
	ev.LoadFactor = float64(len(table)) / float64((1<<uint(d.R))*slots)
	ev.DupPct = 100 * float64(ev.Duplicates) / float64(len(table))
	pl := slice.Placement()
	ev.OverflowingPct = pl.OverflowingPct
	ev.SpilledPct = pl.SpilledPct
	if n > 0 {
		ev.AMALu = sum / float64(n)
	}
	return ev, nil
}

// LPMLookup6 resolves a 64-bit IPv6 address head against a built
// design.
func LPMLookup6(slice *caram.Slice, addr uint64) (nextHop uint8, length int, ok bool) {
	res := slice.LookupBest(bitutil.Exact(bitutil.FromUint64(addr)),
		func(r match.Record) int { return r.Key.Specificity(64) })
	if !res.Found {
		return 0, 0, false
	}
	return uint8(res.Record.Data.Uint64()), res.Record.Key.Specificity(64), true
}
