package iproute

import (
	"math"
	"math/rand"
	"sort"

	"caram/internal/workload"
)

// Synthetic BGP-like routing table. The AS1103 snapshot the paper uses
// is not redistributable, so we generate a table reproducing the two
// properties that drive Table 2 (see DESIGN.md):
//
//  1. The prefix-length histogram of 2006-era core tables (Huston '01,
//     RIPE RIS): minimum length 8, ~0.3% of prefixes shorter than /16
//     (the paper: "over 98% ... are at least 16 bits long"), mass
//     concentrated at /24, and short-prefix counts tuned so don't-care
//     duplication lands at the paper's 6.4%.
//  2. Clustering of prefixes in the 16-bit hash window: address space
//     is allocated hierarchically, so many prefixes share their top
//     16 bits. This skews bucket loads under bit-selection hashing and
//     is what produces the paper's overflow and AMAL levels.

// PaperTableSize is the AS1103 prefix count the paper reports.
const PaperTableSize = 186760

// shortLengths gives absolute counts (at PaperTableSize scale) for
// prefixes shorter than /16; counts scale linearly with table size.
// Tuned so total duplication = ~6.4% (12,035 extra entries at full
// scale: sum of count*(2^(16-L)-1)).
var shortLengths = []struct {
	len   int
	count int
}{
	{8, 20}, {9, 15}, {10, 30}, {11, 40},
	{12, 60}, {13, 90}, {14, 100}, {15, 120},
}

// longLengthDist gives the fractional distribution over lengths >= 16.
var longLengthDist = []struct {
	len  int
	frac float64
}{
	{16, 0.065}, {17, 0.012}, {18, 0.022}, {19, 0.035},
	{20, 0.035}, {21, 0.037}, {22, 0.050}, {23, 0.055},
	{24, 0.672}, {25, 0.005}, {26, 0.004}, {27, 0.003},
	{28, 0.002}, {29, 0.001}, {30, 0.001}, {31, 0.0005}, {32, 0.0005},
}

// GenConfig controls table synthesis.
type GenConfig struct {
	Prefixes int   // target unique prefix count; 0 = PaperTableSize
	Seed     int64 // RNG seed
	// Blocks is the number of distinct /16 allocation blocks the long
	// prefixes cluster into; 0 derives a table-size-proportional
	// default (~1 block per 28 prefixes, matching observed clustering).
	Blocks int
	// BlockSkew is the power-law exponent for how prefixes pile into
	// popular blocks (weight of the k-th block ~ 1/(k+1)^s); 0
	// defaults to 0.70, calibrated so the Table 2 designs' overflow
	// and AMAL levels land at the paper's (B, C, E nearly exact).
	BlockSkew float64
}

// Generate synthesizes a routing table. The result is deduplicated,
// sorted by (length, address) for determinism, and contains exactly
// cfg.Prefixes entries.
func Generate(cfg GenConfig) []Prefix {
	if cfg.Prefixes <= 0 {
		cfg.Prefixes = PaperTableSize
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = cfg.Prefixes/28 + 16
	}
	if cfg.BlockSkew == 0 {
		cfg.BlockSkew = 0.70
	}
	rng := workload.NewRand(cfg.Seed)

	seen := make(map[uint64]bool, cfg.Prefixes)
	out := make([]Prefix, 0, cfg.Prefixes)
	add := func(p Prefix) bool {
		p = p.Canonical()
		id := uint64(p.Addr)<<6 | uint64(p.Len)
		if seen[id] {
			return false
		}
		seen[id] = true
		p.NextHop = uint8(1 + rng.Intn(255))
		out = append(out, p)
		return true
	}

	// Short prefixes: scaled absolute counts.
	for _, sl := range shortLengths {
		count := sl.count * cfg.Prefixes / PaperTableSize
		if count == 0 && cfg.Prefixes >= 4096 {
			count = 1
		}
		for placed := 0; placed < count; {
			addr := uint32(rng.Intn(224)) << 24 // unicast space
			addr |= uint32(rng.Intn(1<<16)) << 8
			if add(Prefix{Addr: addr, Len: sl.len}) {
				placed++
			}
		}
	}

	// Allocation blocks: top-16-bit values with a skewed first octet.
	blocks := make([]uint32, cfg.Blocks)
	for i := range blocks {
		blocks[i] = uint32(firstOctet(rng))<<8 | uint32(rng.Intn(256))
	}
	// Sub-linear power-law block popularity: cumulative weights sampled
	// by binary search (math/rand's Zipf requires s > 1, which is far
	// too head-heavy for address-space clustering).
	blockCum := make([]float64, len(blocks))
	acc := 0.0
	for k := range blockCum {
		acc += 1 / math.Pow(float64(k+1), cfg.BlockSkew)
		blockCum[k] = acc
	}
	pickBlock := func() uint32 {
		u := rng.Float64() * acc
		i := sort.SearchFloat64s(blockCum, u)
		if i >= len(blocks) {
			i = len(blocks) - 1
		}
		return blocks[i]
	}

	// Long prefixes: length from the distribution, block from the
	// popularity law.
	cum := cumulative(longLengthDist)
	for len(out) < cfg.Prefixes {
		l := sampleLen(rng, cum)
		block := pickBlock()
		addr := block << 16
		if l > 16 {
			addr |= uint32(rng.Intn(1<<uint(l-16))) << uint(32-l)
		}
		add(Prefix{Addr: addr, Len: l})
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Len != out[j].Len {
			return out[i].Len < out[j].Len
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// firstOctet draws a first octet with the real-world concentration of
// allocations in a handful of /8s.
func firstOctet(rng *rand.Rand) int {
	// 40% of blocks land in 8 "hot" /8s, the rest spread over unicast
	// space — a coarse image of 2006 BGP allocation density.
	hot := []int{62, 80, 193, 195, 200, 202, 210, 217}
	if rng.Intn(100) < 40 {
		return hot[rng.Intn(len(hot))]
	}
	return 1 + rng.Intn(222)
}

func cumulative(dist []struct {
	len  int
	frac float64
}) []float64 {
	cum := make([]float64, len(dist))
	sum := 0.0
	for i, d := range dist {
		sum += d.frac
		cum[i] = sum
	}
	return cum
}

func sampleLen(rng *rand.Rand, cum []float64) int {
	u := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if u <= c {
			return longLengthDist[i].len
		}
	}
	return longLengthDist[len(longLengthDist)-1].len
}

// LengthHistogram returns prefix counts per length, for diagnostics.
func LengthHistogram(table []Prefix) [33]int {
	var h [33]int
	for _, p := range table {
		if p.Len >= 0 && p.Len <= 32 {
			h[p.Len]++
		}
	}
	return h
}
