package iproute

import (
	"fmt"
	"math/bits"
	"sort"

	"caram/internal/bitutil"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/match"
	"caram/internal/mem"
	"caram/internal/workload"
)

// Arrangement is how multiple slices combine into one search engine
// (§3.2): horizontal slices widen buckets, vertical slices add rows.
type Arrangement int

// Arrangements.
const (
	Horizontal Arrangement = iota
	Vertical
)

// String names the arrangement as Table 2 does.
func (a Arrangement) String() string {
	if a == Vertical {
		return "vertical"
	}
	return "horizontal"
}

// Design is one row of Table 2: a CA-RAM geometry for the IP-lookup
// database. KeysPerRow is the per-slice bucket width in keys (the
// paper's C = KeysPerRow x 64 bits, each key being 32 ternary symbols).
type Design struct {
	Name       string
	R          int // per-slice index bits
	KeysPerRow int // 32 or 64
	Slices     int
	Arr        Arrangement
}

// Table2Designs are the six designs the paper evaluates.
var Table2Designs = []Design{
	{Name: "A", R: 11, KeysPerRow: 32, Slices: 6, Arr: Horizontal},
	{Name: "B", R: 11, KeysPerRow: 32, Slices: 7, Arr: Horizontal},
	{Name: "C", R: 11, KeysPerRow: 32, Slices: 8, Arr: Horizontal},
	{Name: "D", R: 12, KeysPerRow: 64, Slices: 2, Arr: Horizontal},
	{Name: "E", R: 12, KeysPerRow: 64, Slices: 3, Arr: Horizontal},
	{Name: "F", R: 12, KeysPerRow: 64, Slices: 2, Arr: Vertical},
}

// Buckets returns the total bucket count of the combined engine.
func (d Design) Buckets() int {
	if d.Arr == Vertical {
		return d.Slices << uint(d.R)
	}
	return 1 << uint(d.R)
}

// Slots returns S, keys per (combined) bucket.
func (d Design) Slots() int {
	if d.Arr == Vertical {
		return d.KeysPerRow
	}
	return d.KeysPerRow * d.Slices
}

// IndexBits returns the hash bits the combined engine consumes.
func (d Design) IndexBits() (int, error) {
	b := d.Buckets()
	if b&(b-1) != 0 {
		return 0, fmt.Errorf("iproute: design %s has non-power-of-two bucket count %d", d.Name, b)
	}
	return bits.TrailingZeros(uint(b)), nil
}

// CapacityBits returns the physical storage of the design in bits
// (64 bits per key slot), the quantity Figure 8's area model consumes.
func (d Design) CapacityBits() float64 {
	return float64(d.Slices) * float64(int(1)<<uint(d.R)) * float64(d.KeysPerRow) * 64
}

// Capacity returns M*S in keys.
func (d Design) Capacity() int { return d.Buckets() * d.Slots() }

// HashPositions returns the bit-selection positions for n index bits:
// "the last n bits in the first 16 bits" of the address (address bits
// 16..16+n-1 counting from the LSB), the choice the paper found best.
func HashPositions(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = 16 + i
	}
	return pos
}

// Evaluation is one computed row of Table 2 plus diagnostics.
type Evaluation struct {
	Design         Design
	Prefixes       int     // unique prefixes (pre-duplication)
	Stored         int     // stored records (with duplicates)
	Duplicates     int     // extra records from don't-care hash bits
	DupPct         float64 // duplicates as % of Prefixes
	LoadFactor     float64 // alpha = Prefixes / (M*S), the paper's convention
	OverflowingPct float64 // % of buckets that spilled a record
	SpilledPct     float64 // % of stored records placed off-home
	AMALu          float64 // uniform access pattern
	AMALs          float64 // skewed (Zipf) access pattern
	Unplaced       int     // records that found no slot (0 in sane designs)
	Slice          *caram.Slice
}

// slotDataBits is the next-hop field width stored with each key.
const slotDataBits = 8

// sliceConfig derives the simulator configuration for a design.
func sliceConfig(d Design) (caram.Config, *hash.BitSelect, error) {
	idxBits, err := d.IndexBits()
	if err != nil {
		return caram.Config{}, nil, err
	}
	gen := hash.NewBitSelect(HashPositions(idxBits))
	slot := 1 + 32 + 32 + slotDataBits // valid + key + mask + next hop
	cfg := caram.Config{
		IndexBits:       idxBits,
		RowBits:         d.Slots()*slot + 16,
		KeyBits:         32,
		DataBits:        slotDataBits,
		Ternary:         true,
		AuxBits:         16,
		Tech:            mem.DRAM,
		Index:           gen,
		AllowDuplicates: true,
	}
	return cfg, gen, nil
}

// Evaluate builds the design from the routing table and computes the
// Table 2 metrics. Prefixes are inserted in decreasing prefix-length
// order (the LPM priority of §4.1); the skewed variant additionally
// orders same-length prefixes by descending access weight, exactly the
// re-placement the paper describes for AMALs. seed drives the skewed
// weight assignment.
func Evaluate(table []Prefix, d Design, seed int64) (*Evaluation, error) {
	weights := skewWeights(table, seed)

	// AMALu placement: length-descending order.
	uni := orderByLength(table, nil)
	evalU, err := place(uni, d, nil)
	if err != nil {
		return nil, err
	}
	// AMALs placement: length then weight.
	skew := orderByLength(table, weights)
	evalS, err := place(skew, d, weights)
	if err != nil {
		return nil, err
	}

	evalU.AMALs = evalS.AMALs
	evalU.Prefixes = len(table)
	evalU.LoadFactor = float64(len(table)) / float64(d.Capacity())
	evalU.DupPct = 100 * float64(evalU.Duplicates) / float64(len(table))
	return evalU, nil
}

// skewWeights assigns each prefix a Zipf access weight. Ranks are
// dealt to prefix-length groups proportionally to group size (heaviest
// rank to the largest remaining quota) and randomly within a group, so
// every length class gets a representative share of hot prefixes: the
// skew lives where the paper's does — across prefixes — without one
// length class winning the head-of-Zipf lottery, which at small scales
// would drown the placement signal in sampling noise.
func skewWeights(table []Prefix, seed int64) []float64 {
	n := len(table)
	w := workload.Weights(1.0, n)
	rng := workload.NewRand(seed)

	groups := make(map[int][]int)
	var lengths []int
	for i, p := range table {
		if len(groups[p.Len]) == 0 {
			lengths = append(lengths, p.Len)
		}
		groups[p.Len] = append(groups[p.Len], i)
	}
	sort.Ints(lengths)
	for _, l := range lengths {
		workload.Shuffle(rng, groups[l])
	}

	credit := make(map[int]float64, len(lengths))
	next := make(map[int]int, len(lengths))
	out := make([]float64, n)
	for rank := 0; rank < n; rank++ {
		best, bestCredit := -1, 0.0
		for _, l := range lengths {
			credit[l] += float64(len(groups[l])) / float64(n)
			if next[l] < len(groups[l]) && (best < 0 || credit[l] > bestCredit) {
				best, bestCredit = l, credit[l]
			}
		}
		idx := groups[best][next[best]]
		next[best]++
		credit[best]--
		out[idx] = w[rank]
	}
	return out
}

// indexed pairs a prefix with its position in the original table so
// weights survive reordering.
type indexed struct {
	p Prefix
	i int
}

// orderByLength sorts prefixes by descending length; when weights are
// given, ties order by descending weight (the AMALs placement).
func orderByLength(table []Prefix, weights []float64) []indexed {
	out := make([]indexed, len(table))
	for i, p := range table {
		out[i] = indexed{p, i}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].p.Len != out[b].p.Len {
			return out[a].p.Len > out[b].p.Len
		}
		if weights != nil && weights[out[a].i] != weights[out[b].i] {
			return weights[out[a].i] > weights[out[b].i]
		}
		return false
	})
	return out
}

// place inserts the ordered prefixes and computes placement metrics.
// When weights is nil the AMAL it reports is uniform (AMALu, stored in
// the AMALu field); otherwise it is weight-averaged (AMALs).
func place(ordered []indexed, d Design, weights []float64) (*Evaluation, error) {
	cfg, gen, err := sliceConfig(d)
	if err != nil {
		return nil, err
	}
	slice, err := caram.New(cfg)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Design: d, Slice: slice}
	sumCost := 0.0 // sum over prefixes of expected accesses
	sumW := 0.0
	for _, ip := range ordered {
		key := ip.p.Key()
		rec := match.Record{Key: key, Data: bitutil.FromUint64(uint64(ip.p.NextHop))}
		homes := gen.TernaryIndices(key)
		ev.Duplicates += len(homes) - 1
		w := 1.0
		if weights != nil {
			w = weights[ip.i]
		}
		perCopy := w / float64(len(homes))
		for _, home := range homes {
			disp, err := slice.Place(home, rec)
			if err == caram.ErrFull {
				ev.Unplaced++
				continue
			}
			if err != nil {
				return nil, err
			}
			sumCost += perCopy * float64(1+disp)
			sumW += perCopy
		}
	}
	ev.Stored = slice.Count()
	p := slice.Placement()
	ev.OverflowingPct = p.OverflowingPct
	ev.SpilledPct = p.SpilledPct
	amal := 0.0
	if sumW > 0 {
		amal = sumCost / sumW
	}
	if weights == nil {
		ev.AMALu = amal
	} else {
		ev.AMALs = amal
	}
	return ev, nil
}

// LPMLookup performs a longest-prefix-match lookup for addr against a
// built design slice, returning the next hop. It is the operational
// (trace-driven) counterpart of the analytic AMAL computation.
func LPMLookup(slice *caram.Slice, addr uint32) (nextHop uint8, length int, ok bool) {
	res := slice.LookupBest(bitutil.Exact(bitutil.FromUint64(uint64(addr))),
		func(r match.Record) int { return r.Key.Specificity(32) })
	if !res.Found {
		return 0, 0, false
	}
	return uint8(res.Record.Data.Uint64()), res.Record.Key.Specificity(32), true
}
