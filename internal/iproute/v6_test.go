package iproute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"caram/internal/bitutil"
	"caram/internal/hash"
	"caram/internal/swsearch"
)

func TestPrefix6Basics(t *testing.T) {
	p := Prefix6{Addr: 0x20010db8_00000000, Len: 32}.Canonical()
	if got := p.String(); got != "2001:db8:0:0::/32" {
		t.Errorf("String = %q", got)
	}
	if !p.Matches(0x20010db8_12345678) {
		t.Error("member rejected")
	}
	if p.Matches(0x20010db9_00000000) {
		t.Error("outsider accepted")
	}
	if got := (Prefix6{Addr: ^uint64(0), Len: 0}).Canonical().Addr; got != 0 {
		t.Errorf("len-0 canonical = %x", got)
	}
	if (Prefix6{Addr: 1, Len: 64}).netMask() != ^uint64(0) {
		t.Error("full-length mask wrong")
	}
}

func TestPrefix6KeyAgreesWithMatchesQuick(t *testing.T) {
	f := func(addr, probe uint64, lenRaw uint8) bool {
		p := Prefix6{Addr: addr, Len: int(lenRaw) % 65}.Canonical()
		return p.Key().MatchesKey(bitutil.FromUint64(probe)) == p.Matches(probe)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerate6Shape(t *testing.T) {
	table := Generate6(40000, 1)
	if len(table) != 40000 {
		t.Fatalf("len = %d", len(table))
	}
	var h [65]int
	seen := map[uint64]bool{}
	for _, p := range table {
		if p.Len < 24 || p.Len > 64 {
			t.Fatalf("prefix length %d out of range", p.Len)
		}
		if p.Canonical() != p {
			t.Fatal("non-canonical prefix")
		}
		if p.Addr>>61 != 1 {
			t.Fatalf("prefix %s outside 2000::/3", p)
		}
		id := p.Addr ^ uint64(p.Len)<<1
		if seen[id] {
			t.Fatal("duplicate prefix")
		}
		seen[id] = true
		h[p.Len]++
	}
	// /48 is the mode; >98% of prefixes at least /32.
	if h[48] < len(table)/3 {
		t.Errorf("/48 count = %d", h[48])
	}
	atLeast32 := 0
	for l := 32; l <= 64; l++ {
		atLeast32 += h[l]
	}
	if frac := float64(atLeast32) / float64(len(table)); frac < 0.98 {
		t.Errorf("only %.1f%% >= /32", 100*frac)
	}
}

func TestGenerate6DuplicationBounded(t *testing.T) {
	table := Generate6(80000, 2)
	gen := hash.NewBitSelect(HashPositions6(12))
	extra := 0
	for _, p := range table {
		extra += gen.DuplicationFactor(p.Key()) - 1
	}
	pct := 100 * float64(extra) / float64(len(table))
	if pct > 5 {
		t.Errorf("IPv6 duplication = %.2f%%, should stay small", pct)
	}
	if extra == 0 {
		t.Error("no duplication at all: short prefixes missing")
	}
}

func TestEvaluate6AndLPM(t *testing.T) {
	table := Generate6(30000, 3)
	d := Design6{Name: "v6", R: 9, KeysPerRow: 32, Slices: 4}
	ev, err := Evaluate6(table, d)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Unplaced != 0 {
		t.Fatalf("unplaced = %d", ev.Unplaced)
	}
	if ev.AMALu < 1 || ev.AMALu > 3 {
		t.Errorf("AMALu = %f", ev.AMALu)
	}
	if ev.Stored != ev.Prefixes+ev.Duplicates {
		t.Errorf("stored %d != %d + %d", ev.Stored, ev.Prefixes, ev.Duplicates)
	}

	// LPM against a 64-bit software trie oracle.
	oracle := swsearch.NewTrie(64)
	for _, p := range table {
		oracle.Insert(p.Addr, p.Len, uint64(p.Len)<<8|uint64(p.NextHop))
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		p := table[rng.Intn(len(table))]
		addr := p.Addr
		if p.Len < 64 {
			addr |= rng.Uint64() & (1<<uint(64-p.Len) - 1)
		}
		oVal, oLen, oOK := oracle.Lookup(addr)
		hop, l, ok := LPMLookup6(ev.Slice, addr)
		if ok != oOK || (ok && l != oLen) {
			t.Fatalf("addr %x: got %v/%d, oracle %v/%d", addr, ok, l, oOK, oLen)
		}
		if ok && int(oVal>>8) == l && uint8(oVal) != hop {
			t.Fatalf("addr %x: hop %d, oracle %d", addr, hop, uint8(oVal))
		}
	}
}

func TestGenerate6DefaultQuadruples(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size v6 generation in -short mode")
	}
	table := Generate6(0, 1)
	if len(table) != 4*PaperTableSize {
		t.Errorf("default size = %d, want %d", len(table), 4*PaperTableSize)
	}
}
