package iproute

import (
	"testing"

	"caram/internal/hash"
)

func TestGenerateCountAndUniqueness(t *testing.T) {
	table := Generate(GenConfig{Prefixes: 20000, Seed: 1})
	if len(table) != 20000 {
		t.Fatalf("len = %d", len(table))
	}
	seen := map[uint64]bool{}
	for _, p := range table {
		if p.Canonical() != p {
			t.Fatalf("non-canonical prefix %s", p)
		}
		id := uint64(p.Addr)<<6 | uint64(p.Len)
		if seen[id] {
			t.Fatalf("duplicate prefix %s", p)
		}
		seen[id] = true
		if p.NextHop == 0 {
			t.Fatalf("prefix %s has zero next hop", p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Prefixes: 5000, Seed: 7})
	b := Generate(GenConfig{Prefixes: 5000, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := Generate(GenConfig{Prefixes: 5000, Seed: 8})
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical tables")
	}
}

func TestGenerateLengthDistribution(t *testing.T) {
	table := Generate(GenConfig{Prefixes: 100000, Seed: 2})
	h := LengthHistogram(table)
	atLeast16 := 0
	for l := 16; l <= 32; l++ {
		atLeast16 += h[l]
	}
	// Paper: over 98% of prefixes are at least 16 bits long.
	if frac := float64(atLeast16) / float64(len(table)); frac < 0.98 {
		t.Errorf("only %.1f%% of prefixes >= /16", 100*frac)
	}
	// Minimum length 8 (paper: first 8 bits never don't-care).
	for l := 0; l < 8; l++ {
		if h[l] != 0 {
			t.Errorf("%d prefixes of impossible length %d", h[l], l)
		}
	}
	// /24 is the mode.
	for l := 8; l <= 32; l++ {
		if l != 24 && h[l] > h[24] {
			t.Errorf("/%d (%d) outnumbers /24 (%d)", l, h[l], h[24])
		}
	}
	if h[24] < len(table)/2 {
		t.Errorf("/24 count %d below half the table", h[24])
	}
}

// The duplication the paper reports: ~6.4% extra entries from
// don't-care bits in hash positions, regardless of R (>8).
func TestDuplicationNearPaperValue(t *testing.T) {
	table := Generate(GenConfig{Prefixes: PaperTableSize, Seed: 3})
	for _, r := range []int{11, 12, 13} {
		gen := hash.NewBitSelect(HashPositions(r))
		extra := 0
		for _, p := range table {
			extra += gen.DuplicationFactor(p.Key()) - 1
		}
		pct := 100 * float64(extra) / float64(len(table))
		if pct < 5.5 || pct > 7.5 {
			t.Errorf("R=%d: duplication = %.2f%%, paper: 6.4%%", r, pct)
		}
	}
}

func TestGenerateClustersInHashWindow(t *testing.T) {
	// The top-16-bit blocks must be heavily reused — that clustering is
	// what drives Table 2's overflow behavior.
	table := Generate(GenConfig{Prefixes: 50000, Seed: 4})
	blocks := map[uint32]int{}
	for _, p := range table {
		if p.Len >= 16 {
			blocks[p.Addr>>16]++
		}
	}
	if len(blocks) >= len(table)/4 {
		t.Errorf("%d distinct /16 blocks for %d prefixes: no clustering", len(blocks), len(table))
	}
	maxBlock := 0
	for _, c := range blocks {
		if c > maxBlock {
			maxBlock = c
		}
	}
	if maxBlock < 100 {
		t.Errorf("largest block holds %d prefixes; expected hot blocks", maxBlock)
	}
}

func TestGenerateDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size table generation in -short mode")
	}
	table := Generate(GenConfig{Seed: 5})
	if len(table) != PaperTableSize {
		t.Errorf("default size = %d, want %d", len(table), PaperTableSize)
	}
}
