package iproute

import (
	"testing"
	"testing/quick"

	"caram/internal/bitutil"
)

func TestPrefixStringParseRoundTrip(t *testing.T) {
	cases := []string{"10.0.0.0/8", "192.168.1.0/24", "0.0.0.0/0", "255.255.255.255/32", "172.16.0.0/12"}
	for _, s := range cases {
		p, err := ParsePrefix(s)
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	for _, bad := range []string{"1.2.3/8", "300.0.0.0/8", "1.2.3.4/40", "garbage"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", bad)
		}
	}
}

func TestCanonicalZeroesHostBits(t *testing.T) {
	p := Prefix{Addr: 0xC0A80123, Len: 16}.Canonical()
	if p.Addr != 0xC0A80000 {
		t.Errorf("Canonical = %08x", p.Addr)
	}
	if got := (Prefix{Addr: 0xffffffff, Len: 0}).Canonical().Addr; got != 0 {
		t.Errorf("len-0 canonical = %08x", got)
	}
}

func TestMatches(t *testing.T) {
	p, _ := ParsePrefix("192.168.0.0/16")
	if !p.Matches(0xC0A8FFFF) {
		t.Error("inside address rejected")
	}
	if p.Matches(0xC0A90000) {
		t.Error("outside address accepted")
	}
	def, _ := ParsePrefix("0.0.0.0/0")
	if !def.Matches(0x12345678) {
		t.Error("default route must match everything")
	}
}

func TestKeyTernary(t *testing.T) {
	p, _ := ParsePrefix("192.168.0.0/16")
	k := p.Key()
	// Low 16 bits don't care.
	if k.Mask != bitutil.FromUint64(0xffff) {
		t.Errorf("mask = %v", k.Mask)
	}
	if !k.MatchesKey(bitutil.FromUint64(0xC0A81234)) {
		t.Error("key does not match member address")
	}
	if k.MatchesKey(bitutil.FromUint64(0xC0A91234)) {
		t.Error("key matches foreign address")
	}
	// Specificity equals prefix length.
	if got := k.Specificity(32); got != 16 {
		t.Errorf("specificity = %d", got)
	}
}

// Property: Key().MatchesKey agrees with Matches for random prefixes
// and addresses.
func TestKeyAgreesWithMatchesQuick(t *testing.T) {
	f := func(addr, probe uint32, lenRaw uint8) bool {
		p := Prefix{Addr: addr, Len: int(lenRaw) % 33}.Canonical()
		return p.Key().MatchesKey(bitutil.FromUint64(uint64(probe))) == p.Matches(probe)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrString(t *testing.T) {
	if got := AddrString(0x01020304); got != "1.2.3.4" {
		t.Errorf("AddrString = %q", got)
	}
}
