package iproute

import (
	"math/rand"
	"testing"

	"caram/internal/swsearch"
)

func TestDesignGeometry(t *testing.T) {
	cases := []struct {
		name           string
		buckets, slots int
		alpha          float64 // paper's load factor at 186,760 prefixes
	}{
		{"A", 2048, 192, 0.47},
		{"B", 2048, 224, 0.40},
		{"C", 2048, 256, 0.36},
		{"D", 4096, 128, 0.36},
		{"E", 4096, 192, 0.24},
		{"F", 8192, 64, 0.36},
	}
	byName := map[string]Design{}
	for _, d := range Table2Designs {
		byName[d.Name] = d
	}
	for _, c := range cases {
		d, ok := byName[c.name]
		if !ok {
			t.Fatalf("design %s missing", c.name)
		}
		if d.Buckets() != c.buckets {
			t.Errorf("%s: buckets = %d, want %d", c.name, d.Buckets(), c.buckets)
		}
		if d.Slots() != c.slots {
			t.Errorf("%s: slots = %d, want %d", c.name, d.Slots(), c.slots)
		}
		alpha := float64(PaperTableSize) / float64(d.Capacity())
		if alpha < c.alpha-0.01 || alpha > c.alpha+0.01 {
			t.Errorf("%s: alpha = %.3f, paper %.2f", c.name, alpha, c.alpha)
		}
		if _, err := d.IndexBits(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestDesignIndexBits(t *testing.T) {
	if n, _ := (Design{R: 12, Slices: 2, Arr: Vertical, KeysPerRow: 64}).IndexBits(); n != 13 {
		t.Errorf("vertical index bits = %d, want 13", n)
	}
	if n, _ := (Design{R: 12, Slices: 3, Arr: Horizontal, KeysPerRow: 64}).IndexBits(); n != 12 {
		t.Errorf("horizontal index bits = %d, want 12", n)
	}
	if _, err := (Design{R: 12, Slices: 3, Arr: Vertical, KeysPerRow: 64}).IndexBits(); err == nil {
		t.Error("3 vertical slices should be rejected")
	}
}

func TestHashPositions(t *testing.T) {
	pos := HashPositions(11)
	if len(pos) != 11 || pos[0] != 16 || pos[10] != 26 {
		t.Errorf("positions = %v", pos)
	}
}

func TestCapacityBits(t *testing.T) {
	d := Design{R: 12, KeysPerRow: 64, Slices: 2, Arr: Horizontal}
	if got := d.CapacityBits(); got != 2*4096*64*64 {
		t.Errorf("CapacityBits = %f", got)
	}
}

// scaledDesign shrinks a Table 2 design by dropping index bits,
// preserving alpha when the table shrinks by the same factor.
func scaledDesign(d Design, drop int) Design {
	d.R -= drop
	d.Name += "'"
	return d
}

func smallTable(t *testing.T, n int) []Prefix {
	t.Helper()
	return Generate(GenConfig{Prefixes: n, Seed: 11})
}

func TestEvaluateConsistency(t *testing.T) {
	// Quarter..sixteenth scale: design C at R=7 with a table scaled by
	// 2^-4 keeps alpha at 0.36.
	d := scaledDesign(Table2Designs[2], 4)
	table := smallTable(t, PaperTableSize/16)
	ev, err := Evaluate(table, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Prefixes != len(table) {
		t.Errorf("Prefixes = %d", ev.Prefixes)
	}
	if ev.Stored != len(table)+ev.Duplicates-ev.Unplaced {
		t.Errorf("Stored %d != prefixes %d + dup %d - unplaced %d",
			ev.Stored, ev.Prefixes, ev.Duplicates, ev.Unplaced)
	}
	if ev.Unplaced != 0 {
		t.Errorf("unplaced = %d", ev.Unplaced)
	}
	if ev.AMALu < 1 || ev.AMALs < 1 {
		t.Errorf("AMAL below 1: u=%f s=%f", ev.AMALu, ev.AMALs)
	}
	if ev.AMALs > ev.AMALu+1e-9 {
		t.Errorf("skewed placement worsened AMAL: u=%f s=%f", ev.AMALu, ev.AMALs)
	}
	if ev.LoadFactor < 0.30 || ev.LoadFactor > 0.42 {
		t.Errorf("alpha = %f, want ~0.36", ev.LoadFactor)
	}
	if ev.DupPct < 4 || ev.DupPct > 9 {
		t.Errorf("duplication = %.2f%%", ev.DupPct)
	}
	if msg := ev.Slice.Verify(); msg != "" {
		t.Errorf("slice invariant: %s", msg)
	}
}

// The core Table 2 relationships, at 1/16 scale:
//   - more area (lower alpha) => lower AMAL (A' > B' > C', D' > E')
//   - same alpha, better-distributing hash (D vs F) => D' < F'
//   - F (vertical) is the worst design.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design evaluation in -short mode")
	}
	table := smallTable(t, PaperTableSize/16)
	amal := map[string]float64{}
	spill := map[string]float64{}
	for _, d := range Table2Designs {
		sd := scaledDesign(d, 4)
		ev, err := Evaluate(table, sd, 1)
		if err != nil {
			t.Fatal(err)
		}
		amal[d.Name] = ev.AMALu
		spill[d.Name] = ev.SpilledPct
		t.Logf("design %s: alpha=%.2f overflow=%.2f%% spilled=%.2f%% AMALu=%.3f AMALs=%.3f",
			d.Name, ev.LoadFactor, ev.OverflowingPct, ev.SpilledPct, ev.AMALu, ev.AMALs)
	}
	if !(amal["A"] > amal["B"] && amal["B"] > amal["C"]) {
		t.Errorf("A>B>C violated: %v", amal)
	}
	if !(amal["D"] > amal["E"]) {
		t.Errorf("D>E violated: %v", amal)
	}
	if !(amal["F"] > amal["D"]) {
		t.Errorf("F>D violated: %v", amal)
	}
	for n, v := range amal {
		if v < 1 || v > 3 {
			t.Errorf("design %s AMALu=%f out of plausible range", n, v)
		}
	}
	if spill["F"] <= spill["D"] {
		t.Errorf("F should spill more than D: %v", spill)
	}
}

// Trace-driven LPM against a software trie oracle.
func TestLPMAgainstTrie(t *testing.T) {
	table := smallTable(t, 4000)
	d := Design{Name: "T", R: 8, KeysPerRow: 32, Slices: 4, Arr: Horizontal}
	ev, err := Evaluate(table, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := swsearch.NewTrie(32)
	for _, p := range table {
		// Value encodes (len, nexthop) so equal-length duplicates in
		// the table cannot disagree invisibly.
		oracle.Insert(uint64(p.Addr), p.Len, uint64(p.Len)<<8|uint64(p.NextHop))
	}
	rng := rand.New(rand.NewSource(6))
	checked := 0
	for i := 0; i < 4000; i++ {
		var addr uint32
		if i%2 == 0 {
			addr = uint32(rng.Uint64())
		} else {
			p := table[rng.Intn(len(table))]
			addr = p.Addr | uint32(rng.Uint64())&^p.Canonical().netMask()&^p.netMask()
			addr = p.Addr | uint32(rng.Uint64())&^p.netMask()
		}
		oVal, oLen, oOK := oracle.Lookup(uint64(addr))
		hop, l, ok := LPMLookup(ev.Slice, addr)
		if ok != oOK {
			t.Fatalf("addr %s: found=%v oracle=%v", AddrString(addr), ok, oOK)
		}
		if !ok {
			continue
		}
		if l != oLen {
			t.Fatalf("addr %s: len=%d oracle=%d", AddrString(addr), l, oLen)
		}
		// Next hops can legitimately differ only if two same-length
		// prefixes both match, which dedup prevents.
		if int(oVal>>8) == l && uint8(oVal&0xff) != hop {
			t.Fatalf("addr %s: hop=%d oracle=%d (len %d)", AddrString(addr), hop, oVal&0xff, l)
		}
		checked++
	}
	if checked < 1000 {
		t.Errorf("only %d positive lookups checked", checked)
	}
}
