// Package iproute implements the paper's first application study
// (§4.1): IP address lookup in core routers. It provides the prefix
// model, a synthetic BGP-like routing-table generator standing in for
// the AS1103 RIPE snapshot (see DESIGN.md, "Substitutions"), the
// mapping of prefixes onto CA-RAM designs — bit-selection hashing over
// the first 16 address bits, duplication of prefixes whose don't-care
// bits overlap the hash bits, LPM priority by prefix length — and the
// evaluation that regenerates Table 2.
package iproute

import (
	"fmt"

	"caram/internal/bitutil"
)

// Prefix is one routing-table entry: a CIDR prefix and its next hop.
type Prefix struct {
	Addr    uint32 // network byte order value; bits below Len are zero
	Len     int    // prefix length, 0..32
	NextHop uint8
}

// Canonical returns the prefix with bits below its length zeroed.
func (p Prefix) Canonical() Prefix {
	p.Addr = p.Addr & p.netMask()
	return p
}

func (p Prefix) netMask() uint32 {
	if p.Len <= 0 {
		return 0
	}
	if p.Len >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << uint(32-p.Len)
}

// Matches reports whether addr falls inside the prefix.
func (p Prefix) Matches(addr uint32) bool {
	return addr&p.netMask() == p.Addr&p.netMask()
}

// Key returns the prefix as a 32-bit ternary CA-RAM key: the address
// bits with the low 32-Len bits marked don't-care. (The paper counts
// this as a 64-bit key since each ternary symbol occupies two bits;
// our layout stores value and mask fields of 32 bits each, the same
// 64 bits of storage.)
func (p Prefix) Key() bitutil.Ternary {
	return bitutil.NewTernary(
		bitutil.FromUint64(uint64(p.Addr)),
		bitutil.FromUint64(uint64(^p.netMask())),
	)
}

// String renders dotted-quad CIDR form.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		p.Addr>>24, p.Addr>>16&0xff, p.Addr>>8&0xff, p.Addr&0xff, p.Len)
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	var a, b, c, d, l int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &l); err != nil {
		return Prefix{}, fmt.Errorf("iproute: bad prefix %q: %v", s, err)
	}
	for _, o := range []int{a, b, c, d} {
		if o < 0 || o > 255 {
			return Prefix{}, fmt.Errorf("iproute: bad octet in %q", s)
		}
	}
	if l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("iproute: bad length in %q", s)
	}
	p := Prefix{Addr: uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), Len: l}
	return p.Canonical(), nil
}

// AddrString renders an address in dotted-quad form.
func AddrString(addr uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", addr>>24, addr>>16&0xff, addr>>8&0xff, addr&0xff)
}
