package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"caram/internal/cam"
	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/server"
	"caram/internal/subsystem"
	"caram/internal/trace"
)

// startTracedBackend boots a server whose engines carry an overflow
// CAM — so reads take the locked path and record lock_wait spans —
// with a slowlog-0 collector that admits every request.
func startTracedBackend(t testing.TB, engines ...string) *testBackend {
	t.Helper()
	sub := subsystem.New(0)
	for _, name := range engines {
		sl := caram.MustNew(caram.Config{
			IndexBits: 6,
			RowBits:   4*(1+64+32) + 8,
			KeyBits:   64,
			DataBits:  32,
			Index:     hash.NewMultShift(6),
		})
		ovf := cam.MustNew(cam.Config{Entries: 32, KeyBits: 64})
		if err := sub.AddEngine(&subsystem.Engine{Name: name, Main: sl, Overflow: ovf}); err != nil {
			t.Fatal(err)
		}
	}
	col := trace.NewCollector(trace.Config{Slowlog: 0, Ring: 64})
	srv := server.New(sub, server.WithTracing(col))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // returns when the server closes
	t.Cleanup(func() { srv.Close() })
	return &testBackend{srv: srv, addr: l.Addr().String()}
}

// tracedCluster is the standard fixture for fleet-observability tests:
// two traced backends behind a router whose own collector admits every
// request to its slowlog.
func tracedCluster(t testing.TB) (*Router, *trace.Collector) {
	t.Helper()
	bks := []*testBackend{startTracedBackend(t, "db"), startTracedBackend(t, "db")}
	col := trace.NewCollector(trace.Config{Slowlog: 0, Ring: 64})
	rt, _ := testRouter(t, bks, func(cfg *RouterConfig) { cfg.Tracing = col })
	return rt, col
}

// kvmap parses a "CMD k=v k=v ..." reply line into a map.
func kvmap(t *testing.T, line string) map[string]string {
	t.Helper()
	m := make(map[string]string)
	for _, f := range strings.Fields(line)[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		m[k] = v
	}
	return m
}

// Mirrors of the stitched /debug/traces JSON, decode-side.
type sjHop struct {
	Kind    string `json:"kind"`
	Backend uint32 `json:"backend"`
	Span    uint32 `json:"span"`
}

type sjSpan struct {
	Kind string `json:"kind"`
}

type sjTrace struct {
	Cmd      string            `json:"cmd"`
	Key      string            `json:"key"`
	TID      string            `json:"tid"`
	Span     uint32            `json:"span"`
	Expected float64           `json:"expected_rows"`
	Probes   []json.RawMessage `json:"probes"`
	Spans    []sjSpan          `json:"spans"`
	Hops     []sjHop           `json:"hops"`
}

type sjChild struct {
	Backend string          `json:"backend"`
	Span    uint32          `json:"span"`
	Trace   json.RawMessage `json:"trace"`
	Error   string          `json:"error"`
}

type sjEntry struct {
	Router   json.RawMessage `json:"router"`
	Children []sjChild       `json:"children"`
}

type sjTop struct {
	Seen    uint64    `json:"seen"`
	Slowlog []sjEntry `json:"slowlog"`
	Tagged  []sjEntry `json:"tagged"`
	Sampled []sjEntry `json:"sampled"`
}

// TestClusterTracingEndToEnd is the acceptance test for the tentpole:
// a slow cluster SEARCH through a real router and two real backends is
// retrievable from the router as one stitched trace — router spans
// (queue wait, backend RTT) and backend spans (lock wait, probe chain,
// §3.4 expected-rows) side by side — and shows up source-tagged in the
// fleet SLOWLOG.
func TestClusterTracingEndToEnd(t *testing.T) {
	rt, _ := tracedCluster(t)
	got := rdrive(t, rt, "INSERT db dead 42", "SEARCH db dead")
	if got[0] != "OK" || !strings.HasPrefix(got[1], "HIT") {
		t.Fatalf("setup replies: %q", got)
	}

	// Fleet SLOWLOG: backend entries and the router's own, node-tagged.
	slow := rdrive(t, rt, "SLOWLOG GET")[0]
	if !strings.HasPrefix(slow, "SLOWLOG n=") {
		t.Fatalf("fleet slowlog: %q", slow)
	}
	for _, want := range []string{" node=router", " node=b", "cmd=SEARCH", "cmd=INSERT"} {
		if !strings.Contains(slow, want) {
			t.Errorf("fleet slowlog missing %q: %q", want, slow)
		}
	}

	// Stitched /debug/traces: find the router's SEARCH trace.
	rec := httptest.NewRecorder()
	rt.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var top sjTop
	if err := json.Unmarshal(rec.Body.Bytes(), &top); err != nil {
		t.Fatalf("stitched JSON: %v\n%s", err, rec.Body.String())
	}
	var entry *sjEntry
	var router sjTrace
	for i := range top.Slowlog {
		var cand sjTrace
		if err := json.Unmarshal(top.Slowlog[i].Router, &cand); err != nil {
			t.Fatal(err)
		}
		if cand.Cmd == "SEARCH" && cand.Key == "dead" {
			entry, router = &top.Slowlog[i], cand
			break
		}
	}
	if entry == nil {
		t.Fatalf("no SEARCH trace in stitched slowlog:\n%s", rec.Body.String())
	}
	if router.TID == "" {
		t.Fatal("router SEARCH trace has no wire trace id")
	}
	kinds := make(map[string]bool)
	for _, h := range router.Hops {
		kinds[h.Kind] = true
	}
	for _, want := range []string{"route", "queue_wait", "backend_rtt", "burst", "breaker"} {
		if !kinds[want] {
			t.Errorf("router trace missing %s hop: %+v", want, router.Hops)
		}
	}
	if len(entry.Children) == 0 {
		t.Fatal("stitched entry has no backend children")
	}
	child := entry.Children[0]
	if child.Error != "" {
		t.Fatalf("child fetch failed: %s", child.Error)
	}
	if !strings.HasPrefix(child.Backend, "b") {
		t.Errorf("child backend label: %q", child.Backend)
	}
	var ct sjTrace
	if err := json.Unmarshal(child.Trace, &ct); err != nil {
		t.Fatalf("child trace JSON: %v\n%s", err, child.Trace)
	}
	if ct.Cmd != "SEARCH" || ct.TID != router.TID || ct.Span != child.Span {
		t.Errorf("child identity: cmd=%q tid=%q span=%d, want SEARCH/%q/%d",
			ct.Cmd, ct.TID, ct.Span, router.TID, child.Span)
	}
	if len(ct.Probes) == 0 {
		t.Error("child trace has no probe chain")
	}
	if ct.Expected <= 0 {
		t.Errorf("child trace expected_rows=%v, want the §3.4 analytic value > 0", ct.Expected)
	}
	lockWait := false
	for _, sp := range ct.Spans {
		if sp.Kind == "lock_wait" {
			lockWait = true
		}
	}
	if !lockWait {
		t.Errorf("child trace has no lock_wait span (overflow-CAM engines read locked): %+v", ct.Spans)
	}
}

func TestRouterSlowlogAggregation(t *testing.T) {
	rt, _ := tracedCluster(t)
	rdrive(t, rt, "INSERT db dead 42", "SEARCH db dead", "SEARCH db beef")

	lenLine := rdrive(t, rt, "SLOWLOG LEN")[0]
	m := kvmap(t, lenLine)
	if !strings.HasPrefix(lenLine, "SLOWLOG len=") || m["len"] == "0" {
		t.Fatalf("fleet SLOWLOG LEN: %q", lenLine)
	}

	// GET n caps the merged output, GET 0 yields none.
	if got := rdrive(t, rt, "SLOWLOG GET 2")[0]; !strings.HasPrefix(got, "SLOWLOG n=2 ") {
		t.Errorf("SLOWLOG GET 2: %q", got)
	}
	if got := rdrive(t, rt, "SLOWLOG GET 0")[0]; got != "SLOWLOG n=0" {
		t.Errorf("SLOWLOG GET 0: %q", got)
	}

	// Entries are merged slowest-first across nodes.
	full := rdrive(t, rt, "SLOWLOG GET")[0]
	var last int64 = 1 << 62
	for _, f := range strings.Fields(full)[1:] {
		if v, ok := strings.CutPrefix(f, "us="); ok {
			var us int64
			fmt.Sscanf(v, "%d", &us)
			if us > last {
				t.Fatalf("slowlog not sorted by latency: %q", full)
			}
			last = us
		}
	}

	// RESET clears every node's ring (and the router's own).
	if got := rdrive(t, rt, "SLOWLOG RESET")[0]; got != "OK" {
		t.Fatalf("SLOWLOG RESET: %q", got)
	}
	after := kvmap(t, rdrive(t, rt, "SLOWLOG LEN")[0])
	// The RESET and LEN requests themselves are traced (slowlog 0), so
	// a handful of fresh entries is fine — the pre-reset bulk is gone.
	if after["len"] >= m["len"] && len(after["len"]) >= len(m["len"]) {
		t.Errorf("SLOWLOG RESET did not shrink the fleet slowlog: %s -> %s", m["len"], after["len"])
	}
}

func TestRouterMetricsAggregation(t *testing.T) {
	rt, _ := tracedCluster(t)
	rdrive(t, rt, "INSERT db dead 42", "SEARCH db dead", "SEARCH db beef")

	all := rdrive(t, rt, "METRICS")[0]
	if !strings.HasPrefix(all, "METRICS backends=2 ops=") {
		t.Fatalf("fleet METRICS: %q", all)
	}
	am := kvmap(t, all)
	if am["router_ops"] == "" || am["router_errors"] == "" {
		t.Errorf("fleet METRICS missing router totals: %q", all)
	}

	eng := rdrive(t, rt, "METRICS db")[0]
	if !strings.HasPrefix(eng, "METRICS engine=db ") {
		t.Fatalf("engine METRICS: %q", eng)
	}
	em := kvmap(t, eng)
	if em["insert"] != "1" || em["search"] != "2" {
		t.Errorf("fleet counters insert=%s search=%s, want 1 and 2: %q",
			em["insert"], em["search"], eng)
	}
	if em["n"] != "1" {
		t.Errorf("fleet records n=%s, want 1: %q", em["n"], eng)
	}

	lat := rdrive(t, rt, "METRICS db LATENCY search")[0]
	if !strings.HasPrefix(lat, "METRICS engine=db op=search n=2 err=0 mean_us=") ||
		!strings.Contains(lat, " p50_us=") || !strings.Contains(lat, " max_us=") {
		t.Errorf("fleet LATENCY merge: %q", lat)
	}

	hist := rdrive(t, rt, "METRICS db HIST search")[0]
	hm := kvmap(t, hist)
	if !strings.HasPrefix(hist, "METRICS engine=db op=search n=2 ") || hm["buckets"] == "" {
		t.Fatalf("fleet HIST merge: %q", hist)
	}
	var total int64
	for _, c := range strings.Split(hm["buckets"], ",") {
		var v int64
		fmt.Sscanf(c, "%d", &v)
		total += v
	}
	if total != 2 {
		t.Errorf("fleet HIST bucket mass %d, want 2 (bucket-wise sum across shards)", total)
	}
}

func TestRouterTraceGet(t *testing.T) {
	rt, col := tracedCluster(t)
	rdrive(t, rt, "INSERT db dead 42", "SEARCH db dead")

	// Miss: no node holds this id; the backend notfound ERR propagates.
	if got := rdrive(t, rt, "TRACE GET deadbeef")[0]; got != "ERR trace: notfound" {
		t.Errorf("TRACE GET miss: %q", got)
	}

	// Router-side hit: the router's own trace answers locally.
	var tid string
	for _, tr := range col.Slow().Snapshot(nil, 0) {
		if tr.Cmd == "SEARCH" && tr.TID != 0 {
			tid = fmt.Sprintf("%x", tr.TID)
			break
		}
	}
	if tid == "" {
		t.Fatal("router retained no tagged SEARCH trace")
	}
	got := rdrive(t, rt, "TRACE GET "+tid)[0]
	if !strings.HasPrefix(got, "TRACE {") || !strings.Contains(got, `"cmd":"SEARCH"`) {
		t.Fatalf("TRACE GET router hit: %q", got)
	}

	// Child hit: span 1 lives only on the owning backend; the router
	// misses locally and scatters.
	child := rdrive(t, rt, "TRACE GET "+tid+"/1")[0]
	if !strings.HasPrefix(child, "TRACE {") || !strings.Contains(child, `"span":1`) {
		t.Fatalf("TRACE GET child: %q", child)
	}
	if !strings.Contains(child, `"expected_rows":`) {
		t.Errorf("child trace lacks §3.4 expected_rows: %q", child)
	}

	// Grammar errors are the backend's to render.
	if got := rdrive(t, rt, "TRACE GET")[0]; !strings.HasPrefix(got, "ERR usage: TRACE GET") {
		t.Errorf("TRACE usage: %q", got)
	}
}

// TestRouterTracedTransparency: tracing must not change a single
// forwarded reply byte. Two routers over the same backends — one
// traced, one not — must answer identically.
func TestRouterTracedTransparency(t *testing.T) {
	bks := []*testBackend{startTracedBackend(t, "db"), startTracedBackend(t, "db")}
	col := trace.NewCollector(trace.Config{Slowlog: 0, Ring: 64})
	traced, _ := testRouter(t, bks, func(cfg *RouterConfig) { cfg.Tracing = col })
	plain, _ := testRouter(t, bks, nil)

	if got := rdrive(t, traced, "INSERT db dead 42")[0]; got != "OK" {
		t.Fatalf("INSERT through traced router: %q", got)
	}
	reqs := []string{
		"SEARCH db dead",
		"SEARCH db beef",
		"MSEARCH db dead db beef",
		"SEARCH db",
		"EXPLAIN SEARCH db dead",
		"nonsense request",
	}
	want := rdrive(t, plain, reqs...)
	got := rdrive(t, traced, reqs...)
	for i := range reqs {
		// EXPLAIN runs a fresh lookup each time; its measured rows are
		// identical here, but guard the comparison on the stable ones.
		if got[i] != want[i] {
			t.Errorf("reply %d diverged under tracing:\n  traced: %q\n  plain:  %q", i, got[i], want[i])
		}
	}
}

// TestRouterHealthMergeOrder: scatter merges visit backends in address
// order, so HEALTH output does not depend on how -backends was
// spelled. Two routers over the same fleet, opposite config order,
// must render identical rosters.
func TestRouterHealthMergeOrder(t *testing.T) {
	b0 := startBackend(t, "db", "aux")
	b1 := startBackend(t, "db", "zed")
	mk := func(bks ...*testBackend) *Router {
		backends := make([]Backend, len(bks))
		labels := make([]string, len(bks))
		for i, b := range bks {
			backends[i] = Backend{Label: b.addr, Addr: b.addr} // production labeling
			labels[i] = b.addr
		}
		rt, err := NewRouter(RouterConfig{Backends: backends, Metrics: nil})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rt.Close() })
		return rt
	}
	fwd := mk(b0, b1)
	rev := mk(b1, b0)
	for _, req := range []string{"HEALTH", "HEALTH db", "ENGINES"} {
		a := rdrive(t, fwd, req)[0]
		b := rdrive(t, rev, req)[0]
		if req == "ENGINES" {
			// ENGINES unions in config order by contract; only the
			// address-ordered merges must be spelling-independent.
			continue
		}
		if a != b {
			t.Errorf("%s depends on backend config order:\n  fwd: %q\n  rev: %q", req, a, b)
		}
		if !strings.HasPrefix(a, "HEALTH") {
			t.Errorf("%s: %q", req, a)
		}
	}
}

// TestRouterUntracedLegacyReplies: without a collector the router's
// SLOWLOG/METRICS answers are the pre-tracing local forms, byte-exact
// (the golden session pins them too; this is the direct statement).
func TestRouterUntracedLegacyReplies(t *testing.T) {
	bks := []*testBackend{startBackend(t, "db"), startBackend(t, "db")}
	rt, _ := testRouter(t, bks, nil)
	if got := rdrive(t, rt, "SLOWLOG LEN")[0]; got != "ERR slowlog: per-backend state; query backends directly" {
		t.Errorf("untraced SLOWLOG: %q", got)
	}
	if got := rdrive(t, rt, "METRICS")[0]; !strings.HasPrefix(got, "METRICS backends=2 ops=") ||
		strings.Contains(got, "router_ops") {
		t.Errorf("untraced METRICS: %q", got)
	}
	if got := rdrive(t, rt, "METRICS db")[0]; !strings.HasPrefix(got, "ERR metrics: engine \"db\" is key-sharded") {
		t.Errorf("untraced METRICS db: %q", got)
	}
}
