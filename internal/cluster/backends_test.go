package cluster

import (
	"strings"
	"testing"
)

func TestParseBackends(t *testing.T) {
	cases := []struct {
		in      string
		want    []string // expected addrs, nil means error
		errPart string   // substring the error must carry
	}{
		{in: "127.0.0.1:7071", want: []string{"127.0.0.1:7071"}},
		{in: "127.0.0.1:7071,127.0.0.1:7072", want: []string{"127.0.0.1:7071", "127.0.0.1:7072"}},
		{in: " 127.0.0.1:7071 ,\thost:1 ", want: []string{"127.0.0.1:7071", "host:1"}},
		{in: "[::1]:7071,[::1]:7072", want: []string{"[::1]:7071", "[::1]:7072"}},

		{in: "", errPart: "empty"},
		{in: "   ", errPart: "empty"},
		{in: "127.0.0.1:7071,", errPart: "empty backend element"},
		{in: ",127.0.0.1:7071", errPart: "empty backend element"},
		{in: "127.0.0.1:7071,,127.0.0.1:7072", errPart: "empty backend element"},
		{in: "127.0.0.1", errPart: "bad backend address"},
		{in: "localhost", errPart: "bad backend address"},
		{in: ":7071", errPart: "no host"},
		{in: "host:", errPart: "no port"},
		{in: "a:1,a:1", errPart: "duplicate"},
		{in: "a:1,b:2,a:1", errPart: "duplicate"},
	}
	for _, tc := range cases {
		got, err := ParseBackends(tc.in)
		if tc.want == nil {
			if err == nil {
				t.Errorf("ParseBackends(%q) = %v, want error containing %q", tc.in, got, tc.errPart)
			} else if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("ParseBackends(%q) error %q, want substring %q", tc.in, err, tc.errPart)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBackends(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseBackends(%q) = %d backends, want %d", tc.in, len(got), len(tc.want))
			continue
		}
		for i, b := range got {
			if b.Addr != tc.want[i] || b.Label != tc.want[i] {
				t.Errorf("ParseBackends(%q)[%d] = {%q %q}, want addr=label=%q",
					tc.in, i, b.Label, b.Addr, tc.want[i])
			}
		}
	}
}
