package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"caram/internal/metrics"
	"caram/internal/trace"
)

// Fleet-wide observability: the router-side halves of the SLOWLOG,
// METRICS, and TRACE wire commands, plus the /debug/traces stitcher.
//
// Without a collector (RouterConfig.Tracing nil) the router keeps its
// pre-tracing answers byte-exactly: METRICS reports the router's own
// totals and SLOWLOG explains that slowlogs are per-backend state.
// With a collector attached the same commands become cluster views:
// scatter to every backend, parse the single-line replies with the
// zero-dependency token scanner, and merge — counters sum, latency
// histograms add bucket-wise, slowlog entries k-way merge by latency
// with a node= provenance tag. Backends are always visited in address
// order (Router.order) so merged output is deterministic.

// maxRouterSlowlogGet mirrors the server-side bound on SLOWLOG GET n.
const maxRouterSlowlogGet = 1 << 20

// dispatchMetrics routes the METRICS command. Pinned engines forward
// home as before; everything else depends on whether tracing is on.
func (rt *Router) dispatchMetrics(st *rconn, line []byte) {
	sc := bscan{b: line}
	sc.next() // METRICS
	eng, hasEng := sc.next()
	if !hasEng {
		if rt.trc == nil {
			op := st.nextOp()
			op.kind = opLocal
			ops, errs := rt.met.Totals()
			op.local = append(op.local, "METRICS backends="...)
			op.local = strconv.AppendInt(op.local, int64(len(rt.pools)), 10)
			op.local = append(op.local, " ops="...)
			op.local = strconv.AppendUint(op.local, ops, 10)
			op.local = append(op.local, " errors="...)
			op.local = strconv.AppendUint(op.local, errs, 10)
			return
		}
		rt.scatter(st, line, mergeMetricsAll)
		return
	}
	if rt.Pinned(string(eng)) {
		rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), true)
		return
	}
	if rt.trc == nil {
		op := st.nextOp()
		op.kind = opLocal
		op.local = append(op.local, "ERR metrics: engine "...)
		op.local = strconv.AppendQuote(op.local, string(eng))
		op.local = append(op.local, " is key-sharded; scrape the router /metrics or query backends"...)
		return
	}
	sub, hasSub := sc.next()
	opName, hasOp := sc.next()
	_, extra := sc.next()
	switch {
	case !hasSub:
		rt.scatter(st, line, mergeMetricsEngine)
	case hasOp && !extra && eqFold(sub, "LATENCY"):
		// Quantiles do not merge; raw bucket counts do. Ask the fleet
		// for the machine HIST form and re-derive quantiles from the
		// summed histogram.
		b := append(st.cmdb[:0], "METRICS "...)
		b = append(b, eng...)
		b = append(b, " HIST "...)
		b = append(b, opName...)
		st.cmdb = b
		rt.scatter(st, b, mergeHistQuantiles)
	case hasOp && !extra && eqFold(sub, "HIST"):
		rt.scatter(st, line, mergeHistSum)
	default:
		rt.forward(st, line, 0, false) // backend renders the usage ERR
	}
}

// dispatchSlowlog routes the SLOWLOG command; sc is positioned after
// the command token.
func (rt *Router) dispatchSlowlog(st *rconn, line []byte, sc bscan) {
	if rt.trc == nil {
		op := st.nextOp()
		op.kind = opLocal
		op.local = append(op.local, "ERR slowlog: per-backend state; query backends directly"...)
		return
	}
	sub, hasSub := sc.next()
	switch {
	case !hasSub:
		rt.forward(st, line, 0, false) // backend renders the usage ERR
	case eqFold(sub, "LEN"):
		rt.scatter(st, line, mergeSlowlogLen)
	case eqFold(sub, "RESET"):
		rt.trc.Slow().Reset()
		rt.scatter(st, line, mergeOK)
	case eqFold(sub, "GET"):
		n := -1 // all retained
		if arg, has := sc.next(); has {
			if v, ok := parseDigits(arg); ok {
				n = int(v)
			}
			// Out-of-grammar args still scatter: every backend rejects
			// them identically and the merge propagates that ERR.
		}
		op := rt.scatter(st, line, mergeSlowlogGet)
		op.backend = n // merge-side cap (opScatter leaves backend unused)
	default:
		rt.forward(st, line, 0, false)
	}
}

// dispatchTrace routes TRACE GET <hex-id>[/<span>]: answered locally
// when the id is retained by the router's own collector, else asked of
// every backend (the id may name a child span only a backend holds).
func (rt *Router) dispatchTrace(st *rconn, line []byte, sc bscan) {
	sub, okSub := sc.next()
	arg, okArg := sc.next()
	_, extra := sc.next()
	if !okSub || !okArg || extra || !eqFold(sub, "GET") {
		rt.forward(st, line, 0, false) // backend renders the usage ERR
		return
	}
	if tid, span, ok := parseWireIDBytes(arg); ok && rt.trc != nil {
		if t := rt.trc.Find(tid, span); t != nil {
			op := st.nextOp()
			op.kind = opLocal
			op.local = append(op.local, "TRACE "...)
			op.local = t.AppendJSON(op.local, 0)
			return
		}
	}
	rt.scatter(st, line, mergeTrace)
}

// parseWireIDBytes parses "<hex-id>[/<decimal-span>]".
func parseWireIDBytes(b []byte) (tid uint64, span uint32, ok bool) {
	idb := b
	if i := bytes.IndexByte(b, '/'); i >= 0 {
		v, okSpan := parseDigits(b[i+1:])
		if !okSpan || v > 1<<31 {
			return 0, 0, false
		}
		span = uint32(v)
		idb = b[:i]
	}
	tid, ok = parseHex64b(idb)
	return tid, span, ok && tid != 0
}

// parseDigits is a strict non-negative decimal parse (unlike the
// lenient parseInt), bounded so a hostile arg cannot overflow.
func parseDigits(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		if v > maxRouterSlowlogGet {
			return 0, false
		}
	}
	return v, true
}

// mergeTrace: first backend (in address order) holding the trace wins;
// a fleet-wide miss propagates the backend's own notfound ERR.
func (rt *Router) mergeTrace(out []byte, op *pendingOp) []byte {
	var firstErr []byte
	down := false
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			down = true
			continue
		}
		if hasPrefix(resp, "TRACE ") {
			return append(out, resp...)
		}
		if firstErr == nil {
			firstErr = resp
		}
	}
	switch {
	case firstErr != nil:
		return append(out, firstErr...)
	case down:
		return append(out, replyUnavailable...)
	}
	return append(out, "ERR trace: notfound"...)
}

// mergeSlowlogLen: fleet slowlog depth — backend lengths plus the
// router's own ring.
func (rt *Router) mergeSlowlogLen(out []byte, op *pendingOp) []byte {
	total := int64(rt.trc.Slow().Len())
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "SLOWLOG") {
			return append(out, resp...) // first bad reply in address order
		}
		if pair, ok := sc.next(); ok {
			if k, v, okKV := splitKV(pair); okKV && eqFold(k, "len") {
				total += parseInt(v)
			}
		}
	}
	out = append(out, "SLOWLOG len="...)
	return strconv.AppendInt(out, total, 10)
}

// slowEnt is one slowlog entry in flight through the k-way merge.
type slowEnt struct {
	us   int64
	node int // backend index; -1 = the router itself
	raw  []byte
}

// mergeSlowlogGet: scatter/gathered SLOWLOG GET — every backend's
// entries plus the router's own, k-way merged newest-slowest first and
// tagged with their source node.
func (rt *Router) mergeSlowlogGet(out []byte, op *pendingOp) []byte {
	max := op.backend // -1 all, 0 none, k cap
	var ents []slowEnt
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		if tok, _ := firstToken(resp); !eqFold(tok, "SLOWLOG") {
			return append(out, resp...)
		}
		ents = appendSlowEntries(ents, resp, bi)
	}
	// The router's own retained slow requests ride along as
	// node=router: queue-wait and RTT live here, not on any backend.
	if max != 0 {
		snapMax := max
		if snapMax < 0 {
			snapMax = 0 // Snapshot: 0 = all retained
		}
		for _, t := range rt.trc.Slow().Snapshot(nil, snapMax) {
			ents = append(ents, slowEnt{us: t.Dur.Microseconds(), node: -1, raw: renderSlowEntry(t)})
		}
	}
	// Slowest first; the stable sort keeps address order inside ties.
	sort.SliceStable(ents, func(a, b int) bool { return ents[a].us > ents[b].us })
	if max >= 0 && len(ents) > max {
		ents = ents[:max]
	}
	out = append(out, "SLOWLOG n="...)
	out = strconv.AppendInt(out, int64(len(ents)), 10)
	for _, e := range ents {
		out = append(out, ' ')
		out = append(out, e.raw...)
		out = append(out, " node="...)
		if e.node < 0 {
			out = append(out, "router"...)
		} else {
			out = append(out, rt.ring.Label(e.node)...)
		}
	}
	return out
}

// appendSlowEntries parses one backend's SLOWLOG GET reply into merge
// entries. The entry grammar is fixed (the backend is our own server),
// so the parse expects exactly the seven k=v fields in order; a
// truncated or desynced tail drops the partial entry rather than
// inventing one.
func appendSlowEntries(ents []slowEnt, resp []byte, bi int) []slowEnt {
	fields := [...]string{"us=", "cmd=", "engine=", "key=", "result=", "rows="}
	sc := bscan{b: resp}
	sc.next() // SLOWLOG
	sc.next() // n=N
	for {
		tok, ok := sc.next()
		if !ok || !hasPrefix(tok, "id=") {
			return ents
		}
		raw := make([]byte, 0, 96)
		raw = append(raw, tok...)
		var us int64
		for _, want := range fields {
			t, okF := sc.next()
			if !okF || !hasPrefix(t, want) {
				return ents
			}
			if want == "us=" {
				us = parseInt(t[len(want):])
			}
			raw = append(raw, ' ')
			raw = append(raw, t...)
		}
		ents = append(ents, slowEnt{us: us, node: bi, raw: raw})
	}
}

// renderSlowEntry prints a router trace in the server's slowlog entry
// grammar, so merged output is shape-uniform across nodes.
func renderSlowEntry(t *trace.Trace) []byte {
	raw := make([]byte, 0, 96)
	raw = append(raw, "id="...)
	raw = strconv.AppendUint(raw, t.ID, 10)
	raw = append(raw, " us="...)
	raw = strconv.AppendInt(raw, t.Dur.Microseconds(), 10)
	raw = append(raw, " cmd="...)
	raw = append(raw, t.Cmd...)
	raw = append(raw, " engine="...)
	raw = append(raw, t.Engine...)
	raw = append(raw, " key="...)
	raw = append(raw, t.Key...)
	raw = append(raw, " result="...)
	raw = append(raw, t.Result...)
	raw = append(raw, " rows="...)
	return strconv.AppendInt(raw, int64(t.Rows), 10)
}

// mergeMetricsAll: fleet totals — backend registry counters summed,
// with the router's own forwarding totals alongside.
func (rt *Router) mergeMetricsAll(out []byte, op *pendingOp) []byte {
	var ops, errs, unknown int64
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "METRICS") {
			return append(out, resp...)
		}
		for {
			pair, ok := sc.next()
			if !ok {
				break
			}
			k, v, okKV := splitKV(pair)
			if !okKV {
				continue
			}
			switch {
			case eqFold(k, "ops"):
				ops += parseInt(v)
			case eqFold(k, "errors"):
				errs += parseInt(v)
			case eqFold(k, "unknown"):
				unknown += parseInt(v)
			}
		}
	}
	rops, rerrs := rt.met.Totals()
	out = append(out, "METRICS backends="...)
	out = strconv.AppendInt(out, int64(len(rt.pools)), 10)
	out = append(out, " ops="...)
	out = strconv.AppendInt(out, ops, 10)
	out = append(out, " errors="...)
	out = strconv.AppendInt(out, errs, 10)
	out = append(out, " unknown="...)
	out = strconv.AppendInt(out, unknown, 10)
	out = append(out, " router_ops="...)
	out = strconv.AppendUint(out, rops, 10)
	out = append(out, " router_errors="...)
	return strconv.AppendUint(out, rerrs, 10)
}

// mergeMetricsEngine: METRICS <eng> across shards. Counters sum; load
// is the mean shard load factor; amal is the lookup-weighted mean,
// exactly the STATS aggregation rules. Field order follows the first
// shard's reply, so the merged line has the server's own shape.
func (rt *Router) mergeMetricsEngine(out []byte, op *pendingOp) []byte {
	var (
		engine         string
		keys           []string
		seen           = make(map[string]bool, 24)
		sums           = make(map[string]int64, 24)
		loadSum        float64
		amalW, lookups float64
		shards         int
	)
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "METRICS") {
			return append(out, resp...)
		}
		shards++
		var sh, sm int64
		var samal float64
		for {
			pair, ok := sc.next()
			if !ok {
				break
			}
			k, v, okKV := splitKV(pair)
			if !okKV {
				continue
			}
			ks := string(k)
			switch ks {
			case "engine":
				engine = string(v)
				continue // printed first, not part of the key order
			case "load":
				loadSum += parseFloat(v)
			case "amal":
				samal = parseFloat(v)
			default:
				n := parseInt(v)
				sums[ks] += n
				if ks == "hits" {
					sh = n
				} else if ks == "misses" {
					sm = n
				}
			}
			if !seen[ks] {
				seen[ks] = true
				keys = append(keys, ks)
			}
		}
		l := float64(sh + sm)
		amalW += samal * l
		lookups += l
	}
	if shards == 0 {
		return append(out, replyUnavailable...)
	}
	out = append(out, "METRICS engine="...)
	out = append(out, engine...)
	for _, k := range keys {
		out = append(out, ' ')
		out = append(out, k...)
		out = append(out, '=')
		switch k {
		case "load":
			out = strconv.AppendFloat(out, loadSum/float64(shards), 'f', 3, 64)
		case "amal":
			// NaN with zero lookups, like a fresh engine's.
			out = strconv.AppendFloat(out, amalW/lookups, 'f', 3, 64)
		default:
			out = strconv.AppendInt(out, sums[k], 10)
		}
	}
	return out
}

// sumHist gathers the fleet histogram behind both HIST merges: the
// backends' power-of-two bucket counts add index-wise (shards share the
// bucket edges by construction), sums and error counts add, and N is
// recomputed from the merged counts.
func (rt *Router) sumHist(op *pendingOp) (engine, opName []byte, errs int64, fleet metrics.HistSnapshot, badReply []byte, down bool) {
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			down = true
			return
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "METRICS") {
			badReply = resp
			return
		}
		for {
			pair, ok := sc.next()
			if !ok {
				break
			}
			k, v, okKV := splitKV(pair)
			if !okKV {
				continue
			}
			switch {
			case eqFold(k, "engine"):
				engine = v
			case eqFold(k, "op"):
				opName = v
			case eqFold(k, "err"):
				errs += parseInt(v)
			case eqFold(k, "sum_ns"):
				fleet.SumNs += parseInt(v)
			case eqFold(k, "buckets"):
				i, idx := 0, 0
				for i < len(v) && idx < len(fleet.Counts) {
					j := i
					for j < len(v) && v[j] != ',' {
						j++
					}
					c := uint64(parseInt(v[i:j]))
					fleet.Counts[idx] += c
					fleet.N += c
					idx++
					i = j + 1
				}
			}
		}
	}
	return
}

// mergeHistQuantiles renders the fleet histogram in the server's
// LATENCY quantile shape.
func (rt *Router) mergeHistQuantiles(out []byte, op *pendingOp) []byte {
	engine, opName, errs, fleet, badReply, down := rt.sumHist(op)
	if down {
		return append(out, replyUnavailable...)
	}
	if badReply != nil {
		return append(out, badReply...)
	}
	qs := fleet.Quantiles(0.5, 0.9, 0.99, 1)
	out = append(out, "METRICS engine="...)
	out = append(out, engine...)
	out = append(out, " op="...)
	out = append(out, opName...)
	out = append(out, " n="...)
	out = strconv.AppendUint(out, fleet.N, 10)
	out = append(out, " err="...)
	out = strconv.AppendInt(out, errs, 10)
	out = append(out, " mean_us="...)
	out = strconv.AppendFloat(out, fleet.MeanNs()/1e3, 'f', 2, 64)
	for i, label := range [...]string{" p50_us=", " p90_us=", " p99_us=", " max_us="} {
		out = append(out, label...)
		out = strconv.AppendFloat(out, float64(qs[i])/1e3, 'f', 2, 64)
	}
	return out
}

// mergeHistSum renders the fleet histogram in the server's raw HIST
// shape (machine-readable; a parent tier could merge it again).
func (rt *Router) mergeHistSum(out []byte, op *pendingOp) []byte {
	engine, opName, errs, fleet, badReply, down := rt.sumHist(op)
	if down {
		return append(out, replyUnavailable...)
	}
	if badReply != nil {
		return append(out, badReply...)
	}
	out = append(out, "METRICS engine="...)
	out = append(out, engine...)
	out = append(out, " op="...)
	out = append(out, opName...)
	out = append(out, " n="...)
	out = strconv.AppendUint(out, fleet.N, 10)
	out = append(out, " err="...)
	out = strconv.AppendInt(out, errs, 10)
	out = append(out, " sum_ns="...)
	out = strconv.AppendInt(out, fleet.SumNs, 10)
	out = append(out, " buckets="...)
	for i, c := range fleet.Counts {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendUint(out, c, 10)
	}
	return out
}

// --- /debug/traces stitching -------------------------------------------

// stitchChild is one backend hop's child trace, fetched lazily over
// the wire via TRACE GET <id>/<span>.
type stitchChild struct {
	Backend string          `json:"backend"`
	Span    uint32          `json:"span"`
	Trace   json.RawMessage `json:"trace,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// stitchEntry is one retained router trace with its children: router
// spans (queue wait, backend RTT, retries, breaker state) and backend
// spans (lock wait, probe chain, §3.4 expected-rows) side by side.
type stitchEntry struct {
	Router   json.RawMessage `json:"router"`
	Children []stitchChild   `json:"children,omitempty"`
}

type stitchJSON struct {
	Seen    uint64        `json:"seen"`
	Slowlog []stitchEntry `json:"slowlog"`
	Tagged  []stitchEntry `json:"tagged"`
	Sampled []stitchEntry `json:"sampled"`
}

// TraceHandler serves the router's /debug/traces: the collector's
// retained traces with cross-node stitching. For every backend_rtt hop
// of a retained trace, the handler fetches that backend's child trace
// (TRACE GET <id>/<span>) and embeds it, so one JSON document shows
// router queue wait next to backend lock wait and probe chains. Child
// fetches are per-request wire calls: lazy, so retention stays cheap
// and the child may legitimately be gone (ring wraparound) by the time
// someone looks.
func (rt *Router) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if rt.trc == nil {
			_, _ = w.Write([]byte(`{"disabled":true}` + "\n"))
			return
		}
		max := 32
		if q := req.URL.Query().Get("n"); q != "" {
			if v, ok := parseDigits([]byte(q)); ok && v > 0 {
				max = int(v)
			}
		}
		v := stitchJSON{
			Seen:    rt.trc.Seen(),
			Slowlog: rt.stitchRing(rt.trc.Slow(), max),
			Tagged:  rt.stitchRing(rt.trc.Tagged(), max),
			Sampled: rt.stitchRing(rt.trc.Sampled(), max),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
}

func (rt *Router) stitchRing(r *trace.Ring, max int) []stitchEntry {
	out := []stitchEntry{}
	for _, t := range r.Snapshot(nil, max) {
		e := stitchEntry{Router: json.RawMessage(t.AppendJSON(nil, 0))}
		if t.TID != 0 {
			for _, ev := range t.Events {
				if ev.Kind == trace.KindRTT {
					e.Children = append(e.Children, rt.fetchChild(t.TID, int(ev.Bucket), ev.Span))
				}
			}
		}
		out = append(out, e)
	}
	return out
}

func (rt *Router) fetchChild(tid uint64, backend int, span uint32) stitchChild {
	ch := stitchChild{Span: span}
	if backend < 0 || backend >= len(rt.pools) {
		ch.Backend = "?"
		ch.Error = "bad backend index"
		return ch
	}
	ch.Backend = rt.ring.Label(backend)
	req := make([]byte, 0, 48)
	req = append(req, "TRACE GET "...)
	req = strconv.AppendUint(req, tid, 16)
	req = append(req, '/')
	req = strconv.AppendUint(req, uint64(span), 10)
	c := rt.pools[backend].Submit(req)
	resp, err := c.Wait()
	switch {
	case err != nil:
		ch.Error = "unavailable"
	case hasPrefix(resp, "TRACE "):
		ch.Trace = json.RawMessage(append([]byte(nil), resp[len("TRACE "):]...))
	default:
		ch.Error = string(resp)
	}
	c.Release()
	return ch
}
