package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"caram/internal/metrics"
)

// TestPoolPipelinedFIFO: many goroutines pipeline distinct requests
// through one pool; every caller must get exactly its own reply (the
// FIFO reply matching under concurrent burst coalescing).
func TestPoolPipelinedFIFO(t *testing.T) {
	bk := startBackend(t, "db")
	met := metrics.NewRouterMetrics([]string{"b0"})
	p := NewPool(Backend{Label: "b0", Addr: bk.addr}, PoolConfig{Conns: 3, Metrics: met.Backend(0)})
	defer p.Close()

	// Seed: each key i holds data i (self-validating replies). One
	// lane keeps the inserts ordered ahead of the searches.
	const n = 200
	ins := make([]*Call, n)
	for i := 0; i < n; i++ {
		ins[i] = p.SubmitLane([]byte(fmt.Sprintf("INSERT db %x %x", i+1, i+1)), 7)
	}
	for i, c := range ins {
		if resp, err := c.Wait(); err != nil || string(resp) != "OK" {
			t.Fatalf("insert %d: %q %v", i, resp, err)
		}
		c.Release()
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= n; i++ {
				c := p.Submit([]byte(fmt.Sprintf("SEARCH db %x", i)))
				resp, err := c.Wait()
				want := fmt.Sprintf("HIT 0:%016x", i)
				if err != nil || string(resp) != want {
					t.Errorf("search %x: got %q err %v, want %q", i, resp, err, want)
					c.Release()
					return
				}
				c.Release()
			}
		}()
	}
	wg.Wait()
	if ops := met.Backend(0).Ops(); ops < n {
		t.Errorf("ops counter %d, want >= %d", ops, n)
	}
	if _, mean := met.Backend(0).Bursts(); mean <= 0 {
		t.Error("no bursts observed")
	}
}

// TestPoolBreaker: a dead address fails submissions with
// ErrBackendDown until the threshold opens the breaker, after which
// they shed fast with ErrBackendUnavailable; a Probe against a
// revived backend closes it again.
func TestPoolBreaker(t *testing.T) {
	// Reserve a port, then free it: dials now fail fast.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	met := metrics.NewRouterMetrics([]string{"b0"})
	p := NewPool(Backend{Label: "b0", Addr: addr}, PoolConfig{
		Conns:            1,
		BreakerThreshold: 3,
		BreakerBackoff:   time.Minute,
		DialTimeout:      200 * time.Millisecond,
		Metrics:          met.Backend(0),
	})
	defer p.Close()

	sawDown := false
	deadline := time.Now().Add(10 * time.Second)
	for !p.BreakerOpen() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened against a dead backend")
		}
		c := p.Submit([]byte("SEARCH db 1"))
		_, err := c.Wait()
		c.Release()
		if errors.Is(err, ErrBackendDown) {
			sawDown = true
		} else if !errors.Is(err, ErrBackendUnavailable) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if !sawDown {
		t.Error("never saw ErrBackendDown before the breaker opened")
	}
	// Open breaker: fails fast without touching the wire.
	c := p.Submit([]byte("SEARCH db 1"))
	if _, err := c.Wait(); !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("open breaker returned %v, want ErrBackendUnavailable", err)
	}
	c.Release()
	if met.Backend(0).Errs() == 0 || !met.Backend(0).BreakerOpen() {
		t.Error("metrics did not record the failure streak / breaker state")
	}

	// A failed probe keeps it open...
	if p.Probe(200 * time.Millisecond) {
		t.Fatal("probe of a dead backend succeeded")
	}
	// ...then the backend comes back on the same address and a probe
	// closes the breaker (the watcher's half-open recovery path).
	bk := reviveBackend(t, addr)
	defer bk.Close()
	if !p.Probe(time.Second) {
		t.Fatal("probe of a live backend failed")
	}
	if p.BreakerOpen() {
		t.Error("breaker still open after successful probe")
	}
	c = p.Submit([]byte("SEARCH db 1"))
	if resp, err := c.Wait(); err != nil || string(resp) != "MISS" {
		t.Errorf("post-recovery search = %q, %v", resp, err)
	}
	c.Release()
}

// reviveBackend binds a fresh server to a specific address (the one a
// pool is configured for).
func reviveBackend(t *testing.T, addr string) *net.TCPListener {
	t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ { // the freed port can take a moment to rebind
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	bk := startBackend(t, "db")
	// Proxy the fixed address onto the live backend: accept, splice.
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", bk.addr)
			if err != nil {
				conn.Close()
				continue
			}
			go splice(conn, up)
		}
	}()
	return l.(*net.TCPListener)
}

func splice(a, b net.Conn) {
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn) {
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		done <- struct{}{}
	}
	go cp(a, b)
	go cp(b, a)
	<-done
	a.Close()
	b.Close()
}

// TestPoolBusyShed: a backend that sheds with "ERR BUSY" must fail the
// pipelined calls as unavailable — never match the shed line to the
// first call as if it were a reply.
func TestPoolBusyShed(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Write([]byte("ERR BUSY\n")) //nolint:errcheck
			conn.Close()
		}
	}()
	p := NewPool(Backend{Label: "b0", Addr: l.Addr().String()}, PoolConfig{
		Conns: 1, BreakerThreshold: 100, // keep the breaker out of the way
	})
	defer p.Close()
	for i := 0; i < 3; i++ {
		c := p.Submit([]byte("SEARCH db 1"))
		_, err := c.Wait()
		c.Release()
		if !errors.Is(err, ErrBackendUnavailable) && !errors.Is(err, ErrBackendDown) {
			t.Fatalf("submit %d: err=%v, want unavailable/down", i, err)
		}
	}
}

// TestPoolCloseFailsPending: closing the pool fails queued work
// instead of hanging it.
func TestPoolCloseFailsPending(t *testing.T) {
	// A listener that accepts and reads nothing: requests queue
	// forever on the pending FIFO.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	p := NewPool(Backend{Label: "b0", Addr: l.Addr().String()}, PoolConfig{Conns: 1})
	c := p.Submit([]byte("SEARCH db 1"))
	time.Sleep(50 * time.Millisecond) // let it reach the wire
	go p.Close()
	if _, err := c.Wait(); err == nil {
		t.Fatal("call completed against a mute backend")
	}
	c.Release()
}
