package cluster

import (
	"bytes"
	"strconv"
	"unicode"
	"unicode/utf8"

	"caram/internal/bitutil"
)

// asciiSpace mirrors the server scanner's fast path: the six ASCII
// bytes unicode.IsSpace accepts.
var asciiSpace = [256]uint8{'\t': 1, '\n': 1, '\v': 1, '\f': 1, '\r': 1, ' ': 1}

// bscan is the []byte twin of server.FieldScanner — the same
// unicode.IsSpace separator set over the raw request line, so the
// router tokenizes exactly the fields the backend will, without the
// string conversion (and its allocation) on the forward path.
type bscan struct {
	b []byte
	i int
}

// next returns the next field, or ok=false at end of line.
func (s *bscan) next() (field []byte, ok bool) {
	b, i := s.b, s.i
	for i < len(b) {
		if c := b[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 0 {
				break
			}
			i++
			continue
		}
		r, w := utf8.DecodeRune(b[i:])
		if !unicode.IsSpace(r) {
			break
		}
		i += w
	}
	if i >= len(b) {
		s.i = i
		return nil, false
	}
	start := i
	for i < len(b) {
		if c := b[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 1 {
				break
			}
			i++
			continue
		}
		r, w := utf8.DecodeRune(b[i:])
		if unicode.IsSpace(r) {
			break
		}
		i += w
	}
	s.i = i
	return b[start:i], true
}

// count returns how many fields remain without advancing the scanner.
func (s *bscan) count() int {
	c := *s
	n := 0
	for {
		if _, ok := c.next(); !ok {
			return n
		}
		n++
	}
}

// eqFold reports ASCII-case-insensitive equality — how the router
// recognizes command words (the server uppercases them the same way).
func eqFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		cb, cs := b[i], s[i]
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if 'a' <= cs && cs <= 'z' {
			cs -= 'a' - 'A'
		}
		if cb != cs {
			return false
		}
	}
	return true
}

// hasPrefix is bytes.HasPrefix against a constant without the
// []byte conversion.
func hasPrefix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[:len(s)]) == s
}

// tokenEq reports that the reply's first token is exactly s — "OK"
// matches "OK" and "OK scrub ...", but not "OKAY" or "MISS!" via
// "MISS".
func tokenEq(b []byte, s string) bool {
	if !hasPrefix(b, s) {
		return false
	}
	return len(b) == len(s) || b[len(s)] == ' '
}

// firstToken returns the reply's first space-separated token and the
// byte offset just past it (for cursor-style resumption).
func firstToken(b []byte) (tok []byte, rest int) {
	return tokenAt(b, 0)
}

// tokenAt returns the next space-separated token at or after off and
// the offset just past it; a nil token means the reply is exhausted.
// Replies are server-rendered (single ASCII spaces), so ASCII space
// handling suffices here.
func tokenAt(b []byte, off int) (tok []byte, rest int) {
	i := off
	for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
		i++
	}
	if i >= len(b) {
		return nil, i
	}
	start := i
	for i < len(b) && b[i] != ' ' && b[i] != '\t' {
		i++
	}
	return b[start:i], i
}

// splitKV splits a "key=value" reply field.
func splitKV(pair []byte) (k, v []byte, ok bool) {
	i := bytes.IndexByte(pair, '=')
	if i < 0 {
		return nil, nil, false
	}
	return pair[:i], pair[i+1:], true
}

// splitSlash splits an "a/b" reply field (overflow occupancy).
func splitSlash(v []byte) (a, b []byte, ok bool) {
	i := bytes.IndexByte(v, '/')
	if i < 0 {
		return nil, nil, false
	}
	return v[:i], v[i+1:], true
}

// parseInt reads a decimal integer leniently (merge inputs are
// server-rendered; garbage parses as far as it goes).
func parseInt(b []byte) int64 {
	neg := false
	i := 0
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	var v int64
	for ; i < len(b) && b[i] >= '0' && b[i] <= '9'; i++ {
		v = v*10 + int64(b[i]-'0')
	}
	if neg {
		return -v
	}
	return v
}

// parseFloat reads a float reply field (STATS merge — not a hot path).
func parseFloat(b []byte) float64 {
	f, _ := strconv.ParseFloat(string(b), 64)
	return f
}

// parseHex64b parses one hex field with the server's strictness
// (strconv.ParseUint base 16: no empty fields, signs, "0x" prefixes,
// or trailing garbage; overflow rejects) without leaving []byte.
func parseHex64b(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		if v >= 1<<60 { // v<<4 would overflow
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// parseVecBytes parses a wire key — "<lo>" or "<hi>:<lo>" — into its
// canonical 128-bit value, mirroring the server's parseVec so every
// spelling of a key routes to the owner of its value. ok=false means
// the backend will reject the key too; the router then just anchors
// the line somewhere deterministic and lets the backend say so.
func parseVecBytes(b []byte) (bitutil.Vec128, bool) {
	if i := bytes.IndexByte(b, ':'); i >= 0 {
		hi, ok1 := parseHex64b(b[:i])
		lo, ok2 := parseHex64b(b[i+1:])
		if !ok1 || !ok2 {
			return bitutil.Vec128{}, false
		}
		return bitutil.FromParts(lo, hi), true
	}
	lo, ok := parseHex64b(b)
	if !ok {
		return bitutil.Vec128{}, false
	}
	return bitutil.FromUint64(lo), true
}
