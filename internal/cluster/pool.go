package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"caram/internal/metrics"
	"caram/internal/server"
)

// Pool errors. ErrBackendUnavailable is the router-side shed: the
// backend's circuit breaker is open (or the backend shed us with ERR
// BUSY), so the request failed fast without touching the wire.
// ErrBackendDown is a transport failure on an in-flight request — the
// connection died between write and reply, so the request's fate on
// the backend is unknown (safe to retry only for idempotent reads).
var (
	ErrBackendUnavailable = errors.New("cluster: backend unavailable")
	ErrBackendDown        = errors.New("cluster: backend connection failed")
	ErrPoolClosed         = errors.New("cluster: pool closed")
)

// busyReply is the backend's accept-time load-shed line (one per shed
// connection, then close). Seeing it as a "reply" means the
// connection never entered service: everything pipelined on it fails
// unavailable and the breaker trips.
var busyReply = []byte("ERR BUSY")

const (
	// maxBurst caps how many queued requests one write burst coalesces;
	// with the submit queue it bounds a connection's pipeline depth.
	maxBurst = 256
	// submitQueue is each connection's submit-channel capacity;
	// submitters beyond it block (backpressure toward the client).
	submitQueue = 1024
)

// Call is one in-flight forwarded request. Calls are pooled: Submit
// hands one out with the request line copied in, Wait blocks until the
// reply (or error) lands, Release returns it for reuse — steady-state
// forwarding allocates nothing.
type Call struct {
	req     []byte // request line, '\n'-terminated, owned by the call
	resp    []byte // reply line without the trailing '\n'
	err     error
	done    chan struct{} // cap 1; signalled exactly once per flight
	settled bool          // the done token was consumed (Wait is idempotent)
	met     *metrics.RouterBackend

	// Tracing stamps, recorded only for traced submissions so the
	// untraced forward path pays no clock reads. tSubmit is taken at
	// SubmitLaneT, tWrite by the connection writer just before the
	// coalesced flush (one clock read per burst), tDone by finish.
	// burst is how many calls shared the flush this call rode in.
	traced  bool
	tSubmit int64 // unix nanos
	tWrite  int64 // 0 when the call failed before reaching a connection
	tDone   int64
	burst   int32
}

// Wait blocks until the call completes and returns the reply line
// (without its trailing newline) or the transport error. Idempotent —
// scatter merges re-read settled calls freely — but single-consumer:
// only the goroutine settling the client burst may call it. The
// returned slice is owned by the call; copy it out before Release.
func (c *Call) Wait() ([]byte, error) {
	if !c.settled {
		<-c.done
		c.settled = true
	}
	return c.resp, c.err
}

// finish delivers the outcome. Exactly one of the pool's goroutines
// calls it per flight (each call is popped from the pending queue
// once), so the cap-1 channel never blocks.
func (c *Call) finish(resp []byte, err error) {
	if c.traced {
		c.tDone = time.Now().UnixNano()
	}
	c.resp = append(c.resp[:0], resp...)
	c.err = err
	if err != nil {
		c.met.IncErrs()
	}
	c.met.DepthAdd(-1)
	c.done <- struct{}{}
}

var callPool = sync.Pool{
	New: func() any {
		return &Call{
			req:  make([]byte, 0, 256),
			resp: make([]byte, 0, 256),
			done: make(chan struct{}, 1),
		}
	},
}

// Release returns a completed call to the pool. The caller must be
// done with the slices Wait returned.
func (c *Call) Release() {
	c.err = nil
	c.met = nil
	c.settled = false
	c.traced = false
	c.tSubmit, c.tWrite, c.tDone, c.burst = 0, 0, 0, 0
	callPool.Put(c)
}

// Pool is one backend's pipelined connection pool: K persistent
// connections, each with a writer goroutine that coalesces
// concurrently arriving requests into a single buffered flush per
// burst (the network form of PR 3's ExecAppend burst flush) and a
// reader goroutine that matches reply lines to waiting calls in FIFO
// pipeline order. A per-backend circuit breaker fails submissions
// fast while the backend is unreachable; the router's health watcher
// probes it back to closed.
type Pool struct {
	backend Backend
	met     *metrics.RouterBackend // nil-safe
	conns   []*pconn
	next    atomic.Uint64 // round-robin connection pick

	// Circuit breaker: consecutive transport failures at or beyond the
	// threshold open it until the deadline; any success closes it.
	failures  atomic.Int32
	openUntil atomic.Int64 // unix nanos; 0 = closed
	threshold int32
	backoff   time.Duration

	dialTimeout time.Duration
	done        chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
}

// PoolConfig tunes a backend pool; the zero value of any field picks
// the default.
type PoolConfig struct {
	Conns            int           // persistent connections (default 4)
	BreakerThreshold int           // consecutive failures to open (default 3)
	BreakerBackoff   time.Duration // open duration (default 250ms)
	DialTimeout      time.Duration // per-dial bound (default 2s)
	Metrics          *metrics.RouterBackend
}

// NewPool builds the pool and starts its connection workers.
// Connections dial lazily on first use, so building a pool against a
// dead backend succeeds — the breaker does the failing.
func NewPool(b Backend, cfg PoolConfig) *Pool {
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerBackoff <= 0 {
		cfg.BreakerBackoff = 250 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	p := &Pool{
		backend:     b,
		met:         cfg.Metrics,
		threshold:   int32(cfg.BreakerThreshold),
		backoff:     cfg.BreakerBackoff,
		dialTimeout: cfg.DialTimeout,
		done:        make(chan struct{}),
	}
	p.conns = make([]*pconn, cfg.Conns)
	for i := range p.conns {
		pc := &pconn{p: p, ch: make(chan *Call, submitQueue)}
		p.conns[i] = pc
		p.wg.Add(1)
		go pc.run()
	}
	return p
}

// Backend returns the pool's backend.
func (p *Pool) Backend() Backend { return p.backend }

// Submit enqueues one request line on the next connection round-robin
// — for callers with no ordering needs across their own submissions.
// Callers that pipeline ordered requests (the router's per-client
// streams) must use SubmitLane with a stable lane instead.
func (p *Pool) Submit(line []byte) *Call {
	return p.SubmitLaneT(line, p.next.Add(1), false)
}

// SubmitT is Submit with the tracing stamps on when traced is true.
func (p *Pool) SubmitT(line []byte, traced bool) *Call {
	return p.SubmitLaneT(line, p.next.Add(1), traced)
}

// SubmitLane enqueues one request line (with or without its trailing
// newline) on the lane's pipelined connection and returns the
// in-flight call. All submissions sharing a lane reach the backend in
// submission order (one connection, FIFO pipeline) — this is what
// preserves a client's own request ordering through the router while
// different lanes still coalesce onto the pool's connections. It
// fails fast — without queueing — while the breaker is open or the
// pool is closed. The line is copied; the caller's buffer is free
// immediately.
func (p *Pool) SubmitLane(line []byte, lane uint64) *Call {
	return p.SubmitLaneT(line, lane, false)
}

// SubmitLaneT is SubmitLane with per-call tracing stamps: when traced
// is true the call records submit/write/done timestamps and its burst
// membership, which the router turns into queue-wait and backend-RTT
// spans. The untraced form takes no clock reads.
func (p *Pool) SubmitLaneT(line []byte, lane uint64, traced bool) *Call {
	c := callPool.Get().(*Call)
	if traced {
		c.traced = true
		c.tSubmit = time.Now().UnixNano()
	}
	c.met = p.met
	c.req = append(c.req[:0], line...)
	if n := len(c.req); n == 0 || c.req[n-1] != '\n' {
		c.req = append(c.req, '\n')
	}
	c.met.IncOps()
	c.met.DepthAdd(1)
	if p.breakerOpen() {
		c.finish(nil, ErrBackendUnavailable)
		return c
	}
	pc := p.conns[lane%uint64(len(p.conns))]
	select {
	case pc.ch <- c:
	case <-p.done:
		c.finish(nil, ErrPoolClosed)
	}
	return c
}

// Close tears the pool down: workers exit, connections close, queued
// and in-flight calls fail with ErrPoolClosed/ErrBackendDown.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.done) })
	p.wg.Wait()
}

// breakerOpen reports whether submissions should fail fast.
func (p *Pool) breakerOpen() bool {
	u := p.openUntil.Load()
	return u != 0 && time.Now().UnixNano() < u
}

// BreakerOpen reports the breaker state (for tests and HEALTH-style
// introspection).
func (p *Pool) BreakerOpen() bool { return p.breakerOpen() }

// noteFailure records one transport failure; at the threshold the
// breaker opens for the backoff window. Past the threshold the counter
// keeps the breaker primed: in the half-open window after expiry, a
// single further failure re-opens it immediately.
func (p *Pool) noteFailure() {
	if p.failures.Add(1) >= p.threshold {
		p.openUntil.Store(time.Now().Add(p.backoff).UnixNano())
		p.met.SetBreaker(true)
	}
}

// noteSuccess closes the breaker and clears the failure streak.
func (p *Pool) noteSuccess() {
	if p.failures.Load() != 0 {
		p.failures.Store(0)
	}
	if p.openUntil.Load() != 0 {
		p.openUntil.Store(0)
	}
	p.met.SetBreaker(false)
}

// MarkHealthy is the health watcher's success hook: a HEALTH probe
// answered, so the breaker closes and traffic flows again.
func (p *Pool) MarkHealthy() { p.noteSuccess() }

// MarkUnhealthy is the health watcher's failure hook.
func (p *Pool) MarkUnhealthy() { p.noteFailure() }

// pconn is one persistent pipelined connection: a submit queue its
// writer goroutine drains in bursts, and a per-dial reader goroutine
// that matches replies to calls in FIFO order.
type pconn struct {
	p  *Pool
	ch chan *Call
}

// gen is one dial generation: the live connection, the FIFO of calls
// written but not yet answered, and the dead flag its reader raises so
// the writer stops using a half-closed conn.
type gen struct {
	conn    net.Conn
	pending chan *Call
	dead    atomic.Bool
}

// run is the writer loop: collect a burst, hand the calls to the
// reader's FIFO, write the whole burst with one flush.
func (pc *pconn) run() {
	defer pc.p.wg.Done()
	var g *gen
	burst := make([]*Call, 0, maxBurst)
	wbuf := make([]byte, 0, 8*1024)
	teardown := func() {
		if g != nil {
			g.conn.Close() // reader fails the pending FIFO
			g = nil
		}
		// Fail whatever is still queued, then keep draining until Close
		// finishes so late submitters never hang.
		for {
			select {
			case c := <-pc.ch:
				c.finish(nil, ErrPoolClosed)
			default:
				return
			}
		}
	}
	for {
		var first *Call
		select {
		case first = <-pc.ch:
		case <-pc.p.done:
			teardown()
			return
		}
		// Coalesce everything that arrived while we slept into one
		// burst — concurrently submitting clients share one flush.
		burst = append(burst[:0], first)
	drain:
		for len(burst) < maxBurst {
			select {
			case c := <-pc.ch:
				burst = append(burst, c)
			default:
				break drain
			}
		}
		if pc.p.breakerOpen() {
			failBurst(burst, ErrBackendUnavailable)
			continue
		}
		if g != nil && g.dead.Load() {
			g.conn.Close()
			g = nil
		}
		if g == nil {
			conn, err := net.DialTimeout("tcp", pc.p.backend.Addr, pc.p.dialTimeout)
			if err != nil {
				pc.p.noteFailure()
				failBurst(burst, ErrBackendDown)
				continue
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true) // bursts are already coalesced; don't let Nagle re-delay them
			}
			g = &gen{conn: conn, pending: make(chan *Call, submitQueue+maxBurst)}
			pc.p.wg.Add(1)
			go pc.read(g)
		}
		wbuf = wbuf[:0]
		var now int64 // one clock read per burst, only if someone is traced
		for _, c := range burst {
			wbuf = append(wbuf, c.req...)
			if c.traced {
				if now == 0 {
					now = time.Now().UnixNano()
				}
				// Stamp before the FIFO hand-off below: once a call is in
				// pending, the reader may finish it concurrently.
				c.tWrite = now
				c.burst = int32(len(burst))
			}
		}
		// FIFO hand-off before the bytes go out: replies arrive in
		// pipeline order, and the reader must never see a reply whose
		// call it cannot pop.
		for _, c := range burst {
			g.pending <- c
		}
		pc.p.met.ObserveBurst(len(burst))
		_, err := g.conn.Write(wbuf)
		if err != nil || g.dead.Load() {
			// Write failed, or the reader died underneath us after its
			// final drain: close, fail what remains, and start fresh
			// next burst. Both sides may drain pending concurrently;
			// each call is popped exactly once either way.
			g.conn.Close()
			drainPending(g, ErrBackendDown)
			if err != nil {
				pc.p.noteFailure()
			}
			g = nil
		}
	}
}

// read is one generation's reader: match reply lines to pending calls
// in FIFO order until the connection dies, then fail everything left.
func (pc *pconn) read(g *gen) {
	defer pc.p.wg.Done()
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(g.conn)
	defer func() {
		br.Reset(nil)
		readerPool.Put(br)
	}()
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			// Transport or framing failure (a reply over MaxLineBytes is
			// ErrBufferFull — unrecoverable mid-stream, same as the
			// server's own line bound). Raise dead first, then drain:
			// the writer re-checks dead after its own enqueues, so no
			// call is left stranded between the two drains.
			g.dead.Store(true)
			g.conn.Close()
			pc.p.noteFailure()
			drainPending(g, ErrBackendDown)
			return
		}
		line = trimEOL(line)
		if bytes.Equal(line, busyReply) {
			// Accept-time shed: this connection never entered service.
			g.dead.Store(true)
			g.conn.Close()
			pc.p.noteFailure()
			drainPending(g, ErrBackendUnavailable)
			return
		}
		select {
		case c := <-g.pending:
			c.finish(line, nil)
			pc.p.noteSuccess()
		default:
			// A reply with no awaiting call: protocol desync. Kill the
			// connection rather than mismatch replies.
			g.dead.Store(true)
			g.conn.Close()
			pc.p.noteFailure()
			drainPending(g, ErrBackendDown)
			return
		}
	}
}

// drainPending fails every call still in the generation's FIFO.
func drainPending(g *gen, err error) {
	for {
		select {
		case c := <-g.pending:
			c.finish(nil, err)
		default:
			return
		}
	}
}

// failBurst fails a burst that never reached a connection.
func failBurst(burst []*Call, err error) {
	for _, c := range burst {
		c.finish(nil, err)
	}
}

// trimEOL strips the line terminator (and a final "\r").
func trimEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// readerPool recycles the per-dial reply readers; sized to the
// server's own line bound so an oversized reply is a framing error,
// not a silent truncation.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, server.MaxLineBytes) },
}

// Probe dials the backend directly — outside the pool and its breaker
// gate — sends one HEALTH line, and reports whether a reply came back.
// The router's health watcher uses it to detect recovery while the
// breaker is open (the half-open probe) and to trip the breaker early
// when a quiet backend dies.
func (p *Pool) Probe(timeout time.Duration) bool {
	conn, err := net.DialTimeout("tcp", p.backend.Addr, timeout)
	if err != nil {
		p.noteFailure()
		return false
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte("HEALTH\n")); err != nil {
		p.noteFailure()
		return false
	}
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil || n == 0 || bytes.HasPrefix(buf[:n], busyReply) {
		p.noteFailure()
		return false
	}
	p.noteSuccess()
	return true
}
