package cluster

import (
	"net"
	"testing"

	"caram/internal/server"
	"caram/internal/subsystem"
	"caram/internal/wal"
)

// startWALBackend boots a backend whose server journals to a fresh WAL
// under the given sync policy, mirroring `caram-server -data`.
func startWALBackend(t testing.TB, mode wal.SyncMode) *testBackend {
	t.Helper()
	sub := subsystem.New(0)
	exactEngine(t, sub, "db")
	w, res, err := wal.Recover(t.TempDir(), nil, wal.Options{Sync: wal.SyncPolicy{Mode: mode}})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sub, server.WithWAL(w, res.RosterLSN, 0))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // returns when the server closes
	t.Cleanup(func() { srv.Close() })
	return &testBackend{srv: srv, addr: l.Addr().String()}
}

// TestRouterWALStatusMerge: WAL STATUS scatters to every backend and
// merges into one fleet line — summed commit horizons, the minimum
// snapshot boundary (the fleet's replay bound), and the common sync
// policy. Writes route to exactly one owner, so the fleet lsn sum must
// equal the number of acked mutations.
func TestRouterWALStatusMerge(t *testing.T) {
	bks := []*testBackend{
		startWALBackend(t, wal.SyncAlways),
		startWALBackend(t, wal.SyncAlways),
	}
	rt, _ := testRouter(t, bks, nil)

	if got := rdrive(t, rt, "WAL STATUS")[0]; got != "WAL nodes=2 lsn=0 durable=0 segments=2 snapshot_lsn=0 sync=always" {
		t.Fatalf("fresh fleet WAL STATUS = %q", got)
	}
	for _, req := range []string{
		"INSERT db dead 42", "INSERT db beef 43", "INSERT db f00d 44",
	} {
		if got := rdrive(t, rt, req)[0]; got != "OK" {
			t.Fatalf("%s: %q", req, got)
		}
	}
	if got := rdrive(t, rt, "WAL STATUS")[0]; got != "WAL nodes=2 lsn=3 durable=3 segments=2 snapshot_lsn=0 sync=always" {
		t.Fatalf("fleet WAL STATUS after 3 writes = %q", got)
	}
	// Usage errors forward verbatim, same as a direct server.
	if got := rdrive(t, rt, "WAL STATUS EXTRA")[0]; got != "ERR usage: WAL STATUS [SYNC]" {
		t.Fatalf("WAL STATUS EXTRA = %q", got)
	}
}

// TestRouterWALStatusMixedPolicy: a fleet whose nodes disagree on sync
// policy reports sync=mixed rather than inventing a common one.
func TestRouterWALStatusMixedPolicy(t *testing.T) {
	bks := []*testBackend{
		startWALBackend(t, wal.SyncAlways),
		startWALBackend(t, wal.SyncNever),
	}
	rt, _ := testRouter(t, bks, nil)
	got := rdrive(t, rt, "WAL STATUS")[0]
	if got != "WAL nodes=2 lsn=0 durable=0 segments=2 snapshot_lsn=0 sync=mixed" {
		t.Fatalf("mixed-policy fleet WAL STATUS = %q", got)
	}
}

// TestRouterWALStatusDisabledBackend: if any node runs without
// durability, the fleet answer is that node's error — a partial sum
// would overstate what is actually durable.
func TestRouterWALStatusDisabledBackend(t *testing.T) {
	bks := []*testBackend{
		startWALBackend(t, wal.SyncAlways),
		startBackend(t, "db"), // no WAL
	}
	rt, _ := testRouter(t, bks, nil)
	if got := rdrive(t, rt, "WAL STATUS")[0]; got != "ERR wal disabled" {
		t.Fatalf("fleet with wal-less node: %q", got)
	}
}
