package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"caram/internal/metrics"
	"caram/internal/server"
	"caram/internal/trace"
)

// Router puts N caram-server backends behind one wire endpoint. It
// speaks the internal/server line protocol on both sides: each
// incoming line is parsed just far enough to pick its backend(s), the
// raw bytes forward over the backend's pipelined pool, and the reply
// returns verbatim — the router is protocol-transparent for
// single-backend-owned operations.
//
// Routing table:
//
//   - INSERT/SEARCH/DELETE <eng> <key>: the ring owner of (engine,
//     key) — the key participates canonically (ParseVec), so every
//     spelling of the same key routes identically. Keys of one engine
//     spread across all backends (key sharding).
//   - Pinned engines (typed engines created through the router, plus
//     the -pin list) live wholly on their home backend — the ring
//     owner of the engine name — because longest-prefix,
//     highest-priority, and trigram ranking are only correct over the
//     whole rule set. All their ops forward home.
//   - SEARCH <eng> <key> <mask> on a sharded engine scatters to every
//     backend: first HIT in backend order, else MISS! if any backend
//     could not rule the key out, else MISS (a masked probe can match
//     a record on any shard).
//   - MSEARCH splits its pairs by ring owner, issues one pipelined
//     MSEARCH per involved backend concurrently, and reassembles the
//     slots in the caller's original order. A dead backend's slots
//     answer ERR:unavailable, never a shifted reply.
//   - CREATE ENGINE ... TYPE exact and DROP of sharded engines
//     broadcast (every backend must carry a sharded engine); typed
//     CREATEs forward to the engine's home and pin it.
//   - STATS <eng> on a sharded engine scatters and aggregates: n,
//     hits, misses sum; alpha is the mean load factor; amal is the
//     lookup-weighted mean. HEALTH merges per-engine worst states;
//     HEALTH <eng> [SCRUB] on sharded engines sums the counters.
//     ENGINES unions the rosters in backend order.
//   - METRICS (bare) answers from the router's own registry; SLOWLOG
//     and per-engine METRICS on sharded engines are per-backend state
//     the router does not fake — they answer a routed ERR instead.
//     With Tracing attached both become fleet-wide: METRICS scatters
//     and sums counters (LATENCY histograms merge bucket-wise),
//     SLOWLOG GET scatter/gathers every backend's slowlog plus the
//     router's own, k-way merged by latency and node=-tagged, and
//     TRACE GET answers from the router's rings or any backend's.
//   - WAL STATUS scatters and merges into one fleet line: lsn /
//     durable / segments sum, snapshot_lsn is the fleet minimum (the
//     replay bound), sync is the common policy or "mixed". Any node
//     answering ERR (wal disabled) fails the whole merge with that
//     ERR — a partial sum would overstate durability.
//   - Anything unparseable forwards to backend 0 so the backend's own
//     grammar renders the authoritative ERR, byte-identical to a
//     direct connection.
//
// Failure handling: transport failures trip the backend pool's
// circuit breaker; while it is open, requests shed fast with "ERR
// unavailable" (slots: "ERR:unavailable") — never a silently wrong
// reply. Idempotent reads (SEARCH, TSEARCH, EXPLAIN) that died
// in-flight retry with backoff on a fresh pool connection, bounded by
// Retries; writes never retry (their fate on the backend is unknown).
// The health watcher probes HEALTH on every backend each interval,
// tripping breakers of quiet-dead backends and closing them on
// recovery.
type Router struct {
	ring  *Ring
	pools []*Pool
	met   *metrics.RouterMetrics
	log   *slog.Logger
	trc   *trace.Collector // nil = router tracing off (legacy local SLOWLOG/METRICS)
	order []int            // backend indices sorted by address: scatter-merge iteration order

	pinMu  sync.Mutex
	pinned atomic.Pointer[map[string]bool] // COW; read on the hot path

	retries      int
	retryBackoff time.Duration

	watcherStop chan struct{}
	watcherWG   sync.WaitGroup

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	handlers  sync.WaitGroup
}

// ErrRouterClosed is returned by Serve after Close.
var ErrRouterClosed = errors.New("cluster: router closed")

// RouterConfig configures NewRouter. Backends is required; everything
// else has working defaults.
type RouterConfig struct {
	Backends []Backend
	Replicas int      // virtual nodes per backend (default DefaultReplicas)
	Pin      []string // engine names pinned to their home backend at boot

	Conns            int           // connections per backend pool (default 4)
	BreakerThreshold int           // consecutive failures to open a breaker (default 3)
	BreakerBackoff   time.Duration // breaker open window (default 250ms)
	DialTimeout      time.Duration // per-dial bound (default 2s)

	Retries        int           // idempotent-read resubmissions (default 2)
	RetryBackoff   time.Duration // first retry delay, doubling (default 2ms)
	HealthInterval time.Duration // HEALTH probe period (0 = watcher off)
	HealthTimeout  time.Duration // per-probe bound (default 1s)

	Metrics *metrics.RouterMetrics // optional; nil runs unmetered
	Logger  *slog.Logger           // optional

	// Tracing attaches a trace collector to the router: every proxied
	// request grows its own span tree (ring lookup, queue wait, backend
	// RTT, retries, breaker state), eligible requests tag their
	// forwarded commands with a wire trace id so backend traces become
	// children, and the SLOWLOG / METRICS / TRACE wire commands answer
	// fleet-wide (scatter/gather-merged) instead of the pre-tracing
	// local forms. nil keeps the legacy behavior byte-exactly.
	Tracing *trace.Collector
}

// NewRouter builds the ring and one pipelined pool per backend, and
// starts the health watcher when HealthInterval is set.
func NewRouter(cfg RouterConfig) (*Router, error) {
	labels := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		labels[i] = b.Label
	}
	ring, err := NewRing(labels, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	rt := &Router{
		ring:         ring,
		met:          cfg.Metrics,
		log:          cfg.Logger,
		trc:          cfg.Tracing,
		retries:      cfg.Retries,
		retryBackoff: cfg.RetryBackoff,
		listeners:    make(map[net.Listener]struct{}),
		conns:        make(map[net.Conn]struct{}),
	}
	// Scatter merges iterate backends in address order, not config
	// order, so admin output is stable regardless of how the backend
	// list was spelled (ties — tests use synthetic labels — break by
	// label, then config position).
	rt.order = make([]int, len(cfg.Backends))
	for i := range rt.order {
		rt.order[i] = i
	}
	sort.SliceStable(rt.order, func(a, b int) bool {
		ba, bb := cfg.Backends[rt.order[a]], cfg.Backends[rt.order[b]]
		if ba.Addr != bb.Addr {
			return ba.Addr < bb.Addr
		}
		return ba.Label < bb.Label
	})
	rt.pools = make([]*Pool, len(cfg.Backends))
	for i, b := range cfg.Backends {
		rt.pools[i] = NewPool(b, PoolConfig{
			Conns:            cfg.Conns,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerBackoff:   cfg.BreakerBackoff,
			DialTimeout:      cfg.DialTimeout,
			Metrics:          cfg.Metrics.Backend(i),
		})
	}
	pins := make(map[string]bool, len(cfg.Pin))
	for _, name := range cfg.Pin {
		if name != "" {
			pins[name] = true
		}
	}
	rt.pinned.Store(&pins)
	if cfg.HealthInterval > 0 {
		rt.watcherStop = make(chan struct{})
		rt.watcherWG.Add(1)
		go rt.watch(cfg.HealthInterval, cfg.HealthTimeout)
	}
	return rt, nil
}

// Ring returns the router's ring (tests pin assignments through it).
func (rt *Router) Ring() *Ring { return rt.ring }

// Pool returns backend b's pool.
func (rt *Router) Pool(b int) *Pool { return rt.pools[b] }

// Pinned reports whether the engine routes whole to its home backend.
func (rt *Router) Pinned(engine string) bool {
	return (*rt.pinned.Load())[engine]
}

// pin/unpin swap a fresh copy-on-write map; mutation is rare (CREATE/
// DROP of typed engines), reads are an atomic load.
func (rt *Router) pin(engine string, on bool) {
	rt.pinMu.Lock()
	defer rt.pinMu.Unlock()
	cur := *rt.pinned.Load()
	if cur[engine] == on {
		return
	}
	next := make(map[string]bool, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	if on {
		next[engine] = true
	} else {
		delete(next, engine)
	}
	rt.pinned.Store(&next)
}

// watch is the health watcher: probe every backend each tick. Probes
// bypass the pools (and their breaker gates), so an open breaker still
// gets its half-open recovery check and a quiet-dead backend trips
// before client traffic has to discover it.
func (rt *Router) watch(interval, timeout time.Duration) {
	defer rt.watcherWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-rt.watcherStop:
			return
		case <-tick.C:
			for i, p := range rt.pools {
				wasOpen := p.BreakerOpen()
				up := p.Probe(timeout)
				if rt.log != nil && up == wasOpen { // state change either direction
					if up {
						rt.log.Info("backend recovered", "backend", rt.ring.Label(i))
					} else {
						rt.log.Warn("backend unhealthy", "backend", rt.ring.Label(i))
					}
				}
			}
		}
	}
}

// Serve accepts connections until the listener closes or the router
// shuts down with Close.
func (rt *Router) Serve(l net.Listener) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		l.Close()
		return ErrRouterClosed
	}
	rt.listeners[l] = struct{}{}
	rt.handlers.Add(1)
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		delete(rt.listeners, l)
		rt.mu.Unlock()
		rt.handlers.Done()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if rt.isClosed() {
				return ErrRouterClosed
			}
			return err
		}
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			conn.Close()
			return ErrRouterClosed
		}
		rt.conns[conn] = struct{}{}
		rt.handlers.Add(1)
		rt.mu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				rt.mu.Lock()
				delete(rt.conns, conn)
				rt.mu.Unlock()
				rt.handlers.Done()
			}()
			defer func() {
				if r := recover(); r != nil && rt.log != nil {
					rt.log.Error("router handler panic",
						"remote", conn.RemoteAddr().String(),
						"panic", fmt.Sprint(r))
				}
			}()
			rt.Handle(conn, conn)
		}()
	}
}

func (rt *Router) isClosed() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.closed
}

// Close shuts the router down: the watcher stops, listeners and client
// connections close, in-flight handlers drain, then the backend pools
// tear down. (Pools close last — handlers may hold in-flight calls.)
func (rt *Router) Close() error {
	rt.mu.Lock()
	if !rt.closed {
		rt.closed = true
		for l := range rt.listeners {
			l.Close()
		}
		for c := range rt.conns {
			c.Close()
		}
	}
	rt.mu.Unlock()
	if rt.watcherStop != nil {
		close(rt.watcherStop)
		rt.watcherWG.Wait()
		rt.watcherStop = nil
	}
	rt.handlers.Wait()
	for _, p := range rt.pools {
		p.Close()
	}
	return nil
}

// opKind is the settle-time shape of one dispatched request.
type opKind uint8

const (
	opForward opKind = iota // one call, verbatim reply
	opLocal                 // precomputed router-side reply
	opMSearch               // per-backend MSEARCH calls + slot plan
	opScatter               // per-backend calls + merge rule
)

// mergeKind selects the scatter reassembly rule.
type mergeKind uint8

const (
	mergeOK mergeKind = iota
	mergeMaskedSearch
	mergeEngines
	mergeHealthAll
	mergeHealthEngine
	mergeScrub
	mergeStats
	mergeSlowlogLen
	mergeSlowlogGet
	mergeMetricsAll
	mergeMetricsEngine
	mergeHistQuantiles
	mergeHistSum
	mergeTrace
	mergeWALStatus
)

// pendingOp is one in-flight request of a client burst. The struct
// and its slices are reused across bursts (nextOp), so the forward
// path allocates nothing.
type pendingOp struct {
	kind       opKind
	merge      mergeKind
	backend    int  // opForward target
	idempotent bool // retry on in-flight transport death
	pin        string
	unpin      string
	calls      []*Call      // opForward: 1; scatter/msearch: per-backend (nil = uninvolved)
	slotBk     []int        // opMSearch: original slot -> backend
	local      []byte       // opLocal reply
	tr         *trace.Trace // router-side trace of this request (nil = untraced)
}

func (op *pendingOp) reset() {
	op.kind, op.merge, op.backend, op.idempotent = opForward, mergeOK, 0, false
	op.pin, op.unpin = "", ""
	op.calls = op.calls[:0]
	op.slotBk = op.slotBk[:0]
	op.local = op.local[:0]
	op.tr = nil
}

// rconn is one client connection's reusable state: the line reader,
// the reply buffer, the pending-op arena, and the scatter scratch.
// lane is the client's sticky pool lane: every submission this client
// makes to a given backend rides one connection, so its own requests
// reach that backend in order (the pipelining contract a direct
// connection gives); different clients land on different lanes and
// coalesce.
type rconn struct {
	r    *bufio.Reader
	out  []byte
	lane uint64
	ops  []pendingOp
	reqb [][]byte     // per-backend MSEARCH builders
	curs []int        // per-backend reassembly cursors
	tr   *trace.Trace // trace of the request currently dispatching
	tagb []byte       // *TID tagging scratch (reused per submission)
	cmdb []byte       // rewritten-command scratch (METRICS ... LATENCY -> HIST)
}

// laneCounter hands each handled connection its lane.
var laneCounter atomic.Uint64

var rconnPool = sync.Pool{
	New: func() any {
		return &rconn{
			r:   bufio.NewReaderSize(nil, server.MaxLineBytes),
			out: make([]byte, 0, 4096),
		}
	},
}

// nextOp returns a reset pendingOp slot, reusing backing arrays.
func (st *rconn) nextOp() *pendingOp {
	if len(st.ops) < cap(st.ops) {
		st.ops = st.ops[:len(st.ops)+1]
	} else {
		st.ops = append(st.ops, pendingOp{})
	}
	op := &st.ops[len(st.ops)-1]
	op.reset()
	return op
}

// flushThreshold and maxClientPipeline bound how much reply data and
// how many pending ops accumulate before a settle is forced even
// though more pipelined requests are buffered.
const (
	flushThreshold    = 32 * 1024
	maxClientPipeline = 512
)

// Handle processes one client connection's request stream: read every
// request already buffered, dispatch each to its backend(s) — they
// coalesce into pool write bursts — then settle the burst: await
// replies in request order, reassemble, and flush once. Split from
// Serve so tests drive it over arbitrary pipes; safe for concurrent
// use by any number of connections.
func (rt *Router) Handle(r io.Reader, w io.Writer) {
	st := rconnPool.Get().(*rconn)
	st.r.Reset(r)
	st.out = st.out[:0]
	st.lane = laneCounter.Add(1)
	st.ops = st.ops[:0]
	if len(st.reqb) < len(rt.pools) {
		st.reqb = make([][]byte, len(rt.pools))
		st.curs = make([]int, len(rt.pools))
	}
	defer func() {
		st.r.Reset(nil)
		rconnPool.Put(st)
	}()
	for {
		line, err := st.r.ReadSlice('\n')
		switch {
		case err == nil:
			rt.dispatch(st, trimEOL(line))
			if st.r.Buffered() == 0 || len(st.ops) >= maxClientPipeline {
				if !rt.settle(st, w) {
					return
				}
			}
		case errors.Is(err, bufio.ErrBufferFull):
			rt.settle(st, w)
			w.Write([]byte("ERR line too long\n")) //nolint:errcheck // connection is ending either way
			return
		case errors.Is(err, io.EOF):
			if len(line) > 0 {
				rt.dispatch(st, trimEOL(line))
			}
			rt.settle(st, w)
			return
		default:
			if len(line) > 0 {
				rt.dispatch(st, trimEOL(line))
			}
			if rt.settle(st, w) {
				fmt.Fprintf(w, "ERR read: %s\n", err.Error()) //nolint:errcheck
			}
			return
		}
	}
}

// dispatch routes one request line: submit its call(s) and append the
// pending op. It never blocks on replies — that is settle's job — so
// a pipelined client burst reaches the pools as one coalesced window.
// When the router has a collector, each request grows its own trace;
// ineligible traces (sampler missed, slowlog off) recycle immediately
// so the untraced forward path stays allocation-free.
func (rt *Router) dispatch(st *rconn, line []byte) {
	if tr := rt.trc.Begin(); tr != nil {
		if rt.trc.Eligible(tr) {
			st.tr = tr
		} else {
			rt.trc.End(tr)
		}
	}
	rt.route(st, line)
	if st.tr != nil {
		// Every route path appends exactly one op; hand the trace to it
		// for settle-time span recording and admission.
		st.ops[len(st.ops)-1].tr = st.tr
		st.tr = nil
	}
}

// route picks the backend(s) for one line and submits. Split from
// dispatch so trace bookkeeping wraps every return path once.
func (rt *Router) route(st *rconn, line []byte) {
	sc := bscan{b: line}
	cmd, ok := sc.next()
	if !ok {
		rt.forward(st, line, 0, false) // empty request: backend renders the ERR
		return
	}
	if st.tr != nil {
		// Clone eagerly: the line buffer dies at the next ReadSlice,
		// long before settle finishes this trace.
		st.tr.Request(upperString(cmd), "", "")
	}
	switch {
	case eqFold(cmd, "SEARCH"):
		eng, ok1 := sc.next()
		key, ok2 := sc.next()
		mask, hasMask := sc.next()
		_, extra := sc.next()
		if !ok1 || !ok2 || extra {
			rt.forwardUsage(st, line, eng, ok1)
			return
		}
		if st.tr != nil {
			st.tr.Request(upperString(cmd), string(eng), string(key))
		}
		if rt.Pinned(string(eng)) {
			rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), true)
			return
		}
		if hasMask {
			_ = mask
			rt.scatter(st, line, mergeMaskedSearch)
			return
		}
		if v, ok := parseVecBytes(key); ok {
			rt.forward(st, line, rt.ring.Owner(string(eng), v), true)
		} else {
			rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), true)
		}
	case eqFold(cmd, "INSERT"), eqFold(cmd, "DELETE"):
		eng, ok1 := sc.next()
		key, ok2 := sc.next()
		if !ok1 || !ok2 {
			rt.forwardUsage(st, line, eng, ok1)
			return
		}
		if st.tr != nil {
			st.tr.Request(upperString(cmd), string(eng), string(key))
		}
		if rt.Pinned(string(eng)) {
			rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), false)
			return
		}
		if v, ok := parseVecBytes(key); ok {
			rt.forward(st, line, rt.ring.Owner(string(eng), v), false)
		} else {
			rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), false)
		}
	case eqFold(cmd, "MSEARCH"):
		rt.dispatchMSearch(st, line, sc)
	case eqFold(cmd, "MINSERT"), eqFold(cmd, "MDELETE"), eqFold(cmd, "TINSERT"):
		eng, ok1 := sc.next()
		rt.forwardUsage(st, line, eng, ok1)
	case eqFold(cmd, "TSEARCH"):
		eng, ok1 := sc.next()
		if !ok1 {
			rt.forward(st, line, 0, false)
			return
		}
		rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), true)
	case eqFold(cmd, "EXPLAIN"):
		sub, okSub := sc.next()
		eng, ok1 := sc.next()
		key, ok2 := sc.next()
		_, hasMask := sc.next()
		if !okSub || !eqFold(sub, "SEARCH") || !ok1 || !ok2 {
			rt.forwardUsage(st, line, eng, ok1)
			return
		}
		if hasMask || rt.Pinned(string(eng)) {
			rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), true)
			return
		}
		if v, ok := parseVecBytes(key); ok {
			rt.forward(st, line, rt.ring.Owner(string(eng), v), true)
		} else {
			rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), true)
		}
	case eqFold(cmd, "STATS"):
		eng, ok1 := sc.next()
		_, extra := sc.next()
		if !ok1 || extra {
			rt.forward(st, line, 0, false)
			return
		}
		if rt.Pinned(string(eng)) {
			rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), true)
			return
		}
		rt.scatter(st, line, mergeStats)
	case eqFold(cmd, "ENGINES"):
		rt.scatter(st, line, mergeEngines)
	case eqFold(cmd, "HEALTH"):
		eng, hasEng := sc.next()
		sub, hasSub := sc.next()
		_, extra := sc.next()
		switch {
		case extra:
			rt.forward(st, line, 0, false)
		case !hasEng:
			rt.scatter(st, line, mergeHealthAll)
		case rt.Pinned(string(eng)):
			rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), !hasSub)
		case hasSub && eqFold(sub, "SCRUB"):
			rt.scatter(st, line, mergeScrub)
		case hasSub:
			rt.forward(st, line, 0, false) // bad subcommand: backend usage ERR
		default:
			rt.scatter(st, line, mergeHealthEngine)
		}
	case eqFold(cmd, "WAL"):
		rt.scatter(st, line, mergeWALStatus)
	case eqFold(cmd, "CREATE"):
		kw, okKw := sc.next()
		name, okName := sc.next()
		tkw, okTkw := sc.next()
		typ, okTyp := sc.next()
		if !okKw || !eqFold(kw, "ENGINE") || !okName || !okTkw || !eqFold(tkw, "TYPE") || !okTyp {
			rt.forward(st, line, 0, false)
			return
		}
		if eqFold(typ, "EXACT") {
			rt.scatter(st, line, mergeOK)
			return
		}
		// Pin at dispatch, not settle: requests later in this same
		// pipelined burst must already route the new typed engine to
		// its home. Settle rolls the pin back if the CREATE failed.
		rt.pin(string(name), true)
		op := rt.forward(st, line, rt.ring.OwnerEngine(string(name)), false)
		op.pin = string(name)
	case eqFold(cmd, "DROP"):
		kw, okKw := sc.next()
		name, okName := sc.next()
		if !okKw || !eqFold(kw, "ENGINE") || !okName {
			rt.forward(st, line, 0, false)
			return
		}
		if rt.Pinned(string(name)) {
			op := rt.forward(st, line, rt.ring.OwnerEngine(string(name)), false)
			op.unpin = string(name)
			return
		}
		rt.scatter(st, line, mergeOK)
	case eqFold(cmd, "METRICS"):
		rt.dispatchMetrics(st, line)
	case eqFold(cmd, "SLOWLOG"):
		rt.dispatchSlowlog(st, line, sc)
	case eqFold(cmd, "TRACE"):
		rt.dispatchTrace(st, line, sc)
	default:
		rt.forward(st, line, 0, false)
	}
}

// forward submits line to one backend and records the pending op.
func (rt *Router) forward(st *rconn, line []byte, backend int, idempotent bool) *pendingOp {
	op := st.nextOp()
	op.kind = opForward
	op.backend = backend
	op.idempotent = idempotent
	if tr := st.tr; tr != nil {
		tr.Span(trace.KindRoute, tr.Begin) // parse + ring lookup, dispatch-relative
		tr.Add(trace.Event{Kind: trace.KindBreaker, Bucket: uint32(backend),
			Hit: rt.pools[backend].BreakerOpen()})
		op.calls = append(op.calls, rt.pools[backend].SubmitLaneT(st.tag(line, 1), st.lane, true))
		return op
	}
	op.calls = append(op.calls, rt.pools[backend].SubmitLane(line, st.lane))
	return op
}

// tag prefixes line with the trace's wire annotation — "*TID
// <hex-id>/<span> <line>" — into the rconn scratch. The backend joins
// its own trace to the id, so a later TRACE GET <id>/<span> on that
// backend returns this hop's child trace. The trace id is minted
// lazily, once per router trace.
func (st *rconn) tag(line []byte, span uint32) []byte {
	tr := st.tr
	if tr.TID == 0 {
		tr.SetWire(trace.NewTraceID(), 0)
	}
	b := append(st.tagb[:0], "*TID "...)
	b = strconv.AppendUint(b, tr.TID, 16)
	b = append(b, '/')
	b = strconv.AppendUint(b, uint64(span), 10)
	b = append(b, ' ')
	b = append(b, line...)
	st.tagb = b
	return b
}

// upperString clones b as an upper-cased string (commands are matched
// case-insensitively but recorded canonically).
func upperString(b []byte) string {
	s := make([]byte, len(b))
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		s[i] = c
	}
	return string(s)
}

// forwardUsage anchors a malformed engine-op line: to the engine's
// home when an engine field exists (deterministic, and the right place
// for its real ops too), else to backend 0. The backend renders the
// authoritative ERR, byte-identical to a direct connection.
func (rt *Router) forwardUsage(st *rconn, line []byte, eng []byte, haveEng bool) {
	if haveEng {
		rt.forward(st, line, rt.ring.OwnerEngine(string(eng)), false)
	} else {
		rt.forward(st, line, 0, false)
	}
}

// scatter submits line to every backend with a merge rule. Traced
// scatters tag backend b's copy with child span b+1.
func (rt *Router) scatter(st *rconn, line []byte, merge mergeKind) *pendingOp {
	op := st.nextOp()
	op.kind = opScatter
	op.merge = merge
	if tr := st.tr; tr != nil {
		tr.Span(trace.KindRoute, tr.Begin)
		for i, p := range rt.pools {
			tr.Add(trace.Event{Kind: trace.KindBreaker, Bucket: uint32(i), Hit: p.BreakerOpen()})
			op.calls = append(op.calls, p.SubmitLaneT(st.tag(line, uint32(i+1)), st.lane, true))
		}
		return op
	}
	for _, p := range rt.pools {
		op.calls = append(op.calls, p.SubmitLane(line, st.lane))
	}
	return op
}

// dispatchMSearch splits the pair list by ring owner and issues one
// MSEARCH per involved backend. Malformed lists (odd arity, bad hex)
// forward whole to backend 0: the server validates every key before
// executing any slot, so nothing runs and the ERR is authoritative.
func (rt *Router) dispatchMSearch(st *rconn, line []byte, sc bscan) {
	n := sc.count()
	if n == 0 || n%2 != 0 {
		rt.forward(st, line, 0, false)
		return
	}
	op := st.nextOp()
	op.kind = opMSearch
	for b := range rt.pools {
		if cap(st.reqb[b]) == 0 {
			st.reqb[b] = make([]byte, 0, 256)
		}
		st.reqb[b] = st.reqb[b][:0]
	}
	for {
		eng, ok := sc.next()
		if !ok {
			break
		}
		key, _ := sc.next()
		v, okKey := parseVecBytes(key)
		if !okKey {
			// Bad hex: the whole line belongs to one backend's parser
			// (the server validates every key before executing any
			// slot, so nothing has run). Drop the op — no calls were
			// submitted yet — and forward whole.
			st.ops = st.ops[:len(st.ops)-1]
			rt.forward(st, line, 0, false)
			return
		}
		var b int
		if rt.Pinned(string(eng)) {
			b = rt.ring.OwnerEngine(string(eng))
		} else {
			b = rt.ring.Owner(string(eng), v)
		}
		if len(st.reqb[b]) == 0 {
			st.reqb[b] = append(st.reqb[b], "MSEARCH"...)
		}
		st.reqb[b] = append(st.reqb[b], ' ')
		st.reqb[b] = append(st.reqb[b], eng...)
		st.reqb[b] = append(st.reqb[b], ' ')
		st.reqb[b] = append(st.reqb[b], key...)
		op.slotBk = append(op.slotBk, b)
	}
	if st.tr != nil {
		st.tr.Span(trace.KindRoute, st.tr.Begin)
	}
	for b := range rt.pools {
		switch {
		case len(st.reqb[b]) == 0:
			op.calls = append(op.calls, nil)
		case st.tr != nil:
			op.calls = append(op.calls, rt.pools[b].SubmitLaneT(st.tag(st.reqb[b], uint32(b+1)), st.lane, true))
		default:
			op.calls = append(op.calls, rt.pools[b].SubmitLane(st.reqb[b], st.lane))
		}
	}
}

// replyUnavailable is the router's shed line for single-reply
// requests; MSEARCH slots use server.SlotUnavailable. Only ever sent
// instead of an answer, never alongside a wrong one.
var replyUnavailable = []byte("ERR unavailable")

// settle awaits the burst's calls in request order, reassembles
// scatter replies, appends everything to the out buffer, and flushes
// it with one write. Reports false when the client's write side died.
func (rt *Router) settle(st *rconn, w io.Writer) bool {
	for i := range st.ops {
		op := &st.ops[i]
		mark := len(st.out)
		switch op.kind {
		case opLocal:
			st.out = append(st.out, op.local...)
		case opForward:
			st.out = rt.settleForward(st.out, op)
		case opMSearch:
			st.out = rt.settleMSearch(st, st.out, op)
		case opScatter:
			st.out = rt.settleScatter(st.out, op)
		}
		if op.tr != nil {
			op.tr.SetResult(server.ResultToken(st.out[mark:]))
			if slow := rt.trc.End(op.tr); slow && rt.log != nil {
				rt.log.Warn("slow proxied request",
					"id", op.tr.ID,
					"cmd", op.tr.Cmd,
					"engine", op.tr.Engine,
					"key", op.tr.Key,
					"us", op.tr.Dur.Microseconds(),
					"result", op.tr.Result)
			}
			op.tr = nil
		}
		st.out = append(st.out, '\n')
	}
	st.ops = st.ops[:0]
	ok := true
	if len(st.out) > 0 {
		_, err := w.Write(st.out)
		st.out = st.out[:0]
		ok = err == nil
	}
	return ok
}

// settleForward resolves a single-backend call, retrying idempotent
// reads whose connection died in flight.
func (rt *Router) settleForward(out []byte, op *pendingOp) []byte {
	c := op.calls[0]
	resp, err := c.Wait()
	for attempt := 1; err != nil && op.idempotent && errors.Is(err, ErrBackendDown) && attempt <= rt.retries; attempt++ {
		rt.met.Backend(op.backend).IncRetries()
		if op.tr != nil {
			op.tr.Add(trace.Event{Kind: trace.KindRetry, Bucket: uint32(op.backend),
				Matches: int32(attempt)})
		}
		time.Sleep(rt.retryBackoff << uint(attempt-1))
		nc := rt.pools[op.backend].SubmitT(c.req, c.traced) // the *TID tag rides in c.req
		c.Release()
		c = nc
		resp, err = c.Wait()
	}
	recordCall(op.tr, c, op.backend, 1)
	ok := err == nil && tokenEq(resp, server.ReplyOK)
	if op.pin != "" && !ok {
		rt.pin(op.pin, false) // CREATE failed: roll the speculative pin back
	}
	if op.unpin != "" && ok {
		rt.pin(op.unpin, false) // DROP succeeded: the engine is gone
	}
	if err != nil {
		out = append(out, replyUnavailable...)
	} else {
		out = append(out, resp...)
	}
	c.Release()
	return out
}

// settleMSearch reassembles per-backend MRESULTS into the caller's
// original slot order.
func (rt *Router) settleMSearch(st *rconn, out []byte, op *pendingOp) []byte {
	// Await every involved backend first; a slow shard must not stall
	// slots of others being appended out of order anyway (order is
	// fixed by the plan, not by arrival).
	for _, c := range op.calls {
		if c != nil {
			c.Wait() //nolint:errcheck // consumed per-slot below
		}
	}
	// Per-backend cursors walk each MRESULTS reply left to right; the
	// slot plan visits each backend's slots in the order they were
	// packed, so a cursor never rewinds.
	for b, c := range op.calls {
		st.curs[b] = 0
		if c == nil {
			continue
		}
		if resp, err := c.Wait(); err == nil {
			// Position after the "MRESULTS" token; anything else
			// (an ERR line) marks every slot of this backend failed.
			if tok, rest := firstToken(resp); eqFold(tok, server.ReplyMResults) {
				st.curs[b] = rest
			} else {
				st.curs[b] = -1
			}
		} else {
			st.curs[b] = -1
		}
	}
	out = append(out, server.ReplyMResults...)
	for _, b := range op.slotBk {
		out = append(out, ' ')
		c := op.calls[b]
		if c == nil || st.curs[b] < 0 {
			out = append(out, server.SlotUnavailable...)
			continue
		}
		resp, _ := c.Wait()
		slot, next := tokenAt(resp, st.curs[b])
		if len(slot) == 0 {
			// Backend answered fewer slots than asked: desync; never
			// serve a shifted reply.
			out = append(out, server.SlotUnavailable...)
			continue
		}
		st.curs[b] = next
		out = append(out, slot...)
	}
	for b, c := range op.calls {
		if c != nil {
			recordCall(op.tr, c, b, uint32(b+1))
			c.Release()
		}
	}
	return out
}

// settleScatter resolves a broadcast according to its merge rule.
func (rt *Router) settleScatter(out []byte, op *pendingOp) []byte {
	for _, c := range op.calls {
		c.Wait() //nolint:errcheck // re-read per merge rule below
	}
	switch op.merge {
	case mergeOK:
		out = rt.mergeAllOK(out, op)
	case mergeMaskedSearch:
		out = mergeMasked(out, op)
	case mergeEngines:
		out = mergeEngineUnion(out, op)
	case mergeHealthAll:
		out = rt.mergeHealthRoster(out, op)
	case mergeHealthEngine:
		out = rt.mergeHealthCounters(out, op)
	case mergeScrub:
		out = rt.mergeScrubReports(out, op)
	case mergeStats:
		out = mergeStatsAgg(out, op)
	case mergeSlowlogLen:
		out = rt.mergeSlowlogLen(out, op)
	case mergeSlowlogGet:
		out = rt.mergeSlowlogGet(out, op)
	case mergeMetricsAll:
		out = rt.mergeMetricsAll(out, op)
	case mergeMetricsEngine:
		out = rt.mergeMetricsEngine(out, op)
	case mergeHistQuantiles:
		out = rt.mergeHistQuantiles(out, op)
	case mergeHistSum:
		out = rt.mergeHistSum(out, op)
	case mergeTrace:
		out = rt.mergeTrace(out, op)
	case mergeWALStatus:
		out = rt.mergeWALStatus(out, op)
	}
	for b, c := range op.calls {
		recordCall(op.tr, c, b, uint32(b+1))
		c.Release()
	}
	return out
}

// recordCall turns one traced pool call's timestamps into router
// spans: queue_wait (submit -> pool writer picked it up), backend_rtt
// (write -> reply decoded; Span carries the child span id a stitcher
// resolves via TRACE GET on that backend), and the coalesced write
// burst size. A call shed before reaching a connection (open breaker,
// closed pool) never got a write stamp: all of its time was queueing.
func recordCall(tr *trace.Trace, c *Call, backend int, span uint32) {
	if tr == nil || !c.traced {
		return
	}
	begin := tr.Begin.UnixNano()
	if c.tWrite != 0 {
		tr.Add(trace.Event{Kind: trace.KindQueue, Bucket: uint32(backend),
			Offset: time.Duration(c.tSubmit - begin), Dur: time.Duration(c.tWrite - c.tSubmit)})
		tr.Add(trace.Event{Kind: trace.KindRTT, Bucket: uint32(backend), Span: span,
			Offset: time.Duration(c.tWrite - begin), Dur: time.Duration(c.tDone - c.tWrite)})
		tr.Add(trace.Event{Kind: trace.KindBurst, Bucket: uint32(backend), Matches: c.burst})
	} else {
		tr.Add(trace.Event{Kind: trace.KindQueue, Bucket: uint32(backend),
			Offset: time.Duration(c.tSubmit - begin), Dur: time.Duration(c.tDone - c.tSubmit)})
	}
}

// mergeAllOK: every backend must say OK; otherwise the first non-OK
// reply (in backend order) wins, and a transport failure sheds. Used
// for broadcast CREATE/DROP of sharded engines, where partial
// application is surfaced, not hidden. On success, settle-side pin
// bookkeeping has already been handled by the forward path (pinned
// creates are not broadcast).
func (rt *Router) mergeAllOK(out []byte, op *pendingOp) []byte {
	for _, c := range op.calls {
		resp, err := c.Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		if !tokenEq(resp, server.ReplyOK) {
			return append(out, resp...)
		}
	}
	return append(out, server.ReplyOK...)
}

// mergeMasked: a masked probe can match on any shard — first HIT in
// backend order wins; a backend that could not rule the key out (or
// could not be asked) forces the explicit error forms.
func mergeMasked(out []byte, op *pendingOp) []byte {
	sawDown, sawMissErr, sawMiss := false, false, false
	var firstOther []byte
	for _, c := range op.calls {
		resp, err := c.Wait()
		switch {
		case err != nil:
			sawDown = true
		case hasPrefix(resp, "HIT "):
			return append(out, resp...)
		case tokenEq(resp, server.ReplyMissErr):
			sawMissErr = true
		case tokenEq(resp, server.ReplyMiss):
			sawMiss = true
		default:
			if firstOther == nil {
				firstOther = resp
			}
		}
	}
	switch {
	case sawDown:
		return append(out, replyUnavailable...)
	case sawMissErr:
		return append(out, server.ReplyMissErr...)
	case sawMiss:
		return append(out, server.ReplyMiss...)
	case firstOther != nil:
		return append(out, firstOther...)
	}
	return append(out, server.ReplyMiss...)
}

// mergeEngineUnion: the cluster roster is the union of backend
// rosters, first-seen order scanning backends in configuration order.
func mergeEngineUnion(out []byte, op *pendingOp) []byte {
	seen := make(map[string]struct{}, 8)
	mark := len(out)
	out = append(out, "ENGINES"...)
	for _, c := range op.calls {
		resp, err := c.Wait()
		if err != nil {
			return append(out[:mark], replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "ENGINES") {
			continue
		}
		for {
			name, ok := sc.next()
			if !ok {
				break
			}
			if _, dup := seen[string(name)]; dup {
				continue
			}
			seen[string(name)] = struct{}{}
			out = append(out, ' ')
			out = append(out, name...)
		}
	}
	return out
}

// healthRank orders the engine health vocabulary worst-last.
func healthRank(state []byte) int {
	switch {
	case eqFold(state, "failed"):
		return 2
	case eqFold(state, "degraded"):
		return 1
	default:
		return 0
	}
}

var healthNames = [...]string{"healthy", "degraded", "failed"}

// mergeHealthRoster: per engine name, the worst state reported by any
// backend (a sharded engine is only as available as its sickest
// shard), names in first-seen order scanning backends by address — so
// the merged roster is deterministic regardless of how the backend
// list was spelled.
func (rt *Router) mergeHealthRoster(out []byte, op *pendingOp) []byte {
	type ent struct {
		name string
		rank int
	}
	var ents []ent
	idx := make(map[string]int, 8)
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "HEALTH") {
			continue
		}
		for {
			pair, ok := sc.next()
			if !ok {
				break
			}
			name, val, ok := splitKV(pair)
			if !ok {
				continue
			}
			r := healthRank(val)
			if i, seen := idx[string(name)]; seen {
				if r > ents[i].rank {
					ents[i].rank = r
				}
			} else {
				idx[string(name)] = len(ents)
				ents = append(ents, ent{name: string(name), rank: r})
			}
		}
	}
	out = append(out, "HEALTH"...)
	for _, e := range ents {
		out = append(out, ' ')
		out = append(out, e.name...)
		out = append(out, '=')
		out = append(out, healthNames[e.rank]...)
	}
	return out
}

// mergeHealthCounters: HEALTH <eng> across shards — worst state,
// summed error-coding counters, summed overflow occupancy. Backends
// scan in address order so the surviving ERR (if any) is stable.
func (rt *Router) mergeHealthCounters(out []byte, op *pendingOp) []byte {
	var (
		got      bool
		rank     int
		sums     map[string]int64
		ovLen    int64
		ovCap    int64
		firstErr []byte
		engine   []byte
	)
	order := []string{"quarantined", "corrected", "uncorrectable", "read_errors", "scrubs", "scrub_bits"}
	sums = make(map[string]int64, len(order))
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "HEALTH") {
			if firstErr == nil {
				firstErr = resp
			}
			continue
		}
		got = true
		for {
			pair, ok := sc.next()
			if !ok {
				break
			}
			k, v, ok := splitKV(pair)
			if !ok {
				continue
			}
			switch {
			case eqFold(k, "engine"):
				engine = v
			case eqFold(k, "state"):
				if r := healthRank(v); r > rank {
					rank = r
				}
			case eqFold(k, "overflow"):
				if a, b, ok := splitSlash(v); ok {
					ovLen += parseInt(a)
					ovCap += parseInt(b)
				}
			default:
				sums[string(k)] += parseInt(v)
			}
		}
	}
	if !got {
		if firstErr != nil {
			return append(out, firstErr...)
		}
		return append(out, replyUnavailable...)
	}
	out = append(out, "HEALTH engine="...)
	out = append(out, engine...)
	out = append(out, " state="...)
	out = append(out, healthNames[rank]...)
	for _, k := range order {
		out = append(out, ' ')
		out = append(out, k...)
		out = append(out, '=')
		out = strconv.AppendInt(out, sums[k], 10)
	}
	out = append(out, " overflow="...)
	out = strconv.AppendInt(out, ovLen, 10)
	out = append(out, '/')
	return strconv.AppendInt(out, ovCap, 10)
}

// mergeScrubReports: HEALTH <eng> SCRUB across shards — every shard
// scrubs, repairs sum, backends scanned in address order.
func (rt *Router) mergeScrubReports(out []byte, op *pendingOp) []byte {
	var rows, bits, released int64
	var engine []byte
	got := false
	var firstErr []byte
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "OK") {
			if firstErr == nil {
				firstErr = resp
			}
			continue
		}
		got = true
		for {
			pair, ok := sc.next()
			if !ok {
				break
			}
			k, v, ok := splitKV(pair)
			if !ok {
				continue
			}
			switch {
			case eqFold(k, "engine"):
				engine = v
			case eqFold(k, "rows"):
				rows += parseInt(v)
			case eqFold(k, "bits"):
				bits += parseInt(v)
			case eqFold(k, "released"):
				released += parseInt(v)
			}
		}
	}
	if !got {
		if firstErr != nil {
			return append(out, firstErr...)
		}
		return append(out, replyUnavailable...)
	}
	out = append(out, "OK scrub engine="...)
	out = append(out, engine...)
	out = append(out, " rows="...)
	out = strconv.AppendInt(out, rows, 10)
	out = append(out, " bits="...)
	out = strconv.AppendInt(out, bits, 10)
	out = append(out, " released="...)
	return strconv.AppendInt(out, released, 10)
}

// mergeWALStatus: WAL STATUS across the fleet — summed commit
// horizons (lsn, durable, segments; each node numbers its own log, so
// the sums are fleet totals), the most conservative snapshot bound
// (min), and the sync policy when every node agrees ("mixed"
// otherwise). Node-local latency keys of the SYNC form are dropped
// from the merged reply. A backend that answers ERR (wal disabled, or
// a usage error) wins verbatim, address order making it stable.
func (rt *Router) mergeWALStatus(out []byte, op *pendingOp) []byte {
	var (
		got                    bool
		nodes                  int64
		lsn, durable, segments int64
		snapMin                int64 = -1
		policy                 []byte
		mixed                  bool
	)
	for _, bi := range rt.order {
		resp, err := op.calls[bi].Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "WAL") {
			// Any node without a WAL (or otherwise erring) fails the
			// whole fleet answer: a partial sum would overstate what is
			// actually durable.
			return append(out, resp...)
		}
		got = true
		nodes++
		for {
			pair, ok := sc.next()
			if !ok {
				break
			}
			k, v, ok := splitKV(pair)
			if !ok {
				continue
			}
			switch {
			case eqFold(k, "lsn"):
				lsn += parseInt(v)
			case eqFold(k, "durable"):
				durable += parseInt(v)
			case eqFold(k, "segments"):
				segments += parseInt(v)
			case eqFold(k, "snapshot_lsn"):
				if s := parseInt(v); snapMin < 0 || s < snapMin {
					snapMin = s
				}
			case eqFold(k, "sync"):
				if policy == nil {
					policy = v
				} else if string(policy) != string(v) {
					mixed = true
				}
			}
		}
	}
	if !got {
		return append(out, replyUnavailable...)
	}
	if snapMin < 0 {
		snapMin = 0
	}
	out = append(out, "WAL nodes="...)
	out = strconv.AppendInt(out, nodes, 10)
	out = append(out, " lsn="...)
	out = strconv.AppendInt(out, lsn, 10)
	out = append(out, " durable="...)
	out = strconv.AppendInt(out, durable, 10)
	out = append(out, " segments="...)
	out = strconv.AppendInt(out, segments, 10)
	out = append(out, " snapshot_lsn="...)
	out = strconv.AppendInt(out, snapMin, 10)
	out = append(out, " sync="...)
	if mixed {
		out = append(out, "mixed"...)
	} else {
		out = append(out, policy...)
	}
	return out
}

// mergeStatsAgg: STATS across shards. Counts sum exactly; alpha is
// the mean shard load factor (shards share one geometry, so the mean
// is the cluster load factor); amal is the lookup-weighted mean — the
// cluster's rows-accessed-per-lookup over the same traffic.
func mergeStatsAgg(out []byte, op *pendingOp) []byte {
	var (
		n, hits, misses int64
		alphaSum        float64
		amalWeighted    float64
		lookups         float64
		shards          int
		firstErr        []byte
	)
	for _, c := range op.calls {
		resp, err := c.Wait()
		if err != nil {
			return append(out, replyUnavailable...)
		}
		sc := bscan{b: resp}
		if tok, ok := sc.next(); !ok || !eqFold(tok, "STATS") {
			if firstErr == nil {
				firstErr = resp
			}
			continue
		}
		shards++
		var sn, sh, sm int64
		var salpha, samal float64
		for {
			pair, ok := sc.next()
			if !ok {
				break
			}
			k, v, ok := splitKV(pair)
			if !ok {
				continue
			}
			switch {
			case eqFold(k, "n"):
				sn = parseInt(v)
			case eqFold(k, "alpha"):
				salpha = parseFloat(v)
			case eqFold(k, "amal"):
				samal = parseFloat(v)
			case eqFold(k, "hits"):
				sh = parseInt(v)
			case eqFold(k, "misses"):
				sm = parseInt(v)
			}
		}
		n += sn
		hits += sh
		misses += sm
		alphaSum += salpha
		l := float64(sh + sm)
		amalWeighted += samal * l
		lookups += l
	}
	if shards == 0 {
		if firstErr != nil {
			return append(out, firstErr...)
		}
		return append(out, replyUnavailable...)
	}
	alpha := alphaSum / float64(shards)
	amal := amalWeighted / lookups // NaN with zero lookups, like a fresh engine's
	out = append(out, "STATS n="...)
	out = strconv.AppendInt(out, n, 10)
	out = append(out, " alpha="...)
	out = strconv.AppendFloat(out, alpha, 'f', 3, 64)
	out = append(out, " amal="...)
	out = strconv.AppendFloat(out, amal, 'f', 3, 64)
	out = append(out, " hits="...)
	out = strconv.AppendInt(out, hits, 10)
	out = append(out, " misses="...)
	return strconv.AppendInt(out, misses, 10)
}
