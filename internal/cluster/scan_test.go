package cluster

import (
	"strconv"
	"testing"

	"caram/internal/server"
)

// TestBScanMatchesFieldScanner: the router's []byte tokenizer must
// split a request line into exactly the fields the backend's scanner
// will — otherwise routing decisions and backend parsing could
// diverge on exotic whitespace.
func TestBScanMatchesFieldScanner(t *testing.T) {
	lines := []string{
		"SEARCH db dead",
		"  SEARCH\tdb\tdead  ",
		"",
		"   ",
		"one",
		"a b c d e f",
		"unicode space",         // NBSP is a separator to unicode.IsSpace
		"wide　ideographic ", // ideographic space, line separator
		"trailing ",
		" leading",
		"mixed  \t x",
		"utf8-in-field héllo wörld",
	}
	for _, line := range lines {
		fs := server.NewFieldScanner(line)
		bs := bscan{b: []byte(line)}
		for i := 0; ; i++ {
			sf, sok := fs.Next()
			bf, bok := bs.next()
			if sok != bok {
				t.Fatalf("line %q field %d: FieldScanner ok=%v, bscan ok=%v", line, i, sok, bok)
			}
			if !sok {
				break
			}
			if sf != string(bf) {
				t.Fatalf("line %q field %d: FieldScanner %q, bscan %q", line, i, sf, bf)
			}
		}
		cf := server.NewFieldScanner(line)
		if got, want := (&bscan{b: []byte(line)}).count(), cf.CountFields(); got != want {
			t.Errorf("line %q: bscan.count=%d, CountFields=%d", line, got, want)
		}
	}
}

// TestParseHex64bMatchesStrconv: the byte-level hex parser must agree
// with strconv.ParseUint(s, 16, 64) — the server's parser — on both
// acceptance and value, so keys route by the value the backend will
// actually store.
func TestParseHex64bMatchesStrconv(t *testing.T) {
	cases := []string{
		"", "0", "1", "dead", "DEAD", "dEaD",
		"ffffffffffffffff",  // max
		"0ffffffffffffffff", // 17 digits, fits
		"00000000000000000000dead", // long zero run
		"10000000000000000", // 2^64: overflow
		"1ffffffffffffffff", // overflow
		"0x12", "+1", "-1", "12zz", "g", " 1", "1 ", "١",
	}
	for _, s := range cases {
		want, errWant := strconv.ParseUint(s, 16, 64)
		got, ok := parseHex64b([]byte(s))
		if ok != (errWant == nil) {
			t.Errorf("parseHex64b(%q) ok=%v, strconv err=%v", s, ok, errWant)
			continue
		}
		if ok && got != want {
			t.Errorf("parseHex64b(%q) = %#x, strconv = %#x", s, got, want)
		}
	}
}

// TestParseVecBytesMatchesServer: same contract one level up, for the
// "<lo>" and "<hi>:<lo>" wire spellings.
func TestParseVecBytesMatchesServer(t *testing.T) {
	cases := []string{
		"dead", "0:dead", "dead:beef", "0:0", ":", "a:", ":a",
		"deadbeefcafef00d:0123456789abcdef",
		"zz", "1:zz", "zz:1", "", "1:2:3",
	}
	for _, s := range cases {
		want, errWant := server.ParseVec(s)
		got, ok := parseVecBytes([]byte(s))
		if ok != (errWant == nil) {
			t.Errorf("parseVecBytes(%q) ok=%v, server err=%v", s, ok, errWant)
			continue
		}
		if ok && (got.Lo != want[0] || got.Hi != want[1]) {
			t.Errorf("parseVecBytes(%q) = %x:%x, server = %x:%x", s, got.Hi, got.Lo, want[1], want[0])
		}
	}
}

func TestReplyTokenHelpers(t *testing.T) {
	if !tokenEq([]byte("OK"), "OK") || !tokenEq([]byte("OK scrub x"), "OK") {
		t.Error("tokenEq misses valid OK forms")
	}
	if tokenEq([]byte("OKAY"), "OK") || tokenEq([]byte("MISS!"), "MISS") {
		t.Error("tokenEq matches a longer token")
	}
	tok, rest := firstToken([]byte("MRESULTS HIT:0:1 MISS"))
	if string(tok) != "MRESULTS" {
		t.Errorf("firstToken = %q", tok)
	}
	var slots []string
	for {
		var s []byte
		s, rest = tokenAt([]byte("MRESULTS HIT:0:1 MISS"), rest)
		if s == nil {
			break
		}
		slots = append(slots, string(s))
	}
	if len(slots) != 2 || slots[0] != "HIT:0:1" || slots[1] != "MISS" {
		t.Errorf("tokenAt walk = %q", slots)
	}
	k, v, ok := splitKV([]byte("alpha=0.125"))
	if !ok || string(k) != "alpha" || string(v) != "0.125" {
		t.Errorf("splitKV = %q %q %v", k, v, ok)
	}
	a, b, ok := splitSlash([]byte("3/16"))
	if !ok || parseInt(a) != 3 || parseInt(b) != 16 {
		t.Errorf("splitSlash = %q %q %v", a, b, ok)
	}
	if parseInt([]byte("-42")) != -42 || parseInt([]byte("17")) != 17 {
		t.Error("parseInt decimal parse broken")
	}
}
