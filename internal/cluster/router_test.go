package cluster

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"caram/internal/caram"
	"caram/internal/hash"
	"caram/internal/metrics"
	"caram/internal/server"
	"caram/internal/subsystem"
)

// testBackend is one live in-process caram-server on a loopback
// listener, with the same fixed geometry the server package's own
// fixtures use (deterministic MultShift hashing).
type testBackend struct {
	srv  *server.Server
	addr string
}

func exactEngine(t testing.TB, sub *subsystem.Subsystem, name string) {
	t.Helper()
	sl := caram.MustNew(caram.Config{
		IndexBits: 6,
		RowBits:   4*(1+64+32) + 8,
		KeyBits:   64,
		DataBits:  32,
		Index:     hash.NewMultShift(6),
	})
	if err := sub.AddEngine(&subsystem.Engine{Name: name, Main: sl}); err != nil {
		t.Fatal(err)
	}
}

// startBackend boots a real server with the named exact engines and
// serves it over TCP; the listener address is its identity for pools.
func startBackend(t testing.TB, engines ...string) *testBackend {
	t.Helper()
	sub := subsystem.New(0)
	for _, name := range engines {
		exactEngine(t, sub, name)
	}
	srv := server.New(sub)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // returns when the server closes
	t.Cleanup(func() { srv.Close() })
	return &testBackend{srv: srv, addr: l.Addr().String()}
}

// testRouter wires a router over the given backends with stable ring
// labels b0, b1, ... — ring assignments must not depend on the
// ephemeral ports the test OS hands out.
func testRouter(t testing.TB, bks []*testBackend, mod func(*RouterConfig)) (*Router, *metrics.RouterMetrics) {
	t.Helper()
	backends := make([]Backend, len(bks))
	labels := make([]string, len(bks))
	for i, b := range bks {
		backends[i] = Backend{Label: fmt.Sprintf("b%d", i), Addr: b.addr}
		labels[i] = backends[i].Label
	}
	rm := metrics.NewRouterMetrics(labels)
	cfg := RouterConfig{
		Backends:       backends,
		Metrics:        rm,
		BreakerBackoff: 50 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt, rm
}

// rdrive runs request lines through the router's handler and returns
// the reply lines, one per request — the cluster twin of the server
// package's drive helper.
func rdrive(t testing.TB, rt *Router, reqs ...string) []string {
	t.Helper()
	in := strings.NewReader(strings.Join(reqs, "\n") + "\n")
	var out strings.Builder
	rt.Handle(in, &out)
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != len(reqs) {
		t.Fatalf("%d responses for %d requests: %q", len(lines), len(reqs), out.String())
	}
	return lines
}

// TestRouterTransparencyDifferential is the protocol contract: for
// operations owned by a single backend — every key op, every usage
// error, every malformed line — the router's reply must be
// byte-identical to a direct server's for the same session. (Scatter
// aggregates like STATS are covered by their own semantic tests; they
// summarize N backends and legitimately differ from one.)
func TestRouterTransparencyDifferential(t *testing.T) {
	script := []string{
		"INSERT db dead 42",
		"INSERT db beef 43",
		"INSERT db f00d 44",
		"INSERT db deadbeef:cafe 45",
		"SEARCH db dead",
		"SEARCH db 0:dead", // same key, different spelling: same owner
		"SEARCH db beef",
		"SEARCH db f00d",
		"SEARCH db deadbeef:cafe",
		"SEARCH db 404404",
		"MSEARCH db dead db beef db 404404 nope dead",
		"DELETE db beef",
		"SEARCH db beef",
		"DELETE db beef",
		// Error surfaces: the backend's grammar must render these, so
		// they come back byte-identical to a direct connection.
		"",
		"BOGUS",
		"bogus lowercase",
		"INSERT db onearg",
		"INSERT nope 1 2",
		"SEARCH nope 1",
		"SEARCH db zz",
		"SEARCH db 1 2 3",
		"DELETE db",
		"MSEARCH",
		"MSEARCH db",
		"MSEARCH db dead db", // odd arity
		"MSEARCH db zz",      // bad hex: nothing executes anywhere
		"STATS",
		"STATS db extra",
		"STATS nope",
		"CREATE ENGINE",
		"CREATE ENGINE x TYPE bogus",
		"DROP ENGINE nope",
		"EXPLAIN",
		"EXPLAIN SEARCH db zz",
		"HEALTH db BOGUS",
		"HEALTH nope",
		"TSEARCH",
		"MINSERT db 1",
	}

	direct := server.New(func() *subsystem.Subsystem {
		sub := subsystem.New(0)
		exactEngine(t, sub, "db")
		return sub
	}())
	t.Cleanup(func() { direct.Close() })

	rt, _ := testRouter(t, []*testBackend{
		startBackend(t, "db"),
		startBackend(t, "db"),
		startBackend(t, "db"),
	}, nil)

	got := rdrive(t, rt, script...)
	for i, req := range script {
		want := direct.Exec(req)
		if got[i] != want {
			t.Errorf("request %q:\n  router %q\n  direct %q", req, got[i], want)
		}
	}
}

// TestRouterShardsKeys proves the tentpole actually shards: a batch of
// inserted keys must land on more than one backend, and each backend
// must hold exactly the keys the ring assigns it.
func TestRouterShardsKeys(t *testing.T) {
	bks := []*testBackend{startBackend(t, "db"), startBackend(t, "db")}
	rt, rm := testRouter(t, bks, nil)

	const n = 64
	reqs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, fmt.Sprintf("INSERT db %x %x", i*2654435761, i))
	}
	for i, r := range rdrive(t, rt, reqs...) {
		if r != "OK" {
			t.Fatalf("%s => %q", reqs[i], r)
		}
	}
	counts := make([]int, len(bks))
	for i := 0; i < n; i++ {
		key, _ := parseVecBytes([]byte(fmt.Sprintf("%x", i*2654435761)))
		counts[rt.Ring().Owner("db", key)]++
	}
	for b, bk := range bks {
		stats := bk.srv.Exec("STATS db")
		want := fmt.Sprintf("STATS n=%d ", counts[b])
		if !strings.HasPrefix(stats, want) {
			t.Errorf("backend %d: %q, want prefix %q", b, stats, want)
		}
		if counts[b] == 0 {
			t.Errorf("backend %d owns no keys out of %d — not sharded", b, n)
		}
		if rm.Backend(b).Ops() == 0 {
			t.Errorf("backend %d: zero ops recorded", b)
		}
	}
}

// TestRouterPinnedTyped: a typed engine created through the router
// pins to its home backend — rules and queries all land there, so
// longest-prefix semantics survive (they would break if rules were
// key-sharded) — and DROP unpins. Byte-for-byte differential against
// a direct server running the same session.
func TestRouterPinnedTyped(t *testing.T) {
	script := []string{
		"CREATE ENGINE ip TYPE lpm INDEXBITS 6 SLOTS 8",
		"MINSERT ip a0000000 ffffff 8", // 10.../8 (low 24 bits don't-care)
		"MINSERT ip a0b00000 ffff 16",  // 10.11../16
		"MINSERT ip a0b0c000 ff 24",    // 10.11.12../24
		"SEARCH ip a0b0c0d0",           // /24 wins
		"SEARCH ip a0b01234",           // /16 wins
		"SEARCH ip a0123456",           // /8 wins
		"SEARCH ip ff000000",           // no rule
		"MDELETE ip a0b00000 ffff",
		"SEARCH ip a0b01234", // falls back to /8
		"STATS ip",
		"DROP ENGINE ip",
		"SEARCH ip a0123456",
	}
	direct := server.New(subsystem.New(0))
	t.Cleanup(func() { direct.Close() })

	bks := []*testBackend{startBackend(t, "db"), startBackend(t, "db")}
	rt, _ := testRouter(t, bks, nil)

	got := rdrive(t, rt, script[:len(script)-2]...) // everything before DROP
	for i, req := range script[:len(script)-2] {
		if want := direct.Exec(req); got[i] != want {
			t.Errorf("request %q:\n  router %q\n  direct %q", req, got[i], want)
		}
	}
	if !rt.Pinned("ip") {
		t.Fatal("typed engine not pinned after CREATE")
	}
	home := rt.Ring().OwnerEngine("ip")
	for b, bk := range bks {
		has := strings.Contains(bk.srv.Exec("ENGINES"), "ip")
		if has != (b == home) {
			t.Errorf("backend %d has ip=%v, home=%d", b, has, home)
		}
	}
	for i, req := range script[len(script)-2:] {
		if want, g := direct.Exec(req), rdrive(t, rt, req)[0]; g != want {
			t.Errorf("request %q:\n  router %q\n  direct %q", script[len(script)-2+i], g, want)
		}
	}
	if rt.Pinned("ip") {
		t.Error("engine still pinned after DROP")
	}
}

// TestRouterAggregates covers the scatter merges: STATS sums counts
// across shards, ENGINES unions rosters, HEALTH reports per-engine
// worst states, and the router answers bare METRICS itself.
func TestRouterAggregates(t *testing.T) {
	bks := []*testBackend{startBackend(t, "db"), startBackend(t, "db")}
	rt, _ := testRouter(t, bks, nil)

	var reqs []string
	for i := 0; i < 32; i++ {
		reqs = append(reqs, fmt.Sprintf("INSERT db %x %x", i*40503+1, i))
	}
	reqs = append(reqs,
		"SEARCH db 1",    // one hit (the i=0 insert)...
		"SEARCH db eeee", // ...and one miss, so hits/misses aggregate visibly
		"STATS db",
		"ENGINES",
		"HEALTH",
		"HEALTH db",
		"METRICS",
	)
	resp := rdrive(t, rt, reqs...)
	n := len(resp)

	stats := resp[n-5]
	if !strings.HasPrefix(stats, "STATS n=32 ") {
		t.Errorf("aggregate STATS = %q, want n=32", stats)
	}
	if !strings.Contains(stats, " hits=1 ") && !strings.HasSuffix(stats, "misses=1") {
		t.Errorf("aggregate STATS lost lookup counters: %q", stats)
	}
	if resp[n-4] != "ENGINES db" {
		t.Errorf("ENGINES union = %q", resp[n-4])
	}
	if resp[n-3] != "HEALTH db=healthy" {
		t.Errorf("HEALTH roster = %q", resp[n-3])
	}
	if !strings.HasPrefix(resp[n-2], "HEALTH engine=db state=healthy ") {
		t.Errorf("HEALTH engine merge = %q", resp[n-2])
	}
	if !strings.HasPrefix(resp[n-1], "METRICS backends=2 ops=") {
		t.Errorf("router METRICS = %q", resp[n-1])
	}

	// The aggregate count must equal the sum of the shards' counts.
	var sum int
	for _, bk := range bks {
		var bn int
		if _, err := fmt.Sscanf(bk.srv.Exec("STATS db"), "STATS n=%d", &bn); err != nil {
			t.Fatal(err)
		}
		sum += bn
	}
	if sum != 32 {
		t.Errorf("shard counts sum to %d, want 32", sum)
	}
}

// TestRouterMaskedSearchScatters: a masked probe on a sharded engine
// can match on any shard, so the router must ask all of them.
func TestRouterMaskedSearchScatters(t *testing.T) {
	// BitSelect on bits 8..13 ignores the low byte, so masking the low
	// nibble is still answerable (the server's own masked fixture).
	mk := func() *testBackend {
		sub := subsystem.New(0)
		sl := caram.MustNew(caram.Config{
			IndexBits: 6,
			RowBits:   4*(1+64+32) + 8,
			KeyBits:   64,
			DataBits:  32,
			Index:     hash.NewBitSelect([]int{8, 9, 10, 11, 12, 13}),
		})
		if err := sub.AddEngine(&subsystem.Engine{Name: "db", Main: sl}); err != nil {
			t.Fatal(err)
		}
		srv := server.New(sub)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l) //nolint:errcheck
		t.Cleanup(func() { srv.Close() })
		return &testBackend{srv: srv, addr: l.Addr().String()}
	}
	bks := []*testBackend{mk(), mk()}
	rt, _ := testRouter(t, bks, nil)

	// Place one record on each backend (pick keys by ring ownership).
	keyFor := func(b int) string {
		for i := 1; i < 1<<16; i++ {
			k := fmt.Sprintf("%x", i<<4) // low nibble zero
			v, _ := parseVecBytes([]byte(k))
			if rt.Ring().Owner("db", v) == b {
				return k
			}
		}
		t.Fatal("no key found")
		return ""
	}
	k0, k1 := keyFor(0), keyFor(1)
	resp := rdrive(t, rt,
		"INSERT db "+k0+" aa",
		"INSERT db "+k1+" bb",
		"SEARCH db "+k0+" f", // masked: must find the record wherever it lives
		"SEARCH db "+k1+" f",
	)
	if resp[2] != "HIT 0:00000000000000aa" {
		t.Errorf("masked search owner-0 key = %q", resp[2])
	}
	if resp[3] != "HIT 0:00000000000000bb" {
		t.Errorf("masked search owner-1 key = %q", resp[3])
	}
}

// TestRouterBackendDownSheds: with one backend dead and its breaker
// open, its keys shed with "ERR unavailable" (slots:
// "ERR:unavailable") while the surviving backend keeps answering.
func TestRouterBackendDownSheds(t *testing.T) {
	bks := []*testBackend{startBackend(t, "db"), startBackend(t, "db")}
	rt, rm := testRouter(t, bks, func(cfg *RouterConfig) {
		cfg.Retries = 1
		cfg.BreakerThreshold = 1
		cfg.BreakerBackoff = time.Minute // stays open for the whole test
	})

	// One key per backend, inserted while both are up.
	keyFor := func(b int) string {
		for i := 1; ; i++ {
			k := fmt.Sprintf("%x", i)
			v, _ := parseVecBytes([]byte(k))
			if rt.Ring().Owner("db", v) == b {
				return k
			}
		}
	}
	k0, k1 := keyFor(0), keyFor(1)
	for i, r := range rdrive(t, rt, "INSERT db "+k0+" aa", "INSERT db "+k1+" bb") {
		if r != "OK" {
			t.Fatalf("insert %d: %q", i, r)
		}
	}

	bks[1].srv.Close()
	// Drive searches until backend 1's breaker trips (first failures
	// surface as ERR while the connection death is being discovered).
	deadline := time.Now().Add(5 * time.Second)
	for !rt.Pool(1).BreakerOpen() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened")
		}
		rdrive(t, rt, "SEARCH db "+k1)
	}

	resp := rdrive(t, rt,
		"SEARCH db "+k0,
		"SEARCH db "+k1,
		"MSEARCH db "+k0+" db "+k1,
	)
	if resp[0] != "HIT 0:00000000000000aa" {
		t.Errorf("surviving backend's key = %q", resp[0])
	}
	if resp[1] != "ERR unavailable" {
		t.Errorf("dead backend's key = %q, want ERR unavailable", resp[1])
	}
	if resp[2] != "MRESULTS HIT:0:00000000000000aa ERR:unavailable" {
		t.Errorf("MSEARCH across dead backend = %q", resp[2])
	}
	if rm.Backend(1).Errs() == 0 {
		t.Error("no errors recorded against the dead backend")
	}
	if !rm.Backend(1).BreakerOpen() {
		t.Error("breaker gauge not raised")
	}
}

// routerGoldenFixture builds the deterministic 2-backend cluster the
// golden session replays against: fixed labels, fixed engines, fixed
// geometry — only the TCP ports are ephemeral, and they are not
// routing inputs.
func routerGoldenFixture(t *testing.T) *Router {
	t.Helper()
	bks := []*testBackend{startBackend(t, "db", "aux"), startBackend(t, "db", "aux")}
	rt, _ := testRouter(t, bks, nil)
	return rt
}

// TestRouterGoldenSession replays testdata/router_session.script
// through a live 2-backend cluster and requires byte-exact output —
// the router's compatibility contract, including its scatter merges.
// Regenerate with -update after a deliberate change, and review.
func TestRouterGoldenSession(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "router_session.script"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	routerGoldenFixture(t).Handle(bytes.NewReader(script), &out)

	goldenPath := filepath.Join("testdata", "router_session.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if bytes.Equal(out.Bytes(), want) {
		return
	}
	reqs := strings.Split(strings.TrimRight(string(script), "\n"), "\n")
	got := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(got) || i < len(wantLines); i++ {
		g, w, r := "<missing>", "<missing>", "<eof>"
		if i < len(got) {
			g = got[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(reqs) {
			r = reqs[i]
		}
		if g != w {
			t.Errorf("line %d: request %q\n  got  %s\n  want %s", i+1, r, g, w)
		}
	}
	if !t.Failed() {
		t.Fatalf("outputs differ only in trailing bytes: got %q, want %q", out.String(), string(want))
	}
}

// TestRouterGoldenDeterministic guards the golden's premise: two
// replays over two fresh clusters must produce identical bytes even
// though ports, pool scheduling, and burst boundaries all differ.
func TestRouterGoldenDeterministic(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "router_session.script"))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	routerGoldenFixture(t).Handle(bytes.NewReader(script), &a)
	routerGoldenFixture(t).Handle(bytes.NewReader(script), &b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two replays of the same session differ")
	}
	if a.Len() == 0 || !strings.HasSuffix(a.String(), "\n") {
		t.Fatalf("malformed session output %q", a.String())
	}
}
