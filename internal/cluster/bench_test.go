package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"

	"caram/internal/trace"
)

// The PR-8 performance contract, frozen into BENCH_PR8.json:
//
//   - BenchmarkRouterPipelinedSearch/depth8 must be >= 2x the ops/sec
//     of BenchmarkUnpipelinedProxySearch/depth8 on loopback. Depth is
//     the client pipeline depth: how many requests each client writes
//     before reading replies. The naive proxy holds one connection per
//     backend behind a mutex and does one round trip at a time, so it
//     cannot convert depth into wire-level batching; the router's
//     pools coalesce concurrent requests into single writes.
//   - BenchmarkRouterForwardPath must report 0 allocs/op: the
//     dispatch -> pool -> settle path reuses every buffer.

// benchCluster boots two real TCP backends preloaded with benchKeys
// self-validating records, inserted directly (not through the frontend
// under test).
const benchKeys = 128

func benchCluster(b *testing.B) []*testBackend {
	b.Helper()
	bks := []*testBackend{startBackend(b, "db"), startBackend(b, "db")}
	ring, err := NewRing([]string{"b0", "b1"}, DefaultReplicas)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < len(bks); i++ {
		conn, err := net.Dial("tcp", bks[i].addr)
		if err != nil {
			b.Fatal(err)
		}
		bw := bufio.NewWriter(conn)
		n := 0
		for k := 1; k <= benchKeys; k++ {
			v, _ := parseVecBytes([]byte(fmt.Sprintf("%x", k)))
			if ring.Owner("db", v) != i {
				continue
			}
			fmt.Fprintf(bw, "INSERT db %x %x\n", k, k)
			n++
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		br := bufio.NewReader(conn)
		for j := 0; j < n; j++ {
			line, err := br.ReadString('\n')
			if err != nil || line != "OK\n" {
				b.Fatalf("preload backend %d: %q %v", i, line, err)
			}
		}
		conn.Close()
	}
	return bks
}

// driveFrontend hammers addr with concurrent clients, each pipelining
// `depth` SEARCH requests per flush, and validates every reply.
func driveFrontend(b *testing.B, addr string, depth int) {
	reqs := make([][]byte, benchKeys)
	wants := make([]string, benchKeys)
	for k := 1; k <= benchKeys; k++ {
		reqs[k-1] = []byte(fmt.Sprintf("SEARCH db %x\n", k))
		wants[k-1] = fmt.Sprintf("HIT 0:%016x\n", k)
	}
	b.SetParallelism(4) // clients = 4 * GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		bw := bufio.NewWriterSize(conn, 16<<10)
		br := bufio.NewReaderSize(conn, 16<<10)
		idx, batch := 0, make([]int, 0, depth)
		for {
			batch = batch[:0]
			for len(batch) < depth && pb.Next() {
				bw.Write(reqs[idx]) //nolint:errcheck
				batch = append(batch, idx)
				idx = (idx + 1) % benchKeys
			}
			if len(batch) == 0 {
				return
			}
			if err := bw.Flush(); err != nil {
				b.Error(err)
				return
			}
			for _, k := range batch {
				line, err := br.ReadString('\n')
				if err != nil {
					b.Error(err)
					return
				}
				if line != wants[k] {
					b.Errorf("reply %q, want %q", line, wants[k])
					return
				}
			}
			if len(batch) < depth {
				return
			}
		}
	})
}

func BenchmarkRouterPipelinedSearch(b *testing.B) {
	bks := benchCluster(b)
	rt, _ := testRouter(b, bks, func(cfg *RouterConfig) { cfg.Conns = 4 })
	defer rt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go rt.Serve(l) //nolint:errcheck
	for _, depth := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			driveFrontend(b, l.Addr().String(), depth)
		})
	}
}

// BenchmarkDirectServerSearch is the no-router reference: the same
// pipelined clients straight at one caram-server holding all the
// records. The gap between this and the router is the cost of the
// extra network hop; the gap between the router and the naive proxy
// is what the pipelined pools buy back.
func BenchmarkDirectServerSearch(b *testing.B) {
	bk := startBackend(b, "db")
	conn, err := net.Dial("tcp", bk.addr)
	if err != nil {
		b.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	for k := 1; k <= benchKeys; k++ {
		fmt.Fprintf(bw, "INSERT db %x %x\n", k, k)
	}
	if err := bw.Flush(); err != nil {
		b.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for j := 0; j < benchKeys; j++ {
		if line, err := br.ReadString('\n'); err != nil || line != "OK\n" {
			b.Fatalf("preload: %q %v", line, err)
		}
	}
	conn.Close()
	for _, depth := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			driveFrontend(b, bk.addr, depth)
		})
	}
}

// naiveProxy is the unpipelined baseline: the same ring routing, but
// one connection per backend behind a mutex and one request/reply
// round trip on the wire at a time.
type naiveProxy struct {
	ring  *Ring
	mus   []sync.Mutex
	conns []net.Conn
	brs   []*bufio.Reader
	l     net.Listener
}

func newNaiveProxy(b *testing.B, bks []*testBackend) *naiveProxy {
	b.Helper()
	ring, err := NewRing([]string{"b0", "b1"}, DefaultReplicas)
	if err != nil {
		b.Fatal(err)
	}
	np := &naiveProxy{ring: ring, mus: make([]sync.Mutex, len(bks))}
	for _, bk := range bks {
		conn, err := net.Dial("tcp", bk.addr)
		if err != nil {
			b.Fatal(err)
		}
		np.conns = append(np.conns, conn)
		np.brs = append(np.brs, bufio.NewReader(conn))
	}
	if np.l, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			conn, err := np.l.Accept()
			if err != nil {
				return
			}
			go np.handle(conn)
		}
	}()
	return np
}

func (np *naiveProxy) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return
		}
		// Route exactly like the router: SEARCH db <key>.
		sc := bscan{b: line}
		sc.next() // SEARCH
		eng, _ := sc.next()
		key, _ := sc.next()
		v, ok := parseVecBytes(key)
		if !ok {
			return
		}
		bk := np.ring.Owner(string(eng), v)
		np.mus[bk].Lock()
		_, werr := np.conns[bk].Write(line)
		var resp []byte
		if werr == nil {
			resp, werr = np.brs[bk].ReadBytes('\n')
		}
		np.mus[bk].Unlock()
		if werr != nil {
			return
		}
		bw.Write(resp) //nolint:errcheck
		// One round trip at a time also on the client side: the
		// baseline never batches replies.
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (np *naiveProxy) Close() {
	np.l.Close()
	for _, c := range np.conns {
		c.Close()
	}
}

func BenchmarkUnpipelinedProxySearch(b *testing.B) {
	bks := benchCluster(b)
	np := newNaiveProxy(b, bks)
	defer np.Close()
	for _, depth := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			driveFrontend(b, np.l.Addr().String(), depth)
		})
	}
}

// stubBackend answers every line with MISS without allocating, so the
// forward-path measurements below see only the router's own behavior.
func stubBackend(b testing.TB) string {
	b.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	miss := []byte("MISS\n")
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					if _, err := br.ReadSlice('\n'); err != nil {
						return
					}
					if _, err := conn.Write(miss); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// TestRouterForwardPathAllocs is the CI guard for the same property
// the benchmark freezes: steady-state forwarding allocates nothing.
// AllocsPerRun counts mallocs process-wide, so the stub backend and
// the measuring client are built to be allocation-free too.
func TestRouterForwardPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector builds allocate in sync.Pool by design; make cluster-guard runs this without -race")
	}
	rt, err := NewRouter(RouterConfig{
		Backends: []Backend{{Label: "b0", Addr: stubBackend(t)}},
		Conns:    1, // HealthInterval 0: watcher off, nothing ticks
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.Serve(l) //nolint:errcheck
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 4<<10)
	req := []byte("SEARCH db 5\n")
	roundTrip := func() {
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		if _, err := br.ReadSlice('\n'); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(300, roundTrip); avg >= 1 {
		t.Errorf("forward path allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkRouterForwardPath freezes the zero-alloc forward path: one
// client, stub backend, alloc accounting on. Expect 0 allocs/op.
func BenchmarkRouterForwardPath(b *testing.B) {
	rt, err := NewRouter(RouterConfig{
		Backends: []Backend{{Label: "b0", Addr: stubBackend(b)}},
		Conns:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go rt.Serve(l) //nolint:errcheck
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 4<<10)
	req := []byte("SEARCH db 5\n")
	roundTrip := func() {
		if _, err := conn.Write(req); err != nil {
			b.Fatal(err)
		}
		if _, err := br.ReadSlice('\n'); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ { // warm every pool and buffer
		roundTrip()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
}

// TestRouterUntracedZeroAlloc is the PR-9 CI guard: a collector
// compiled in but admitting nothing (sampling off, slowlog off) must
// leave the forward path exactly as allocation-free as no collector at
// all — Begin returns nil for ineligible requests before any trace
// state is touched.
func TestRouterUntracedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector builds allocate in sync.Pool by design; make alloc-guard runs this without -race")
	}
	rt, err := NewRouter(RouterConfig{
		Backends: []Backend{{Label: "b0", Addr: stubBackend(t)}},
		Conns:    1,
		Tracing:  trace.NewCollector(trace.Config{SampleN: 0, Slowlog: -1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.Serve(l) //nolint:errcheck
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 4<<10)
	req := []byte("SEARCH db 5\n")
	roundTrip := func() {
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		if _, err := br.ReadSlice('\n'); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(300, roundTrip); avg >= 1 {
		t.Errorf("forward path with idle collector allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkRouterForwardPathTraced is BenchmarkRouterForwardPath with
// an idle collector attached — the number BENCH_PR9.json compares
// against the untraced baseline (< 5% added latency, still 0
// allocs/op).
func BenchmarkRouterForwardPathTraced(b *testing.B) {
	rt, err := NewRouter(RouterConfig{
		Backends: []Backend{{Label: "b0", Addr: stubBackend(b)}},
		Conns:    1,
		Tracing:  trace.NewCollector(trace.Config{SampleN: 0, Slowlog: -1}),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go rt.Serve(l) //nolint:errcheck
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 4<<10)
	req := []byte("SEARCH db 5\n")
	roundTrip := func() {
		if _, err := conn.Write(req); err != nil {
			b.Fatal(err)
		}
		if _, err := br.ReadSlice('\n'); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		roundTrip()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
}

// BenchmarkRouterPipelinedSearchTraced mirrors the depth sweep with an
// idle collector attached to the router; depth8 traced-vs-untraced is
// the PR-9 overhead contract.
func BenchmarkRouterPipelinedSearchTraced(b *testing.B) {
	bks := benchCluster(b)
	rt, _ := testRouter(b, bks, func(cfg *RouterConfig) {
		cfg.Conns = 4
		cfg.Tracing = trace.NewCollector(trace.Config{SampleN: 0, Slowlog: -1})
	})
	defer rt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go rt.Serve(l) //nolint:errcheck
	for _, depth := range []int{1, 8} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			driveFrontend(b, l.Addr().String(), depth)
		})
	}
}
