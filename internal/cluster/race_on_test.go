//go:build race

package cluster

// raceEnabled reports whether this test binary was built with the race
// detector, whose runtime (deliberately lossy sync.Pool, instrumented
// channel ops) allocates on paths that are allocation-free in normal
// builds.
const raceEnabled = true
