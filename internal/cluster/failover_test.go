package cluster

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"caram/internal/metrics"
	"caram/internal/server"
	"caram/internal/subsystem"
)

// TestRouterFailoverUnderStress kills a backend in the middle of a
// concurrent search storm and requires that every in-flight and
// subsequent idempotent SEARCH is answered either correctly (its
// key's own data — replies are self-validating) or with a clean
// "ERR unavailable" — never a torn, misordered, or wrong reply. After
// the backend returns on the same address, the router must recover
// (health watcher + breaker half-open) and serve its keys again.
func TestRouterFailoverUnderStress(t *testing.T) {
	b0 := startBackend(t, "db")

	// Backend 1 lives behind a fixed address so it can die and come
	// back where the pool expects it.
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := l1.Addr().String()
	sub1 := subsystem.New(0)
	exactEngine(t, sub1, "db")
	srv1 := server.New(sub1)
	go srv1.Serve(l1) //nolint:errcheck

	rm := metrics.NewRouterMetrics([]string{"b0", "b1"})
	rt, err := NewRouter(RouterConfig{
		Backends:         []Backend{{Label: "b0", Addr: b0.addr}, {Label: "b1", Addr: addr1}},
		Conns:            2,
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerBackoff:   25 * time.Millisecond,
		HealthInterval:   25 * time.Millisecond,
		HealthTimeout:    250 * time.Millisecond,
		Metrics:          rm,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.Serve(rl) //nolint:errcheck

	// Preload: key i holds data i, spread across both backends.
	const nKeys = 128
	keys := make([]string, nKeys)
	insert := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("%x", i+1)
		insert[i] = fmt.Sprintf("INSERT db %s %s", keys[i], keys[i])
	}
	for i, r := range rdrive(t, rt, insert...) {
		if r != "OK" {
			t.Fatalf("preload %d: %q", i, r)
		}
	}

	// Storm: 8 clients over real TCP hammer SEARCH; 100ms in, backend
	// 1 dies hard (server close tears down its accepted connections).
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		badReply string
		sheds    int
	)
	stop := time.Now().Add(700 * time.Millisecond)
	kill := sync.OnceFunc(func() { srv1.Close() })
	killAt := time.Now().Add(100 * time.Millisecond)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			conn, err := net.Dial("tcp", rl.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			for time.Now().Before(stop) {
				if time.Now().After(killAt) {
					kill()
				}
				idx := rng.Intn(nKeys)
				k := keys[idx]
				if _, err := fmt.Fprintf(conn, "SEARCH db %s\n", k); err != nil {
					t.Errorf("client write: %v", err)
					return
				}
				line, err := br.ReadString('\n')
				if err != nil {
					t.Errorf("client read: %v", err)
					return
				}
				line = strings.TrimSuffix(line, "\n")
				want := fmt.Sprintf("HIT 0:%016x", idx+1)
				switch line {
				case want:
				case "ERR unavailable":
					mu.Lock()
					sheds++
					mu.Unlock()
				default:
					mu.Lock()
					if badReply == "" {
						badReply = fmt.Sprintf("SEARCH db %s => %q (want %q or ERR unavailable)", k, line, want)
					}
					mu.Unlock()
					return
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	if badReply != "" {
		t.Fatalf("wrong reply under failover: %s", badReply)
	}
	if sheds == 0 {
		t.Log("note: no sheds observed (backend died after the storm's window)")
	}

	// Recovery: the backend returns on the same address, empty. The
	// watcher must close the breaker and traffic must flow again.
	var l1b net.Listener
	for i := 0; ; i++ {
		if l1b, err = net.Listen("tcp", addr1); err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr1, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	sub1b := subsystem.New(0)
	exactEngine(t, sub1b, "db")
	srv1b := server.New(sub1b)
	go srv1b.Serve(l1b) //nolint:errcheck
	t.Cleanup(func() { srv1b.Close() })

	// A key owned by backend 1 answers again (MISS: the revived
	// backend is empty) once the breaker closes.
	k1 := ""
	for i := 1; k1 == ""; i++ {
		k := fmt.Sprintf("%x", i)
		if v, ok := parseVecBytes([]byte(k)); ok && rt.Ring().Owner("db", v) == 1 {
			k1 = k
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r := rdrive(t, rt, "SEARCH db "+k1)[0]; r == "MISS" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never recovered; last reply %q", rdrive(t, rt, "SEARCH db "+k1)[0])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Refill through the router and verify every key end to end.
	// Backend 0 never died, so its keys are still present.
	for i, r := range rdrive(t, rt, insert...) {
		if r != "OK" && r != "ERR caram: record already present" {
			t.Fatalf("reinsert %d after recovery: %q", i, r)
		}
	}
	checks := make([]string, nKeys)
	for i, k := range keys {
		checks[i] = "SEARCH db " + k
	}
	for i, r := range rdrive(t, rt, checks...) {
		if want := fmt.Sprintf("HIT 0:%016x", i+1); r != want {
			t.Errorf("post-recovery %s = %q, want %q", checks[i], r, want)
		}
	}
	if rm.Backend(1).Retries() == 0 && sheds == 0 {
		t.Log("note: failover window produced neither retries nor sheds")
	}
}
