// Package cluster is the router tier: it puts N caram-server backends
// behind one endpoint that speaks the same wire protocol
// (internal/server) on both sides. Keys shard onto backends by
// consistent hashing (Ring), single-key operations forward over
// pipelined per-backend connection pools (Pool) that coalesce
// concurrently arriving requests into one buffered flush per burst —
// the PR 3 batch-worker idea promoted from in-process workers to the
// network — and MSEARCH fans out scatter/gather with replies
// reassembled in the caller's key order (Router).
//
// The paper scales lookup throughput by overlapping accesses to many
// CA-RAM engines behind one interface (§3.1, §5); the router applies
// the same move one level up, overlapping accesses to many caram-server
// processes behind one socket.
package cluster

import (
	"errors"
	"sort"
	"strconv"

	"caram/internal/bitutil"
)

// DefaultReplicas is the virtual-node count per backend. 128 points
// per backend keeps the assignment spread within a few percent of even
// and bounds rebalance movement on membership change to ~1/N of keys.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over backend labels.
// Each backend contributes Replicas virtual points hashed from
// "<label>#<i>"; a key owns the first point clockwise from its own
// hash. Hashing is FNV-1a 64 end to end — deterministic across
// processes and runs, with no per-process seed — so a given
// (backends, replicas, key) triple always routes identically. The
// ring_test golden pins that property; changing the hash breaks it
// loudly.
//
// Labels are routing identity, not dial addresses: tests and
// deployments that must keep assignments stable across address churn
// pass stable labels (Backend.Label) while the pool dials
// Backend.Addr.
type Ring struct {
	labels []string // backend labels, in configuration order
	points []point  // sorted by hash
}

// point is one virtual node: a position on the ring and the backend
// index that owns it.
type point struct {
	hash    uint64
	backend int
}

// NewRing builds a ring over the given backend labels with the given
// number of virtual points per backend (<= 0 means DefaultReplicas).
// Labels must be non-empty and unique.
func NewRing(labels []string, replicas int) (*Ring, error) {
	if len(labels) == 0 {
		return nil, errors.New("cluster: ring needs at least one backend")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]struct{}, len(labels))
	r := &Ring{
		labels: append([]string(nil), labels...),
		points: make([]point, 0, len(labels)*replicas),
	}
	for bi, label := range labels {
		if label == "" {
			return nil, errors.New("cluster: empty backend label")
		}
		if _, dup := seen[label]; dup {
			return nil, errors.New("cluster: duplicate backend label " + strconv.Quote(label))
		}
		seen[label] = struct{}{}
		for i := 0; i < replicas; i++ {
			h := fnvString(fnvOffset, label)
			h = fnvByte(h, '#')
			h = fnvUint(h, uint64(i))
			r.points = append(r.points, point{hash: h, backend: bi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal-hash collisions (vanishingly rare) resolve by backend
		// order so the sort — and therefore ownership — stays total
		// and deterministic.
		return r.points[i].backend < r.points[j].backend
	})
	return r, nil
}

// Backends returns the backend count.
func (r *Ring) Backends() int { return len(r.labels) }

// Label returns backend b's label.
func (r *Ring) Label(b int) string { return r.labels[b] }

// Owner returns the backend index owning the (engine, key) pair. The
// key participates canonically (its 128-bit value, not its wire
// spelling), so "dead" and "0:dead" route identically.
func (r *Ring) Owner(engine string, key bitutil.Vec128) int {
	h := fnvString(fnvOffset, engine)
	h = fnvByte(h, 0) // separator: engine "ab"+key 0xc never collides with engine "a"+key 0xbc
	h = fnvUint(h, key.Hi)
	h = fnvUint(h, key.Lo)
	return r.locate(h)
}

// OwnerEngine returns the backend index that is the engine's home —
// the owner of the engine name alone. Pinned (typed) engines live
// wholly on their home backend; it also anchors requests whose key
// cannot be parsed (the backend then renders the authoritative ERR).
func (r *Ring) OwnerEngine(engine string) int {
	h := fnvString(fnvOffset, engine)
	h = fnvByte(h, 1) // distinct domain from Owner's engine+key space
	return r.locate(h)
}

// locate binary-searches the first point at or clockwise-after h.
func (r *Ring) locate(h uint64) int {
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0 // wrap: past the last point lands on the first
	}
	return pts[i].backend
}

// FNV-1a 64-bit, inlined over the mixed string/uint inputs above so
// ring lookups never allocate.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}
