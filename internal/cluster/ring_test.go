package cluster

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"caram/internal/bitutil"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRingGolden pins the ring's assignments to a golden file: the
// hash is seedless FNV-1a, so a given (backends, replicas, key)
// triple must route identically across processes, runs, and machines
// forever. A hash or ring change shows up as a loud golden diff, not
// a silent cluster-wide remap.
func TestRingGolden(t *testing.T) {
	r, err := NewRing([]string{"alpha:7071", "beta:7072", "gamma:7073"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for i := 0; i < 64; i++ {
		key := bitutil.FromParts(uint64(i)*0x9e3779b97f4a7c15, uint64(i))
		fmt.Fprintf(&out, "db %016x:%016x -> %s\n", key.Hi, key.Lo, r.Label(r.Owner("db", key)))
	}
	for _, eng := range []string{"db", "aux", "ip", "rules", "tri", "z"} {
		fmt.Fprintf(&out, "home %s -> %s\n", eng, r.Label(r.OwnerEngine(eng)))
	}
	goldenPath := filepath.Join("testdata", "ring.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("ring assignments changed:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestRingRebalance is the consistent-hashing contract: removing one
// of N backends moves exactly the keys that backend owned — every
// other key keeps its owner — and that set is about 1/N of the total.
func TestRingRebalance(t *testing.T) {
	labels := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	const removed = 2 // "c:1"
	full, err := NewRing(labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	rest := append(append([]string{}, labels[:removed]...), labels[removed+1:]...)
	smaller, err := NewRing(rest, 0)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 10_000
	moved, owned := 0, 0
	for i := 0; i < nKeys; i++ {
		key := bitutil.FromParts(uint64(i)*0x9e3779b97f4a7c15+7, uint64(i)*0xbf58476d1ce4e5b9)
		before := full.Label(full.Owner("db", key))
		after := smaller.Label(smaller.Owner("db", key))
		if before == labels[removed] {
			owned++
			continue // must move somewhere; any new owner is fine
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed backend changed owner", moved)
	}
	frac := float64(owned) / nKeys
	limit := 1.0/float64(len(labels)) + 0.05
	if frac > limit {
		t.Errorf("removed backend owned %.3f of keys, want <= %.3f (~1/N + eps)", frac, limit)
	}
	if frac < 0.5/float64(len(labels)) {
		t.Errorf("removed backend owned %.3f of keys — suspiciously uneven for %d replicas", frac, DefaultReplicas)
	}
}

// TestRingSpread checks that virtual nodes keep every backend's share
// of the key space within sane bounds of even.
func TestRingSpread(t *testing.T) {
	labels := []string{"a:1", "b:1", "c:1", "d:1"}
	r, err := NewRing(labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(labels))
	const nKeys = 10_000
	for i := 0; i < nKeys; i++ {
		counts[r.Owner("db", bitutil.FromUint64(uint64(i)*0x2545f4914f6cdd1d))]++
	}
	even := nKeys / len(labels)
	for b, c := range counts {
		if c < even/2 || c > even*2 {
			t.Errorf("backend %s owns %d of %d keys (even share %d)", labels[b], c, nKeys, even)
		}
	}
}

// TestRingValidation rejects the configurations that would make
// routing ambiguous.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Error("empty label accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 0); err == nil {
		t.Error("duplicate label accepted")
	}
}

// TestOwnerDomains: engine-home hashing and engine+key hashing are
// distinct domains, and the key participates by value — every wire
// spelling of a key routes identically.
func TestOwnerDomains(t *testing.T) {
	r, err := NewRing([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := parseVecBytes([]byte("dead"))
	vb, _ := parseVecBytes([]byte("0:dead"))
	vc, _ := parseVecBytes([]byte("0:000000000000dead"))
	if va != vb || va != vc {
		t.Fatalf("spellings parse unequal: %v %v %v", va, vb, vc)
	}
	if r.Owner("db", va) != r.Owner("db", vb) || r.Owner("db", va) != r.Owner("db", vc) {
		t.Error("key spellings route differently")
	}
	// Engine-name boundary: ("ab", key c…) must not collide with
	// ("a", key bc…) — the separator byte keeps the domains apart.
	k1, _ := parseVecBytes([]byte("1"))
	same := 0
	for i := 0; i < 64; i++ {
		k := bitutil.FromUint64(uint64(i))
		if r.Owner("ab", k) == r.Owner("a", k) {
			same++
		}
	}
	_ = k1
	if same == 64 {
		t.Error("engines \"ab\" and \"a\" always co-route — engine name may not be mixing into the hash")
	}
}
