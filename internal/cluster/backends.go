package cluster

import (
	"fmt"
	"net"
	"strings"
)

// Backend is one routed-to caram-server: the label that places it on
// the ring (routing identity — stable across redeploys) and the
// address the pool dials. ParseBackends sets Label == Addr, the right
// default for a static -backends list; tests pin labels independently
// of their ephemeral listen ports.
type Backend struct {
	Label string
	Addr  string
}

// ParseBackends parses the -backends flag value: a comma-separated
// list of host:port addresses. It is strict the way the server's
// parseVec is strict about keys — empty elements (including the
// trailing comma's), duplicates, and addresses that do not split into
// host:port are errors with the offending element quoted, never
// something the router quietly dials garbage from. Whitespace around
// elements is trimmed (flag values often arrive from shell
// interpolation); at least one backend is required.
func ParseBackends(list string) ([]Backend, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("cluster: -backends is empty")
	}
	parts := strings.Split(list, ",")
	out := make([]Backend, 0, len(parts))
	seen := make(map[string]struct{}, len(parts))
	for _, raw := range parts {
		addr := strings.TrimSpace(raw)
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty backend element in -backends %q", list)
		}
		host, port, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad backend address %q: %v", addr, err)
		}
		if host == "" {
			return nil, fmt.Errorf("cluster: backend address %q has no host", addr)
		}
		if port == "" {
			return nil, fmt.Errorf("cluster: backend address %q has no port", addr)
		}
		if _, dup := seen[addr]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend address %q", addr)
		}
		seen[addr] = struct{}{}
		out = append(out, Backend{Label: addr, Addr: addr})
	}
	return out, nil
}
